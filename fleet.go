package powifi

import (
	"context"

	"repro/internal/fleet"
)

// FleetConfig parameterizes a fleet-scale deployment run; see
// fleet.Config for field semantics. It is re-exported, along with
// FleetPopulation and the default constructors, so facade users need
// not import the internal package path directly.
type FleetConfig = fleet.Config

// FleetPopulation describes the household distributions a fleet's
// homes are drawn from.
type FleetPopulation = fleet.Population

// FleetResult holds the mergeable fleet-level aggregates of a run.
type FleetResult = fleet.Result

// FailurePolicy decides what a per-home worker failure does to a fleet
// run (see WithFailurePolicy); the zero value fails fast.
type FailurePolicy = fleet.FailurePolicy

// HomeError is the structured error describing one failed home. A
// fail-fast fleet run's error unwraps to *HomeError via errors.As; a
// Skip policy reports quarantined homes' HomeErrors in the fleet
// summary's Errors section instead.
type HomeError = fleet.HomeError

// Partial-result reasons echoed in a fleet summary's PartialReason
// field when the run degraded gracefully instead of completing.
const (
	// PartialDeadline: the WithDeadline budget expired.
	PartialDeadline = fleet.PartialDeadline
	// PartialFailureBudget: quarantined homes exceeded WithMaxFailedHomes.
	PartialFailureBudget = fleet.PartialFailureBudget
)

// DefaultFleetConfig returns a 1000-home, 24-hour fleet run.
func DefaultFleetConfig() FleetConfig { return fleet.DefaultConfig() }

// DefaultFleetPopulation returns the mixed urban/suburban household
// population anchored on Table 1's observed ranges.
func DefaultFleetPopulation() FleetPopulation { return fleet.DefaultPopulation() }

// RunFleet scales the §6 six-home deployment study to a synthesized
// population: cfg.Homes independent single-home simulations sharded
// across cfg.Workers workers and reduced to population aggregates
// (occupancy CDFs, harvested-power distributions, sensor latency
// tails). Results are bit-for-bit identical at any worker count.
//
// Deprecated: build a Scenario (WithHomes, WithPopulation, WithSeed,
// ...) and call its Run method instead; it adds context cancellation,
// streaming access and the versioned Report envelope. RunFleet remains
// as a thin non-cancellable shim over the same engine.
func RunFleet(cfg FleetConfig) (*FleetResult, error) {
	return fleet.Run(context.Background(), cfg)
}
