package powifi_test

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/deploy"
)

// pr2BaselineNsPerHome is BenchmarkFleet/workers=1 ns/home measured on
// the PR 2 tree (commit 6ab1359), the baseline the zero-allocation
// sampler PR is judged against. Methodology: eight interleaved
// PR2/current runs on the same otherwise-idle single-core dev host,
// mean of the PR 2 samples (individual samples 142-155 µs/home). The
// same interleaved protocol put the current tree at 49-53 µs/home,
// a 2.8-3.0× per-home speedup with ~1 steady-state alloc/bin (PR 2:
// ~395 allocs/bin).
const pr2BaselineNsPerHome = 147520.0

// samplerAllocBudget is the acceptance ceiling for steady-state heap
// allocations per sampled bin.
const samplerAllocBudget = 10.0

// samplerSpeedupFloor is the CI regression gate on the per-home
// speedup vs the PR 2 baseline. The engineering target is 3×; the gate
// sits below it because the baseline constant was measured on a
// different host than CI and single-core runners see ±10% scheduler
// noise, which would make a hard 3.0 assertion flaky.
const samplerSpeedupFloor = 2.5

// TestEmitSamplerBenchJSON emits BENCH_sampler.json when
// POWIFI_BENCH_JSON is set (the CI bench-smoke job sets it): the pooled
// sampler's ns/bin and allocs/bin at the fleet benchmark's window, the
// fleet's current ns/home, and the speedup against the recorded PR 2
// baseline.
func TestEmitSamplerBenchJSON(t *testing.T) {
	if os.Getenv("POWIFI_BENCH_JSON") == "" {
		t.Skip("set POWIFI_BENCH_JSON=1 to emit BENCH_sampler.json")
	}

	// Pooled per-bin streaming cost (packet sample + sensor solve) at
	// the fleet benchmark's 2 ms window, measured over a Table 1 home.
	smp := deploy.NewSampler()
	opts := deploy.Options{BinWidth: time.Hour, Window: 2 * time.Millisecond, Hours: 24, SensorDistanceFt: 10}
	home := deploy.PaperHomes()[2]
	nBins := opts.NumBins()
	visit := func(deploy.BinSample) {}
	smp.RunStream(home, opts, visit) // warm pools and the shared surface

	br := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			smp.RunStream(home, opts, visit)
		}
	})
	nsPerBin := float64(br.NsPerOp()) / float64(nBins)
	allocsPerBin := testing.AllocsPerRun(20, func() {
		smp.RunStream(home, opts, visit)
	}) / float64(nBins)

	// Fleet per-home cost on the standard benchmark workload.
	cfg := fleetBenchConfig(1, false)
	fr := testing.Benchmark(func(b *testing.B) { runFleetBench(b, cfg) })
	nsPerHome := float64(fr.NsPerOp()) / float64(cfg.Homes)
	speedup := pr2BaselineNsPerHome / nsPerHome

	rep := struct {
		GOOS             string  `json:"goos"`
		GOARCH           string  `json:"goarch"`
		GOMAXPROCS       int     `json:"gomaxprocs"`
		NsPerBin         float64 `json:"sampler_ns_per_bin"`
		AllocsPerBin     float64 `json:"sampler_allocs_per_bin"`
		AllocBudget      float64 `json:"sampler_alloc_budget_per_bin"`
		FleetNsPerHome   float64 `json:"fleet_ns_per_home"`
		PR2NsPerHome     float64 `json:"pr2_baseline_ns_per_home"`
		SpeedupPerHome   float64 `json:"speedup_per_home_vs_pr2"`
		SpeedupTarget    float64 `json:"speedup_target"`
		Line             string  `json:"line"`
		BaselineNote     string  `json:"baseline_note"`
		SamplerWindow    string  `json:"sampler_window"`
		FleetBenchConfig string  `json:"fleet_bench_config"`
	}{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, GOMAXPROCS: runtime.GOMAXPROCS(0),
		NsPerBin: nsPerBin, AllocsPerBin: allocsPerBin, AllocBudget: samplerAllocBudget,
		FleetNsPerHome: nsPerHome, PR2NsPerHome: pr2BaselineNsPerHome, SpeedupPerHome: speedup,
		SpeedupTarget: 3,
		Line: fmt.Sprintf("BenchmarkFleet/workers=1-%d %d %d ns/op",
			runtime.GOMAXPROCS(0), fr.N, fr.NsPerOp()),
		BaselineNote: "PR 2 baseline measured via interleaved runs on the development host; " +
			"see pr2BaselineNsPerHome in bench_sampler_test.go for methodology",
		SamplerWindow:    opts.Window.String(),
		FleetBenchConfig: fmt.Sprintf("%d homes x %d bins, window %v", cfg.Homes, 4, cfg.Window),
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_sampler.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("BENCH_sampler.json: %.0f ns/bin, %.2f allocs/bin, %.0f ns/home (%.2fx vs PR 2)",
		nsPerBin, allocsPerBin, nsPerHome, speedup)

	if allocsPerBin > samplerAllocBudget {
		t.Errorf("steady-state allocs/bin %.2f exceeds the %.0f budget", allocsPerBin, samplerAllocBudget)
	}
	if speedup < samplerSpeedupFloor {
		t.Errorf("per-home speedup %.2fx is below the %.1fx regression floor (target 3x)",
			speedup, samplerSpeedupFloor)
	}
}
