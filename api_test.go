// API-surface regression: the exported surface of the facade package
// is dumped (internal/apidump) and compared against the committed
// api/powifi.txt, so any change to the public SDK — a new option, a
// renamed field, a signature change — fails until the surface file is
// intentionally regenerated with either
//
//	go test -run TestAPISurface -update .
//	go run ./internal/tools/apidump -write
//
// CI runs the same comparison via the apidump command.
package powifi_test

import (
	"os"
	"testing"

	"repro/internal/apidump"
)

const apiSurfaceFile = "api/powifi.txt"

func TestAPISurface(t *testing.T) {
	got, err := apidump.Dump(".")
	if err != nil {
		t.Fatal(err)
	}
	if *update {
		if err := os.WriteFile(apiSurfaceFile, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", apiSurfaceFile)
		return
	}
	want, err := os.ReadFile(apiSurfaceFile)
	if err != nil {
		t.Fatalf("missing %s (run `go run ./internal/tools/apidump -write`): %v", apiSurfaceFile, err)
	}
	if string(want) != got {
		t.Errorf("exported API changed without regenerating %s\n"+
			"run: go run ./internal/tools/apidump -write\n--- committed ---\n%s\n--- current ---\n%s",
			apiSurfaceFile, want, got)
	}
}
