// Package powifi is a simulation-based reproduction of "Powering the Next
// Billion Devices with Wi-Fi" (Talla, Kellogg, Ransford, Naderiparizi,
// Gollakota, Smith — CoNEXT 2015): the PoWiFi system that delivers far-field
// wireless power from commodity Wi-Fi routers without compromising network
// performance.
//
// The implementation lives under internal/: an 802.11 DCF simulator
// (internal/mac, internal/medium, internal/phy), the PoWiFi router with its
// power-packet injector and IP_Power queue-threshold machinery
// (internal/router), a transport stack (internal/netstack), RF propagation
// and circuit models (internal/rf, internal/diode), the multi-channel
// harvester with its DC-DC converters and storage elements
// (internal/harvester), the sensing applications (internal/sensors), the
// co-design facade (internal/core), the six-home deployment study
// (internal/deploy), and one runner per paper table/figure
// (internal/experiments).
//
// Beyond the paper's six-home study, internal/fleet scales deployment
// to synthesized populations of thousands of homes: household
// parameters are drawn from distributions, each home runs the same
// single-home runner as the §6 reproduction on its own event kernel,
// and the per-home logs stream into mergeable aggregates
// (internal/stats) sharded across workers. Results are bit-for-bit
// identical at any worker count; see RunFleet and cmd/powifi-fleet.
//
// internal/lifecycle adds the time domain: stateful device lifecycles
// (battery-free and battery-recharging sensors, duty-cycled cameras,
// pure battery chargers) threaded across the runner's bins through the
// lifecycle-visiting run mode (deploy.RunVisitor). Fleet populations
// can mix device archetypes (powifi-fleet -devices
// temp=0.5,camera=0.3,jawbone=0.2 -horizon 72h), yielding
// per-archetype time-to-first-update, outage, frame-count,
// state-of-charge and charge-time distributions at fleet scale.
//
// Entry points:
//
//	cmd/powifi-bench    regenerate any table or figure
//	cmd/powifi-router   standalone router/occupancy exploration
//	cmd/powifi-harvest  harvester characterization sweeps
//	cmd/powifi-fleet    fleet-scale deployment study
//	examples/           six runnable scenarios
//
// See DESIGN.md for the system inventory, the deployment-sampling
// substitution, and the fleet layer's exact-sharding design.
package powifi

import (
	"io"

	"repro/internal/experiments"
)

// Version identifies this reproduction build.
const Version = "1.0.0"

// Experiments returns the ids of every reproducible table and figure.
func Experiments() []string { return experiments.IDs() }

// RunExperiment regenerates one table or figure, writing its rows to w.
// quick selects the reduced configuration; the false (full) configuration
// reproduces the paper's scale. It returns false for unknown ids.
func RunExperiment(id string, w io.Writer, quick bool) bool {
	return experiments.Run(id, w, quick)
}
