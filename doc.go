// Package powifi is a simulation-based reproduction of "Powering the Next
// Billion Devices with Wi-Fi" (Talla, Kellogg, Ransford, Naderiparizi,
// Gollakota, Smith — CoNEXT 2015): the PoWiFi system that delivers far-field
// wireless power from commodity Wi-Fi routers without compromising network
// performance.
//
// # The SDK
//
// The public surface is the composable Scenario API: one builder that
// configures single-home deployments (§6), fleet-scale populations,
// stateful device-lifecycle studies, and the paper's table/figure
// experiments through functional options, executed under a
// context.Context with streaming access and one unified, versioned
// Report.
//
//	sc, err := powifi.NewScenario(
//		powifi.WithHomes(5000),
//		powifi.WithSeed(42),
//		powifi.WithDevices(mix),           // lifecycle engine
//		powifi.WithProgress(func(done, total int) { ... }),
//	)
//	rep, err := sc.Run(ctx)               // *Report, "schema": 1
//	rep.WriteJSON(os.Stdout)
//
// Streaming forms replace the reduced report with Go iterators:
// Scenario.Bins yields a single-home run's logging bins in order, and
// Scenario.Homes yields a fleet's per-home records — in home-index
// order, bit-for-bit identical at any WithWorkers value. Cancelling
// the context stops any run promptly (fleet workers check once per
// logging bin, drain, and exit cleanly); partial results are
// discarded, never silently truncated.
//
// Scenarios also have a declarative JSON form: LoadScenario parses it
// (unknown fields rejected, "schema": 1) and Scenario.MarshalJSON
// emits it, which is what the CLIs' -scenario file.json flag runs.
//
// Fleet sweeps scale two ways. WithCoarse selects the error-bounded
// coarse sampling tier: only anchor bins run the packet-level event
// simulation, the rest are proxied with certified error — boot/silence
// decisions stay bit-identical to the default tier, aggregate
// magnitudes carry a documented ε. WithCheckpoint makes a long sweep
// resumable: the run periodically writes its committed home prefix to
// a file (atomically, removed on success), and re-running the same
// configuration resumes from it with output bit-identical to an
// uninterrupted run at any WithWorkers value.
//
// Long sweeps are hardened against failure. Each home simulates under
// a supervisor: a panic becomes a structured *HomeError naming the
// home, and WithFailurePolicy decides whether the run fails fast (the
// default), retries the home on a fresh sampler, or quarantines it
// into the report's errors section — all workers-invariant, with a
// successful retry byte-identical to never having failed. Checkpoints
// are durable (checksummed, fsynced, previous generation kept as a
// .prev fallback against torn or corrupted writes). WithDeadline and
// WithMaxFailedHomes trade completeness for liveness: a tripped budget
// returns a Report marked partial — covering exactly the committed
// home prefix, resumable via WithCheckpoint — rather than an error
// (the powifi-fleet CLI maps it to exit code 3). See DESIGN.md
// "Failure semantics".
//
// Fleet runs can collect telemetry — counters, histograms, phase spans
// and a run manifest — strictly out of band: WithTelemetry attaches a
// collector (the Report gains an additive "telemetry" section whose
// work totals are bit-for-bit identical at any worker count),
// WithMetricsSink writes the Prometheus text export on completion,
// MetricsHandler serves live /metrics and /debug/vars, and
// ServeMetrics mounts that handler on a listener with graceful
// shutdown. WithTrace deepens that into per-run tracing: a span tree
// (run → phase → worker → home → bin-batch) plus a per-home flight
// recorder whose rings are retained for failed and most-escalated
// homes (the Report gains an additive "trace" section, quarantined
// homes carry their dumps on the *HomeError), and WithTraceOutput
// writes the run's trace as Chrome trace-event JSON for Perfetto.
// Execution-state options (WithTelemetry, WithTrace, WithProgress,
// WithCheckpoint) are excluded from the scenario JSON; attach them to
// a loaded scenario with Scenario.With.
//
// # Implementation
//
// The implementation lives under internal/: an 802.11 DCF simulator
// (internal/mac, internal/medium, internal/phy), the PoWiFi router with its
// power-packet injector and IP_Power queue-threshold machinery
// (internal/router), a transport stack (internal/netstack), RF propagation
// and circuit models (internal/rf, internal/diode), the multi-channel
// harvester with its DC-DC converters and storage elements
// (internal/harvester), the sensing applications (internal/sensors), the
// co-design facade (internal/core), the six-home deployment study
// (internal/deploy), the stateful device-lifecycle engine
// (internal/lifecycle), the fleet-scale sharded runner (internal/fleet),
// and one runner per paper table/figure (internal/experiments). The
// repository's determinism, RNG-discipline, hot-path-allocation and
// SDK-boundary contracts are enforced at compile time by a stdlib-only
// static-analysis suite (internal/lint) behind the cmd/powifi-lint vet
// tool; see DESIGN.md "Static enforcement".
//
// Entry points:
//
//	cmd/powifi-bench    regenerate any table or figure (thin Scenario shim)
//	cmd/powifi-fleet    fleet-scale deployment study (thin Scenario shim)
//	cmd/powifi-router   standalone router/occupancy exploration
//	cmd/powifi-harvest  harvester characterization sweeps
//	examples/           six runnable scenarios, all on the public SDK
//
// See DESIGN.md for the system inventory, the public API contract and
// schema-version policy, and the fleet layer's exact-sharding design.
package powifi

import (
	"io"

	"repro/internal/experiments"
)

// Version identifies this reproduction build. 2.0.0 introduced the
// Scenario SDK and the versioned Report schema.
const Version = "2.0.0"

// Experiments returns the ids of every reproducible table and figure.
func Experiments() []string { return experiments.IDs() }

// DescribeExperiment returns the one-line description of an experiment
// id ("" for unknown ids).
func DescribeExperiment(id string) string { return experiments.Describe(id) }

// RunExperiment regenerates one table or figure, writing its rows to w.
// quick selects the reduced configuration; the false (full) configuration
// reproduces the paper's scale. It returns false for unknown ids.
//
// Deprecated: build a Scenario with WithExperiment (and WithFull for
// the paper-scale configuration) instead; it adds cancellation and the
// versioned Report envelope. RunExperiment remains as a thin shim.
func RunExperiment(id string, w io.Writer, quick bool) bool {
	return experiments.Run(id, w, quick)
}
