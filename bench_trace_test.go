package powifi_test

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/fleet"
	"repro/internal/trace"
)

// runTracedFleetBench is runFleetBench with a fresh trace recorder per
// iteration — the enabled-tracing cost the overhead gate measures.
func runTracedFleetBench(b *testing.B, cfg fleet.Config) {
	b.Helper()
	if _, err := fleet.Run(context.Background(), cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := trace.NewRecorder()
		res, err := fleet.RunWith(context.Background(), cfg, fleet.Hooks{Trace: rec})
		if err != nil {
			b.Fatal(err)
		}
		if res.TotalBins == 0 {
			b.Fatal("fleet logged no bins")
		}
		if s := rec.Summary(); s.HomesTraced != cfg.Homes {
			b.Fatalf("traced %d homes, want %d", s.HomesTraced, cfg.Homes)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(cfg.Homes), "ns/home")
}

// TestEmitTraceBenchJSON gates the tracing layer's overhead budget:
// when POWIFI_BENCH_JSON is set it times the sweep-shaped fleet
// workload (the 24-bin/10 ms configuration the coarse tier is
// certified for) with tracing off and on under testing.Benchmark and
// writes BENCH_trace.json. The acceptance bar is a ≤1.05× per-home
// ratio — tracing is a ring write per bin plus one span and one commit
// per home, and at a realistic per-home workload it must stay in the
// noise (measured ~1.01×; the recorder's fixed per-run cost only shows
// on toy fleets). Each side is timed twice and the faster run taken —
// the standard minimum-of-N defense against scheduler jitter failing
// the gate spuriously.
func TestEmitTraceBenchJSON(t *testing.T) {
	if os.Getenv("POWIFI_BENCH_JSON") == "" {
		t.Skip("set POWIFI_BENCH_JSON=1 to emit BENCH_trace.json")
	}

	type record struct {
		Name      string  `json:"name"`
		Iters     int     `json:"iterations"`
		NsPerOp   float64 `json:"ns_per_op"`
		NsPerHome float64 `json:"ns_per_home"`
		Line      string  `json:"line"`
	}
	type report struct {
		GOOS          string   `json:"goos"`
		GOARCH        string   `json:"goarch"`
		GOMAXPROCS    int      `json:"gomaxprocs"`
		TraceOverhead float64  `json:"trace_overhead_per_home"`
		Benchmarks    []record `json:"benchmarks"`
	}

	rep := report{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, GOMAXPROCS: runtime.GOMAXPROCS(0)}
	cfg := sweepBenchConfig(50, false)
	add := func(name string, bench func(*testing.B)) record {
		res := testing.Benchmark(bench)
		r := record{
			Name:      name,
			Iters:     res.N,
			NsPerOp:   float64(res.NsPerOp()),
			NsPerHome: float64(res.NsPerOp()) / float64(cfg.Homes),
			Line:      fmt.Sprintf("Benchmark%s-%d %d %d ns/op", name, runtime.GOMAXPROCS(0), res.N, res.NsPerOp()),
		}
		rep.Benchmarks = append(rep.Benchmarks, r)
		return r
	}

	off1 := add("SweepTraceOff", func(b *testing.B) { runFleetBench(b, cfg) })
	on1 := add("SweepTraceOn", func(b *testing.B) { runTracedFleetBench(b, cfg) })
	off2 := add("SweepTraceOff", func(b *testing.B) { runFleetBench(b, cfg) })
	on2 := add("SweepTraceOn", func(b *testing.B) { runTracedFleetBench(b, cfg) })

	base := min(off1.NsPerHome, off2.NsPerHome)
	traced := min(on1.NsPerHome, on2.NsPerHome)
	rep.TraceOverhead = traced / base
	t.Logf("trace overhead: %.0f ns/home traced vs %.0f ns/home baseline (%.3f×)",
		traced, base, rep.TraceOverhead)
	if rep.TraceOverhead > 1.05 {
		t.Errorf("tracing overhead %.3f× exceeds the 1.05× budget", rep.TraceOverhead)
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_trace.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
