package powifi

import (
	"errors"
	"io"

	"repro/internal/trace"
)

// Trace is a run-scoped tracing recorder for fleet scenarios: a span
// tree (run → phase → worker → home → bin-batch) with wall and CPU
// time, plus a per-home flight recorder — a fixed-size ring of
// structured events (event-sim milestones, surface exact-fallbacks and
// guard-band hits, coarse-tier fits, guard queries and escalations
// with machine-readable reasons, lifecycle boot/brownout transitions,
// injected faults, retry and quarantine decisions) retained for homes
// that fail or escalate most.
//
// The determinism contract mirrors Telemetry's: tracing is strictly
// out of band — no RNG draws, no event-order changes — so a scenario's
// Report sections are byte-identical with or without it, and the
// summary's deterministic section (event counts, retained rings,
// escalation-reason totals) is bit-for-bit identical at any
// WithWorkers value. Scheduling observations (raw spans, per-home wall
// times, slowest homes) live in the summary's quarantined Sched
// section and legitimately vary with the worker count.
//
// One recorder describes one run: pass a fresh NewTrace to each Run
// whose trace you want isolated.
type Trace = trace.Recorder

// TraceSummary is the exported view of a Trace recorder — the Report's
// "trace" JSON section.
type TraceSummary = trace.Summary

// TraceHomeSummary is one retained home's deterministic forensics in a
// TraceSummary.
type TraceHomeSummary = trace.HomeSummary

// TraceSchedSummary is the scheduling section of a TraceSummary: raw
// spans, wall-time quantiles, slowest homes. Never compare it across
// worker counts.
type TraceSchedSummary = trace.SchedSummary

// TraceDump is one home's serialized flight-recorder ring — the Trace
// payload a quarantined HomeError carries.
type TraceDump = trace.Dump

// TraceEvent is one structured event in a flight-recorder ring.
type TraceEvent = trace.EventRecord

// NewTrace returns an empty tracing recorder for one fleet run.
func NewTrace() *Trace { return trace.NewRecorder() }

// WithTrace attaches a tracing recorder to a fleet scenario. The run
// fills t and the Report gains a Trace section holding its summary;
// quarantined homes in the fleet section's Errors carry their
// flight-recorder dumps. Tracing is execution state, not
// configuration: like WithTelemetry it is excluded from the scenario's
// JSON form, and it conflicts with single-home and experiment modes.
func WithTrace(t *Trace) Option {
	return func(s *Scenario) error {
		if t == nil {
			return errors.New("powifi: nil Trace recorder")
		}
		s.trace, s.set = t, s.set|optTrace
		return nil
	}
}

// WithTraceOutput arranges for the run's trace to be written to w in
// Chrome trace-event JSON (loadable in Perfetto or about://tracing)
// when the run completes. It implies tracing: without an explicit
// WithTrace recorder the scenario creates its own, and the Report
// carries the summary either way. Like WithTrace it is execution
// state, excluded from the scenario JSON, and fleet-only.
func WithTraceOutput(w io.Writer) Option {
	return func(s *Scenario) error {
		if w == nil {
			return errors.New("powifi: nil trace output")
		}
		s.traceTo, s.set = w, s.set|optTraceOut
		return nil
	}
}
