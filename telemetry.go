package powifi

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"time"

	"repro/internal/telemetry"
)

// Telemetry is a run-scoped observability collector for fleet
// scenarios: typed counters, gauges and histograms, phase spans with
// wall/CPU timing, and a run manifest (seed, resolved config hash, go
// version, elapsed, homes/sec).
//
// The determinism contract: collection is strictly out of band — no
// RNG draws, no event-order changes — so a scenario's Report sections
// are byte-identical with or without telemetry, and the snapshot's
// work-counter and work-histogram totals are bit-for-bit identical at
// any WithWorkers value (per-worker shards merge exactly). Scheduling
// diagnostics (the snapshot's "sched" section and the shard-occupancy
// histogram) legitimately vary with the worker count; gauges, spans
// and the manifest's throughput fields are wall-clock observations.
//
// One collector describes one run: pass a fresh NewTelemetry to each
// Run whose metrics you want isolated. Snapshots may be taken mid-run
// (the HTTP handler does) — counters are atomic, so a mid-run snapshot
// is consistent, just partial.
type Telemetry = telemetry.Run

// TelemetrySnapshot is the exported view of a Telemetry collector —
// the Report's "telemetry" JSON section, and the same structure the
// Prometheus and expvar exports render, so the three always agree.
type TelemetrySnapshot = telemetry.Snapshot

// TelemetryManifest is the run-provenance section of a
// TelemetrySnapshot.
type TelemetryManifest = telemetry.Manifest

// TelemetryHistogram is one histogram's summary in a
// TelemetrySnapshot.
type TelemetryHistogram = telemetry.HistogramSnapshot

// TelemetrySpan is one completed phase span (surface warm-up,
// simulate, reduce, report write) in a TelemetrySnapshot.
type TelemetrySpan = telemetry.SpanSnapshot

// NewTelemetry returns an empty collector for one fleet run.
func NewTelemetry() *Telemetry { return telemetry.NewRun() }

// WithTelemetry attaches a metrics collector to a fleet scenario. The
// run fills t and the Report gains a Telemetry section holding its
// snapshot. Telemetry is execution state, not configuration: like
// WithProgress it is excluded from the scenario's JSON form, and it
// conflicts with single-home and experiment modes.
func WithTelemetry(t *Telemetry) Option {
	return func(s *Scenario) error {
		if t == nil {
			return errors.New("powifi: nil Telemetry collector")
		}
		s.telemetry, s.set = t, s.set|optTelemetry
		return nil
	}
}

// WithMetricsSink arranges for the run's metrics to be written to w in
// Prometheus text exposition format when the run completes. It implies
// telemetry collection: without an explicit WithTelemetry collector
// the scenario creates its own, and the Report carries the snapshot
// either way. Like WithTelemetry it is execution state, excluded from
// the scenario JSON, and fleet-only.
func WithMetricsSink(w io.Writer) Option {
	return func(s *Scenario) error {
		if w == nil {
			return errors.New("powifi: nil metrics sink")
		}
		s.metricsTo, s.set = w, s.set|optMetricsSink
		return nil
	}
}

// MetricsHandler returns the debug HTTP handler for a collector:
// /metrics serves the Prometheus text export and /debug/vars the
// standard expvar JSON (its "powifi" key is the snapshot). Snapshots
// are taken per request, so a handler mounted before Run serves live
// mid-run metrics — what the CLIs' -metrics-addr flag mounts.
func MetricsHandler(t *Telemetry) http.Handler { return t.Handler() }

// metricsShutdownTimeout bounds how long ServeMetrics' shutdown waits
// for in-flight scrapes: long enough for any real exporter read, short
// enough that a wedged client cannot hold the process open.
const metricsShutdownTimeout = 2 * time.Second

// ServeMetrics serves h (normally MetricsHandler) on ln from a
// background goroutine and returns a function that shuts the server
// down gracefully: new connections stop being accepted immediately,
// but a scrape already in flight is allowed to finish, bounded by a
// short deadline (an abrupt Close would reset a scraper mid-response
// at process exit — exactly when the final metrics matter most). The
// returned function is what the CLIs defer for their -metrics-addr
// listeners.
func ServeMetrics(ln net.Listener, h http.Handler) (shutdown func()) {
	srv := &http.Server{Handler: h}
	go func() { _ = srv.Serve(ln) }()
	return func() {
		ctx, cancel := context.WithTimeout(context.Background(), metricsShutdownTimeout)
		defer cancel()
		if srv.Shutdown(ctx) != nil {
			srv.Close() // deadline passed; force the stragglers
		}
	}
}
