package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/surface"
)

func TestUsageOnNoArgs(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run(nil, &out, &errBuf); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	for _, want := range []string{"usage:", "fig9", "table1", "-exact"} {
		if !strings.Contains(errBuf.String(), want) {
			t.Errorf("usage output missing %q", want)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"fig99"}, &out, &errBuf); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errBuf.String(), `unknown experiment "fig99"`) {
		t.Errorf("stderr: %s", errBuf.String())
	}
}

func TestUnknownFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-bogus", "fig9"}, &out, &errBuf); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestRunsExperiment(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"fig9"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	for _, want := range []string{"== fig9", "worst in-band", "completed in"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestExactFlagDisablesSurfaceDuringRun pins the -exact escape hatch:
// the surface is off while experiments run and restored afterwards.
func TestExactFlagDisablesSurfaceDuringRun(t *testing.T) {
	if !surface.Enabled() {
		t.Fatal("surface must start enabled")
	}
	var out, errBuf bytes.Buffer
	if code := run([]string{"-exact", "fig13"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !surface.Enabled() {
		t.Error("-exact did not restore the surface after the run")
	}
	if !strings.Contains(out.String(), "== fig13") {
		t.Errorf("experiment did not run under -exact:\n%s", out.String())
	}
}
