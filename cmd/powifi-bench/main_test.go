package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/surface"
)

func runCLI(t *testing.T, args []string) (code int, out, errBuf bytes.Buffer) {
	t.Helper()
	code = run(context.Background(), args, &out, &errBuf)
	return code, out, errBuf
}

func TestUsageOnNoArgs(t *testing.T) {
	code, _, errBuf := runCLI(t, nil)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	for _, want := range []string{"usage:", "fig9", "table1", "-exact", "-scenario"} {
		if !strings.Contains(errBuf.String(), want) {
			t.Errorf("usage output missing %q", want)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	code, _, errBuf := runCLI(t, []string{"fig99"})
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errBuf.String(), `unknown experiment "fig99"`) {
		t.Errorf("stderr: %s", errBuf.String())
	}
}

func TestUnknownFlag(t *testing.T) {
	code, _, _ := runCLI(t, []string{"-bogus", "fig9"})
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestRunsExperiment(t *testing.T) {
	code, out, errBuf := runCLI(t, []string{"fig9"})
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	for _, want := range []string{"== fig9", "worst in-band", "completed in"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestExactFlagDisablesSurfaceDuringRun pins the -exact escape hatch:
// the surface is off while experiments run and restored afterwards.
func TestExactFlagDisablesSurfaceDuringRun(t *testing.T) {
	if !surface.Enabled() {
		t.Fatal("surface must start enabled")
	}
	code, out, errBuf := runCLI(t, []string{"-exact", "fig13"})
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !surface.Enabled() {
		t.Error("-exact did not restore the surface after the run")
	}
	if !strings.Contains(out.String(), "== fig13") {
		t.Errorf("experiment did not run under -exact:\n%s", out.String())
	}
}

// TestScenarioFlag pins the declarative path shared with powifi-fleet:
// an experiment scenario file runs through the same facade, and ids or
// configuration flags alongside -scenario are a hard error.
func TestScenarioFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fig9.json")
	if err := os.WriteFile(path, []byte(`{"schema":1,"experiment":"fig9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errBuf := runCLI(t, []string{"-scenario", path})
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "== fig9") {
		t.Errorf("scenario run missing the fig9 table:\n%s", out.String())
	}

	code, _, errBuf = runCLI(t, []string{"-scenario", path, "fig13"})
	if code != 2 || !strings.Contains(errBuf.String(), "conflict with -scenario") {
		t.Errorf("ids alongside -scenario: exit %d, stderr %q", code, errBuf.String())
	}
	code, _, errBuf = runCLI(t, []string{"-scenario", path, "-full"})
	if code != 2 || !strings.Contains(errBuf.String(), "conflict with -scenario") {
		t.Errorf("-full alongside -scenario: exit %d, stderr %q", code, errBuf.String())
	}
}
