package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/surface"
)

func runCLI(t *testing.T, args []string) (code int, out, errBuf bytes.Buffer) {
	t.Helper()
	code = run(context.Background(), args, &out, &errBuf)
	return code, out, errBuf
}

func TestUsageOnNoArgs(t *testing.T) {
	code, _, errBuf := runCLI(t, nil)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	for _, want := range []string{"usage:", "fig9", "table1", "-exact", "-scenario"} {
		if !strings.Contains(errBuf.String(), want) {
			t.Errorf("usage output missing %q", want)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	code, _, errBuf := runCLI(t, []string{"fig99"})
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errBuf.String(), `unknown experiment "fig99"`) {
		t.Errorf("stderr: %s", errBuf.String())
	}
}

func TestUnknownFlag(t *testing.T) {
	code, _, _ := runCLI(t, []string{"-bogus", "fig9"})
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestRunsExperiment(t *testing.T) {
	code, out, errBuf := runCLI(t, []string{"fig9"})
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	for _, want := range []string{"== fig9", "worst in-band", "completed in"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestExactFlagDisablesSurfaceDuringRun pins the -exact escape hatch:
// the surface is off while experiments run and restored afterwards.
func TestExactFlagDisablesSurfaceDuringRun(t *testing.T) {
	if !surface.Enabled() {
		t.Fatal("surface must start enabled")
	}
	code, out, errBuf := runCLI(t, []string{"-exact", "fig13"})
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !surface.Enabled() {
		t.Error("-exact did not restore the surface after the run")
	}
	if !strings.Contains(out.String(), "== fig13") {
		t.Errorf("experiment did not run under -exact:\n%s", out.String())
	}
}

// TestScenarioFlag pins the declarative path shared with powifi-fleet:
// an experiment scenario file runs through the same facade, and ids or
// configuration flags alongside -scenario are a hard error.
func TestScenarioFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fig9.json")
	if err := os.WriteFile(path, []byte(`{"schema":1,"experiment":"fig9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errBuf := runCLI(t, []string{"-scenario", path})
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "== fig9") {
		t.Errorf("scenario run missing the fig9 table:\n%s", out.String())
	}

	code, _, errBuf = runCLI(t, []string{"-scenario", path, "fig13"})
	if code != 2 || !strings.Contains(errBuf.String(), "conflict with -scenario") {
		t.Errorf("ids alongside -scenario: exit %d, stderr %q", code, errBuf.String())
	}
	code, _, errBuf = runCLI(t, []string{"-scenario", path, "-full"})
	if code != 2 || !strings.Contains(errBuf.String(), "conflict with -scenario") {
		t.Errorf("-full alongside -scenario: exit %d, stderr %q", code, errBuf.String())
	}
}

// TestMetricsAddrFlag pins -metrics-addr: it requires a fleet scenario
// (telemetry is fleet-only), rejects experiment-id runs, and announces
// the bound address when it applies.
func TestMetricsAddrFlag(t *testing.T) {
	code, _, errBuf := runCLI(t, []string{"-metrics-addr", "127.0.0.1:0", "fig9"})
	if code != 2 {
		t.Fatalf("ids with -metrics-addr: exit %d, want 2 (stderr: %s)", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "requires -scenario") {
		t.Errorf("stderr: %s", errBuf.String())
	}

	fleet := `{"schema":1,"homes":3,"seed":9,"workers":2,"horizon":"2h0m0s","bin":"30m0s","window":"2ms"}`
	path := filepath.Join(t.TempDir(), "fleet.json")
	if err := os.WriteFile(path, []byte(fleet), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errBuf := runCLI(t, []string{"-scenario", path, "-metrics-addr", "127.0.0.1:0"})
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "serving metrics on http://127.0.0.1:") {
		t.Errorf("stderr does not announce the metrics address: %s", errBuf.String())
	}
	if !strings.Contains(out.String(), "fleet: 3 homes") {
		t.Errorf("scenario output wrong:\n%s", out.String())
	}

	exp := `{"schema":1,"experiment":"fig9"}`
	epath := filepath.Join(t.TempDir(), "exp.json")
	if err := os.WriteFile(epath, []byte(exp), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errBuf = runCLI(t, []string{"-scenario", epath, "-metrics-addr", "127.0.0.1:0"})
	if code != 2 {
		t.Fatalf("experiment scenario with -metrics-addr: exit %d, want 2 (stderr: %s)", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "requires a fleet scenario") {
		t.Errorf("stderr: %s", errBuf.String())
	}
}

// TestProfileFlags pins the -cpuprofile/-memprofile wiring on the bench
// CLI: profiles are written even for experiment-id runs.
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := filepath.Join(dir, "cpu.prof"), filepath.Join(dir, "mem.prof")
	code, _, errBuf := runCLI(t, []string{"-cpuprofile", cpu, "-memprofile", mem, "fig9"})
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	for _, path := range []string{cpu, mem} {
		info, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if info.Size() == 0 {
			t.Errorf("profile %s is empty", path)
		}
	}
}
