// Command powifi-bench regenerates the paper's tables and figures from the
// simulator. Run with no arguments to list experiments; pass experiment
// ids (fig1, fig5, fig6a, ..., table1) or "all". The -full flag switches
// from the quick configuration to the paper-scale one. The -exact flag
// disables the operating-point surface so every rectifier solve runs the
// direct Bessel/Newton path (slower; for validating the surface).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/profiling"
	"repro/internal/surface"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run parses args and regenerates the requested experiments; split from
// main so the CLI surface is testable in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("powifi-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	full := fs.Bool("full", false, "run the paper-scale configuration (slower)")
	exact := fs.Bool("exact", false, "bypass the operating-point surface; solve every operating point exactly")
	cpuProf := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProf := fs.String("memprofile", "", "write a heap profile to this file on exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: powifi-bench [-full] [-exact] <experiment id>... | all\n\nexperiments:\n")
		for _, id := range experiments.IDs() {
			fmt.Fprintf(stderr, "  %-7s %s\n", id, experiments.Describe(id))
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	if *exact {
		prev := surface.Enabled()
		surface.SetEnabled(false)
		defer surface.SetEnabled(prev)
	}
	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(stderr, err)
		}
	}()
	ids := fs.Args()
	if fs.NArg() == 1 && ids[0] == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		if !experiments.Run(id, stdout, !*full) {
			fmt.Fprintf(stderr, "unknown experiment %q\n", id)
			return 1
		}
		fmt.Fprintf(stdout, "(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return 0
}
