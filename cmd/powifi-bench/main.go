// Command powifi-bench regenerates the paper's tables and figures from the
// simulator. Run with no arguments to list experiments; pass experiment
// ids (fig1, fig5, fig6a, ..., table1) or "all". The -full flag switches
// from the quick configuration to the paper-scale one.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	full := flag.Bool("full", false, "run the paper-scale configuration (slower)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [-full] <experiment id>... | all\n\nexperiments:\n", os.Args[0])
		for _, id := range experiments.IDs() {
			fmt.Fprintf(os.Stderr, "  %-7s %s\n", id, experiments.Describe(id))
		}
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	ids := args
	if len(args) == 1 && args[0] == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		if !experiments.Run(id, os.Stdout, !*full) {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
			os.Exit(1)
		}
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
