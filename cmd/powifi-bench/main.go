// Command powifi-bench regenerates the paper's tables and figures from the
// simulator. Run with no arguments to list experiments; pass experiment
// ids (fig1, fig5, fig6a, ..., table1) or "all". The -full flag switches
// from the quick configuration to the paper-scale one. The -exact flag
// disables the operating-point surface so every rectifier solve runs the
// direct Bessel/Newton path (slower; for validating the surface).
//
// The command is a thin flag→Scenario shim over the public SDK: each
// id runs as powifi.NewScenario(powifi.WithExperiment(id), ...), and
// -scenario file.json runs a declarative scenario of any mode instead
// (powifi.LoadScenario; combining it with ids or configuration flags
// is an error).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"time"

	powifi "repro"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		// First interrupt cancels the context (honored between
		// experiments; the runners themselves are not cancellable);
		// unregistering then restores the default handler so a second
		// interrupt kills the process outright.
		<-ctx.Done()
		stop()
	}()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run parses args and regenerates the requested experiments; split from
// main so the CLI surface is testable in-process.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("powifi-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	full := fs.Bool("full", false, "run the paper-scale configuration (slower)")
	exact := fs.Bool("exact", false, "bypass the operating-point surface; solve every operating point exactly")
	scenPath := fs.String("scenario", "", "run a declarative scenario JSON file instead of experiment ids")
	cpuProf := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProf := fs.String("memprofile", "", "write a heap profile to this file on exit")
	metrAddr := fs.String("metrics-addr", "", "serve /metrics and /debug/vars on this address (fleet scenarios only)")
	trOut := fs.String("trace", "", "write the run's trace to this file in Chrome trace-event JSON (fleet scenarios only)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: powifi-bench [-full] [-exact] <experiment id>... | all\n"+
			"       powifi-bench -scenario file.json [-metrics-addr addr] [-trace file.json]\n\nexperiments:\n")
		for _, id := range powifi.Experiments() {
			fmt.Fprintf(stderr, "  %-7s %s\n", id, powifi.DescribeExperiment(id))
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	stopProf, err := powifi.StartProfiling(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(stderr, err)
		}
	}()

	if *scenPath != "" {
		// The scenario file is the single source of configuration.
		if fs.NArg() > 0 {
			fmt.Fprintf(stderr, "experiment ids %v conflict with -scenario: the scenario file is the single source of configuration\n", fs.Args())
			return 2
		}
		var conflicts []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "scenario", "cpuprofile", "memprofile", "metrics-addr", "trace":
			default:
				conflicts = append(conflicts, "-"+f.Name)
			}
		})
		if len(conflicts) > 0 {
			fmt.Fprintf(stderr, "flags %v conflict with -scenario: the scenario file is the single source of configuration\n", conflicts)
			return 2
		}
		data, err := os.ReadFile(*scenPath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		sc, err := powifi.LoadScenario(data)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if *metrAddr != "" {
			// Telemetry is fleet-only; a debug listener on an experiment
			// or home scenario would serve an empty collector forever, so
			// reject it up front.
			if sc.Mode() != powifi.ModeFleet {
				fmt.Fprintf(stderr, "-metrics-addr requires a fleet scenario (got mode %q)\n", sc.Mode())
				return 2
			}
			tel := powifi.NewTelemetry()
			if sc, err = sc.With(powifi.WithTelemetry(tel)); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			ln, err := net.Listen("tcp", *metrAddr)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			// Graceful teardown: an abrupt Close at exit would reset a
			// /metrics scrape mid-response; ServeMetrics' shutdown lets
			// an in-flight scrape finish under a short deadline.
			defer powifi.ServeMetrics(ln, powifi.MetricsHandler(tel))()
			fmt.Fprintf(stderr, "serving metrics on http://%s/metrics\n", ln.Addr())
		}
		var traceFile *os.File
		if *trOut != "" {
			// Tracing is fleet-only, like telemetry: reject other modes
			// up front rather than emitting an empty trace.
			if sc.Mode() != powifi.ModeFleet {
				fmt.Fprintf(stderr, "-trace requires a fleet scenario (got mode %q)\n", sc.Mode())
				return 2
			}
			f, err := os.Create(*trOut)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			traceFile = f
			if sc, err = sc.With(powifi.WithTraceOutput(f)); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
		}
		rep, err := sc.Run(ctx)
		if traceFile != nil {
			// The trace bytes are written during Run; only the close can
			// still fail here.
			if cerr := traceFile.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := rep.WriteText(stdout); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		return 0
	}

	if *metrAddr != "" {
		fmt.Fprintln(stderr, "-metrics-addr requires -scenario with a fleet scenario")
		return 2
	}
	if *trOut != "" {
		fmt.Fprintln(stderr, "-trace requires -scenario with a fleet scenario")
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	ids := fs.Args()
	if fs.NArg() == 1 && ids[0] == "all" {
		ids = powifi.Experiments()
	}
	for _, id := range ids {
		sc, err := powifi.NewScenario(
			powifi.WithExperiment(id),
			powifi.WithFull(*full),
			powifi.WithExact(*exact),
		)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		start := time.Now()
		rep, err := sc.Run(ctx)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := rep.WriteText(stdout); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return 0
}
