// Command powifi-router runs a standalone simulated PoWiFi router and
// reports per-channel occupancy, injector statistics, and the incident
// power a harvesting device would see at a chosen distance — a quick way
// to explore the §3.2 design space from the command line.
//
// Example:
//
//	powifi-router -scheme powifi -delay 100us -qdepth 5 -bg 0.25 -dist 10 -dur 5s
package main //powifi:sdkboundary-ok paper-era exploration CLI predating the powifi SDK; drives internal models directly

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/eventsim"
	"repro/internal/medium"
	"repro/internal/monitor"
	"repro/internal/phy"
	"repro/internal/router"
	"repro/internal/traffic"
	"repro/internal/units"
	"repro/internal/xrand"
)

func parseScheme(s string) (router.Scheme, error) {
	switch strings.ToLower(s) {
	case "baseline":
		return router.Baseline, nil
	case "powifi":
		return router.PoWiFi, nil
	case "noqueue":
		return router.NoQueue, nil
	case "blindudp":
		return router.BlindUDP, nil
	case "equalshare":
		return router.EqualShare, nil
	}
	return 0, fmt.Errorf("unknown scheme %q", s)
}

func main() {
	schemeFlag := flag.String("scheme", "powifi", "baseline|powifi|noqueue|blindudp|equalshare")
	delay := flag.Duration("delay", 100*time.Microsecond, "injector inter-packet delay")
	qdepth := flag.Int("qdepth", 5, "IP_Power queue-depth threshold")
	bg := flag.Float64("bg", 0.25, "background load per channel (airtime fraction)")
	dist := flag.Float64("dist", 10, "harvesting device distance in feet")
	dur := flag.Duration("dur", 5*time.Second, "simulated duration")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	scheme, err := parseScheme(*schemeFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	sched := eventsim.New()
	channels := make(map[phy.Channel]*medium.Channel, 3)
	for _, chNum := range phy.PoWiFiChannels {
		channels[chNum] = medium.NewChannel(chNum, sched)
	}
	cfg := router.DefaultConfig()
	cfg.Scheme = scheme
	cfg.InterPacketDelay = *delay
	cfg.QueueDepthThreshold = *qdepth
	rt := router.New(cfg, sched, channels, 100, *seed)

	monitors := make(map[phy.Channel]*monitor.Monitor, 3)
	for _, chNum := range phy.PoWiFiChannels {
		monitors[chNum] = monitor.New(channels[chNum], 500*time.Millisecond,
			rt.Radio(chNum).MAC.StationID())
	}
	if *bg > 0 {
		for i, chNum := range phy.PoWiFiChannels {
			b := traffic.NewBackground(sched, channels[chNum], 300+i,
				medium.Location{X: 6, Y: 5}, *bg, xrand.NewFromLabel(*seed, chNum.String()))
			b.Start()
		}
	}

	rt.Start()
	sched.RunUntil(*dur)

	fmt.Printf("scheme=%v delay=%v qdepth=%d bg=%.2f dur=%v\n\n", scheme, *delay, *qdepth, *bg, *dur)
	occ := make(map[phy.Channel]float64, 3)
	cum := 0.0
	for _, chNum := range phy.PoWiFiChannels {
		o := monitors[chNum].MeanOccupancy()
		occ[chNum] = o
		cum += o
		in := rt.Radio(chNum).Injector
		fmt.Printf("%-5v occupancy %5.1f%%  injector: attempted %6d  injected %6d  ip_power_drops %6d\n",
			chNum, o*100, in.Attempted, in.Injected, in.DroppedByIPPower)
	}
	fmt.Printf("cumulative occupancy: %.1f%%\n\n", cum*100)

	link := core.PowerLink{
		TxPowerDBm: cfg.TxPowerDBm, TxGainDBi: cfg.AntennaGainDBi, RxGainDBi: 2,
		DistanceFt: *dist, Occupancy: core.OccupancyFromMap(occ),
	}
	fmt.Printf("at %.0f ft: incident %.1f µW (%.1f dBm average)\n",
		*dist, units.Microwatts(link.TotalIncidentW()),
		units.WattsToDBm(link.TotalIncidentW()))
	temp := core.NewBatteryFreeTempSensor()
	fmt.Printf("battery-free temperature sensor: %.2f reads/s\n", temp.UpdateRate(link))
	cam := core.NewBatteryFreeCamera()
	if ift := cam.InterFrameTime(link); ift < 24*time.Hour {
		fmt.Printf("battery-free camera: one frame every %.1f min\n", ift.Minutes())
	} else {
		fmt.Println("battery-free camera: out of range")
	}
}
