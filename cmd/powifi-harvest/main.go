// Command powifi-harvest characterizes the harvester hardware models: the
// return-loss sweep of Fig. 9, the output-power sweep of Fig. 10, the
// sensitivity search of §4.2, and a distance sweep combining them with the
// PoWiFi link budget.
//
// Example:
//
//	powifi-harvest -version battery-free -sweep power
//	powifi-harvest -version battery-recharging -sweep distance -occupancy 0.913
package main //powifi:sdkboundary-ok paper-era characterization CLI predating the powifi SDK; drives internal models directly

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/harvester"
	"repro/internal/phy"
	"repro/internal/units"
)

func main() {
	versionFlag := flag.String("version", "battery-free", "battery-free|battery-recharging")
	sweep := flag.String("sweep", "power", "power|returnloss|distance")
	occupancy := flag.Float64("occupancy", 0.913, "cumulative channel occupancy for the distance sweep")
	flag.Parse()

	var h *harvester.Harvester
	switch strings.ToLower(*versionFlag) {
	case "battery-free":
		h = harvester.NewBatteryFree()
	case "battery-recharging", "battery-charging":
		h = harvester.NewBatteryCharging()
	default:
		fmt.Fprintf(os.Stderr, "unknown version %q\n", *versionFlag)
		os.Exit(2)
	}

	fmt.Printf("%s harvester, sensitivity %.1f dBm at channel 6\n\n",
		h.Version, h.SensitivityDBm(phy.Channel6.FreqHz()))

	switch *sweep {
	case "power":
		fmt.Println("input_dBm  accepted_uW  v_rect  rect_out_uW  harvested_uW")
		for dbm := -20.0; dbm <= 4.01; dbm += 2 {
			op := h.OperatingPoint(units.DBmToWatts(dbm), phy.Channel6.FreqHz())
			fmt.Printf("%9.0f  %11.1f  %6.3f  %11.1f  %12.1f\n",
				dbm, units.Microwatts(op.AcceptedW), op.VRect,
				units.Microwatts(op.RectDCW), units.Microwatts(op.HarvestedW))
		}
	case "returnloss":
		fmt.Println("freq_GHz  return_loss_dB")
		for f := 2.400e9; f <= 2.480e9; f += 2e6 {
			fmt.Printf("%8.4f  %14.2f\n", f/1e9, h.ReturnLossDB(f))
		}
	case "distance":
		fmt.Printf("distance sweep at %.1f%% cumulative occupancy\n", *occupancy*100)
		fmt.Println("dist_ft  incident_dBm  harvested_uW  temp_rate  camera_interframe")
		temp := core.NewBatteryFreeTempSensor()
		cam := core.NewBatteryFreeCamera()
		if h.Version == harvester.BatteryCharging {
			temp = core.NewRechargingTempSensor()
			cam = core.NewRechargingCamera()
		}
		for d := 2.0; d <= 30; d += 2 {
			link := core.PoWiFiLink(d, *occupancy)
			chans, occ := link.FullChannelPowers()
			op := h.BurstyOperating(chans, occ)
			ift := "out of range"
			if t := cam.InterFrameTime(link); t < 24*time.Hour {
				ift = fmt.Sprintf("%.1f min", t.Minutes())
			}
			fmt.Printf("%7.0f  %12.1f  %12.2f  %9.2f  %s\n",
				d, units.WattsToDBm(link.TotalIncidentW()),
				units.Microwatts(op.HarvestedW), temp.UpdateRate(link), ift)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown sweep %q\n", *sweep)
		os.Exit(2)
	}
}
