// Command powifi-fleet runs the fleet-scale deployment study: thousands
// of synthesized homes simulated in parallel, reduced to population
// aggregates (occupancy CDFs, harvested-power distribution, sensor
// latency tails). Results are bit-for-bit identical at any -workers
// value; only wall-clock time changes.
//
// The command is a thin flag→Scenario shim over the public SDK
// (powifi.NewScenario / Scenario.Run): every flag maps to one option,
// and -scenario file.json runs a declarative scenario instead
// (powifi.LoadScenario; combining it with configuration flags is an
// error). Interrupting the process cancels the run's context, so the
// worker pool drains and exits cleanly.
//
// The per-bin rectifier solve is served from the error-bounded
// operating-point surface by default; -exact bypasses the surface and
// pays the full Bessel/Newton solve per bin, which is only useful for
// validating the surface's ε guarantee.
//
// -coarse selects the error-bounded coarse sampling tier for
// million-home sweeps: only anchor bins run the packet-level event
// simulation, the bins between are proxied from each home's exact
// offered-load plan, and any bin whose boot/silence decision is not
// provably stable escalates back to the event simulation. Boot/silence
// decisions stay bit-identical to the default tier; aggregate
// magnitudes carry the tier's certified ε. Incompatible with -devices.
//
// A population device mix (-devices) switches on the stateful
// device-lifecycle engine: each home is assigned one device archetype —
// temp, rtemp, camera, jawbone, liion or nimh — drawn from the given
// shares, storage state of charge is threaded across the home's bins,
// and the report gains per-archetype time-domain sections (time to
// first update, outage fraction, frames captured, state-of-charge
// trajectory, time to full charge). -horizon sets the per-home
// deployment duration for such runs (it overrides -duration; the two
// are aliases otherwise).
//
// -checkpoint FILE makes a sharded sweep resumable: the run
// periodically writes its committed home prefix to FILE (atomically),
// writes it once more on interrupt, and removes it on success. Running
// the same configuration again with the same -checkpoint resumes from
// the prefix and produces output bit-identical to an uninterrupted
// run, at any -workers value. The file refuses to resume under a
// different configuration. Composes with -scenario; incompatible with
// -devices (lifecycle state lives outside the committed prefix).
//
// Failure handling defaults to fail-fast: a home whose simulation
// panics aborts the run with a structured error naming the home.
// -retry N re-attempts each failed home up to N more times on a fresh
// sampler; -skip-failed quarantines homes that exhaust their retries
// into the report's errors section and keeps going; -max-failed N caps
// the quarantine under -skip-failed. -deadline D bounds the run's
// wall-clock time: when it expires the run commits the finished home
// prefix, writes a final checkpoint (with -checkpoint), and emits a
// report marked partial instead of failing. Which homes fail, retry
// and quarantine is workers-invariant, like every other result.
// -faults SPEC arms deterministic fault injection (the chaos-
// certification hook; see internal/faultinject for the grammar) and is
// not meant for production runs.
//
// Exit codes:
//
//	0  run completed; report written
//	1  runtime error (simulation failure, I/O error, cancellation)
//	2  usage error (bad flags or arguments)
//	3  partial result: a -deadline or -max-failed budget ended the run
//	   early; the report was written and covers the committed prefix
//
// Observability is strictly out of band: -telemetry collects run
// metrics (counters, histograms, phase spans, run manifest) without
// changing a byte of output, -metrics-out FILE writes them in
// Prometheus text format, -metrics-addr HOST:PORT serves live /metrics
// and /debug/vars during the run, and -progress draws a live stderr
// ticker on interactive terminals (silently skipped when stderr is
// redirected). -trace FILE records the run's span tree (run → phase →
// worker → home → bin-batch) and per-home flight recorders and writes
// them to FILE in Chrome trace-event JSON, loadable in Perfetto or
// about://tracing; the json report gains a "trace" section whose
// deterministic half is bit-identical at any -workers value. With
// -telemetry the stderr timing line is followed by a table of the
// slowest homes. All of these compose with -scenario.
//
// Examples:
//
//	powifi-fleet -homes 1000 -seed 42
//	powifi-fleet -homes 5000 -workers 8 -duration 24h -format json
//	powifi-fleet -homes 20 -exact -format json   # surface bypass
//	powifi-fleet -devices temp=0.5,camera=0.3,jawbone=0.2 -horizon 72h
//	powifi-fleet -scenario fleet.json -format csv
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"time"

	powifi "repro"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		// First interrupt cancels the run's context for a clean drain;
		// unregistering then restores the default handler so a second
		// interrupt kills the process outright.
		<-ctx.Done()
		stop()
	}()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run parses args and executes the fleet; split from main so the CLI
// surface (flag validation, output schemas, -scenario conflicts,
// -exact parity) is testable in-process.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("powifi-fleet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		homes    = fs.Int("homes", 1000, "number of homes to simulate")
		workers  = fs.Int("workers", 0, "simulation workers (0 = GOMAXPROCS)")
		seed     = fs.Uint64("seed", 1, "fleet seed; all randomness derives from it")
		duration = fs.Duration("duration", 24*time.Hour, "deployment duration per home")
		bin      = fs.Duration("bin", time.Hour, "occupancy logging bin width")
		window   = fs.Duration("window", 10*time.Millisecond, "packet-level sample window per bin")
		format   = fs.String("format", "text", "output format: text, json or csv")
		devices  = fs.String("devices", "", "device-archetype shares enabling the lifecycle engine, e.g. temp=0.5,camera=0.3,jawbone=0.2")
		horizon  = fs.Duration("horizon", 0, "deployment horizon per home (overrides -duration when set)")
		exact    = fs.Bool("exact", false, "bypass the operating-point surface; solve every bin exactly")
		coarse   = fs.Bool("coarse", false, "error-bounded coarse tier: event-simulate anchor bins, proxy the rest (decisions bit-identical, magnitudes within the certified ε)")
		scenPath = fs.String("scenario", "", "run a declarative scenario JSON file instead of the configuration flags")
		quiet    = fs.Bool("q", false, "suppress the timing line on stderr")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile to this file on exit")
		telem    = fs.Bool("telemetry", false, "collect run telemetry; json reports gain a \"telemetry\" section")
		metrOut  = fs.String("metrics-out", "", "write run metrics to this file in Prometheus text format (implies -telemetry)")
		metrAddr = fs.String("metrics-addr", "", "serve live /metrics and /debug/vars on this address (implies -telemetry)")
		progress = fs.Bool("progress", false, "show a live progress line on stderr (interactive terminals only)")
		trOut    = fs.String("trace", "", "write the run's trace (span tree + per-home flight recorders) to this file in Chrome trace-event JSON")
		ckptPath = fs.String("checkpoint", "", "periodically checkpoint the run to this file and resume from it if present; removed on success")
		retry    = fs.Int("retry", 0, "re-attempt each failed home up to this many more times")
		skipF    = fs.Bool("skip-failed", false, "quarantine homes that exhaust their retries instead of aborting")
		maxFail  = fs.Int("max-failed", 0, "end the run with a partial report after this many quarantined homes (requires -skip-failed; 0 = unlimited)")
		deadline = fs.Duration("deadline", 0, "wall-clock budget; on expiry the run ends with a partial report covering the committed homes (exit code 3)")
		faults   = fs.String("faults", "", "arm deterministic fault injection (chaos certification; spec: site@key[,times=N][,delay=D];...)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "unexpected arguments: %v\n", fs.Args())
		return 2
	}

	switch *format {
	case "text", "json", "csv":
	default:
		fmt.Fprintf(stderr, "unknown format %q (want text, json or csv)\n", *format)
		return 2
	}

	var sc *powifi.Scenario
	if *scenPath != "" {
		// The scenario file is the single source of configuration:
		// mixing it with configuration flags would silently ignore one
		// side, so it is an error. Output and tooling flags compose.
		var conflicts []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "scenario", "format", "q", "cpuprofile", "memprofile",
				"telemetry", "metrics-out", "metrics-addr", "progress", "trace",
				"checkpoint", "faults":
			default:
				conflicts = append(conflicts, "-"+f.Name)
			}
		})
		if len(conflicts) > 0 {
			fmt.Fprintf(stderr, "flags %v conflict with -scenario: the scenario file is the single source of configuration\n", conflicts)
			return 2
		}
		data, err := os.ReadFile(*scenPath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if sc, err = powifi.LoadScenario(data); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	} else {
		opts := []powifi.Option{
			powifi.WithHomes(*homes),
			powifi.WithSeed(*seed),
			powifi.WithWorkers(*workers),
			powifi.WithBinWidth(*bin),
			powifi.WithWindow(*window),
			powifi.WithExact(*exact),
			powifi.WithCoarse(*coarse),
		}
		if *horizon != 0 {
			*duration = *horizon
		}
		opts = append(opts, powifi.WithHorizon(*duration))
		if *devices != "" {
			mix, err := powifi.ParseDeviceMix(*devices)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			opts = append(opts, powifi.WithDevices(mix))
		}
		if *retry != 0 || *skipF {
			opts = append(opts, powifi.WithFailurePolicy(powifi.FailurePolicy{Retry: *retry, Skip: *skipF}))
		}
		if *deadline != 0 {
			opts = append(opts, powifi.WithDeadline(*deadline))
		}
		if *maxFail != 0 {
			opts = append(opts, powifi.WithMaxFailedHomes(*maxFail))
		}
		var err error
		if sc, err = powifi.NewScenario(opts...); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}

	// Telemetry and progress are execution state, not configuration, so
	// they attach uniformly — to flag-built and -scenario scenarios
	// alike — via Scenario.With.
	var extra []powifi.Option
	var tel *powifi.Telemetry
	if *telem || *metrOut != "" || *metrAddr != "" {
		tel = powifi.NewTelemetry()
		extra = append(extra, powifi.WithTelemetry(tel))
	}
	var prog *progressTicker
	if *progress && isTerminal(stderr) {
		prog = newProgressTicker(stderr, time.Now)
		extra = append(extra, powifi.WithProgress(prog.update))
	}
	var traceFile *os.File
	if *trOut != "" {
		f, err := os.Create(*trOut)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		traceFile = f
		extra = append(extra, powifi.WithTraceOutput(f))
	}
	if *ckptPath != "" {
		extra = append(extra, powifi.WithCheckpoint(*ckptPath))
	}
	if *faults != "" {
		extra = append(extra, powifi.WithFaults(*faults))
	}
	if len(extra) > 0 {
		var err error
		if sc, err = sc.With(extra...); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	if *metrAddr != "" {
		ln, err := net.Listen("tcp", *metrAddr)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		// Graceful teardown: an abrupt Close at exit would reset a
		// /metrics scrape mid-response; ServeMetrics' shutdown lets an
		// in-flight scrape finish under a short deadline.
		defer powifi.ServeMetrics(ln, powifi.MetricsHandler(tel))()
		if !*quiet {
			fmt.Fprintf(stderr, "serving metrics on http://%s/metrics\n", ln.Addr())
		}
	}

	stopProf, err := powifi.StartProfiling(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(stderr, err)
		}
	}()

	start := time.Now()
	rep, err := sc.Run(ctx)
	prog.finish()
	if traceFile != nil {
		// The trace bytes are written during Run; only the close can
		// still fail here.
		if cerr := traceFile.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if !*quiet {
		if rep.Fleet != nil {
			fmt.Fprintf(stderr, "simulated %d homes in %v\n",
				rep.Fleet.Homes, time.Since(start).Round(time.Millisecond))
		} else {
			fmt.Fprintf(stderr, "completed %s scenario in %v\n",
				rep.Mode, time.Since(start).Round(time.Millisecond))
		}
		if tel != nil {
			writeSlowHomes(stderr, tel)
		}
	}
	endWrite := func() {}
	if tel != nil {
		endWrite = tel.Span("report_write")
	}
	switch *format {
	case "text":
		err = rep.WriteText(stdout)
	case "json":
		err = rep.WriteJSON(stdout)
	case "csv":
		err = rep.WriteCSV(stdout)
	}
	endWrite()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	// The Prometheus file is written after the report so its span list
	// includes report_write; the Report's embedded snapshot is taken
	// earlier, at the end of the run, and does not carry that span.
	if *metrOut != "" {
		if err := writeMetricsFile(*metrOut, tel); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	if rep.Fleet != nil && rep.Fleet.Partial {
		// The report above is complete for the committed prefix; the
		// distinct exit code lets sweep drivers resume or alert without
		// parsing it.
		fmt.Fprintf(stderr, "partial result (%s): aggregates cover %d of %d homes\n",
			rep.Fleet.PartialReason, rep.Fleet.CommittedHomes, rep.Fleet.Homes)
		return 3
	}
	return 0
}

// writeSlowHomes prints the telemetry collector's slowest-homes table
// (label, wall time, dominant span) to stderr. It is diagnostic output
// like the timing line: stdout stays byte-identical with or without it.
func writeSlowHomes(w io.Writer, tel *powifi.Telemetry) {
	snap := tel.Snapshot()
	if len(snap.SlowHomes) == 0 {
		return
	}
	fmt.Fprintln(w, "slowest homes:")
	for _, s := range snap.SlowHomes {
		fmt.Fprintf(w, "  %-18s %10.1f ms  %s\n", s.Label, s.WallMS, s.DominantSpan)
	}
}

// writeMetricsFile dumps the collector's Prometheus text export to path.
func writeMetricsFile(path string, tel *powifi.Telemetry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tel.WritePrometheus(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
