// Command powifi-fleet runs the fleet-scale deployment study: thousands
// of synthesized homes simulated in parallel, reduced to population
// aggregates (occupancy CDFs, harvested-power distribution, sensor
// latency tails). Results are bit-for-bit identical at any -workers
// value; only wall-clock time changes.
//
// The per-bin rectifier solve is served from the error-bounded
// operating-point surface (internal/surface) by default; -exact bypasses
// the surface and pays the full Bessel/Newton solve per bin, which is
// only useful for validating the surface's ε guarantee.
//
// A population device mix (-devices) switches on the stateful
// device-lifecycle engine (internal/lifecycle): each home is assigned
// one device archetype — temp, rtemp, camera, jawbone, liion or nimh —
// drawn from the given shares, storage state of charge is threaded
// across the home's bins, and the report gains per-archetype
// time-domain sections (time to first update, outage fraction, frames
// captured, state-of-charge trajectory, time to full charge).
// -horizon sets the per-home deployment duration for such runs (it
// overrides -duration; the two are aliases otherwise).
//
// Examples:
//
//	powifi-fleet -homes 1000 -seed 42
//	powifi-fleet -homes 5000 -workers 8 -duration 24h -format json
//	powifi-fleet -homes 20 -exact -format json   # surface bypass
//	powifi-fleet -devices temp=0.5,camera=0.3,jawbone=0.2 -horizon 72h
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	powifi "repro"
	"repro/internal/fleet"
	"repro/internal/lifecycle"
	"repro/internal/profiling"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run parses args and executes the fleet; split from main so the CLI
// surface (flag validation, output schemas, -exact parity) is testable
// in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("powifi-fleet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		homes    = fs.Int("homes", 1000, "number of homes to simulate")
		workers  = fs.Int("workers", 0, "simulation workers (0 = GOMAXPROCS)")
		seed     = fs.Uint64("seed", 1, "fleet seed; all randomness derives from it")
		duration = fs.Duration("duration", 24*time.Hour, "deployment duration per home")
		bin      = fs.Duration("bin", time.Hour, "occupancy logging bin width")
		window   = fs.Duration("window", 10*time.Millisecond, "packet-level sample window per bin")
		format   = fs.String("format", "text", "output format: text, json or csv")
		devices  = fs.String("devices", "", "device-archetype shares enabling the lifecycle engine, e.g. temp=0.5,camera=0.3,jawbone=0.2")
		horizon  = fs.Duration("horizon", 0, "deployment horizon per home (overrides -duration when set)")
		exact    = fs.Bool("exact", false, "bypass the operating-point surface; solve every bin exactly")
		quiet    = fs.Bool("q", false, "suppress the timing line on stderr")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "unexpected arguments: %v\n", fs.Args())
		return 2
	}

	switch *format {
	case "text", "json", "csv":
	default:
		fmt.Fprintf(stderr, "unknown format %q (want text, json or csv)\n", *format)
		return 2
	}

	var mix lifecycle.Mix
	if *devices != "" {
		var err error
		if mix, err = lifecycle.ParseMix(*devices); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}
	if *horizon != 0 {
		*duration = *horizon
	}

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(stderr, err)
		}
	}()

	cfg := fleet.Config{
		Homes:    *homes,
		Seed:     *seed,
		Workers:  *workers,
		Hours:    duration.Hours(),
		BinWidth: *bin,
		Window:   *window,
		Exact:    *exact,
		// Only the device mix is set here; withDefaults fills the rest
		// of the population when nothing else was customized.
		Population: fleet.Population{Devices: mix},
	}
	start := time.Now()
	res, err := powifi.RunFleet(cfg)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if !*quiet {
		fmt.Fprintf(stderr, "simulated %d homes with %d workers in %v\n",
			res.Config.Homes, res.Config.Workers, time.Since(start).Round(time.Millisecond))
	}
	switch *format {
	case "text":
		err = res.WriteText(stdout)
	case "json":
		err = res.WriteJSON(stdout)
	case "csv":
		err = res.WriteCSV(stdout)
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	return 0
}
