// Command powifi-fleet runs the fleet-scale deployment study: thousands
// of synthesized homes simulated in parallel, reduced to population
// aggregates (occupancy CDFs, harvested-power distribution, sensor
// latency tails). Results are bit-for-bit identical at any -workers
// value; only wall-clock time changes.
//
// Examples:
//
//	powifi-fleet -homes 1000 -seed 42
//	powifi-fleet -homes 5000 -workers 8 -duration 24h -format json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	powifi "repro"
	"repro/internal/fleet"
)

func main() {
	var (
		homes    = flag.Int("homes", 1000, "number of homes to simulate")
		workers  = flag.Int("workers", 0, "simulation workers (0 = GOMAXPROCS)")
		seed     = flag.Uint64("seed", 1, "fleet seed; all randomness derives from it")
		duration = flag.Duration("duration", 24*time.Hour, "deployment duration per home")
		bin      = flag.Duration("bin", time.Hour, "occupancy logging bin width")
		window   = flag.Duration("window", 10*time.Millisecond, "packet-level sample window per bin")
		format   = flag.String("format", "text", "output format: text, json or csv")
		quiet    = flag.Bool("q", false, "suppress the timing line on stderr")
	)
	flag.Parse()

	switch *format {
	case "text", "json", "csv":
	default:
		fmt.Fprintf(os.Stderr, "unknown format %q (want text, json or csv)\n", *format)
		os.Exit(2)
	}

	cfg := fleet.Config{
		Homes:    *homes,
		Seed:     *seed,
		Workers:  *workers,
		Hours:    duration.Hours(),
		BinWidth: *bin,
		Window:   *window,
	}
	start := time.Now()
	res, err := powifi.RunFleet(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "simulated %d homes with %d workers in %v\n",
			res.Config.Homes, res.Config.Workers, time.Since(start).Round(time.Millisecond))
	}
	switch *format {
	case "text":
		err = res.WriteText(os.Stdout)
	case "json":
		err = res.WriteJSON(os.Stdout)
	case "csv":
		err = res.WriteCSV(os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
