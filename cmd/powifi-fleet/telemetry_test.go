package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	powifi "repro"
)

// TestTelemetryFlag pins the -telemetry surface: the JSON report gains
// a "telemetry" section with work counters and a run manifest, and the
// simulation sections stay byte-identical to a run without the flag.
func TestTelemetryFlag(t *testing.T) {
	code, plain, errBuf := runCLI(t, tinyArgs("-format", "json"))
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	code, out, errBuf := runCLI(t, tinyArgs("-format", "json", "-telemetry"))
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	var rep powifi.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Telemetry == nil {
		t.Fatal("-telemetry produced no telemetry section")
	}
	if rep.Telemetry.Counters["homes"] != 3 {
		t.Errorf("telemetry counters: %v", rep.Telemetry.Counters)
	}
	if rep.Telemetry.Manifest.Seed != 9 || rep.Telemetry.Manifest.GoVersion == "" {
		t.Errorf("telemetry manifest: %+v", rep.Telemetry.Manifest)
	}

	// Out of band: dropping the additive section restores the plain
	// report byte for byte.
	rep.Telemetry = nil
	re, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(re)) != strings.TrimSpace(plain.String()) {
		t.Errorf("-telemetry changed the simulation sections:\n--- plain ---\n%s\n--- stripped ---\n%s",
			plain.String(), re)
	}
}

// TestMetricsOutFile pins -metrics-out: a Prometheus text file with the
// run's counters and, because it is written after the report, the
// report_write span.
func TestMetricsOutFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.prom")
	code, _, errBuf := runCLI(t, tinyArgs("-metrics-out", path))
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"powifi_homes_total 3",
		"powifi_run_info{seed=\"9\"",
		"powifi_span_wall_seconds{phase=\"simulate\"}",
		"powifi_span_wall_seconds{phase=\"report_write\"}",
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("metrics file missing %q:\n%s", want, data)
		}
	}
}

// TestMetricsAddrServes pins -metrics-addr: the listener binds before
// the run and its address is announced on stderr.
func TestMetricsAddrServes(t *testing.T) {
	args := []string{"-homes", "3", "-seed", "9", "-duration", "2h", "-bin", "30m",
		"-window", "2ms", "-workers", "2", "-metrics-addr", "127.0.0.1:0"}
	code, _, errBuf := runCLI(t, args)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "serving metrics on http://127.0.0.1:") {
		t.Errorf("stderr does not announce the metrics address: %s", errBuf.String())
	}
	code, _, errBuf = runCLI(t, tinyArgs("-metrics-addr", "256.0.0.1:bad"))
	if code != 1 {
		t.Fatalf("bad address: exit %d, want 1 (stderr: %s)", code, errBuf.String())
	}
}

// TestTelemetryComposesWithScenario: telemetry and progress are tooling
// flags, exempt from the -scenario conflict check.
func TestTelemetryComposesWithScenario(t *testing.T) {
	scen := `{"schema":1,"homes":3,"seed":9,"workers":2,"horizon":"2h0m0s","bin":"30m0s","window":"2ms"}`
	path := filepath.Join(t.TempDir(), "tiny.json")
	if err := os.WriteFile(path, []byte(scen), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errBuf := runCLI(t, []string{"-scenario", path, "-format", "json", "-q", "-telemetry", "-progress"})
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	var rep powifi.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Telemetry == nil {
		t.Error("-scenario with -telemetry produced no telemetry section")
	}
}

// TestProgressSilentWhenNotTTY: with stderr redirected (a bytes.Buffer
// here, a file or pipe in real use) -progress must write no control
// sequences at all.
func TestProgressSilentWhenNotTTY(t *testing.T) {
	code, _, errBuf := runCLI(t, tinyArgs("-progress"))
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if strings.ContainsAny(errBuf.String(), "\r\x1b") {
		t.Errorf("progress control sequences leaked to non-TTY stderr: %q", errBuf.String())
	}
}

// TestProgressTicker unit-tests the renderer with an injected clock:
// first update draws, updates inside the throttle window are dropped,
// the final update always draws, and finish erases the line.
func TestProgressTicker(t *testing.T) {
	var buf strings.Builder
	clock := time.Unix(0, 0)
	p := newProgressTicker(&buf, func() time.Time { return clock })

	clock = clock.Add(time.Second)
	p.update(10, 100)
	first := buf.String()
	if !strings.Contains(first, "\r10/100 homes") || !strings.Contains(first, "10 homes/s") {
		t.Errorf("first repaint wrong: %q", first)
	}
	if !strings.Contains(first, "ETA 9s") {
		t.Errorf("ETA wrong (90 homes at 10/s): %q", first)
	}

	clock = clock.Add(progressInterval / 2)
	p.update(20, 100)
	if buf.String() != first {
		t.Error("update inside the throttle window repainted")
	}

	clock = clock.Add(progressInterval)
	p.update(30, 100)
	if !strings.Contains(buf.String(), "\r30/100 homes") {
		t.Errorf("update past the throttle window did not repaint: %q", buf.String())
	}

	// The final update bypasses the throttle so the line never shows a
	// stale count at completion.
	p.update(100, 100)
	if !strings.Contains(buf.String(), "\r100/100 homes") {
		t.Errorf("final update did not repaint: %q", buf.String())
	}

	p.finish()
	if !strings.HasSuffix(buf.String(), "\r\x1b[K") {
		t.Errorf("finish did not erase the line: %q", buf.String())
	}
	n := len(buf.String())
	p.finish()
	if len(buf.String()) != n {
		t.Error("second finish wrote again")
	}

	var nilTicker *progressTicker
	nilTicker.finish() // must not panic
}

// TestIsTerminal: buffers and regular files are not terminals.
func TestIsTerminal(t *testing.T) {
	if isTerminal(&strings.Builder{}) {
		t.Error("strings.Builder reported as a terminal")
	}
	f, err := os.CreateTemp(t.TempDir(), "notty")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if isTerminal(f) {
		t.Error("regular file reported as a terminal")
	}
}

// TestProfileFlags pins the -cpuprofile/-memprofile wiring: both files
// are created and flushed by the run's deferred stop.
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := filepath.Join(dir, "cpu.prof"), filepath.Join(dir, "mem.prof")
	code, _, errBuf := runCLI(t, tinyArgs("-cpuprofile", cpu, "-memprofile", mem))
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	for _, path := range []string{cpu, mem} {
		info, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if info.Size() == 0 {
			t.Errorf("profile %s is empty", path)
		}
	}
	// An unwritable profile path is a startup error, before any
	// simulation work.
	code, _, errBuf = runCLI(t, tinyArgs("-cpuprofile", filepath.Join(dir, "no", "cpu.prof")))
	if code != 1 {
		t.Fatalf("unwritable profile path: exit %d, want 1 (stderr: %s)", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "create cpu profile") {
		t.Errorf("stderr: %s", errBuf.String())
	}
}
