package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	powifi "repro"
)

// TestExitCodes pins the command's documented exit-code contract:
// 0 success, 1 runtime error, 2 usage error, 3 partial result.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name   string
		args   []string
		code   int
		stderr string // substring expected on stderr ("" = none required)
	}{
		{"success", tinyArgs(), 0, ""},
		{"usage: unknown flag", []string{"-bogus"}, 2, "flag provided but not defined"},
		{"usage: bad format", tinyArgs("-format", "xml"), 2, "unknown format"},
		{"runtime: missing scenario file", []string{"-scenario", "no/such/file.json", "-q"}, 1, "no such file"},
		{"runtime: injected home failure", tinyArgs("-faults", "home.panic@1"), 1, "home 1 (fleet/home/1) failed after 1 attempt(s)"},
		{"partial: deadline", tinyArgs("-deadline", "1ns"), 3, "partial result (deadline)"},
		{"partial: failure budget",
			tinyArgs("-skip-failed", "-max-failed", "1",
				"-faults", "home.panic@0,times=-1;home.panic@1,times=-1"),
			3, "partial result (failure_budget)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, errBuf := runCLI(t, tc.args)
			if code != tc.code {
				t.Fatalf("exit code %d, want %d (stderr: %s)", code, tc.code, errBuf.String())
			}
			if tc.stderr != "" && !strings.Contains(errBuf.String(), tc.stderr) {
				t.Errorf("stderr %q missing %q", errBuf.String(), tc.stderr)
			}
		})
	}
}

// TestPartialReportWritten pins that exit code 3 still writes a full
// report for the committed prefix — a partial result is a result, not
// a failure — with the partial marker and reason in the JSON.
func TestPartialReportWritten(t *testing.T) {
	code, out, errBuf := runCLI(t, tinyArgs("-format", "json",
		"-skip-failed", "-max-failed", "1",
		"-faults", "home.panic@0,times=-1;home.panic@1,times=-1"))
	if code != 3 {
		t.Fatalf("exit %d, want 3 (stderr: %s)", code, errBuf.String())
	}
	var rep struct {
		Fleet *powifi.FleetSummary `json:"fleet"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("partial report is not valid JSON: %v", err)
	}
	if rep.Fleet == nil || !rep.Fleet.Partial || rep.Fleet.PartialReason != powifi.PartialFailureBudget {
		t.Fatalf("fleet section = %+v, want partial with reason %q", rep.Fleet, powifi.PartialFailureBudget)
	}
	if len(rep.Fleet.Errors) != 2 {
		t.Errorf("report carries %d quarantined-home errors, want 2", len(rep.Fleet.Errors))
	}
}

// TestFaultsComposeWithScenario pins -faults as execution state: like
// -telemetry and -checkpoint it attaches to a -scenario run instead of
// conflicting with it.
func TestFaultsComposeWithScenario(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.json")
	sc := `{"schema":1,"homes":3,"seed":9,"workers":2,"horizon":"2h","bin":"30m","window":"2ms","failure_policy":{"retry":1}}`
	if err := os.WriteFile(path, []byte(sc), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errBuf := runCLI(t, []string{"-scenario", path, "-q", "-faults", "home.panic@1"})
	if code != 0 {
		t.Fatalf("exit %d, want 0 (retry policy absorbs the single injected panic); stderr: %s",
			code, errBuf.String())
	}
}
