package main

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	powifi "repro"
)

// tinyArgs is a fleet small enough for CLI tests: 3 homes × 4 bins.
func tinyArgs(extra ...string) []string {
	base := []string{"-homes", "3", "-seed", "9", "-duration", "2h", "-bin", "30m",
		"-window", "2ms", "-workers", "2", "-q"}
	return append(base, extra...)
}

func runCLI(t *testing.T, args []string) (code int, out, errBuf bytes.Buffer) {
	t.Helper()
	code = run(context.Background(), args, &out, &errBuf)
	return code, out, errBuf
}

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
		want string // substring expected on stderr
	}{
		{"unknown format", tinyArgs("-format", "xml"), 2, "unknown format"},
		{"unknown flag", []string{"-bogus"}, 2, "flag provided but not defined"},
		{"stray positional", tinyArgs("json"), 2, "unexpected arguments"},
		{"bad homes", []string{"-homes", "0", "-q"}, 1, "Homes"},
		{"bad duration", []string{"-homes", "1", "-duration", "10m", "-bin", "1h", "-q"}, 1, "shorter than one"},
		{"bad device mix", tinyArgs("-devices", "toaster=1"), 2, "unknown device archetype"},
		{"malformed device mix", tinyArgs("-devices", "temp"), 2, "not name=weight"},
		{"zero device mix", tinyArgs("-devices", "temp=0"), 2, "no positive share"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, errBuf := runCLI(t, tc.args)
			if code != tc.code {
				t.Fatalf("exit code %d, want %d (stderr: %s)", code, tc.code, errBuf.String())
			}
			if !strings.Contains(errBuf.String(), tc.want) {
				t.Errorf("stderr %q missing %q", errBuf.String(), tc.want)
			}
		})
	}
}

func TestTextOutput(t *testing.T) {
	code, out, errBuf := runCLI(t, tinyArgs())
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	for _, want := range []string{"fleet: 3 homes x 2 h (seed 9", "cumulative occupancy per home", "occupancy CDF"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("text output missing %q:\n%s", want, out.String())
		}
	}
}

// TestJSONSchemaRoundTrip pins the JSON schema: the CLI emits the
// versioned powifi.Report envelope ("schema": 1) whose fleet section
// must decode into powifi.FleetSummary and survive a
// decode→encode→decode round trip unchanged (no lossy fields, no
// unserializable values).
func TestJSONSchemaRoundTrip(t *testing.T) {
	code, out, errBuf := runCLI(t, tinyArgs("-format", "json"))
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	var rep powifi.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("CLI JSON does not decode into powifi.Report: %v", err)
	}
	if rep.Schema != powifi.ReportSchema || rep.Version != powifi.Version || rep.Mode != powifi.ModeFleet {
		t.Errorf("report envelope wrong: schema=%d version=%q mode=%q", rep.Schema, rep.Version, rep.Mode)
	}
	if rep.Fleet == nil {
		t.Fatal("report missing the fleet section")
	}
	if rep.Fleet.Homes != 3 || rep.Fleet.Seed != 9 || rep.Fleet.TotalBins != 12 {
		t.Errorf("decoded summary wrong: homes=%d seed=%d bins=%d",
			rep.Fleet.Homes, rep.Fleet.Seed, rep.Fleet.TotalBins)
	}
	re, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var rep2 powifi.Report
	if err := json.Unmarshal(re, &rep2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, rep2) {
		t.Errorf("JSON round trip not stable:\nfirst  %+v\nsecond %+v", rep, rep2)
	}
	// Schema keys the dashboards depend on must be present verbatim.
	var raw map[string]any
	if err := json.Unmarshal(out.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"schema", "version", "mode", "fleet"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("JSON output missing envelope key %q", key)
		}
	}
	fl, ok := raw["fleet"].(map[string]any)
	if !ok {
		t.Fatal("fleet section is not an object")
	}
	for _, key := range []string{"homes", "seed", "total_bins", "silent_fraction",
		"home_occupancy_pct", "channel_occupancy_pct", "home_harvest_uw",
		"bin_occupancy_pct", "bin_harvest_uw", "update_latency_s",
		"mean_update_rate_hz", "home_occupancy_cdf", "bin_harvest_cdf", "bin_latency_cdf"} {
		if _, ok := fl[key]; !ok {
			t.Errorf("fleet JSON missing key %q", key)
		}
	}
}

// TestCSVSchemaRoundTrip pins the CSV schema: parseable by encoding/csv,
// fixed header, known sections, and the dist rows numeric.
func TestCSVSchemaRoundTrip(t *testing.T) {
	code, out, errBuf := runCLI(t, tinyArgs("-format", "csv"))
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	rows, err := csv.NewReader(strings.NewReader(out.String())).ReadAll()
	if err != nil {
		t.Fatalf("CLI CSV does not parse: %v", err)
	}
	wantHeader := []string{"section", "name", "n", "mean", "stddev", "min", "max", "p50", "p95", "p99", "underflow", "overflow"}
	if !reflect.DeepEqual(rows[0], wantHeader) {
		t.Fatalf("CSV header changed: %v", rows[0])
	}
	sections := map[string]int{}
	for _, row := range rows[1:] {
		if len(row) != len(wantHeader) {
			t.Fatalf("ragged CSV row: %v", row)
		}
		sections[row[0]]++
	}
	for _, want := range []string{"dist", "population", "scalar", "cdf"} {
		if sections[want] == 0 {
			t.Errorf("CSV missing section %q (got %v)", want, sections)
		}
	}
}

// TestLifecycleFlags pins the -devices/-horizon surface: the mix
// switches on the lifecycle engine (text section + JSON subtree with a
// stable schema), -horizon overrides -duration, and the JSON round
// trip stays lossless with the new section present.
func TestLifecycleFlags(t *testing.T) {
	args := tinyArgs("-devices", "temp=0.5,camera=0.3,jawbone=0.2", "-horizon", "3h", "-format", "json")
	code, out, errBuf := runCLI(t, args)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	var rep powifi.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	s := rep.Fleet
	if s == nil {
		t.Fatal("report missing the fleet section")
	}
	if s.Hours != 3 {
		t.Errorf("-horizon 3h resolved to %v hours (should override -duration 2h)", s.Hours)
	}
	if s.Lifecycle == nil || len(s.Lifecycle.Archetypes) == 0 {
		t.Fatal("JSON output missing the lifecycle section")
	}
	if s.Population.Devices.Total() != 1 {
		t.Errorf("population device mix not echoed: %v", s.Population.Devices)
	}
	for _, a := range s.Lifecycle.Archetypes {
		if a.Homes == 0 {
			t.Errorf("archetype %s reported with zero homes", a.Kind)
		}
	}
	re, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var rep2 powifi.Report
	if err := json.Unmarshal(re, &rep2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, rep2) {
		t.Error("lifecycle JSON round trip not stable")
	}

	// Schema keys the dashboards depend on.
	var raw map[string]any
	if err := json.Unmarshal(out.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	fl, ok := raw["fleet"].(map[string]any)
	if !ok {
		t.Fatal("JSON output missing key \"fleet\"")
	}
	lc, ok := fl["lifecycle"].(map[string]any)
	if !ok {
		t.Fatal("JSON output missing key \"lifecycle\"")
	}
	archs, ok := lc["archetypes"].([]any)
	if !ok || len(archs) == 0 {
		t.Fatal("lifecycle.archetypes missing or empty")
	}
	arch := archs[0].(map[string]any)
	for _, key := range []string{"kind", "homes", "total_bins", "outage_bins",
		"time_to_first_update_s", "homes_never_active", "home_outage_pct",
		"updates_per_home_mean", "frames_per_home_mean", "update_interval_s",
		"soc_pct", "final_soc_pct_mean", "min_soc_pct_mean", "charge_time_s", "homes_charged"} {
		if _, ok := arch[key]; !ok {
			t.Errorf("lifecycle archetype JSON missing key %q", key)
		}
	}

	// Text mode grows the lifecycle section; CSV gains lifecycle rows.
	code, out, errBuf = runCLI(t, tinyArgs("-devices", "temp=1"))
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "device lifecycle (temp=1):") {
		t.Errorf("text output missing lifecycle section:\n%s", out.String())
	}
	code, out, errBuf = runCLI(t, tinyArgs("-devices", "temp=1", "-format", "csv"))
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "lifecycle/temp/time_to_first_update_s") {
		t.Error("CSV output missing lifecycle rows")
	}
}

// TestScenarioFlag pins the declarative path: a -scenario file must
// reproduce the equivalent flag run byte for byte in every format, and
// configuration flags alongside -scenario are a hard error rather than
// a silent merge.
func TestScenarioFlag(t *testing.T) {
	scen := `{"schema":1,"homes":3,"seed":9,"workers":2,"horizon":"2h0m0s","bin":"30m0s","window":"2ms"}`
	path := filepath.Join(t.TempDir(), "tiny.json")
	if err := os.WriteFile(path, []byte(scen), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, format := range []string{"text", "json", "csv"} {
		code, fromFlags, errBuf := runCLI(t, tinyArgs("-format", format))
		if code != 0 {
			t.Fatalf("flags (%s): exit %d: %s", format, code, errBuf.String())
		}
		code, fromFile, errBuf := runCLI(t, []string{"-scenario", path, "-format", format, "-q"})
		if code != 0 {
			t.Fatalf("-scenario (%s): exit %d: %s", format, code, errBuf.String())
		}
		if !bytes.Equal(fromFlags.Bytes(), fromFile.Bytes()) {
			t.Errorf("%s output differs between flags and -scenario:\n--- flags ---\n%s--- scenario ---\n%s",
				format, fromFlags.String(), fromFile.String())
		}
	}

	// Conflicting flags: a clear error, exit 2.
	code, _, errBuf := runCLI(t, []string{"-scenario", path, "-homes", "5", "-q"})
	if code != 2 {
		t.Fatalf("-scenario with -homes: exit %d, want 2 (stderr: %s)", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "conflict with -scenario") {
		t.Errorf("stderr %q missing the conflict explanation", errBuf.String())
	}

	// A broken scenario file: loud failure, exit 1.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":1,"bogus":true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errBuf = runCLI(t, []string{"-scenario", bad, "-q"})
	if code != 1 {
		t.Fatalf("bad scenario: exit %d, want 1", code)
	}
	if !strings.Contains(errBuf.String(), "bogus") {
		t.Errorf("stderr %q does not name the unknown field", errBuf.String())
	}
}

// TestExactParity is the CLI-level --exact check: a tiny fleet run with
// and without the operating-point surface must agree exactly on
// occupancy and bin accounting and within the surface's ε on the
// energy-side means.
func TestExactParity(t *testing.T) {
	decode := func(args []string) *powifi.FleetSummary {
		t.Helper()
		code, out, errBuf := runCLI(t, args)
		if code != 0 {
			t.Fatalf("exit %d: %s", code, errBuf.String())
		}
		var rep powifi.Report
		if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
			t.Fatal(err)
		}
		if rep.Fleet == nil {
			t.Fatal("report missing the fleet section")
		}
		return rep.Fleet
	}
	surf := decode(tinyArgs("-format", "json"))
	exact := decode(tinyArgs("-format", "json", "-exact"))

	if surf.HomeOccupancyPct != exact.HomeOccupancyPct {
		t.Errorf("occupancy stats diverged between paths:\nsurface %+v\nexact   %+v",
			surf.HomeOccupancyPct, exact.HomeOccupancyPct)
	}
	if surf.TotalBins != exact.TotalBins || surf.SilentBins != exact.SilentBins {
		t.Errorf("bin accounting diverged: %d/%d vs %d/%d",
			surf.TotalBins, surf.SilentBins, exact.TotalBins, exact.SilentBins)
	}
	const eps = 1e-6
	if d := math.Abs(surf.HomeHarvestUW.Mean - exact.HomeHarvestUW.Mean); d > math.Max(eps*exact.HomeHarvestUW.Mean, 1e-3) {
		t.Errorf("mean harvest diverged beyond ε: surface %v, exact %v µW",
			surf.HomeHarvestUW.Mean, exact.HomeHarvestUW.Mean)
	}
	if d := math.Abs(surf.MeanUpdateRateHz - exact.MeanUpdateRateHz); d > math.Max(eps*exact.MeanUpdateRateHz, 1e-6) {
		t.Errorf("mean rate diverged beyond ε: surface %v, exact %v Hz",
			surf.MeanUpdateRateHz, exact.MeanUpdateRateHz)
	}
}

// TestCheckpointResumeCLI is the end-to-end kill-and-resume drill: a
// run with -checkpoint is interrupted partway (here by breaking out of
// the SDK's Homes stream under the identical configuration, which
// exercises the same abort-write path an interrupt signal does), then
// the CLI is invoked again with the same flags. It must resume from
// the file, emit stdout byte-identical to a never-interrupted run —
// including at a different -workers value — and remove the checkpoint.
func TestCheckpointResumeCLI(t *testing.T) {
	code, want, errBuf := runCLI(t, tinyArgs("-format", "json"))
	if code != 0 {
		t.Fatalf("baseline exit %d: %s", code, errBuf.String())
	}

	// Interrupted leg: the same configuration tinyArgs describes, run
	// through the SDK with an early break so a committed-prefix
	// checkpoint is left on disk.
	path := filepath.Join(t.TempDir(), "fleet.ckpt")
	sc, err := powifi.NewScenario(
		powifi.WithHomes(3), powifi.WithSeed(9), powifi.WithWorkers(2),
		powifi.WithHorizon(2*time.Hour), powifi.WithBinWidth(30*time.Minute),
		powifi.WithWindow(2*time.Millisecond), powifi.WithCheckpoint(path),
	)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for _, err := range sc.Homes(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		if seen++; seen == 1 {
			break
		}
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("interrupted run left no checkpoint: %v", err)
	}

	// Resume leg, at a different worker count.
	code, out, errBuf := runCLI(t, tinyArgs("-format", "json", "-checkpoint", path, "-workers", "1"))
	if code != 0 {
		t.Fatalf("resume exit %d: %s", code, errBuf.String())
	}
	if !bytes.Equal(out.Bytes(), want.Bytes()) {
		t.Error("resumed CLI output differs from uninterrupted run")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("checkpoint not removed after successful run (stat: %v)", err)
	}

	// -checkpoint composes with -scenario (execution state, like
	// -telemetry), so a declarative sweep is resumable too.
	scenFile := filepath.Join(t.TempDir(), "fleet.json")
	data, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(scenFile, data, 0o644); err != nil {
		t.Fatal(err)
	}
	code, scenOut, errBuf := runCLI(t, []string{"-scenario", scenFile, "-checkpoint", path, "-format", "json", "-q"})
	if code != 0 {
		t.Fatalf("scenario+checkpoint exit %d: %s", code, errBuf.String())
	}
	if !bytes.Equal(scenOut.Bytes(), want.Bytes()) {
		t.Error("scenario+checkpoint output differs from flag-built run")
	}
}
