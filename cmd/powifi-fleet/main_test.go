package main

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/fleet"
)

// tinyArgs is a fleet small enough for CLI tests: 3 homes × 4 bins.
func tinyArgs(extra ...string) []string {
	base := []string{"-homes", "3", "-seed", "9", "-duration", "2h", "-bin", "30m",
		"-window", "2ms", "-workers", "2", "-q"}
	return append(base, extra...)
}

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
		want string // substring expected on stderr
	}{
		{"unknown format", tinyArgs("-format", "xml"), 2, "unknown format"},
		{"unknown flag", []string{"-bogus"}, 2, "flag provided but not defined"},
		{"stray positional", tinyArgs("json"), 2, "unexpected arguments"},
		{"bad homes", []string{"-homes", "0", "-q"}, 1, "Homes"},
		{"bad duration", []string{"-homes", "1", "-duration", "10m", "-bin", "1h", "-q"}, 1, "shorter than one"},
		{"bad device mix", tinyArgs("-devices", "toaster=1"), 2, "unknown device archetype"},
		{"malformed device mix", tinyArgs("-devices", "temp"), 2, "not name=weight"},
		{"zero device mix", tinyArgs("-devices", "temp=0"), 2, "no positive share"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errBuf bytes.Buffer
			if code := run(tc.args, &out, &errBuf); code != tc.code {
				t.Fatalf("exit code %d, want %d (stderr: %s)", code, tc.code, errBuf.String())
			}
			if !strings.Contains(errBuf.String(), tc.want) {
				t.Errorf("stderr %q missing %q", errBuf.String(), tc.want)
			}
		})
	}
}

func TestTextOutput(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run(tinyArgs(), &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	for _, want := range []string{"fleet: 3 homes x 2 h (seed 9", "cumulative occupancy per home", "occupancy CDF"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("text output missing %q:\n%s", want, out.String())
		}
	}
}

// TestJSONSchemaRoundTrip pins the JSON schema: the CLI's output must
// decode into fleet.Summary and survive a decode→encode→decode round
// trip unchanged (no lossy fields, no unserializable values).
func TestJSONSchemaRoundTrip(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run(tinyArgs("-format", "json"), &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	var s fleet.Summary
	if err := json.Unmarshal(out.Bytes(), &s); err != nil {
		t.Fatalf("CLI JSON does not decode into fleet.Summary: %v", err)
	}
	if s.Homes != 3 || s.Seed != 9 || s.TotalBins != 12 {
		t.Errorf("decoded summary wrong: homes=%d seed=%d bins=%d", s.Homes, s.Seed, s.TotalBins)
	}
	re, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var s2 fleet.Summary
	if err := json.Unmarshal(re, &s2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, s2) {
		t.Errorf("JSON round trip not stable:\nfirst  %+v\nsecond %+v", s, s2)
	}
	// Schema keys the dashboards depend on must be present verbatim.
	var raw map[string]any
	if err := json.Unmarshal(out.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"homes", "seed", "total_bins", "silent_fraction",
		"home_occupancy_pct", "channel_occupancy_pct", "home_harvest_uw",
		"bin_occupancy_pct", "bin_harvest_uw", "update_latency_s",
		"mean_update_rate_hz", "home_occupancy_cdf", "bin_harvest_cdf", "bin_latency_cdf"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("JSON output missing key %q", key)
		}
	}
}

// TestCSVSchemaRoundTrip pins the CSV schema: parseable by encoding/csv,
// fixed header, known sections, and the dist rows numeric.
func TestCSVSchemaRoundTrip(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run(tinyArgs("-format", "csv"), &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	rows, err := csv.NewReader(strings.NewReader(out.String())).ReadAll()
	if err != nil {
		t.Fatalf("CLI CSV does not parse: %v", err)
	}
	wantHeader := []string{"section", "name", "n", "mean", "stddev", "min", "max", "p50", "p95", "p99", "underflow", "overflow"}
	if !reflect.DeepEqual(rows[0], wantHeader) {
		t.Fatalf("CSV header changed: %v", rows[0])
	}
	sections := map[string]int{}
	for _, row := range rows[1:] {
		if len(row) != len(wantHeader) {
			t.Fatalf("ragged CSV row: %v", row)
		}
		sections[row[0]]++
	}
	for _, want := range []string{"dist", "population", "scalar", "cdf"} {
		if sections[want] == 0 {
			t.Errorf("CSV missing section %q (got %v)", want, sections)
		}
	}
}

// TestLifecycleFlags pins the -devices/-horizon surface: the mix
// switches on the lifecycle engine (text section + JSON subtree with a
// stable schema), -horizon overrides -duration, and the JSON round
// trip stays lossless with the new section present.
func TestLifecycleFlags(t *testing.T) {
	args := tinyArgs("-devices", "temp=0.5,camera=0.3,jawbone=0.2", "-horizon", "3h", "-format", "json")
	var out, errBuf bytes.Buffer
	if code := run(args, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	var s fleet.Summary
	if err := json.Unmarshal(out.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if s.Hours != 3 {
		t.Errorf("-horizon 3h resolved to %v hours (should override -duration 2h)", s.Hours)
	}
	if s.Lifecycle == nil || len(s.Lifecycle.Archetypes) == 0 {
		t.Fatal("JSON output missing the lifecycle section")
	}
	if s.Population.Devices.Total() != 1 {
		t.Errorf("population device mix not echoed: %v", s.Population.Devices)
	}
	for _, a := range s.Lifecycle.Archetypes {
		if a.Homes == 0 {
			t.Errorf("archetype %s reported with zero homes", a.Kind)
		}
	}
	re, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var s2 fleet.Summary
	if err := json.Unmarshal(re, &s2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, s2) {
		t.Error("lifecycle JSON round trip not stable")
	}

	// Schema keys the dashboards depend on.
	var raw map[string]any
	if err := json.Unmarshal(out.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	lc, ok := raw["lifecycle"].(map[string]any)
	if !ok {
		t.Fatal("JSON output missing key \"lifecycle\"")
	}
	archs, ok := lc["archetypes"].([]any)
	if !ok || len(archs) == 0 {
		t.Fatal("lifecycle.archetypes missing or empty")
	}
	arch := archs[0].(map[string]any)
	for _, key := range []string{"kind", "homes", "total_bins", "outage_bins",
		"time_to_first_update_s", "homes_never_active", "home_outage_pct",
		"updates_per_home_mean", "frames_per_home_mean", "update_interval_s",
		"soc_pct", "final_soc_pct_mean", "min_soc_pct_mean", "charge_time_s", "homes_charged"} {
		if _, ok := arch[key]; !ok {
			t.Errorf("lifecycle archetype JSON missing key %q", key)
		}
	}

	// Text mode grows the lifecycle section; CSV gains lifecycle rows.
	out.Reset()
	if code := run(tinyArgs("-devices", "temp=1"), &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "device lifecycle (temp=1):") {
		t.Errorf("text output missing lifecycle section:\n%s", out.String())
	}
	out.Reset()
	if code := run(tinyArgs("-devices", "temp=1", "-format", "csv"), &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "lifecycle/temp/time_to_first_update_s") {
		t.Error("CSV output missing lifecycle rows")
	}
}

// TestExactParity is the CLI-level --exact check: a tiny fleet run with
// and without the operating-point surface must agree exactly on
// occupancy and bin accounting and within the surface's ε on the
// energy-side means.
func TestExactParity(t *testing.T) {
	decode := func(args []string) fleet.Summary {
		t.Helper()
		var out, errBuf bytes.Buffer
		if code := run(args, &out, &errBuf); code != 0 {
			t.Fatalf("exit %d: %s", code, errBuf.String())
		}
		var s fleet.Summary
		if err := json.Unmarshal(out.Bytes(), &s); err != nil {
			t.Fatal(err)
		}
		return s
	}
	surf := decode(tinyArgs("-format", "json"))
	exact := decode(tinyArgs("-format", "json", "-exact"))

	if surf.HomeOccupancyPct != exact.HomeOccupancyPct {
		t.Errorf("occupancy stats diverged between paths:\nsurface %+v\nexact   %+v",
			surf.HomeOccupancyPct, exact.HomeOccupancyPct)
	}
	if surf.TotalBins != exact.TotalBins || surf.SilentBins != exact.SilentBins {
		t.Errorf("bin accounting diverged: %d/%d vs %d/%d",
			surf.TotalBins, surf.SilentBins, exact.TotalBins, exact.SilentBins)
	}
	const eps = 1e-6
	if d := math.Abs(surf.HomeHarvestUW.Mean - exact.HomeHarvestUW.Mean); d > math.Max(eps*exact.HomeHarvestUW.Mean, 1e-3) {
		t.Errorf("mean harvest diverged beyond ε: surface %v, exact %v µW",
			surf.HomeHarvestUW.Mean, exact.HomeHarvestUW.Mean)
	}
	if d := math.Abs(surf.MeanUpdateRateHz - exact.MeanUpdateRateHz); d > math.Max(eps*exact.MeanUpdateRateHz, 1e-6) {
		t.Errorf("mean rate diverged beyond ε: surface %v, exact %v Hz",
			surf.MeanUpdateRateHz, exact.MeanUpdateRateHz)
	}
}
