package main

import (
	"fmt"
	"io"
	"math"
	"os"
	"time"
)

// progressTicker renders a single-line stderr progress indicator for a
// fleet run: homes done, throughput, and an ETA extrapolated from the
// rate so far. Updates are throttled so thousands of per-home callbacks
// cost a handful of terminal writes, and the line is erased on finish
// so the timing summary and any report text land on a clean row.
//
// The ticker only writes; it never reads terminal state. Callers gate
// construction on isTerminal so redirected stderr stays byte-clean.
type progressTicker struct {
	w     io.Writer
	now   func() time.Time // injectable clock for tests
	start time.Time
	last  time.Time // last repaint
	wrote bool      // a line is on screen and needs erasing
}

// progressInterval throttles repaints: fast enough to read as live,
// slow enough that terminal writes never show up in a profile.
const progressInterval = 150 * time.Millisecond

func newProgressTicker(w io.Writer, now func() time.Time) *progressTicker {
	return &progressTicker{w: w, now: now, start: now()}
}

// update is the powifi.WithProgress callback. The fleet reducer invokes
// it serially, so no locking is needed.
func (p *progressTicker) update(done, total int) {
	t := p.now()
	if done < total && p.wrote && t.Sub(p.last) < progressInterval {
		return
	}
	p.last = t
	elapsed := t.Sub(p.start).Seconds()
	var rate float64
	if elapsed > 0 {
		rate = float64(done) / elapsed
	}
	eta := "--"
	if rate > 0 && done < total {
		// Round to the nearest whole second: a naive Duration(float64)
		// conversion truncates toward zero, reporting "0s" with nearly a
		// second of work left and biasing every ETA a full second low.
		d := time.Duration(math.Round(float64(total-done)/rate)) * time.Second
		eta = d.String()
	}
	// \r returns to column 0, ESC[K erases the previous (possibly
	// longer) line's tail.
	fmt.Fprintf(p.w, "\r%d/%d homes  %.0f homes/s  ETA %s\x1b[K", done, total, rate, eta)
	p.wrote = true
}

// finish erases the progress line so subsequent output starts clean.
// Safe on a nil ticker and when nothing was ever drawn.
func (p *progressTicker) finish() {
	if p == nil || !p.wrote {
		return
	}
	fmt.Fprint(p.w, "\r\x1b[K")
	p.wrote = false
}

// isTerminal reports whether w is an interactive terminal. Progress is
// cosmetic: when stderr is a pipe or file (tests, CI, cron) the ticker
// is skipped entirely rather than spraying control sequences into logs.
func isTerminal(w io.Writer) bool {
	f, ok := w.(*os.File)
	if !ok {
		return false
	}
	info, err := f.Stat()
	return err == nil && info.Mode()&os.ModeCharDevice != 0
}
