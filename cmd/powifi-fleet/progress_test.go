package main

import (
	"strings"
	"testing"
	"time"
)

// fakeClock is an injectable clock for the progress ticker: tests
// advance it explicitly, so rate and ETA math is exact.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func lastLine(b *strings.Builder) (string, bool) {
	// Repaints are \r-separated on one terminal row; the last segment
	// is what the user currently sees.
	parts := strings.Split(b.String(), "\r")
	if len(parts) < 2 {
		return "", false
	}
	return parts[len(parts)-1], true
}

// TestProgressETARounds pins the ETA fix: the remaining-time estimate
// rounds to the nearest whole second instead of truncating toward
// zero. At 0.6 homes/s with 4 homes left the true ETA is 6.67 s — the
// old conversion printed "6s" (and printed "0s" with nearly a full
// second of work remaining).
func TestProgressETARounds(t *testing.T) {
	var buf strings.Builder
	clk := newFakeClock()
	p := newProgressTicker(&buf, clk.now)

	clk.advance(10 * time.Second)
	p.update(6, 10)
	line, ok := lastLine(&buf)
	if !ok {
		t.Fatal("no progress line written")
	}
	if !strings.Contains(line, "ETA 7s") {
		t.Fatalf("ETA should round 6.67s up to 7s, got %q", line)
	}

	// 1.333 homes/s, 6 left → 4.5 s rounds to 5s (truncation said 4s).
	buf.Reset()
	clk2 := newFakeClock()
	p2 := newProgressTicker(&buf, clk2.now)
	clk2.advance(3 * time.Second)
	p2.update(4, 10)
	if line, _ := lastLine(&buf); !strings.Contains(line, "ETA 5s") {
		t.Fatalf("ETA should round 4.5s to 5s, got %q", line)
	}
}

// TestProgressThrottleAndFinish covers the repaint throttle (updates
// inside progressInterval draw nothing new) and the finish erase.
func TestProgressThrottleAndFinish(t *testing.T) {
	var buf strings.Builder
	clk := newFakeClock()
	p := newProgressTicker(&buf, clk.now)

	clk.advance(time.Second)
	p.update(1, 4)
	painted := buf.Len()
	if painted == 0 {
		t.Fatal("first update must paint")
	}

	clk.advance(progressInterval / 2)
	p.update(2, 4)
	if buf.Len() != painted {
		t.Fatal("update inside the throttle interval must not repaint")
	}

	clk.advance(progressInterval)
	p.update(3, 4)
	if buf.Len() == painted {
		t.Fatal("update past the throttle interval must repaint")
	}

	// The final home always repaints, even inside the interval.
	p.update(4, 4)
	line, _ := lastLine(&buf)
	if !strings.Contains(line, "4/4") {
		t.Fatalf("final update must repaint, got %q", line)
	}

	before := buf.String()
	p.finish()
	if erase := strings.TrimPrefix(buf.String(), before); erase != "\r\x1b[K" {
		t.Fatalf("finish must erase the line, wrote %q", erase)
	}
	p.finish() // idempotent
	if !strings.HasSuffix(buf.String(), "\r\x1b[K") {
		t.Fatal("second finish must be a no-op")
	}

	var nilTicker *progressTicker
	nilTicker.finish() // must not panic
}
