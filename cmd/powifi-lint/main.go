// Command powifi-lint runs the powifi static-enforcement suite
// (internal/lint): walltime, rngsource, mapiter, noalloc, sdkboundary,
// mergecheck and directive. It speaks two protocols:
//
//   - standalone: powifi-lint [packages] — package patterns are
//     directories or ./... trees, resolved against the enclosing
//     module; with no arguments it checks ./...;
//   - vettool: go vet -vettool=$(which powifi-lint) ./... — the
//     cmd/go unitchecker protocol (-V=full for the tool ID, -flags for
//     the supported-flag list, then one invocation per package with a
//     vet.cfg file).
//
// Diagnostics go to stderr as file:line:col: analyzer: message; the
// exit status is non-zero when any are reported.
package main //powifi:sdkboundary-ok the lint driver is the enforcement tool itself, not an SDK consumer

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

func main() {
	args := os.Args[1:]
	switch {
	case len(args) == 1 && strings.HasPrefix(args[0], "-V"):
		printVersion()
	case len(args) == 1 && (args[0] == "-flags" || args[0] == "--flags"):
		// No analyzer-selection flags: the suite always runs whole.
		fmt.Println("[]")
	case len(args) >= 1 && strings.HasSuffix(args[len(args)-1], ".cfg"):
		os.Exit(unitcheck(args[len(args)-1]))
	default:
		os.Exit(standalone(args))
	}
}

// printVersion implements `powifi-lint -V=full`. cmd/go hashes the
// output into the build cache key for vet results, so it must change
// whenever the tool's behavior does: hashing the executable itself
// guarantees that.
func printVersion() {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = hex.EncodeToString(h.Sum(nil))[:16]
			}
			f.Close()
		}
	}
	fmt.Printf("%s version powifi-lint-%s\n", os.Args[0], id)
}

// diag is one position-resolved diagnostic, carrying the analyzer name.
type diag struct {
	pos      token.Position
	analyzer string
	msg      string
}

func sortDiags(ds []diag) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		if a.pos.Column != b.pos.Column {
			return a.pos.Column < b.pos.Column
		}
		return a.analyzer < b.analyzer
	})
}

func runSuite(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) []diag {
	var out []diag
	for _, a := range lint.Analyzers {
		a := a
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		pass.Report = func(d analysis.Diagnostic) {
			out = append(out, diag{pos: fset.Position(d.Pos), analyzer: a.Name, msg: d.Message})
		}
		if _, err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "powifi-lint: %s on %s: %v\n", a.Name, pkg.Path(), err)
		}
	}
	return out
}

func printDiags(ds []diag) {
	sortDiags(ds)
	for _, d := range ds {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", d.pos, d.analyzer, d.msg)
	}
}

// --- unitchecker mode (go vet -vettool=) ---

// vetConfig mirrors the JSON cmd/go writes to <objdir>/vet.cfg for each
// package it vets.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "powifi-lint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "powifi-lint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// cmd/go requires the vetx facts file to exist after every
	// invocation, even a failed one. The suite exports no facts.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte("powifi-lint: no facts\n"), 0o666); err != nil {
				fmt.Fprintf(os.Stderr, "powifi-lint: %v\n", err)
			}
		}
	}
	if cfg.VetxOnly {
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			writeVetx()
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "powifi-lint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if p, ok := cfg.ImportMap[path]; ok {
			path = p
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tconf := types.Config{Importer: imp}
	if cfg.GoVersion != "" {
		tconf.GoVersion = cfg.GoVersion
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		writeVetx()
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "powifi-lint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	ds := runSuite(fset, files, pkg, info)
	writeVetx()
	if len(ds) > 0 {
		printDiags(ds)
		return 2
	}
	return 0
}

// --- standalone mode ---

// moduleRoot walks up from dir to the enclosing go.mod, returning the
// root directory and module path.
func moduleRoot(dir string) (root, module string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		gm := filepath.Join(d, "go.mod")
		if data, err := os.ReadFile(gm); err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s", gm)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}

// expandPatterns resolves package patterns (dir, dir/..., ./...) to
// package directories.
func expandPatterns(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		if abs, err := filepath.Abs(d); err == nil && !seen[abs] {
			seen[abs] = true
			dirs = append(dirs, abs)
		}
	}
	for _, p := range patterns {
		if p == "..." || strings.HasSuffix(p, "/...") {
			base := strings.TrimSuffix(strings.TrimSuffix(p, "..."), "/")
			if base == "" {
				base = "."
			}
			err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != base && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		add(p)
	}
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") {
			return true
		}
	}
	return false
}

func standalone(patterns []string) int {
	root, module, err := moduleRoot(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "powifi-lint: %v\n", err)
		return 1
	}
	dirs, err := expandPatterns(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "powifi-lint: %v\n", err)
		return 1
	}
	loader := &load.Loader{Root: root, Module: module}
	var all []diag
	failed := false
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "powifi-lint: %v\n", err)
			failed = true
			continue
		}
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "powifi-lint: %s: %v\n", pkg.Path, terr)
			failed = true
		}
		all = append(all, runSuite(pkg.Fset, pkg.Files, pkg.Types, pkg.Info)...)
	}
	if len(all) > 0 {
		printDiags(all)
		return 2
	}
	if failed {
		return 1
	}
	return 0
}
