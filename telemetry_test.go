// Acceptance suite for the telemetry layer's three contracts: metrics
// are workers-invariant (bit-for-bit identical totals at any
// WithWorkers value), strictly out of band (the simulation sections of
// a Report are byte-identical with telemetry on or off), and
// consistently exported (the Report JSON section, the Prometheus text
// writer and the expvar endpoint describe the same snapshot).
package powifi_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	powifi "repro"
)

// telemetryFleetOpts is a tiny but non-trivial fleet: enough homes for
// every worker in the 8-way run to see several, with the lifecycle
// engine on so all four instrumented packages count something.
func telemetryFleetOpts(workers int) []powifi.Option {
	mix, _ := powifi.ParseDeviceMix("temp=0.5,camera=0.5")
	return []powifi.Option{
		powifi.WithHomes(24),
		powifi.WithSeed(11),
		powifi.WithWorkers(workers),
		powifi.WithHorizon(2 * time.Hour),
		powifi.WithBinWidth(30 * time.Minute),
		powifi.WithWindow(2 * time.Millisecond),
		powifi.WithDevices(mix),
	}
}

func runTelemetryFleet(t *testing.T, workers int) (*powifi.Report, *powifi.Telemetry) {
	t.Helper()
	tel := powifi.NewTelemetry()
	sc, err := powifi.NewScenario(append(telemetryFleetOpts(workers), powifi.WithTelemetry(tel))...)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return rep, tel
}

func TestTelemetryWorkerInvariance(t *testing.T) {
	rep1, _ := runTelemetryFleet(t, 1)
	rep8, _ := runTelemetryFleet(t, 8)

	s1, s8 := rep1.Telemetry, rep8.Telemetry
	if s1 == nil || s8 == nil {
		t.Fatal("telemetry section missing from report")
	}
	if !reflect.DeepEqual(s1.Counters, s8.Counters) {
		t.Errorf("work counters diverge across worker counts:\nworkers=1: %v\nworkers=8: %v",
			s1.Counters, s8.Counters)
	}
	h1, h8 := s1.Histograms["home_harvest_uw"], s8.Histograms["home_harvest_uw"]
	if !reflect.DeepEqual(h1, h8) {
		t.Errorf("home_harvest_uw diverges across worker counts:\nworkers=1: %+v\nworkers=8: %+v", h1, h8)
	}
	if n := s1.Counters["homes"]; n != 24 {
		t.Errorf("homes counter = %d, want 24", n)
	}
	if s1.Counters["bins"] == 0 || s1.Counters["surface_hits"] == 0 ||
		s1.Counters["lifecycle_boots"] == 0 || s1.Counters["lifecycle_ledger_events"] == 0 {
		t.Errorf("instrumented packages left counters at zero: %v", s1.Counters)
	}
	if s1.Manifest.ConfigHash == "" || s1.Manifest.ConfigHash != s8.Manifest.ConfigHash {
		t.Errorf("config hash must exist and ignore the worker count: %q vs %q",
			s1.Manifest.ConfigHash, s8.Manifest.ConfigHash)
	}
	if s1.Manifest.Seed != 11 || s8.Manifest.Workers != 8 {
		t.Errorf("manifests: %+v / %+v", s1.Manifest, s8.Manifest)
	}
}

func TestTelemetryIsOutOfBand(t *testing.T) {
	bare, err := powifi.NewScenario(telemetryFleetOpts(2)...)
	if err != nil {
		t.Fatal(err)
	}
	repOff, err := bare.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	repOn, _ := runTelemetryFleet(t, 2)

	if repOff.Telemetry != nil {
		t.Fatal("telemetry section present without WithTelemetry")
	}
	// The simulation sections must be byte-identical: strip the additive
	// telemetry section and compare the serialized reports.
	repOn.Telemetry = nil
	var on, off bytes.Buffer
	if err := repOn.WriteJSON(&on); err != nil {
		t.Fatal(err)
	}
	if err := repOff.WriteJSON(&off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(on.Bytes(), off.Bytes()) {
		t.Errorf("enabling telemetry changed the simulation output:\n--- off ---\n%s\n--- on ---\n%s", &off, &on)
	}
}

func TestTelemetryExportsAgree(t *testing.T) {
	rep, tel := runTelemetryFleet(t, 2)
	snap := rep.Telemetry

	// Prometheus text export: every work counter appears as
	// powifi_<name>_total with the snapshot's value.
	var prom bytes.Buffer
	if err := tel.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	values := map[string]string{}
	for _, line := range strings.Split(prom.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if name, val, ok := strings.Cut(line, " "); ok {
			values[name] = val
		}
	}
	for name, want := range snap.Counters {
		got := values["powifi_"+name+"_total"]
		if got != strconv.FormatUint(want, 10) {
			t.Errorf("prometheus powifi_%s_total = %q, want %d", name, got, want)
		}
	}
	if got := values["powifi_run_info{seed=\"11\",config_hash=\""+snap.Manifest.ConfigHash+"\",go_version=\""+snap.Manifest.GoVersion+"\",workers=\"2\"}"]; got != "1" {
		t.Errorf("prometheus run_info line missing or wrong:\n%s", prom.String())
	}

	// expvar endpoint: the "powifi" var decodes back into the same
	// snapshot the report carries.
	srv := httptest.NewServer(powifi.MetricsHandler(tel))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars struct {
		Powifi *powifi.TelemetrySnapshot `json:"powifi"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	if vars.Powifi == nil {
		t.Fatal("expvar endpoint carries no powifi snapshot")
	}
	if !reflect.DeepEqual(vars.Powifi.Counters, snap.Counters) {
		t.Errorf("expvar counters = %v, report counters = %v", vars.Powifi.Counters, snap.Counters)
	}
	if !reflect.DeepEqual(vars.Powifi.Histograms, snap.Histograms) {
		t.Errorf("expvar histograms = %v, report histograms = %v", vars.Powifi.Histograms, snap.Histograms)
	}
	if vars.Powifi.Manifest != snap.Manifest {
		t.Errorf("expvar manifest = %+v, report manifest = %+v", vars.Powifi.Manifest, snap.Manifest)
	}

	// /metrics over HTTP matches the direct writer.
	resp, err = srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(body, prom.Bytes()) {
		t.Errorf("/metrics body differs from WritePrometheus output")
	}
}

func TestMetricsSinkImpliesTelemetry(t *testing.T) {
	var sink bytes.Buffer
	sc, err := powifi.NewScenario(append(telemetryFleetOpts(2), powifi.WithMetricsSink(&sink))...)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Telemetry == nil {
		t.Fatal("WithMetricsSink must imply a telemetry section")
	}
	if !strings.Contains(sink.String(), "powifi_homes_total 24") {
		t.Errorf("metrics sink output:\n%s", sink.String())
	}
}

func TestTelemetryRejectedOutsideFleetMode(t *testing.T) {
	tel := powifi.NewTelemetry()
	if _, err := powifi.NewScenario(powifi.WithHome(powifi.PaperHomes()[0]), powifi.WithTelemetry(tel)); err == nil {
		t.Error("home-mode scenario accepted WithTelemetry")
	}
	if _, err := powifi.NewScenario(powifi.WithExperiment("fig9"), powifi.WithTelemetry(tel)); err == nil {
		t.Error("experiment scenario accepted WithTelemetry")
	}
	if _, err := powifi.NewScenario(powifi.WithHome(powifi.PaperHomes()[0]), powifi.WithMetricsSink(io.Discard)); err == nil {
		t.Error("home-mode scenario accepted WithMetricsSink")
	}
}

func TestScenarioWithDerivesWithoutMutating(t *testing.T) {
	sc, err := powifi.NewScenario(telemetryFleetOpts(2)...)
	if err != nil {
		t.Fatal(err)
	}
	tel := powifi.NewTelemetry()
	sc2, err := sc.With(powifi.WithTelemetry(tel))
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := sc2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Telemetry == nil {
		t.Error("derived scenario did not collect telemetry")
	}
	rep, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Telemetry != nil {
		t.Error("With mutated the receiver scenario")
	}
	// Derived options still validate as a whole.
	home, err := powifi.NewScenario(powifi.WithHome(powifi.PaperHomes()[0]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := home.With(powifi.WithTelemetry(tel)); err == nil {
		t.Error("With accepted a telemetry option on a home scenario")
	}
}

// TestServeMetricsDrainsInflightScrape pins the graceful-teardown
// contract of ServeMetrics: a /metrics scrape that is already being
// served when shutdown begins receives its complete response, while
// shutdown itself refuses new connections. The handler blocks on a
// channel so the test controls exactly when the in-flight request is
// mid-response — no timing sleeps.
func TestServeMetricsDrainsInflightScrape(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-release
		io.WriteString(w, "scrape-body")
	})
	shutdown := powifi.ServeMetrics(ln, h)

	type scrape struct {
		body string
		err  error
	}
	got := make(chan scrape, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/metrics")
		if err != nil {
			got <- scrape{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		got <- scrape{body: string(b), err: err}
	}()

	<-started // the scrape is in flight, handler mid-request
	done := make(chan struct{})
	go func() { shutdown(); close(done) }()

	select {
	case <-done:
		t.Fatal("shutdown returned while a scrape was still in flight")
	case <-time.After(20 * time.Millisecond):
	}

	close(release) // let the handler finish its response
	s := <-got
	if s.err != nil {
		t.Fatalf("in-flight scrape must complete across shutdown: %v", s.err)
	}
	if s.body != "scrape-body" {
		t.Fatalf("in-flight scrape body = %q, want %q", s.body, "scrape-body")
	}
	<-done // shutdown returns once the scrape drained

	// The listener is closed: new scrapes are refused.
	if _, err := http.Get("http://" + ln.Addr().String() + "/metrics"); err == nil {
		t.Fatal("scrape after shutdown should fail")
	}
}
