// Acceptance suite for the tracing layer's contracts: tracing is
// strictly out of band (the Report's simulation sections are
// byte-identical with it on or off), the summary's deterministic half
// is workers-invariant (bit-for-bit identical at any WithWorkers
// value), the Chrome export is valid trace-event JSON carrying the
// span tree and flight-recorder forensics, and quarantined homes ship
// their dumps on the structured error.
package powifi_test

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	powifi "repro"
)

// traceFleetOpts is a fleet sized to exercise the instrumented layers:
// the coarse tier for fits/guard-queries/escalations, a fault for the
// failure path, and a skip policy so the run completes.
func traceFleetOpts(workers int) []powifi.Option {
	return []powifi.Option{
		powifi.WithHomes(24),
		powifi.WithSeed(11),
		powifi.WithWorkers(workers),
		powifi.WithHorizon(6 * time.Hour),
		powifi.WithBinWidth(30 * time.Minute),
		powifi.WithWindow(2 * time.Millisecond),
		powifi.WithCoarse(true),
		powifi.WithFaults("home.panic@5"),
		powifi.WithFailurePolicy(powifi.FailurePolicy{Skip: true}),
	}
}

func runTraceFleet(t *testing.T, workers int) (*powifi.Report, *powifi.Trace) {
	t.Helper()
	tr := powifi.NewTrace()
	sc, err := powifi.NewScenario(append(traceFleetOpts(workers), powifi.WithTrace(tr))...)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return rep, tr
}

func TestTraceIsOutOfBand(t *testing.T) {
	bare, err := powifi.NewScenario(traceFleetOpts(2)...)
	if err != nil {
		t.Fatal(err)
	}
	repOff, err := bare.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	repOn, _ := runTraceFleet(t, 2)

	if repOff.Trace != nil {
		t.Fatal("trace section present without WithTrace")
	}
	if repOn.Trace == nil {
		t.Fatal("trace section missing with WithTrace")
	}
	// The untraced run carries no flight-recorder dump on its errors;
	// the traced run's dump is additive there too. Strip both additive
	// pieces and require the serialized reports byte-identical.
	repOn.Trace = nil
	for i := range repOn.Fleet.Errors {
		repOn.Fleet.Errors[i].Trace = nil
	}
	var on, off bytes.Buffer
	if err := repOn.WriteJSON(&on); err != nil {
		t.Fatal(err)
	}
	if err := repOff.WriteJSON(&off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(on.Bytes(), off.Bytes()) {
		t.Errorf("enabling tracing changed the simulation output:\n--- off ---\n%s\n--- on ---\n%s", &off, &on)
	}
}

func TestTraceWorkerInvariance(t *testing.T) {
	rep1, _ := runTraceFleet(t, 1)
	rep8, _ := runTraceFleet(t, 8)

	s1, s8 := *rep1.Trace, *rep8.Trace
	if s1.Sched == nil || s8.Sched == nil {
		t.Fatal("trace summaries missing their sched sections")
	}
	// Everything outside Sched — event totals, escalation reasons,
	// retained rings — must be bit-for-bit identical across worker
	// counts; Sched is the quarantine for what may differ.
	s1.Sched, s8.Sched = nil, nil
	if !reflect.DeepEqual(s1, s8) {
		j1, _ := json.MarshalIndent(s1, "", "  ")
		j8, _ := json.MarshalIndent(s8, "", "  ")
		t.Errorf("deterministic trace summary diverges across worker counts:\nworkers=1: %s\nworkers=8: %s", j1, j8)
	}
	if s1.HomesTraced != 24 {
		t.Errorf("HomesTraced = %d, want 24", s1.HomesTraced)
	}
	if s1.Events == 0 {
		t.Error("traced run recorded no events")
	}
	if len(s1.Retained) == 0 {
		t.Error("no retained homes despite an injected failure")
	}
}

func TestTraceChromeExportAndErrorDumps(t *testing.T) {
	var chrome bytes.Buffer
	sc, err := powifi.NewScenario(append(traceFleetOpts(2), powifi.WithTraceOutput(&chrome))...)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// WithTraceOutput implies tracing: the summary rides the report even
	// without an explicit WithTrace recorder.
	if rep.Trace == nil {
		t.Fatal("trace section missing with WithTraceOutput")
	}

	var tr struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &tr); err != nil {
		t.Fatalf("trace output is not valid Chrome trace-event JSON: %v", err)
	}
	count := map[string]int{}
	for _, e := range tr.TraceEvents {
		count[e.Ph+":"+e.Name]++
	}
	for _, want := range []string{"X:run", "X:simulate", "X:home", "i:flight_recorder"} {
		if count[want] == 0 {
			t.Errorf("trace output missing %q events (have %v)", want, count)
		}
	}

	// The quarantined home carries its flight-recorder dump, ending in
	// the fault and quarantine events that explain it.
	if len(rep.Fleet.Errors) == 0 {
		t.Fatal("no quarantined homes despite home.panic fault")
	}
	he := rep.Fleet.Errors[0]
	if he.Trace == nil {
		t.Fatalf("quarantined home %d has no trace dump", he.Index)
	}
	if !strings.HasPrefix(he.Trace.Label, "fleet/home/") {
		t.Errorf("dump label = %q", he.Trace.Label)
	}
	var sawFault, sawQuarantine bool
	for _, e := range he.Trace.Events {
		switch e.Kind {
		case "fault":
			sawFault = e.Detail == "home.panic"
		case "quarantine":
			sawQuarantine = true
		}
	}
	if !sawFault || !sawQuarantine {
		t.Errorf("dump events lack fault/quarantine forensics: %+v", he.Trace.Events)
	}
}

// TestTraceSlowHomes pins the slow-home diagnostics: an injected
// home.slow stall dominates that home's wall time, so it must top both
// the telemetry slow-homes table and the trace's scheduling section,
// attributed to the "stall" span.
func TestTraceSlowHomes(t *testing.T) {
	tel := powifi.NewTelemetry()
	tr := powifi.NewTrace()
	sc, err := powifi.NewScenario(
		powifi.WithHomes(6),
		powifi.WithSeed(11),
		powifi.WithWorkers(2),
		powifi.WithHorizon(2*time.Hour),
		powifi.WithBinWidth(30*time.Minute),
		powifi.WithWindow(2*time.Millisecond),
		powifi.WithFaults("home.slow@3,delay=30ms"),
		powifi.WithTelemetry(tel),
		powifi.WithTrace(tr),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	snap := tel.Snapshot()
	if len(snap.SlowHomes) == 0 {
		t.Fatal("telemetry snapshot has no slow homes")
	}
	if top := snap.SlowHomes[0]; top.Index != 3 || top.DominantSpan != "stall" {
		t.Errorf("telemetry slowest home = %+v, want home 3 dominated by stall", top)
	}
	if h := snap.Histograms["home_wall_ms"]; h.N != 6 {
		t.Errorf("home_wall_ms histogram N = %d, want 6", h.N)
	}

	sched := tr.Summary().Sched
	if sched == nil || len(sched.SlowestHomes) == 0 {
		t.Fatal("trace sched section has no slowest homes")
	}
	if top := sched.SlowestHomes[0]; top.Index != 3 || top.DominantSpan != "stall" {
		t.Errorf("trace slowest home = %+v, want home 3 dominated by stall", top)
	}
}

func TestTraceRejectedOutsideFleetMode(t *testing.T) {
	home := powifi.HomeConfig{ID: 1, Users: 2, Devices: 4, NeighborAPs: 5, Seed: 3}
	if _, err := powifi.NewScenario(powifi.WithHome(home), powifi.WithTrace(powifi.NewTrace())); err == nil ||
		!strings.Contains(err.Error(), "only to fleet") {
		t.Errorf("WithTrace on a home scenario: err = %v, want fleet-only rejection", err)
	}
	if _, err := powifi.NewScenario(powifi.WithExperiment("fig9"), powifi.WithTrace(powifi.NewTrace())); err == nil {
		t.Error("WithTrace on an experiment scenario did not error")
	}
	if _, err := powifi.NewScenario(powifi.WithHomes(2), powifi.WithTrace(nil)); err == nil ||
		!strings.Contains(err.Error(), "nil Trace") {
		t.Errorf("WithTrace(nil): err = %v, want nil-recorder rejection", err)
	}
}
