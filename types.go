package powifi

import (
	"repro/internal/deploy"
	"repro/internal/fleet"
	"repro/internal/lifecycle"
	"repro/internal/profiling"
)

// HomeConfig describes one deployment home (Table 1): occupants,
// Wi-Fi devices, neighbor density, weekday/weekend staging, diurnal
// phase and seed. It configures single-home scenarios via WithHome.
type HomeConfig = deploy.HomeConfig

// BinSample is one logging-bin observation from a single-home run —
// the value Scenario.Bins streams: per-channel occupancy, cumulative
// percentage, and the battery-free sensor's update rate and net
// harvested power at the configured distance.
type BinSample = deploy.BinSample

// HomeRecord is one fleet home's streamed summary — the value
// Scenario.Homes yields, in home-index order at any worker count.
type HomeRecord = fleet.HomeRecord

// HomeDeviceRecord is the lifecycle slice of a HomeRecord, present
// when the fleet population carries a device mix.
type HomeDeviceRecord = fleet.DeviceRecord

// DeviceMix holds per-archetype device shares for the lifecycle
// engine (WithDevices). Parse the CLI form with ParseDeviceMix; the
// JSON form is a {"name": weight} object.
type DeviceMix = lifecycle.Mix

// PaperHomes returns the six homes of Table 1 — ready-made WithHome
// configurations for replaying the paper's §6 deployments.
func PaperHomes() []HomeConfig { return deploy.PaperHomes() }

// ParseDeviceMix parses the CLI device-mix form, e.g.
// "temp=0.5,camera=0.3,jawbone=0.2". Valid archetype names are temp,
// rtemp, camera, jawbone, liion and nimh.
func ParseDeviceMix(s string) (DeviceMix, error) { return lifecycle.ParseMix(s) }

// StartProfiling begins CPU profiling to cpuPath (if non-empty) and
// arranges for a heap profile at memPath (if non-empty) — the
// conventional -cpuprofile/-memprofile behavior the CLIs wire up. The
// returned stop function flushes both; callers must invoke it on every
// exit path that should produce profiles.
func StartProfiling(cpuPath, memPath string) (stop func() error, err error) {
	return profiling.Start(cpuPath, memPath)
}
