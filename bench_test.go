// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation. Each benchmark regenerates its experiment at a
// reduced-but-representative configuration; `go run ./cmd/powifi-bench
// -full <id>` reproduces the paper-scale version and prints the rows.
package powifi_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/harvester"
	"repro/internal/phy"
	"repro/internal/stats"
)

// BenchmarkFig1RectifierTrace regenerates the §2/Fig. 1 rectifier-voltage
// trace under a conventional router's bursty traffic.
func BenchmarkFig1RectifierTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig1(0.40, 2*time.Millisecond)
		if res.BootsWithin24h {
			b.Fatal("Fig. 1 scenario must not boot")
		}
	}
}

// BenchmarkFig5OccupancyVsDelay regenerates one point of the Fig. 5
// injector parameter study.
func BenchmarkFig5OccupancyVsDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig5([]int{100}, []int{5}, 500*time.Millisecond, 5)
		if res.OccupancyPct[0][0] <= 0 {
			b.Fatal("no occupancy measured")
		}
	}
}

// BenchmarkFig6aUDPThroughput regenerates one column of the Fig. 6a UDP
// comparison (all four schemes at a 20 Mbps target).
func BenchmarkFig6aUDPThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunFig6a([]float64{20}, time.Second, 11)
	}
}

// BenchmarkFig6bTCPThroughput regenerates one run of the Fig. 6b TCP CDF
// comparison.
func BenchmarkFig6bTCPThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunFig6b(1, time.Second, 13)
	}
}

// BenchmarkFig6cPageLoadTime regenerates a single-load Fig. 6c PLT sweep
// over all ten sites and four schemes.
func BenchmarkFig6cPageLoadTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunFig6c(1, 17)
	}
}

// BenchmarkFig7OccupancyCDFs regenerates the Fig. 7 occupancy CDFs for
// the three workload types under PoWiFi.
func BenchmarkFig7OccupancyCDFs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunFig7Occupancies(time.Second, 11)
	}
}

// BenchmarkFig8NeighborFairness regenerates the Fig. 8 fairness study at
// two neighbor bit rates.
func BenchmarkFig8NeighborFairness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunFig8([]phy.Rate{phy.Rate6Mbps, phy.Rate54Mbps}, 500*time.Millisecond, 23)
	}
}

// BenchmarkFig9ReturnLoss regenerates the Fig. 9 S11 sweeps for both
// harvesters.
func BenchmarkFig9ReturnLoss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig9(8e6)
		if res.WorstInBand(res.BatteryFree) > -10 {
			b.Fatal("battery-free harvester out of spec")
		}
	}
}

// BenchmarkFig10HarvesterOutput regenerates the Fig. 10 output-power
// sweeps for both harvesters.
func BenchmarkFig10HarvesterOutput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunFig10(harvester.BatteryFree, 6)
		experiments.RunFig10(harvester.BatteryCharging, 6)
	}
}

// BenchmarkFig11TempSensorRate regenerates the Fig. 11 update-rate-versus-
// distance curves, including the range searches.
func BenchmarkFig11TempSensorRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig11([]float64{5, 10, 15, 20, 25})
		if res.RechargingRangeFt <= res.BatteryFreeRangeFt {
			b.Fatal("range ordering violated")
		}
	}
}

// BenchmarkFig12CameraInterFrame regenerates the Fig. 12 camera curves.
func BenchmarkFig12CameraInterFrame(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunFig12([]float64{5, 10, 15, 17})
	}
}

// BenchmarkFig13ThroughWall regenerates the Fig. 13 through-the-wall
// sweep.
func BenchmarkFig13ThroughWall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig13()
		if res.InterFrame[len(res.InterFrame)-1] <= res.InterFrame[0] {
			b.Fatal("wall ordering violated")
		}
	}
}

// BenchmarkFig14HomeOccupancy regenerates a coarse-grained version of one
// home's 24-hour occupancy log.
func BenchmarkFig14HomeOccupancy(b *testing.B) {
	opts := deploy.Options{
		BinWidth: 2 * time.Hour, Window: 250 * time.Millisecond,
		Hours: 24, SensorDistanceFt: 10,
	}
	for i := 0; i < b.N; i++ {
		res := deploy.Run(deploy.PaperHomes()[1], opts)
		if res.MeanCumulative() <= 0 {
			b.Fatal("no occupancy logged")
		}
	}
}

// BenchmarkFig15HomeSensorCDF regenerates one home's sensor-rate CDF.
func BenchmarkFig15HomeSensorCDF(b *testing.B) {
	opts := deploy.Options{
		BinWidth: 2 * time.Hour, Window: 250 * time.Millisecond,
		Hours: 24, SensorDistanceFt: 10,
	}
	for i := 0; i < b.N; i++ {
		res := deploy.Run(deploy.PaperHomes()[2], opts)
		cdf := stats.NewCDF(res.SensorRates)
		if cdf.Quantile(0.5) <= 0 {
			b.Fatal("sensor silent in deployment")
		}
	}
}

// BenchmarkTable1HomeSummary regenerates the Table 1 roster.
func BenchmarkTable1HomeSummary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunTable1()
		if len(res.Homes) != 6 {
			b.Fatal("wrong home count")
		}
	}
}

// BenchmarkEvaluateExact measures the direct per-bin rectifier solve
// (cold-start check plus bursty operating point via the Bessel/Newton
// path) that dominated deployment and fleet runs before the
// operating-point surface.
func BenchmarkEvaluateExact(b *testing.B) {
	sensor := core.NewBatteryFreeTempSensor()
	sensor.Exact = true
	link := core.PoWiFiLink(10, 1.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rate, _ := sensor.Evaluate(link); rate <= 0 {
			b.Fatal("sensor silent at 10 ft")
		}
	}
}

// BenchmarkEvaluateSurface measures the same solve served from the
// error-bounded operating-point surface (internal/surface). The surface
// build happens once before the timer; the steady-state cost is what
// every fleet bin pays.
func BenchmarkEvaluateSurface(b *testing.B) {
	sensor := core.NewBatteryFreeTempSensor()
	link := core.PoWiFiLink(10, 1.2)
	sensor.Evaluate(link) // warm the shared surface
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rate, _ := sensor.Evaluate(link); rate <= 0 {
			b.Fatal("sensor silent at 10 ft")
		}
	}
}

// fleetBenchConfig is the shared fleet benchmark workload: 16 homes × 4
// bins, small enough to iterate, large enough to exercise synthesis,
// sharding and reduction.
func fleetBenchConfig(workers int, exact bool) fleet.Config {
	return fleet.Config{
		Homes:    16,
		Seed:     42,
		Workers:  workers,
		Hours:    2,
		BinWidth: 30 * time.Minute,
		Window:   2 * time.Millisecond,
		Exact:    exact,
	}
}

func runFleetBench(b *testing.B, cfg fleet.Config) {
	b.Helper()
	// Build the shared surface (and warm caches) outside the timer.
	if _, err := fleet.Run(context.Background(), cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := fleet.Run(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.TotalBins == 0 {
			b.Fatal("fleet logged no bins")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(cfg.Homes), "ns/home")
}

// BenchmarkFleet runs a small fleet at several worker counts on the
// default (surface) path. The homes are independent discrete-event
// simulations, so on multicore hardware the sharded path should approach
// linear speedup over workers=1 (the serial path); results are
// bit-for-bit identical either way. The ns/home metric is the headline
// per-home cost the ROADMAP's fleet-scale target cares about.
func BenchmarkFleet(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			runFleetBench(b, fleetBenchConfig(workers, false))
		})
	}
}

// BenchmarkFleetExact is the same fleet with the operating-point surface
// bypassed: every bin pays the full Bessel/Newton solve. Comparing its
// ns/home against BenchmarkFleet's quantifies what the surface buys.
func BenchmarkFleetExact(b *testing.B) {
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			runFleetBench(b, fleetBenchConfig(workers, true))
		})
	}
}

// sweepBenchConfig is the million-home-sweep workload shape at a
// CI-friendly home count: a full 24-bin day per home at the fleet
// default 10 ms sampling window — the configuration the coarse tier is
// certified for. The per-home rate it produces (homes/sec) is
// scale-invariant in Homes, so it stands in for the 1M-home target.
func sweepBenchConfig(homes int, coarse bool) fleet.Config {
	return fleet.Config{
		Homes:    homes,
		Seed:     42,
		Workers:  1,
		Hours:    24,
		BinWidth: time.Hour,
		Window:   10 * time.Millisecond,
		Coarse:   coarse,
	}
}

// BenchmarkFleetSweep measures the exact tier on the sweep workload;
// BenchmarkFleetSweepCoarse is the same sweep on the error-bounded
// coarse tier (anchor-only event simulation, consensus decisions,
// fitted magnitudes). Their ratio is the coarse tier's certified-ε
// speedup; the absolute homes/sec tracks the ROADMAP's million-home
// single-digit-seconds target.
func BenchmarkFleetSweep(b *testing.B) {
	runFleetBench(b, sweepBenchConfig(200, false))
}

func BenchmarkFleetSweepCoarse(b *testing.B) {
	runFleetBench(b, sweepBenchConfig(200, true))
}

// BenchmarkFig16USBCharger regenerates the §8(a) Jawbone charging run.
func BenchmarkFig16USBCharger(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig16(6, 150*time.Minute)
		if res.EndSoC <= res.StartSoC {
			b.Fatal("battery did not charge")
		}
	}
}
