package powifi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"
)

// ScenarioSchema identifies the declarative scenario JSON schema
// version accepted by LoadScenario and emitted by Scenario.MarshalJSON.
const ScenarioSchema = 1

// scenarioJSON is the declarative wire form of a Scenario. Pointer
// fields distinguish "explicitly set" from "engine default", so a
// scenario round-trips exactly: LoadScenario(s.MarshalJSON()) carries
// the same options as s, including explicit zeros (seed 0, exact
// false). Durations serialize in Go duration syntax ("24h", "10ms").
// WithProgress is execution state, not configuration, and does not
// serialize.
type scenarioJSON struct {
	Schema     int              `json:"schema"`
	Mode       string           `json:"mode,omitempty"`
	Homes      *int             `json:"homes,omitempty"`
	Seed       *uint64          `json:"seed,omitempty"`
	Workers    *int             `json:"workers,omitempty"`
	Horizon    string           `json:"horizon,omitempty"`
	BinWidth   string           `json:"bin,omitempty"`
	Window     string           `json:"window,omitempty"`
	Exact      *bool            `json:"exact,omitempty"`
	Coarse     *bool            `json:"coarse,omitempty"`
	Population *FleetPopulation `json:"population,omitempty"`
	Devices    *DeviceMix       `json:"devices,omitempty"`
	Home       *HomeConfig      `json:"home,omitempty"`
	SensorFt   *float64         `json:"sensor_ft,omitempty"`
	Experiment string           `json:"experiment,omitempty"`
	Full       *bool            `json:"full,omitempty"`
	Policy     *FailurePolicy   `json:"failure_policy,omitempty"`
	Deadline   string           `json:"deadline,omitempty"`
	MaxFailed  *int             `json:"max_failed,omitempty"`
}

// MarshalJSON renders the scenario's declarative form: only explicitly
// set options are emitted, under "schema": 1, with the derived mode
// echoed for readability. The output round-trips through LoadScenario.
func (s *Scenario) MarshalJSON() ([]byte, error) {
	sj := scenarioJSON{Schema: ScenarioSchema, Mode: s.Mode()}
	if s.set&optHomes != 0 {
		sj.Homes = &s.homes
	}
	if s.set&optSeed != 0 {
		sj.Seed = &s.seed
	}
	if s.set&optWorkers != 0 {
		sj.Workers = &s.workers
	}
	if s.set&optHorizon != 0 {
		sj.Horizon = s.horizon.String()
	}
	if s.set&optBinWidth != 0 {
		sj.BinWidth = s.binWidth.String()
	}
	if s.set&optWindow != 0 {
		sj.Window = s.window.String()
	}
	if s.set&optExact != 0 {
		sj.Exact = &s.exact
	}
	if s.set&optCoarse != 0 {
		sj.Coarse = &s.coarse
	}
	if s.set&optPopulation != 0 {
		p := s.population
		sj.Population = &p
	}
	if s.set&optDevices != 0 {
		m := s.devices
		sj.Devices = &m
	}
	if s.set&optHome != 0 {
		h := s.home
		sj.Home = &h
	}
	if s.set&optSensor != 0 {
		sj.SensorFt = &s.sensorFt
	}
	if s.set&optExperiment != 0 {
		sj.Experiment = s.experiment
	}
	if s.set&optFull != 0 {
		sj.Full = &s.full
	}
	if s.set&optPolicy != 0 {
		p := s.policy
		sj.Policy = &p
	}
	if s.set&optDeadline != 0 {
		sj.Deadline = s.deadline.String()
	}
	if s.set&optMaxFailed != 0 {
		sj.MaxFailed = &s.maxFailed
	}
	return json.Marshal(sj)
}

// LoadScenario parses the declarative JSON form into a validated
// Scenario — the inverse of MarshalJSON, and the engine behind the
// CLIs' -scenario flag. Unknown fields are rejected (a typo'd option
// must fail loudly, not silently fall back to a default), the schema
// version must match ScenarioSchema, and the same mode-conflict
// validation as NewScenario applies.
func LoadScenario(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sj scenarioJSON
	if err := dec.Decode(&sj); err != nil {
		return nil, fmt.Errorf("powifi: scenario: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("powifi: scenario: trailing data after the JSON object")
	}
	if sj.Schema != ScenarioSchema {
		return nil, fmt.Errorf("powifi: scenario schema %d unsupported (this build reads schema %d)",
			sj.Schema, ScenarioSchema)
	}

	var opts []Option
	dur := func(name, v string, opt func(time.Duration) Option) error {
		if v == "" {
			return nil
		}
		d, err := time.ParseDuration(v)
		if err != nil {
			return fmt.Errorf("powifi: scenario %s: %w", name, err)
		}
		opts = append(opts, opt(d))
		return nil
	}
	if sj.Homes != nil {
		opts = append(opts, WithHomes(*sj.Homes))
	}
	if sj.Seed != nil {
		opts = append(opts, WithSeed(*sj.Seed))
	}
	if sj.Workers != nil {
		opts = append(opts, WithWorkers(*sj.Workers))
	}
	if err := dur("horizon", sj.Horizon, WithHorizon); err != nil {
		return nil, err
	}
	if err := dur("bin", sj.BinWidth, WithBinWidth); err != nil {
		return nil, err
	}
	if err := dur("window", sj.Window, WithWindow); err != nil {
		return nil, err
	}
	if sj.Exact != nil {
		opts = append(opts, WithExact(*sj.Exact))
	}
	if sj.Coarse != nil {
		opts = append(opts, WithCoarse(*sj.Coarse))
	}
	if sj.Population != nil {
		opts = append(opts, WithPopulation(*sj.Population))
	}
	if sj.Devices != nil {
		opts = append(opts, WithDevices(*sj.Devices))
	}
	if sj.Home != nil {
		opts = append(opts, WithHome(*sj.Home))
	}
	if sj.SensorFt != nil {
		opts = append(opts, WithSensorDistance(*sj.SensorFt))
	}
	if sj.Experiment != "" {
		opts = append(opts, WithExperiment(sj.Experiment))
	}
	if sj.Full != nil {
		opts = append(opts, WithFull(*sj.Full))
	}
	if sj.Policy != nil {
		opts = append(opts, WithFailurePolicy(*sj.Policy))
	}
	if err := dur("deadline", sj.Deadline, WithDeadline); err != nil {
		return nil, err
	}
	if sj.MaxFailed != nil {
		opts = append(opts, WithMaxFailedHomes(*sj.MaxFailed))
	}

	sc, err := NewScenario(opts...)
	if err != nil {
		return nil, err
	}
	if sj.Mode != "" && sj.Mode != sc.Mode() {
		return nil, fmt.Errorf("powifi: scenario declares mode %q but its options resolve to %q",
			sj.Mode, sc.Mode())
	}
	return sc, nil
}
