package powifi_test

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"

	powifi "repro"
)

func TestExperimentsListed(t *testing.T) {
	ids := powifi.Experiments()
	if len(ids) < 16 {
		t.Fatalf("only %d experiments exposed", len(ids))
	}
	found := map[string]bool{}
	for _, id := range ids {
		found[id] = true
	}
	for _, id := range []string{"fig1", "fig6a", "fig10", "table1"} {
		if !found[id] {
			t.Errorf("experiment %s missing from the facade", id)
		}
	}
}

func TestRunExperimentFacade(t *testing.T) {
	var buf bytes.Buffer
	if !powifi.RunExperiment("table1", &buf, true) {
		t.Fatal("table1 runner missing")
	}
	if !strings.Contains(buf.String(), "Neighboring APs") {
		t.Errorf("unexpected table1 output: %q", buf.String())
	}
	if powifi.RunExperiment("not-an-experiment", io.Discard, true) {
		t.Error("unknown id should return false")
	}
}

func TestVersionNonEmpty(t *testing.T) {
	if powifi.Version == "" {
		t.Error("version should be set")
	}
}

func TestRunFleetFacade(t *testing.T) {
	res, err := powifi.RunFleet(powifi.FleetConfig{
		Homes:    2,
		Seed:     9,
		Workers:  2,
		Hours:    1,
		BinWidth: 30 * time.Minute,
		Window:   2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBins != 4 {
		t.Errorf("total bins = %d, want 4", res.TotalBins)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "home_occupancy_pct") {
		t.Errorf("unexpected fleet JSON: %q", buf.String())
	}
	if _, err := powifi.RunFleet(powifi.FleetConfig{Homes: -1}); err == nil {
		t.Error("invalid fleet config should error")
	}
}
