package powifi_test

import (
	"bytes"
	"io"
	"strings"
	"testing"

	powifi "repro"
)

func TestExperimentsListed(t *testing.T) {
	ids := powifi.Experiments()
	if len(ids) < 16 {
		t.Fatalf("only %d experiments exposed", len(ids))
	}
	found := map[string]bool{}
	for _, id := range ids {
		found[id] = true
	}
	for _, id := range []string{"fig1", "fig6a", "fig10", "table1"} {
		if !found[id] {
			t.Errorf("experiment %s missing from the facade", id)
		}
	}
}

func TestRunExperimentFacade(t *testing.T) {
	var buf bytes.Buffer
	if !powifi.RunExperiment("table1", &buf, true) {
		t.Fatal("table1 runner missing")
	}
	if !strings.Contains(buf.String(), "Neighboring APs") {
		t.Errorf("unexpected table1 output: %q", buf.String())
	}
	if powifi.RunExperiment("not-an-experiment", io.Discard, true) {
		t.Error("unknown id should return false")
	}
}

func TestVersionNonEmpty(t *testing.T) {
	if powifi.Version == "" {
		t.Error("version should be set")
	}
}
