package powifi

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/fleet"
	"repro/internal/lifecycle"
	"repro/internal/phy"
)

// ReportSchema identifies the Report JSON schema version. It is
// emitted in every report ("schema": 1) so downstream consumers can
// detect format changes; it bumps only when a serialized field is
// removed or its meaning changes, never for additive growth.
const ReportSchema = 1

// Report is the unified result of Scenario.Run: one exported,
// versioned type that every run mode reduces into. Exactly one of the
// mode sections (Fleet, Home, Experiment) is non-nil, named by Mode.
// The JSON schema is stable — see ReportSchema — and renders through
// WriteJSON; WriteText and WriteCSV provide the human-readable and
// tabular forms.
type Report struct {
	// Schema is the report schema version (ReportSchema).
	Schema int `json:"schema"`
	// Version is the powifi build that produced the report.
	Version string `json:"version"`
	// Mode names the populated section: ModeFleet, ModeHome or
	// ModeExperiment.
	Mode string `json:"mode"`
	// Fleet holds the fleet-scale population aggregates, including the
	// per-archetype device-lifecycle sections when the population
	// carries a device mix.
	Fleet *FleetSummary `json:"fleet,omitempty"`
	// Home holds the single-home deployment summary.
	Home *HomeReport `json:"home,omitempty"`
	// Experiment holds a regenerated paper table or figure.
	Experiment *ExperimentReport `json:"experiment,omitempty"`
	// Telemetry holds the run's metrics snapshot and manifest when the
	// scenario carried WithTelemetry or WithMetricsSink (fleet mode
	// only). Purely additive and out of band: the simulation sections
	// are byte-identical with or without it.
	Telemetry *TelemetrySnapshot `json:"telemetry,omitempty"`
	// Trace holds the run's trace summary when the scenario carried
	// WithTrace or WithTraceOutput (fleet mode only). Additive and out
	// of band like Telemetry; everything outside its Sched section is
	// bit-for-bit identical at any WithWorkers value.
	Trace *TraceSummary `json:"trace,omitempty"`
}

// FleetSummary is the serialized fleet report; see fleet.Summary for
// field semantics. Two runs of the same scenario serialize identically
// at any worker count.
type FleetSummary = fleet.Summary

// DeviceSection is one lifecycle device's serialized report section.
type DeviceSection = lifecycle.Section

// HomeReport is the single-home mode section: the §6 deployment
// runner's summary for one household, plus one DeviceSection per
// lifecycle device when the scenario carries a device mix.
type HomeReport struct {
	// Home echoes the configured household; SensorFt, Hours, BinWidthS
	// and WindowS echo the resolved placement and timings (Hours is
	// snapped to whole logging bins).
	Home      HomeConfig `json:"home"`
	SensorFt  float64    `json:"sensor_ft"`
	Hours     float64    `json:"hours"`
	BinWidthS float64    `json:"bin_width_s"`
	WindowS   float64    `json:"window_s"`
	Exact     bool       `json:"exact,omitempty"`

	// Bins counts the logging bins simulated; SilentBins those in which
	// the battery-free sensor could not operate.
	Bins       int `json:"bins"`
	SilentBins int `json:"silent_bins"`

	// MeanCumulativePct is the mean cumulative occupancy percentage
	// (the paper reports 78-127% across its six homes); the per-channel
	// map is keyed ch1/ch6/ch11.
	MeanCumulativePct   float64            `json:"mean_cumulative_pct"`
	ChannelOccupancyPct map[string]float64 `json:"channel_occupancy_pct"`
	// MeanHarvestUW is the mean harvested power, µW (silent bins
	// contribute zero); MeanUpdateRateHz the mean sensor update rate.
	MeanHarvestUW    float64 `json:"mean_harvest_uw"`
	MeanUpdateRateHz float64 `json:"mean_update_rate_hz"`

	// Devices holds one section per lifecycle device, in canonical
	// archetype order; empty without WithDevices.
	Devices []DeviceSection `json:"devices,omitempty"`
}

// ExperimentReport is the experiment mode section: one paper table or
// figure regenerated from the simulator.
type ExperimentReport struct {
	// ID is the experiment id (see Experiments).
	ID string `json:"id"`
	// Full marks the paper-scale configuration (WithFull); false is the
	// quick reduced configuration.
	Full bool `json:"full,omitempty"`
	// Output is the experiment runner's rendered table.
	Output string `json:"output"`
}

// newReport stamps the schema envelope onto a mode section.
func newReport(mode string, r *Report) *Report {
	r.Schema = ReportSchema
	r.Version = Version
	r.Mode = mode
	return r
}

// WriteJSON writes the report as indented JSON under the versioned
// schema.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText writes the report's human-readable form: the fleet
// summary, the single-home summary, or the experiment's table.
func (r *Report) WriteText(w io.Writer) error {
	switch {
	case r.Fleet != nil:
		return r.Fleet.WriteText(w)
	case r.Home != nil:
		return r.Home.writeText(w)
	case r.Experiment != nil:
		_, err := io.WriteString(w, r.Experiment.Output)
		return err
	}
	return fmt.Errorf("powifi: report (mode %q) has no section to render", r.Mode)
}

// WriteCSV writes the report's tabular form. Only fleet reports carry
// a CSV serialization.
func (r *Report) WriteCSV(w io.Writer) error {
	if r.Fleet == nil {
		return fmt.Errorf("powifi: csv output requires a fleet report (mode %q)", r.Mode)
	}
	return r.Fleet.WriteCSV(w)
}

// writeText renders the single-home summary.
func (h *HomeReport) writeText(w io.Writer) error {
	var werr error
	p := func(format string, args ...any) {
		if werr == nil {
			_, werr = fmt.Fprintf(w, format+"\n", args...)
		}
	}
	p("home %d: %d users, %d devices, %d neighboring APs (seed %d)",
		h.Home.ID, h.Home.Users, h.Home.Devices, h.Home.NeighborAPs, h.Home.Seed)
	p("deployment: %.2g h x %.0f s bins (window %.0f ms), sensor at %.1f ft",
		h.Hours, h.BinWidthS, h.WindowS*1000, h.SensorFt)
	p("")
	p("mean cumulative occupancy: %.1f%% over %d bins", h.MeanCumulativePct, h.Bins)
	for _, ch := range phy.PoWiFiChannels {
		p("  %-5s mean %.1f%%", ch, h.ChannelOccupancyPct[ch.String()])
	}
	p("harvested power: mean %.2f µW (silent bins: %d/%d)", h.MeanHarvestUW, h.SilentBins, h.Bins)
	p("sensor update rate: mean %.2f Hz", h.MeanUpdateRateHz)
	for _, d := range h.Devices {
		line := fmt.Sprintf("device %-8s state %-8s outage %.1f%%", d.Kind, d.State, d.OutagePct)
		if d.Updates > 0 {
			line += fmt.Sprintf("  %.0f updates", d.Updates)
		}
		if d.Frames > 0 {
			line += fmt.Sprintf("  %d frames", d.Frames)
		}
		if d.FinalSoCPct != nil {
			line += fmt.Sprintf("  soc %.2f%%", *d.FinalSoCPct)
		}
		if d.TimeToFullS != nil {
			line += fmt.Sprintf("  full in %.2f h", *d.TimeToFullS/3600)
		}
		p("%s", line)
	}
	return werr
}
