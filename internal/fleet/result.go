package fleet

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/lifecycle"
	"repro/internal/phy"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Sketch resolutions. Per-home occupancy means and pooled per-bin
// occupancies live on a percentage scale (cumulative across three
// channels can reach 300%); harvested power across realistic sensor
// placements spans 0 to a few hundred microwatts; sensor update
// latencies of a responsive bin sit well under two minutes.
const (
	occHiPct    = 300
	occBins     = 1200
	chHiPct     = 100
	chBins      = 1000
	harvestHiUW = 500
	harvestBins = 2000
	latencyHiS  = 120
	latencyBins = 2400
	cdfCurvePts = 24
)

// homeStats is the summary a worker emits per home: the scalar means,
// plus the home's per-bin fold inputs as plain columns. These flow
// through the reorder buffer and are folded into the fleet aggregates
// in home-index order — including the per-bin sketch adds, so the
// reducing goroutine owns every aggregate except the lifecycle arch
// partials and a checkpoint of the committed home prefix is a complete
// snapshot of the run's state.
type homeStats struct {
	idx           int
	home          Home
	meanCumPct    float64
	meanChPct     [3]float64
	meanHarvestUW float64
	meanRate      float64
	// Per-bin columns (one backing array, sliced three ways): cumulative
	// occupancy %, banked harvest µW, and sensor rate Hz per bin.
	binCum, binUW, binRate []float64
	// life carries the home's device-lifecycle scalars when the
	// population enables the engine (hasLife); the classic aggregates
	// above are produced either way.
	hasLife bool
	life    lifeHomeStats
	// fail marks a home whose attempts were exhausted: it rides the
	// reorder buffer like a success (so the failure surfaces at a
	// deterministic, workers-invariant point of the reduce order) but
	// the reducer routes it to the failure policy instead of addHome.
	fail *HomeError
	// tr is the home's flight recorder when the run traces; it rides
	// the reorder buffer so trace commits happen in home-index order.
	tr *trace.HomeTrace
}

// partial holds the worker-side pooled aggregates that do not ride
// homeStats: the per-bin lifecycle ledger observations, which land in
// exactly mergeable sketches per archetype (allocated only when the
// population enables the engine). Everything else folds on the
// reducing goroutine.
type partial struct {
	arch *[lifecycle.NumKinds]archPartial
}

func newPartial(cfg Config) *partial {
	p := &partial{}
	if cfg.Population.Lifecycle() {
		p.arch = newArchPartials()
	}
	return p
}

// Result holds the fleet-level aggregates of one run.
type Result struct {
	// Config echoes the resolved configuration (including the worker
	// count actually used; excluded from serialized output so worker
	// count cannot leak into result comparisons).
	Config Config

	// Per-home population aggregates, reduced in home-index order.
	CumOcc      *stats.Sketch    // per-home mean cumulative occupancy, %
	ChOcc       [3]*stats.Sketch // per-home mean occupancy per PoWiFi channel, %
	HomeHarvest *stats.Sketch    // per-home mean harvested power, µW
	OccW        stats.Welford    // exact moments over per-home mean occupancy
	HarvestW    stats.Welford    // exact moments over per-home mean harvest (µW)
	RateW       stats.Welford    // exact moments over per-home mean sensor rate

	// Pooled per-bin aggregates (order-independent exact merges).
	BinOcc     *stats.Sketch // per-bin cumulative occupancy, %
	Harvest    *stats.Sketch // per-bin harvested power, µW
	Latency    *stats.Sketch // per-bin sensor update latency, s (responsive bins)
	SilentBins uint64        // bins where the sensor could not boot
	TotalBins  uint64

	// Arch holds the per-archetype lifecycle aggregates, nil unless the
	// population carries a device mix.
	Arch *[lifecycle.NumKinds]*archResult

	// Failure and degradation state. Errors lists the quarantined homes
	// in home-index order (empty unless a Skip policy saw failures);
	// those homes contribute to no aggregate above. Partial marks a run
	// that stopped on a degradation budget: the aggregates then
	// describe exactly the committed prefix [0, CommittedHomes), minus
	// quarantined homes, and PartialReason says which budget tripped
	// (PartialDeadline or PartialFailureBudget). All four fields are
	// workers-invariant.
	Errors         []HomeError
	Partial        bool
	PartialReason  string
	CommittedHomes int
}

func newResult(cfg Config) *Result {
	r := &Result{
		Config:      cfg,
		CumOcc:      stats.NewSketch(0, occHiPct, occBins),
		HomeHarvest: stats.NewSketch(0, harvestHiUW, harvestBins),
		BinOcc:      stats.NewSketch(0, occHiPct, occBins),
		Harvest:     stats.NewSketch(0, harvestHiUW, harvestBins),
		Latency:     stats.NewSketch(0, latencyHiS, latencyBins),
	}
	for i := range r.ChOcc {
		r.ChOcc[i] = stats.NewSketch(0, chHiPct, chBins)
	}
	if cfg.Population.Lifecycle() {
		r.Arch = new([lifecycle.NumKinds]*archResult)
		horizonS := cfg.Hours * 3600
		for i := range r.Arch {
			r.Arch[i] = newArchResult(horizonS)
		}
	}
	return r
}

// addHome folds one home into the aggregates: the per-bin columns into
// the pooled sketches, the scalar summary into the population
// distributions. Callers must invoke it in home-index order for
// bit-for-bit reproducibility of the Welford moments; it is the single
// commit point, so a run's reducer state after k calls depends only on
// homes [0, k).
func (r *Result) addHome(hs homeStats) {
	for i := range hs.binCum {
		r.TotalBins++
		r.BinOcc.Add(hs.binCum[i])
		r.Harvest.Add(hs.binUW[i])
		if rate := hs.binRate[i]; rate > 0 {
			r.Latency.Add(1 / rate)
		} else {
			r.SilentBins++
		}
	}
	r.CumOcc.Add(hs.meanCumPct)
	for i := range r.ChOcc {
		r.ChOcc[i].Add(hs.meanChPct[i])
	}
	r.HomeHarvest.Add(hs.meanHarvestUW)
	r.OccW.Add(hs.meanCumPct)
	r.HarvestW.Add(hs.meanHarvestUW)
	r.RateW.Add(hs.meanRate)
	if hs.hasLife && r.Arch != nil {
		r.Arch[hs.life.kind].addHome(hs.life.kind, hs.life)
	}
}

// mergePartial folds one worker's pooled lifecycle aggregates into the
// result (a no-op for classic populations).
func (r *Result) mergePartial(p *partial) {
	if p.arch != nil && r.Arch != nil {
		for i := range p.arch {
			r.Arch[i].mergePooled(&p.arch[i])
		}
	}
}

// SilentFraction returns the fraction of logged bins in which the
// battery-free sensor could not operate.
func (r *Result) SilentFraction() float64 {
	if r.TotalBins == 0 {
		return 0
	}
	return float64(r.SilentBins) / float64(r.TotalBins)
}

// DistSummary is the serialized summary of one distribution. Underflow
// and Overflow count samples outside the sketch's bin range: when
// Overflow is a large share of N the upper percentiles saturate at Max
// and the reader must widen the sketch bounds rather than trust them.
type DistSummary struct {
	N         uint64  `json:"n"`
	Mean      float64 `json:"mean"`
	StdDev    float64 `json:"stddev"`
	Min       float64 `json:"min"`
	Max       float64 `json:"max"`
	P50       float64 `json:"p50"`
	P95       float64 `json:"p95"`
	P99       float64 `json:"p99"`
	Underflow uint64  `json:"underflow"`
	Overflow  uint64  `json:"overflow"`
}

// isChargerName reports whether a serialized archetype name is a pure
// battery charger (used to print "charged 0/N" rather than omitting
// the line when no home's battery filled within the horizon).
func isChargerName(name string) bool {
	k, err := lifecycle.ParseKind(name)
	return err == nil && k.Charger()
}

// distFromSketch summarizes a pooled sketch; mean and stddev come from
// the sketch itself (bin-midpoint approximation, deterministic).
func distFromSketch(s *stats.Sketch) DistSummary {
	if s.N() == 0 {
		return DistSummary{}
	}
	under, over := s.OutOfRange()
	return DistSummary{
		N:         s.N(),
		Mean:      s.Mean(),
		StdDev:    s.StdDev(),
		Min:       s.Min(),
		Max:       s.Max(),
		P50:       s.Quantile(0.50),
		P95:       s.Quantile(0.95),
		P99:       s.Quantile(0.99),
		Underflow: under,
		Overflow:  over,
	}
}

// distFromSketchWelford summarizes a per-home sketch, with exact
// Welford moments replacing the sketch approximations.
func distFromSketchWelford(s *stats.Sketch, w stats.Welford) DistSummary {
	d := distFromSketch(s)
	d.Mean = w.Mean
	d.StdDev = w.StdDev()
	return d
}

// Summary is the serializable fleet report: the generalization of the
// paper's Fig. 14-16 from six homes to a population. It deliberately
// omits the worker count — two runs of the same seed must serialize
// identically at any parallelism.
type Summary struct {
	Homes     int     `json:"homes"`
	Seed      uint64  `json:"seed"`
	Hours     float64 `json:"hours"`
	BinWidthS float64 `json:"bin_width_s"`
	WindowS   float64 `json:"window_s"`
	// Population echoes the resolved household distributions: two runs
	// are comparable only if this block matches too.
	Population Population `json:"population"`

	TotalBins      uint64  `json:"total_bins"`
	SilentBins     uint64  `json:"silent_bins"`
	SilentFraction float64 `json:"silent_fraction"`

	// HomeOccupancyPct distributes per-home mean cumulative occupancy
	// (the paper reports 78-127% across its six homes).
	HomeOccupancyPct    DistSummary            `json:"home_occupancy_pct"`
	ChannelOccupancyPct map[string]DistSummary `json:"channel_occupancy_pct"`
	// HomeHarvestUW distributes per-home mean harvested power.
	HomeHarvestUW DistSummary `json:"home_harvest_uw"`
	// BinOccupancyPct pools every logging bin across the fleet.
	BinOccupancyPct DistSummary `json:"bin_occupancy_pct"`
	// BinHarvestUW pools per-bin harvested power across the fleet.
	BinHarvestUW DistSummary `json:"bin_harvest_uw"`
	// UpdateLatencyS pools per-bin sensor update latency (1/rate) over
	// responsive bins; silent bins are reported via SilentFraction.
	UpdateLatencyS DistSummary `json:"update_latency_s"`
	// MeanUpdateRateHz is the fleet mean of per-home mean sensor rates.
	MeanUpdateRateHz float64 `json:"mean_update_rate_hz"`

	// CDF curves for plotting the population figures. The prefixes name
	// the sample population: HomeOccupancyCDF distributes per-home
	// means (pairs with HomeOccupancyPct), while the harvest and
	// latency curves pool every logging bin across the fleet (pair with
	// BinHarvestUW / UpdateLatencyS, not the per-home summaries).
	HomeOccupancyCDF []stats.Point `json:"home_occupancy_cdf"`
	BinHarvestCDF    []stats.Point `json:"bin_harvest_cdf"`
	BinLatencyCDF    []stats.Point `json:"bin_latency_cdf"`

	// Lifecycle holds the device-lifecycle engine's per-archetype
	// report; nil unless the population carries a device mix.
	Lifecycle *LifecycleSummary `json:"lifecycle,omitempty"`

	// Failure and degradation report. All fields are omitted on a clean
	// run, so a fault-free report serializes byte-identically to builds
	// that predate them. Errors lists quarantined homes in home-index
	// order; Partial marks a degradation-budget stop whose aggregates
	// cover exactly homes [0, CommittedHomes).
	Partial        bool        `json:"partial,omitempty"`
	PartialReason  string      `json:"partial_reason,omitempty"`
	CommittedHomes int         `json:"committed_homes,omitempty"`
	FailedHomes    int         `json:"failed_homes,omitempty"`
	Errors         []HomeError `json:"errors,omitempty"`
}

// Summarize derives the serializable report from the aggregates.
func (r *Result) Summarize() Summary {
	s := Summary{
		Homes:               r.Config.Homes,
		Seed:                r.Config.Seed,
		Hours:               r.Config.Hours,
		BinWidthS:           r.Config.BinWidth.Seconds(),
		WindowS:             r.Config.Window.Seconds(),
		Population:          r.Config.Population,
		TotalBins:           r.TotalBins,
		SilentBins:          r.SilentBins,
		SilentFraction:      r.SilentFraction(),
		HomeOccupancyPct:    distFromSketchWelford(r.CumOcc, r.OccW),
		ChannelOccupancyPct: map[string]DistSummary{},
		HomeHarvestUW:       distFromSketchWelford(r.HomeHarvest, r.HarvestW),
		BinOccupancyPct:     distFromSketch(r.BinOcc),
		BinHarvestUW:        distFromSketch(r.Harvest),
		UpdateLatencyS:      distFromSketch(r.Latency),
		MeanUpdateRateHz:    r.RateW.Mean,
		HomeOccupancyCDF:    r.CumOcc.Points(cdfCurvePts),
		BinHarvestCDF:       r.Harvest.Points(cdfCurvePts),
		BinLatencyCDF:       r.Latency.Points(cdfCurvePts),
	}
	for i, chNum := range phy.PoWiFiChannels {
		s.ChannelOccupancyPct[chNum.String()] = distFromSketch(r.ChOcc[i])
	}
	s.Partial = r.Partial
	s.PartialReason = r.PartialReason
	if r.Partial {
		s.CommittedHomes = r.CommittedHomes
	}
	s.FailedHomes = len(r.Errors)
	s.Errors = r.Errors
	if r.Arch != nil {
		ls := &LifecycleSummary{Devices: r.Config.Population.Devices}
		for _, k := range lifecycle.Kinds() {
			if ar := r.Arch[k]; ar.Homes > 0 {
				ls.Archetypes = append(ls.Archetypes, summarizeArch(k, ar))
			}
		}
		s.Lifecycle = ls
	}
	return s
}

// WriteJSON writes the summary as indented JSON.
func (r *Result) WriteJSON(w io.Writer) error { return r.Summarize().WriteJSON(w) }

// WriteCSV writes the summary as metric rows plus CDF curve rows.
func (r *Result) WriteCSV(w io.Writer) error { return r.Summarize().WriteCSV(w) }

// WriteText writes a human-readable summary.
func (r *Result) WriteText(w io.Writer) error { return r.Summarize().WriteText(w) }

// WriteJSON writes the summary as indented JSON. The writers live on
// Summary (not only Result) so the facade's unified Report — which
// carries the serialized Summary, never the live aggregates — renders
// through the exact same code path as the internal tools.
func (s Summary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteCSV writes the summary as metric rows plus CDF curve rows.
func (s Summary) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	row := func(fields ...string) { cw.Write(fields) }
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }

	row("section", "name", "n", "mean", "stddev", "min", "max", "p50", "p95", "p99", "underflow", "overflow")
	dist := func(name string, d DistSummary) {
		row("dist", name, u(d.N), f(d.Mean), f(d.StdDev), f(d.Min), f(d.Max), f(d.P50), f(d.P95), f(d.P99),
			u(d.Underflow), u(d.Overflow))
	}
	dist("home_occupancy_pct", s.HomeOccupancyPct)
	for _, chNum := range phy.PoWiFiChannels {
		dist("channel_occupancy_pct/"+chNum.String(), s.ChannelOccupancyPct[chNum.String()])
	}
	dist("home_harvest_uw", s.HomeHarvestUW)
	dist("bin_occupancy_pct", s.BinOccupancyPct)
	dist("bin_harvest_uw", s.BinHarvestUW)
	dist("update_latency_s", s.UpdateLatencyS)
	pop := s.Population
	popRow := func(name string, v float64) { row("population", name, "", f(v), "", "", "", "", "", "", "", "") }
	popRow("min_users", float64(pop.MinUsers))
	popRow("max_users", float64(pop.MaxUsers))
	popRow("max_devices_per_user", float64(pop.MaxDevicesPerUser))
	popRow("mean_neighbor_aps", pop.MeanNeighborAPs)
	popRow("max_neighbor_aps", float64(pop.MaxNeighborAPs))
	popRow("weekend_fraction", pop.WeekendFraction)
	popRow("min_sensor_ft", pop.MinSensorFt)
	popRow("max_sensor_ft", pop.MaxSensorFt)
	row("scalar", "homes", u(uint64(s.Homes)), "", "", "", "", "", "", "", "", "")
	row("scalar", "total_bins", u(s.TotalBins), "", "", "", "", "", "", "", "", "")
	row("scalar", "silent_fraction", "", f(s.SilentFraction), "", "", "", "", "", "", "", "")
	row("scalar", "mean_update_rate_hz", "", f(s.MeanUpdateRateHz), "", "", "", "", "", "", "", "")
	// Failure/degradation rows appear only when present, so fault-free
	// CSV output stays byte-identical.
	if s.Partial {
		row("scalar", "partial/"+s.PartialReason, u(uint64(s.CommittedHomes)), "", "", "", "", "", "", "", "", "")
	}
	if s.FailedHomes > 0 {
		row("scalar", "failed_homes", u(uint64(s.FailedHomes)), "", "", "", "", "", "", "", "", "")
	}
	for _, e := range s.Errors {
		row("error", e.Label, u(uint64(e.Index)), "", "", "", "", "", "", "", "", e.Msg)
	}
	curve := func(name string, pts []stats.Point) {
		for _, p := range pts {
			row("cdf", name, "", f(p.X), f(p.Y), "", "", "", "", "", "", "")
		}
	}
	curve("home_occupancy_pct", s.HomeOccupancyCDF)
	curve("bin_harvest_uw", s.BinHarvestCDF)
	curve("bin_latency_s", s.BinLatencyCDF)
	if s.Lifecycle != nil {
		for _, a := range s.Lifecycle.Archetypes {
			pre := "lifecycle/" + a.Kind + "/"
			dist(pre+"time_to_first_update_s", a.TimeToFirstUpdateS)
			dist(pre+"home_outage_pct", a.HomeOutagePct)
			dist(pre+"update_interval_s", a.UpdateIntervalS)
			dist(pre+"soc_pct", a.SoCPct)
			dist(pre+"charge_time_s", a.ChargeTimeS)
			scalar := func(name string, v float64) { row("lifecycle", pre+name, "", f(v), "", "", "", "", "", "", "", "") }
			row("lifecycle", pre+"homes", u(a.Homes), "", "", "", "", "", "", "", "", "")
			row("lifecycle", pre+"total_bins", u(a.TotalBins), "", "", "", "", "", "", "", "", "")
			row("lifecycle", pre+"outage_bins", u(a.OutageBins), "", "", "", "", "", "", "", "", "")
			row("lifecycle", pre+"homes_never_active", u(a.HomesNeverActive), "", "", "", "", "", "", "", "", "")
			row("lifecycle", pre+"homes_charged", u(a.HomesCharged), "", "", "", "", "", "", "", "", "")
			scalar("updates_per_home_mean", a.UpdatesPerHomeMean)
			scalar("frames_per_home_mean", a.FramesPerHomeMean)
			scalar("final_soc_pct_mean", a.FinalSoCPctMean)
			scalar("min_soc_pct_mean", a.MinSoCPctMean)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteText writes a human-readable summary.
func (s Summary) WriteText(w io.Writer) error {
	var werr error
	p := func(format string, args ...any) {
		if werr == nil {
			_, werr = fmt.Fprintf(w, format+"\n", args...)
		}
	}
	p("fleet: %d homes x %.0f h (seed %d, bin %.0f s, window %.0f ms)",
		s.Homes, s.Hours, s.Seed, s.BinWidthS, s.WindowS*1000)
	if s.Partial {
		p("PARTIAL RESULT (%s): aggregates cover the committed prefix of %d/%d homes",
			s.PartialReason, s.CommittedHomes, s.Homes)
	}
	if s.FailedHomes > 0 {
		p("failed homes: %d quarantined (contribute to no aggregate)", s.FailedHomes)
		for _, e := range s.Errors {
			p("  home %d (%s): %d attempt(s): %s", e.Index, e.Label, e.Attempts, e.Msg)
		}
	}
	p("population: %d-%d users, <=%d devices/user, ~%.0f neighbor APs (cap %d), weekend %.2f, sensor %.0f-%.0f ft",
		s.Population.MinUsers, s.Population.MaxUsers, s.Population.MaxDevicesPerUser,
		s.Population.MeanNeighborAPs, s.Population.MaxNeighborAPs,
		s.Population.WeekendFraction, s.Population.MinSensorFt, s.Population.MaxSensorFt)
	p("")
	p("cumulative occupancy per home: mean %.1f%% ± %.1f  p50 %.1f%%  p95 %.1f%%  p99 %.1f%%  [%.1f, %.1f]",
		s.HomeOccupancyPct.Mean, s.HomeOccupancyPct.StdDev,
		s.HomeOccupancyPct.P50, s.HomeOccupancyPct.P95, s.HomeOccupancyPct.P99,
		s.HomeOccupancyPct.Min, s.HomeOccupancyPct.Max)
	for _, chNum := range phy.PoWiFiChannels {
		d := s.ChannelOccupancyPct[chNum.String()]
		p("  %-5s mean %.1f%%  p50 %.1f%%  p95 %.1f%%", chNum, d.Mean, d.P50, d.P95)
	}
	p("")
	p("harvested power per home:      mean %.2f µW ± %.2f  p50 %.2f  p95 %.2f  p99 %.2f",
		s.HomeHarvestUW.Mean, s.HomeHarvestUW.StdDev,
		s.HomeHarvestUW.P50, s.HomeHarvestUW.P95, s.HomeHarvestUW.P99)
	p("sensor update latency (bins):  p50 %.2f s  p95 %.2f s  p99 %.2f s  (silent bins: %.1f%%)",
		s.UpdateLatencyS.P50, s.UpdateLatencyS.P95, s.UpdateLatencyS.P99, 100*s.SilentFraction)
	p("mean sensor update rate:       %.2f Hz over %d bins", s.MeanUpdateRateHz, s.TotalBins)
	if s.Lifecycle != nil {
		p("")
		p("device lifecycle (%s):", s.Lifecycle.Devices)
		for _, a := range s.Lifecycle.Archetypes {
			p("  %-8s %d homes, outage %.1f%% of bins (per-home mean %.1f%%)",
				a.Kind, a.Homes, 100*a.OutageBinFraction, a.HomeOutagePct.Mean)
			if a.TimeToFirstUpdateS.N > 0 || a.HomesNeverActive > 0 {
				p("           first update p50 %.1f s  p95 %.1f s  (never: %d/%d)",
					a.TimeToFirstUpdateS.P50, a.TimeToFirstUpdateS.P95, a.HomesNeverActive, a.Homes)
			}
			if a.UpdateIntervalS.N > 0 {
				p("           update interval p50 %.2f s  p95 %.2f s  (%.1f updates/home)",
					a.UpdateIntervalS.P50, a.UpdateIntervalS.P95, a.UpdatesPerHomeMean)
			}
			if a.FramesPerHomeMean > 0 {
				p("           frames/home %.1f", a.FramesPerHomeMean)
			}
			if a.SoCPct.N > 0 {
				p("           soc p50 %.2f%%  p95 %.2f%%  final %.2f%%  min %.2f%%",
					a.SoCPct.P50, a.SoCPct.P95, a.FinalSoCPctMean, a.MinSoCPctMean)
			}
			if a.HomesCharged > 0 || (a.ChargeTimeS.N == 0 && isChargerName(a.Kind)) {
				p("           charged %d/%d homes, charge time p50 %.2f h  p95 %.2f h",
					a.HomesCharged, a.Homes, a.ChargeTimeS.P50/3600, a.ChargeTimeS.P95/3600)
			}
		}
	}
	p("")
	p("occupancy CDF (per-home mean cumulative %%):")
	for _, pt := range s.HomeOccupancyCDF {
		p("  %7.1f%%  %5.3f", pt.X, pt.Y)
	}
	return werr
}
