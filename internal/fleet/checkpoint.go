package fleet

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/stats"
	"repro/internal/telemetry"
)

// CheckpointSchema identifies the checkpoint file format version. A
// mismatch fails loudly: resuming through a format change could fold
// state into the wrong aggregates and silently corrupt the run.
const CheckpointSchema = 1

// defaultCheckpointEvery is the periodic write cadence in committed
// homes. A checkpoint is a few tens of kilobytes, so the default keeps
// write amplification negligible even on million-home sweeps while
// bounding lost work to a few seconds of simulation.
const defaultCheckpointEvery = 4096

// Checkpoint configures checkpoint/resume for a fleet run (attach via
// Hooks.Checkpoint). The reducer — which folds homes strictly in
// home-index order — periodically serializes its complete state: the
// next home index and every aggregate the committed prefix [0, next)
// has produced. Because per-home randomness derives from (seed, index)
// and the reducer is the single commit point, resuming from a
// checkpoint and re-running the remaining homes yields output
// bit-identical to an uninterrupted run at any worker count.
//
// On RunWith entry, if Path exists it must be a checkpoint of the same
// configuration (fingerprint-checked, worker count excluded); the run
// then resumes from its committed prefix, and the Progress/Home hooks
// fire only for the homes actually simulated this session. On
// successful completion the file is removed. On cancellation or a Home
// hook stop, the committed prefix is written before RunWith returns.
//
// Checkpointing rejects device-lifecycle populations: the lifecycle
// engine's pooled per-bin ledgers accumulate on the workers, not the
// reducer, so a committed home prefix would not capture them.
type Checkpoint struct {
	// Path is the checkpoint file. Writes are atomic (temp file +
	// rename), so a crash mid-write leaves the previous checkpoint
	// intact.
	Path string
	// Every is the number of committed homes between periodic writes;
	// <= 0 selects the default (4096). The terminal write on
	// cancellation or hook stop happens regardless.
	Every int
}

// checkpointFile is the serialized reducer state. Sketches round-trip
// bit-exactly through their JSON form (integer counts, shortest-round-
// trip floats), and Welford accumulators are three exact scalars, so a
// loaded checkpoint restores the reducer to the identical float state.
type checkpointFile struct {
	Schema     int    `json:"schema"`
	ConfigHash string `json:"config_hash"`
	Homes      int    `json:"homes"`
	// Next is the first home index not yet committed: aggregates below
	// describe exactly homes [0, Next).
	Next int `json:"next"`

	SilentBins uint64 `json:"silent_bins"`
	TotalBins  uint64 `json:"total_bins"`

	CumOcc      *stats.Sketch    `json:"cum_occ"`
	ChOcc       [3]*stats.Sketch `json:"ch_occ"`
	HomeHarvest *stats.Sketch    `json:"home_harvest"`
	BinOcc      *stats.Sketch    `json:"bin_occ"`
	Harvest     *stats.Sketch    `json:"harvest"`
	Latency     *stats.Sketch    `json:"latency"`

	OccW     stats.Welford `json:"occ_w"`
	HarvestW stats.Welford `json:"harvest_w"`
	RateW    stats.Welford `json:"rate_w"`
}

// checkpointHash fingerprints everything that determines a run's
// output. Workers is zeroed: parallelism never affects results, so a
// checkpoint taken at -workers 8 resumes correctly at -workers 1.
func checkpointHash(cfg Config) string {
	cfg.Workers = 0
	return telemetry.HashConfig(cfg)
}

// writeCheckpoint atomically serializes the reducer state: homes
// [0, next) are committed into res.
func writeCheckpoint(ck *Checkpoint, cfg Config, res *Result, next int) error {
	cf := checkpointFile{
		Schema:     CheckpointSchema,
		ConfigHash: checkpointHash(cfg),
		Homes:      cfg.Homes,
		Next:       next,
		SilentBins: res.SilentBins,
		TotalBins:  res.TotalBins,
		CumOcc:     res.CumOcc,
		ChOcc:      res.ChOcc,
		HomeHarvest: res.HomeHarvest,
		BinOcc:     res.BinOcc,
		Harvest:    res.Harvest,
		Latency:    res.Latency,
		OccW:       res.OccW,
		HarvestW:   res.HarvestW,
		RateW:      res.RateW,
	}
	data, err := json.Marshal(cf)
	if err != nil {
		return fmt.Errorf("fleet: serializing checkpoint: %w", err)
	}
	tmp := ck.Path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("fleet: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, ck.Path); err != nil {
		return fmt.Errorf("fleet: committing checkpoint: %w", err)
	}
	return nil
}

// loadCheckpoint restores the reducer state from ck.Path into res and
// returns the next home index to simulate. A missing file is not an
// error — the run simply starts from home 0. Anything else that
// prevents a faithful resume (schema or configuration mismatch, out-
// of-range prefix, corrupt aggregates) is: silently restarting would
// discard exactly the work the caller asked to keep.
func loadCheckpoint(ck *Checkpoint, cfg Config, res *Result) (next int, err error) {
	data, err := os.ReadFile(ck.Path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("fleet: reading checkpoint: %w", err)
	}
	var cf checkpointFile
	if err := json.Unmarshal(data, &cf); err != nil {
		return 0, fmt.Errorf("fleet: parsing checkpoint %s: %w", filepath.Base(ck.Path), err)
	}
	if cf.Schema != CheckpointSchema {
		return 0, fmt.Errorf("fleet: checkpoint %s has schema %d (this build reads schema %d)",
			filepath.Base(ck.Path), cf.Schema, CheckpointSchema)
	}
	if want := checkpointHash(cfg); cf.ConfigHash != want {
		return 0, fmt.Errorf("fleet: checkpoint %s was taken under a different configuration (hash %s, this run %s)",
			filepath.Base(ck.Path), cf.ConfigHash, want)
	}
	if cf.Next < 0 || cf.Next > cf.Homes || cf.Homes != cfg.Homes {
		return 0, fmt.Errorf("fleet: checkpoint %s has inconsistent prefix (next %d of %d homes, run has %d)",
			filepath.Base(ck.Path), cf.Next, cf.Homes, cfg.Homes)
	}
	// Restore through TryMerge-style validation: each sketch must match
	// the resolution newResult built, so a truncated or hand-edited file
	// cannot slip mismatched aggregates into the run.
	restore := func(dst, src *stats.Sketch, name string) error {
		if src == nil {
			return fmt.Errorf("fleet: checkpoint %s is missing the %s aggregate", filepath.Base(ck.Path), name)
		}
		if err := dst.TryMerge(src); err != nil {
			return fmt.Errorf("fleet: checkpoint %s: %s: %w", filepath.Base(ck.Path), name, err)
		}
		return nil
	}
	if err := restore(res.CumOcc, cf.CumOcc, "cum_occ"); err != nil {
		return 0, err
	}
	for i := range res.ChOcc {
		if err := restore(res.ChOcc[i], cf.ChOcc[i], "ch_occ"); err != nil {
			return 0, err
		}
	}
	if err := restore(res.HomeHarvest, cf.HomeHarvest, "home_harvest"); err != nil {
		return 0, err
	}
	if err := restore(res.BinOcc, cf.BinOcc, "bin_occ"); err != nil {
		return 0, err
	}
	if err := restore(res.Harvest, cf.Harvest, "harvest"); err != nil {
		return 0, err
	}
	if err := restore(res.Latency, cf.Latency, "latency"); err != nil {
		return 0, err
	}
	res.SilentBins = cf.SilentBins
	res.TotalBins = cf.TotalBins
	res.OccW = cf.OccW
	res.HarvestW = cf.HarvestW
	res.RateW = cf.RateW
	return cf.Next, nil
}
