package fleet

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"

	"repro/internal/faultinject"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// CheckpointSchema identifies the checkpoint file format version. A
// mismatch fails loudly: resuming through a format change could fold
// state into the wrong aggregates and silently corrupt the run.
// Schema 2 wraps the reducer payload in a checksummed envelope and
// rotates a last-good generation.
const CheckpointSchema = 2

// defaultCheckpointEvery is the periodic write cadence in committed
// homes. A checkpoint is a few tens of kilobytes, so the default keeps
// write amplification negligible even on million-home sweeps while
// bounding lost work to a few seconds of simulation.
const defaultCheckpointEvery = 4096

// Checkpoint configures checkpoint/resume for a fleet run (attach via
// Hooks.Checkpoint). The reducer — which folds homes strictly in
// home-index order — periodically serializes its complete state: the
// next home index and every aggregate the committed prefix [0, next)
// has produced. Because per-home randomness derives from (seed, index)
// and the reducer is the single commit point, resuming from a
// checkpoint and re-running the remaining homes yields output
// bit-identical to an uninterrupted run at any worker count.
//
// Durability: each write goes to a fsynced temp file, the previous
// checkpoint (if any) rotates to Path+".prev", the temp file renames
// into place, and the directory is fsynced — so a crash at any instant
// leaves at least one intact generation on disk. The payload carries
// an fnv64a checksum; a resume that finds the latest generation torn
// or bit-rotted falls back to the ".prev" generation instead of
// failing (and fails loudly only when no intact generation remains).
//
// On RunWith entry, if Path exists it must be a checkpoint of the same
// configuration (fingerprint-checked; worker count and the failure/
// degradation budgets excluded); the run then resumes from its
// committed prefix, and the Progress/Home hooks fire only for the
// homes actually simulated this session. On successful completion both
// generations are removed; a partial run keeps them so the tail can be
// resumed. On cancellation or a Home hook stop, the committed prefix
// is written before RunWith returns.
//
// Checkpointing rejects device-lifecycle populations: the lifecycle
// engine's pooled per-bin ledgers accumulate on the workers, not the
// reducer, so a committed home prefix would not capture them.
type Checkpoint struct {
	// Path is the checkpoint file; Path+".prev" holds the previous
	// generation. Writes are atomic (fsynced temp file + rename), so a
	// crash mid-write leaves the previous checkpoint intact.
	Path string
	// Every is the number of committed homes between periodic writes;
	// <= 0 selects the default (4096). The terminal write on
	// cancellation, budget exhaustion or hook stop happens regardless.
	Every int
}

// prevPath returns the last-good generation's path.
func (ck *Checkpoint) prevPath() string { return ck.Path + ".prev" }

// checkpointEnvelope is the on-disk wrapper: schema, an fnv64a hex
// checksum of Payload, and the serialized reducer state. The checksum
// turns torn writes and bit rot into detected corruption instead of
// silently wrong aggregates.
type checkpointEnvelope struct {
	Schema  int             `json:"schema"`
	Sum     string          `json:"sum"`
	Payload json.RawMessage `json:"payload"`
}

// checkpointFile is the serialized reducer state. Sketches round-trip
// bit-exactly through their JSON form (integer counts, shortest-round-
// trip floats), and Welford accumulators are three exact scalars, so a
// loaded checkpoint restores the reducer to the identical float state.
type checkpointFile struct {
	ConfigHash string `json:"config_hash"`
	Homes      int    `json:"homes"`
	// Next is the first home index not yet committed: aggregates below
	// describe exactly homes [0, Next).
	Next int `json:"next"`

	SilentBins uint64 `json:"silent_bins"`
	TotalBins  uint64 `json:"total_bins"`

	CumOcc      *stats.Sketch    `json:"cum_occ"`
	ChOcc       [3]*stats.Sketch `json:"ch_occ"`
	HomeHarvest *stats.Sketch    `json:"home_harvest"`
	BinOcc      *stats.Sketch    `json:"bin_occ"`
	Harvest     *stats.Sketch    `json:"harvest"`
	Latency     *stats.Sketch    `json:"latency"`

	OccW     stats.Welford `json:"occ_w"`
	HarvestW stats.Welford `json:"harvest_w"`
	RateW    stats.Welford `json:"rate_w"`

	// Errors carries the quarantined homes of the committed prefix, so
	// a resumed skip-policy run reports the identical Errors section.
	Errors []HomeError `json:"errors,omitempty"`
}

// checkpointHash fingerprints everything that determines a run's
// output. Workers is zeroed: parallelism never affects results, so a
// checkpoint taken at -workers 8 resumes correctly at -workers 1. The
// failure policy and degradation budgets are zeroed too: they decide
// when a run stops or what it retries, not what a committed home
// contains, so a deadline-truncated run may resume under a fresh
// budget (or a crashed fail-fast run resume with a skip policy).
func checkpointHash(cfg Config) string {
	cfg.Workers = 0
	cfg.Policy = FailurePolicy{}
	cfg.Deadline = 0
	cfg.MaxFailedHomes = 0
	return telemetry.HashConfig(cfg)
}

// payloadSum is the envelope checksum: fnv64a over the payload bytes.
func payloadSum(payload []byte) string {
	h := fnv.New64a()
	h.Write(payload)
	return fmt.Sprintf("%016x", h.Sum64())
}

// ckWriter owns one run's checkpoint writes: the rotation, the fsync
// discipline, and the session-local write generation that keys the
// injectable checkpoint faults.
type ckWriter struct {
	ck  *Checkpoint
	cfg Config
	fi  *faultinject.Set
	t   *telemetry.Run
	gen int
}

// write atomically serializes the reducer state: homes [0, next) are
// committed into res. The previous on-disk generation survives as
// ".prev" until the next write replaces it.
func (w *ckWriter) write(res *Result, next int) error {
	cf := checkpointFile{
		ConfigHash:  checkpointHash(w.cfg),
		Homes:       w.cfg.Homes,
		Next:        next,
		SilentBins:  res.SilentBins,
		TotalBins:   res.TotalBins,
		CumOcc:      res.CumOcc,
		ChOcc:       res.ChOcc,
		HomeHarvest: res.HomeHarvest,
		BinOcc:      res.BinOcc,
		Harvest:     res.Harvest,
		Latency:     res.Latency,
		OccW:        res.OccW,
		HarvestW:    res.HarvestW,
		RateW:       res.RateW,
		Errors:      res.Errors,
	}
	payload, err := json.Marshal(cf)
	if err != nil {
		return fmt.Errorf("fleet: serializing checkpoint: %w", err)
	}
	env, err := json.Marshal(checkpointEnvelope{
		Schema:  CheckpointSchema,
		Sum:     payloadSum(payload),
		Payload: payload,
	})
	if err != nil {
		return fmt.Errorf("fleet: serializing checkpoint: %w", err)
	}
	gen := w.gen
	w.gen++

	// Injectable write faults, keyed by this session's write generation:
	// a short write truncates the file (torn write), corruption flips
	// one byte in the middle (which lands in the checksummed payload —
	// the envelope head is a fixed few dozen bytes). Both survive the
	// rename and must be caught by the resume path's checksum.
	data := env
	if f := w.fi.Hit(faultinject.CheckpointShortWrite, gen); f != nil {
		w.t.FailureCounters().Fault()
		data = data[:len(data)/2]
	}
	if f := w.fi.Hit(faultinject.CheckpointCorrupt, gen); f != nil {
		w.t.FailureCounters().Fault()
		data = append([]byte(nil), data...)
		data[len(data)/2] ^= 0x01
	}

	tmp := w.ck.Path + ".tmp"
	if err := writeFileSync(tmp, data); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("fleet: writing checkpoint: %w", err)
	}
	// Rotate the last good generation aside before the rename replaces
	// it; a crash between the two renames leaves only ".prev", which
	// the resume path reads.
	if _, err := os.Stat(w.ck.Path); err == nil {
		if err := os.Rename(w.ck.Path, w.ck.prevPath()); err != nil {
			os.Remove(tmp)
			return fmt.Errorf("fleet: rotating checkpoint: %w", err)
		}
		w.t.Counter(telemetry.CounterCheckpointRotations).Inc()
	}
	if f := w.fi.Hit(faultinject.CheckpointRenameFail, gen); f != nil {
		w.t.FailureCounters().Fault()
		os.Remove(tmp)
		return fmt.Errorf("fleet: committing checkpoint: %w",
			fmt.Errorf("injected rename failure (generation %d)", gen))
	}
	if err := os.Rename(tmp, w.ck.Path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("fleet: committing checkpoint: %w", err)
	}
	syncDir(filepath.Dir(w.ck.Path))
	return nil
}

// writeFileSync writes data and fsyncs before closing, so the bytes
// are durable before the rename publishes them.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
// Best effort: some filesystems reject directory fsync, and the
// in-file fsync already bounds the loss to one rotation.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// remove deletes both on-disk generations (a completed run needs no
// resume point).
func (w *ckWriter) remove() {
	os.Remove(w.ck.Path)
	os.Remove(w.ck.prevPath())
}

// loadCheckpoint restores the reducer state from the checkpoint's
// latest intact generation and returns the next home index to simulate
// plus the restored Result. A missing checkpoint is not an error — the
// run starts fresh from home 0. A corrupt or torn latest generation
// falls back to ".prev" (counting a telemetry fallback); anything that
// prevents a faithful resume from every available generation (schema
// or configuration mismatch, out-of-range prefix, corrupt aggregates
// with no intact fallback) is an error: silently restarting would
// discard exactly the work the caller asked to keep.
func loadCheckpoint(ck *Checkpoint, cfg Config, t *telemetry.Run) (next int, res *Result, err error) {
	next, res, err = tryLoadCheckpoint(ck.Path, cfg)
	if err == nil {
		return next, res, nil
	}
	if os.IsNotExist(err) {
		// No latest generation. A lone ".prev" means the process died
		// between the rotation and the rename; resume from it.
		next, res, perr := tryLoadCheckpoint(ck.prevPath(), cfg)
		if perr == nil {
			t.Counter(telemetry.CounterCheckpointFallbacks).Inc()
			return next, res, nil
		}
		if os.IsNotExist(perr) {
			return 0, newResult(cfg), nil // fresh start
		}
		return 0, nil, perr
	}
	// The latest generation exists but did not load. Fall back to the
	// previous generation if it is intact; otherwise surface the
	// original error (a config mismatch fails the same way on both).
	if next, res, perr := tryLoadCheckpoint(ck.prevPath(), cfg); perr == nil {
		t.Counter(telemetry.CounterCheckpointFallbacks).Inc()
		return next, res, nil
	}
	return 0, nil, err
}

// tryLoadCheckpoint restores one checkpoint generation into a fresh
// Result. The caller decides whether a failure is fatal or a fallback.
func tryLoadCheckpoint(path string, cfg Config) (next int, res *Result, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, err // includes os.IsNotExist for the caller
	}
	return decodeCheckpoint(data, filepath.Base(path), cfg)
}

// decodeCheckpoint validates and restores a checkpoint from its raw
// bytes: envelope parse, schema gate, payload checksum, config hash,
// prefix consistency, then a TryMerge-validated restore into a fresh
// Result. It never panics on torn or hostile input — every malformed
// shape is an error (the FuzzCheckpointDecode target holds it to that).
// base names the source file in error messages.
func decodeCheckpoint(data []byte, base string, cfg Config) (next int, res *Result, err error) {
	var env checkpointEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return 0, nil, fmt.Errorf("fleet: parsing checkpoint %s: %w", base, err)
	}
	if env.Schema != CheckpointSchema {
		return 0, nil, fmt.Errorf("fleet: checkpoint %s has schema %d (this build reads schema %d)",
			base, env.Schema, CheckpointSchema)
	}
	if got := payloadSum(env.Payload); got != env.Sum {
		return 0, nil, fmt.Errorf("fleet: checkpoint %s is corrupt (payload sum %s, envelope says %s)",
			base, got, env.Sum)
	}
	var cf checkpointFile
	if err := json.Unmarshal(env.Payload, &cf); err != nil {
		return 0, nil, fmt.Errorf("fleet: parsing checkpoint %s: %w", base, err)
	}
	if want := checkpointHash(cfg); cf.ConfigHash != want {
		return 0, nil, fmt.Errorf("fleet: checkpoint %s was taken under a different configuration (hash %s, this run %s)",
			base, cf.ConfigHash, want)
	}
	if cf.Next < 0 || cf.Next > cf.Homes || cf.Homes != cfg.Homes {
		return 0, nil, fmt.Errorf("fleet: checkpoint %s has inconsistent prefix (next %d of %d homes, run has %d)",
			base, cf.Next, cf.Homes, cfg.Homes)
	}
	// Restore into a fresh Result through TryMerge-style validation:
	// each sketch must match the resolution newResult built, so a
	// truncated or hand-edited file cannot slip mismatched aggregates
	// into the run. Building fresh per generation also means a failed
	// restore never leaves a half-merged Result for the fallback.
	res = newResult(cfg)
	restore := func(dst, src *stats.Sketch, name string) error {
		if src == nil {
			return fmt.Errorf("fleet: checkpoint %s is missing the %s aggregate", base, name)
		}
		if err := dst.TryMerge(src); err != nil {
			return fmt.Errorf("fleet: checkpoint %s: %s: %w", base, name, err)
		}
		return nil
	}
	if err := restore(res.CumOcc, cf.CumOcc, "cum_occ"); err != nil {
		return 0, nil, err
	}
	for i := range res.ChOcc {
		if err := restore(res.ChOcc[i], cf.ChOcc[i], "ch_occ"); err != nil {
			return 0, nil, err
		}
	}
	if err := restore(res.HomeHarvest, cf.HomeHarvest, "home_harvest"); err != nil {
		return 0, nil, err
	}
	if err := restore(res.BinOcc, cf.BinOcc, "bin_occ"); err != nil {
		return 0, nil, err
	}
	if err := restore(res.Harvest, cf.Harvest, "harvest"); err != nil {
		return 0, nil, err
	}
	if err := restore(res.Latency, cf.Latency, "latency"); err != nil {
		return 0, nil, err
	}
	res.SilentBins = cf.SilentBins
	res.TotalBins = cf.TotalBins
	res.OccW = cf.OccW
	res.HarvestW = cf.HarvestW
	res.RateW = cf.RateW
	res.Errors = cf.Errors
	return cf.Next, res, nil
}
