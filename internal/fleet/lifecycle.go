package fleet

import (
	"math"

	"repro/internal/lifecycle"
	"repro/internal/stats"
)

// Lifecycle sketch resolutions. Update intervals of a responsive
// duty-cycled device sit well under fifteen minutes; state of charge
// is a percentage (the extra bin past 100 keeps a full battery inside
// the range instead of in the overflow counter). Time-to-first-update
// and time-to-full are bounded by the run horizon, so those sketches
// take their upper edge from the resolved configuration.
const (
	intervalHiS  = 900
	intervalBins = 1800
	socHiPct     = 101
	socBins      = 1010
	horizonBins  = 2000
)

// archPartial is one worker's pooled per-bin lifecycle aggregates for
// one archetype. Only exactly mergeable state lives here — integer-
// count sketches and counters — so worker count and scheduling cannot
// change the merged result; order-sensitive per-home scalars travel
// through homeStats and the reorder buffer instead.
type archPartial struct {
	interval   *stats.Sketch // per-bin mean update interval, s (bins with updates)
	soc        *stats.Sketch // per-bin state of charge, % (battery-backed kinds)
	outageBins uint64
	totalBins  uint64
}

func (ap *archPartial) init() {
	ap.interval = stats.NewSketch(0, intervalHiS, intervalBins)
	ap.soc = stats.NewSketch(0, socHiPct, socBins)
}

// add folds one lifecycle bin observation.
func (ap *archPartial) add(b lifecycle.BinStats) {
	ap.totalBins++
	if b.Outage {
		ap.outageBins++
	}
	if b.Updates > 0 {
		ap.interval.Add(b.IntervalS)
	}
	if !math.IsNaN(b.SoCPct) {
		ap.soc.Add(b.SoCPct)
	}
}

// newArchPartials allocates the per-archetype pooled aggregates of one
// worker (or of the serial fast path).
func newArchPartials() *[lifecycle.NumKinds]archPartial {
	aps := new([lifecycle.NumKinds]archPartial)
	for i := range aps {
		aps[i].init()
	}
	return aps
}

// lifeHomeStats is the lifecycle slice of a home's scalar summary:
// the device's time-domain metrics, reduced in home-index order.
type lifeHomeStats struct {
	kind        lifecycle.Kind
	ttfuS       float64 // +Inf when the device never produced an update
	outageFrac  float64
	updates     float64
	frames      float64
	chargeTimeS float64 // +Inf when a charger never filled
	finalSoC    float64 // NaN for the battery-free sensor
	minSoC      float64
}

// archResult aggregates one archetype across the fleet: ordered
// per-home reductions plus the merged pooled per-bin aggregates.
type archResult struct {
	Homes uint64

	TTFU        *stats.Sketch
	TTFUW       stats.Welford
	NeverActive uint64 // homes whose device never produced an update

	Outage  *stats.Sketch // per-home outage percentage
	OutageW stats.Welford

	UpdatesW stats.Welford
	FramesW  stats.Welford

	ChargeTime   *stats.Sketch
	ChargeTimeW  stats.Welford
	Charged      uint64 // charger homes that reached FullSoC
	NeverCharged uint64

	FinalSoCW stats.Welford
	MinSoCW   stats.Welford

	// Merged pooled per-bin aggregates.
	Interval   *stats.Sketch
	SoC        *stats.Sketch
	OutageBins uint64
	TotalBins  uint64
}

// mergePooled folds one worker's pooled per-bin aggregates for this
// archetype into the result (exact: sketch merges and counter sums).
func (ar *archResult) mergePooled(ap *archPartial) {
	ar.Interval.Merge(ap.interval)
	ar.SoC.Merge(ap.soc)
	ar.OutageBins += ap.outageBins
	ar.TotalBins += ap.totalBins
}

func newArchResult(horizonS float64) *archResult {
	return &archResult{
		TTFU:       stats.NewSketch(0, horizonS, horizonBins),
		Outage:     stats.NewSketch(0, socHiPct, socBins),
		ChargeTime: stats.NewSketch(0, horizonS, horizonBins),
		Interval:   stats.NewSketch(0, intervalHiS, intervalBins),
		SoC:        stats.NewSketch(0, socHiPct, socBins),
	}
}

// addHome folds one home's lifecycle scalars; callers invoke it in
// home-index order (the Welford moments are order-sensitive).
func (ar *archResult) addHome(kind lifecycle.Kind, ls lifeHomeStats) {
	ar.Homes++
	// Chargers produce no updates by construction; their headline
	// metric is ChargeTime below, so they skip the first-update
	// accounting rather than reporting every home as never-active.
	if !kind.Charger() {
		if math.IsInf(ls.ttfuS, 1) {
			ar.NeverActive++
		} else {
			ar.TTFU.Add(ls.ttfuS)
			ar.TTFUW.Add(ls.ttfuS)
		}
	}
	ar.Outage.Add(ls.outageFrac * 100)
	ar.OutageW.Add(ls.outageFrac * 100)
	ar.UpdatesW.Add(ls.updates)
	ar.FramesW.Add(ls.frames)
	if kind.Charger() {
		if math.IsInf(ls.chargeTimeS, 1) {
			ar.NeverCharged++
		} else {
			ar.ChargeTime.Add(ls.chargeTimeS)
			ar.ChargeTimeW.Add(ls.chargeTimeS)
			ar.Charged++
		}
	}
	if !math.IsNaN(ls.finalSoC) {
		ar.FinalSoCW.Add(ls.finalSoC * 100)
		ar.MinSoCW.Add(ls.minSoC * 100)
	}
}

// ArchetypeSummary is the serialized fleet report for one archetype.
type ArchetypeSummary struct {
	Kind  string `json:"kind"`
	Homes uint64 `json:"homes"`

	TotalBins         uint64  `json:"total_bins"`
	OutageBins        uint64  `json:"outage_bins"`
	OutageBinFraction float64 `json:"outage_bin_fraction"`

	// TimeToFirstUpdateS distributes per-home time to first update over
	// homes whose device ever produced one; HomesNeverActive counts the
	// rest.
	TimeToFirstUpdateS DistSummary `json:"time_to_first_update_s"`
	HomesNeverActive   uint64      `json:"homes_never_active"`

	// HomeOutagePct distributes each home's time-weighted outage share.
	HomeOutagePct DistSummary `json:"home_outage_pct"`

	UpdatesPerHomeMean float64 `json:"updates_per_home_mean"`
	FramesPerHomeMean  float64 `json:"frames_per_home_mean"`

	// UpdateIntervalS pools per-bin mean update intervals fleet-wide.
	UpdateIntervalS DistSummary `json:"update_interval_s"`

	// SoCPct pools per-bin state of charge; the scalar means summarize
	// the per-home trajectory endpoints.
	SoCPct          DistSummary `json:"soc_pct"`
	FinalSoCPctMean float64     `json:"final_soc_pct_mean"`
	MinSoCPctMean   float64     `json:"min_soc_pct_mean"`

	// ChargeTimeS distributes time to full charge over charger homes
	// that reached the policy's FullSoC within the horizon.
	ChargeTimeS  DistSummary `json:"charge_time_s"`
	HomesCharged uint64      `json:"homes_charged"`
}

// LifecycleSummary is the device-lifecycle section of the fleet report,
// present only when the population carries a device mix.
type LifecycleSummary struct {
	// Devices echoes the population's archetype shares.
	Devices lifecycle.Mix `json:"devices"`
	// Archetypes lists the per-archetype aggregates in canonical Kind
	// order, populated kinds only.
	Archetypes []ArchetypeSummary `json:"archetypes"`
}

// summarizeArch derives one archetype's serialized section.
func summarizeArch(k lifecycle.Kind, ar *archResult) ArchetypeSummary {
	s := ArchetypeSummary{
		Kind:               k.String(),
		Homes:              ar.Homes,
		TotalBins:          ar.TotalBins,
		OutageBins:         ar.OutageBins,
		TimeToFirstUpdateS: distFromSketchWelford(ar.TTFU, ar.TTFUW),
		HomesNeverActive:   ar.NeverActive,
		HomeOutagePct:      distFromSketchWelford(ar.Outage, ar.OutageW),
		UpdatesPerHomeMean: ar.UpdatesW.Mean,
		FramesPerHomeMean:  ar.FramesW.Mean,
		UpdateIntervalS:    distFromSketch(ar.Interval),
		SoCPct:             distFromSketch(ar.SoC),
		FinalSoCPctMean:    ar.FinalSoCW.Mean,
		MinSoCPctMean:      ar.MinSoCW.Mean,
		ChargeTimeS:        distFromSketchWelford(ar.ChargeTime, ar.ChargeTimeW),
		HomesCharged:       ar.Charged,
	}
	if ar.TotalBins > 0 {
		s.OutageBinFraction = float64(ar.OutageBins) / float64(ar.TotalBins)
	}
	return s
}
