package fleet

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lifecycle"
)

// summaryJSON renders a result's serialized form for byte comparison.
func summaryJSON(t *testing.T, r *Result) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestCheckpointResumeBitIdentical is the resume contract: a run
// stopped after k homes and resumed from its checkpoint serializes
// byte-identically to an uninterrupted run — for several interrupt
// points, with the stop and the resume at different worker counts in
// both directions.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	baseline, err := Run(context.Background(), testConfig(12, 4))
	if err != nil {
		t.Fatal(err)
	}
	want := summaryJSON(t, baseline)

	for _, tc := range []struct {
		stopAfter                  int
		stopWorkers, resumeWorkers int
	}{
		{1, 1, 8},
		{5, 8, 1},
		{7, 8, 8},
		{11, 1, 1},
	} {
		path := filepath.Join(t.TempDir(), "fleet.ckpt")
		ck := &Checkpoint{Path: path, Every: 3}

		// Interrupted leg: the Home hook stops the run after stopAfter
		// homes; RunWith writes the committed prefix and reports
		// ErrStopped with no result.
		seen := 0
		cfg := testConfig(12, tc.stopWorkers)
		res, err := RunWith(context.Background(), cfg, Hooks{
			Checkpoint: ck,
			Home: func(HomeRecord) bool {
				seen++
				return seen < tc.stopAfter
			},
		})
		if !errors.Is(err, ErrStopped) || res != nil {
			t.Fatalf("stop after %d: got (%v, %v), want ErrStopped", tc.stopAfter, res, err)
		}
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("stop after %d: no checkpoint written: %v", tc.stopAfter, err)
		}

		// Resume leg, at a different worker count.
		cfg = testConfig(12, tc.resumeWorkers)
		resumed, err := RunWith(context.Background(), cfg, Hooks{Checkpoint: ck})
		if err != nil {
			t.Fatalf("resume after %d: %v", tc.stopAfter, err)
		}
		if got := summaryJSON(t, resumed); !bytes.Equal(got, want) {
			t.Errorf("stop@%d workers %d->%d: resumed output differs from uninterrupted run",
				tc.stopAfter, tc.stopWorkers, tc.resumeWorkers)
		}
		if resumed.OccW != baseline.OccW || resumed.HarvestW != baseline.HarvestW || resumed.RateW != baseline.RateW {
			t.Errorf("stop@%d: resumed Welford moments differ from uninterrupted run", tc.stopAfter)
		}
		// A completed run removes its resume point.
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Errorf("stop@%d: checkpoint not removed after successful completion (stat: %v)", tc.stopAfter, err)
		}
	}
}

// TestCheckpointCancelWritesPrefix exercises the context-cancellation
// abort path: whatever contiguous prefix the reducer had committed at
// cancel time is checkpointed, and resuming completes the run
// bit-identically.
func TestCheckpointCancelWritesPrefix(t *testing.T) {
	baseline, err := Run(context.Background(), testConfig(12, 4))
	if err != nil {
		t.Fatal(err)
	}
	want := summaryJSON(t, baseline)

	path := filepath.Join(t.TempDir(), "fleet.ckpt")
	ck := &Checkpoint{Path: path, Every: 2}
	ctx, cancel := context.WithCancel(context.Background())
	done := 0
	_, err = RunWith(ctx, testConfig(12, 4), Hooks{
		Checkpoint: ck,
		Progress: func(d, total int) {
			done = d
			if d == 5 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
	if done < 5 {
		t.Fatalf("cancel fired after %d homes, want >= 5", done)
	}
	resumed, err := RunWith(context.Background(), testConfig(12, 2), Hooks{Checkpoint: ck})
	if err != nil {
		t.Fatal(err)
	}
	if got := summaryJSON(t, resumed); !bytes.Equal(got, want) {
		t.Error("resume after cancellation differs from uninterrupted run")
	}
}

// TestCheckpointConfigMismatch pins the refusal contract: a checkpoint
// resumes only under the configuration that produced it (worker count
// excluded), never silently restarting or folding into the wrong run.
func TestCheckpointConfigMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.ckpt")
	ck := &Checkpoint{Path: path}
	seen := 0
	_, err := RunWith(context.Background(), testConfig(12, 2), Hooks{
		Checkpoint: ck,
		Home:       func(HomeRecord) bool { seen++; return seen < 4 },
	})
	if !errors.Is(err, ErrStopped) {
		t.Fatal(err)
	}
	cfg := testConfig(12, 2)
	cfg.Seed = 999 // different run, same home count
	if _, err := RunWith(context.Background(), cfg, Hooks{Checkpoint: ck}); err == nil {
		t.Fatal("checkpoint of a different configuration accepted")
	} else if !strings.Contains(err.Error(), "different configuration") {
		t.Fatalf("unexpected mismatch error: %v", err)
	}
	// Corrupt file: must fail loudly, not resume garbage.
	if err := os.WriteFile(path, []byte(`{"schema":1,"config`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := RunWith(context.Background(), testConfig(12, 2), Hooks{Checkpoint: ck}); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
}

// TestCheckpointRejectsLifecycle pins the population restriction: the
// lifecycle engine's pooled ledgers live on the workers, outside the
// reducer's committed prefix, so checkpointing such a run would resume
// with silently missing lifecycle state.
func TestCheckpointRejectsLifecycle(t *testing.T) {
	cfg := testConfig(4, 1)
	cfg.Population.Devices = lifecycle.Mix{lifecycle.TempSensor: 1}
	ck := &Checkpoint{Path: filepath.Join(t.TempDir(), "fleet.ckpt")}
	if _, err := RunWith(context.Background(), cfg, Hooks{Checkpoint: ck}); err == nil {
		t.Fatal("checkpoint + lifecycle population accepted")
	} else if !strings.Contains(err.Error(), "lifecycle") {
		t.Fatalf("unexpected error: %v", err)
	}
}
