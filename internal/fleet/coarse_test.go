package fleet

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/lifecycle"
)

// coarseConfig mirrors testConfig at the 10ms measurement window the
// coarse tier is certified for (deploy.CoarseOptions): the occupancy
// proxy regresses over measured anchors, so its ε contract is stated
// at the fleet's default window, not the 2ms the other unit tests use
// for speed.
func coarseConfig(homes, workers int) Config {
	return Config{
		Homes:    homes,
		Seed:     42,
		Workers:  workers,
		Hours:    4,
		BinWidth: 20 * time.Minute,
		Window:   10 * time.Millisecond,
		Coarse:   true,
	}
}

// TestCoarseDeterministicAcrossWorkerCounts extends the fleet's core
// guarantee to the coarse tier: anchors, proxies and escalations are
// all derived per home from (seed, index), so worker count cannot
// change a byte of output.
func TestCoarseDeterministicAcrossWorkerCounts(t *testing.T) {
	serial, err := Run(context.Background(), coarseConfig(10, 1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(context.Background(), coarseConfig(10, 8))
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := serial.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := parallel.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("coarse JSON output differs between 1 and 8 workers")
	}
	if serial.OccW != parallel.OccW || serial.HarvestW != parallel.HarvestW {
		t.Error("coarse Welford aggregates diverged across worker counts")
	}
}

// TestCoarseVsExactTierCertification is the fleet-level view of the
// coarse contract certified per-bin in deploy: against the same fleet
// on the exact tier, bin accounting and boot/silence decisions are
// bit-identical, and population magnitude means stay within the
// tier's documented ε.
func TestCoarseVsExactTierCertification(t *testing.T) {
	cfg := coarseConfig(10, 4)
	cfg.Coarse = false
	exact, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Coarse = true
	coarse, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if exact.TotalBins != coarse.TotalBins || exact.SilentBins != coarse.SilentBins {
		t.Errorf("bin/boot accounting diverged: exact %d/%d, coarse %d/%d",
			exact.TotalBins, exact.SilentBins, coarse.TotalBins, coarse.SilentBins)
	}
	within := func(name string, got, want, bound float64) {
		t.Helper()
		denom := math.Max(math.Abs(want), 1e-9)
		if math.Abs(got-want)/denom > bound {
			t.Errorf("%s off by more than %.0f%%: coarse %v vs exact %v", name, 100*bound, got, want)
		}
	}
	within("mean occupancy", coarse.OccW.Mean, exact.OccW.Mean, 0.10)
	within("mean harvest", coarse.HarvestW.Mean, exact.HarvestW.Mean, 0.15)
	within("mean rate", coarse.RateW.Mean, exact.RateW.Mean, 0.15)
}

// TestCoarseRejectsLifecycle pins the configuration contract: the
// lifecycle ledger integrates per-bin magnitudes over time, so the
// coarse tier's per-bin ε would compound outside its certification and
// the combination must fail loudly at validation.
func TestCoarseRejectsLifecycle(t *testing.T) {
	cfg := coarseConfig(2, 1)
	cfg.Population.Devices = lifecycle.Mix{lifecycle.TempSensor: 1}
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Fatal("coarse + lifecycle population accepted; want validation error")
	} else if !strings.Contains(err.Error(), "coarse") {
		t.Fatalf("unexpected error for coarse + lifecycle: %v", err)
	}
}
