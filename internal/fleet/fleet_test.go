package fleet

import (
	"bytes"
	"context"
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/deploy"
)

// testConfig keeps the packet-level work small enough for unit tests
// while still exercising every aggregate.
func testConfig(homes, workers int) Config {
	return Config{
		Homes:    homes,
		Seed:     42,
		Workers:  workers,
		Hours:    2,
		BinWidth: 30 * time.Minute,
		Window:   2 * time.Millisecond,
	}
}

// TestDeterministicAcrossWorkerCounts is the fleet's core guarantee:
// the same seed yields bit-for-bit identical serialized output whether
// the homes run on one worker or eight.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	serial, err := Run(context.Background(), testConfig(12, 1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(context.Background(), testConfig(12, 8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Summarize(), parallel.Summarize()) {
		t.Errorf("summaries diverged across worker counts:\n1: %+v\n8: %+v",
			serial.Summarize(), parallel.Summarize())
	}
	// The three serialization formats must also match byte for byte.
	for _, enc := range []struct {
		name  string
		write func(*Result, *bytes.Buffer) error
	}{
		{"json", func(r *Result, b *bytes.Buffer) error { return r.WriteJSON(b) }},
		{"csv", func(r *Result, b *bytes.Buffer) error { return r.WriteCSV(b) }},
		{"text", func(r *Result, b *bytes.Buffer) error { return r.WriteText(b) }},
	} {
		var a, b bytes.Buffer
		if err := enc.write(serial, &a); err != nil {
			t.Fatalf("%s (serial): %v", enc.name, err)
		}
		if err := enc.write(parallel, &b); err != nil {
			t.Fatalf("%s (parallel): %v", enc.name, err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("%s output differs between 1 and 8 workers", enc.name)
		}
	}
	// Welford moments are order-sensitive; the ordered reduce must make
	// them identical too, not merely close.
	if serial.OccW != parallel.OccW || serial.HarvestW != parallel.HarvestW {
		t.Error("Welford aggregates diverged across worker counts")
	}
}

// TestDeterministicAcrossWorkerCountsExactPath re-pins worker-count
// invariance with the operating-point surface bypassed: the guarantee
// must hold on both solver paths, not just the cached default.
func TestDeterministicAcrossWorkerCountsExactPath(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: exact rectifier solves per bin")
	}
	cfg := testConfig(4, 1)
	cfg.Exact = true
	serial, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	parallel, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Summarize(), parallel.Summarize()) {
		t.Error("exact-path summaries diverged across worker counts")
	}
}

// TestExactVsSurfaceParity is the fleet-level ε check: the same fleet
// run with and without the operating-point surface must agree exactly on
// everything occupancy-derived (the surface never touches the packet
// simulation), bit-for-bit on boot decisions (the guard band resolves
// threshold-adjacent bins with the exact solver), and within the
// surface's certified ε on the harvest- and rate-derived means.
func TestExactVsSurfaceParity(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: exact rectifier solves per bin")
	}
	cfg := testConfig(6, 2)
	surf, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Exact = true
	exact, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Occupancy is computed upstream of the solve: identical, not close.
	if surf.OccW != exact.OccW {
		t.Errorf("occupancy moments diverged: surface %+v, exact %+v", surf.OccW, exact.OccW)
	}
	if surf.TotalBins != exact.TotalBins || surf.SilentBins != exact.SilentBins {
		t.Errorf("bin/boot accounting diverged: surface %d/%d, exact %d/%d",
			surf.TotalBins, surf.SilentBins, exact.TotalBins, exact.SilentBins)
	}
	// Harvest and rate pass through the solve: ε-close. The bound is
	// relative with a small absolute floor for all-silent fleets.
	const eps = 1e-6
	close := func(name string, a, b float64) {
		t.Helper()
		if math.Abs(a-b) > math.Max(eps*math.Abs(b), 1e-9) {
			t.Errorf("%s diverged beyond ε: surface %v, exact %v", name, a, b)
		}
	}
	close("mean harvest", surf.HarvestW.Mean, exact.HarvestW.Mean)
	close("mean rate", surf.RateW.Mean, exact.RateW.Mean)
}

// TestSingleHomeFleetMatchesDeployRunner pins the shared code path: a
// one-home fleet must reproduce deploy.Run's summary for the same home
// exactly, because both are views of the same RunStream.
func TestSingleHomeFleetMatchesDeployRunner(t *testing.T) {
	cfg, err := testConfig(1, 1).withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := SynthesizeHome(cfg, 0)
	direct := deploy.Run(h.HomeConfig, deploy.Options{
		BinWidth:         cfg.BinWidth,
		Window:           cfg.Window,
		Hours:            cfg.Hours,
		SensorDistanceFt: h.SensorFt,
	})
	if got, want := res.OccW.Mean, direct.MeanCumulative(); got != want {
		t.Errorf("fleet mean occupancy %v != deploy runner %v", got, want)
	}
	if res.TotalBins != uint64(len(direct.Cumulative)) {
		t.Errorf("fleet bins %d != deploy bins %d", res.TotalBins, len(direct.Cumulative))
	}
}

func TestSynthesizeHomeDeterministicAndInRange(t *testing.T) {
	cfg, err := DefaultConfig().withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	p := cfg.Population
	seen := map[uint64]bool{}
	for i := 0; i < 300; i++ {
		a := SynthesizeHome(cfg, i)
		b := SynthesizeHome(cfg, i)
		if a != b {
			t.Fatalf("home %d not deterministic: %+v vs %+v", i, a, b)
		}
		if a.Users < p.MinUsers || a.Users > p.MaxUsers {
			t.Errorf("home %d users %d outside [%d,%d]", i, a.Users, p.MinUsers, p.MaxUsers)
		}
		if a.Devices < a.Users || a.Devices > a.Users*p.MaxDevicesPerUser {
			t.Errorf("home %d devices %d outside [%d,%d]", i, a.Devices, a.Users, a.Users*p.MaxDevicesPerUser)
		}
		if a.NeighborAPs < 0 || a.NeighborAPs > p.MaxNeighborAPs {
			t.Errorf("home %d neighbors %d outside [0,%d]", i, a.NeighborAPs, p.MaxNeighborAPs)
		}
		if a.StartHour < 0 || a.StartHour > 23 {
			t.Errorf("home %d start hour %d", i, a.StartHour)
		}
		if a.SensorFt < p.MinSensorFt || a.SensorFt >= p.MaxSensorFt {
			t.Errorf("home %d sensor at %.1f ft outside [%.1f,%.1f)", i, a.SensorFt, p.MinSensorFt, p.MaxSensorFt)
		}
		seen[a.Seed] = true
	}
	if len(seen) < 300 {
		t.Errorf("only %d distinct home seeds out of 300", len(seen))
	}
}

func TestFleetAggregatesSane(t *testing.T) {
	cfg := testConfig(8, 0) // default workers
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBins != uint64(cfg.Homes*4) {
		t.Fatalf("total bins = %d, want %d", res.TotalBins, cfg.Homes*4)
	}
	s := res.Summarize()
	// Consumer-router occupancies land well inside the paper's band
	// even for a heterogeneous population.
	if s.HomeOccupancyPct.Mean < 30 || s.HomeOccupancyPct.Mean > 250 {
		t.Errorf("mean cumulative occupancy %.1f%% implausible", s.HomeOccupancyPct.Mean)
	}
	if s.HomeOccupancyPct.P50 > s.HomeOccupancyPct.P99 {
		t.Error("percentiles out of order")
	}
	if s.HomeHarvestUW.N != uint64(cfg.Homes) {
		t.Errorf("per-home harvest N = %d, want %d", s.HomeHarvestUW.N, cfg.Homes)
	}
	if s.SilentFraction < 0 || s.SilentFraction > 1 {
		t.Errorf("silent fraction %v outside [0,1]", s.SilentFraction)
	}
	if s.UpdateLatencyS.N+s.SilentBins != s.TotalBins {
		t.Errorf("latency samples %d + silent %d != bins %d",
			s.UpdateLatencyS.N, s.SilentBins, s.TotalBins)
	}
	if len(s.HomeOccupancyCDF) == 0 || s.HomeOccupancyCDF[len(s.HomeOccupancyCDF)-1].Y != 1 {
		t.Error("occupancy CDF missing or not ending at 1")
	}
}

// TestSilentBinsBankNothing pins harvest/silent consistency: a sensor
// placed beyond the battery-free cold-start range never boots, so the
// harvest distribution must report zero banked power for those bins
// rather than the steady-state figure the chain would produce if it
// were somehow already running.
func TestSilentBinsBankNothing(t *testing.T) {
	cfg := testConfig(3, 2)
	cfg.Population = DefaultPopulation()
	cfg.Population.MinSensorFt = 28
	cfg.Population.MaxSensorFt = 30
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SilentFraction() != 1 {
		t.Fatalf("silent fraction = %v, want 1 at 28-30 ft", res.SilentFraction())
	}
	s := res.Summarize()
	if s.BinHarvestUW.Max != 0 || s.HomeHarvestUW.Mean != 0 {
		t.Errorf("silent fleet reports banked power: bin max %v µW, home mean %v µW",
			s.BinHarvestUW.Max, s.HomeHarvestUW.Mean)
	}
	if s.UpdateLatencyS.N != 0 {
		t.Errorf("latency recorded %d samples in an all-silent fleet", s.UpdateLatencyS.N)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Homes: 0},
		{Homes: -5},
		{Homes: 1, Workers: -1},
		{Homes: 1, Hours: -2},
		// Shorter than one logging bin: zero bins per home would yield
		// fabricated all-zero aggregates.
		{Homes: 1, Hours: 0.5, BinWidth: time.Hour},
		{Homes: 1, Population: Population{MinUsers: 3, MaxUsers: 1, MaxDevicesPerUser: 1,
			MaxNeighborAPs: 1, MinSensorFt: 1, MaxSensorFt: 2}},
	}
	for i, cfg := range bad {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("config %d (%+v) should be rejected", i, cfg)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg, err := Config{Homes: 3}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Workers <= 0 {
		t.Error("workers not defaulted")
	}
	if cfg.Hours != 24 || cfg.BinWidth != time.Hour {
		t.Errorf("duration defaults wrong: %+v", cfg)
	}
	if cfg.Population == (Population{}) {
		t.Error("population not defaulted")
	}
}

func TestConfigSnapsDurationToWholeBins(t *testing.T) {
	// 105 min at 30 min bins truncates to 3 bins; the resolved config
	// (and thus the serialized report) must say 1.5 h, not 1.75 h.
	cfg, err := Config{Homes: 1, Hours: 1.75, BinWidth: 30 * time.Minute}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Hours != 1.5 {
		t.Errorf("snapped hours = %v, want 1.5", cfg.Hours)
	}
}

// TestSnappedDurationRoundTripsToSameBinCount guards the float round
// trip between the fleet's duration snap and the runner's bin-count
// formula: for awkward bin widths the snapped Hours must re-derive the
// same bin count, never one fewer (and never zero).
func TestSnappedDurationRoundTripsToSameBinCount(t *testing.T) {
	cases := []struct {
		hours float64
		bin   time.Duration
		bins  int
	}{
		{1.2, 65 * time.Minute, 1},
		{8.25, 2 * time.Minute, 247},
		{24, time.Hour, 24},
		{0.999, 7 * time.Second, 513},
	}
	for _, tc := range cases {
		cfg, err := Config{Homes: 1, Hours: tc.hours, BinWidth: tc.bin}.withDefaults()
		if err != nil {
			t.Fatalf("hours=%v bin=%v: %v", tc.hours, tc.bin, err)
		}
		got := (deploy.Options{Hours: cfg.Hours, BinWidth: cfg.BinWidth}).NumBins()
		if got != tc.bins {
			t.Errorf("hours=%v bin=%v: snapped %v re-derives %d bins, want %d",
				tc.hours, tc.bin, cfg.Hours, got, tc.bins)
		}
	}
	// End to end on the cheapest awkward case: one 65-minute bin.
	cfg := testConfig(2, 2)
	cfg.Hours = 1.2
	cfg.BinWidth = 65 * time.Minute
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBins != 2 {
		t.Errorf("total bins = %d, want 2 (one per home)", res.TotalBins)
	}
}
