package fleet

// The chaos matrix: every injected fault must leave the run either
// failing fast with a structured error or completing/resuming with
// succeeded-home aggregates bit-identical to a fault-free run, at any
// worker count. This suite is the certification artifact the CI chaos
// job executes.

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

// mustFaults arms a fault spec with the config's seed, failing the
// test on a bad spec.
func mustFaults(t *testing.T, cfg Config, spec string) *faultinject.Set {
	t.Helper()
	fi, err := faultinject.Parse(cfg.Seed, spec)
	if err != nil {
		t.Fatal(err)
	}
	return fi
}

// faultFreeSummary runs the configuration clean and returns its
// serialized summary — the byte-identity baseline.
func faultFreeSummary(t *testing.T, cfg Config) []byte {
	t.Helper()
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return summaryJSON(t, res)
}

// TestChaosFailFastStructuredError pins the default policy: the first
// failed home (in home-index order, so workers-invariant) aborts the
// run with a structured *HomeError, and — with checkpointing on — the
// prefix below the failed home is durable, so a resume with the fault
// disarmed re-attempts it and completes bit-identically.
func TestChaosFailFastStructuredError(t *testing.T) {
	cfg := testConfig(12, 1)
	want := faultFreeSummary(t, cfg)
	for _, workers := range []int{1, 8} {
		cfg := testConfig(12, workers)
		ckPath := filepath.Join(t.TempDir(), "run.ckpt")
		ck := &Checkpoint{Path: ckPath, Every: 4}
		res, err := RunWith(context.Background(), cfg, Hooks{
			Checkpoint: ck,
			Faults:     mustFaults(t, cfg, "home.panic@5"),
		})
		if res != nil {
			t.Fatalf("workers=%d: failed run returned a Result", workers)
		}
		var he *HomeError
		if !errors.As(err, &he) {
			t.Fatalf("workers=%d: error %v is not a *HomeError", workers, err)
		}
		if he.Index != 5 || he.Label != "fleet/home/5" || he.Attempts != 1 {
			t.Fatalf("workers=%d: HomeError = %+v, want index 5, label fleet/home/5, 1 attempt", workers, he)
		}
		if he.Msg != "faultinject: injected panic (home.panic key 5)" {
			t.Fatalf("workers=%d: panic message %q is not deterministic", workers, he.Msg)
		}
		// The fail-fast checkpoint excludes the failed home: the resume
		// re-attempts it (fault disarmed) and must finish bit-identically.
		resumed, err := RunWith(context.Background(), cfg, Hooks{Checkpoint: ck})
		if err != nil {
			t.Fatalf("workers=%d: resume after fail-fast: %v", workers, err)
		}
		if got := summaryJSON(t, resumed); !bytes.Equal(got, want) {
			t.Errorf("workers=%d: resumed summary differs from fault-free run", workers)
		}
	}
}

// TestChaosRetryBitIdentical pins the retry policy: a home that panics
// once and succeeds on its second attempt (the injector's default
// one-fire budget) leaves the run's output byte-identical to a
// fault-free run at any worker count, with the retry visible only in
// telemetry.
func TestChaosRetryBitIdentical(t *testing.T) {
	base := testConfig(12, 1)
	want := faultFreeSummary(t, base)
	for _, workers := range []int{1, 8} {
		cfg := testConfig(12, workers)
		cfg.Policy = FailurePolicy{Retry: 2}
		tel := telemetry.NewRun()
		res, err := RunWith(context.Background(), cfg, Hooks{
			Telemetry: tel,
			Faults:    mustFaults(t, cfg, "home.panic@5"),
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := summaryJSON(t, res); !bytes.Equal(got, want) {
			t.Errorf("workers=%d: retried run's summary differs from fault-free run", workers)
		}
		snap := tel.Snapshot()
		if snap.Counters[telemetry.CounterHomeRetries] != 1 {
			t.Errorf("workers=%d: retries counter = %d, want 1",
				workers, snap.Counters[telemetry.CounterHomeRetries])
		}
		if snap.Counters[telemetry.CounterFaultsInjected] != 1 {
			t.Errorf("workers=%d: faults counter = %d, want 1",
				workers, snap.Counters[telemetry.CounterFaultsInjected])
		}
	}
}

// TestChaosRetryExhaustionFailsFast pins the interaction: a fault
// armed past the retry budget (times=-1) exhausts every attempt and
// the default policy aborts with the attempt count on the error.
func TestChaosRetryExhaustionFailsFast(t *testing.T) {
	cfg := testConfig(12, 4)
	cfg.Policy = FailurePolicy{Retry: 2}
	_, err := RunWith(context.Background(), cfg, Hooks{
		Faults: mustFaults(t, cfg, "home.panic@5,times=-1"),
	})
	var he *HomeError
	if !errors.As(err, &he) {
		t.Fatalf("error %v is not a *HomeError", err)
	}
	if he.Attempts != 3 {
		t.Fatalf("HomeError.Attempts = %d, want 3 (1 + 2 retries)", he.Attempts)
	}
}

// TestChaosSkipQuarantine pins the skip policy: permanently failing
// homes are quarantined into Result.Errors (home-index order,
// workers-invariant), contribute to no aggregate, and every other
// home's record matches the fault-free run exactly.
func TestChaosSkipQuarantine(t *testing.T) {
	spec := "home.panic@3,times=-1;home.panic@7,times=-1"
	collect := func(workers int, faulty bool) (*Result, map[int]HomeRecord, []byte) {
		cfg := testConfig(12, workers)
		recs := make(map[int]HomeRecord)
		h := Hooks{Home: func(r HomeRecord) bool { recs[r.Index] = r; return true }}
		if faulty {
			cfg.Policy = FailurePolicy{Skip: true}
			h.Faults = mustFaults(t, cfg, spec)
		}
		res, err := RunWith(context.Background(), cfg, h)
		if err != nil {
			t.Fatalf("workers=%d faulty=%v: %v", workers, faulty, err)
		}
		return res, recs, summaryJSON(t, res)
	}

	_, cleanRecs, _ := collect(1, false)
	serial, serialRecs, serialSum := collect(1, true)
	_, parallelRecs, parallelSum := collect(8, true)

	if !bytes.Equal(serialSum, parallelSum) {
		t.Error("quarantined run's summary differs across worker counts")
	}
	if len(serial.Errors) != 2 || serial.Errors[0].Index != 3 || serial.Errors[1].Index != 7 {
		t.Fatalf("Errors = %+v, want homes 3 and 7 in index order", serial.Errors)
	}
	if serial.Partial {
		t.Error("quarantine alone must not mark the run partial")
	}
	sum := serial.Summarize()
	if sum.FailedHomes != 2 || len(sum.Errors) != 2 {
		t.Errorf("summary failed_homes = %d (errors %d), want 2", sum.FailedHomes, len(sum.Errors))
	}
	if n := serial.CumOcc.N(); n != 10 {
		t.Errorf("per-home aggregate has %d samples, want 10 (12 homes - 2 quarantined)", n)
	}
	for idx, want := range cleanRecs {
		if idx == 3 || idx == 7 {
			continue
		}
		if got, ok := serialRecs[idx]; !ok || !reflect.DeepEqual(got, want) {
			t.Errorf("succeeded home %d's record differs from the fault-free run", idx)
		}
	}
	for _, idx := range []int{3, 7} {
		if _, ok := serialRecs[idx]; ok {
			t.Errorf("quarantined home %d reached the Home hook", idx)
		}
	}
	for idx := range serialRecs {
		if got, ok := parallelRecs[idx]; !ok || !reflect.DeepEqual(got, serialRecs[idx]) {
			t.Errorf("home %d's record differs across worker counts", idx)
		}
	}
}

// TestChaosFailureBudgetPartial pins graceful degradation on the
// failure budget: one quarantine past MaxFailedHomes ends the run with
// a partial Result covering the committed prefix — identically at any
// worker count.
func TestChaosFailureBudgetPartial(t *testing.T) {
	spec := "home.panic@1,times=-1;home.panic@3,times=-1;home.panic@5,times=-1"
	var first []byte
	for _, workers := range []int{1, 8} {
		cfg := testConfig(12, workers)
		cfg.Policy = FailurePolicy{Skip: true}
		cfg.MaxFailedHomes = 2
		res, err := RunWith(context.Background(), cfg, Hooks{
			Faults: mustFaults(t, cfg, spec),
		})
		if err != nil {
			t.Fatalf("workers=%d: budget stop returned error %v, want partial result", workers, err)
		}
		if !res.Partial || res.PartialReason != PartialFailureBudget {
			t.Fatalf("workers=%d: partial=%v reason=%q, want partial failure_budget",
				workers, res.Partial, res.PartialReason)
		}
		if res.CommittedHomes != 6 {
			t.Errorf("workers=%d: committed %d homes, want 6 (prefix through the tripping home 5)",
				workers, res.CommittedHomes)
		}
		if len(res.Errors) != 3 {
			t.Errorf("workers=%d: %d errors, want 3", workers, len(res.Errors))
		}
		got := summaryJSON(t, res)
		if first == nil {
			first = got
		} else if !bytes.Equal(first, got) {
			t.Error("partial summary differs across worker counts")
		}
	}
}

// TestChaosDeadlinePartialThenResume pins graceful degradation on the
// wall-clock budget: an expired deadline yields a partial Result (nil
// error) plus a final checkpoint, and resuming the checkpoint without
// the budget completes bit-identically to a fault-free run. The armed
// slow-home faults are what make the deadline bite deterministically
// enough to leave a strict prefix.
func TestChaosDeadlinePartialThenResume(t *testing.T) {
	cfg := testConfig(12, 2)
	want := faultFreeSummary(t, cfg)

	run := cfg
	run.Deadline = 150 * time.Millisecond
	ck := &Checkpoint{Path: filepath.Join(t.TempDir(), "run.ckpt"), Every: 1}
	res, err := RunWith(context.Background(), run, Hooks{
		Checkpoint: ck,
		Faults:     mustFaults(t, run, "home.slow@every=1,delay=60ms,times=-1"),
	})
	if err != nil {
		t.Fatalf("deadline run returned error %v, want partial result", err)
	}
	if !res.Partial || res.PartialReason != PartialDeadline {
		t.Fatalf("partial=%v reason=%q, want partial deadline", res.Partial, res.PartialReason)
	}
	if res.CommittedHomes >= cfg.Homes {
		t.Fatalf("deadline run committed all %d homes; the budget never bit", res.CommittedHomes)
	}
	// The caller's own cancellation must still be an error, not a
	// partial: certify the two are distinguishable.
	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunWith(pre, run, Hooks{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled deadline run returned %v, want context.Canceled", err)
	}
	// Resume the committed prefix without the budget or faults.
	resumed, err := RunWith(context.Background(), cfg, Hooks{Checkpoint: ck})
	if err != nil {
		t.Fatalf("resuming partial checkpoint: %v", err)
	}
	if got := summaryJSON(t, resumed); !bytes.Equal(got, want) {
		t.Error("resumed partial run's summary differs from fault-free run")
	}
}

// stopAfter returns hooks that stop the run via the Home hook once the
// given home index commits.
func stopAfter(idx int, h Hooks) Hooks {
	h.Home = func(r HomeRecord) bool { return r.Index != idx }
	return h
}

// TestChaosCorruptLatestFallsBackToPrev is the acceptance criterion's
// durability leg: a bit-rotted latest checkpoint generation is caught
// by the envelope checksum and the resume falls back to ".prev",
// completing bit-identically.
func TestChaosCorruptLatestFallsBackToPrev(t *testing.T) {
	for _, spec := range []string{"checkpoint.corrupt@2", "checkpoint.short-write@2"} {
		cfg := testConfig(12, 2)
		want := faultFreeSummary(t, cfg)
		ck := &Checkpoint{Path: filepath.Join(t.TempDir(), "run.ckpt"), Every: 2}
		// Writes land at committed 2 (gen 0), 4 (gen 1), then the hook
		// stop writes gen 2 at committed 6 — the faulted generation.
		_, err := RunWith(context.Background(), cfg, stopAfter(5, Hooks{
			Checkpoint: ck,
			Faults:     mustFaults(t, cfg, spec),
		}))
		if !errors.Is(err, ErrStopped) {
			t.Fatalf("%s: stop run returned %v, want ErrStopped", spec, err)
		}
		if _, err := os.Stat(ck.prevPath()); err != nil {
			t.Fatalf("%s: no .prev generation after rotation: %v", spec, err)
		}
		tel := telemetry.NewRun()
		resumed, err := RunWith(context.Background(), cfg, Hooks{Checkpoint: ck, Telemetry: tel})
		if err != nil {
			t.Fatalf("%s: resume: %v", spec, err)
		}
		if got := summaryJSON(t, resumed); !bytes.Equal(got, want) {
			t.Errorf("%s: resumed summary differs from fault-free run", spec)
		}
		if n := tel.Snapshot().Counters[telemetry.CounterCheckpointFallbacks]; n != 1 {
			t.Errorf("%s: fallback counter = %d, want 1 (resume must have used .prev)", spec, n)
		}
	}
}

// TestChaosRenameFailCleansTmp is the tmp-leak satellite: a failed
// checkpoint rename aborts the run with an error, leaves no ".tmp"
// litter, and keeps a good generation on disk for the resume.
func TestChaosRenameFailCleansTmp(t *testing.T) {
	cfg := testConfig(12, 2)
	want := faultFreeSummary(t, cfg)
	ck := &Checkpoint{Path: filepath.Join(t.TempDir(), "run.ckpt"), Every: 2}
	_, err := RunWith(context.Background(), cfg, Hooks{
		Checkpoint: ck,
		Faults:     mustFaults(t, cfg, "checkpoint.rename-fail@1"),
	})
	if err == nil || !strings.Contains(err.Error(), "injected rename failure") {
		t.Fatalf("rename-fail run returned %v, want the injected rename failure", err)
	}
	if _, serr := os.Stat(ck.Path + ".tmp"); !os.IsNotExist(serr) {
		t.Fatalf("failed rename leaked %s.tmp (stat: %v)", ck.Path, serr)
	}
	// Gen 0 rotated to .prev before the failed rename; the resume reads
	// it and completes bit-identically.
	resumed, err := RunWith(context.Background(), cfg, Hooks{Checkpoint: ck})
	if err != nil {
		t.Fatalf("resume after rename failure: %v", err)
	}
	if got := summaryJSON(t, resumed); !bytes.Equal(got, want) {
		t.Error("resumed summary differs from fault-free run")
	}
}

// TestChaosQuarantineSurvivesResume pins the Errors section's
// resume-invariance: quarantined homes recorded before a stop are
// restored from the checkpoint, so the final report is identical to an
// uninterrupted quarantined run.
func TestChaosQuarantineSurvivesResume(t *testing.T) {
	spec := "home.panic@2,times=-1"
	mk := func() (Config, Hooks) {
		cfg := testConfig(12, 2)
		cfg.Policy = FailurePolicy{Skip: true}
		return cfg, Hooks{Faults: mustFaults(t, cfg, spec)}
	}
	cfg, h := mk()
	uninterrupted, err := RunWith(context.Background(), cfg, h)
	if err != nil {
		t.Fatal(err)
	}
	want := summaryJSON(t, uninterrupted)

	cfg, h = mk()
	ck := &Checkpoint{Path: filepath.Join(t.TempDir(), "run.ckpt"), Every: 2}
	h.Checkpoint = ck
	if _, err := RunWith(context.Background(), cfg, stopAfter(6, h)); !errors.Is(err, ErrStopped) {
		t.Fatalf("stop run returned %v, want ErrStopped", err)
	}
	// Home 2's quarantine is inside the committed prefix: the resume
	// restores it from the checkpoint without re-running the home.
	cfg, _ = mk()
	resumed, err := RunWith(context.Background(), cfg, Hooks{Checkpoint: ck})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if len(resumed.Errors) != 1 || resumed.Errors[0].Index != 2 {
		t.Fatalf("resumed Errors = %+v, want home 2's quarantine restored", resumed.Errors)
	}
	if got := summaryJSON(t, resumed); !bytes.Equal(got, want) {
		t.Error("resumed quarantined run's summary differs from the uninterrupted one")
	}
}
