package fleet

import (
	"sync"

	"repro/internal/deploy"
	"repro/internal/phy"
)

// Run executes the fleet simulation: cfg.Homes independent single-home
// deployments sharded across cfg.Workers workers, streamed into the
// mergeable aggregates of Result. Each home runs its own isolated
// discrete-event kernel (the kernel itself is deliberately single-
// threaded; the fleet layer is where the parallelism lives).
//
// The output is bit-for-bit identical for any worker count: pooled
// per-bin aggregates merge exactly in any order, and per-home scalar
// summaries pass through a reorder buffer so the order-sensitive
// Welford reductions always happen in home-index order.
func Run(cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	res := newResult(cfg)

	type msg struct {
		idx int
		hs  homeStats
	}
	jobs := make(chan int)
	out := make(chan msg, cfg.Workers)
	partials := make([]*partial, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		p := newPartial()
		partials[w] = p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				out <- msg{idx, runHome(cfg, idx, p)}
			}
		}()
	}
	go func() {
		for i := 0; i < cfg.Homes; i++ {
			jobs <- i
		}
		close(jobs)
	}()
	go func() {
		wg.Wait()
		close(out)
	}()

	// Ordered streaming reduce: fold each home's summary in index order.
	// Out-of-order completions park in a buffer whose size stays near
	// the worker count because homes have comparable cost.
	pending := make(map[int]homeStats, cfg.Workers)
	next := 0
	for m := range out {
		pending[m.idx] = m.hs
		for {
			hs, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			res.addHome(hs)
			next++
		}
	}
	// Pooled per-bin aggregates merge exactly regardless of how homes
	// were grouped onto workers; worker order is fixed only for clarity.
	for _, p := range partials {
		res.mergePartial(p)
	}
	return res, nil
}

// runHome simulates one synthesized home, streaming its bins into the
// worker's pooled partial and returning the home's scalar summary.
func runHome(cfg Config, idx int, p *partial) homeStats {
	h := SynthesizeHome(cfg, idx)
	opts := deploy.Options{
		BinWidth:         cfg.BinWidth,
		Window:           cfg.Window,
		Hours:            cfg.Hours,
		SensorDistanceFt: h.SensorFt,
		Exact:            cfg.Exact,
	}
	var (
		nBins                       int
		sumCum, sumHarvest, sumRate float64
		sumCh                       [3]float64
	)
	deploy.RunStream(h.HomeConfig, opts, func(s deploy.BinSample) {
		nBins++
		sumCum += s.CumulativePct
		for i, chNum := range phy.PoWiFiChannels {
			sumCh[i] += s.Occupancy[chNum] * 100
		}
		// A silent bin banks nothing (Evaluate reports 0 when the chain
		// cannot boot); clamp the below-sensitivity negative case so the
		// harvest distribution stays consistent with the silent-bin
		// statistics for marginal placements.
		uw := s.NetHarvestedW * 1e6
		if uw < 0 || s.SensorRate <= 0 {
			uw = 0
		}
		sumHarvest += uw
		sumRate += s.SensorRate

		p.totalBins++
		p.binOcc.Add(s.CumulativePct)
		p.harvest.Add(uw)
		if s.SensorRate > 0 {
			p.latency.Add(1 / s.SensorRate)
		} else {
			p.silentBins++
		}
	})
	if nBins == 0 {
		return homeStats{}
	}
	n := float64(nBins)
	hs := homeStats{
		meanCumPct:    sumCum / n,
		meanHarvestUW: sumHarvest / n,
		meanRate:      sumRate / n,
	}
	for i := range sumCh {
		hs.meanChPct[i] = sumCh[i] / n
	}
	return hs
}
