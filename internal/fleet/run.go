package fleet

import (
	"sync"

	"repro/internal/deploy"
	"repro/internal/lifecycle"
	"repro/internal/xrand"
)

// samplerPool recycles pooled sampling contexts across fleet runs. A
// Sampler fully re-derives its state from (seed, labels) on every bin,
// so reuse across runs is as output-invisible as reuse across homes.
var samplerPool = sync.Pool{New: func() any { return deploy.NewSampler() }}

// worker is one shard's pooled per-worker state: the sampling context,
// the synthesis RNG, the pooled partial aggregates, and — in lifecycle
// mode — one pooled device per archetype, built lazily and reused
// across every home the worker runs (Device.Begin re-derives all run
// state, so pooling is output-invisible; the lifecycle parity suite
// pins this).
type worker struct {
	cfg      Config
	smp      *deploy.Sampler
	synthRng *xrand.Rand
	p        *partial
	devs     [lifecycle.NumKinds]*lifecycle.Device
}

func newWorker(cfg Config, p *partial) *worker {
	return &worker{
		cfg:      cfg,
		smp:      samplerPool.Get().(*deploy.Sampler),
		synthRng: xrand.New(0),
		p:        p,
	}
}

func (w *worker) release() { samplerPool.Put(w.smp) }

// device returns the worker's pooled device of the given archetype,
// its OnBin hook bound once to the worker's pooled partial.
func (w *worker) device(k lifecycle.Kind) *lifecycle.Device {
	if w.devs[k] == nil {
		d := lifecycle.NewDevice(k, lifecycle.Policy{})
		d.Exact = w.cfg.Exact
		ap := &w.p.arch[k]
		d.OnBin = ap.add
		w.devs[k] = d
	}
	return w.devs[k]
}

// Run executes the fleet simulation: cfg.Homes independent single-home
// deployments sharded across cfg.Workers workers, streamed into the
// mergeable aggregates of Result. Each home runs its own isolated
// discrete-event kernel (the kernel itself is deliberately single-
// threaded; the fleet layer is where the parallelism lives).
//
// The output is bit-for-bit identical for any worker count: pooled
// per-bin aggregates merge exactly in any order, and per-home scalar
// summaries pass through a reorder buffer so the order-sensitive
// Welford reductions always happen in home-index order. The device-
// lifecycle engine (enabled by a population device mix) follows the
// same discipline: per-bin lifecycle observations land in exactly
// mergeable sketches, per-home time-domain scalars ride the reorder
// buffer.
func Run(cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	res := newResult(cfg)

	// Serial fast path: with one worker there is no sharding to
	// coordinate, and the channel/goroutine handoffs per home are pure
	// overhead (meaningful on single-core hosts). The reduce order is
	// trivially home-index order, and the pooled per-bin aggregates can
	// fold straight into the result's sketches — integer-count adds are
	// exactly what a worker-sketch-then-merge computes — so the output
	// is identical to the sharded path by construction.
	if cfg.Workers == 1 {
		p := &partial{binOcc: res.BinOcc, harvest: res.Harvest, latency: res.Latency}
		if cfg.Population.Lifecycle() {
			p.arch = newArchPartials()
		}
		w := newWorker(cfg, p)
		for i := 0; i < cfg.Homes; i++ {
			res.addHome(w.runHome(i))
		}
		w.release()
		res.SilentBins += p.silentBins
		res.TotalBins += p.totalBins
		if p.arch != nil {
			for i := range p.arch {
				res.Arch[i].mergePooled(&p.arch[i])
			}
		}
		return res, nil
	}

	type msg struct {
		idx int
		hs  homeStats
	}
	jobs := make(chan int)
	out := make(chan msg, cfg.Workers)
	partials := make([]*partial, cfg.Workers)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Workers; i++ {
		p := newPartial(cfg)
		partials[i] = p
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One pooled sampling context per worker: scheduler, channels,
			// router, monitors and traffic sources are built once and reset
			// per bin, so the steady-state hot path stops paying allocator
			// and GC tax. Pooling is output-invisible (see deploy.Sampler).
			w := newWorker(cfg, p)
			for idx := range jobs {
				out <- msg{idx, w.runHome(idx)}
			}
			w.release()
		}()
	}
	go func() {
		for i := 0; i < cfg.Homes; i++ {
			jobs <- i
		}
		close(jobs)
	}()
	go func() {
		wg.Wait()
		close(out)
	}()

	// Ordered streaming reduce: fold each home's summary in index order.
	// Out-of-order completions park in a buffer whose size stays near
	// the worker count because homes have comparable cost.
	pending := make(map[int]homeStats, cfg.Workers)
	next := 0
	for m := range out {
		pending[m.idx] = m.hs
		for {
			hs, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			res.addHome(hs)
			next++
		}
	}
	// Pooled per-bin aggregates merge exactly regardless of how homes
	// were grouped onto workers; worker order is fixed only for clarity.
	for _, p := range partials {
		res.mergePartial(p)
	}
	return res, nil
}

// runHome simulates one synthesized home on the worker's pooled
// sampler, streaming its bins into the worker's pooled partial (and,
// in lifecycle mode, through the home's pooled lifecycle device) and
// returning the home's scalar summary.
func (w *worker) runHome(idx int) homeStats {
	cfg := w.cfg
	h := synthesizeHome(w.synthRng, cfg, idx)
	var dev *lifecycle.Device
	if cfg.Population.Lifecycle() {
		dev = w.device(synthesizeDevice(w.synthRng, cfg, idx))
		dev.Begin(h.SensorFt, cfg.BinWidth)
	}
	opts := deploy.Options{
		BinWidth:         cfg.BinWidth,
		Window:           cfg.Window,
		Hours:            cfg.Hours,
		SensorDistanceFt: h.SensorFt,
		Exact:            cfg.Exact,
	}
	var (
		nBins                       int
		sumCum, sumHarvest, sumRate float64
		sumCh                       [3]float64
	)
	p := w.p
	w.smp.RunStream(h.HomeConfig, opts, func(s deploy.BinSample) {
		nBins++
		sumCum += s.CumulativePct
		for i := range sumCh {
			sumCh[i] += s.Occupancy[i] * 100
		}
		// A silent bin banks nothing (Evaluate reports 0 when the chain
		// cannot boot); clamp the below-sensitivity negative case so the
		// harvest distribution stays consistent with the silent-bin
		// statistics for marginal placements.
		uw := s.NetHarvestedW * 1e6
		if uw < 0 || s.SensorRate <= 0 {
			uw = 0
		}
		sumHarvest += uw
		sumRate += s.SensorRate

		p.totalBins++
		p.binOcc.Add(s.CumulativePct)
		p.harvest.Add(uw)
		if s.SensorRate > 0 {
			p.latency.Add(1 / s.SensorRate)
		} else {
			p.silentBins++
		}
		if dev != nil {
			dev.VisitBin(s)
		}
	})
	if nBins == 0 {
		return homeStats{}
	}
	n := float64(nBins)
	hs := homeStats{
		meanCumPct:    sumCum / n,
		meanHarvestUW: sumHarvest / n,
		meanRate:      sumRate / n,
	}
	for i := range sumCh {
		hs.meanChPct[i] = sumCh[i] / n
	}
	if dev != nil {
		m := dev.Metrics()
		hs.hasLife = true
		hs.life = lifeHomeStats{
			kind:        m.Kind,
			ttfuS:       m.FirstUpdateS,
			outageFrac:  m.OutageFraction(),
			updates:     m.Updates,
			frames:      float64(m.Frames),
			chargeTimeS: m.TimeToFullS,
			finalSoC:    m.FinalSoC,
			minSoC:      m.MinSoC,
		}
	}
	return hs
}
