package fleet

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"

	"repro/internal/deploy"
	"repro/internal/faultinject"
	"repro/internal/harvester"
	"repro/internal/lifecycle"
	"repro/internal/surface"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// samplerPool recycles pooled sampling contexts across fleet runs. A
// Sampler fully re-derives its state from (seed, labels) on every bin,
// so reuse across runs is as output-invisible as reuse across homes.
// No New hook: acquireSampler constructs on empty so pool reuse is an
// observable telemetry diagnostic.
var samplerPool sync.Pool

// acquireSampler takes a pooled sampling context, or builds one when
// the pool is empty, counting either way into the run's scheduling
// diagnostics (nil-safe when telemetry is off).
func acquireSampler(probe *telemetry.Probe) *deploy.Sampler {
	if v := samplerPool.Get(); v != nil {
		probe.Sampler().PoolHit()
		return v.(*deploy.Sampler)
	}
	probe.Sampler().PoolMiss()
	return deploy.NewSampler()
}

// ErrStopped is returned by RunWith when the Home hook ends the run
// early by returning false. It marks a caller-requested stop — the
// streaming consumer broke out of its loop — as opposed to a context
// cancellation, which surfaces as ctx.Err().
var ErrStopped = errors.New("fleet: run stopped by home hook")

// Hooks carries the optional streaming callbacks of RunWith. Both
// hooks observe homes in home-index order regardless of worker count,
// so a streaming consumer sees the exact same sequence at any
// parallelism. Hooks are invoked on the reducing goroutine (the one
// that called RunWith), never concurrently.
type Hooks struct {
	// Progress, if non-nil, is called once per completed home with the
	// number folded so far and the total: (1, n), (2, n), ... (n, n).
	Progress func(done, total int)
	// Home, if non-nil, receives each home's summary record in
	// home-index order. Returning false stops the run: workers drain
	// and exit, and RunWith returns ErrStopped with a nil Result.
	Home func(HomeRecord) bool
	// Telemetry, if non-nil, collects the run's metrics, phase spans
	// and manifest (internal/telemetry). Collection is strictly out of
	// band — no RNG draws, no event-order changes — so the Result is
	// byte-identical with or without it, and its work-counter totals
	// are bit-for-bit identical at any worker count.
	Telemetry *telemetry.Run
	// Checkpoint, if non-nil, enables checkpoint/resume for the run:
	// the reducer's committed home prefix is periodically serialized to
	// Checkpoint.Path, an existing checkpoint of the same configuration
	// is resumed from, and the resumed output is bit-identical to an
	// uninterrupted run at any worker count. See Checkpoint.
	Checkpoint *Checkpoint
	// Faults, if non-nil, arms the deterministic failure-injection
	// registry (internal/faultinject) for this run: home panics and
	// stalls fire keyed by home index, checkpoint write faults keyed by
	// the session's write generation. Reserved for tests and chaos
	// certification; production runs leave it nil (one branch, zero
	// overhead).
	Faults *faultinject.Set
	// Trace, if non-nil, records the run's span tree and per-home
	// flight recorders (internal/trace). Tracing follows Telemetry's
	// out-of-band contract exactly: no RNG draws, no event-order
	// changes, Result byte-identical with or without it, and the
	// summary's deterministic section (event counts, retained rings,
	// escalation reasons) bit-for-bit identical at any worker count
	// because homes commit through the same reorder buffer as every
	// other per-home aggregate.
	Trace *trace.Recorder
}

// worker is one shard's pooled per-worker state: the sampling context,
// the synthesis RNG, the pooled partial aggregates, and — in lifecycle
// mode — one pooled device per archetype, built lazily and reused
// across every home the worker runs (Device.Begin re-derives all run
// state, so pooling is output-invisible; the lifecycle parity suite
// pins this).
type worker struct {
	cfg      Config
	smp      *deploy.Sampler
	synthRng *xrand.Rand
	p        *partial
	probe    *telemetry.Probe
	fi       *faultinject.Set
	tr       *trace.Worker
	devs     [lifecycle.NumKinds]*lifecycle.Device
	// batch is the worker's reusable struct-of-arrays bin buffer; the
	// batched kernel refills it per home without reallocating.
	batch deploy.BinBatch
	// curHT is the in-flight attempt's flight recorder, stashed on the
	// worker so runHome can reach it across attemptHome's panic/recover
	// boundary. lastKernelNS/lastStallNS are the last attempt's kernel
	// and injected-stall wall times, measured whenever telemetry or
	// tracing observes the run (zero otherwise).
	curHT        *trace.HomeTrace
	lastKernelNS int64
	lastStallNS  int64
}

func newWorker(cfg Config, p *partial, probe *telemetry.Probe, fi *faultinject.Set, rec *trace.Recorder) *worker {
	w := &worker{
		cfg:      cfg,
		smp:      acquireSampler(probe),
		synthRng: xrand.New(0),
		p:        p,
		probe:    probe,
		fi:       fi,
		tr:       rec.NewWorker(),
	}
	// Attach (or, with telemetry off, explicitly detach) the counters on
	// every acquisition, so a pooled sampler can never count into a
	// previous run's metrics.
	w.smp.Instrument(probe.Sampler(), probe.Surface())
	w.smp.TraceHome(nil)
	return w
}

// refresh replaces the worker's sampling context after a panicking
// attempt: the pooled context may hold arbitrary mid-bin state, so it
// is dropped on the floor (never returned to the pool) and a fresh one
// is built for the retry. A Sampler re-derives everything from
// (seed, labels) per bin, so the retry's output is identical to what a
// first-attempt success would have produced.
func (w *worker) refresh() {
	w.smp.Instrument(nil, nil)
	w.smp.TraceHome(nil)
	w.smp = deploy.NewSampler()
	w.smp.Instrument(w.probe.Sampler(), w.probe.Surface())
}

func (w *worker) release() {
	w.smp.Instrument(nil, nil)
	w.smp.TraceHome(nil)
	samplerPool.Put(w.smp)
	// Fold this worker's sketch shard into the run exactly; the error is
	// impossible because every shard shares NewProbe's configuration.
	_ = w.probe.Close()
}

// device returns the worker's pooled device of the given archetype,
// its OnBin hook bound once to the worker's pooled partial.
func (w *worker) device(k lifecycle.Kind) *lifecycle.Device {
	if w.devs[k] == nil {
		d := lifecycle.NewDevice(k, lifecycle.Policy{})
		d.Exact = w.cfg.Exact
		d.Tele = w.probe.Lifecycle()
		d.SurfTele = w.probe.Surface()
		ap := &w.p.arch[k]
		d.OnBin = ap.add
		w.devs[k] = d
	}
	return w.devs[k]
}

// Run executes the fleet simulation: cfg.Homes independent single-home
// deployments sharded across cfg.Workers workers, streamed into the
// mergeable aggregates of Result. Each home runs its own isolated
// discrete-event kernel (the kernel itself is deliberately single-
// threaded; the fleet layer is where the parallelism lives).
//
// Cancelling ctx stops the run promptly: every worker checks its
// context once per logging bin (never more than one bin's worth of
// work after the cancel), drains, and exits; Run then returns ctx.Err()
// with a nil Result. Partial results are discarded, never silently
// truncated — a Result always describes the full configured fleet.
//
// The output is bit-for-bit identical for any worker count: pooled
// per-bin aggregates merge exactly in any order, and per-home scalar
// summaries pass through a reorder buffer so the order-sensitive
// Welford reductions always happen in home-index order. The device-
// lifecycle engine (enabled by a population device mix) follows the
// same discipline: per-bin lifecycle observations land in exactly
// mergeable sketches, per-home time-domain scalars ride the reorder
// buffer.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	return RunWith(ctx, cfg, Hooks{})
}

// RunWith is Run with streaming hooks: per-home records and progress
// callbacks delivered in home-index order at any worker count. See
// Hooks for the contract.
func RunWith(ctx context.Context, cfg Config, h Hooks) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t := h.Telemetry
	// span opens the named phase in both observers (telemetry and the
	// trace recorder share phase names); either may be nil.
	span := func(name string) func() {
		endT, endR := t.Span(name), h.Trace.Span(name)
		return func() { endT(); endR() }
	}

	// Degradation deadline: a child context bounds the run's wall
	// clock. outer stays distinct so caller cancellation (an error)
	// remains distinguishable from budget expiry (a partial result).
	outer := ctx
	if cfg.Deadline > 0 {
		var cancelDeadline context.CancelFunc
		ctx, cancelDeadline = context.WithTimeout(ctx, cfg.Deadline)
		defer cancelDeadline()
	}

	// Checkpoint/resume setup: restore the reducer's committed prefix
	// from the latest intact checkpoint generation (homes [0, start)
	// are already folded into the returned result) and derive the
	// periodic write cadence.
	ck := h.Checkpoint
	var ckw *ckWriter
	var res *Result
	start := 0
	ckEvery := defaultCheckpointEvery
	if ck != nil {
		if ck.Path == "" {
			return nil, errors.New("fleet: Checkpoint requires a non-empty Path")
		}
		if cfg.Population.Lifecycle() {
			return nil, errors.New("fleet: checkpointing cannot run a device-lifecycle population (the workers' pooled ledgers are not part of the committed home prefix)")
		}
		if ck.Every > 0 {
			ckEvery = ck.Every
		}
		var err error
		if start, res, err = loadCheckpoint(ck, cfg, t); err != nil {
			return nil, err
		}
		ckw = &ckWriter{ck: ck, cfg: cfg, fi: h.Faults, t: t}
	} else {
		res = newResult(cfg)
	}
	// saveOnAbort writes the committed prefix when the run stops early;
	// with checkpointing off it is a no-op.
	saveOnAbort := func(next int) error {
		if ckw == nil {
			return nil
		}
		return ckw.write(res, next)
	}

	// Telemetry setup. When enabled, the operating-point surfaces the
	// run will query are built up front under their own span — the build
	// is deterministic and process-cached, so warming changes no output,
	// but it keeps the one-time cost out of the simulate span.
	runStart := time.Now() //powifi:walltime-ok telemetry manifest wall time, out of band of the simulation
	var memStart runtime.MemStats
	if t != nil {
		runtime.ReadMemStats(&memStart)
		if !cfg.Exact && surface.Enabled() {
			endWarm := span(telemetry.SpanSurfaceWarmup)
			surface.For(harvester.NewBatteryFree())
			if cfg.Population.Lifecycle() {
				surface.For(harvester.NewBatteryCharging())
			}
			endWarm()
		}
	}
	homesC := t.Counter(telemetry.CounterHomes)
	failC := t.FailureCounters()

	// finish stamps the run manifest and throughput gauges once the
	// result is complete; done is the number of homes simulated this
	// session (a resumed or partial run covers only its own tail).
	finish := func(done int) {
		if t == nil {
			return
		}
		elapsed := time.Since(runStart).Seconds() //powifi:walltime-ok throughput gauge only; never feeds an aggregate
		hashCfg := cfg
		hashCfg.Workers = 0 // invariant across parallelism by contract
		m := telemetry.Manifest{
			Seed:       cfg.Seed,
			ConfigHash: telemetry.HashConfig(hashCfg),
			Workers:    cfg.Workers,
			ElapsedS:   elapsed,
		}
		if elapsed > 0 {
			m.HomesPerSec = float64(done) / elapsed
			t.Gauge(telemetry.GaugeBinsPerSec).Set(float64(res.TotalBins) / elapsed)
		}
		t.SetManifest(m)
		var memEnd runtime.MemStats
		runtime.ReadMemStats(&memEnd)
		if res.TotalBins > 0 {
			t.Gauge(telemetry.GaugeAllocsPerBin).Set(
				float64(memEnd.Mallocs-memStart.Mallocs) / float64(res.TotalBins))
		}
	}

	// deliver folds one home into the result and feeds the hooks; it
	// reports whether the run should continue. With checkpointing on,
	// the committed prefix is written every ckEvery homes and on a Home
	// hook stop, always after the fold — the checkpoint describes
	// exactly the homes the reducer has committed. Exhausted homes
	// (hs.fail) arrive through the same reorder buffer, so the failure
	// policy applies at a deterministic, workers-invariant point of the
	// reduce order.
	deliver := func(hs homeStats) (bool, error) {
		if hs.fail != nil {
			if cfg.Policy.failFast() {
				// Checkpoint the prefix *below* the failed home so a
				// resume re-attempts exactly it.
				err := error(hs.fail)
				if werr := saveOnAbort(hs.idx); werr != nil {
					err = errors.Join(err, werr)
				}
				return false, err
			}
			// Quarantine: the committed prefix advances past the home;
			// it contributes to no aggregate and the Home hook never
			// sees it. The structured error lands in Result.Errors (and
			// in the checkpoint, so a resumed report is identical).
			// The quarantine decision is recorded here, at the
			// reducer's deterministic commit point, before the home's
			// flight recorder folds into the trace.
			hs.tr.Quarantine()
			if hs.tr != nil {
				// Re-snapshot the dump so the error's forensics include
				// the quarantine decision itself.
				hs.fail.Trace = hs.tr.Dump()
			}
			h.Trace.CommitHome(hs.tr, true)
			res.Errors = append(res.Errors, *hs.fail)
			failC.Quarantined()
			if cfg.MaxFailedHomes > 0 && len(res.Errors) > cfg.MaxFailedHomes {
				return false, &partialStop{reason: PartialFailureBudget, committed: hs.idx + 1}
			}
		} else {
			h.Trace.CommitHome(hs.tr, false)
			res.addHome(hs)
			homesC.Inc()
			if h.Home != nil && !h.Home(hs.record()) {
				err := ErrStopped
				if werr := saveOnAbort(hs.idx + 1); werr != nil {
					err = errors.Join(err, werr)
				}
				return false, err
			}
		}
		committed := hs.idx + 1
		if ckw != nil && committed < cfg.Homes && (committed-start)%ckEvery == 0 {
			if err := ckw.write(res, committed); err != nil {
				return false, err
			}
		}
		if h.Progress != nil {
			h.Progress(committed, cfg.Homes)
		}
		return true, nil
	}

	// finishPartial ends the run on a tripped degradation budget:
	// budgets are contracts, not failures, so the caller gets the
	// committed prefix as a Result marked Partial — plus a final,
	// resumable checkpoint — instead of an error.
	finishPartial := func(reason string, committed int, parts []*partial) (*Result, error) {
		res.Partial = true
		res.PartialReason = reason
		res.CommittedHomes = committed
		if ckw != nil {
			if err := ckw.write(res, committed); err != nil {
				return nil, err
			}
		}
		endReduce := span(telemetry.SpanReduce)
		for _, p := range parts {
			res.mergePartial(p)
		}
		endReduce()
		finish(committed - start)
		return res, nil
	}

	// Serial fast path: with one worker there is no sharding to
	// coordinate, and the channel/goroutine handoffs per home are pure
	// overhead (meaningful on single-core hosts). The reduce order is
	// trivially home-index order and deliver folds each home straight
	// into the result, so the output is identical to the sharded path by
	// construction.
	if cfg.Workers == 1 {
		p := newPartial(cfg)
		endSim := span(telemetry.SpanSimulate)
		w := newWorker(cfg, p, t.NewProbe(), h.Faults, h.Trace)
		for i := start; i < cfg.Homes; i++ {
			hs, ok := w.runHome(ctx, i)
			if !ok {
				w.release()
				endSim()
				if outer.Err() == nil && ctx.Err() != nil {
					// The run's own deadline expired, not the caller's
					// context: the committed prefix is the deliverable.
					return finishPartial(PartialDeadline, i, []*partial{p})
				}
				err := ctx.Err()
				if werr := saveOnAbort(i); werr != nil {
					err = errors.Join(err, werr)
				}
				return nil, err
			}
			if cont, err := deliver(hs); !cont {
				w.release()
				endSim()
				if ps, budget := err.(*partialStop); budget {
					return finishPartial(ps.reason, ps.committed, []*partial{p})
				}
				return nil, err
			}
		}
		w.release()
		endSim()
		endReduce := span(telemetry.SpanReduce)
		res.mergePartial(p)
		endReduce()
		finish(cfg.Homes - start)
		if ckw != nil {
			ckw.remove() // a completed run needs no resume point
		}
		return res, nil
	}

	// The sharded path runs under a derived context so a Home hook
	// stop can wind the workers down the same way a cancellation does.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	jobs := make(chan int)
	out := make(chan homeStats, cfg.Workers)
	partials := make([]*partial, cfg.Workers)
	endSim := span(telemetry.SpanSimulate)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Workers; i++ {
		p := newPartial(cfg)
		partials[i] = p
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One pooled sampling context per worker: scheduler, channels,
			// router, monitors and traffic sources are built once and reset
			// per bin, so the steady-state hot path stops paying allocator
			// and GC tax. Pooling is output-invisible (see deploy.Sampler).
			w := newWorker(cfg, p, t.NewProbe(), h.Faults, h.Trace)
			defer w.release()
			for idx := range jobs {
				hs, ok := w.runHome(ctx, idx)
				if !ok {
					return // cancelled mid-home; partial home discarded
				}
				select {
				case out <- hs:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		defer close(jobs)
		for i := start; i < cfg.Homes; i++ {
			select {
			case jobs <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(out)
	}()

	// Ordered streaming reduce: fold each home's summary in index order.
	// Out-of-order completions park in a buffer whose size stays near
	// the worker count because homes have comparable cost.
	pending := make(map[int]homeStats, cfg.Workers)
	next := start
	var stopErr error
	for m := range out {
		if stopErr != nil || ctx.Err() != nil {
			continue // draining after a hook stop or cancellation
		}
		pending[m.idx] = m
		for {
			hs, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if cont, err := deliver(hs); !cont {
				stopErr = err
				cancel() // wind the workers down; keep draining out
				break
			}
		}
	}
	endSim()
	if ps, budget := stopErr.(*partialStop); budget {
		return finishPartial(ps.reason, ps.committed, partials)
	}
	if stopErr != nil {
		return nil, stopErr // deliver already wrote the stop checkpoint
	}
	if err := ctx.Err(); err != nil {
		if outer.Err() == nil && cfg.Deadline > 0 {
			// The run's own deadline expired, not the caller's context.
			// The reorder buffer's parked homes beyond `next` are
			// discarded: a partial result, like a checkpoint, must
			// describe a contiguous committed prefix.
			return finishPartial(PartialDeadline, next, partials)
		}
		if werr := saveOnAbort(next); werr != nil {
			err = errors.Join(err, werr)
		}
		return nil, err
	}
	// Pooled per-bin lifecycle aggregates merge exactly regardless of
	// how homes were grouped onto workers; worker order is fixed only
	// for clarity.
	endReduce := span(telemetry.SpanReduce)
	for _, p := range partials {
		res.mergePartial(p)
	}
	endReduce()
	finish(cfg.Homes - start)
	if ckw != nil {
		ckw.remove() // a completed run needs no resume point
	}
	return res, nil
}

// runHome runs one home under the worker's supervisor: a panicking
// attempt is recovered into a structured HomeError, the failure
// policy's retries re-run the home on a fresh (never pooled back)
// sampler, and a home whose attempts are exhausted rides the reorder
// buffer as a failed homeStats so the reducer applies the policy at a
// deterministic, workers-invariant point. ok == false only means
// context cancellation.
func (w *worker) runHome(ctx context.Context, idx int) (homeStats, bool) {
	timed := w.probe != nil || w.tr != nil
	for attempt := 1; ; attempt++ {
		var t0 time.Time
		if timed {
			t0 = time.Now() //powifi:walltime-ok per-home flight-recorder timing, out of band
		}
		hs, ok, ferr := w.attemptHome(ctx, idx, attempt)
		ht := w.curHT
		w.curHT = nil
		if ferr == nil {
			if !ok {
				return hs, false
			}
			hs.tr = ht
			w.tr.EndHome(ht)
			if timed {
				wallNS := time.Since(t0).Nanoseconds() //powifi:walltime-ok probe observation only; never feeds an aggregate
				w.probe.ObserveHomeWall(idx, "fleet/home/"+strconv.Itoa(idx),
					float64(wallNS)/1e6, dominantSpan(wallNS, w.lastKernelNS, w.lastStallNS))
			}
			return hs, true
		}
		ferr.Attempts = attempt
		if attempt > w.cfg.Policy.Retry {
			// Exhausted: the last attempt's flight recorder is the
			// home's forensic payload, on both the structured error and
			// the trace commit.
			w.tr.EndHome(ht)
			ferr.Trace = ht.Dump()
			return homeStats{idx: idx, fail: ferr, tr: ht}, true
		}
		w.probe.Failure().Retry()
		w.tr.EndHome(ht)
		w.refresh()
	}
}

// dominantSpan names where a home's wall time went: the injected stall,
// the event kernel ("bin-batch"), or the residual (synthesis, ledger,
// folds).
func dominantSpan(wallNS, kernelNS, stallNS int64) string {
	other := wallNS - kernelNS - stallNS
	switch {
	case stallNS >= kernelNS && stallNS >= other:
		return "stall"
	case kernelNS >= other:
		return "bin-batch"
	default:
		return "other"
	}
}

// attemptHome simulates one synthesized home on the worker's pooled
// sampler through the batched kernel: the home's bins land in the
// worker's reusable struct-of-arrays buffer (deploy.RunBatch, or
// RunBatchCoarse on the coarse tier), the scalar summary and the
// per-bin fold columns are derived in one pass over the finished
// batch, and — in lifecycle mode — the pooled lifecycle device walks
// the batch in bin order. The context is checked once per event-
// simulated bin; on cancellation the home is abandoned mid-batch and
// attemptHome reports ok == false (its fold is discarded along with
// the whole run). A panic anywhere in the attempt is recovered into
// ferr; the partially built hs is discarded by the caller.
func (w *worker) attemptHome(ctx context.Context, idx, attempt int) (hs homeStats, ok bool, ferr *HomeError) {
	defer func() {
		if r := recover(); r != nil {
			ferr = &HomeError{
				Index: idx,
				Label: "fleet/home/" + strconv.Itoa(idx),
				Msg:   fmt.Sprint(r),
				Stack: string(debug.Stack()),
			}
		}
	}()
	w.lastKernelNS, w.lastStallNS = 0, 0
	var ht *trace.HomeTrace
	if w.tr.Enabled() {
		ht = w.tr.StartHome(idx, "fleet/home/"+strconv.Itoa(idx), attempt)
		// Label the goroutine for the attempt so -cpuprofile samples
		// become home-attributable in pprof.
		pprof.SetGoroutineLabels(pprof.WithLabels(ctx,
			pprof.Labels("phase", "simulate", "home", strconv.Itoa(idx))))
	}
	w.curHT = ht
	w.smp.TraceHome(ht)
	if f := w.fi.Hit(faultinject.HomeSlow, idx); f != nil {
		w.probe.Failure().Fault()
		ht.Fault(string(f.Site))
		time.Sleep(f.Delay) //powifi:walltime-ok injected stall: the fault IS a wall-clock delay, recorded out of band
		ns := f.Delay.Nanoseconds()
		w.lastStallNS = ns
		ht.Stall(ns)
	}
	if f := w.fi.Hit(faultinject.HomePanic, idx); f != nil {
		w.probe.Failure().Fault()
		ht.Fault(string(f.Site))
		panic(faultinject.PanicValue{Site: f.Site, Key: idx})
	}
	cfg := w.cfg
	h := synthesizeHome(w.synthRng, cfg, idx)
	var dev *lifecycle.Device
	if cfg.Population.Lifecycle() {
		dev = w.device(synthesizeDevice(w.synthRng, cfg, idx))
		dev.Trace = ht
		dev.Begin(h.SensorFt, cfg.BinWidth)
	}
	opts := deploy.Options{
		BinWidth:         cfg.BinWidth,
		Window:           cfg.Window,
		Hours:            cfg.Hours,
		SensorDistanceFt: h.SensorFt,
		Exact:            cfg.Exact,
	}
	b := &w.batch
	gate := func(int) bool { return ctx.Err() == nil }
	timed := w.probe != nil || ht != nil
	var k0 time.Time
	if timed {
		k0 = time.Now() //powifi:walltime-ok kernel-span timing for the flight recorder, out of band
	}
	var done bool
	if cfg.Coarse {
		done = w.smp.RunBatchCoarse(h.HomeConfig, opts, deploy.CoarseOptions{}, b, gate)
	} else {
		done = w.smp.RunBatch(h.HomeConfig, opts, b, gate)
	}
	if timed {
		ns := time.Since(k0).Nanoseconds() //powifi:walltime-ok probe/trace observation only; never feeds an aggregate
		w.lastKernelNS = ns
		ht.Kernel(ns)
	}
	if !done {
		return homeStats{}, false, nil
	}
	nBins := b.Len()
	ht.SetBins(nBins)
	if nBins == 0 {
		return homeStats{idx: idx, home: h}, true, nil
	}

	// One backing array, sliced into the three per-bin fold columns that
	// ride the reorder buffer to the reducer.
	cols := make([]float64, 3*nBins)
	hs = homeStats{
		idx:     idx,
		home:    h,
		binCum:  cols[:nBins:nBins],
		binUW:   cols[nBins : 2*nBins : 2*nBins],
		binRate: cols[2*nBins:],
	}
	var (
		sumCum, sumHarvest, sumRate float64
		sumCh                       [3]float64
		silent                      uint64
	)
	for i := 0; i < nBins; i++ {
		s := b.Sample(i)
		sumCum += s.CumulativePct
		for c := range sumCh {
			sumCh[c] += s.Occupancy[c] * 100
		}
		// A silent bin banks nothing; BankedHarvestUW owns the clamp
		// convention shared with the facade's single-home report.
		uw := s.BankedHarvestUW()
		sumHarvest += uw
		sumRate += s.SensorRate
		if s.SensorRate <= 0 {
			silent++
		}
		hs.binCum[i] = s.CumulativePct
		hs.binUW[i] = uw
		hs.binRate[i] = s.SensorRate
	}
	if dev != nil {
		dev.VisitBatch(b)
	}
	n := float64(nBins)
	hs.meanCumPct = sumCum / n
	hs.meanHarvestUW = sumHarvest / n
	hs.meanRate = sumRate / n
	// Telemetry: silent bins fold into the shared counter, the home's
	// mean harvest into this worker's private sketch shard.
	w.probe.ObserveHome(silent, hs.meanHarvestUW)
	for i := range sumCh {
		hs.meanChPct[i] = sumCh[i] / n
	}
	if dev != nil {
		m := dev.Metrics()
		hs.hasLife = true
		hs.life = lifeHomeStats{
			kind:        m.Kind,
			ttfuS:       m.FirstUpdateS,
			outageFrac:  m.OutageFraction(),
			updates:     m.Updates,
			frames:      float64(m.Frames),
			chargeTimeS: m.TimeToFullS,
			finalSoC:    m.FinalSoC,
			minSoC:      m.MinSoC,
		}
	}
	return hs, true, nil
}
