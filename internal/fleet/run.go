package fleet

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"

	"repro/internal/deploy"
	"repro/internal/harvester"
	"repro/internal/lifecycle"
	"repro/internal/surface"
	"repro/internal/telemetry"
	"repro/internal/xrand"
)

// samplerPool recycles pooled sampling contexts across fleet runs. A
// Sampler fully re-derives its state from (seed, labels) on every bin,
// so reuse across runs is as output-invisible as reuse across homes.
// No New hook: acquireSampler constructs on empty so pool reuse is an
// observable telemetry diagnostic.
var samplerPool sync.Pool

// acquireSampler takes a pooled sampling context, or builds one when
// the pool is empty, counting either way into the run's scheduling
// diagnostics (nil-safe when telemetry is off).
func acquireSampler(probe *telemetry.Probe) *deploy.Sampler {
	if v := samplerPool.Get(); v != nil {
		probe.Sampler().PoolHit()
		return v.(*deploy.Sampler)
	}
	probe.Sampler().PoolMiss()
	return deploy.NewSampler()
}

// ErrStopped is returned by RunWith when the Home hook ends the run
// early by returning false. It marks a caller-requested stop — the
// streaming consumer broke out of its loop — as opposed to a context
// cancellation, which surfaces as ctx.Err().
var ErrStopped = errors.New("fleet: run stopped by home hook")

// Hooks carries the optional streaming callbacks of RunWith. Both
// hooks observe homes in home-index order regardless of worker count,
// so a streaming consumer sees the exact same sequence at any
// parallelism. Hooks are invoked on the reducing goroutine (the one
// that called RunWith), never concurrently.
type Hooks struct {
	// Progress, if non-nil, is called once per completed home with the
	// number folded so far and the total: (1, n), (2, n), ... (n, n).
	Progress func(done, total int)
	// Home, if non-nil, receives each home's summary record in
	// home-index order. Returning false stops the run: workers drain
	// and exit, and RunWith returns ErrStopped with a nil Result.
	Home func(HomeRecord) bool
	// Telemetry, if non-nil, collects the run's metrics, phase spans
	// and manifest (internal/telemetry). Collection is strictly out of
	// band — no RNG draws, no event-order changes — so the Result is
	// byte-identical with or without it, and its work-counter totals
	// are bit-for-bit identical at any worker count.
	Telemetry *telemetry.Run
}

// worker is one shard's pooled per-worker state: the sampling context,
// the synthesis RNG, the pooled partial aggregates, and — in lifecycle
// mode — one pooled device per archetype, built lazily and reused
// across every home the worker runs (Device.Begin re-derives all run
// state, so pooling is output-invisible; the lifecycle parity suite
// pins this).
type worker struct {
	cfg      Config
	smp      *deploy.Sampler
	synthRng *xrand.Rand
	p        *partial
	probe    *telemetry.Probe
	devs     [lifecycle.NumKinds]*lifecycle.Device
}

func newWorker(cfg Config, p *partial, probe *telemetry.Probe) *worker {
	w := &worker{
		cfg:      cfg,
		smp:      acquireSampler(probe),
		synthRng: xrand.New(0),
		p:        p,
		probe:    probe,
	}
	// Attach (or, with telemetry off, explicitly detach) the counters on
	// every acquisition, so a pooled sampler can never count into a
	// previous run's metrics.
	w.smp.Instrument(probe.Sampler(), probe.Surface())
	return w
}

func (w *worker) release() {
	w.smp.Instrument(nil, nil)
	samplerPool.Put(w.smp)
	// Fold this worker's sketch shard into the run exactly; the error is
	// impossible because every shard shares NewProbe's configuration.
	_ = w.probe.Close()
}

// device returns the worker's pooled device of the given archetype,
// its OnBin hook bound once to the worker's pooled partial.
func (w *worker) device(k lifecycle.Kind) *lifecycle.Device {
	if w.devs[k] == nil {
		d := lifecycle.NewDevice(k, lifecycle.Policy{})
		d.Exact = w.cfg.Exact
		d.Tele = w.probe.Lifecycle()
		d.SurfTele = w.probe.Surface()
		ap := &w.p.arch[k]
		d.OnBin = ap.add
		w.devs[k] = d
	}
	return w.devs[k]
}

// Run executes the fleet simulation: cfg.Homes independent single-home
// deployments sharded across cfg.Workers workers, streamed into the
// mergeable aggregates of Result. Each home runs its own isolated
// discrete-event kernel (the kernel itself is deliberately single-
// threaded; the fleet layer is where the parallelism lives).
//
// Cancelling ctx stops the run promptly: every worker checks its
// context once per logging bin (never more than one bin's worth of
// work after the cancel), drains, and exits; Run then returns ctx.Err()
// with a nil Result. Partial results are discarded, never silently
// truncated — a Result always describes the full configured fleet.
//
// The output is bit-for-bit identical for any worker count: pooled
// per-bin aggregates merge exactly in any order, and per-home scalar
// summaries pass through a reorder buffer so the order-sensitive
// Welford reductions always happen in home-index order. The device-
// lifecycle engine (enabled by a population device mix) follows the
// same discipline: per-bin lifecycle observations land in exactly
// mergeable sketches, per-home time-domain scalars ride the reorder
// buffer.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	return RunWith(ctx, cfg, Hooks{})
}

// RunWith is Run with streaming hooks: per-home records and progress
// callbacks delivered in home-index order at any worker count. See
// Hooks for the contract.
func RunWith(ctx context.Context, cfg Config, h Hooks) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res := newResult(cfg)

	// Telemetry setup. When enabled, the operating-point surfaces the
	// run will query are built up front under their own span — the build
	// is deterministic and process-cached, so warming changes no output,
	// but it keeps the one-time cost out of the simulate span.
	t := h.Telemetry
	runStart := time.Now()
	var memStart runtime.MemStats
	if t != nil {
		runtime.ReadMemStats(&memStart)
		if !cfg.Exact && surface.Enabled() {
			endWarm := t.Span(telemetry.SpanSurfaceWarmup)
			surface.For(harvester.NewBatteryFree())
			if cfg.Population.Lifecycle() {
				surface.For(harvester.NewBatteryCharging())
			}
			endWarm()
		}
	}
	homesC := t.Counter(telemetry.CounterHomes)

	// finish stamps the run manifest and throughput gauges once the
	// result is complete.
	finish := func() {
		if t == nil {
			return
		}
		elapsed := time.Since(runStart).Seconds()
		hashCfg := cfg
		hashCfg.Workers = 0 // invariant across parallelism by contract
		m := telemetry.Manifest{
			Seed:       cfg.Seed,
			ConfigHash: telemetry.HashConfig(hashCfg),
			Workers:    cfg.Workers,
			ElapsedS:   elapsed,
		}
		if elapsed > 0 {
			m.HomesPerSec = float64(cfg.Homes) / elapsed
			t.Gauge(telemetry.GaugeBinsPerSec).Set(float64(res.TotalBins) / elapsed)
		}
		t.SetManifest(m)
		var memEnd runtime.MemStats
		runtime.ReadMemStats(&memEnd)
		if res.TotalBins > 0 {
			t.Gauge(telemetry.GaugeAllocsPerBin).Set(
				float64(memEnd.Mallocs-memStart.Mallocs) / float64(res.TotalBins))
		}
	}

	// deliver folds one home into the result and feeds the hooks; it
	// reports whether the run should continue.
	deliver := func(hs homeStats) (bool, error) {
		res.addHome(hs)
		homesC.Inc()
		if h.Home != nil && !h.Home(hs.record()) {
			return false, ErrStopped
		}
		if h.Progress != nil {
			h.Progress(hs.idx+1, cfg.Homes)
		}
		return true, nil
	}

	// Serial fast path: with one worker there is no sharding to
	// coordinate, and the channel/goroutine handoffs per home are pure
	// overhead (meaningful on single-core hosts). The reduce order is
	// trivially home-index order, and the pooled per-bin aggregates can
	// fold straight into the result's sketches — integer-count adds are
	// exactly what a worker-sketch-then-merge computes — so the output
	// is identical to the sharded path by construction.
	if cfg.Workers == 1 {
		p := &partial{binOcc: res.BinOcc, harvest: res.Harvest, latency: res.Latency}
		if cfg.Population.Lifecycle() {
			p.arch = newArchPartials()
		}
		endSim := t.Span(telemetry.SpanSimulate)
		w := newWorker(cfg, p, t.NewProbe())
		for i := 0; i < cfg.Homes; i++ {
			hs, ok := w.runHome(ctx, i)
			if !ok {
				w.release()
				return nil, ctx.Err()
			}
			if cont, err := deliver(hs); !cont {
				w.release()
				return nil, err
			}
		}
		w.release()
		endSim()
		endReduce := t.Span(telemetry.SpanReduce)
		res.SilentBins += p.silentBins
		res.TotalBins += p.totalBins
		if p.arch != nil {
			for i := range p.arch {
				res.Arch[i].mergePooled(&p.arch[i])
			}
		}
		endReduce()
		finish()
		return res, nil
	}

	// The sharded path runs under a derived context so a Home hook
	// stop can wind the workers down the same way a cancellation does.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	jobs := make(chan int)
	out := make(chan homeStats, cfg.Workers)
	partials := make([]*partial, cfg.Workers)
	endSim := t.Span(telemetry.SpanSimulate)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Workers; i++ {
		p := newPartial(cfg)
		partials[i] = p
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One pooled sampling context per worker: scheduler, channels,
			// router, monitors and traffic sources are built once and reset
			// per bin, so the steady-state hot path stops paying allocator
			// and GC tax. Pooling is output-invisible (see deploy.Sampler).
			w := newWorker(cfg, p, t.NewProbe())
			defer w.release()
			for idx := range jobs {
				hs, ok := w.runHome(ctx, idx)
				if !ok {
					return // cancelled mid-home; partial home discarded
				}
				select {
				case out <- hs:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		defer close(jobs)
		for i := 0; i < cfg.Homes; i++ {
			select {
			case jobs <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(out)
	}()

	// Ordered streaming reduce: fold each home's summary in index order.
	// Out-of-order completions park in a buffer whose size stays near
	// the worker count because homes have comparable cost.
	pending := make(map[int]homeStats, cfg.Workers)
	next := 0
	var stopErr error
	for m := range out {
		if stopErr != nil || ctx.Err() != nil {
			continue // draining after a hook stop or cancellation
		}
		pending[m.idx] = m
		for {
			hs, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if cont, err := deliver(hs); !cont {
				stopErr = err
				cancel() // wind the workers down; keep draining out
				break
			}
		}
	}
	endSim()
	if stopErr != nil {
		return nil, stopErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Pooled per-bin aggregates merge exactly regardless of how homes
	// were grouped onto workers; worker order is fixed only for clarity.
	endReduce := t.Span(telemetry.SpanReduce)
	for _, p := range partials {
		res.mergePartial(p)
	}
	endReduce()
	finish()
	return res, nil
}

// runHome simulates one synthesized home on the worker's pooled
// sampler, streaming its bins into the worker's pooled partial (and,
// in lifecycle mode, through the home's pooled lifecycle device) and
// returning the home's scalar summary. The context is checked once per
// logging bin; on cancellation the home is abandoned mid-stream and
// runHome reports ok == false (its partial fold is discarded along
// with the whole run).
func (w *worker) runHome(ctx context.Context, idx int) (hs homeStats, ok bool) {
	cfg := w.cfg
	h := synthesizeHome(w.synthRng, cfg, idx)
	var dev *lifecycle.Device
	if cfg.Population.Lifecycle() {
		dev = w.device(synthesizeDevice(w.synthRng, cfg, idx))
		dev.Begin(h.SensorFt, cfg.BinWidth)
	}
	opts := deploy.Options{
		BinWidth:         cfg.BinWidth,
		Window:           cfg.Window,
		Hours:            cfg.Hours,
		SensorDistanceFt: h.SensorFt,
		Exact:            cfg.Exact,
	}
	var (
		nBins                       int
		sumCum, sumHarvest, sumRate float64
		sumCh                       [3]float64
		cancelled                   bool
	)
	p := w.p
	silent0 := p.silentBins
	w.smp.StreamBins(h.HomeConfig, opts, func(s deploy.BinSample) bool {
		if ctx.Err() != nil {
			cancelled = true
			return false
		}
		nBins++
		sumCum += s.CumulativePct
		for i := range sumCh {
			sumCh[i] += s.Occupancy[i] * 100
		}
		// A silent bin banks nothing; BankedHarvestUW owns the clamp
		// convention shared with the facade's single-home report.
		uw := s.BankedHarvestUW()
		sumHarvest += uw
		sumRate += s.SensorRate

		p.totalBins++
		p.binOcc.Add(s.CumulativePct)
		p.harvest.Add(uw)
		if s.SensorRate > 0 {
			p.latency.Add(1 / s.SensorRate)
		} else {
			p.silentBins++
		}
		if dev != nil {
			dev.VisitBin(s)
		}
		return true
	})
	if cancelled {
		return homeStats{}, false
	}
	if nBins == 0 {
		return homeStats{idx: idx, home: h}, true
	}
	n := float64(nBins)
	hs = homeStats{
		idx:           idx,
		home:          h,
		meanCumPct:    sumCum / n,
		meanHarvestUW: sumHarvest / n,
		meanRate:      sumRate / n,
	}
	// Telemetry: silent bins fold into the shared counter, the home's
	// mean harvest into this worker's private sketch shard.
	w.probe.ObserveHome(uint64(p.silentBins-silent0), hs.meanHarvestUW)
	for i := range sumCh {
		hs.meanChPct[i] = sumCh[i] / n
	}
	if dev != nil {
		m := dev.Metrics()
		hs.hasLife = true
		hs.life = lifeHomeStats{
			kind:        m.Kind,
			ttfuS:       m.FirstUpdateS,
			outageFrac:  m.OutageFraction(),
			updates:     m.Updates,
			frames:      float64(m.Frames),
			chargeTimeS: m.TimeToFullS,
			finalSoC:    m.FinalSoC,
			minSoC:      m.MinSoC,
		}
	}
	return hs, true
}
