package fleet

import (
	"repro/internal/deploy"
	"repro/internal/lifecycle"
	"repro/internal/xrand"
)

// Home is one synthesized household: the single-home runner's
// configuration plus the fleet-varied sensor placement.
type Home struct {
	deploy.HomeConfig
	// SensorFt is the battery-free sensor's distance from the router.
	SensorFt float64 `json:"sensor_ft"`
}

// SynthesizeHome deterministically draws home i of the fleet. The draw
// depends only on (cfg.Seed, cfg.Population, i) — never on worker
// count, scheduling, or which homes were synthesized before — so any
// shard of the fleet can regenerate its homes independently.
func SynthesizeHome(cfg Config, i int) Home {
	return synthesizeHome(xrand.New(0), cfg, i)
}

// synthesizeHome is SynthesizeHome drawing through a caller-owned
// generator, which the hot loop reseeds in place instead of allocating
// one per home.
func synthesizeHome(rng *xrand.Rand, cfg Config, i int) Home {
	// Equivalent to NewFromLabel(seed, fmt.Sprintf("fleet/home/%d", i))
	// without the per-home formatting.
	rng.Reseed(xrand.LabelSeedInt(cfg.Seed, "fleet/home/", i))
	p := cfg.Population

	users := p.MinUsers + rng.Intn(p.MaxUsers-p.MinUsers+1)
	devices := 0
	for u := 0; u < users; u++ {
		devices += 1 + rng.Intn(p.MaxDevicesPerUser)
	}
	// Neighbor density is over-dispersed: most homes see a handful of
	// APs, dense apartment blocks see dozens (Table 1 spans 4-24). A
	// Poisson count around an exponentially distributed neighborhood
	// density gives that heavy tail while keeping the draw a true count
	// distribution.
	aps := rng.Poisson(rng.Exp(p.MeanNeighborAPs))
	if aps > p.MaxNeighborAPs {
		aps = p.MaxNeighborAPs
	}

	return Home{
		HomeConfig: deploy.HomeConfig{
			ID:          i + 1,
			Users:       users,
			Devices:     devices,
			NeighborAPs: aps,
			Weekend:     rng.Bool(p.WeekendFraction),
			// Diurnal phase: deployments start whenever the installer
			// arrived, which is what spreads the fleet's load peaks.
			StartHour: rng.Intn(24),
			Seed:      rng.Uint64(),
		},
		SensorFt: rng.Uniform(p.MinSensorFt, p.MaxSensorFt),
	}
}

// SynthesizeDevice deterministically draws home i's device archetype
// from the population's lifecycle mix. The draw lives on its own label
// stream ("fleet/device/i"), independent of the home-parameter stream,
// so enabling the lifecycle engine never perturbs the synthesized
// households (classic aggregates stay bit-identical). It panics when
// the mix is disabled; callers gate on Population.Lifecycle.
func SynthesizeDevice(cfg Config, i int) lifecycle.Kind {
	return synthesizeDevice(xrand.New(0), cfg, i)
}

// synthesizeDevice is SynthesizeDevice drawing through a caller-owned
// generator, reseeded in place by the hot loop.
func synthesizeDevice(rng *xrand.Rand, cfg Config, i int) lifecycle.Kind {
	rng.Reseed(xrand.LabelSeedInt(cfg.Seed, "fleet/device/", i))
	return cfg.Population.Devices.Pick(rng.Float64())
}
