// Package fleet scales the paper's six-home deployment study (§6) to
// thousands of homes: a population of synthetic households is drawn
// from parameter distributions, each home runs the same single-home
// packet-level runner as the paper study (deploy.RunStream), and the
// per-home logs are folded into mergeable fleet-level aggregates
// (internal/stats) rather than materialized.
//
// The design goals, in order:
//
//  1. Determinism independent of parallelism. Every home derives its
//     configuration and randomness from (fleet seed, home index) via
//     internal/xrand label streams, so a home simulates identically no
//     matter which worker runs it. Pooled per-bin aggregates use
//     integer-count sketches whose merge is exactly commutative, and
//     per-home scalar summaries are reduced in home-index order through
//     a reorder buffer, so -workers=1 and -workers=N produce bit-for-
//     bit identical output.
//
//  2. Bounded memory. A full per-home log (1440 bins x 3 channels for a
//     24 h deployment) is never kept: workers stream bin samples into
//     fixed-size sketches and emit one small scalar summary per home.
//     Memory is O(workers + sketch resolution), not O(homes).
//
//  3. One code path with the paper study. The fleet runner and the §6
//     reproduction share deploy.RunStream; fidelity fixes flow to both.
package fleet

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/deploy"
	"repro/internal/lifecycle"
)

// Population describes the distributions the fleet's households are
// drawn from. Each home's parameters are sampled independently from its
// own label stream.
type Population struct {
	// MinUsers and MaxUsers bound the uniformly drawn occupant count.
	MinUsers int `json:"min_users"`
	MaxUsers int `json:"max_users"`
	// MaxDevicesPerUser bounds each occupant's Wi-Fi devices (>= 1 each).
	MaxDevicesPerUser int `json:"max_devices_per_user"`
	// MeanNeighborAPs is the mean neighborhood density around which each
	// home's neighbor-AP count is drawn; dense urban deployments push
	// the tail hard.
	MeanNeighborAPs float64 `json:"mean_neighbor_aps"`
	// MaxNeighborAPs caps the neighbor draw (channel table sizes are
	// finite in the single-home runner).
	MaxNeighborAPs int `json:"max_neighbor_aps"`
	// WeekendFraction is the probability a home's 24 h log was staged
	// over a weekend (2/7 for uniformly scheduled deployments).
	WeekendFraction float64 `json:"weekend_fraction"`
	// MinSensorFt and MaxSensorFt bound the uniformly drawn sensor
	// placement distance (the paper fixes 10 ft; a fleet varies it).
	MinSensorFt float64 `json:"min_sensor_ft"`
	MaxSensorFt float64 `json:"max_sensor_ft"`
	// Devices holds per-archetype population shares for the device-
	// lifecycle engine (internal/lifecycle): each home is assigned one
	// archetype drawn from these weights on its own label stream. The
	// zero mix (the default) disables the engine and runs the classic
	// stateless aggregates only.
	Devices lifecycle.Mix `json:"devices"`
}

// Lifecycle reports whether the population enables the stateful
// device-lifecycle engine.
func (p Population) Lifecycle() bool { return p.Devices.Enabled() }

// DefaultPopulation returns a mixed urban/suburban household
// population anchored on Table 1's observed ranges (1-3 users, 1-6
// devices, 4-24 neighboring APs).
func DefaultPopulation() Population {
	return Population{
		MinUsers:          1,
		MaxUsers:          4,
		MaxDevicesPerUser: 3,
		MeanNeighborAPs:   12,
		MaxNeighborAPs:    40,
		WeekendFraction:   2.0 / 7.0,
		MinSensorFt:       5,
		MaxSensorFt:       15,
	}
}

// Config parameterizes one fleet run.
type Config struct {
	// Homes is the number of households to simulate.
	Homes int
	// Seed drives all randomness; identical (Seed, Homes, knobs) runs
	// are bit-for-bit reproducible at any worker count.
	Seed uint64
	// Workers is the simulation parallelism; 0 means GOMAXPROCS.
	// Workers never affects results, only wall-clock time.
	Workers int
	// Hours is each home's deployment duration (24 in the paper). It is
	// snapped down to a whole number of BinWidth bins, matching what
	// the single-home runner actually simulates.
	Hours float64
	// BinWidth is the occupancy logging resolution. The fleet default
	// (1 h) is coarser than the paper's 60 s: population aggregates over
	// thousands of homes recover the statistics that per-home plots
	// needed fine bins for.
	BinWidth time.Duration
	// Window is the packet-level sample simulated per bin.
	Window time.Duration
	// Population holds the household distributions; the zero value
	// selects DefaultPopulation.
	Population Population
	// Exact forces every home's per-bin rectifier solve onto the direct
	// operating-point solver, bypassing the error-bounded interpolation
	// surface. The surface path (default) makes identical boot decisions
	// and stays within its certified ε of the exact solver; -exact exists
	// to validate that claim on real fleet runs.
	Exact bool
	// Coarse selects the error-bounded coarse sampling tier
	// (deploy.RunBatchCoarse): only anchor bins run the packet-level
	// event simulation, the bins between are proxied from the home's
	// exact offered-load plan, and any bin whose boot/silence decision
	// is not provably stable escalates back to the event simulation.
	// Boot decisions stay bit-identical to the exact tier; aggregate
	// magnitudes carry the certified ε (see deploy.CoarseOptions).
	// Incompatible with a device-lifecycle population: the lifecycle
	// ledger integrates per-bin magnitudes over time, which would
	// compound the proxy ε outside its certified bound.
	Coarse bool
	// Policy decides what a per-home panic does to the run; the zero
	// value fails fast (see FailurePolicy). Incompatible with a
	// device-lifecycle population: lifecycle ledgers accumulate on the
	// workers mid-home, so a retried or skipped home could double- or
	// under-count outside the committed prefix.
	Policy FailurePolicy
	// Deadline bounds the run's wall-clock time; 0 means none. When it
	// expires the run commits the reorder-buffer prefix, writes a final
	// checkpoint (if checkpointing), and returns a Result marked
	// Partial with reason PartialDeadline instead of an error.
	// Incompatible with a device-lifecycle population for the same
	// reason as Policy: a partial run must describe exactly its
	// committed prefix.
	Deadline time.Duration
	// MaxFailedHomes caps quarantined homes under a Skip policy; 0
	// means unlimited. Exceeding it ends the run with a partial Result
	// (reason PartialFailureBudget) covering the committed prefix.
	MaxFailedHomes int
}

// DefaultConfig returns a 1000-home, 24-hour fleet run.
func DefaultConfig() Config {
	return Config{
		Homes:      1000,
		Seed:       1,
		Hours:      24,
		BinWidth:   time.Hour,
		Window:     10 * time.Millisecond,
		Population: DefaultPopulation(),
	}
}

// withDefaults fills zero fields and validates the configuration.
func (c Config) withDefaults() (Config, error) {
	d := DefaultConfig()
	if c.Hours == 0 {
		c.Hours = d.Hours
	}
	if c.BinWidth == 0 {
		c.BinWidth = d.BinWidth
	}
	if c.Window == 0 {
		c.Window = d.Window
	}
	if c.Population == (Population{}) {
		c.Population = d.Population
	} else if devOnly := (Population{Devices: c.Population.Devices}); devOnly == c.Population {
		// Only the device mix was specified (the CLI's -devices flag):
		// fill the household distributions from the default population.
		pop := d.Population
		pop.Devices = c.Population.Devices
		c.Population = pop
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	switch {
	case c.Homes <= 0:
		return c, fmt.Errorf("fleet: Homes = %d, need > 0", c.Homes)
	case c.Workers < 0:
		return c, fmt.Errorf("fleet: Workers = %d, need >= 0", c.Workers)
	case c.Hours <= 0 || c.BinWidth <= 0 || c.Window <= 0:
		return c, fmt.Errorf("fleet: non-positive duration (hours=%v bin=%v window=%v)",
			c.Hours, c.BinWidth, c.Window)
	}
	// Snap the duration to a whole number of bins: the single-home
	// runner truncates a partial trailing bin, and the serialized
	// report must describe what was actually simulated. The bin count
	// comes from the runner's own formula so the two layers cannot
	// disagree.
	nBins := (deploy.Options{Hours: c.Hours, BinWidth: c.BinWidth}).NumBins()
	if nBins < 1 {
		// Shorter than one bin would "run" every home over zero bins
		// and report fabricated all-zero aggregates.
		return c, fmt.Errorf("fleet: duration %.2gh is shorter than one %v bin", c.Hours, c.BinWidth)
	}
	c.Hours = float64(nBins) * c.BinWidth.Hours()
	p := c.Population
	if p.MinUsers <= 0 || p.MaxUsers < p.MinUsers || p.MaxDevicesPerUser <= 0 ||
		p.MeanNeighborAPs < 0 || p.MaxNeighborAPs <= 0 ||
		p.WeekendFraction < 0 || p.WeekendFraction > 1 ||
		p.MinSensorFt <= 0 || p.MaxSensorFt < p.MinSensorFt {
		return c, fmt.Errorf("fleet: invalid population %+v", p)
	}
	if err := p.Devices.Validate(); err != nil {
		return c, fmt.Errorf("fleet: %v", err)
	}
	if c.Coarse && p.Lifecycle() {
		return c, fmt.Errorf("fleet: the coarse tier cannot run a device-lifecycle population (the ledger integrates per-bin magnitudes, compounding the proxy ε)")
	}
	switch {
	case c.Policy.Retry < 0:
		return c, fmt.Errorf("fleet: Policy.Retry = %d, need >= 0", c.Policy.Retry)
	case c.Deadline < 0:
		return c, fmt.Errorf("fleet: Deadline = %v, need >= 0", c.Deadline)
	case c.MaxFailedHomes < 0:
		return c, fmt.Errorf("fleet: MaxFailedHomes = %d, need >= 0", c.MaxFailedHomes)
	case c.MaxFailedHomes > 0 && !c.Policy.Skip:
		return c, fmt.Errorf("fleet: MaxFailedHomes requires a Skip policy (fail-fast aborts on the first failed home)")
	}
	if p.Lifecycle() && (c.Policy != (FailurePolicy{}) || c.Deadline > 0) {
		// Lifecycle ledgers accumulate on the workers mid-home, outside
		// the reducer's committed prefix: a retried home would
		// double-count its ledger bins, and a partial result would carry
		// uncommitted homes' ledger contributions.
		return c, fmt.Errorf("fleet: failure policies and deadlines cannot run a device-lifecycle population (worker-side ledgers fall outside the committed home prefix)")
	}
	return c, nil
}
