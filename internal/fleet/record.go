package fleet

import "repro/internal/lifecycle"

// HomeRecord is one home's streamed summary: the record the Home hook
// (and the facade's Homes iterator) delivers per household, in
// home-index order at any worker count. It carries the synthesized
// household and the same per-home scalars the fleet aggregates fold,
// in a JSON-safe form (optional quantities that can be absent — a
// device that never updated, a battery-free sensor's state of charge —
// are nil pointers rather than ±Inf/NaN).
type HomeRecord struct {
	// Index is the home's fleet index, starting at 0.
	Index int `json:"index"`
	// Home is the synthesized household (deploy config + placement).
	Home Home `json:"home"`
	// MeanCumulativePct is the home's mean cumulative occupancy, %.
	MeanCumulativePct float64 `json:"mean_cumulative_pct"`
	// MeanChannelPct holds mean per-channel occupancy percentages in
	// phy.PoWiFiChannels order (1, 6, 11).
	MeanChannelPct [3]float64 `json:"mean_channel_pct"`
	// MeanHarvestUW is the home's mean harvested power, µW (silent bins
	// contribute zero).
	MeanHarvestUW float64 `json:"mean_harvest_uw"`
	// MeanUpdateRateHz is the home's mean sensor update rate.
	MeanUpdateRateHz float64 `json:"mean_update_rate_hz"`
	// Device carries the home's lifecycle scalars; nil unless the
	// population enables the device-lifecycle engine.
	Device *DeviceRecord `json:"device,omitempty"`
}

// DeviceRecord is the lifecycle slice of a HomeRecord: the archetype
// the home drew and its time-domain metrics.
type DeviceRecord struct {
	Kind string `json:"kind"`
	// FirstUpdateS is the time of the device's first update or frame;
	// nil when it never produced one within the horizon.
	FirstUpdateS *float64 `json:"first_update_s,omitempty"`
	// OutagePct is the time-weighted percentage of the run the device
	// was not operating.
	OutagePct float64 `json:"outage_pct"`
	Updates   float64 `json:"updates"`
	Frames    float64 `json:"frames"`
	// TimeToFullS is when a charger first reached full state of charge;
	// nil when it never filled (and for non-chargers).
	TimeToFullS *float64 `json:"time_to_full_s,omitempty"`
	// FinalSoCPct and MinSoCPct track the battery trajectory endpoints
	// in percent; nil for the battery-free sensor.
	FinalSoCPct *float64 `json:"final_soc_pct,omitempty"`
	MinSoCPct   *float64 `json:"min_soc_pct,omitempty"`
}

// record derives the streamed form of one home's summary.
func (hs homeStats) record() HomeRecord {
	r := HomeRecord{
		Index:             hs.idx,
		Home:              hs.home,
		MeanCumulativePct: hs.meanCumPct,
		MeanChannelPct:    hs.meanChPct,
		MeanHarvestUW:     hs.meanHarvestUW,
		MeanUpdateRateHz:  hs.meanRate,
	}
	if hs.hasLife {
		ls := hs.life
		// The Inf/NaN-to-nil "never happened" convention is owned by
		// lifecycle.FinitePtr, shared with lifecycle.Section.
		r.Device = &DeviceRecord{
			Kind:         ls.kind.String(),
			FirstUpdateS: lifecycle.FinitePtr(ls.ttfuS),
			OutagePct:    ls.outageFrac * 100,
			Updates:      ls.updates,
			Frames:       ls.frames,
			TimeToFullS:  lifecycle.FinitePtr(ls.chargeTimeS),
			FinalSoCPct:  lifecycle.FinitePtr(ls.finalSoC * 100),
			MinSoCPct:    lifecycle.FinitePtr(ls.minSoC * 100),
		}
	}
	return r
}
