package fleet

import (
	"fmt"

	"repro/internal/trace"
)

// FailurePolicy decides what the run does when a home's simulation
// panics. The zero value is fail-fast: the first failed home aborts the
// run with a structured *HomeError (wrapped), after checkpointing the
// committed prefix so a resume re-attempts exactly that home.
//
// Failure handling preserves the fleet's determinism contract: a panic
// is attributed to its home index, retries re-derive the home from
// (seed, index) on a fresh sampler, and failed homes flow through the
// same reorder buffer as successes — so which home fails first, which
// homes are quarantined, and every succeeded-home aggregate are all
// bit-identical at any worker count.
type FailurePolicy struct {
	// Retry is the number of re-attempts per home after its first
	// failure. Each retry runs on a freshly constructed sampler — the
	// panicking attempt may have left the pooled context in an
	// inconsistent state, so it is discarded, never returned to the
	// pool.
	Retry int `json:"retry,omitempty"`
	// Skip quarantines a home whose attempts are exhausted instead of
	// aborting: the run continues, the home contributes nothing to any
	// aggregate, and its structured error is reported in Result.Errors
	// (workers-invariant, home-index order).
	Skip bool `json:"skip,omitempty"`
}

// failFast reports whether the policy aborts on the first exhausted
// home (the zero-value default).
func (p FailurePolicy) failFast() bool { return !p.Skip }

// HomeError describes one home whose simulation panicked. It is
// workers-invariant: Index, Label, Attempts and Msg depend only on the
// home and the armed faults, never on scheduling. Stack carries the
// recovering goroutine's stack for operator forensics; it is excluded
// from serialization and comparisons because goroutine IDs and
// addresses vary run to run.
type HomeError struct {
	// Index is the failed home's index; Label is its RNG stream label
	// ("fleet/home/<index>"), the stable cross-run identity.
	Index int    `json:"index"`
	Label string `json:"label"`
	// Attempts counts simulation attempts made (1 + retries).
	Attempts int `json:"attempts"`
	// Msg renders the recovered panic value.
	Msg string `json:"msg"`
	// Stack is the panicking attempt's stack trace (last attempt).
	Stack string `json:"-"`
	// Trace is the last attempt's flight-recorder dump when the run
	// traced (Hooks.Trace): the home's final structured events, for
	// forensics on what led up to the failure. Its contents derive only
	// from the simulation and the armed faults, so it serializes and
	// compares deterministically like the rest of the error.
	Trace *trace.Dump `json:"trace,omitempty"`
}

func (e *HomeError) Error() string {
	return fmt.Sprintf("fleet: home %d (%s) failed after %d attempt(s): %s",
		e.Index, e.Label, e.Attempts, e.Msg)
}

// Partial-result reasons (Result.PartialReason / Summary.PartialReason).
const (
	// PartialDeadline: the run's Config.Deadline expired; the committed
	// home prefix was kept and a final checkpoint written.
	PartialDeadline = "deadline"
	// PartialFailureBudget: quarantined homes exceeded
	// Config.MaxFailedHomes.
	PartialFailureBudget = "failure_budget"
)

// partialStop is the internal sentinel the reducer raises when a
// degradation budget trips: the run ends with the committed prefix as a
// partial Result, not an error.
type partialStop struct {
	reason    string
	committed int
}

func (p *partialStop) Error() string {
	return fmt.Sprintf("fleet: partial stop (%s) at %d homes", p.reason, p.committed)
}
