package fleet

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"repro/internal/lifecycle"
)

// lifeTestConfig is testConfig with a mixed device population spanning
// every archetype, so the determinism suite exercises all six ledgers.
func lifeTestConfig(homes, workers int) Config {
	cfg := testConfig(homes, workers)
	cfg.Population = DefaultPopulation()
	var m lifecycle.Mix
	m[lifecycle.TempSensor] = 0.3
	m[lifecycle.RechargingTemp] = 0.15
	m[lifecycle.Camera] = 0.2
	m[lifecycle.Jawbone] = 0.15
	m[lifecycle.LiIon] = 0.1
	m[lifecycle.NiMH] = 0.1
	cfg.Population.Devices = m
	return cfg
}

// TestLifecycleDeterministicAcrossWorkerCounts extends the fleet's
// core bit-for-bit guarantee to the lifecycle engine: a mixed device
// population serializes identically whether its homes (and their
// pooled lifecycle devices) run on one worker or eight.
func TestLifecycleDeterministicAcrossWorkerCounts(t *testing.T) {
	serial, err := Run(context.Background(), lifeTestConfig(12, 1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(context.Background(), lifeTestConfig(12, 8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Summarize(), parallel.Summarize()) {
		t.Errorf("lifecycle summaries diverged across worker counts:\n1: %+v\n8: %+v",
			serial.Summarize().Lifecycle, parallel.Summarize().Lifecycle)
	}
	for _, enc := range []struct {
		name  string
		write func(*Result, *bytes.Buffer) error
	}{
		{"json", func(r *Result, b *bytes.Buffer) error { return r.WriteJSON(b) }},
		{"csv", func(r *Result, b *bytes.Buffer) error { return r.WriteCSV(b) }},
		{"text", func(r *Result, b *bytes.Buffer) error { return r.WriteText(b) }},
	} {
		var a, b bytes.Buffer
		if err := enc.write(serial, &a); err != nil {
			t.Fatalf("%s (serial): %v", enc.name, err)
		}
		if err := enc.write(parallel, &b); err != nil {
			t.Fatalf("%s (parallel): %v", enc.name, err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("%s output differs between 1 and 8 workers", enc.name)
		}
	}
	// The per-archetype Welford reductions are order-sensitive; the
	// reorder buffer must make them identical, not merely close.
	for k := range serial.Arch {
		a, b := serial.Arch[k], parallel.Arch[k]
		if a.TTFUW != b.TTFUW || a.OutageW != b.OutageW || a.ChargeTimeW != b.ChargeTimeW ||
			a.FinalSoCW != b.FinalSoCW {
			t.Errorf("archetype %v Welford aggregates diverged across worker counts", lifecycle.Kind(k))
		}
	}
}

// TestLifecycleDoesNotPerturbClassicAggregates pins the label-stream
// isolation of the device draw: enabling a device mix must leave every
// classic aggregate (occupancy, harvest, latency, silent bins)
// bit-identical to the same fleet without one.
func TestLifecycleDoesNotPerturbClassicAggregates(t *testing.T) {
	classic, err := Run(context.Background(), testConfig(8, 3))
	if err != nil {
		t.Fatal(err)
	}
	life, err := Run(context.Background(), lifeTestConfig(8, 3))
	if err != nil {
		t.Fatal(err)
	}
	cs, ls := classic.Summarize(), life.Summarize()
	if cs.HomeOccupancyPct != ls.HomeOccupancyPct || cs.BinOccupancyPct != ls.BinOccupancyPct {
		t.Error("occupancy aggregates changed when the lifecycle engine was enabled")
	}
	if cs.HomeHarvestUW != ls.HomeHarvestUW || cs.UpdateLatencyS != ls.UpdateLatencyS ||
		cs.SilentBins != ls.SilentBins || cs.MeanUpdateRateHz != ls.MeanUpdateRateHz {
		t.Error("energy aggregates changed when the lifecycle engine was enabled")
	}
	if cs.Lifecycle != nil {
		t.Error("classic run reports a lifecycle section")
	}
	if ls.Lifecycle == nil || len(ls.Lifecycle.Archetypes) == 0 {
		t.Fatal("lifecycle run missing its section")
	}
}

// TestLifecycleAggregatesSane checks the bookkeeping of a mixed run:
// archetype home counts partition the fleet, bin counts match the
// horizon, and the per-archetype metrics stay inside their physical
// ranges.
func TestLifecycleAggregatesSane(t *testing.T) {
	cfg := lifeTestConfig(10, 0)
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summarize()
	var homes, bins uint64
	for _, a := range s.Lifecycle.Archetypes {
		homes += a.Homes
		bins += a.TotalBins
		if a.OutageBins > a.TotalBins {
			t.Errorf("%s: outage bins %d exceed total %d", a.Kind, a.OutageBins, a.TotalBins)
		}
		if f := a.OutageBinFraction; f < 0 || f > 1 {
			t.Errorf("%s: outage fraction %v outside [0,1]", a.Kind, f)
		}
		if a.TimeToFirstUpdateS.N+a.HomesNeverActive > a.Homes {
			t.Errorf("%s: first-update accounting exceeds homes: %d + %d > %d",
				a.Kind, a.TimeToFirstUpdateS.N, a.HomesNeverActive, a.Homes)
		}
		if a.HomesCharged > a.Homes {
			t.Errorf("%s: %d charged of %d homes", a.Kind, a.HomesCharged, a.Homes)
		}
		if n := a.SoCPct.N; n > 0 && (a.SoCPct.Min < 0 || a.SoCPct.Max > 100.0000001) {
			t.Errorf("%s: SoC range [%v, %v] outside [0,100]", a.Kind, a.SoCPct.Min, a.SoCPct.Max)
		}
	}
	if homes != uint64(res.Config.Homes) {
		t.Errorf("archetype homes sum to %d, fleet has %d", homes, res.Config.Homes)
	}
	if bins != s.TotalBins {
		t.Errorf("archetype bins sum to %d, fleet logged %d", bins, s.TotalBins)
	}
}

// TestSynthesizeDeviceDeterministicAndDistributed pins the device
// draw: deterministic per (seed, index), independent of the home
// stream, and roughly proportional to the configured shares.
func TestSynthesizeDeviceDeterministicAndDistributed(t *testing.T) {
	cfg, err := lifeTestConfig(1, 1).withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	counts := map[lifecycle.Kind]int{}
	for i := 0; i < 600; i++ {
		a := SynthesizeDevice(cfg, i)
		if b := SynthesizeDevice(cfg, i); a != b {
			t.Fatalf("device draw %d not deterministic: %v vs %v", i, a, b)
		}
		counts[a]++
	}
	for k, share := range cfg.Population.Devices {
		if share <= 0 {
			continue
		}
		want := share / cfg.Population.Devices.Total() * 600
		if got := float64(counts[lifecycle.Kind(k)]); got < want*0.5 || got > want*1.6 {
			t.Errorf("archetype %v drawn %v times, expected ~%v", lifecycle.Kind(k), got, want)
		}
	}
}

// TestDeviceOnlyPopulationFillsDefaults pins the CLI path: a
// population carrying only a device mix resolves to the default
// household distributions plus that mix.
func TestDeviceOnlyPopulationFillsDefaults(t *testing.T) {
	mix, err := lifecycle.ParseMix("temp=0.5,camera=0.5")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := Config{Homes: 2, Population: Population{Devices: mix}}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	want := DefaultPopulation()
	want.Devices = mix
	if cfg.Population != want {
		t.Errorf("device-only population resolved to %+v, want %+v", cfg.Population, want)
	}

	// A negative share must be rejected.
	bad := Population{Devices: lifecycle.Mix{-1}}
	if _, err := (Config{Homes: 2, Population: bad}).withDefaults(); err == nil {
		t.Error("negative device share accepted")
	}
}
