package fleet

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzCheckpointDecode holds decodeCheckpoint to its contract: on
// arbitrary (torn, bit-flipped, hostile) input it must never panic —
// every malformed shape is an error — and an accepted checkpoint must
// satisfy the prefix invariants the resume path relies on.
func FuzzCheckpointDecode(f *testing.F) {
	cfg := testConfig(12, 1)

	// Seed with a genuine schema-2 envelope (an empty committed prefix
	// written by the real writer), plus the classic failure shapes: a
	// torn write, a payload bit flip, a stale schema, and junk.
	path := filepath.Join(f.TempDir(), "seed.ckpt")
	w := &ckWriter{ck: &Checkpoint{Path: path}, cfg: cfg}
	if err := w.write(newResult(cfg), 3); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // torn write
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x01
	f.Add(flipped) // bit rot inside the checksummed payload
	f.Add([]byte(`{"schema":1,"sum":"0000000000000000","payload":{}}`))
	f.Add([]byte(`{"schema":2,"sum":"not-a-sum","payload":{}}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		next, res, err := decodeCheckpoint(data, "fuzz.ckpt", cfg)
		if err != nil {
			if res != nil {
				t.Fatalf("error %v but non-nil result", err)
			}
			return
		}
		if res == nil {
			t.Fatal("nil error and nil result")
		}
		if next < 0 || next > cfg.Homes {
			t.Fatalf("accepted checkpoint with next=%d outside [0,%d]", next, cfg.Homes)
		}
	})
}
