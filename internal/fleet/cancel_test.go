package fleet

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// waitGoroutines polls until the process goroutine count drops back to
// at most want, failing the test if it does not within two seconds —
// the leak check for the worker pool's cancellation path.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d still running, want <= %d", runtime.NumGoroutine(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// warmSurface builds the lazily constructed operating-point surface
// before a timed cancellation check: the one-time global grid build is
// the only stretch of work a worker cannot interrupt, and it must not
// count against the per-bin cancellation latency.
func warmSurface(t *testing.T) {
	t.Helper()
	if _, err := Run(context.Background(), testConfig(1, 1)); err != nil {
		t.Fatal(err)
	}
}

// TestCancelMidRun pins the worker pool's cancellation contract:
// cancelling the context mid-run returns ctx.Err() promptly (workers
// check once per logging bin, so at most one bin's worth of work per
// worker after the cancel), discards partial results, and leaks no
// goroutines.
func TestCancelMidRun(t *testing.T) {
	warmSurface(t)
	// Big enough that the run takes seconds uncancelled: the prompt
	// return below is then meaningful.
	cfg := testConfig(4096, 4)
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := Run(ctx, cfg)
		done <- outcome{res, err}
	}()

	// Let the pool spin up and get into the packet-level work.
	time.Sleep(50 * time.Millisecond)
	cancel()
	cancelAt := time.Now()

	select {
	case o := <-done:
		if !errors.Is(o.err, context.Canceled) {
			t.Fatalf("cancelled run returned %v, want context.Canceled", o.err)
		}
		if o.res != nil {
			t.Error("cancelled run returned a partial Result; partials must be discarded")
		}
		// The bound is generous next to the per-bin check granularity
		// (a 2 ms-window bin simulates in well under a millisecond),
		// but far below the seconds the full run takes.
		if d := time.Since(cancelAt); d > 500*time.Millisecond {
			t.Errorf("run took %v to return after cancel", d)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return after cancel")
	}
	waitGoroutines(t, baseline)
}

// TestCancelBeforeRun pins the fast path: an already-cancelled context
// never starts simulating.
func TestCancelBeforeRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res, err := Run(ctx, testConfig(64, 4))
	if !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("got (%v, %v), want (nil, context.Canceled)", res, err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Errorf("pre-cancelled run still took %v", d)
	}
}

// TestCancelSerialPath covers the workers == 1 fast path, which has no
// pool to drain but must honor the same contract. The cancel fires
// deterministically from the Home hook after the fifth home, so the
// test cannot race the run's completion.
func TestCancelSerialPath(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := RunWith(ctx, testConfig(64, 1), Hooks{
		Home: func(r HomeRecord) bool {
			if r.Index == 4 {
				cancel()
			}
			return true
		},
	})
	if !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("got (%v, %v), want (nil, context.Canceled)", res, err)
	}
}

// TestRunWithHooks pins the streaming contract: Home and Progress
// hooks fire once per home in home-index order at any worker count,
// and record fields match the reduced aggregates.
func TestRunWithHooks(t *testing.T) {
	cfg := testConfig(12, 1)
	collect := func(workers int) ([]HomeRecord, []int) {
		c := cfg
		c.Workers = workers
		var recs []HomeRecord
		var progress []int
		_, err := RunWith(context.Background(), c, Hooks{
			Progress: func(done, total int) {
				if total != cfg.Homes {
					t.Errorf("progress total = %d, want %d", total, cfg.Homes)
				}
				progress = append(progress, done)
			},
			Home: func(r HomeRecord) bool { recs = append(recs, r); return true },
		})
		if err != nil {
			t.Fatal(err)
		}
		return recs, progress
	}
	serialRecs, serialProg := collect(1)
	parallelRecs, parallelProg := collect(8)

	if len(serialRecs) != cfg.Homes {
		t.Fatalf("got %d records, want %d", len(serialRecs), cfg.Homes)
	}
	for i, r := range serialRecs {
		if r.Index != i {
			t.Fatalf("record %d has index %d; records must stream in home-index order", i, r.Index)
		}
		if r.Home != SynthesizeHome(mustDefaults(t, cfg), i) {
			t.Errorf("record %d home does not match SynthesizeHome", i)
		}
	}
	for i, d := range serialProg {
		if d != i+1 {
			t.Fatalf("progress sequence %v not 1..n", serialProg)
		}
	}
	// Worker-count invariance of the streams themselves.
	if len(parallelRecs) != len(serialRecs) {
		t.Fatalf("record count differs across worker counts: %d vs %d", len(parallelRecs), len(serialRecs))
	}
	for i := range serialRecs {
		if serialRecs[i] != parallelRecs[i] {
			t.Errorf("record %d differs between 1 and 8 workers:\n1: %+v\n8: %+v",
				i, serialRecs[i], parallelRecs[i])
		}
	}
	for i := range serialProg {
		if serialProg[i] != parallelProg[i] {
			t.Fatalf("progress sequence differs across worker counts")
		}
	}
}

func mustDefaults(t *testing.T, cfg Config) Config {
	t.Helper()
	c, err := cfg.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestHomeHookStopsRun pins the early-stop contract: a Home hook
// returning false winds the pool down, RunWith returns ErrStopped with
// no Result, and no goroutines leak.
func TestHomeHookStopsRun(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for _, workers := range []int{1, 4} {
		cfg := testConfig(64, workers)
		seen := 0
		res, err := RunWith(context.Background(), cfg, Hooks{
			Home: func(HomeRecord) bool { seen++; return seen < 5 },
		})
		if !errors.Is(err, ErrStopped) || res != nil {
			t.Fatalf("workers=%d: got (%v, %v), want (nil, ErrStopped)", workers, res, err)
		}
		if seen != 5 {
			t.Errorf("workers=%d: hook fired %d times, want 5", workers, seen)
		}
	}
	waitGoroutines(t, baseline)
}

// TestHomeRecordDeviceFields pins the lifecycle slice of the streamed
// record: device records appear exactly when the population carries a
// mix, with JSON-safe optional fields.
func TestHomeRecordDeviceFields(t *testing.T) {
	cfg := testConfig(6, 2)
	cfg.Population = DefaultPopulation()
	cfg.Population.Devices[0] = 1 // all battery-free temp sensors
	var recs []HomeRecord
	if _, err := RunWith(context.Background(), cfg, Hooks{
		Home: func(r HomeRecord) bool { recs = append(recs, r); return true },
	}); err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Device == nil {
			t.Fatalf("record %d missing device section in lifecycle mode", r.Index)
		}
		if r.Device.Kind != "temp" {
			t.Errorf("record %d kind %q, want temp", r.Index, r.Device.Kind)
		}
		if r.Device.FinalSoCPct != nil {
			t.Errorf("battery-free sensor reports a state of charge: %v", *r.Device.FinalSoCPct)
		}
	}
}
