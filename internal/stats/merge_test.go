package stats

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// sample draws n values from a mix of distributions so sketches see
// in-range, underflow and overflow samples.
func sample(r *xrand.Rand, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		switch r.Intn(3) {
		case 0:
			xs[i] = r.Uniform(-20, 120)
		case 1:
			xs[i] = r.Normal(50, 30)
		default:
			xs[i] = r.Exp(40)
		}
	}
	return xs
}

func sketchOf(xs []float64) *Sketch {
	s := NewSketch(0, 100, 64)
	for _, x := range xs {
		s.Add(x)
	}
	return s
}

func TestWelfordMatchesDirectMoments(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if math.Abs(w.Mean-Mean(xs)) > 1e-12 {
		t.Errorf("Welford mean = %v, want %v", w.Mean, Mean(xs))
	}
	if math.Abs(w.StdDev()-StdDev(xs)) > 1e-12 {
		t.Errorf("Welford stddev = %v, want %v", w.StdDev(), StdDev(xs))
	}
	if w.N != uint64(len(xs)) {
		t.Errorf("N = %d, want %d", w.N, len(xs))
	}
}

func TestWelfordEdgeCases(t *testing.T) {
	var w Welford
	if w.Variance() != 0 || w.StdDev() != 0 {
		t.Error("empty accumulator should report zero variance")
	}
	w.Add(5)
	if w.Mean != 5 || w.Variance() != 0 {
		t.Errorf("singleton = mean %v var %v, want 5, 0", w.Mean, w.Variance())
	}
	var a Welford
	a.Merge(w) // merge into empty adopts the other side
	if a != w {
		t.Errorf("merge into empty = %+v, want %+v", a, w)
	}
	b := w
	b.Merge(Welford{}) // merging an empty accumulator is a no-op
	if b != w {
		t.Errorf("merge of empty = %+v, want %+v", b, w)
	}
}

// TestWelfordShardedMergeMatchesSingleShot checks the parallel merge
// against single-shot accumulation over random shard splits. Floating-
// point rounding differs between the two orders, so the comparison is
// to tight relative tolerance rather than bit-for-bit.
func TestWelfordShardedMergeMatchesSingleShot(t *testing.T) {
	f := func(seed uint64, splitsRaw uint8) bool {
		r := xrand.New(seed)
		xs := sample(r, 200+r.Intn(200))
		splits := 1 + int(splitsRaw%7)

		var whole Welford
		for _, x := range xs {
			whole.Add(x)
		}
		var merged Welford
		for i := 0; i < splits; i++ {
			var part Welford
			for j := i; j < len(xs); j += splits {
				part.Add(xs[j])
			}
			merged.Merge(part)
		}
		if merged.N != whole.N {
			return false
		}
		return closeRel(merged.Mean, whole.Mean, 1e-9) &&
			closeRel(merged.Variance(), whole.Variance(), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWelfordMergeAssociative(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		parts := make([]Welford, 3)
		for i := range parts {
			for _, x := range sample(r, 30+r.Intn(50)) {
				parts[i].Add(x)
			}
		}
		ab := parts[0]
		ab.Merge(parts[1])
		ab.Merge(parts[2]) // (a+b)+c
		bc := parts[1]
		bc.Merge(parts[2])
		a := parts[0]
		a.Merge(bc) // a+(b+c)
		return ab.N == a.N &&
			closeRel(ab.Mean, a.Mean, 1e-9) &&
			closeRel(ab.Variance(), a.Variance(), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func closeRel(a, b, tol float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= tol*math.Max(scale, 1)
}

// TestSketchShardedMergeIsExact is the core sharding guarantee: a merge
// of per-shard sketches equals the single-shot sketch bit-for-bit, for
// any shard count, because the state is integer counts plus exact
// extremes.
func TestSketchShardedMergeIsExact(t *testing.T) {
	f := func(seed uint64, splitsRaw uint8) bool {
		r := xrand.New(seed)
		xs := sample(r, 100+r.Intn(300))
		splits := 1 + int(splitsRaw%9)

		whole := sketchOf(xs)
		merged := NewSketch(0, 100, 64)
		for i := 0; i < splits; i++ {
			part := NewSketch(0, 100, 64)
			for j := i; j < len(xs); j += splits {
				part.Add(xs[j])
			}
			merged.Merge(part)
		}
		return reflect.DeepEqual(whole, merged)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSketchMergeAssociativeAndCommutative(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		parts := make([]*Sketch, 3)
		for i := range parts {
			parts[i] = sketchOf(sample(r, 20+r.Intn(100)))
		}
		clone := func(s *Sketch) *Sketch {
			c := NewSketch(s.Lo, s.Hi, len(s.Counts))
			c.Merge(s)
			return c
		}
		ab := clone(parts[0])
		ab.Merge(parts[1])
		ab.Merge(parts[2]) // (a+b)+c
		bc := clone(parts[1])
		bc.Merge(parts[2])
		a := clone(parts[0])
		a.Merge(bc) // a+(b+c)
		ba := clone(parts[1])
		ba.Merge(parts[0]) // b+a
		abOnly := clone(parts[0])
		abOnly.Merge(parts[1]) // a+b
		return reflect.DeepEqual(ab, a) && reflect.DeepEqual(abOnly, ba)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestSketchQuantileTracksExactCDF bounds the sketch quantile between
// the exact empirical quantiles at neighboring ranks, padded by one bin
// width (the sketch's resolution limit).
func TestSketchQuantileTracksExactCDF(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		xs := make([]float64, 200)
		for i := range xs {
			xs[i] = r.Uniform(0, 100)
		}
		s := sketchOf(xs)
		exact := NewCDF(xs)
		binW := 100.0 / 64
		eps := 2.0 / float64(len(xs))
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1} {
			v := s.Quantile(q)
			lo := exact.Quantile(math.Max(0, q-eps)) - binW - 1e-9
			hi := exact.Quantile(math.Min(1, q+eps)) + binW + 1e-9
			if v < lo || v > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestSketchMomentsTrackExact bounds the sketch's mean and stddev
// against exact sample moments by one bin width.
func TestSketchMomentsTrackExact(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		xs := make([]float64, 300)
		for i := range xs {
			xs[i] = r.Uniform(0, 100)
		}
		s := sketchOf(xs)
		binW := 100.0 / 64
		return math.Abs(s.Mean()-Mean(xs)) <= binW &&
			math.Abs(s.StdDev()-StdDev(xs)) <= binW
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
	var empty Sketch
	one := NewSketch(0, 1, 4)
	one.Add(0.5)
	if empty.StdDev() != 0 || one.StdDev() != 0 {
		t.Error("stddev of empty/singleton sketch should be 0")
	}
}

func TestSketchQuantileMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		s := sketchOf(sample(r, 150))
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.02 {
			v := s.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSketchExtremes(t *testing.T) {
	s := NewSketch(0, 10, 4)
	for _, x := range []float64{-3, 2, 5, 7, 42} {
		s.Add(x)
	}
	if s.Min() != -3 || s.Max() != 42 {
		t.Errorf("min/max = %v/%v, want -3/42", s.Min(), s.Max())
	}
	if s.Quantile(0) != -3 || s.Quantile(1) != 42 {
		t.Errorf("q0/q1 = %v/%v, want -3/42", s.Quantile(0), s.Quantile(1))
	}
	under, over := s.OutOfRange()
	if under != 1 || over != 1 {
		t.Errorf("out of range = %d/%d, want 1/1", under, over)
	}
	if s.N() != 5 {
		t.Errorf("N = %d, want 5", s.N())
	}
}

func TestSketchEdgeRounding(t *testing.T) {
	s := NewSketch(0, 1, 3)
	s.Add(math.Nextafter(1, 0)) // just below Hi must land in the last bin
	if s.Counts[2] != 1 {
		t.Errorf("edge sample not in last bin: %v", s.Counts)
	}
	if _, over := s.OutOfRange(); over != 0 {
		t.Error("edge sample miscounted as overflow")
	}
}

func TestSketchEmpty(t *testing.T) {
	s := NewSketch(0, 1, 8)
	if !math.IsNaN(s.Quantile(0.5)) || !math.IsNaN(s.Min()) || !math.IsNaN(s.Max()) {
		t.Error("empty sketch should report NaN quantiles and extremes")
	}
	if s.Mean() != 0 {
		t.Error("empty sketch mean should be 0")
	}
	if s.Points(5) != nil {
		t.Error("empty sketch should yield no CDF points")
	}
}

func TestSketchPointsMonotoneAndComplete(t *testing.T) {
	r := xrand.New(7)
	s := sketchOf(sample(r, 500))
	pts := s.Points(12)
	if len(pts) == 0 || len(pts) > 12 {
		t.Fatalf("got %d points, want 1..12", len(pts))
	}
	last := pts[len(pts)-1]
	if last.Y != 1 || last.X != s.Max() {
		t.Errorf("final point = %+v, want (%v, 1)", last, s.Max())
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].Y < pts[i-1].Y {
			t.Fatal("CDF points not monotone")
		}
	}
}

func TestSketchPointsSmallN(t *testing.T) {
	r := xrand.New(3)
	s := sketchOf(sample(r, 200))
	pts := s.Points(1)
	if len(pts) != 1 || pts[0].Y != 1 || pts[0].X != s.Max() {
		t.Errorf("Points(1) = %+v, want [(%v, 1)]", pts, s.Max())
	}
}

func TestSketchMergePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on incompatible sketch merge")
		}
	}()
	NewSketch(0, 10, 4).Merge(NewSketch(0, 10, 8))
}

func TestNewSketchPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for hi <= lo")
		}
	}()
	NewSketch(5, 5, 10)
}

func TestSketchTryMergeMismatch(t *testing.T) {
	cases := []struct {
		name string
		o    *Sketch
	}{
		{"bins", NewSketch(0, 10, 8)},
		{"hi", NewSketch(0, 20, 4)},
		{"lo", NewSketch(1, 10, 4)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewSketch(0, 10, 4)
			s.Add(3)
			tc.o.Add(7)
			before := *s
			if err := s.TryMerge(tc.o); err == nil {
				t.Fatal("TryMerge accepted an incompatible sketch")
			}
			if !reflect.DeepEqual(before.Counts, s.Counts) || before.n != s.n {
				t.Error("failed TryMerge modified the receiver")
			}
		})
	}
}

func TestSketchTryMergeMatchesMerge(t *testing.T) {
	r := xrand.New(11)
	a, b := sketchOf(sample(r, 500)), sketchOf(sample(r, 300))
	viaMerge := sketchOf(nil)
	viaMerge.Merge(a)
	viaMerge.Merge(b)
	viaTry := sketchOf(nil)
	if err := viaTry.TryMerge(a); err != nil {
		t.Fatal(err)
	}
	if err := viaTry.TryMerge(b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaMerge, viaTry) {
		t.Error("TryMerge and Merge diverged on compatible sketches")
	}
}

func TestWelfordTryMerge(t *testing.T) {
	var a, b Welford
	for _, x := range []float64{1, 2, 3} {
		a.Add(x)
	}
	for _, x := range []float64{4, 5} {
		b.Add(x)
	}
	want := a
	want.Merge(b)
	got := a
	if err := got.TryMerge(b); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("TryMerge = %+v, want %+v", got, want)
	}

	bad := []struct {
		name string
		o    Welford
	}{
		{"nan mean", Welford{N: 2, Mean: math.NaN()}},
		{"inf mean", Welford{N: 2, Mean: math.Inf(1)}},
		{"negative m2", Welford{N: 2, Mean: 1, M2: -1}},
		{"nan m2", Welford{N: 2, Mean: 1, M2: math.NaN()}},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			got := a
			if err := got.TryMerge(tc.o); err == nil {
				t.Fatal("TryMerge accepted a corrupt accumulator")
			}
			if got != a {
				t.Error("failed TryMerge modified the receiver")
			}
		})
	}
	t.Run("corrupt receiver", func(t *testing.T) {
		got := Welford{N: 3, Mean: 1, M2: -2}
		if err := got.TryMerge(b); err == nil {
			t.Fatal("TryMerge accepted a corrupt receiver")
		}
	})
	t.Run("empty sides", func(t *testing.T) {
		var e Welford
		if err := e.TryMerge(Welford{}); err != nil {
			t.Fatal(err)
		}
		got := Welford{}
		if err := got.TryMerge(a); err != nil || got != a {
			t.Errorf("empty receiver TryMerge = %+v, %v; want %+v", got, err, a)
		}
	})
}
