// Package stats provides the summary statistics used by the experiment
// harness: empirical CDFs (every occupancy and throughput figure in the
// paper is a CDF), percentiles, means, fixed-width time series for the
// 24-hour deployment logs, and the mergeable aggregates (Sketch,
// Welford) that sharded fleet runs reduce with.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// CDF is an empirical cumulative distribution function over a sample.
// It is immutable once built.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from the sample xs. The input slice is
// copied, so the caller may reuse it.
func NewCDF(xs []float64) *CDF {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the number of samples behind the CDF.
func (c *CDF) N() int { return len(c.sorted) }

// At returns P(X <= x), the fraction of samples at or below x.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// First index with value > x.
	idx := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (0 <= q <= 1) by linear interpolation
// between order statistics. Quantile(0.5) is the median.
func (c *CDF) Quantile(q float64) float64 {
	n := len(c.sorted)
	if n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return c.sorted[lo]
	}
	frac := pos - float64(lo)
	return c.sorted[lo]*(1-frac) + c.sorted[hi]*frac
}

// Mean returns the sample mean.
func (c *CDF) Mean() float64 { return Mean(c.sorted) }

// Points returns up to n evenly spaced (value, cumulative-fraction) points
// suitable for plotting or printing a CDF curve. The final point is always
// (max, 1).
func (c *CDF) Points(n int) []Point {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	if n > len(c.sorted) {
		n = len(c.sorted)
	}
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		idx := (i * (len(c.sorted) - 1)) / maxInt(n-1, 1)
		pts = append(pts, Point{
			X: c.sorted[idx],
			Y: float64(idx+1) / float64(len(c.sorted)),
		})
	}
	return pts
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Point is a generic (x, y) sample used for curves and series.
type Point struct {
	X, Y float64
}

// TimeSeries accumulates (time, value) samples in fixed-width bins, as used
// by the 24-hour home-deployment occupancy logs (60 s resolution in the
// paper). Values within a bin are averaged.
type TimeSeries struct {
	BinWidth float64 // seconds per bin
	sums     []float64
	counts   []int
}

// NewTimeSeries creates a time series with the given bin width (seconds)
// covering [0, horizon) seconds.
func NewTimeSeries(binWidth, horizon float64) *TimeSeries {
	if binWidth <= 0 || horizon <= 0 {
		panic("stats: non-positive time series dimensions")
	}
	n := int(math.Ceil(horizon / binWidth))
	return &TimeSeries{
		BinWidth: binWidth,
		sums:     make([]float64, n),
		counts:   make([]int, n),
	}
}

// Add records a sample at time t (seconds). Samples outside the horizon are
// ignored.
func (ts *TimeSeries) Add(t, v float64) {
	if t < 0 {
		return
	}
	bin := int(t / ts.BinWidth)
	if bin >= len(ts.sums) {
		return
	}
	ts.sums[bin] += v
	ts.counts[bin]++
}

// NumBins returns the number of bins in the series.
func (ts *TimeSeries) NumBins() int { return len(ts.sums) }

// Bin returns the mean value of bin i and whether the bin has any samples.
func (ts *TimeSeries) Bin(i int) (float64, bool) {
	if i < 0 || i >= len(ts.sums) || ts.counts[i] == 0 {
		return 0, false
	}
	return ts.sums[i] / float64(ts.counts[i]), true
}

// Values returns the per-bin means; empty bins yield 0.
func (ts *TimeSeries) Values() []float64 {
	out := make([]float64, len(ts.sums))
	for i := range ts.sums {
		if ts.counts[i] > 0 {
			out[i] = ts.sums[i] / float64(ts.counts[i])
		}
	}
	return out
}

// MeanOfNonEmpty returns the mean over bins that contain samples.
func (ts *TimeSeries) MeanOfNonEmpty() float64 {
	sum, n := 0.0, 0
	for i := range ts.sums {
		if ts.counts[i] > 0 {
			sum += ts.sums[i] / float64(ts.counts[i])
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
