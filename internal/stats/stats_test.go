package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestMeanBasics(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Errorf("Mean = %v, want 4", got)
	}
}

func TestStdDev(t *testing.T) {
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if StdDev([]float64{5}) != 0 {
		t.Error("StdDev of singleton should be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v, want -1/7", Min(xs), Max(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max should be +Inf/-Inf")
	}
}

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {10, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40, 50})
	if got := c.Quantile(0); got != 10 {
		t.Errorf("Quantile(0) = %v, want 10", got)
	}
	if got := c.Quantile(1); got != 50 {
		t.Errorf("Quantile(1) = %v, want 50", got)
	}
	if got := c.Quantile(0.5); got != 30 {
		t.Errorf("median = %v, want 30", got)
	}
	if got := c.Quantile(0.25); got != 20 {
		t.Errorf("Quantile(0.25) = %v, want 20", got)
	}
}

func TestCDFEmptyQuantileIsNaN(t *testing.T) {
	c := NewCDF(nil)
	if !math.IsNaN(c.Quantile(0.5)) {
		t.Error("quantile of empty CDF should be NaN")
	}
	if c.At(3) != 0 {
		t.Error("At on empty CDF should be 0")
	}
}

func TestCDFAtIsMonotone(t *testing.T) {
	// Property: CDF is non-decreasing.
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		xs := make([]float64, 50)
		for i := range xs {
			xs[i] = r.Normal(0, 10)
		}
		c := NewCDF(xs)
		prev := -1.0
		for x := -30.0; x <= 30; x += 0.5 {
			v := c.At(x)
			if v < prev || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCDFQuantileIsMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		xs := make([]float64, 40)
		for i := range xs {
			xs[i] = r.Float64() * 100
		}
		c := NewCDF(xs)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := c.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCDFDoesNotAliasInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	c := NewCDF(xs)
	xs[0] = 999
	if c.Quantile(1) == 999 {
		t.Error("CDF aliased caller slice")
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("got %d points, want 5", len(pts))
	}
	last := pts[len(pts)-1]
	if last.X != 10 || last.Y != 1 {
		t.Errorf("final point = %+v, want (10, 1)", last)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].Y < pts[i-1].Y {
			t.Error("points not monotone")
		}
	}
}

func TestTimeSeriesBinning(t *testing.T) {
	ts := NewTimeSeries(60, 3600)
	if ts.NumBins() != 60 {
		t.Fatalf("NumBins = %d, want 60", ts.NumBins())
	}
	ts.Add(30, 10)
	ts.Add(45, 20)
	ts.Add(61, 5)
	if v, ok := ts.Bin(0); !ok || v != 15 {
		t.Errorf("bin 0 = %v,%v, want 15,true", v, ok)
	}
	if v, ok := ts.Bin(1); !ok || v != 5 {
		t.Errorf("bin 1 = %v,%v, want 5,true", v, ok)
	}
	if _, ok := ts.Bin(2); ok {
		t.Error("bin 2 should be empty")
	}
}

func TestTimeSeriesIgnoresOutOfRange(t *testing.T) {
	ts := NewTimeSeries(60, 120)
	ts.Add(-5, 1)
	ts.Add(500, 1)
	for i := 0; i < ts.NumBins(); i++ {
		if _, ok := ts.Bin(i); ok {
			t.Error("out-of-range sample was recorded")
		}
	}
}

func TestTimeSeriesMeanOfNonEmpty(t *testing.T) {
	ts := NewTimeSeries(1, 10)
	ts.Add(0.5, 4)
	ts.Add(5.5, 8)
	if got := ts.MeanOfNonEmpty(); got != 6 {
		t.Errorf("MeanOfNonEmpty = %v, want 6", got)
	}
	empty := NewTimeSeries(1, 10)
	if empty.MeanOfNonEmpty() != 0 {
		t.Error("MeanOfNonEmpty on empty series should be 0")
	}
}

func TestTimeSeriesValuesLength(t *testing.T) {
	ts := NewTimeSeries(60, 86400)
	vals := ts.Values()
	if len(vals) != 1440 {
		t.Errorf("Values length = %d, want 1440", len(vals))
	}
}
