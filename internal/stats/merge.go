// Mergeable aggregates for sharded simulation runs. A fleet-scale run
// splits its homes across workers; each worker accumulates order-
// independent partial aggregates which are then combined exactly. Two
// kinds are provided:
//
//   - Sketch, a fixed-resolution quantile/CDF sketch whose state is
//     integer bin counts plus exact extremes. Integer addition is
//     associative and commutative, so merging shard sketches in any
//     order is bit-for-bit identical to building one sketch from the
//     concatenated sample.
//
//   - Welford, a running mean/variance with the parallel (Chan et al.)
//     merge. Floating-point accumulation is order-sensitive (and Merge
//     is associative only up to rounding), so callers that need
//     bit-for-bit reproducibility across worker counts must feed it in
//     a fixed order — the fleet reducer Adds per-home scalar summaries
//     in home-index order via its reorder buffer, never from a
//     worker-dependent order.
package stats

import (
	"fmt"
	"math"
)

// Welford is a running mean/variance accumulator with support for
// merging partial accumulators. The zero value is an empty accumulator
// ready for use.
type Welford struct {
	N    uint64
	Mean float64
	M2   float64
}

// Add folds one sample into the accumulator.
func (w *Welford) Add(x float64) {
	w.N++
	delta := x - w.Mean
	w.Mean += delta / float64(w.N)
	w.M2 += delta * (x - w.Mean)
}

// Merge folds another accumulator into this one using the parallel
// variance combination. Merging (a then b) equals adding all of b's
// samples after a's up to floating-point rounding.
func (w *Welford) Merge(o Welford) {
	if o.N == 0 {
		return
	}
	if w.N == 0 {
		*w = o
		return
	}
	n1, n2 := float64(w.N), float64(o.N)
	tot := n1 + n2
	delta := o.Mean - w.Mean
	w.Mean += delta * n2 / tot
	w.M2 += o.M2 + delta*delta*n1*n2/tot
	w.N += o.N
}

// checkMergeable rejects accumulators whose state cannot have come from
// a sequence of Adds: a non-finite mean or sum of squared deviations, a
// negative M2, or a claimed sample count with no consistent moments.
// Merging one would silently poison every downstream aggregate.
func (w Welford) checkMergeable() error {
	if w.N == 0 {
		return nil
	}
	if math.IsNaN(w.Mean) || math.IsInf(w.Mean, 0) {
		return fmt.Errorf("stats: welford accumulator (n=%d) has non-finite mean %v", w.N, w.Mean)
	}
	if math.IsNaN(w.M2) || math.IsInf(w.M2, 0) || w.M2 < 0 {
		return fmt.Errorf("stats: welford accumulator (n=%d) has invalid M2 %v", w.N, w.M2)
	}
	return nil
}

// TryMerge is Merge with explicit validation: both accumulators must be
// well-formed (finite mean, non-negative finite M2). On error the
// receiver is left unchanged; Merge itself performs no validation, so
// shard reducers that cannot tolerate silent corruption should prefer
// TryMerge.
func (w *Welford) TryMerge(o Welford) error {
	if err := w.checkMergeable(); err != nil {
		return err
	}
	if err := o.checkMergeable(); err != nil {
		return err
	}
	w.Merge(o)
	return nil
}

// Variance returns the population variance, or 0 with fewer than two
// samples.
func (w *Welford) Variance() float64 {
	if w.N < 2 {
		return 0
	}
	return w.M2 / float64(w.N)
}

// StdDev returns the population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Sketch is a mergeable fixed-resolution quantile sketch over [Lo, Hi).
// Samples land in equal-width integer-count bins; values outside the
// range are tracked in underflow/overflow counters, and the exact
// minimum and maximum are kept so extreme quantiles stay sharp. All
// derived quantities (quantiles, CDF points, mean) are computed from
// the bin counts alone, so any merge order over the same samples yields
// identical output.
type Sketch struct {
	Lo, Hi float64
	Counts []uint64
	under  uint64
	over   uint64
	minV   float64
	maxV   float64
	n      uint64
}

// NewSketch creates a sketch with the given bounds and bin count. It
// panics if hi <= lo or bins <= 0.
func NewSketch(lo, hi float64, bins int) *Sketch {
	if hi <= lo || bins <= 0 {
		panic(fmt.Sprintf("stats: invalid sketch bounds [%v,%v) bins=%d", lo, hi, bins))
	}
	return &Sketch{Lo: lo, Hi: hi, Counts: make([]uint64, bins)}
}

// Add records one sample.
func (s *Sketch) Add(x float64) {
	if s.n == 0 || x < s.minV {
		s.minV = x
	}
	if s.n == 0 || x > s.maxV {
		s.maxV = x
	}
	s.n++
	switch {
	case x < s.Lo:
		s.under++
	case x >= s.Hi:
		s.over++
	default:
		bin := int((x - s.Lo) / (s.Hi - s.Lo) * float64(len(s.Counts)))
		if bin >= len(s.Counts) { // float rounding at the upper edge
			bin = len(s.Counts) - 1
		}
		s.Counts[bin]++
	}
}

// Merge folds another sketch into this one. Both sketches must share
// bounds and bin count; Merge panics otherwise, since silently mixing
// incompatible resolutions would corrupt every derived quantile.
// TryMerge is the error-returning form for reducers that handle the
// mismatch instead of crashing.
func (s *Sketch) Merge(o *Sketch) {
	if err := s.TryMerge(o); err != nil {
		panic(err.Error())
	}
}

// TryMerge folds another sketch into this one, returning an explicit
// error when the configurations differ (bounds or bin count): mixing
// incompatible resolutions would corrupt every derived quantile, so it
// must never happen silently. On error the receiver is unchanged.
func (s *Sketch) TryMerge(o *Sketch) error {
	if s.Lo != o.Lo || s.Hi != o.Hi || len(s.Counts) != len(o.Counts) {
		return fmt.Errorf("stats: merging incompatible sketches [%v,%v)x%d and [%v,%v)x%d",
			s.Lo, s.Hi, len(s.Counts), o.Lo, o.Hi, len(o.Counts))
	}
	if o.n == 0 {
		return nil
	}
	if s.n == 0 || o.minV < s.minV {
		s.minV = o.minV
	}
	if s.n == 0 || o.maxV > s.maxV {
		s.maxV = o.maxV
	}
	s.n += o.n
	s.under += o.under
	s.over += o.over
	for i, c := range o.Counts {
		s.Counts[i] += c
	}
	return nil
}

// N returns the number of samples recorded.
func (s *Sketch) N() uint64 { return s.n }

// OutOfRange returns the underflow and overflow counts.
func (s *Sketch) OutOfRange() (under, over uint64) { return s.under, s.over }

// Min returns the exact minimum sample, or NaN if empty.
func (s *Sketch) Min() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.minV
}

// Max returns the exact maximum sample, or NaN if empty.
func (s *Sketch) Max() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.maxV
}

// binWidth returns the width of one bin.
func (s *Sketch) binWidth() float64 { return (s.Hi - s.Lo) / float64(len(s.Counts)) }

// Quantile returns the q-th quantile (0 <= q <= 1), linearly
// interpolated within the containing bin and clamped to the exact
// observed extremes. Accuracy is bounded by the bin width. Returns NaN
// for an empty sketch.
//
// Degenerate inputs follow an exact-extremes convention: when no
// sample landed in range (all mass in the underflow/overflow
// counters, as a badly-bounded or coarse-tier subsampled sketch can
// produce), the sketch has no shape information, so ranks inside the
// underflow mass return Min and everything past it returns Max — never
// NaN, and never a fabricated in-range value.
func (s *Sketch) Quantile(q float64) float64 {
	if s.n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return s.minV
	}
	if q >= 1 {
		return s.maxV
	}
	rank := q * float64(s.n-1)
	cum := float64(s.under)
	if rank < cum {
		return s.minV
	}
	w := s.binWidth()
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		fc := float64(c)
		if rank < cum+fc {
			x := s.Lo + w*(float64(i)+(rank-cum)/fc)
			if x < s.minV {
				x = s.minV
			}
			if x > s.maxV {
				x = s.maxV
			}
			return x
		}
		cum += fc
	}
	return s.maxV
}

// Mean returns the sketch's approximate mean: bin midpoints weighted by
// count, with out-of-range samples contributing the exact extremes.
// An empty sketch returns 0 (not NaN — aggregate report rows render
// zeros, not NaNs, for absent populations). With zero in-range counts
// the mean is the count-weighted blend of the two exact extremes.
func (s *Sketch) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	w := s.binWidth()
	sum := float64(s.under)*s.minV + float64(s.over)*s.maxV
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		sum += float64(c) * (s.Lo + w*(float64(i)+0.5))
	}
	return sum / float64(s.n)
}

// StdDev returns the approximate standard deviation from bin midpoints
// weighted by count, with out-of-range samples contributing the exact
// extremes. Accuracy is bounded by the bin width. Fewer than two
// samples return 0. With zero in-range counts the spread degenerates
// to the two-point {Min, Max} distribution — in particular 0 when all
// mass fell on one side, because the per-side detail was never kept.
func (s *Sketch) StdDev() float64 {
	if s.n < 2 {
		return 0
	}
	m := s.Mean()
	w := s.binWidth()
	sum := float64(s.under)*(s.minV-m)*(s.minV-m) + float64(s.over)*(s.maxV-m)*(s.maxV-m)
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		d := s.Lo + w*(float64(i)+0.5) - m
		sum += float64(c) * d * d
	}
	return math.Sqrt(sum / float64(s.n))
}

// Points returns up to n (value, cumulative-fraction) points of the
// empirical CDF, ending at (Max, 1). Non-empty bins map to their upper
// edge; the sequence is monotone in both coordinates. An empty sketch
// (or n <= 0) returns nil — callers plot nothing rather than a
// degenerate curve. A sketch whose samples all fell below Lo still
// ends at (Max, 1): the underflow mass is pinned at (Min, fraction)
// and the curve closes at the exact maximum.
func (s *Sketch) Points(n int) []Point {
	if s.n == 0 || n <= 0 {
		return nil
	}
	w := s.binWidth()
	var pts []Point
	cum := s.under
	if s.under > 0 {
		pts = append(pts, Point{X: s.minV, Y: float64(cum) / float64(s.n)})
	}
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		cum += c
		x := s.Lo + w*float64(i+1)
		if x > s.maxV {
			x = s.maxV
		}
		pts = append(pts, Point{X: x, Y: float64(cum) / float64(s.n)})
	}
	if len(pts) == 0 || pts[len(pts)-1].Y < 1 || pts[len(pts)-1].X < s.maxV {
		// The X check closes the all-underflow curve: its single pinned
		// point (Min, 1) already has Y = 1 but is not the maximum.
		pts = append(pts, Point{X: s.maxV, Y: 1})
	}
	if len(pts) <= n {
		return pts
	}
	if n == 1 {
		return []Point{pts[len(pts)-1]}
	}
	out := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, pts[i*(len(pts)-1)/(n-1)])
	}
	return out
}
