package stats

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestSketchJSONRoundTrip pins the property checkpoint/resume rests
// on: a sketch restored from its JSON form is bit-identical to the
// original, including the unexported out-of-range counters and exact
// extremes, across populated, empty, and all-out-of-range states.
func TestSketchJSONRoundTrip(t *testing.T) {
	populated := NewSketch(0, 10, 20)
	for _, v := range []float64{-3, 0.25, 1.5, 1.5, 7.875, 9.999, 12, 40} {
		populated.Add(v)
	}
	empty := NewSketch(0, 1, 4)
	outOfRange := NewSketch(0, 1, 4)
	outOfRange.Add(-5)
	outOfRange.Add(99)

	for name, src := range map[string]*Sketch{
		"populated":        populated,
		"empty":            empty,
		"all-out-of-range": outOfRange,
	} {
		data, err := json.Marshal(src)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		var got Sketch
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		if !reflect.DeepEqual(&got, src) {
			t.Errorf("%s: round trip altered the sketch: got %+v, want %+v", name, got, *src)
		}
	}
}

// TestSketchJSONRejectsCorruption: a checkpoint that no Add sequence
// could have produced must fail at load, not poison quantiles later.
func TestSketchJSONRejectsCorruption(t *testing.T) {
	for _, tc := range []struct {
		name, in, want string
	}{
		{"inverted bounds", `{"lo":5,"hi":1,"counts":[0],"n":0}`, "invalid bounds"},
		{"no bins", `{"lo":0,"hi":1,"counts":[],"n":0}`, "invalid bounds"},
		{"counter mismatch", `{"lo":0,"hi":1,"counts":[2,1],"under":1,"over":0,"min":0.1,"max":0.9,"n":3}`, "counters sum"},
		{"min above max", `{"lo":0,"hi":1,"counts":[2],"min":0.9,"max":0.1,"n":2}`, "min"},
	} {
		var s Sketch
		err := json.Unmarshal([]byte(tc.in), &s)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}
