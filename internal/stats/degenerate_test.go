package stats

import (
	"math"
	"testing"
)

// The degenerate-input contract, pinned directly: sketches whose mass
// all fell outside [Lo, Hi) — which the coarse tier's subsampled
// sketches make reachable — follow an exact-extremes convention, and
// empty sketches return NaN for order statistics, 0 for moments, and
// nil for CDF points.

func TestSketchEmptySemantics(t *testing.T) {
	s := NewSketch(0, 10, 8)
	if !math.IsNaN(s.Min()) || !math.IsNaN(s.Max()) {
		t.Errorf("empty Min/Max = %v/%v, want NaN/NaN", s.Min(), s.Max())
	}
	for _, q := range []float64{0, 0.5, 1} {
		if v := s.Quantile(q); !math.IsNaN(v) {
			t.Errorf("empty Quantile(%v) = %v, want NaN", q, v)
		}
	}
	if m := s.Mean(); m != 0 {
		t.Errorf("empty Mean = %v, want 0", m)
	}
	if sd := s.StdDev(); sd != 0 {
		t.Errorf("empty StdDev = %v, want 0", sd)
	}
	if pts := s.Points(16); pts != nil {
		t.Errorf("empty Points(16) = %v, want nil", pts)
	}
	if pts := s.Points(0); pts != nil {
		t.Errorf("Points(0) = %v, want nil", pts)
	}
}

func TestSketchAllUnderflow(t *testing.T) {
	s := NewSketch(10, 20, 4)
	for _, x := range []float64{1, 3, 7} {
		s.Add(x)
	}
	if u, o := s.OutOfRange(); u != 3 || o != 0 {
		t.Fatalf("OutOfRange = %d,%d, want 3,0", u, o)
	}
	// Every rank sits inside the underflow mass: quantiles collapse to
	// the exact minimum, except q=1 which is always the exact maximum.
	for _, q := range []float64{0, 0.25, 0.5, 0.99} {
		if v := s.Quantile(q); v != 1 {
			t.Errorf("all-under Quantile(%v) = %v, want exact min 1", q, v)
		}
	}
	if v := s.Quantile(1); v != 7 {
		t.Errorf("all-under Quantile(1) = %v, want exact max 7", v)
	}
	// No in-range detail: Mean is the extreme blend (all mass on min),
	// StdDev is the one-sided degenerate 0.
	if m := s.Mean(); m != 1 {
		t.Errorf("all-under Mean = %v, want 1", m)
	}
	if sd := s.StdDev(); sd != 0 {
		t.Errorf("all-under StdDev = %v, want 0", sd)
	}
	// The CDF still closes at (Max, 1).
	pts := s.Points(8)
	if len(pts) == 0 {
		t.Fatal("all-under Points is empty")
	}
	last := pts[len(pts)-1]
	if last.X != 7 || last.Y != 1 {
		t.Errorf("all-under Points ends at (%v,%v), want (7,1)", last.X, last.Y)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].Y < pts[i-1].Y {
			t.Fatalf("all-under Points not monotone: %v", pts)
		}
	}
}

func TestSketchAllOverflow(t *testing.T) {
	s := NewSketch(0, 1, 4)
	for _, x := range []float64{5, 9, 2} {
		s.Add(x)
	}
	if u, o := s.OutOfRange(); u != 0 || o != 3 {
		t.Fatalf("OutOfRange = %d,%d, want 0,3", u, o)
	}
	// No underflow and no in-range counts: every rank falls through to
	// the exact maximum (q=0 is always the exact minimum).
	if v := s.Quantile(0); v != 2 {
		t.Errorf("all-over Quantile(0) = %v, want exact min 2", v)
	}
	for _, q := range []float64{0.25, 0.5, 1} {
		if v := s.Quantile(q); v != 9 {
			t.Errorf("all-over Quantile(%v) = %v, want exact max 9", q, v)
		}
	}
	if m := s.Mean(); m != 9 {
		t.Errorf("all-over Mean = %v, want 9", m)
	}
	if sd := s.StdDev(); sd != 0 {
		t.Errorf("all-over StdDev = %v, want 0", sd)
	}
	pts := s.Points(8)
	if len(pts) != 1 || pts[0].X != 9 || pts[0].Y != 1 {
		t.Errorf("all-over Points = %v, want [(9,1)]", pts)
	}
}

func TestSketchSplitOutOfRange(t *testing.T) {
	// Mass on both sides, nothing in range: the two-point {Min, Max}
	// distribution. 3 unders at exact min 2, 2 overs at exact max 40.
	s := NewSketch(10, 20, 5)
	for _, x := range []float64{2, 3, 5, 30, 40} {
		s.Add(x)
	}
	// Ranks inside the underflow mass (q*(n-1) < 3) return Min; past
	// it, Max.
	if v := s.Quantile(0.5); v != 2 { // rank 2 < 3
		t.Errorf("split Quantile(0.5) = %v, want 2", v)
	}
	if v := s.Quantile(0.8); v != 40 { // rank 3.2 >= 3
		t.Errorf("split Quantile(0.8) = %v, want 40", v)
	}
	if m, want := s.Mean(), (3*2.0+2*40.0)/5; m != want {
		t.Errorf("split Mean = %v, want %v", m, want)
	}
	if sd := s.StdDev(); sd <= 0 {
		t.Errorf("split StdDev = %v, want > 0 (two-point spread)", sd)
	}
}
