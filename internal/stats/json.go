package stats

import (
	"encoding/json"
	"fmt"
)

// sketchJSON is the wire form of a Sketch. Every field of the live
// struct round-trips: Go's float64 JSON encoding is shortest-round-trip
// exact, and the counts are plain integers, so an unmarshaled sketch is
// bit-identical to the one marshaled — the property the fleet's
// checkpoint/resume machinery rests on.
type sketchJSON struct {
	Lo     float64  `json:"lo"`
	Hi     float64  `json:"hi"`
	Counts []uint64 `json:"counts"`
	Under  uint64   `json:"under"`
	Over   uint64   `json:"over"`
	Min    float64  `json:"min"`
	Max    float64  `json:"max"`
	N      uint64   `json:"n"`
}

// MarshalJSON serializes the sketch's complete state, including the
// unexported out-of-range counters and exact extremes.
func (s *Sketch) MarshalJSON() ([]byte, error) {
	return json.Marshal(sketchJSON{
		Lo: s.Lo, Hi: s.Hi, Counts: s.Counts,
		Under: s.under, Over: s.over,
		Min: s.minV, Max: s.maxV, N: s.n,
	})
}

// UnmarshalJSON restores a sketch marshaled by MarshalJSON, validating
// that the state is one a sequence of Adds could have produced: sane
// bounds, and a sample count consistent with the bin and out-of-range
// counters. A corrupt or hand-edited checkpoint must fail loudly here,
// not poison every derived quantile downstream.
func (s *Sketch) UnmarshalJSON(data []byte) error {
	var sj sketchJSON
	if err := json.Unmarshal(data, &sj); err != nil {
		return err
	}
	if sj.Hi <= sj.Lo || len(sj.Counts) == 0 {
		return fmt.Errorf("stats: sketch JSON has invalid bounds [%v,%v) with %d bins",
			sj.Lo, sj.Hi, len(sj.Counts))
	}
	var inRange uint64
	for _, c := range sj.Counts {
		inRange += c
	}
	if total := inRange + sj.Under + sj.Over; total != sj.N {
		return fmt.Errorf("stats: sketch JSON claims n=%d but its counters sum to %d", sj.N, total)
	}
	if sj.N > 0 && sj.Min > sj.Max {
		return fmt.Errorf("stats: sketch JSON has min %v > max %v", sj.Min, sj.Max)
	}
	*s = Sketch{
		Lo: sj.Lo, Hi: sj.Hi, Counts: sj.Counts,
		under: sj.Under, over: sj.Over,
		minV: sj.Min, maxV: sj.Max, n: sj.N,
	}
	return nil
}
