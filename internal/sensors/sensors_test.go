package sensors

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/xrand"
)

func TestTemperatureSensorEnergyPerRead(t *testing.T) {
	s := NewTemperatureSensor()
	if s.ReadEnergyJ != 2.77e-6 {
		t.Errorf("read energy = %v, want 2.77 µJ (§5.1)", s.ReadEnergyJ)
	}
}

func TestUpdateRateLinearInPower(t *testing.T) {
	s := NewTemperatureSensor()
	// 27.7 µW harvested = 10 reads/s at 2.77 µJ each.
	if got := s.UpdateRate(27.7e-6); math.Abs(got-10) > 1e-9 {
		t.Errorf("UpdateRate(27.7µW) = %v, want 10", got)
	}
}

func TestUpdateRateSaturates(t *testing.T) {
	s := NewTemperatureSensor()
	if got := s.UpdateRate(1); got != s.MaxRate {
		t.Errorf("saturated rate = %v, want MaxRate %v", got, s.MaxRate)
	}
}

func TestUpdateRateZeroAndNegative(t *testing.T) {
	s := NewTemperatureSensor()
	if s.UpdateRate(0) != 0 || s.UpdateRate(-1e-6) != 0 {
		t.Error("non-positive power must yield zero rate")
	}
}

func TestTimeBetweenReadsInverse(t *testing.T) {
	s := NewTemperatureSensor()
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		p := r.Uniform(1e-7, 5e-5)
		rate := s.UpdateRate(p)
		interval := s.TimeBetweenReads(p)
		return math.Abs(rate*interval.Seconds()-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTimeBetweenReadsUnpowered(t *testing.T) {
	s := NewTemperatureSensor()
	if got := s.TimeBetweenReads(0); got < time.Duration(math.MaxInt64) {
		t.Errorf("unpowered interval = %v, want effectively infinite", got)
	}
}

func TestCameraFrameEnergy(t *testing.T) {
	c := NewCamera()
	if c.FrameEnergyJ != 10.4e-3 {
		t.Errorf("frame energy = %v, want 10.4 mJ (§5.2)", c.FrameEnergyJ)
	}
}

func TestCameraQCIFFitsFRAM(t *testing.T) {
	c := NewCamera()
	if c.FrameBytes() != 176*144 {
		t.Errorf("frame bytes = %d, want 25344", c.FrameBytes())
	}
	if c.FrameBytes() > c.MCU.FRAMBytes {
		t.Error("QCIF frame must fit the MSP430's 64 KB FRAM (the reason the paper picks QCIF)")
	}
}

func TestSupercapWindowCoversOneFrame(t *testing.T) {
	// ½·6.8mF·(3.1² − 2.4²) ≈ 13.1 mJ — just above one 10.4 mJ capture,
	// which is why the TI chip's 3.1 V/2.4 V window works.
	c := NewCamera()
	e := c.UsableStorageJ()
	if e < c.FrameEnergyJ {
		t.Errorf("usable storage %v J below one frame %v J", e, c.FrameEnergyJ)
	}
	if math.Abs(e-13.09e-3) > 0.2e-3 {
		t.Errorf("usable storage = %v J, want about 13.1 mJ", e)
	}
}

func TestInterFrameTimeInverse(t *testing.T) {
	c := NewCamera()
	// 10.4 mJ at 10 µW = 1040 s.
	got := c.InterFrameTime(10e-6)
	want := time.Duration(1040 * float64(time.Second))
	if math.Abs(got.Seconds()-want.Seconds()) > 1 {
		t.Errorf("inter-frame = %v, want about %v", got, want)
	}
}

func TestInterFrameTimeUnpowered(t *testing.T) {
	c := NewCamera()
	if c.InterFrameTime(0) < time.Duration(math.MaxInt64) {
		t.Error("unpowered camera must never capture")
	}
	if c.FramesPerHour(0) != 0 {
		t.Error("unpowered camera frames/hour must be 0")
	}
}

func TestFramesPerHourConsistent(t *testing.T) {
	c := NewCamera()
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		p := r.Uniform(1e-6, 1e-4)
		fph := c.FramesPerHour(p)
		ift := c.InterFrameTime(p)
		return math.Abs(fph*ift.Hours()-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMSP430Parameters(t *testing.T) {
	m := NewMSP430()
	if m.MinVoltage != 1.9 {
		t.Errorf("MSP430 min voltage = %v, want 1.9 (§5.1)", m.MinVoltage)
	}
	if m.BootTime > 2*time.Millisecond {
		t.Errorf("boot time = %v, want <= 2 ms", m.BootTime)
	}
}

func TestMonotonicity(t *testing.T) {
	s := NewTemperatureSensor()
	c := NewCamera()
	prevRate, prevIFT := -1.0, math.Inf(1)
	for p := 1e-7; p < 1e-4; p *= 1.5 {
		rate := s.UpdateRate(p)
		if rate < prevRate {
			t.Fatalf("update rate decreased at %v W", p)
		}
		prevRate = rate
		ift := c.InterFrameTime(p).Seconds()
		if ift > prevIFT {
			t.Fatalf("inter-frame time increased at %v W", p)
		}
		prevIFT = ift
	}
}

func TestUARTTransmitTime(t *testing.T) {
	u := NewUART()
	// 12 bytes at 9600 baud with 10 bits/byte = 12.5 ms.
	got := u.TransmitTime(12)
	want := 12500 * time.Microsecond
	if got != want {
		t.Errorf("transmit time = %v, want %v", got, want)
	}
	if u.TransmitTime(0) != 0 {
		t.Error("empty payload should take no time")
	}
}

func TestReadingFrameFormat(t *testing.T) {
	r := Reading{Seq: 7, MilliC: 21500}
	if got := r.Frame(); got != "T,7,21500\r\n" {
		t.Errorf("frame = %q", got)
	}
}

func TestUARTFrameFitsBetweenReadings(t *testing.T) {
	// A reading's UART frame must serialize far faster than the fastest
	// update interval (1/40 s), or the firmware could not keep up.
	u := NewUART()
	r := Reading{Seq: 9999, MilliC: -40000}
	frameTime := u.TransmitTime(len(r.Frame()))
	s := NewTemperatureSensor()
	if frameTime >= time.Duration(float64(time.Second)/s.MaxRate) {
		t.Errorf("UART frame time %v exceeds the max-rate interval", frameTime)
	}
}
