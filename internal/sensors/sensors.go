// Package sensors models the Wi-Fi-powered devices of §5: the battery-free
// and battery-recharging temperature sensor (LMT84 + MSP430FR5969) and the
// camera (OV7670 + MSP430FR5969), plus the microcontroller they share.
//
// The paper's headline per-operation energies anchor everything here:
// 2.77 µJ per temperature measurement + UART transmission, and 10.4 mJ per
// QCIF image capture. Update rates (Fig. 11) and inter-frame times
// (Figs. 12/13) are the ratio of net harvested power to these quantities,
// subject to the storage element's charge/discharge windows.
package sensors

import (
	"fmt"
	"math"
	"time"
)

// MSP430FR5969 models the prototypes' microcontroller.
type MSP430FR5969 struct {
	// MinVoltage is the minimum supply for 1 MHz operation (1.9 V).
	MinVoltage float64
	// BootTime is the cold-boot latency (< 2 ms).
	BootTime time.Duration
	// FRAMBytes is the non-volatile storage available for image data.
	FRAMBytes int
}

// NewMSP430 returns the datasheet parameters used in §5.
func NewMSP430() MSP430FR5969 {
	return MSP430FR5969{
		MinVoltage: 1.9,
		BootTime:   2 * time.Millisecond,
		FRAMBytes:  64 * 1024,
	}
}

// TemperatureSensor is the LMT84-based sensing application.
type TemperatureSensor struct {
	MCU MSP430FR5969
	// ReadEnergyJ is the energy of one measurement plus UART transmission
	// (2.77 µJ, §5.1).
	ReadEnergyJ float64
	// MaxRate bounds the update rate at saturation: the firmware's
	// measure-transmit loop takes about 25 ms end to end, so the sensor
	// cannot exceed ~40 reads/s regardless of harvested power (the Fig. 11
	// plateau near the router).
	MaxRate float64
}

// NewTemperatureSensor returns the §5.1 configuration.
func NewTemperatureSensor() *TemperatureSensor {
	return &TemperatureSensor{
		MCU:         NewMSP430(),
		ReadEnergyJ: 2.77e-6,
		MaxRate:     40,
	}
}

// UpdateRate returns the energy-neutral update rate (reads/second) for a
// net harvested power. This is the quantity Figs. 11 and 15 plot: the
// ratio of incoming power to the 2.77 µJ per-operation energy.
func (t *TemperatureSensor) UpdateRate(netHarvestedW float64) float64 {
	if netHarvestedW <= 0 {
		return 0
	}
	rate := netHarvestedW / t.ReadEnergyJ
	return math.Min(rate, t.MaxRate)
}

// TimeBetweenReads returns the interval between successive sensor readings
// at the given net harvested power, or +Inf when the sensor cannot run.
func (t *TemperatureSensor) TimeBetweenReads(netHarvestedW float64) time.Duration {
	rate := t.UpdateRate(netHarvestedW)
	if rate <= 0 {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(float64(time.Second) / rate)
}

// Camera is the OV7670-based imaging application of §5.2.
type Camera struct {
	MCU MSP430FR5969
	// FrameEnergyJ is the per-image capture energy (10.4 mJ).
	FrameEnergyJ float64
	// MinVoltage is the image sensor's supply floor (2.4 V).
	MinVoltage float64
	// ActivePowerW is the sensor's active-mode consumption (60 mW).
	ActivePowerW float64
	// Width and Height are the configured QCIF gray-scale resolution.
	Width, Height int
	// SupercapChargeV is the storage voltage at which the TI chip enables
	// the buck converter (3.1 V).
	SupercapChargeV float64
	// SupercapCutoffV is the voltage at which capture stops (2.4 V).
	SupercapCutoffV float64
	// SupercapF is the AVX BestCap storage capacitance (6.8 mF).
	SupercapF float64
}

// NewCamera returns the §5.2 configuration.
func NewCamera() *Camera {
	return &Camera{
		MCU:             NewMSP430(),
		FrameEnergyJ:    10.4e-3,
		MinVoltage:      2.4,
		ActivePowerW:    60e-3,
		Width:           176,
		Height:          144,
		SupercapChargeV: 3.1,
		SupercapCutoffV: 2.4,
		SupercapF:       6.8e-3,
	}
}

// FrameBytes returns the gray-scale frame size; it must fit the MCU's
// 64 KB FRAM, which is why the paper selects QCIF.
func (c *Camera) FrameBytes() int { return c.Width * c.Height }

// UsableStorageJ returns the energy the supercapacitor delivers per charge
// window (from the 3.1 V release down to the 2.4 V cutoff):
// ½C(V₁²−V₂²) ≈ 13 mJ for the paper's values, just above one frame.
func (c *Camera) UsableStorageJ() float64 {
	return 0.5 * c.SupercapF * (c.SupercapChargeV*c.SupercapChargeV - c.SupercapCutoffV*c.SupercapCutoffV)
}

// InterFrameTime returns the time between captures at the given net
// harvested power: the camera must bank FrameEnergyJ (plus the relative
// overhead of recharging the supercap window) before each shot. Returns
// +Inf when the power cannot sustain capture.
func (c *Camera) InterFrameTime(netHarvestedW float64) time.Duration {
	if netHarvestedW <= 0 {
		return time.Duration(math.MaxInt64)
	}
	secs := c.FrameEnergyJ / netHarvestedW
	return time.Duration(secs * float64(time.Second))
}

// FramesPerHour returns the capture rate at the given net harvested power.
func (c *Camera) FramesPerHour(netHarvestedW float64) float64 {
	ift := c.InterFrameTime(netHarvestedW)
	if ift >= time.Duration(math.MaxInt64) {
		return 0
	}
	return float64(time.Hour) / float64(ift)
}

// UART models the serial port the prototypes report through (§5.1: "the
// microcontroller boots, samples the temperature sensor, and transmits the
// reading through a UART port").
type UART struct {
	// BaudRate in bits per second (9600 on the prototypes).
	BaudRate int
	// BitsPerByte covers start + 8 data + stop bits.
	BitsPerByte int
}

// NewUART returns the prototypes' 9600-baud configuration.
func NewUART() *UART {
	return &UART{BaudRate: 9600, BitsPerByte: 10}
}

// TransmitTime returns the serialization time of a payload.
func (u *UART) TransmitTime(bytes int) time.Duration {
	if bytes <= 0 || u.BaudRate <= 0 {
		return 0
	}
	secs := float64(bytes*u.BitsPerByte) / float64(u.BaudRate)
	return time.Duration(secs * float64(time.Second))
}

// Reading is one temperature measurement as emitted over the UART.
type Reading struct {
	Seq       int
	MilliC    int
	Harvested bool
}

// Frame renders the reading in the firmware's compact wire format.
func (r Reading) Frame() string {
	return fmt.Sprintf("T,%d,%d\r\n", r.Seq, r.MilliC)
}
