// Package harvester assembles the full PoWiFi energy-harvesting chain of
// §3.1/Fig. 4: antenna → LC matching network → Schottky voltage-doubler
// rectifier → DC–DC converter → storage element → sensor load.
//
// Two assemblies mirror the paper's two prototypes:
//
//   - the battery-free version (Seiko S-882Z charge pump, storage
//     capacitor, 300 mV cold-start threshold, 2.4 V release), and
//   - the battery-recharging version (TI bq25570 boost converter with
//     MPPT, recharging a NiMH pack or a Li-Ion coin cell).
//
// The package also provides the storage-element models (capacitors with
// leakage, the AVX BestCap supercapacitor, NiMH and Li-Ion cells) and a
// transient stepper used to regenerate the Fig. 1 voltage trace.
package harvester

import (
	"fmt"
	"math"
	"time"
)

// Storage is an energy store that the harvesting chain charges and sensor
// loads discharge.
type Storage interface {
	// Voltage returns the present terminal voltage in volts.
	Voltage() float64
	// StoredEnergy returns the usable stored energy in joules.
	StoredEnergy() float64
	// Charge adds energy (joules) at the storage's charge-acceptance
	// efficiency and returns the energy actually stored.
	Charge(j float64) float64
	// Discharge removes up to j joules and returns the energy actually
	// delivered.
	Discharge(j float64) float64
}

// Capacitor is an ideal-dielectric capacitor with a parallel leakage
// resistance. It is used both for the rectifier's output node (tens of
// nanofarads) and the Seiko converter's storage capacitor.
type Capacitor struct {
	// C is the capacitance in farads.
	C float64
	// LeakR is the parallel leakage resistance in ohms (0 = no leakage).
	LeakR float64
	// V is the present voltage.
	V float64
}

// Voltage implements Storage.
func (c *Capacitor) Voltage() float64 { return c.V }

// StoredEnergy implements Storage.
func (c *Capacitor) StoredEnergy() float64 { return 0.5 * c.C * c.V * c.V }

// Charge implements Storage. Capacitors store charge without conversion
// loss in this model; converter losses are accounted upstream.
func (c *Capacitor) Charge(j float64) float64 {
	if j <= 0 {
		return 0
	}
	e := c.StoredEnergy() + j
	c.V = math.Sqrt(2 * e / c.C)
	return j
}

// Discharge implements Storage.
func (c *Capacitor) Discharge(j float64) float64 {
	if j <= 0 {
		return 0
	}
	e := c.StoredEnergy()
	if j > e {
		j = e
	}
	c.V = math.Sqrt(2 * (e - j) / c.C)
	return j
}

// Step advances the capacitor by dt seconds with a net charging current
// iIn amperes (negative to discharge), applying leakage. The voltage never
// goes below zero.
func (c *Capacitor) Step(dt, iIn float64) {
	leak := 0.0
	if c.LeakR > 0 {
		leak = c.V / c.LeakR
	}
	c.V += (iIn - leak) * dt / c.C
	if c.V < 0 {
		c.V = 0
	}
}

// NewBestCap returns the AVX BestCap 6.8 mF ultra-low-leakage
// supercapacitor used by the battery-free camera (§5.2).
func NewBestCap() *Capacitor {
	return &Capacitor{C: 6.8e-3, LeakR: 10e6}
}

// Battery is a rechargeable cell with state of charge tracked in joules.
type Battery struct {
	// Name labels the chemistry for display.
	Name string
	// NominalV is the cell's nominal terminal voltage.
	NominalV float64
	// CapacityJ is the full-charge energy in joules.
	CapacityJ float64
	// ChargeEff is the charge-acceptance efficiency in (0, 1].
	ChargeEff float64
	// SelfDischargePerDay is the fraction of stored energy lost per day.
	SelfDischargePerDay float64
	// stored is the present stored energy in joules.
	stored float64
}

// NewNiMHPack returns the paper's 2×AAA Panasonic 750 mAh NiMH pack at a
// 2.4 V nominal pack voltage (§5.1). Capacity = 0.750 Ah · 3600 · 2.4 V.
func NewNiMHPack() *Battery {
	return &Battery{
		Name:                "NiMH 2xAAA 750mAh",
		NominalV:            2.4,
		CapacityJ:           0.750 * 3600 * 2.4,
		ChargeEff:           0.70,
		SelfDischargePerDay: 0.0005, // low-self-discharge chemistry
	}
}

// NewLiIonCoinCell returns the Seiko MS412FE 1 mAh rechargeable lithium
// coin cell at 3.0 V used by the battery-recharging camera (§5.2).
func NewLiIonCoinCell() *Battery {
	return &Battery{
		Name:                "Li-Ion MS412FE 1mAh",
		NominalV:            3.0,
		CapacityJ:           0.001 * 3600 * 3.0,
		ChargeEff:           0.85,
		SelfDischargePerDay: 0.0002,
	}
}

// NewJawboneUP24Battery returns the Jawbone UP24 activity tracker's
// battery as recharged in the §8(a) USB-charger demonstration. The
// effective capacity is back-derived from the paper's own numbers
// (2.3 mA average for 2.5 h reaching 41%% charge implies about 14 mAh of
// accessible capacity at the charger's termination point).
func NewJawboneUP24Battery() *Battery {
	return &Battery{
		Name:                "Jawbone UP24 14mAh",
		NominalV:            3.8,
		CapacityJ:           0.014 * 3600 * 3.8,
		ChargeEff:           0.90,
		SelfDischargePerDay: 0.0002,
	}
}

// Voltage implements Storage. The terminal voltage follows a mild linear
// slope with state of charge around the nominal voltage (±5%), enough to
// drive the charger models without a full electrochemical curve.
func (b *Battery) Voltage() float64 {
	soc := b.SoC()
	return b.NominalV * (0.95 + 0.10*soc)
}

// StoredEnergy implements Storage.
func (b *Battery) StoredEnergy() float64 { return b.stored }

// SoC returns the state of charge in [0, 1].
func (b *Battery) SoC() float64 {
	if b.CapacityJ <= 0 {
		return 0
	}
	return b.stored / b.CapacityJ
}

// SetSoC sets the state of charge, clamped to [0, 1].
func (b *Battery) SetSoC(soc float64) {
	soc = math.Max(0, math.Min(1, soc))
	b.stored = soc * b.CapacityJ
}

// Charge implements Storage, applying the charge-acceptance efficiency and
// clamping at full capacity.
func (b *Battery) Charge(j float64) float64 {
	if j <= 0 {
		return 0
	}
	in := j * b.ChargeEff
	room := b.CapacityJ - b.stored
	if in > room {
		in = room
	}
	b.stored += in
	return in
}

// Discharge implements Storage.
func (b *Battery) Discharge(j float64) float64 {
	if j <= 0 {
		return 0
	}
	if j > b.stored {
		j = b.stored
	}
	b.stored -= j
	return j
}

// SelfDischarge applies dt seconds of self-discharge. Non-positive dt
// is a no-op (time never runs backwards through the ledger), and the
// loss factor clamps at zero so a pathologically long step empties the
// battery instead of flipping the stored energy negative.
func (b *Battery) SelfDischarge(dt float64) {
	if dt <= 0 {
		return
	}
	f := 1 - b.SelfDischargePerDay*dt/86400
	if f < 0 {
		f = 0
	}
	b.stored *= f
	if b.stored < 0 {
		b.stored = 0
	}
}

// ConstantPowerChargeTime returns the time to bring the battery from
// fromSoC to toSoC at a constant net charging power, or +Inf (as the
// maximum Duration) when netW <= 0 or toSoC <= fromSoC. It is the
// closed form of the lifecycle ledger's per-bin integration: Charge
// applies ChargeEff and clamps at capacity, so stepping a constant
// power through the ledger sums to exactly this energy — both
// core.BatteryChargeTime and internal/lifecycle route through this one
// implementation so the shortcut and the stateful engine cannot
// diverge.
func (b *Battery) ConstantPowerChargeTime(fromSoC, toSoC, netW float64) time.Duration {
	if netW <= 0 || toSoC <= fromSoC {
		return time.Duration(math.MaxInt64)
	}
	energy := (toSoC - fromSoC) * b.CapacityJ / b.ChargeEff
	return time.Duration(energy / netW * float64(time.Second))
}

// String describes the battery and its state of charge.
func (b *Battery) String() string {
	return fmt.Sprintf("%s @ %.0f%%", b.Name, b.SoC()*100)
}
