package harvester

import (
	"math"

	"repro/internal/diode"
	"repro/internal/rf"
	"repro/internal/units"
)

// Version selects between the paper's two harvester designs.
type Version int

// The two prototype versions of §3.1/Fig. 4.
const (
	// BatteryFree boots from 0 V through the Seiko S-882Z charge pump
	// (6.8 nH / 1.5 pF matching network).
	BatteryFree Version = iota
	// BatteryCharging uses the TI bq25570 with a pre-charged battery, so
	// no cold start is needed (6.8 nH / 1.3 pF matching network).
	BatteryCharging
)

// String returns the paper's name for the version.
func (v Version) String() string {
	if v == BatteryFree {
		return "battery-free"
	}
	return "battery-recharging"
}

// Harvester is a complete PoWiFi harvesting front end: matching network,
// voltage-doubler rectifier and DC–DC converter. It converts incident RF
// power on the 2.4 GHz band into DC power at the converter output.
//
// The harvester is deliberately oblivious to packet boundaries: its input
// is simply incident power versus time, which is the property the PoWiFi
// router design exploits (§3: "the harvester cannot distinguish between
// useful client traffic and superfluous power traffic").
type Harvester struct {
	Version Version
	Match   rf.MatchingNetwork
	Rect    diode.Doubler
	Seiko   *SeikoS882Z // set for BatteryFree
	BQ      *BQ25570    // set for BatteryCharging

	// CalibrationDBm is the drive level at which the design-point input
	// impedance (and hence Fig. 9's VNA-style return loss) is evaluated.
	CalibrationDBm float64
}

// NewBatteryFree returns the battery-free harvester: high-pass L-section
// matching (the paper's 6.8 nH Coilcraft inductor as the shunt element;
// the series capacitor re-derived for this circuit model — see DESIGN.md),
// SMS7630 doubler, and the Seiko S-882Z charge pump. Calibrated to the
// paper's measured -17.8 dBm sensitivity and sub -10 dB in-band return
// loss (Figs. 9a/10a).
func NewBatteryFree() *Harvester {
	return &Harvester{
		Version: BatteryFree,
		Match:   rf.HighPassLSection{SeriesC: 0.29e-12, ShuntL: 6.8e-9, InductorQ: 100},
		Rect: diode.Doubler{
			Diode:  diode.SMS7630(),
			FreqHz: 2.437e9,
			PadCj:  0.20e-12,
		},
		Seiko:          NewSeikoS882Z(),
		CalibrationDBm: -10,
	}
}

// NewBatteryCharging returns the battery-recharging harvester: high-pass
// L-section matching around the same 6.8 nH inductor, SMS7630 doubler, and
// the TI bq25570 with its MPPT reference at 200 mV (§3.1). Calibrated to
// the paper's measured -19.3 dBm sensitivity (Figs. 9b/10b).
func NewBatteryCharging() *Harvester {
	return &Harvester{
		Version: BatteryCharging,
		Match:   rf.HighPassLSection{SeriesC: 0.40e-12, ShuntL: 6.8e-9, InductorQ: 100},
		Rect: diode.Doubler{
			Diode:  diode.SMS7630(),
			FreqHz: 2.437e9,
			PadCj:  0.15e-12,
		},
		BQ:             NewBQ25570(),
		CalibrationDBm: -10,
	}
}

// converterLoad returns the DC load line i(v) the converter presents to
// the rectifier output.
func (h *Harvester) converterLoad() func(v float64) float64 {
	if h.Version == BatteryFree {
		return h.Seiko.InputCurrent
	}
	return h.BQ.InputCurrent
}

// ConverterLoad exposes the converter's DC load line i(v) so the
// operating-point surface can tabulate the rectifier solve against the
// very load the exact solver uses.
func (h *Harvester) ConverterLoad() func(v float64) float64 { return h.converterLoad() }

// rectifierImpedance returns the complex input impedance of the rectifier
// (series equivalent of the solver's parallel R with the junction + pad
// capacitance) when it accepts pacc watts at freqHz with its output at
// vout volts.
func (h *Harvester) rectifierImpedance(pacc, vout, freqHz float64) rf.Impedance {
	return h.RectifierSeriesImpedance(h.Rect.InputResistance(pacc, vout), freqHz)
}

// RectifierSeriesImpedance converts a rectifier parallel input resistance
// rp into the series-equivalent complex impedance at freqHz, folding in
// the junction + pad capacitance. It is the impedance half of the
// operating-point solve, split out so a precomputed rp (for example from
// internal/surface's interpolation tables) can reuse the exact
// parallel-to-series conversion.
func (h *Harvester) RectifierSeriesImpedance(rp, freqHz float64) rf.Impedance {
	cp := h.Rect.InputCapacitance()
	xp := 1 / (2 * math.Pi * freqHz * cp)
	if math.IsInf(rp, 1) {
		// Unpowered rectifier: purely capacitive.
		return complex(0, -xp)
	}
	// Parallel Rp ∥ Cp to series equivalent.
	q := rp / xp
	rs := rp / (1 + q*q)
	xs := xp * q * q / (1 + q*q)
	return complex(rs, -xs)
}

// AcceptedPower returns the RF power accepted into the rectifier for an
// incident power at freqHz, resolving the circular dependence between the
// rectifier's drive-dependent impedance and the matching network's
// transfer fraction by fixed-point iteration.
func (h *Harvester) AcceptedPower(incidentW, freqHz float64) float64 {
	if incidentW <= 0 {
		return 0
	}
	load := h.converterLoad()
	acc := 0.8 * incidentW
	for i := 0; i < 8; i++ {
		vout, _ := h.Rect.OperatingPoint(acc, load)
		z := h.rectifierImpedance(acc, vout, freqHz)
		frac := h.Match.PowerTransferFraction(z, freqHz)
		next := incidentW * frac
		if math.Abs(next-acc) < 1e-12 {
			acc = next
			break
		}
		acc = 0.5*acc + 0.5*next // damped update for stability
	}
	return acc
}

// ReturnLossDB returns the harvester's VNA-measured return loss at freqHz
// (Fig. 9): the input match evaluated at the calibration drive level with
// the converter connected, exactly as the paper measures it.
func (h *Harvester) ReturnLossDB(freqHz float64) float64 {
	pacc := h.AcceptedPower(units.DBmToWatts(h.CalibrationDBm), freqHz)
	vout, _ := h.Rect.OperatingPoint(pacc, h.converterLoad())
	z := h.rectifierImpedance(pacc, vout, freqHz)
	return h.Match.ReturnLossDB(z, freqHz)
}

// Operating describes the harvester's steady-state DC operating point.
type Operating struct {
	// AcceptedW is the RF power entering the rectifier after mismatch.
	AcceptedW float64
	// VRect is the rectifier output voltage.
	VRect float64
	// IRect is the DC current into the converter.
	IRect float64
	// RectDCW is VRect·IRect, the paper's "available power at the
	// rectifier output" (Fig. 10).
	RectDCW float64
	// HarvestedW is the power delivered past the converter: into the
	// storage capacitor (battery-free) or the battery net of quiescent
	// draw (battery-recharging).
	HarvestedW float64
}

// OperatingPoint returns the steady-state operating point for a single
// carrier of incidentW watts at freqHz.
func (h *Harvester) OperatingPoint(incidentW, freqHz float64) Operating {
	acc := h.AcceptedPower(incidentW, freqHz)
	load := h.converterLoad()
	v, i := h.Rect.OperatingPoint(acc, load)
	return Operating{AcceptedW: acc, VRect: v, IRect: i, RectDCW: v * i,
		HarvestedW: h.ConverterHarvest(v, i)}
}

// ConverterHarvest maps a rectifier DC operating point (vout, iout) to the
// power delivered past this harvester's DC–DC converter: through the Seiko
// pump for the battery-free version, through the bq25570 (net of quiescent
// draw) for the battery-recharging version.
func (h *Harvester) ConverterHarvest(v, i float64) float64 {
	if h.Version == BatteryFree {
		return h.Seiko.OutputPower(v)
	}
	return h.BQ.NetChargePower(v, i)
}

// ChannelPower is incident RF power on one Wi-Fi channel.
type ChannelPower struct {
	FreqHz float64
	PowerW float64
}

// MultiChannelOperatingPoint returns the operating point when power
// arrives simultaneously on several Wi-Fi channels (the PoWiFi router
// transmits on channels 1, 6 and 11). Accepted powers superpose at the
// rectifier input — the harvester is a wideband envelope detector and
// cannot distinguish the channels, which is the multi-channel design goal
// of §3.1.
func (h *Harvester) MultiChannelOperatingPoint(chans []ChannelPower) Operating {
	if len(chans) == 0 {
		return Operating{}
	}
	// Fixed point over the total accepted power: each channel's transfer
	// fraction is evaluated at its own frequency against the impedance set
	// by the total drive.
	load := h.converterLoad()
	total := 0.0
	for _, c := range chans {
		total += 0.8 * c.PowerW
	}
	for iter := 0; iter < 8; iter++ {
		vout, _ := h.Rect.OperatingPoint(total, load)
		next := 0.0
		for _, c := range chans {
			if c.PowerW <= 0 {
				continue
			}
			z := h.rectifierImpedance(total, vout, c.FreqHz)
			next += c.PowerW * h.Match.PowerTransferFraction(z, c.FreqHz)
		}
		if math.Abs(next-total) < 1e-12 {
			total = next
			break
		}
		total = 0.5*total + 0.5*next
	}
	v, i := h.Rect.OperatingPoint(total, load)
	return Operating{AcceptedW: total, VRect: v, IRect: i, RectDCW: v * i,
		HarvestedW: h.ConverterHarvest(v, i)}
}

// CanOperate reports whether the harvester sustains useful output at the
// given single-carrier incident power. The battery-free version must pull
// the rectifier up to the Seiko's 300 mV startup threshold against the
// pump's idle leak (once started, the pump runs in bursts even if its full
// draw would sag the node). The battery-recharging version must achieve
// positive net charge power.
func (h *Harvester) CanOperate(incidentW, freqHz float64) bool {
	if h.Version == BatteryFree {
		return h.StartupVoltage(incidentW, freqHz) >= h.Seiko.StartupV
	}
	op := h.OperatingPoint(incidentW, freqHz)
	return op.HarvestedW > 0
}

// StartupVoltage returns the rectifier output voltage reached under the
// Seiko pump's pre-start idle leak only, resolving the impedance fixed
// point for that light load. This is the quantity the cold-start boot
// check compares against the pump's 300 mV threshold.
func (h *Harvester) StartupVoltage(incidentW, freqHz float64) float64 {
	if incidentW <= 0 {
		return 0
	}
	load := func(v float64) float64 { return h.Seiko.IdleLeakA }
	acc := 0.8 * incidentW
	for i := 0; i < 8; i++ {
		vout, _ := h.Rect.OperatingPoint(acc, load)
		z := h.rectifierImpedance(acc, vout, freqHz)
		next := incidentW * h.Match.PowerTransferFraction(z, freqHz)
		if math.Abs(next-acc) < 1e-12 {
			acc = next
			break
		}
		acc = 0.5*acc + 0.5*next
	}
	v, _ := h.Rect.OperatingPoint(acc, load)
	return v
}

// SensitivityDBm returns the minimum incident power (dBm) at freqHz at
// which the harvester operates, found by bisection. The paper measures
// −17.8 dBm for the battery-free version and −19.3 dBm for the
// battery-recharging version (§4.2).
func (h *Harvester) SensitivityDBm(freqHz float64) float64 {
	lo, hi := -40.0, 10.0
	if !h.CanOperate(units.DBmToWatts(hi), freqHz) {
		return math.Inf(1)
	}
	if h.CanOperate(units.DBmToWatts(lo), freqHz) {
		return lo
	}
	for i := 0; i < 50; i++ {
		mid := (lo + hi) / 2
		if h.CanOperate(units.DBmToWatts(mid), freqHz) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return (lo + hi) / 2
}

// BurstyOperating evaluates the harvester under on/off packet-burst drive,
// the regime every PoWiFi device actually lives in: each channel carries
// its full received power for occupancy-fraction of the time and silence
// otherwise. chans must carry the FULL per-channel received powers, and
// occupancy the per-channel airtime fractions (aligned by index).
//
// The rectifier output capacitor (47 nF against the pump's idle leak,
// τ ≈ 1.3 ms) smooths across the sub-millisecond gaps between packets, so
// during the "any channel active" fraction of time the node is driven by
// the conditional mean of the active power, and it droops by
// leak·gap/C across the silent gaps. Concentrating the same average power
// into bursts helps the nonlinear rectifier — one reason the paper's
// high-cumulative-occupancy design outperforms a naive time-average
// analysis.
func (h *Harvester) BurstyOperating(chans []ChannelPower, occupancy []float64) Operating {
	if len(chans) == 0 || len(chans) != len(occupancy) {
		return Operating{}
	}
	cond, anyActive, ok := BurstyConditional(chans, occupancy)
	if !ok {
		return h.IdleOperating()
	}
	return h.FinishBursty(h.MultiChannelOperatingPoint(cond), anyActive)
}

// BurstyConditional reduces on/off packet-burst drive to the conditional
// mean drive while at least one channel is active: the per-channel
// incident powers conditioned on activity, and the any-channel-active
// probability. ok is false when no channel carries power, in which case
// the chain idles. This conditioning step is shared verbatim by the exact
// solver and the interpolated surface so the two paths cannot diverge in
// their burst model.
func BurstyConditional(chans []ChannelPower, occupancy []float64) (cond []ChannelPower, anyActive float64, ok bool) {
	// Probability at least one channel is transmitting.
	silent := 1.0
	avgTotal := 0.0
	for i, c := range chans {
		occ := occupancy[i]
		if occ < 0 {
			occ = 0
		}
		if occ > 1 {
			occ = 1
		}
		silent *= 1 - occ
		avgTotal += c.PowerW * occ
	}
	anyActive = 1 - silent
	if anyActive <= 0 || avgTotal <= 0 {
		return nil, anyActive, false
	}
	// Conditional mean incident power while active, distributed across
	// channels in proportion to their average contributions.
	cond = make([]ChannelPower, len(chans))
	for i, c := range chans {
		cond[i] = ChannelPower{FreqHz: c.FreqHz, PowerW: c.PowerW * occupancy[i] / anyActive}
	}
	return cond, anyActive, true
}

// IdleOperating returns the operating point of a chain with no RF drive:
// nothing for the battery-free version, the quiescent drain for the
// battery-recharging version.
func (h *Harvester) IdleOperating() Operating {
	if h.Version == BatteryCharging {
		return Operating{HarvestedW: -h.BQ.QuiescentW}
	}
	return Operating{}
}

// FinishBursty time-averages a conditional operating point back over the
// active fraction; the quiescent drain of the battery-charging chain runs
// around the clock.
func (h *Harvester) FinishBursty(op Operating, anyActive float64) Operating {
	switch h.Version {
	case BatteryFree:
		op.HarvestedW *= anyActive
	case BatteryCharging:
		gross := op.HarvestedW + h.BQ.QuiescentW
		if gross < 0 {
			gross = 0
		}
		op.HarvestedW = gross*anyActive - h.BQ.QuiescentW
	}
	return op
}

// Bursty cold-start constants: typical Wi-Fi busy-period length and the
// rectifier output node capacitance the silent-gap droop works against.
const (
	burstBusyS = 250e-6
	rectNodeC  = 47e-9
)

// BootDrive reduces bursty drive to the cold-start check's inputs: the
// conditional incident power while active, the power-weighted mean
// frequency, and the voltage droop the idle leak causes across a typical
// silent gap. ok is false when no channel carries power (the device can
// never boot). Only meaningful for the battery-free version.
func (h *Harvester) BootDrive(chans []ChannelPower, occupancy []float64) (condW, freqHz, droopV float64, ok bool) {
	if len(chans) == 0 || len(chans) != len(occupancy) {
		return 0, 0, 0, false
	}
	silent := 1.0
	total := 0.0
	freqWeighted := 0.0
	for i, c := range chans {
		occ := math.Max(0, math.Min(1, occupancy[i]))
		silent *= 1 - occ
		total += c.PowerW * occ
		freqWeighted += c.FreqHz * c.PowerW * occ
	}
	anyActive := 1 - silent
	if anyActive <= 0 || total <= 0 {
		return 0, 0, 0, false
	}
	// Mean silent gap assuming ~250 µs busy periods alternating with
	// exponential gaps: gap ≈ busy·(1-p)/p.
	gap := burstBusyS * silent / anyActive
	return total / anyActive, freqWeighted / total, h.Seiko.IdleLeakA * gap / rectNodeC, true
}

// CanBootBursty reports whether the battery-free harvester clears its
// cold-start threshold under bursty drive: the startup voltage reached at
// the conditional active power must exceed the 300 mV threshold plus the
// droop the idle leak causes across a typical silent gap.
func (h *Harvester) CanBootBursty(chans []ChannelPower, occupancy []float64) bool {
	if h.Version != BatteryFree {
		return true
	}
	condW, freq, droop, ok := h.BootDrive(chans, occupancy)
	if !ok {
		return false
	}
	return h.StartupVoltage(condW, freq) >= h.Seiko.StartupV+droop
}
