package harvester

// SeikoS882Z models the Seiko S-882Z charge-pump DC–DC converter used by
// the battery-free harvester. Its defining properties (§3.1):
//
//   - it cold-starts from input voltages as low as 300 mV (the best in its
//     class, and the reason Fig. 1's 300 mV line is the boot threshold);
//   - it pumps charge onto a storage capacitor until the capacitor reaches
//     2.4 V, then connects the capacitor to the output to power the
//     microcontroller and sensors;
//   - its pump moves only a limited current, which (together with diode
//     breakdown) caps the usable power at strong drive in Fig. 10.
type SeikoS882Z struct {
	// StartupV is the minimum rectifier output voltage at which the pump
	// can operate (0.30 V).
	StartupV float64
	// ReleaseV is the storage-capacitor voltage at which the output
	// switch closes (2.4 V).
	ReleaseV float64
	// InputR is the equivalent input resistance the pump presents to the
	// rectifier while running, in ohms.
	InputR float64
	// PumpLimitA is the maximum input current the pump can move.
	PumpLimitA float64
	// Efficiency is the charge-transfer efficiency of the pump.
	Efficiency float64
	// IdleLeakA is the current drawn from the rectifier output node while
	// below StartupV (startup oscillator attempts). This leak is what
	// drains the harvester during Wi-Fi silent periods in Fig. 1.
	IdleLeakA float64
}

// NewSeikoS882Z returns the datasheet-calibrated model.
func NewSeikoS882Z() *SeikoS882Z {
	return &SeikoS882Z{
		StartupV:   0.30,
		ReleaseV:   2.4,
		InputR:     9000,
		PumpLimitA: 75e-6,
		Efficiency: 0.55,
		IdleLeakA:  11e-6,
	}
}

// InputCurrent returns the current the pump draws from the rectifier
// output at voltage v. Below the startup threshold only the idle leak
// flows; above it, the pump draws v/InputR capped at the pump limit.
func (s *SeikoS882Z) InputCurrent(v float64) float64 {
	if v < s.StartupV {
		return s.IdleLeakA
	}
	i := v / s.InputR
	if i > s.PumpLimitA {
		i = s.PumpLimitA
	}
	return i
}

// OutputPower returns the power delivered into the storage capacitor when
// the pump input sits at voltage v. Zero below the startup threshold.
func (s *SeikoS882Z) OutputPower(v float64) float64 {
	if v < s.StartupV {
		return 0
	}
	return v * s.InputCurrent(v) * s.Efficiency
}

// BQ25570 models the TI bq25570 energy-harvesting chip used by the
// battery-recharging harvester and the battery-free camera: a boost
// converter with maximum-power-point tracking, a battery charger, and a
// buck converter (2.55 V regulated output for the image sensor).
//
// The paper sets the MPPT reference to 200 mV, which pins the rectifier's
// operating point and thereby stabilises the rectifier's input impedance
// across the three Wi-Fi channels — the co-design insight of §3.1.
type BQ25570 struct {
	// MPPTRefV is the rectifier output voltage the boost input regulates
	// to (0.20 V per the paper).
	MPPTRefV float64
	// MinOperatingV is the minimum input the boost can run from once the
	// chip is alive (battery-assisted; no cold start needed).
	MinOperatingV float64
	// BoostEff is the boost conversion efficiency at these input levels.
	BoostEff float64
	// BuckV is the regulated buck output voltage (2.55 V).
	BuckV float64
	// BuckEff is the buck conversion efficiency.
	BuckEff float64
	// QuiescentW is the chip's standing power draw from the battery.
	QuiescentW float64
	// RampA is the input current drawn when the rectifier output reaches
	// the MPPT reference; the load line ramps linearly from zero at
	// MinOperatingV up to this value at the reference.
	RampA float64
	// AboveRefSlopeS is the load-line conductance above the reference:
	// the MPPT loop pulls hard to pin the rectifier near the reference,
	// so this slope is steep.
	AboveRefSlopeS float64
	// InputLimitA is the boost converter's switch-current ceiling.
	InputLimitA float64
}

// NewBQ25570 returns the datasheet-calibrated model with the paper's
// 200 mV MPPT reference.
func NewBQ25570() *BQ25570 {
	return &BQ25570{
		MPPTRefV:       0.20,
		MinOperatingV:  0.10,
		BoostEff:       0.75,
		BuckV:          2.55,
		BuckEff:        0.85,
		QuiescentW:     1.9e-6,
		RampA:          50e-6,
		AboveRefSlopeS: 0.1,
		InputLimitA:    10e-3,
	}
}

// InputCurrent returns the current the boost draws from the rectifier
// output at voltage v. The MPPT regulation pulls the rectifier toward the
// reference: below MinOperatingV nothing flows; between MinOperatingV and
// the reference the draw ramps up; above the reference the steep slope
// pins the node, capped at the converter's switch-current limit. The
// function is non-decreasing in v, which the rectifier's operating-point
// bisection relies on.
func (b *BQ25570) InputCurrent(v float64) float64 {
	if v < b.MinOperatingV {
		return 0
	}
	var i float64
	if v <= b.MPPTRefV {
		i = b.RampA * (v - b.MinOperatingV) / (b.MPPTRefV - b.MinOperatingV)
	} else {
		i = b.RampA + (v-b.MPPTRefV)*b.AboveRefSlopeS
	}
	if i > b.InputLimitA {
		i = b.InputLimitA
	}
	return i
}

// NetChargePower returns the power flowing into the battery (after boost
// efficiency and quiescent draw) when the rectifier output sits at v
// delivering current i. Negative values mean the chip costs the battery
// more than it harvests.
func (b *BQ25570) NetChargePower(v, i float64) float64 {
	if v < b.MinOperatingV || i <= 0 {
		return -b.QuiescentW
	}
	return v*i*b.BoostEff - b.QuiescentW
}
