package harvester

import (
	"math"
	"testing"
	"time"
)

// TestBatterySelfDischargeEdges pins the ledger-facing contract of
// SelfDischarge: zero and negative dt are no-ops, an empty battery
// stays empty, an ordinary step removes exactly the per-day fraction,
// and a pathologically long step clamps at zero instead of driving the
// stored energy negative.
func TestBatterySelfDischargeEdges(t *testing.T) {
	b := NewNiMHPack()
	b.SetSoC(0.5)
	before := b.StoredEnergy()

	b.SelfDischarge(0)
	if b.StoredEnergy() != before {
		t.Errorf("zero dt changed stored energy: %v -> %v", before, b.StoredEnergy())
	}
	b.SelfDischarge(-3600)
	if b.StoredEnergy() != before {
		t.Errorf("negative dt changed stored energy: %v -> %v", before, b.StoredEnergy())
	}

	b.SelfDischarge(86400)
	want := before * (1 - b.SelfDischargePerDay)
	if math.Abs(b.StoredEnergy()-want) > 1e-9*want {
		t.Errorf("one day of self-discharge: stored %v, want %v", b.StoredEnergy(), want)
	}

	// A step long enough to push the loss factor past 1 must empty the
	// battery, never flip it negative.
	huge := 2 * 86400 / b.SelfDischargePerDay
	b.SelfDischarge(huge)
	if b.StoredEnergy() != 0 {
		t.Errorf("huge dt left stored = %v, want 0", b.StoredEnergy())
	}

	// Empty battery stays empty.
	b.SelfDischarge(86400)
	if b.StoredEnergy() != 0 {
		t.Errorf("self-discharge resurrected an empty battery: %v", b.StoredEnergy())
	}
}

// TestBatterySetSoCBounds pins the SoC clamp and the stored-energy
// round trip.
func TestBatterySetSoCBounds(t *testing.T) {
	b := NewLiIonCoinCell()
	b.SetSoC(-0.3)
	if b.SoC() != 0 {
		t.Errorf("SetSoC(-0.3) -> SoC %v, want 0", b.SoC())
	}
	b.SetSoC(1.7)
	if b.SoC() != 1 {
		t.Errorf("SetSoC(1.7) -> SoC %v, want 1", b.SoC())
	}
	if b.StoredEnergy() != b.CapacityJ {
		t.Errorf("full battery stores %v J, capacity is %v J", b.StoredEnergy(), b.CapacityJ)
	}
	b.SetSoC(0.25)
	if got, want := b.StoredEnergy(), 0.25*b.CapacityJ; math.Abs(got-want) > 1e-12*want {
		t.Errorf("SetSoC(0.25) stores %v J, want %v J", got, want)
	}
	if v := b.Voltage(); v < 0.95*b.NominalV || v > 1.05*b.NominalV {
		t.Errorf("terminal voltage %v V outside the ±5%% band around %v V", v, b.NominalV)
	}

	z := &Battery{} // zero capacity: SoC must not divide by zero
	if z.SoC() != 0 {
		t.Errorf("zero-capacity battery SoC = %v, want 0", z.SoC())
	}
}

// TestBatteryChargeDischargeBounds pins the energy clamps the lifecycle
// ledger leans on: charge acceptance efficiency, the capacity ceiling,
// the empty floor, and rejection of non-positive transfers.
func TestBatteryChargeDischargeBounds(t *testing.T) {
	b := NewJawboneUP24Battery()
	if got := b.Charge(-1); got != 0 {
		t.Errorf("Charge(-1) stored %v J, want 0", got)
	}
	if got := b.Discharge(-1); got != 0 {
		t.Errorf("Discharge(-1) delivered %v J, want 0", got)
	}

	stored := b.Charge(10)
	if want := 10 * b.ChargeEff; math.Abs(stored-want) > 1e-12 {
		t.Errorf("Charge(10) stored %v J, want %v J (efficiency %v)", stored, want, b.ChargeEff)
	}

	// Overcharging clamps at capacity and reports only what fit.
	stored = b.Charge(10 * b.CapacityJ)
	if b.StoredEnergy() != b.CapacityJ {
		t.Errorf("overcharge left stored %v J, want capacity %v J", b.StoredEnergy(), b.CapacityJ)
	}
	if math.Abs(stored-(b.CapacityJ-10*b.ChargeEff)) > 1e-9 {
		t.Errorf("overcharge reported %v J stored", stored)
	}

	// Overdischarging drains to zero and reports only what was there.
	got := b.Discharge(10 * b.CapacityJ)
	if got != b.CapacityJ || b.StoredEnergy() != 0 {
		t.Errorf("overdischarge delivered %v J (want %v) leaving %v J", got, b.CapacityJ, b.StoredEnergy())
	}
}

// TestConstantPowerChargeTime pins the shared closed form both
// core.BatteryChargeTime and the lifecycle ledger route through.
func TestConstantPowerChargeTime(t *testing.T) {
	b := NewLiIonCoinCell()

	// 1 mAh at 3.0 V and 85% acceptance from 100 µW.
	d := b.ConstantPowerChargeTime(0, 1, 100e-6)
	want := b.CapacityJ / b.ChargeEff / 100e-6
	if got := d.Seconds(); math.Abs(got-want) > 1e-6*want {
		t.Errorf("full charge takes %v s, want %v s", got, want)
	}

	// Degenerate inputs saturate at the maximum duration.
	for _, tc := range []struct{ from, to, w float64 }{
		{0, 1, 0}, {0, 1, -1e-6}, {0.5, 0.5, 1e-6}, {0.8, 0.2, 1e-6},
	} {
		if d := b.ConstantPowerChargeTime(tc.from, tc.to, tc.w); d != time.Duration(math.MaxInt64) {
			t.Errorf("ConstantPowerChargeTime(%v, %v, %v) = %v, want max duration", tc.from, tc.to, tc.w, d)
		}
	}
}
