package harvester

import "math"

// Transient simulates the harvesting chain's voltage dynamics at
// sub-millisecond resolution. It reproduces the Fig. 1 phenomenon: the
// rectifier output node charges during Wi-Fi packet bursts and leaks back
// down during silent periods, so a low-occupancy router never lifts the
// node across the converter's 300 mV startup threshold.
type Transient struct {
	H *Harvester
	// Node is the rectifier output capacitor (the node whose voltage
	// Fig. 1 plots).
	Node *Capacitor
	// Store is the converter-side storage element (the Seiko's storage
	// capacitor for battery-free designs, or a battery).
	Store Storage
	// PumpRunning reports whether the charge pump is currently above its
	// startup threshold and transferring energy (battery-free only).
	PumpRunning bool
	// OutputOn reports whether the storage has reached the release
	// voltage and the load is being powered (battery-free only).
	OutputOn bool
}

// NewTransient returns a transient simulation of harvester h with the
// standard 47 nF rectifier output node and the given storage element.
func NewTransient(h *Harvester, store Storage) *Transient {
	return &Transient{
		H:     h,
		Node:  &Capacitor{C: 47e-9},
		Store: store,
	}
}

// Step advances the simulation by dt seconds with the given incident
// multi-channel RF power. It returns the rectifier node voltage after the
// step.
func (t *Transient) Step(dt float64, chans []ChannelPower) float64 {
	v := t.Node.V
	// Accepted RF power at the present node voltage: one impedance
	// evaluation per channel (the fixed point is unnecessary here because
	// the node voltage, not the steady-state operating point, sets the
	// rectifier's drive state).
	acc := 0.0
	for _, c := range chans {
		if c.PowerW <= 0 {
			continue
		}
		z := t.H.rectifierImpedance(math.Max(acc, 0.3*c.PowerW), v, c.FreqHz)
		acc += c.PowerW * t.H.Match.PowerTransferFraction(z, c.FreqHz)
	}
	var iSrc float64
	if acc > 0 {
		va := t.H.Rect.SolveAmplitude(acc, v)
		iSrc = t.H.Rect.OutputCurrent(va, v)
	} else if v > 0 {
		// Unlit diodes leak the node backwards.
		iSrc = t.H.Rect.OutputCurrent(0, v)
	}

	// Converter draw from the node.
	var iLoad float64
	switch t.H.Version {
	case BatteryFree:
		iLoad = t.H.Seiko.InputCurrent(v)
		t.PumpRunning = v >= t.H.Seiko.StartupV
		if t.PumpRunning {
			t.Store.Charge(t.H.Seiko.OutputPower(v) * dt)
		}
		if t.Store.Voltage() >= t.H.Seiko.ReleaseV {
			t.OutputOn = true
		}
	case BatteryCharging:
		iLoad = t.H.BQ.InputCurrent(v)
		net := t.H.BQ.NetChargePower(v, iLoad) * dt
		if net > 0 {
			t.Store.Charge(net)
		} else {
			t.Store.Discharge(-net)
		}
	}

	t.Node.Step(dt, iSrc-iLoad)
	return t.Node.V
}
