package harvester

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
	"repro/internal/xrand"
)

const (
	ch1  = 2.412e9
	ch6  = 2.437e9
	ch11 = 2.462e9
)

func TestBatteryFreeSensitivityMatchesPaper(t *testing.T) {
	// §4.2: the battery-free harvester operates down to -17.8 dBm.
	h := NewBatteryFree()
	got := h.SensitivityDBm(ch6)
	if got < -18.5 || got > -17.0 {
		t.Errorf("battery-free sensitivity = %.2f dBm, want about -17.8", got)
	}
}

func TestBatteryChargingSensitivityMatchesPaper(t *testing.T) {
	// §4.2: the battery-charging harvester operates down to -19.3 dBm —
	// better than battery-free because there is no cold-start problem.
	h := NewBatteryCharging()
	got := h.SensitivityDBm(ch6)
	if got < -20.0 || got > -18.5 {
		t.Errorf("battery-charging sensitivity = %.2f dBm, want about -19.3", got)
	}
}

func TestChargingBeatsBatteryFreeSensitivity(t *testing.T) {
	bf := NewBatteryFree().SensitivityDBm(ch6)
	bc := NewBatteryCharging().SensitivityDBm(ch6)
	if bc >= bf {
		t.Errorf("battery-charging sensitivity (%v) should beat battery-free (%v)", bc, bf)
	}
}

func TestReturnLossInBand(t *testing.T) {
	// Fig. 9: both harvesters achieve < -10 dB return loss across
	// 2.401-2.473 GHz.
	for _, h := range []*Harvester{NewBatteryFree(), NewBatteryCharging()} {
		for f := 2.401e9; f <= 2.4735e9; f += 3e6 {
			rl := h.ReturnLossDB(f)
			if rl > -10 {
				t.Errorf("%v return loss at %.4f GHz = %.2f dB, want < -10", h.Version, f/1e9, rl)
			}
		}
	}
}

func TestReturnLossHasInBandDip(t *testing.T) {
	// Fig. 9a shows a deep resonance dip (about -32 dB) inside the band
	// for the battery-free version.
	h := NewBatteryFree()
	best := 0.0
	for f := 2.401e9; f <= 2.4735e9; f += 2e6 {
		if rl := h.ReturnLossDB(f); rl < best {
			best = rl
		}
	}
	if best > -25 {
		t.Errorf("deepest in-band return loss = %.2f dB, want < -25 (resonance dip)", best)
	}
}

func TestFig10OutputMonotoneInInputPower(t *testing.T) {
	for _, h := range []*Harvester{NewBatteryFree(), NewBatteryCharging()} {
		prev := -1.0
		for dbm := -20.0; dbm <= 4.0; dbm += 2 {
			op := h.OperatingPoint(units.DBmToWatts(dbm), ch6)
			if op.RectDCW < prev-1e-12 {
				t.Errorf("%v: output power decreased at %v dBm", h.Version, dbm)
			}
			prev = op.RectDCW
		}
	}
}

func TestFig10OutputMagnitude(t *testing.T) {
	// Fig. 10: output on the order of 150 µW at the top of the sweep and
	// single-digit µW near -20 dBm.
	h := NewBatteryFree()
	top := h.OperatingPoint(units.DBmToWatts(4), ch6)
	if uw := units.Microwatts(top.RectDCW); uw < 80 || uw > 350 {
		t.Errorf("battery-free output at +4 dBm = %.1f µW, want order of 150", uw)
	}
	bottom := h.OperatingPoint(units.DBmToWatts(-20), ch6)
	if uw := units.Microwatts(bottom.RectDCW); uw > 10 {
		t.Errorf("battery-free output at -20 dBm = %.1f µW, want < 10", uw)
	}
}

func TestFig10ConsistentAcrossChannels(t *testing.T) {
	// Fig. 10: the harvesters perform comparably on channels 1, 6 and 11
	// thanks to the wideband match. Allow 35% spread.
	for _, h := range []*Harvester{NewBatteryFree(), NewBatteryCharging()} {
		for _, dbm := range []float64{-12, -8, -4} {
			p := units.DBmToWatts(dbm)
			var outs []float64
			for _, f := range []float64{ch1, ch6, ch11} {
				outs = append(outs, h.OperatingPoint(p, f).RectDCW)
			}
			lo, hi := outs[0], outs[0]
			for _, o := range outs {
				lo = math.Min(lo, o)
				hi = math.Max(hi, o)
			}
			if lo <= 0 || (hi-lo)/hi > 0.35 {
				t.Errorf("%v at %v dBm: channel spread too large: %v", h.Version, dbm, outs)
			}
		}
	}
}

func TestAcceptedPowerNeverExceedsIncident(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		h := NewBatteryFree()
		inc := units.DBmToWatts(r.Uniform(-30, 5))
		freq := r.Uniform(2.40e9, 2.48e9)
		acc := h.AcceptedPower(inc, freq)
		return acc >= 0 && acc <= inc*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMultiChannelMatchesEquivalentSingleChannel(t *testing.T) {
	// The multi-channel harvester cannot distinguish which channel power
	// arrives on: three channels at P/3 each harvest within a few percent
	// of a single channel at P (§3.1's design goal).
	h := NewBatteryFree()
	p := units.DBmToWatts(-9)
	multi := h.MultiChannelOperatingPoint([]ChannelPower{
		{FreqHz: ch1, PowerW: p / 3},
		{FreqHz: ch6, PowerW: p / 3},
		{FreqHz: ch11, PowerW: p / 3},
	})
	single := h.OperatingPoint(p, ch6)
	if single.RectDCW <= 0 {
		t.Fatal("single-channel operating point collapsed")
	}
	ratio := multi.RectDCW / single.RectDCW
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("multi/single output ratio = %v, want about 1", ratio)
	}
}

func TestMultiChannelEmptyInput(t *testing.T) {
	h := NewBatteryFree()
	op := h.MultiChannelOperatingPoint(nil)
	if op.RectDCW != 0 || op.HarvestedW != 0 {
		t.Errorf("empty input should produce zero operating point, got %+v", op)
	}
}

func TestCanOperateConsistentWithSensitivity(t *testing.T) {
	for _, h := range []*Harvester{NewBatteryFree(), NewBatteryCharging()} {
		sens := h.SensitivityDBm(ch6)
		if !h.CanOperate(units.DBmToWatts(sens+0.5), ch6) {
			t.Errorf("%v cannot operate 0.5 dB above its sensitivity", h.Version)
		}
		if h.CanOperate(units.DBmToWatts(sens-0.5), ch6) {
			t.Errorf("%v operates 0.5 dB below its sensitivity", h.Version)
		}
	}
}

func TestCapacitorEnergyRoundTrip(t *testing.T) {
	c := &Capacitor{C: 1e-6}
	stored := c.Charge(1e-6)
	if stored != 1e-6 {
		t.Errorf("Charge returned %v, want 1e-6", stored)
	}
	wantV := math.Sqrt(2 * 1e-6 / 1e-6)
	if math.Abs(c.Voltage()-wantV) > 1e-12 {
		t.Errorf("voltage = %v, want %v", c.Voltage(), wantV)
	}
	got := c.Discharge(5e-7)
	if math.Abs(got-5e-7) > 1e-18 {
		t.Errorf("Discharge returned %v, want 5e-7", got)
	}
	// Discharging more than stored drains it completely.
	got = c.Discharge(1)
	if math.Abs(got-5e-7) > 1e-12 || c.Voltage() != 0 {
		t.Errorf("over-discharge: got %v, V=%v", got, c.Voltage())
	}
}

func TestCapacitorStepLeakage(t *testing.T) {
	c := &Capacitor{C: 47e-9, LeakR: 1e5, V: 0.3}
	// With no input current, the node decays with tau = R·C = 4.7 ms.
	c.Step(4.7e-3, 0)
	// Forward-Euler single step of a full tau undershoots e^-1 but must
	// drop substantially and stay non-negative.
	if c.V >= 0.3 || c.V < 0 {
		t.Errorf("leaky capacitor voltage after step = %v", c.V)
	}
}

func TestCapacitorNeverNegative(t *testing.T) {
	c := &Capacitor{C: 1e-9, V: 0.01}
	c.Step(1, -1) // massive discharge current
	if c.V < 0 {
		t.Errorf("capacitor voltage went negative: %v", c.V)
	}
}

func TestBatterySoCBounds(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		b := NewNiMHPack()
		b.SetSoC(r.Float64())
		for i := 0; i < 50; i++ {
			if r.Bool(0.5) {
				b.Charge(r.Float64() * 1000)
			} else {
				b.Discharge(r.Float64() * 1000)
			}
			if soc := b.SoC(); soc < 0 || soc > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBatteryChargeEfficiencyApplied(t *testing.T) {
	b := NewNiMHPack()
	in := b.Charge(100)
	if math.Abs(in-100*b.ChargeEff) > 1e-9 {
		t.Errorf("stored %v J of 100 J, want %v", in, 100*b.ChargeEff)
	}
}

func TestBatteryVoltageRisesWithSoC(t *testing.T) {
	b := NewLiIonCoinCell()
	b.SetSoC(0.1)
	low := b.Voltage()
	b.SetSoC(0.9)
	high := b.Voltage()
	if high <= low {
		t.Errorf("voltage did not rise with SoC: %v vs %v", low, high)
	}
	if math.Abs(b.NominalV-3.0) > 1e-9 {
		t.Errorf("Li-Ion nominal voltage = %v, want 3.0", b.NominalV)
	}
}

func TestBatterySelfDischarge(t *testing.T) {
	b := NewNiMHPack()
	b.SetSoC(1)
	before := b.StoredEnergy()
	b.SelfDischarge(86400) // one day
	after := b.StoredEnergy()
	lost := (before - after) / before
	if math.Abs(lost-b.SelfDischargePerDay) > 1e-6 {
		t.Errorf("one-day self-discharge fraction = %v, want %v", lost, b.SelfDischargePerDay)
	}
}

func TestNiMHPackCapacity(t *testing.T) {
	// 750 mAh at 2.4 V = 6480 J.
	b := NewNiMHPack()
	if math.Abs(b.CapacityJ-6480) > 1 {
		t.Errorf("NiMH capacity = %v J, want 6480", b.CapacityJ)
	}
}

func TestSeikoThresholds(t *testing.T) {
	s := NewSeikoS882Z()
	if s.StartupV != 0.30 {
		t.Errorf("startup threshold = %v, want 0.30 (the Fig. 1 line)", s.StartupV)
	}
	if s.ReleaseV != 2.4 {
		t.Errorf("release voltage = %v, want 2.4", s.ReleaseV)
	}
	if s.OutputPower(0.29) != 0 {
		t.Error("pump output below startup threshold should be zero")
	}
	if s.OutputPower(0.35) <= 0 {
		t.Error("pump output above startup threshold should be positive")
	}
}

func TestSeikoInputCurrentMonotone(t *testing.T) {
	s := NewSeikoS882Z()
	prev := -1.0
	for v := 0.0; v < 1.5; v += 0.01 {
		i := s.InputCurrent(v)
		// The load line may step at the threshold but must never exceed
		// the pump limit and must be monotone above the threshold.
		if v > s.StartupV && i < prev {
			t.Fatalf("pump current decreased at %v V", v)
		}
		if i > s.PumpLimitA && v >= s.StartupV {
			t.Fatalf("pump current exceeds limit at %v V", v)
		}
		if v >= s.StartupV {
			prev = i
		}
	}
}

func TestBQ25570LoadLineMonotone(t *testing.T) {
	b := NewBQ25570()
	prev := -1.0
	for v := 0.0; v < 2.0; v += 0.005 {
		i := b.InputCurrent(v)
		if i < prev {
			t.Fatalf("bq25570 load line decreased at %v V", v)
		}
		if i > b.InputLimitA {
			t.Fatalf("bq25570 current exceeds limit at %v V", v)
		}
		prev = i
	}
}

func TestBQ25570NetChargeSignsAndQuiescent(t *testing.T) {
	b := NewBQ25570()
	if got := b.NetChargePower(0.05, 0.001); got != -b.QuiescentW {
		t.Errorf("below min operating voltage net power = %v, want -quiescent", got)
	}
	if got := b.NetChargePower(0.2, 100e-6); got <= 0 {
		t.Errorf("healthy operating point net power = %v, want > 0", got)
	}
}

func TestTransientFig1NeverBoots(t *testing.T) {
	// §2: a sensor 10 feet from the organization's router (23 dBm,
	// 4.04 dBi antennas, 10-40%% occupancy) never reaches the 300 mV
	// threshold. Model the worst case of continuous 40% duty bursts.
	h := NewBatteryFree()
	tr := NewTransient(h, &Capacitor{C: 10e-6})
	// Received power at 10 ft: 23 + 4.04 + 2 - 49.9 ≈ -20.9 dBm.
	inc := units.DBmToWatts(-20.9)
	const dt = 5e-6
	maxV := 0.0
	// 100 ms of 40%-occupancy traffic: 400 µs burst, 600 µs silence.
	for t0 := 0.0; t0 < 0.1; t0 += dt {
		var p float64
		if math.Mod(t0, 1e-3) < 0.4e-3 {
			p = inc
		}
		v := tr.Step(dt, []ChannelPower{{FreqHz: ch6, PowerW: p}})
		maxV = math.Max(maxV, v)
	}
	if maxV >= 0.30 {
		t.Errorf("Fig. 1 scenario reached %v V, paper shows it never crosses 0.30", maxV)
	}
	if maxV < 0.05 {
		t.Errorf("Fig. 1 scenario peaked at only %v V; paper shows 0.15-0.25 V swings", maxV)
	}
}

func TestTransientHighOccupancyBoots(t *testing.T) {
	// A PoWiFi router at close range with ~90% cumulative occupancy must
	// drive the node past 300 mV and start pumping energy into storage.
	h := NewBatteryFree()
	store := &Capacitor{C: 100e-6}
	tr := NewTransient(h, store)
	inc := units.DBmToWatts(-8) // a few feet from the router
	const dt = 5e-6
	for t0 := 0.0; t0 < 0.2; t0 += dt {
		var p float64
		if math.Mod(t0, 1e-3) < 0.9e-3 {
			p = inc
		}
		tr.Step(dt, []ChannelPower{{FreqHz: ch6, PowerW: p}})
	}
	if !tr.PumpRunning {
		t.Error("pump did not start under high-occupancy PoWiFi traffic")
	}
	if store.StoredEnergy() <= 0 {
		t.Error("no energy accumulated in storage")
	}
}

func TestVersionString(t *testing.T) {
	if BatteryFree.String() != "battery-free" {
		t.Errorf("BatteryFree.String() = %q", BatteryFree.String())
	}
	if BatteryCharging.String() != "battery-recharging" {
		t.Errorf("BatteryCharging.String() = %q", BatteryCharging.String())
	}
}

func TestBurstyOperatingEquivalentAtFullOccupancy(t *testing.T) {
	// Occupancy 1.0 on every channel makes bursty drive continuous: the
	// bursty and continuous evaluations must coincide.
	h := NewBatteryFree()
	p := units.DBmToWatts(-10)
	chans := []ChannelPower{{FreqHz: ch1, PowerW: p}, {FreqHz: ch6, PowerW: p}, {FreqHz: ch11, PowerW: p}}
	bursty := h.BurstyOperating(chans, []float64{1, 1, 1})
	cont := h.MultiChannelOperatingPoint(chans)
	if math.Abs(bursty.HarvestedW-cont.HarvestedW) > 1e-9 {
		t.Errorf("full-occupancy bursty %v != continuous %v", bursty.HarvestedW, cont.HarvestedW)
	}
}

func TestBurstyBeatsTimeAveragedDrive(t *testing.T) {
	// Concentrating the same average power into bursts helps the
	// nonlinear rectifier: bursty harvest >= harvest of the time-averaged
	// power near the sensitivity floor.
	h := NewBatteryFree()
	p := units.DBmToWatts(-13)
	occ := 0.3
	chans := []ChannelPower{{FreqHz: ch1, PowerW: p}, {FreqHz: ch6, PowerW: p}, {FreqHz: ch11, PowerW: p}}
	bursty := h.BurstyOperating(chans, []float64{occ, occ, occ})
	avg := make([]ChannelPower, len(chans))
	for i, c := range chans {
		avg[i] = ChannelPower{FreqHz: c.FreqHz, PowerW: c.PowerW * occ}
	}
	cont := h.MultiChannelOperatingPoint(avg)
	if bursty.HarvestedW < cont.HarvestedW*0.95 {
		t.Errorf("bursty harvest %v fell below time-averaged %v", bursty.HarvestedW, cont.HarvestedW)
	}
}

func TestBurstyOperatingZeroOccupancy(t *testing.T) {
	bf := NewBatteryFree()
	op := bf.BurstyOperating([]ChannelPower{{FreqHz: ch6, PowerW: 1e-3}}, []float64{0})
	if op.HarvestedW != 0 {
		t.Errorf("zero-occupancy battery-free harvest = %v, want 0", op.HarvestedW)
	}
	bc := NewBatteryCharging()
	op = bc.BurstyOperating([]ChannelPower{{FreqHz: ch6, PowerW: 1e-3}}, []float64{0})
	if op.HarvestedW != -bc.BQ.QuiescentW {
		t.Errorf("zero-occupancy charging harvest = %v, want -quiescent", op.HarvestedW)
	}
}

func TestBurstyOperatingMismatchedInputs(t *testing.T) {
	h := NewBatteryFree()
	op := h.BurstyOperating([]ChannelPower{{FreqHz: ch6, PowerW: 1e-3}}, []float64{0.5, 0.5})
	if op.HarvestedW != 0 || op.RectDCW != 0 {
		t.Error("mismatched chans/occupancy lengths should return zero")
	}
}

func TestCanBootBurstyThresholds(t *testing.T) {
	h := NewBatteryFree()
	strong := []ChannelPower{{FreqHz: ch6, PowerW: units.DBmToWatts(-5)}}
	if !h.CanBootBursty(strong, []float64{0.9}) {
		t.Error("strong bursty drive should boot")
	}
	weak := []ChannelPower{{FreqHz: ch6, PowerW: units.DBmToWatts(-30)}}
	if h.CanBootBursty(weak, []float64{0.9}) {
		t.Error("weak drive must not boot")
	}
	if h.CanBootBursty(nil, nil) {
		t.Error("no input must not boot")
	}
	// Battery-charging chains have no cold start.
	if !NewBatteryCharging().CanBootBursty(weak, []float64{0.9}) {
		t.Error("battery-charging version never needs cold start")
	}
}

func TestBestCapParameters(t *testing.T) {
	c := NewBestCap()
	if c.C != 6.8e-3 {
		t.Errorf("BestCap capacitance = %v, want 6.8 mF", c.C)
	}
	if c.LeakR <= 0 {
		t.Error("BestCap should model leakage")
	}
}

func TestJawboneBatteryConsistentWithPaperNumbers(t *testing.T) {
	// 2.3 mA × 2.5 h at ~3.8 V must land near 41% of capacity.
	b := NewJawboneUP24Battery()
	delivered := 0.0023 * 2.5 * 3600 * b.NominalV // joules at the terminal
	frac := delivered * b.ChargeEff / b.CapacityJ
	if frac < 0.30 || frac > 0.55 {
		t.Errorf("paper charging profile fills %.0f%% of the battery, want near 41%%", frac*100)
	}
}

func TestBatteryStringFormat(t *testing.T) {
	b := NewNiMHPack()
	b.SetSoC(0.5)
	if got := b.String(); got != "NiMH 2xAAA 750mAh @ 50%" {
		t.Errorf("String = %q", got)
	}
}

func TestTransientBatteryChargingStep(t *testing.T) {
	// The battery-charging transient path: with healthy drive, the chip
	// charges the battery; with none, quiescent drain discharges it.
	h := NewBatteryCharging()
	batt := NewNiMHPack()
	batt.SetSoC(0.5)
	tr := NewTransient(h, batt)
	before := batt.StoredEnergy()
	for i := 0; i < 20000; i++ {
		tr.Step(5e-6, []ChannelPower{{FreqHz: ch6, PowerW: units.DBmToWatts(-6)}})
	}
	if batt.StoredEnergy() <= before {
		t.Error("battery did not charge under strong drive")
	}
	mid := batt.StoredEnergy()
	for i := 0; i < 20000; i++ {
		tr.Step(5e-6, nil)
	}
	if batt.StoredEnergy() >= mid {
		t.Error("quiescent drain should discharge the battery with no RF")
	}
}
