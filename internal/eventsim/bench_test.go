package eventsim

import (
	"testing"
	"time"
)

// BenchmarkKernelSteadyState measures the allocation-free schedule+fire
// cycle with a realistic pending-queue depth (the deploy sampler holds
// roughly a dozen events in flight).
func BenchmarkKernelSteadyState(b *testing.B) {
	s := New()
	const depth = 12
	var fire func(ctx any)
	remaining := 0
	fire = func(ctx any) {
		if remaining > 0 {
			remaining--
			s.AfterCtx(time.Microsecond, fire, nil)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += depth {
		s.Reset()
		remaining = depth
		for j := 0; j < depth; j++ {
			s.AfterCtx(time.Duration(j)*time.Microsecond, fire, nil)
		}
		s.Run()
	}
}
