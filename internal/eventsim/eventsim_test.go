package eventsim

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/xrand"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	s := New()
	var order []int
	s.At(30*time.Microsecond, func() { order = append(order, 3) })
	s.At(10*time.Microsecond, func() { order = append(order, 1) })
	s.At(20*time.Microsecond, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("execution order = %v, want [1 2 3]", order)
	}
}

func TestTieBreakIsInsertionOrder(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Millisecond, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break order broken at %d: %v", i, order)
		}
	}
}

func TestNowAdvances(t *testing.T) {
	s := New()
	var seen time.Duration
	s.At(42*time.Microsecond, func() { seen = s.Now() })
	s.Run()
	if seen != 42*time.Microsecond {
		t.Errorf("Now inside event = %v, want 42us", seen)
	}
	if s.Now() != 42*time.Microsecond {
		t.Errorf("final Now = %v, want 42us", s.Now())
	}
}

func TestAfterIsRelative(t *testing.T) {
	s := New()
	var at time.Duration
	s.At(100*time.Microsecond, func() {
		s.After(50*time.Microsecond, func() { at = s.Now() })
	})
	s.Run()
	if at != 150*time.Microsecond {
		t.Errorf("After fired at %v, want 150us", at)
	}
}

func TestPastSchedulingClampsToNow(t *testing.T) {
	s := New()
	var at time.Duration
	s.At(100*time.Microsecond, func() {
		s.At(10*time.Microsecond, func() { at = s.Now() })
	})
	s.Run()
	if at != 100*time.Microsecond {
		t.Errorf("past event fired at %v, want clamped to 100us", at)
	}
}

func TestCancelPreventsExecution(t *testing.T) {
	s := New()
	ran := false
	e := s.At(time.Millisecond, func() { ran = true })
	e.Cancel()
	if !e.Cancelled() {
		t.Error("Cancelled() should report true while the event is pending")
	}
	s.Run()
	if ran {
		t.Error("cancelled event still ran")
	}
}

func TestCancelAfterFireIsNoop(t *testing.T) {
	s := New()
	count := 0
	e := s.At(time.Millisecond, func() { count++ })
	s.Run()
	e.Cancel() // must not panic or change anything
	if count != 1 {
		t.Errorf("count = %d, want 1", count)
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	s := New()
	var fired []time.Duration
	for _, d := range []time.Duration{10, 20, 30, 40} {
		d := d * time.Millisecond
		s.At(d, func() { fired = append(fired, d) })
	}
	s.RunUntil(25 * time.Millisecond)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if s.Now() != 25*time.Millisecond {
		t.Errorf("Now = %v, want exactly the deadline", s.Now())
	}
	// Remaining events still run on a later window.
	s.RunUntil(100 * time.Millisecond)
	if len(fired) != 4 {
		t.Errorf("after second window fired = %d, want 4", len(fired))
	}
}

func TestStopHaltsLoop(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Errorf("count = %d, want 3 (stopped early)", count)
	}
	if s.Pending() != 7 {
		t.Errorf("pending = %d, want 7", s.Pending())
	}
}

func TestTicker(t *testing.T) {
	s := New()
	var times []time.Duration
	cancel := s.Ticker(10*time.Microsecond, func() {
		times = append(times, s.Now())
	})
	s.At(35*time.Microsecond, func() { cancel() })
	s.Run()
	want := []time.Duration{10 * time.Microsecond, 20 * time.Microsecond, 30 * time.Microsecond}
	if len(times) != len(want) {
		t.Fatalf("ticker fired %d times (%v), want %d", len(times), times, len(want))
	}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("tick %d at %v, want %v", i, times[i], want[i])
		}
	}
}

func TestTickerCancelInsideCallback(t *testing.T) {
	s := New()
	count := 0
	var cancel func()
	cancel = s.Ticker(time.Microsecond, func() {
		count++
		if count == 5 {
			cancel()
		}
	})
	s.Run()
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
}

func TestTickerPanicsOnNonPositiveInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New().Ticker(0, func() {})
}

func TestResetDrainsAndRewinds(t *testing.T) {
	s := New()
	ran := false
	s.At(10*time.Microsecond, func() { ran = true })
	s.At(20*time.Microsecond, func() { ran = true })
	s.Reset()
	if s.Pending() != 0 {
		t.Fatalf("pending after Reset = %d, want 0", s.Pending())
	}
	s.Run()
	if ran {
		t.Error("drained event still ran")
	}
	if s.Now() != 0 {
		t.Errorf("Now after Reset = %v, want 0", s.Now())
	}
	// A reset scheduler replays the same (time, seq) order from scratch.
	var order []int
	s.At(time.Millisecond, func() { order = append(order, 1) })
	s.At(time.Millisecond, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Errorf("post-Reset order = %v, want [1 2]", order)
	}
}

func TestStaleHandleCannotCancelRecycledEvent(t *testing.T) {
	s := New()
	h := s.At(time.Microsecond, func() {})
	s.Run() // fires and recycles the event
	ran := false
	s.At(time.Millisecond, func() { ran = true }) // reuses the slot
	h.Cancel()                                    // stale: must not touch the reused event
	if h.Cancelled() {
		t.Error("stale handle reports Cancelled")
	}
	s.Run()
	if !ran {
		t.Error("stale Cancel killed a recycled event")
	}
}

func TestZeroHandleIsInert(t *testing.T) {
	var h Handle
	h.Cancel()
	if h.Cancelled() || h.At() != 0 {
		t.Error("zero Handle should be inert")
	}
}

// TestSteadyStateSchedulingIsAllocationFree pins the kernel's core
// contract: once the heap and free list have grown to a workload's
// high-water mark, scheduling and firing events allocates nothing.
func TestSteadyStateSchedulingIsAllocationFree(t *testing.T) {
	s := New()
	var fire func(ctx any)
	fire = func(ctx any) {
		n := ctx.(*int)
		if *n > 0 {
			*n--
			s.AfterCtx(time.Microsecond, fire, n)
		}
	}
	n := 100
	s.AfterCtx(time.Microsecond, fire, &n)
	s.Run() // grow free list / heap
	allocs := testing.AllocsPerRun(10, func() {
		s.Reset()
		n = 100
		s.AfterCtx(time.Microsecond, fire, &n)
		s.Run()
	})
	if allocs > 0 {
		t.Errorf("steady-state kernel allocs/run = %v, want 0", allocs)
	}
}

// Property: with random schedule times, events always execute in
// non-decreasing time order and Now never goes backwards.
func TestMonotonicTimeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		s := New()
		var last time.Duration = -1
		ok := true
		for i := 0; i < 200; i++ {
			d := time.Duration(r.Intn(1000)) * time.Microsecond
			s.At(d, func() {
				if s.Now() < last {
					ok = false
				}
				last = s.Now()
				// Nested random scheduling.
				if r.Bool(0.3) {
					s.After(time.Duration(r.Intn(100))*time.Microsecond, func() {
						if s.Now() < last {
							ok = false
						}
						last = s.Now()
					})
				}
			})
		}
		s.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []time.Duration {
		r := xrand.New(99)
		s := New()
		var log []time.Duration
		var spawn func(depth int)
		spawn = func(depth int) {
			log = append(log, s.Now())
			if depth < 3 {
				n := r.Intn(3)
				for i := 0; i < n; i++ {
					s.After(time.Duration(r.Intn(50))*time.Microsecond, func() { spawn(depth + 1) })
				}
			}
		}
		for i := 0; i < 20; i++ {
			s.At(time.Duration(r.Intn(500))*time.Microsecond, func() { spawn(0) })
		}
		s.Run()
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
