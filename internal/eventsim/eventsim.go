// Package eventsim implements the discrete-event simulation kernel that
// drives all protocol-level experiments.
//
// The whole simulator is single-threaded and deterministic: components
// schedule closures at future virtual times on a binary-heap event queue,
// and the scheduler runs them in (time, sequence) order. Ties are broken by
// insertion order so that runs are reproducible bit-for-bit. Virtual time
// is a time.Duration measured from the start of the simulation; at 2.4 GHz
// Wi-Fi timescales (9 µs slots, 100 µs packets, 24 h deployments)
// nanosecond resolution in an int64 comfortably covers every experiment.
package eventsim

import (
	"container/heap"
	"time"
)

// Event is a scheduled callback. Cancelling an event prevents its callback
// from running but leaves it in the heap until it pops (lazy deletion).
type Event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	cancelled bool
	index     int // heap index, -1 when popped
}

// Cancel prevents the event's callback from running. Safe to call more
// than once, and safe to call after the event has fired (a no-op).
func (e *Event) Cancel() { e.cancelled = true }

// Cancelled reports whether Cancel has been called.
func (e *Event) Cancelled() bool { return e.cancelled }

// At returns the virtual time at which the event is scheduled.
func (e *Event) At() time.Duration { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Scheduler is the simulation event loop. The zero value is ready to use.
type Scheduler struct {
	now     time.Duration
	seq     uint64
	events  eventHeap
	stopped bool
}

// New returns a fresh scheduler with virtual time zero.
func New() *Scheduler { return &Scheduler{} }

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (t < Now) runs the event at the current time instead — simulated hardware
// cannot act retroactively, and clamping keeps component math simple.
func (s *Scheduler) At(t time.Duration, fn func()) *Event {
	if t < s.now {
		t = s.now
	}
	e := &Event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, e)
	return e
}

// After schedules fn to run d after the current virtual time.
func (s *Scheduler) After(d time.Duration, fn func()) *Event {
	return s.At(s.now+d, fn)
}

// Stop halts the run loop after the currently executing event returns.
func (s *Scheduler) Stop() { s.stopped = true }

// Pending returns the number of events still queued (including cancelled
// ones awaiting lazy deletion).
func (s *Scheduler) Pending() int { return len(s.events) }

// Run processes events until the queue empties or Stop is called.
func (s *Scheduler) Run() {
	s.stopped = false
	for len(s.events) > 0 && !s.stopped {
		s.step()
	}
}

// RunUntil processes events with time <= deadline, then advances the clock
// to exactly the deadline. Events scheduled beyond the deadline remain
// queued, so RunUntil can be called repeatedly to run a simulation in
// windows.
func (s *Scheduler) RunUntil(deadline time.Duration) {
	s.stopped = false
	for len(s.events) > 0 && !s.stopped {
		if s.events[0].at > deadline {
			break
		}
		s.step()
	}
	if !s.stopped && s.now < deadline {
		s.now = deadline
	}
}

// step pops and executes the earliest event.
func (s *Scheduler) step() {
	e := heap.Pop(&s.events).(*Event)
	if e.cancelled {
		return
	}
	s.now = e.at
	e.fn()
}

// Ticker invokes fn every interval until cancelled, starting one interval
// from now. It returns a cancel function.
func (s *Scheduler) Ticker(interval time.Duration, fn func()) (cancel func()) {
	if interval <= 0 {
		panic("eventsim: non-positive ticker interval")
	}
	var ev *Event
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			ev = s.After(interval, tick)
		}
	}
	ev = s.After(interval, tick)
	return func() {
		stopped = true
		if ev != nil {
			ev.Cancel()
		}
	}
}
