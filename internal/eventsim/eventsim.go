// Package eventsim implements the discrete-event simulation kernel that
// drives all protocol-level experiments.
//
// The whole simulator is single-threaded and deterministic: components
// schedule callbacks at future virtual times on a 4-ary-heap event queue,
// and the scheduler runs them in (time, sequence) order. Ties are broken by
// insertion order so that runs are reproducible bit-for-bit. Virtual time
// is a time.Duration measured from the start of the simulation; at 2.4 GHz
// Wi-Fi timescales (9 µs slots, 100 µs packets, 24 h deployments)
// nanosecond resolution in an int64 comfortably covers every experiment.
//
// The kernel is allocation-free in steady state: fired events are recycled
// through a per-scheduler free list, and the two-argument scheduling forms
// (AtCtx/AfterCtx) let hot-path components pass a long-lived callback plus
// a context word instead of allocating a fresh closure per event. Handles
// returned by the scheduling calls carry a generation number, so a stale
// Cancel on an already-recycled event is a guaranteed no-op.
package eventsim

import "time"

// Event is a scheduled callback, owned by its scheduler. Fired and
// cancelled events are recycled through the scheduler's free list, so
// components never hold a bare *Event — they hold a Handle, whose
// generation check makes use-after-recycle harmless.
type Event struct {
	at        time.Duration
	fn        func(ctx any)
	ctx       any
	gen       uint64 // bumped at recycle; validates Handles
	id        int32  // index in the scheduler's pool table
	cancelled bool
	next      *Event // free-list link
}

// Handle identifies one scheduling of an event. The zero Handle is valid
// and refers to nothing: Cancel on it is a no-op.
type Handle struct {
	e   *Event
	gen uint64
}

// Cancel prevents the event's callback from running. Safe to call more
// than once, safe on the zero Handle, and safe after the event has fired
// (the generation check turns a stale cancel into a no-op).
func (h Handle) Cancel() {
	if h.e != nil && h.e.gen == h.gen {
		h.e.cancelled = true
	}
}

// Cancelled reports whether Cancel has been called on this scheduling.
// A fired-and-recycled event reports false (it can no longer be
// cancelled).
func (h Handle) Cancelled() bool {
	return h.e != nil && h.e.gen == h.gen && h.e.cancelled
}

// At returns the virtual time this scheduling fires at, or zero if the
// event has already fired and been recycled.
func (h Handle) At() time.Duration {
	if h.e == nil || h.e.gen != h.gen {
		return 0
	}
	return h.e.at
}

// heapEntry is one queued scheduling: the (time, sequence) sort key
// inline plus the pooled event's id, packed to 16 bytes. The heap holds
// plain values, so sift shifts are pointer-free (no GC write barriers)
// and key compares hit a single contiguous cache line — both matter
// because heap traffic is the kernel's single largest steady-state cost
// once events stop allocating.
//
// seqid packs (seq << 32) | id: entries with equal times order by
// sequence (the id bits only break ties between equal sequences, which
// cannot occur — sequences are unique). The scheduler guards the 2³²
// sequence capacity per Reset with an explicit check.
type heapEntry struct {
	at    time.Duration
	seqid uint64
}

// entryLess orders entries by (time, sequence) — the kernel's
// determinism contract.
func entryLess(a, b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seqid < b.seqid
}

// eventHeap is a hand-rolled 4-ary min-heap of heapEntry values. The
// wider node halves the tree depth a push or pop traverses, trading it
// for a 4-way child scan on pop — a good trade here because the four
// children are 64 contiguous bytes (one cache line of 16-byte entries),
// so the scan is four compares on already-resident data while each
// level of depth saved is a potential cache miss. Pop order is
// arity-independent: (time, seqid) is a total order (sequences are
// unique), and any min-heap pops its global minimum, so switching arity
// cannot reorder events — the determinism contract is structural, not
// an accident of layout.
type eventHeap []heapEntry

// heapArity is the heap's branching factor. 4 keeps one node's
// children inside a single 64-byte cache line.
const heapArity = 4

// push sifts the new entry up with hole shifting: parents slide down
// one copy each until the insertion point is found, instead of paying a
// three-assignment swap per level.
func (h *eventHeap) push(e heapEntry) {
	q := append(*h, e)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / heapArity
		if !entryLess(e, q[parent]) {
			break
		}
		q[i] = q[parent]
		i = parent
	}
	q[i] = e
	*h = q
}

// pop removes the minimum, then sifts the displaced last entry down a
// hole-shifted path, scanning each node's (up to four) children for
// the smallest.
func (h *eventHeap) pop() heapEntry {
	q := *h
	n := len(q) - 1
	top := q[0]
	e := q[n]
	q = q[:n]
	*h = q
	i := 0
	for {
		c := heapArity*i + 1
		if c >= n {
			break
		}
		end := c + heapArity
		if end > n {
			end = n
		}
		min := c
		for j := c + 1; j < end; j++ {
			if entryLess(q[j], q[min]) {
				min = j
			}
		}
		if !entryLess(q[min], e) {
			break
		}
		q[i] = q[min]
		i = min
	}
	if n > 0 {
		q[i] = e
	}
	return top
}

// Scheduler is the simulation event loop. The zero value is ready to use.
type Scheduler struct {
	now     time.Duration
	seq     uint64
	events  eventHeap
	stopped bool
	free    *Event   // recycled events
	pool    []*Event // id → event, every event this scheduler ever made
}

// New returns a fresh scheduler with virtual time zero.
func New() *Scheduler { return &Scheduler{} }

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// callClosure invokes a nullary closure carried as the context word. It
// is the shared trampoline behind At/After, so the closure-taking API
// costs no allocation beyond the caller's own closure.
func callClosure(ctx any) { ctx.(func())() }

// schedule places a callback+context pair on the queue at absolute time
// t, recycling a free-listed event when one is available.
func (s *Scheduler) schedule(t time.Duration, fn func(ctx any), ctx any) Handle {
	if t < s.now {
		// Simulated hardware cannot act retroactively; clamping keeps
		// component math simple.
		t = s.now
	}
	e := s.free
	if e != nil {
		s.free = e.next
		e.next = nil
		e.cancelled = false
	} else {
		e = &Event{id: int32(len(s.pool))}
		s.pool = append(s.pool, e)
	}
	e.at = t
	e.fn = fn
	e.ctx = ctx
	if s.seq >= 1<<32 {
		// The packed heap key carries 32 sequence bits per Reset; at
		// realistic event rates this is years of simulated traffic.
		panic("eventsim: sequence counter exceeded 2^32; Reset the scheduler")
	}
	s.events.push(heapEntry{at: t, seqid: s.seq<<32 | uint64(uint32(e.id))})
	s.seq++
	return Handle{e: e, gen: e.gen}
}

// recycle returns a popped event to the free list, invalidating any
// outstanding Handles to it. fn and ctx are deliberately left in place
// — the next schedule overwrites them, and skipping the clears keeps
// the recycle path to two stores (the stale references pin at most a
// free-list's worth of dead callbacks, which the pools above already
// keep alive anyway).
//
//powifi:noalloc
func (s *Scheduler) recycle(e *Event) {
	e.gen++
	e.next = s.free
	s.free = e
}

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past (t < Now) runs the event at the current time instead.
func (s *Scheduler) At(t time.Duration, fn func()) Handle {
	return s.schedule(t, callClosure, fn)
}

// After schedules fn to run d after the current virtual time.
func (s *Scheduler) After(d time.Duration, fn func()) Handle {
	return s.schedule(s.now+d, callClosure, fn)
}

// AtCtx schedules fn(ctx) at absolute virtual time t. Unlike At, it
// allocates nothing when fn is a long-lived func value and ctx is a
// pointer — the hot-path form for per-event callbacks.
//
//powifi:noalloc
func (s *Scheduler) AtCtx(t time.Duration, fn func(ctx any), ctx any) Handle {
	return s.schedule(t, fn, ctx)
}

// AfterCtx schedules fn(ctx) to run d after the current virtual time.
//
//powifi:noalloc
func (s *Scheduler) AfterCtx(d time.Duration, fn func(ctx any), ctx any) Handle {
	return s.schedule(s.now+d, fn, ctx)
}

// Stop halts the run loop after the currently executing event returns.
func (s *Scheduler) Stop() { s.stopped = true }

// Pending returns the number of events still queued (including cancelled
// ones awaiting lazy deletion).
func (s *Scheduler) Pending() int { return len(s.events) }

// Scheduled returns the number of events scheduled since the last
// Reset. Callers that Reset per simulation window read it as the
// window's kernel event count.
func (s *Scheduler) Scheduled() uint64 { return s.seq }

// Reset drains all queued events into the free list and rewinds the
// clock and sequence counter to zero, making the scheduler ready for a
// fresh run without releasing any of its memory. Outstanding Handles are
// invalidated by the drain.
//
//powifi:noalloc
func (s *Scheduler) Reset() {
	for _, entry := range s.events {
		s.recycle(s.pool[uint32(entry.seqid)])
	}
	s.events = s.events[:0]
	s.now = 0
	s.seq = 0
	s.stopped = false
}

// Run processes events until the queue empties or Stop is called.
//
//powifi:noalloc
func (s *Scheduler) Run() {
	s.stopped = false
	for len(s.events) > 0 && !s.stopped {
		s.step()
	}
}

// RunUntil processes events with time <= deadline, then advances the clock
// to exactly the deadline. Events scheduled beyond the deadline remain
// queued, so RunUntil can be called repeatedly to run a simulation in
// windows.
//
//powifi:noalloc
func (s *Scheduler) RunUntil(deadline time.Duration) {
	s.stopped = false
	for len(s.events) > 0 && !s.stopped {
		if s.events[0].at > deadline {
			break
		}
		s.step()
	}
	if !s.stopped && s.now < deadline {
		s.now = deadline
	}
}

// step pops and executes the earliest event, then recycles it.
//
//powifi:noalloc
func (s *Scheduler) step() {
	entry := s.events.pop()
	e := s.pool[uint32(entry.seqid)]
	if e.cancelled {
		s.recycle(e)
		return
	}
	s.now = entry.at
	fn, ctx := e.fn, e.ctx
	// Recycle before running so the callback's own scheduling can reuse
	// the slot; the entry is already off the heap, so this is safe.
	s.recycle(e)
	fn(ctx)
}

// Ticker invokes fn every interval until cancelled, starting one interval
// from now. It returns a cancel function.
func (s *Scheduler) Ticker(interval time.Duration, fn func()) (cancel func()) {
	if interval <= 0 {
		panic("eventsim: non-positive ticker interval")
	}
	var ev Handle
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			ev = s.After(interval, tick)
		}
	}
	ev = s.After(interval, tick)
	return func() {
		stopped = true
		ev.Cancel()
	}
}
