// Package apidump renders the exported API surface of a Go package
// directory as a stable, sorted text document. The repo commits the
// dump of the public facade (api/powifi.txt) and CI regenerates and
// compares it, so any change to the exported API — a new option, a
// renamed field, a signature change — fails loudly until the golden
// file is intentionally regenerated.
//
// The dump is purely syntactic (go/parser, no type checking): each
// exported top-level declaration becomes one entry — constants,vars,
// funcs, type specs, and methods on exported receivers — printed via
// go/printer with bodies and comments stripped. Struct literals keep
// only their exported fields, so internal layout changes do not churn
// the surface file.
package apidump

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Dump renders the exported API of the single Go package in dir
// (ignoring _test.go files) as a sorted, newline-separated document.
func Dump(dir string) (string, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	var lines []string
	emit := func(node any) error {
		var buf bytes.Buffer
		cfg := printer.Config{Mode: printer.UseSpaces, Tabwidth: 8}
		if err := cfg.Fprint(&buf, fset, node); err != nil {
			return err
		}
		// One entry per line: collapse multi-line declarations so the
		// document diffs line-per-surface-item.
		s := strings.Join(strings.Fields(buf.String()), " ")
		lines = append(lines, s)
		return nil
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return "", err
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !exportedFunc(d) {
					continue
				}
				fn := &ast.FuncDecl{Recv: stripFieldComments(d.Recv), Name: d.Name, Type: d.Type}
				if err := emit(fn); err != nil {
					return "", err
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if !sp.Name.IsExported() {
							continue
						}
						cp := &ast.TypeSpec{Name: sp.Name, TypeParams: sp.TypeParams,
							Assign: sp.Assign, Type: exportedType(sp.Type)}
						if err := emit(&ast.GenDecl{Tok: token.TYPE, Specs: []ast.Spec{cp}}); err != nil {
							return "", err
						}
					case *ast.ValueSpec:
						for i, id := range sp.Names {
							if !id.IsExported() {
								continue
							}
							one := &ast.ValueSpec{Names: []*ast.Ident{id}, Type: sp.Type}
							if sp.Values != nil && i < len(sp.Values) {
								one.Values = []ast.Expr{sp.Values[i]}
							}
							if err := emit(&ast.GenDecl{Tok: d.Tok, Specs: []ast.Spec{one}}); err != nil {
								return "", err
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(lines)
	if len(lines) == 0 {
		return "", fmt.Errorf("apidump: no exported declarations under %s", dir)
	}
	return strings.Join(lines, "\n") + "\n", nil
}

// exportedFunc keeps exported functions and methods whose receiver
// base type is exported.
func exportedFunc(d *ast.FuncDecl) bool {
	if !d.Name.IsExported() {
		return false
	}
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	return receiverName(d.Recv.List[0].Type) == "" || ast.IsExported(receiverName(d.Recv.List[0].Type))
}

func receiverName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return receiverName(t.X)
	case *ast.IndexExpr:
		return receiverName(t.X)
	case *ast.IndexListExpr:
		return receiverName(t.X)
	}
	return ""
}

// exportedType rewrites struct types to their exported fields only
// (embedded fields count as exported when their type name is);
// everything else passes through unchanged.
func exportedType(expr ast.Expr) ast.Expr {
	st, ok := expr.(*ast.StructType)
	if !ok || st.Fields == nil {
		return expr
	}
	out := &ast.FieldList{}
	for _, f := range st.Fields.List {
		if len(f.Names) == 0 { // embedded
			if ast.IsExported(receiverName(f.Type)) {
				out.List = append(out.List, &ast.Field{Type: f.Type, Tag: f.Tag})
			}
			continue
		}
		var names []*ast.Ident
		for _, n := range f.Names {
			if n.IsExported() {
				names = append(names, n)
			}
		}
		if len(names) > 0 {
			out.List = append(out.List, &ast.Field{Names: names, Type: f.Type, Tag: f.Tag})
		}
	}
	return &ast.StructType{Struct: st.Struct, Fields: out}
}

// stripFieldComments drops doc comments from a receiver list so the
// printed form stays one line.
func stripFieldComments(fl *ast.FieldList) *ast.FieldList {
	if fl == nil {
		return nil
	}
	out := &ast.FieldList{}
	for _, f := range fl.List {
		out.List = append(out.List, &ast.Field{Names: f.Names, Type: f.Type})
	}
	return out
}
