package faultinject

import (
	"strings"
	"testing"
	"time"
)

func TestNilSetIsFreeAndSilent(t *testing.T) {
	var s *Set
	if f := s.Hit(HomePanic, 0); f != nil {
		t.Fatalf("nil set fired %+v", f)
	}
	if n := s.Fires(); n != 0 {
		t.Fatalf("nil set counted %d fires", n)
	}
	allocs := testing.AllocsPerRun(100, func() {
		s.Hit(HomePanic, 7)
	})
	if allocs != 0 {
		t.Fatalf("nil-set Hit allocates %v per call; want 0", allocs)
	}
}

func TestExplicitKeyFiresOnce(t *testing.T) {
	s, err := New(1, Fault{Site: HomePanic, Key: 5})
	if err != nil {
		t.Fatal(err)
	}
	if f := s.Hit(HomePanic, 4); f != nil {
		t.Fatalf("key 4 fired %+v", f)
	}
	if f := s.Hit(HomePanic, 5); f == nil {
		t.Fatal("key 5 did not fire")
	}
	// The default budget is one fire per key: the retry attempt passes.
	if f := s.Hit(HomePanic, 5); f != nil {
		t.Fatalf("key 5 fired twice with default budget: %+v", f)
	}
	if got := s.Fires(); got != 1 {
		t.Fatalf("Fires() = %d, want 1", got)
	}
}

func TestTimesBudgetPerKey(t *testing.T) {
	s, err := New(1, Fault{Site: HomePanic, Every: 2, Times: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if s.Hit(HomePanic, 4) == nil {
			t.Fatalf("fire %d of 3 on key 4 missed", i+1)
		}
	}
	if s.Hit(HomePanic, 4) != nil {
		t.Fatal("key 4 fired beyond its times=3 budget")
	}
	// Budgets are per key, not shared: key 6 has its own three fires.
	if s.Hit(HomePanic, 6) == nil {
		t.Fatal("key 6 blocked by key 4's budget")
	}

	unlimited, err := New(1, Fault{Site: HomePanic, Key: 0, Times: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if unlimited.Hit(HomePanic, 0) == nil {
			t.Fatalf("unlimited fault stopped at fire %d", i)
		}
	}
}

func TestEverySelector(t *testing.T) {
	s, err := New(1, Fault{Site: HomeSlow, Every: 3, Delay: time.Millisecond, Times: -1})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 10; k++ {
		fired := s.Hit(HomeSlow, k) != nil
		if want := k%3 == 0; fired != want {
			t.Fatalf("key %d: fired=%v, want %v", k, fired, want)
		}
	}
}

func TestProbSelectorDeterministic(t *testing.T) {
	pick := func(seed uint64) []int {
		s, err := New(seed, Fault{Site: HomePanic, Prob: 0.25, Times: -1})
		if err != nil {
			t.Fatal(err)
		}
		var keys []int
		for k := 0; k < 400; k++ {
			if s.Hit(HomePanic, k) != nil {
				keys = append(keys, k)
			}
		}
		return keys
	}
	a, b := pick(42), pick(42)
	if len(a) == 0 || len(a) == 400 {
		t.Fatalf("p=0.25 over 400 keys fired %d times; selector is degenerate", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("same seed fired %d vs %d keys", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at pick %d: %d vs %d", i, a[i], b[i])
		}
	}
	// Roughly a quarter of keys — generous 3σ-ish bounds, this is a
	// determinism test not a statistics test.
	if len(a) < 60 || len(a) > 140 {
		t.Fatalf("p=0.25 over 400 keys fired %d times; want roughly 100", len(a))
	}
	if c := pick(43); len(c) == len(a) && equalInts(c, a) {
		t.Fatal("different seeds picked identical key sets")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestParseSpec(t *testing.T) {
	s, err := Parse(7, "home.panic@5; home.slow@every=3,delay=5ms; checkpoint.corrupt@p=0.5,times=2")
	if err != nil {
		t.Fatal(err)
	}
	if s.Hit(HomePanic, 5) == nil {
		t.Fatal("home.panic@5 did not fire on key 5")
	}
	slow := s.Hit(HomeSlow, 6)
	if slow == nil {
		t.Fatal("home.slow@every=3 did not fire on key 6")
	}
	if slow.Delay != 5*time.Millisecond {
		t.Fatalf("delay = %v, want 5ms", slow.Delay)
	}

	bad := []string{
		"",                         // arming nothing is a typo
		"home.panic",               // no selector
		"warp.core@1",              // unknown site
		"home.panic@x",             // non-integer key
		"home.panic@every=2,p=0.5", // two selectors
		"home.panic@1,speed=9",     // unknown option
		"home.slow@1",              // slow without delay
		"home.panic@p=1.5",         // probability out of range
		"home.panic@1,delay=-2ms",  // negative delay
	}
	for _, spec := range bad {
		if _, err := Parse(1, spec); err == nil {
			t.Errorf("Parse(%q) accepted a bad spec", spec)
		}
	}
}

func TestPanicValueRendering(t *testing.T) {
	got := PanicValue{Site: HomePanic, Key: 17}.String()
	want := "faultinject: injected panic (home.panic key 17)"
	if got != want {
		t.Fatalf("PanicValue = %q, want %q", got, want)
	}
	if !strings.Contains(got, "faultinject") {
		t.Fatal("panic rendering must be attributable to the injector")
	}
}
