// Package faultinject is the deterministic failure-injection registry
// behind the fleet engine's chaos certification: armed failpoints that
// make a specific home panic or stall, a checkpoint write tear, a
// rename fail, or a serialized payload rot — on demand, reproducibly,
// at any worker count.
//
// # Determinism contract
//
// A fault never draws from the simulation's random streams. Selection
// is a pure function of (registry seed, site, key): explicit keys and
// every-Nth selectors are arithmetic, and probabilistic selectors hash
// (seed, site, key) through the same label-stream fold the simulator
// uses (internal/xrand), so whether home 17 panics depends only on the
// armed spec — never on scheduling, worker count, or which faults
// fired before. Per-key fire counts are tracked so a retried home can
// deterministically succeed (the default arms one fire per key).
//
// # Zero overhead when disabled
//
// Like internal/telemetry, the disabled state is a nil *Set: every
// method nil-checks and returns, costing one branch and zero
// allocations on the instrumented paths. Production runs never
// construct a Set; tests and the hidden -faults CLI flag do.
package faultinject

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/xrand"
)

// Site names an instrumented failpoint. The fleet engine consults each
// site with a deterministic key: the home index for home sites, the
// session-local write generation (0, 1, ...) for checkpoint sites.
type Site string

// The armed sites. Anything else is a spec error — a typo'd site must
// fail loudly at arm time, not silently never fire.
const (
	// HomePanic panics the keyed home's simulation attempt (the fleet
	// worker's supervisor converts it into a structured HomeError).
	HomePanic Site = "home.panic"
	// HomeSlow sleeps the fault's Delay before the keyed home's
	// attempt — deadline pressure for budget certification.
	HomeSlow Site = "home.slow"
	// CheckpointShortWrite truncates the keyed checkpoint write to half
	// its payload: a torn write that the envelope checksum must catch
	// on resume.
	CheckpointShortWrite Site = "checkpoint.short-write"
	// CheckpointRenameFail fails the keyed checkpoint's atomic rename;
	// the writer must clean its temp file and keep the last good
	// generation reachable.
	CheckpointRenameFail Site = "checkpoint.rename-fail"
	// CheckpointCorrupt flips one payload bit in the keyed checkpoint
	// write: bit rot that the checksum must catch on resume.
	CheckpointCorrupt Site = "checkpoint.corrupt"
)

// Sites lists every armable site, for spec validation and docs.
func Sites() []Site {
	return []Site{HomePanic, HomeSlow, CheckpointShortWrite, CheckpointRenameFail, CheckpointCorrupt}
}

func knownSite(s Site) bool {
	for _, k := range Sites() {
		if s == k {
			return true
		}
	}
	return false
}

// Fault is one armed failpoint. Exactly one selector applies: Every
// and Prob when positive, otherwise the explicit Key. Times bounds the
// fires per key — the default (0) arms a single fire, so a retried
// home deterministically succeeds on its second attempt; a negative
// Times fires on every hit.
type Fault struct {
	Site Site
	// Key is the explicit key to fire on (home index, checkpoint write
	// generation). Ignored when Every or Prob is set.
	Key int
	// Every fires on every key divisible by it (key%Every == 0).
	Every int
	// Prob fires on each key with the given probability, decided by a
	// label-seeded hash of (seed, site, key) — deterministic per key,
	// independent of workers and of other faults.
	Prob float64
	// Times is the per-key fire budget: 0 means once, n > 0 means n
	// times, negative means unlimited.
	Times int
	// Delay is the sleep HomeSlow injects.
	Delay time.Duration
}

func (f Fault) validate() error {
	if !knownSite(f.Site) {
		return fmt.Errorf("faultinject: unknown site %q (known: %v)", f.Site, Sites())
	}
	if f.Every > 0 && f.Prob > 0 {
		return fmt.Errorf("faultinject: %s arms both every=%d and p=%g; pick one selector", f.Site, f.Every, f.Prob)
	}
	if f.Every < 0 || f.Prob < 0 || f.Prob > 1 {
		return fmt.Errorf("faultinject: %s has an invalid selector (every=%d, p=%g)", f.Site, f.Every, f.Prob)
	}
	if f.Key < 0 && f.Every == 0 && f.Prob == 0 {
		return fmt.Errorf("faultinject: %s has a negative key %d", f.Site, f.Key)
	}
	if f.Delay < 0 {
		return fmt.Errorf("faultinject: %s has a negative delay %v", f.Site, f.Delay)
	}
	if f.Site == HomeSlow && f.Delay == 0 {
		return fmt.Errorf("faultinject: %s needs delay=<duration>", f.Site)
	}
	return nil
}

// armed is one fault plus its per-key fire ledger.
type armed struct {
	Fault
	label string // precomputed probabilistic-selector label prefix
	fired map[int]int
}

// PanicValue is the value an injected HomePanic carries; its rendering
// is deterministic so recovered panic messages compare bit-identically
// across runs and worker counts.
type PanicValue struct {
	Site Site
	Key  int
}

func (p PanicValue) String() string {
	return fmt.Sprintf("faultinject: injected panic (%s key %d)", p.Site, p.Key)
}

// Set is an armed fault registry. A nil *Set is the disabled state —
// every method is nil-receiver safe and free. A non-nil Set is safe
// for concurrent use by the run's workers (fault paths are cold; a
// mutex guards the fire ledgers).
type Set struct {
	seed uint64

	mu    sync.Mutex
	sites map[Site][]*armed
	fires int
}

// New arms a registry. The seed feeds only probabilistic selectors; it
// should be the run's root seed so a probabilistic chaos run is as
// reproducible as the simulation itself.
func New(seed uint64, faults ...Fault) (*Set, error) {
	if len(faults) == 0 {
		return nil, fmt.Errorf("faultinject: no faults to arm")
	}
	s := &Set{seed: seed, sites: make(map[Site][]*armed)}
	for _, f := range faults {
		if err := f.validate(); err != nil {
			return nil, err
		}
		s.sites[f.Site] = append(s.sites[f.Site], &armed{
			Fault: f,
			label: "faultinject/" + string(f.Site) + "/",
			fired: make(map[int]int),
		})
	}
	return s, nil
}

// selects reports whether the fault's selector matches the key,
// independent of fire history.
func (a *armed) selects(seed uint64, key int) bool {
	switch {
	case a.Every > 0:
		return key%a.Every == 0
	case a.Prob > 0:
		h := finalize(xrand.LabelSeedInt(seed, a.label, key))
		return float64(h>>11)/(1<<53) < a.Prob
	default:
		return key == a.Key
	}
}

// finalize avalanches a label-fold hash (splitmix64's output mix): raw
// FNV folds over short decimal suffixes barely move the top bits, and
// the probabilistic selector reads exactly those bits.
func finalize(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// Hit consults the site with a key and returns the fault that fires,
// or nil. Each armed fault honors its per-key Times budget, so a
// default-armed panic fires on a home's first attempt and lets the
// retry through. Nil-safe: a disabled registry costs one branch.
//
//powifi:noalloc
func (s *Set) Hit(site Site, key int) *Fault {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.sites[site] {
		if !a.selects(s.seed, key) {
			continue
		}
		budget := a.Times
		if budget == 0 {
			budget = 1
		}
		if n := a.fired[key]; budget > 0 && n >= budget {
			continue
		}
		a.fired[key]++
		s.fires++
		return &a.Fault
	}
	return nil
}

// Fires returns the total number of faults fired so far (0 on a nil
// Set) — the chaos suites' assertion hook.
//
//powifi:noalloc
func (s *Set) Fires() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fires
}

// Parse arms a registry from the hidden -faults CLI spec: faults
// separated by ';', each
//
//	site@SELECTOR[,times=N][,delay=DURATION]
//
// where SELECTOR is an explicit integer key, "every=N", or "p=F".
// Examples:
//
//	home.panic@5
//	home.slow@every=3,delay=5ms
//	checkpoint.corrupt@1;checkpoint.rename-fail@2
//	home.panic@p=0.01,times=-1
//
// An empty spec is an error: arming nothing is a typo, not a request.
func Parse(seed uint64, spec string) (*Set, error) {
	var faults []Fault
	for _, item := range strings.Split(spec, ";") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		site, rest, ok := strings.Cut(item, "@")
		if !ok {
			return nil, fmt.Errorf("faultinject: %q: want site@selector", item)
		}
		f := Fault{Site: Site(strings.TrimSpace(site))}
		parts := strings.Split(rest, ",")
		if err := parseSelector(&f, strings.TrimSpace(parts[0])); err != nil {
			return nil, fmt.Errorf("faultinject: %q: %w", item, err)
		}
		for _, opt := range parts[1:] {
			k, v, ok := strings.Cut(strings.TrimSpace(opt), "=")
			if !ok {
				return nil, fmt.Errorf("faultinject: %q: option %q: want key=value", item, opt)
			}
			switch k {
			case "times":
				n, err := strconv.Atoi(v)
				if err != nil {
					return nil, fmt.Errorf("faultinject: %q: times: %w", item, err)
				}
				f.Times = n
			case "delay":
				d, err := time.ParseDuration(v)
				if err != nil {
					return nil, fmt.Errorf("faultinject: %q: delay: %w", item, err)
				}
				f.Delay = d
			default:
				return nil, fmt.Errorf("faultinject: %q: unknown option %q (want times or delay)", item, k)
			}
		}
		faults = append(faults, f)
	}
	return New(seed, faults...)
}

// parseSelector fills the fault's selector from the spec fragment.
func parseSelector(f *Fault, sel string) error {
	switch {
	case strings.HasPrefix(sel, "every="):
		n, err := strconv.Atoi(sel[len("every="):])
		if err != nil {
			return fmt.Errorf("every: %w", err)
		}
		f.Every = n
	case strings.HasPrefix(sel, "p="):
		p, err := strconv.ParseFloat(sel[len("p="):], 64)
		if err != nil {
			return fmt.Errorf("p: %w", err)
		}
		f.Prob = p
	default:
		k, err := strconv.Atoi(sel)
		if err != nil {
			return fmt.Errorf("selector %q: want an integer key, every=N or p=F", sel)
		}
		f.Key = k
	}
	return nil
}
