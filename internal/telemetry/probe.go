package telemetry

import (
	"repro/internal/stats"
)

// Per-worker home-harvest shard configuration. Mirrors the fleet
// summary's harvest sketch resolution so the telemetry histogram and
// the report CDF describe the same range.
const (
	harvestShardHiUW = 500
	harvestShardBins = 2000

	shardHomesHi   = 1 << 16
	shardHomesBins = 256

	homeWallHiMS   = 60_000
	homeWallMSBins = 1200
)

// SurfaceCounters counts operating-point surface queries by outcome:
// grid hits, exact-solver fallbacks on domain exit, and guard-band
// triggers near the Seiko startup threshold. All methods are nil-safe.
type SurfaceCounters struct {
	hits, exact, guard *Counter
}

// Hit counts a query answered from the interpolation grid.
func (c *SurfaceCounters) Hit() {
	if c != nil {
		c.hits.Inc()
	}
}

// ExactFallback counts a query that left the grid domain and was
// re-solved exactly.
func (c *SurfaceCounters) ExactFallback() {
	if c != nil {
		c.exact.Inc()
	}
}

// GuardBand counts a query inside the Seiko startup guard band, where
// the surface defers to the exact solver by design.
func (c *SurfaceCounters) GuardBand() {
	if c != nil {
		c.guard.Inc()
	}
}

// SamplerCounters counts sampler activity: logging bins simulated
// (work, workers-invariant) and pool reuse (scheduling diagnostic).
// All methods are nil-safe.
type SamplerCounters struct {
	bins               *Counter
	poolHits, poolMiss *Counter
}

// Bin counts one simulated logging bin.
func (c *SamplerCounters) Bin() {
	if c != nil {
		c.bins.Inc()
	}
}

// PoolHit counts a sampler acquired from the pool.
func (c *SamplerCounters) PoolHit() {
	if c != nil {
		c.poolHits.Inc()
	}
}

// PoolMiss counts a sampler freshly allocated because the pool was
// empty.
func (c *SamplerCounters) PoolMiss() {
	if c != nil {
		c.poolMiss.Inc()
	}
}

// LifecycleCounters counts device-lifecycle activity: boot and
// brownout transitions and ledger (per-bin hook) events. All methods
// are nil-safe.
type LifecycleCounters struct {
	boots, brownouts, ledger *Counter
}

// Boot counts a device entering the operating state.
func (c *LifecycleCounters) Boot() {
	if c != nil {
		c.boots.Inc()
	}
}

// Brownout counts a device dropping out of the operating state.
func (c *LifecycleCounters) Brownout() {
	if c != nil {
		c.brownouts.Inc()
	}
}

// LedgerEvent counts one ledger hook invocation.
func (c *LifecycleCounters) LedgerEvent() {
	if c != nil {
		c.ledger.Inc()
	}
}

// FailureCounters counts the failure path: injected faults, per-home
// retry attempts, and homes quarantined under the skip policy. All
// methods are nil-safe.
type FailureCounters struct {
	faults, retries, quarantined *Counter
}

// Fault counts one injected fault firing.
func (c *FailureCounters) Fault() {
	if c != nil {
		c.faults.Inc()
	}
}

// Retry counts one home re-attempt after a recovered panic.
func (c *FailureCounters) Retry() {
	if c != nil {
		c.retries.Inc()
	}
}

// Quarantined counts one home skipped after exhausting its attempts.
func (c *FailureCounters) Quarantined() {
	if c != nil {
		c.quarantined.Inc()
	}
}

// SurfaceCounters returns the run's surface counter group (one shared
// instance; the underlying counters are atomic). Nil on a nil Run.
func (t *Run) SurfaceCounters() *SurfaceCounters {
	if t == nil {
		return nil
	}
	hits := t.Counter(CounterSurfaceHits)
	exact := t.Counter(CounterSurfaceExact)
	guard := t.Counter(CounterSurfaceGuardBand)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.surface == nil {
		t.surface = &SurfaceCounters{hits: hits, exact: exact, guard: guard}
	}
	return t.surface
}

// SamplerCounters returns the run's sampler counter group. Nil on a
// nil Run.
func (t *Run) SamplerCounters() *SamplerCounters {
	if t == nil {
		return nil
	}
	bins := t.Counter(CounterBins)
	hits := t.SchedCounter(SchedPoolHits)
	miss := t.SchedCounter(SchedPoolMisses)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sampler == nil {
		t.sampler = &SamplerCounters{bins: bins, poolHits: hits, poolMiss: miss}
	}
	return t.sampler
}

// LifecycleCounters returns the run's lifecycle counter group. Nil on
// a nil Run.
func (t *Run) LifecycleCounters() *LifecycleCounters {
	if t == nil {
		return nil
	}
	boots := t.Counter(CounterLifecycleBoots)
	brown := t.Counter(CounterLifecycleBrownouts)
	ledger := t.Counter(CounterLifecycleLedger)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.lifecycle == nil {
		t.lifecycle = &LifecycleCounters{boots: boots, brownouts: brown, ledger: ledger}
	}
	return t.lifecycle
}

// FailureCounters returns the run's failure counter group. Nil on a
// nil Run.
func (t *Run) FailureCounters() *FailureCounters {
	if t == nil {
		return nil
	}
	faults := t.Counter(CounterFaultsInjected)
	retries := t.Counter(CounterHomeRetries)
	quar := t.Counter(CounterHomesQuarantined)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.failure == nil {
		t.failure = &FailureCounters{faults: faults, retries: retries, quarantined: quar}
	}
	return t.failure
}

// Probe is one worker's view of the run telemetry. Counters go
// straight to the run's shared atomics (commutative, so sharding never
// changes the totals); distribution samples accumulate in a private
// stats.Sketch shard that Close folds in exactly. A nil *Probe
// (telemetry disabled) ignores every call.
type Probe struct {
	run     *Run
	homes   uint64
	silent  *Counter
	harvest *stats.Sketch
	wall    *stats.Sketch
}

// NewProbe creates a worker probe. Nil on a nil Run.
func (t *Run) NewProbe() *Probe {
	if t == nil {
		return nil
	}
	return &Probe{
		run:     t,
		silent:  t.Counter(CounterSilentBins),
		harvest: stats.NewSketch(0, harvestShardHiUW, harvestShardBins),
		wall:    stats.NewSketch(0, homeWallHiMS, homeWallMSBins),
	}
}

// Surface returns the run's surface counter group.
func (p *Probe) Surface() *SurfaceCounters {
	if p == nil {
		return nil
	}
	return p.run.SurfaceCounters()
}

// Sampler returns the run's sampler counter group.
func (p *Probe) Sampler() *SamplerCounters {
	if p == nil {
		return nil
	}
	return p.run.SamplerCounters()
}

// Lifecycle returns the run's lifecycle counter group.
func (p *Probe) Lifecycle() *LifecycleCounters {
	if p == nil {
		return nil
	}
	return p.run.LifecycleCounters()
}

// Failure returns the run's failure counter group.
func (p *Probe) Failure() *FailureCounters {
	if p == nil {
		return nil
	}
	return p.run.FailureCounters()
}

// ObserveHome records one completed home: its silent-bin count folds
// into the shared counter and its mean harvested power lands in the
// worker's private sketch shard.
func (p *Probe) ObserveHome(silentBins uint64, meanHarvestUW float64) {
	if p == nil {
		return
	}
	p.homes++
	p.silent.Add(silentBins)
	p.harvest.Add(meanHarvestUW)
}

// ObserveHomeWall records one home's simulate wall time: the sample
// lands in the worker's private wall-time sketch shard, and the home is
// offered to the run's slowest-homes table. Both are scheduling
// observations (wall clock varies with parallelism by nature).
func (p *Probe) ObserveHomeWall(index int, label string, wallMS float64, dominant string) {
	if p == nil {
		return
	}
	p.wall.Add(wallMS)
	p.run.ObserveSlowHome(SlowHome{Index: index, Label: label, WallMS: wallMS, DominantSpan: dominant})
}

// Close folds the probe's shard into the run: the harvest sketch
// merges exactly into the work histogram, and the worker's home count
// and wall-time samples land in the scheduling-diagnostic histograms.
// Safe to call on a nil probe; the error is impossible when every shard
// came from NewProbe (identical sketch configuration by construction).
func (p *Probe) Close() error {
	if p == nil {
		return nil
	}
	if err := p.run.mergeHistogram(HistHomeHarvestUW, p.harvest); err != nil {
		return err
	}
	p.run.Histogram(HistShardHomes, 0, shardHomesHi, shardHomesBins).Observe(float64(p.homes))
	if p.wall.N() > 0 {
		if err := p.run.mergeHistogram(HistHomeWallMS, p.wall); err != nil {
			return err
		}
	}
	return nil
}
