package telemetry

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/stats"
)

// Counter is a monotonically increasing uint64. Increments are single
// atomic adds — safe from any worker, and because integer addition is
// commutative the total is exactly the same however the work was
// sharded. A nil *Counter (telemetry disabled) ignores every call and
// reads as zero.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
//
//powifi:noalloc
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
//
//powifi:noalloc
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current total (zero on a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins float64, stored as atomic bits so a
// mid-run HTTP snapshot never reads a torn value. A nil *Gauge ignores
// every call and reads as zero.
type Gauge struct {
	bits atomic.Uint64
}

// Set records the value.
//
//powifi:noalloc
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last value set (zero on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a mutex-guarded stats.Sketch. Workers do not observe
// into it directly on the hot path — each worker fills a private shard
// (see Probe) that is folded in exactly once, so the merged counts are
// identical at any worker count. The lock only matters for direct
// Observe callers and for concurrent snapshots.
type Histogram struct {
	mu sync.Mutex
	s  *stats.Sketch
}

// Observe records one sample. No-op on a nil histogram.
//
//powifi:noalloc
func (h *Histogram) Observe(x float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.s.Add(x)
	h.mu.Unlock()
}

// snapshot summarizes the sketch; the zero HistogramSnapshot stands in
// for an empty sketch (its Min/Max/quantiles are NaN, which neither
// JSON nor the text exports can carry).
func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.s.N() == 0 {
		return HistogramSnapshot{}
	}
	under, over := h.s.OutOfRange()
	return HistogramSnapshot{
		N:         h.s.N(),
		Mean:      h.s.Mean(),
		Min:       h.s.Min(),
		Max:       h.s.Max(),
		P50:       h.s.Quantile(0.50),
		P95:       h.s.Quantile(0.95),
		P99:       h.s.Quantile(0.99),
		Underflow: under,
		Overflow:  over,
	}
}
