package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestNilRunIsInertAndAllocFree(t *testing.T) {
	var run *Run
	c := run.Counter(CounterBins)
	g := run.Gauge(GaugeBinsPerSec)
	h := run.Histogram(HistHomeHarvestUW, 0, 1, 10)
	p := run.NewProbe()
	if c != nil || g != nil || h != nil || p != nil {
		t.Fatalf("nil run must hand out nil metrics: %v %v %v %v", c, g, h, p)
	}
	end := run.Span(SpanSimulate)

	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(7)
		g.Set(1.5)
		h.Observe(2.5)
		p.ObserveHome(3, 4.5)
		p.Surface().Hit()
		p.Sampler().Bin()
		p.Lifecycle().Boot()
		_ = p.Close()
	})
	if allocs != 0 {
		t.Fatalf("disabled telemetry allocated %v times per op", allocs)
	}
	end()
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatalf("nil metrics must read zero")
	}
	if snap := run.Snapshot(); !reflect.DeepEqual(snap, Snapshot{}) {
		t.Fatalf("nil run snapshot = %+v, want zero", snap)
	}
	if err := run.WritePrometheus(io.Discard); err != nil {
		t.Fatalf("nil run WritePrometheus: %v", err)
	}
}

func TestCountersGaugesHistograms(t *testing.T) {
	run := NewRun()
	run.Counter(CounterHomes).Add(5)
	run.Counter(CounterHomes).Inc()
	run.SchedCounter(SchedPoolHits).Add(3)
	run.Gauge(GaugeBinsPerSec).Set(123.5)
	h := run.Histogram("x", 0, 10, 100)
	for i := 0; i < 10; i++ {
		h.Observe(float64(i))
	}

	snap := run.Snapshot()
	if got := snap.Counters[CounterHomes]; got != 6 {
		t.Fatalf("homes = %d, want 6", got)
	}
	if got := snap.Sched[SchedPoolHits]; got != 3 {
		t.Fatalf("pool hits = %d, want 3", got)
	}
	if _, ok := snap.Counters[SchedPoolHits]; ok {
		t.Fatalf("sched counter leaked into work counters")
	}
	if got := snap.Gauges[GaugeBinsPerSec]; got != 123.5 {
		t.Fatalf("gauge = %v, want 123.5", got)
	}
	hs := snap.Histograms["x"]
	if hs.N != 10 || hs.Min != 0 || hs.Max != 9 {
		t.Fatalf("histogram snapshot = %+v", hs)
	}
}

func TestEmptyHistogramSnapshotIsFinite(t *testing.T) {
	run := NewRun()
	run.Histogram("empty", 0, 1, 10)
	snap := run.Snapshot()
	if hs := snap.Histograms["empty"]; hs != (HistogramSnapshot{}) {
		t.Fatalf("empty histogram snapshot = %+v, want zero", hs)
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot with empty histogram must marshal: %v", err)
	}
}

func TestProbeShardsMergeExactly(t *testing.T) {
	// One probe observing all homes vs. three probes splitting them:
	// the merged work metrics must be identical.
	values := []float64{1, 2, 3, 50, 100, 200, 350, 499, 7, 42}

	single := NewRun()
	p := single.NewProbe()
	for _, v := range values {
		p.ObserveHome(1, v)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	sharded := NewRun()
	probes := []*Probe{sharded.NewProbe(), sharded.NewProbe(), sharded.NewProbe()}
	for i, v := range values {
		probes[i%3].ObserveHome(1, v)
	}
	for _, p := range probes {
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
	}

	a, b := single.Snapshot(), sharded.Snapshot()
	if !reflect.DeepEqual(a.Counters, b.Counters) {
		t.Fatalf("counters diverge across sharding:\n1 probe:  %v\n3 probes: %v", a.Counters, b.Counters)
	}
	if !reflect.DeepEqual(a.Histograms[HistHomeHarvestUW], b.Histograms[HistHomeHarvestUW]) {
		t.Fatalf("harvest histogram diverges across sharding:\n%+v\n%+v",
			a.Histograms[HistHomeHarvestUW], b.Histograms[HistHomeHarvestUW])
	}
	// Shard occupancy is a diagnostic and SHOULD differ here.
	if a.Histograms[HistShardHomes].N == b.Histograms[HistShardHomes].N {
		t.Fatalf("shard-occupancy diagnostic should see different probe counts")
	}
}

func TestCountersAreRaceFree(t *testing.T) {
	run := NewRun()
	c := run.Counter(CounterBins)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}

func TestSpansRecordWallAndCPU(t *testing.T) {
	run := NewRun()
	end := run.Span(SpanSimulate)
	// Burn a little CPU so the span has something to see.
	x := 0.0
	for i := 0; i < 1_000_000; i++ {
		x += float64(i % 7)
	}
	_ = x
	end()
	snap := run.Snapshot()
	if len(snap.Spans) != 1 {
		t.Fatalf("spans = %+v, want one", snap.Spans)
	}
	sp := snap.Spans[0]
	if sp.Name != SpanSimulate || sp.WallS <= 0 {
		t.Fatalf("span = %+v", sp)
	}
	if sp.CPUS < 0 {
		t.Fatalf("span CPU went negative: %+v", sp)
	}
}

func TestManifestAndConfigHash(t *testing.T) {
	type cfg struct{ Homes, Workers int }
	h1 := HashConfig(cfg{Homes: 10})
	h2 := HashConfig(cfg{Homes: 10})
	h3 := HashConfig(cfg{Homes: 11})
	if h1 != h2 {
		t.Fatalf("hash not deterministic: %s vs %s", h1, h2)
	}
	if h1 == h3 {
		t.Fatalf("distinct configs hash equal: %s", h1)
	}

	run := NewRun()
	run.SetManifest(Manifest{Seed: 42, ConfigHash: h1, Workers: 4, ElapsedS: 1.5, HomesPerSec: 10})
	m := run.Snapshot().Manifest
	if m.Seed != 42 || m.ConfigHash != h1 || m.Workers != 4 {
		t.Fatalf("manifest = %+v", m)
	}
	if m.GoVersion == "" {
		t.Fatalf("manifest must carry a go version")
	}
}

func TestPrometheusExportParses(t *testing.T) {
	run := NewRun()
	run.SetManifest(Manifest{Seed: 9, ConfigHash: "abc", Workers: 2, ElapsedS: 0.5, HomesPerSec: 6})
	run.Counter(CounterHomes).Add(3)
	run.SchedCounter(SchedPoolMisses).Add(2)
	run.Gauge(GaugeAllocsPerBin).Set(4.25)
	h := run.Histogram(HistHomeHarvestUW, 0, 500, 100)
	h.Observe(10)
	h.Observe(20)
	run.Span(SpanReduce)()

	var buf bytes.Buffer
	if err := run.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	// Minimal exposition-format checks: every non-comment line is
	// "name[{labels}] value", names carry the powifi_ prefix, and the
	// values we set round-trip.
	want := map[string]string{
		"powifi_homes_total":               "3",
		"powifi_sampler_pool_misses_total": "2",
		"powifi_allocs_per_bin":            "4.25",
		"powifi_home_harvest_uw_count":     "2",
	}
	seen := map[string]string{}
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
		name := fields[0]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		if !strings.HasPrefix(name, "powifi_") {
			t.Fatalf("metric %q missing powifi_ prefix", fields[0])
		}
		seen[fields[0]] = fields[1]
	}
	for name, val := range want {
		if got := seen[name]; got != val {
			t.Fatalf("%s = %q, want %q\nfull output:\n%s", name, got, val, out)
		}
	}
	if _, ok := seen[`powifi_span_wall_seconds{phase="reduce"}`]; !ok {
		t.Fatalf("span line missing:\n%s", out)
	}

	// A finished run renders identically on every write.
	var again bytes.Buffer
	if err := run.WritePrometheus(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != out {
		t.Fatalf("repeated export not byte-identical")
	}
}

func TestHandlerServesMetricsAndExpvar(t *testing.T) {
	run := NewRun()
	run.Counter(CounterHomes).Add(7)
	srv := httptest.NewServer(run.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "powifi_homes_total 7") {
		t.Fatalf("/metrics output:\n%s", body)
	}

	resp, err = srv.Client().Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars struct {
		Powifi *Snapshot `json:"powifi"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("expvar JSON: %v", err)
	}
	if vars.Powifi == nil || vars.Powifi.Counters[CounterHomes] != 7 {
		t.Fatalf("expvar snapshot = %+v", vars.Powifi)
	}

	// A second run taking over the expvar slot must not panic and must
	// win the "powifi" var.
	run2 := NewRun()
	run2.Counter(CounterHomes).Add(1)
	srv2 := httptest.NewServer(run2.Handler())
	defer srv2.Close()
	resp, err = srv2.Client().Get(srv2.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	vars.Powifi = nil
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	if vars.Powifi == nil || vars.Powifi.Counters[CounterHomes] != 1 {
		t.Fatalf("expvar did not switch to the newest run: %+v", vars.Powifi)
	}
}
