//go:build !unix

package telemetry

// processCPUSeconds has no portable implementation off unix; span CPU
// fields read zero there while wall times stay accurate.
func processCPUSeconds() float64 { return 0 }
