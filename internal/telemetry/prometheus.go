package telemetry

import (
	"fmt"
	"io"
	"strconv"
)

// promPrefix namespaces every exported metric.
const promPrefix = "powifi_"

// WritePrometheus renders the run in Prometheus text exposition format
// (version 0.0.4). The output is derived from the same Snapshot that
// backs the JSON and expvar exports, key-sorted, so repeated writes of
// a finished run are byte-identical. Work counters and scheduling
// diagnostics both render as counters ("_total"); the sched class is
// marked in its HELP line. Histograms render summary-style with
// quantile labels. A nil Run writes nothing.
func (t *Run) WritePrometheus(w io.Writer) error {
	if t == nil {
		return nil
	}
	return t.Snapshot().WritePrometheus(w)
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format; see Run.WritePrometheus.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	bw := &errWriter{w: w}

	bw.printf("# HELP %srun_info run manifest (value is always 1; fields are labels)\n", promPrefix)
	bw.printf("# TYPE %srun_info gauge\n", promPrefix)
	bw.printf("%srun_info{seed=%q,config_hash=%q,go_version=%q,workers=%q} 1\n",
		promPrefix, strconv.FormatUint(s.Manifest.Seed, 10), s.Manifest.ConfigHash,
		s.Manifest.GoVersion, strconv.Itoa(s.Manifest.Workers))
	if s.Manifest.ElapsedS > 0 {
		bw.gauge("elapsed_seconds", "run wall time", s.Manifest.ElapsedS)
	}
	if s.Manifest.HomesPerSec > 0 {
		bw.gauge("homes_per_second", "run throughput", s.Manifest.HomesPerSec)
	}

	for _, name := range sortedKeys(s.Counters) {
		bw.printf("# HELP %s%s_total work counter (workers-invariant)\n", promPrefix, name)
		bw.printf("# TYPE %s%s_total counter\n", promPrefix, name)
		bw.printf("%s%s_total %d\n", promPrefix, name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Sched) {
		bw.printf("# HELP %s%s_total scheduling diagnostic (varies with worker count)\n", promPrefix, name)
		bw.printf("# TYPE %s%s_total counter\n", promPrefix, name)
		bw.printf("%s%s_total %d\n", promPrefix, name, s.Sched[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		bw.gauge(name, "run gauge", s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		bw.printf("# HELP %s%s distribution summary\n", promPrefix, name)
		bw.printf("# TYPE %s%s summary\n", promPrefix, name)
		bw.printf("%s%s{quantile=\"0.5\"} %s\n", promPrefix, name, formatFloat(h.P50))
		bw.printf("%s%s{quantile=\"0.95\"} %s\n", promPrefix, name, formatFloat(h.P95))
		bw.printf("%s%s{quantile=\"0.99\"} %s\n", promPrefix, name, formatFloat(h.P99))
		bw.printf("%s%s_sum %s\n", promPrefix, name, formatFloat(h.Mean*float64(h.N)))
		bw.printf("%s%s_count %d\n", promPrefix, name, h.N)
	}
	for _, sp := range s.Spans {
		bw.printf("%sspan_wall_seconds{phase=%q} %s\n", promPrefix, sp.Name, formatFloat(sp.WallS))
		bw.printf("%sspan_cpu_seconds{phase=%q} %s\n", promPrefix, sp.Name, formatFloat(sp.CPUS))
	}
	return bw.err
}

// errWriter folds write errors so the renderer stays linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (bw *errWriter) printf(format string, args ...any) {
	if bw.err != nil {
		return
	}
	_, bw.err = fmt.Fprintf(bw.w, format, args...)
}

func (bw *errWriter) gauge(name, help string, v float64) {
	bw.printf("# HELP %s%s %s\n", promPrefix, name, help)
	bw.printf("# TYPE %s%s gauge\n", promPrefix, name)
	bw.printf("%s%s %s\n", promPrefix, name, formatFloat(v))
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
