package telemetry

import (
	"expvar"
	"net/http"
	"sync"
	"sync/atomic"
)

// The expvar namespace is process-global and panics on duplicate
// Publish, so the "powifi" var is registered exactly once and reads
// through an atomic pointer to whichever run most recently asked for a
// handler.
var (
	activeRun   atomic.Pointer[Run]
	expvarOnce  sync.Once
	expvarValue = expvar.Func(func() any {
		if r := activeRun.Load(); r != nil {
			return r.Snapshot()
		}
		return nil
	})
)

// Handler returns the run's debug HTTP handler: /metrics serves the
// Prometheus text export and /debug/vars the standard expvar JSON,
// whose "powifi" key carries this run's Snapshot. Calling Handler
// makes the run the process's active expvar run (last call wins).
// Snapshots are taken per request, so metrics are readable mid-run. A
// nil Run still returns a working handler with empty metrics.
func (t *Run) Handler() http.Handler {
	expvarOnce.Do(func() { expvar.Publish("powifi", expvarValue) })
	if t != nil {
		activeRun.Store(t)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = t.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}
