// Package telemetry is the run-scoped observability layer for fleet
// simulations: typed counters, gauges and histograms, phase spans with
// wall/CPU timing, and a run manifest, exported as one deterministic
// Snapshot (JSON section of the report), as Prometheus text format, and
// over an opt-in expvar/debug HTTP handler.
//
// # Determinism contract
//
// Telemetry is strictly out of band: it draws no randomness, changes no
// event order, and never feeds back into the simulation, so enabling it
// leaves every simulation output byte-identical. Disabled (a nil *Run),
// every instrumentation call is a nil-receiver no-op — one branch, zero
// allocations — so the hot paths keep their allocation budgets.
//
// Metrics split into two classes:
//
//   - Work counters and histograms (Counter, Histogram) measure what
//     the simulation computed. Counters are atomic integer adds and
//     histograms are integer-count stats.Sketch shards merged exactly
//     (per worker, via Sketch.TryMerge), so their totals are
//     bit-for-bit identical at any worker count — the same
//     exactly-mergeable machinery the fleet aggregates stand on.
//   - Scheduling diagnostics (SchedCounter, SchedHistogram) measure how
//     the run was executed — sampler pool hits, shard occupancy. They
//     are reported separately because they legitimately vary with the
//     worker count and must never be compared across parallelism.
//
// Gauges, spans and the manifest's elapsed/throughput fields are wall-
// clock observations and vary run to run by nature.
package telemetry

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/stats"
)

// Canonical metric names. The fleet engine and the CLIs agree on these;
// the Prometheus export prefixes them with "powifi_".
const (
	// Work counters: workers-invariant totals.
	CounterHomes              = "homes"
	CounterBins               = "bins"
	CounterSilentBins         = "silent_bins"
	CounterSurfaceHits        = "surface_hits"
	CounterSurfaceExact       = "surface_exact_fallbacks"
	CounterSurfaceGuardBand   = "surface_guard_band_fallbacks"
	CounterLifecycleBoots     = "lifecycle_boots"
	CounterLifecycleBrownouts = "lifecycle_brownouts"
	CounterLifecycleLedger    = "lifecycle_ledger_events"

	// Failure-path counters. Faults/retries/quarantines are decided per
	// home index by the deterministic fault registry and failure policy,
	// so their totals are workers-invariant like any work counter.
	// Checkpoint rotation/fallback counts are I/O-session observations.
	CounterFaultsInjected      = "faults_injected"
	CounterHomeRetries         = "home_retries"
	CounterHomesQuarantined    = "homes_quarantined"
	CounterCheckpointRotations = "checkpoint_rotations"
	CounterCheckpointFallbacks = "checkpoint_fallbacks"

	// Scheduling diagnostics: legitimately vary with the worker count.
	SchedPoolHits   = "sampler_pool_hits"
	SchedPoolMisses = "sampler_pool_misses"

	// Gauges.
	GaugeBinsPerSec   = "bins_per_sec"
	GaugeAllocsPerBin = "allocs_per_bin"

	// Histograms. HistHomeHarvestUW is a work histogram (per-worker
	// sketch shards, exact merge); HistShardHomes and HistHomeWallMS
	// are scheduling diagnostics (homes per worker shard; per-home wall
	// time).
	HistHomeHarvestUW = "home_harvest_uw"
	HistShardHomes    = "shard_homes"
	HistHomeWallMS    = "home_wall_ms"

	// Phase spans, in the order a fleet run records them.
	SpanSurfaceWarmup = "surface_warmup"
	SpanSimulate      = "simulate"
	SpanReduce        = "reduce"
	SpanReportWrite   = "report_write"
)

// Run is one simulation run's telemetry collector. The zero of the type
// is not used directly: a nil *Run is the disabled state, and every
// method is nil-receiver safe, so instrumented code carries one pointer
// and pays one branch when telemetry is off. A *Run is safe for
// concurrent use by the run's workers.
type Run struct {
	mu       sync.Mutex
	counters map[string]*Counter
	sched    map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    []SpanSnapshot
	manifest Manifest
	slow     []SlowHome

	surface   *SurfaceCounters
	sampler   *SamplerCounters
	lifecycle *LifecycleCounters
	failure   *FailureCounters
}

// NewRun returns an empty enabled collector.
func NewRun() *Run {
	return &Run{
		counters: make(map[string]*Counter),
		sched:    make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named work counter, creating it on first use.
// Work counter totals are workers-invariant; returns nil (a no-op
// counter) on a nil Run.
func (t *Run) Counter(name string) *Counter {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	c := t.counters[name]
	if c == nil {
		c = &Counter{}
		t.counters[name] = c
	}
	return c
}

// SchedCounter returns the named scheduling-diagnostic counter: same
// mechanics as Counter, reported under the snapshot's "sched" section
// because its value legitimately varies with the worker count.
func (t *Run) SchedCounter(name string) *Counter {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	c := t.sched[name]
	if c == nil {
		c = &Counter{}
		t.sched[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (t *Run) Gauge(name string) *Gauge {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	g := t.gauges[name]
	if g == nil {
		g = &Gauge{}
		t.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// sketch configuration on first use (later calls ignore the bounds).
func (t *Run) Histogram(name string, lo, hi float64, bins int) *Histogram {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	h := t.hists[name]
	if h == nil {
		h = &Histogram{s: stats.NewSketch(lo, hi, bins)}
		t.hists[name] = h
	}
	return h
}

// mergeHistogram folds a worker's sketch shard into the named histogram
// exactly (integer counts, exact extremes — Sketch.TryMerge), so the
// merged distribution is identical no matter how homes were sharded.
func (t *Run) mergeHistogram(name string, shard *stats.Sketch) error {
	if t == nil || shard == nil {
		return nil
	}
	h := t.Histogram(name, shard.Lo, shard.Hi, len(shard.Counts))
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.s.TryMerge(shard)
}

// Span starts a named phase span and returns its closer: wall time from
// the call to the closer, plus the process's CPU time (user+system,
// all threads) consumed in between. Spans append in completion order.
// On a nil Run the closer is a no-op.
func (t *Run) Span(name string) func() {
	if t == nil {
		return func() {}
	}
	w0, c0 := time.Now(), processCPUSeconds()
	return func() {
		wall, cpu := time.Since(w0).Seconds(), processCPUSeconds()-c0
		t.mu.Lock()
		t.spans = append(t.spans, SpanSnapshot{Name: name, WallS: wall, CPUS: cpu})
		t.mu.Unlock()
	}
}

// ObserveSlowHome offers one finished home to the slowest-homes table,
// keeping the top slowHomeCap by wall time (ties to the lower index).
// A scheduling observation; no-op on a nil Run.
func (t *Run) ObserveSlowHome(s SlowHome) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	i := sort.Search(len(t.slow), func(i int) bool {
		if t.slow[i].WallMS != s.WallMS {
			return s.WallMS > t.slow[i].WallMS
		}
		return s.Index < t.slow[i].Index
	})
	if i >= slowHomeCap {
		return
	}
	t.slow = append(t.slow, SlowHome{})
	copy(t.slow[i+1:], t.slow[i:])
	t.slow[i] = s
	if len(t.slow) > slowHomeCap {
		t.slow = t.slow[:slowHomeCap]
	}
}

// slowHomeCap bounds the slowest-homes table.
const slowHomeCap = 8

// SetManifest records the run manifest (the engine fills it when the
// run completes). A zero GoVersion is stamped with the runtime's.
func (t *Run) SetManifest(m Manifest) {
	if t == nil {
		return
	}
	if m.GoVersion == "" {
		m.GoVersion = runtime.Version()
	}
	t.mu.Lock()
	t.manifest = m
	t.mu.Unlock()
}

// Manifest is the run's machine-readable provenance: what was measured
// and how fast.
type Manifest struct {
	// Seed is the run's root seed; ConfigHash fingerprints the resolved
	// configuration with the worker count excluded, so two comparable
	// runs hash identically at any parallelism.
	Seed       uint64 `json:"seed"`
	ConfigHash string `json:"config_hash,omitempty"`
	GoVersion  string `json:"go_version,omitempty"`
	// Workers is the parallelism actually used (diagnostic only — no
	// metric under "counters" or "histograms"/work depends on it).
	Workers int `json:"workers,omitempty"`
	// ElapsedS and HomesPerSec are wall-clock throughput.
	ElapsedS    float64 `json:"elapsed_s,omitempty"`
	HomesPerSec float64 `json:"homes_per_sec,omitempty"`
}

// HashConfig fingerprints a configuration value: fnv64a over its
// canonical %+v rendering (fmt sorts map keys, so the rendering is
// deterministic). Callers zero scheduling fields (worker counts) first.
func HashConfig(v any) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", v)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Snapshot is the exported view of a Run: the same structure backs the
// report's "telemetry" JSON section, the Prometheus text export and the
// expvar endpoint, so the three always agree. Counters and the work
// histograms are workers-invariant; Sched and HistShardHomes are
// scheduling diagnostics; gauges, spans and the manifest's throughput
// fields are wall-clock observations.
type Snapshot struct {
	Manifest   Manifest                     `json:"manifest"`
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Sched      map[string]uint64            `json:"sched,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Spans      []SpanSnapshot               `json:"spans,omitempty"`
	// SlowHomes lists the run's slowest homes by wall time — a
	// scheduling observation like HistHomeWallMS: never compare it
	// across worker counts.
	SlowHomes []SlowHome `json:"slow_homes,omitempty"`
}

// SlowHome is one entry in the slowest-homes table.
type SlowHome struct {
	Index int    `json:"index"`
	Label string `json:"label"`
	// WallMS is the home's simulate wall time; DominantSpan names where
	// it went ("bin-batch" for the event kernel, "stall" for injected
	// stalls, "other" for the residual).
	WallMS       float64 `json:"wall_ms"`
	DominantSpan string  `json:"dominant_span"`
}

// HistogramSnapshot summarizes one histogram's merged sketch.
type HistogramSnapshot struct {
	N         uint64  `json:"n"`
	Mean      float64 `json:"mean"`
	Min       float64 `json:"min"`
	Max       float64 `json:"max"`
	P50       float64 `json:"p50"`
	P95       float64 `json:"p95"`
	P99       float64 `json:"p99"`
	Underflow uint64  `json:"underflow,omitempty"`
	Overflow  uint64  `json:"overflow,omitempty"`
}

// SpanSnapshot is one completed phase span.
type SpanSnapshot struct {
	Name  string  `json:"name"`
	WallS float64 `json:"wall_s"`
	CPUS  float64 `json:"cpu_s"`
}

// Snapshot renders the collector's current state. It is safe to call
// concurrently with instrumentation; a snapshot taken after the run
// completes is deterministic in everything but the wall-clock fields.
// Returns the zero Snapshot on a nil Run.
func (t *Run) Snapshot() Snapshot {
	if t == nil {
		return Snapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	snap := Snapshot{Manifest: t.manifest}
	if snap.Manifest.GoVersion == "" {
		snap.Manifest.GoVersion = runtime.Version()
	}
	if len(t.counters) > 0 {
		snap.Counters = make(map[string]uint64, len(t.counters))
		for name, c := range t.counters {
			snap.Counters[name] = c.Value()
		}
	}
	if len(t.sched) > 0 {
		snap.Sched = make(map[string]uint64, len(t.sched))
		for name, c := range t.sched {
			snap.Sched[name] = c.Value()
		}
	}
	if len(t.gauges) > 0 {
		snap.Gauges = make(map[string]float64, len(t.gauges))
		for name, g := range t.gauges {
			snap.Gauges[name] = g.Value()
		}
	}
	if len(t.hists) > 0 {
		snap.Histograms = make(map[string]HistogramSnapshot, len(t.hists))
		for name, h := range t.hists {
			snap.Histograms[name] = h.snapshot()
		}
	}
	if len(t.spans) > 0 {
		snap.Spans = append([]SpanSnapshot(nil), t.spans...)
	}
	if len(t.slow) > 0 {
		snap.SlowHomes = append([]SlowHome(nil), t.slow...)
	}
	return snap
}

// sortedKeys returns a map's keys in lexical order, for the stable
// text exports.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
