package diode

import "math"

// Modified Bessel functions of the first kind, orders 0 and 1, in the log
// domain. The cycle average of the Shockley diode equation over a
// sinusoidal drive of amplitude Va with DC bias -Vd is
//
//	<i> = Is·(exp(-Vd/nVt)·I0(Va/nVt) - 1)
//
// and the argument Va/nVt reaches ~80 at the paper's input powers, where
// I0 overflows float64. We therefore expose logI0/logI1 computed with the
// Abramowitz & Stegun 9.8.x polynomial approximations (|error| < 2e-7).

// logI0 returns ln(I0(x)) for x >= 0.
func logI0(x float64) float64 {
	if x < 0 {
		x = -x // I0 is even
	}
	if x < 3.75 {
		t := x / 3.75
		t2 := t * t
		p := 1.0 + t2*(3.5156229+t2*(3.0899424+t2*(1.2067492+
			t2*(0.2659732+t2*(0.0360768+t2*0.0045813)))))
		return math.Log(p)
	}
	t := 3.75 / x
	p := 0.39894228 + t*(0.01328592+t*(0.00225319+t*(-0.00157565+
		t*(0.00916281+t*(-0.02057706+t*(0.02635537+t*(-0.01647633+
			t*0.00392377)))))))
	return x - 0.5*math.Log(x) + math.Log(p)
}

// logI1 returns ln(I1(x)) for x > 0. I1(0) = 0, so logI1(0) = -Inf.
func logI1(x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	if x < 3.75 {
		t := x / 3.75
		t2 := t * t
		p := x * (0.5 + t2*(0.87890594+t2*(0.51498869+t2*(0.15084934+
			t2*(0.02658733+t2*(0.00301532+t2*0.00032411))))))
		return math.Log(p)
	}
	t := 3.75 / x
	p := 0.39894228 + t*(-0.03988024+t*(-0.00362018+t*(0.00163801+
		t*(-0.01031555+t*(0.02282967+t*(-0.02895312+t*(0.01787654+
			t*-0.00420059)))))))
	return x - 0.5*math.Log(x) + math.Log(p)
}
