package diode

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
	"repro/internal/xrand"
)

func testDoubler() Doubler {
	return Doubler{Diode: SMS7630(), FreqHz: 2.437e9, PadCj: 0.6e-12}
}

func TestLogI0KnownValues(t *testing.T) {
	// I0(0)=1, I0(1)=1.2661, I0(5)=27.2399, I0(10)=2815.72.
	cases := []struct{ x, i0 float64 }{
		{0, 1}, {1, 1.2660658}, {5, 27.239872}, {10, 2815.7166},
	}
	for _, c := range cases {
		got := math.Exp(logI0(c.x))
		if math.Abs(got-c.i0)/c.i0 > 1e-5 {
			t.Errorf("I0(%v) = %v, want %v", c.x, got, c.i0)
		}
	}
}

func TestLogI1KnownValues(t *testing.T) {
	// I1(1)=0.56516, I1(5)=24.3356, I1(10)=2670.99.
	cases := []struct{ x, i1 float64 }{
		{1, 0.5651591}, {5, 24.335642}, {10, 2670.9883},
	}
	for _, c := range cases {
		got := math.Exp(logI1(c.x))
		if math.Abs(got-c.i1)/c.i1 > 1e-5 {
			t.Errorf("I1(%v) = %v, want %v", c.x, got, c.i1)
		}
	}
}

func TestLogI0LargeArgumentAsymptotic(t *testing.T) {
	// For large x, ln I0(x) ≈ x - 0.5·ln(2πx).
	x := 80.0
	want := x - 0.5*math.Log(2*math.Pi*x)
	got := logI0(x)
	if math.Abs(got-want) > 0.01 {
		t.Errorf("logI0(80) = %v, want about %v", got, want)
	}
}

func TestBesselMonotone(t *testing.T) {
	prev0, prev1 := math.Inf(-1), math.Inf(-1)
	for x := 0.01; x < 200; x *= 1.3 {
		l0, l1 := logI0(x), logI1(x)
		if l0 < prev0 || l1 < prev1 {
			t.Fatalf("Bessel logs not monotone at x=%v", x)
		}
		prev0, prev1 = l0, l1
	}
}

func TestOutputCurrentZeroDrive(t *testing.T) {
	r := testDoubler()
	if got := r.OutputCurrent(0, 0); got != 0 {
		t.Errorf("zero-drive zero-bias current = %v, want 0", got)
	}
	// With no drive and positive output voltage the diodes leak backwards.
	if got := r.OutputCurrent(0, 0.5); got >= 0 {
		t.Errorf("reverse-biased unlit doubler current = %v, want negative", got)
	}
}

func TestOutputCurrentDecreasesWithVout(t *testing.T) {
	r := testDoubler()
	va := 0.4
	prev := math.Inf(1)
	for v := 0.0; v < 1.0; v += 0.05 {
		i := r.OutputCurrent(va, v)
		if i >= prev {
			t.Fatalf("output current not decreasing at vout=%v", v)
		}
		prev = i
	}
}

func TestRFPowerIncreasesWithVa(t *testing.T) {
	r := testDoubler()
	prev := -1.0
	for va := 0.0; va < 2; va += 0.05 {
		p := r.RFPower(va, 0.3)
		if p <= prev && va > 0 {
			t.Fatalf("RF power not increasing at va=%v", va)
		}
		prev = p
	}
}

func TestSolveAmplitudeInvertsRFPower(t *testing.T) {
	r := testDoubler()
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		pacc := rng.Uniform(1e-7, 3e-3) // -40 dBm .. ~5 dBm
		vout := rng.Uniform(0, 1)
		va := r.SolveAmplitude(pacc, vout)
		back := r.RFPower(va, vout)
		return math.Abs(back-pacc)/pacc < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOpenCircuitVoltageGrowsWithPowerUntilBreakdown(t *testing.T) {
	r := testDoubler()
	prev := -1.0
	for _, dbm := range []float64{-25, -20, -15, -10, -5, 0} {
		v := r.OpenCircuitVoltage(units.DBmToWatts(dbm))
		if v < prev {
			t.Fatalf("Voc decreased at %v dBm: %v < %v", dbm, v, prev)
		}
		if v > r.Diode.BreakdownV {
			t.Fatalf("Voc exceeded breakdown clamp at %v dBm: %v", dbm, v)
		}
		prev = v
	}
	// At strong drive the clamp engages.
	if v := r.OpenCircuitVoltage(units.DBmToWatts(4)); v != r.Diode.BreakdownV {
		t.Errorf("Voc at +4 dBm = %v, want clamped at %v", v, r.Diode.BreakdownV)
	}
}

func TestOpenCircuitVoltageReasonableMagnitude(t *testing.T) {
	// At -17.8 dBm accepted (the paper's battery-free sensitivity) the
	// doubler's open-circuit voltage must comfortably exceed the 300 mV
	// converter threshold — the loaded voltage is what's marginal.
	r := testDoubler()
	v := r.OpenCircuitVoltage(units.DBmToWatts(-17.8))
	if v < 0.3 || v > 1.5 {
		t.Errorf("Voc at -17.8 dBm = %v V, want within (0.3, 1.5)", v)
	}
}

func TestOperatingPointBalancesLoad(t *testing.T) {
	r := testDoubler()
	pacc := units.DBmToWatts(-10)
	rload := 10e3
	vout, iout := r.OperatingPoint(pacc, func(v float64) float64 { return v / rload })
	if vout <= 0 || iout <= 0 {
		t.Fatalf("degenerate operating point: v=%v i=%v", vout, iout)
	}
	if math.Abs(iout-vout/rload)/iout > 1e-3 {
		t.Errorf("KCL violated at operating point: source %v A, load %v A", iout, vout/rload)
	}
}

func TestOperatingPointOverload(t *testing.T) {
	r := testDoubler()
	// A microwatt of input cannot sustain a 10 mA load.
	vout, iout := r.OperatingPoint(1e-6, func(v float64) float64 { return 10e-3 })
	if vout != 0 || iout != 0 {
		t.Errorf("overloaded rectifier should collapse to 0, got v=%v i=%v", vout, iout)
	}
}

func TestMaxPowerPointBelowAcceptedPower(t *testing.T) {
	// Conservation: DC output power can never exceed accepted RF power.
	r := testDoubler()
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		pacc := units.DBmToWatts(rng.Uniform(-25, 5))
		_, _, pout := r.MaxPowerPoint(pacc)
		return pout >= 0 && pout <= pacc*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEfficiencyRisesWithInputPower(t *testing.T) {
	// The defining nonlinearity of Fig. 10: conversion efficiency at the
	// max-power point improves as input power grows.
	r := testDoubler()
	var prev float64
	for _, dbm := range []float64{-20, -15, -10, -5, 0} {
		pacc := units.DBmToWatts(dbm)
		_, _, pout := r.MaxPowerPoint(pacc)
		eff := pout / pacc
		if eff <= prev {
			t.Fatalf("efficiency not rising at %v dBm: %v <= %v", dbm, eff, prev)
		}
		prev = eff
	}
}

func TestMaxPowerPointMagnitude(t *testing.T) {
	// The bare rectifier at its maximum-power point converts a healthy
	// fraction of a strong (+4 dBm) drive but almost nothing at -20 dBm.
	// (Fig. 10's far lower measured output at high power comes from the
	// DC-DC converter's pump-current ceiling, modelled in the harvester
	// package, not from the diodes.)
	r := testDoubler()
	_, _, pHigh := r.MaxPowerPoint(units.DBmToWatts(4))
	if eff := pHigh / units.DBmToWatts(4); eff < 0.2 || eff > 0.8 {
		t.Errorf("MPP efficiency at +4 dBm = %v, want within (0.2, 0.8)", eff)
	}
	_, _, pLow := r.MaxPowerPoint(units.DBmToWatts(-20))
	if uw := units.Microwatts(pLow); uw > 3 {
		t.Errorf("output at -20 dBm = %v µW, want < 3", uw)
	}
}

func TestInputResistanceFiniteAndPositive(t *testing.T) {
	r := testDoubler()
	res := r.InputResistance(units.DBmToWatts(-10), 0.3)
	if res <= 0 || math.IsInf(res, 0) {
		t.Errorf("input resistance = %v", res)
	}
	if r.InputResistance(0, 0) != math.Inf(1) {
		t.Error("zero-power input resistance should be +Inf")
	}
}

func TestInputCapacitanceSum(t *testing.T) {
	r := testDoubler()
	want := r.Diode.Cj + r.PadCj
	if got := r.InputCapacitance(); got != want {
		t.Errorf("InputCapacitance = %v, want %v", got, want)
	}
}

func TestParasiticLossGrowsWithFrequencySquared(t *testing.T) {
	lo := Doubler{Diode: SMS7630(), FreqHz: 1e9}
	hi := Doubler{Diode: SMS7630(), FreqHz: 2e9}
	pl, ph := lo.parasiticPower(0.3), hi.parasiticPower(0.3)
	if math.Abs(ph/pl-4) > 1e-9 {
		t.Errorf("parasitic loss ratio = %v, want 4 (f²)", ph/pl)
	}
}
