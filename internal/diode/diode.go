// Package diode models the Skyworks SMS7630-061 Schottky diodes and the
// single-stage voltage-doubler rectifier at the heart of the PoWiFi
// harvester (§3.1, Fig. 4).
//
// The model is the classic cycle-averaged analysis of a diode driven by a
// sinusoidal carrier: with drive amplitude Va and a DC reverse bias Vd
// across the diode, the Shockley equation averaged over one RF cycle gives
//
//	I_avg  = Is·(exp(-Vd/nVt)·I0(Va/nVt) − 1)          (rectified current)
//	P_rf   = Va·Is·exp(-Vd/nVt)·I1(Va/nVt)             (RF power absorbed)
//
// where I0/I1 are modified Bessel functions. A doubler stacks two diodes so
// each blocks half the output voltage and both contribute current. These
// two equations plus a parasitic-loss term (junction capacitance current
// through the series resistance, which at 2.45 GHz is a µW-scale effect
// that matters at harvesting power levels) define the full DC operating
// point, solved by bisection.
//
// Everything downstream — the 300 mV cold-start bottleneck of Fig. 1, the
// sensitivity knees and output-power curves of Fig. 10, and the
// update-rate-versus-distance results of Figs. 11–13 — emerges from this
// operating-point solver.
package diode

import "math"

// ThermalVoltage is kT/q at room temperature in volts.
const ThermalVoltage = 0.02585

// Diode is a Schottky diode parameter set.
type Diode struct {
	// Is is the saturation current in amperes. Low-barrier RF Schottky
	// diodes like the SMS7630 have a large Is (microamps), which is what
	// makes them rectify at sub-milliwatt drive.
	Is float64
	// N is the ideality factor.
	N float64
	// Rs is the series resistance in ohms.
	Rs float64
	// Cj is the zero-bias junction capacitance in farads.
	Cj float64
	// BreakdownV is the reverse breakdown voltage in volts. In a doubler
	// the output voltage reverse-stresses the diodes, so the DC output is
	// clamped near this value; the clamp is what compresses the
	// high-power end of Fig. 10. Zero means no breakdown modelled.
	BreakdownV float64
}

// SMS7630 returns the parameter set for the Skyworks SMS7630-061 used by
// the paper (SC-79/0201 package): Is = 5 µA, n = 1.05, Rs = 20 Ω,
// Cj = 0.14 pF, Bv = 2 V, per the Skyworks SPICE model.
func SMS7630() Diode {
	return Diode{Is: 5e-6, N: 1.05, Rs: 20, Cj: 0.14e-12, BreakdownV: 2}
}

// nVt returns the diode's emission coefficient times the thermal voltage.
func (d Diode) nVt() float64 { return d.N * ThermalVoltage }

// Doubler is a single-stage voltage-doubler rectifier (two diodes, two
// coupling capacitors) as in Fig. 4. The paper uses high-Q 10 pF UHF
// capacitors whose loss is negligible next to the diode terms, so the
// coupling capacitors do not appear explicitly.
type Doubler struct {
	Diode Diode
	// FreqHz is the carrier frequency used for parasitic-loss evaluation.
	FreqHz float64
	// PadCj is additional fixed parasitic capacitance (pads, package) in
	// farads, added to the diodes' junction capacitance when computing
	// displacement-current loss and the rectifier's input reactance.
	PadCj float64
}

// OutputCurrent returns the DC current in amperes the doubler sources into
// its output node held at vout volts, when driven by a sinusoid of
// amplitude va volts. Negative results (the load pulling the output above
// what the drive can sustain) are clamped at the reverse saturation floor.
func (r Doubler) OutputCurrent(va, vout float64) float64 {
	nvt := r.Diode.nVt()
	if va < 0 {
		va = 0
	}
	if vout < 0 {
		vout = 0
	}
	a := va / nvt
	logTerm := logI0(a) - vout/(2*nvt)
	return r.Diode.Is * (math.Exp(logTerm) - 1)
}

// RFPower returns the RF power in watts the doubler absorbs from the
// matched source at drive amplitude va and output voltage vout, including
// the conduction term (both diodes) and the parasitic displacement-current
// loss through the series resistance.
func (r Doubler) RFPower(va, vout float64) float64 {
	nvt := r.Diode.nVt()
	if va <= 0 {
		return 0
	}
	if vout < 0 {
		vout = 0
	}
	a := va / nvt
	logTerm := logI1(a) - vout/(2*nvt)
	cond := 2 * va * r.Diode.Is * math.Exp(logTerm)
	return cond + r.parasiticPower(va)
}

// parasiticPower returns the displacement-current loss: each junction
// capacitance conducts i = ωCj·Va through that diode's series resistance on
// every cycle, dissipating ½·(ωCj·Va)²·Rs per diode. Pad capacitance sits
// on the board in front of the diodes, so its current does not cross Rs
// and it contributes only reactance (handled by the matching model).
func (r Doubler) parasiticPower(va float64) float64 {
	w := 2 * math.Pi * r.FreqHz
	i := w * r.Diode.Cj * va
	return 2 * 0.5 * i * i * r.Diode.Rs
}

// SolveAmplitude returns the drive amplitude va at which the doubler
// absorbs exactly pacc watts while its output sits at vout volts. RFPower
// is strictly increasing in va, so bisection converges. pacc <= 0 returns 0.
func (r Doubler) SolveAmplitude(pacc, vout float64) float64 {
	if pacc <= 0 {
		return 0
	}
	lo, hi := 0.0, 0.01
	for r.RFPower(hi, vout) < pacc {
		hi *= 2
		if hi > 100 {
			break // pathological input power; clamp
		}
	}
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if r.RFPower(mid, vout) < pacc {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// maxVout returns the breakdown clamp on the doubler's output voltage, or
// +Inf when breakdown is not modelled.
func (r Doubler) maxVout() float64 {
	if r.Diode.BreakdownV <= 0 {
		return math.Inf(1)
	}
	return r.Diode.BreakdownV
}

// OpenCircuitVoltage returns the steady-state output voltage with no load,
// i.e. where the rectified current is zero for the given accepted power,
// clamped at the diode breakdown limit.
func (r Doubler) OpenCircuitVoltage(pacc float64) float64 {
	if pacc <= 0 {
		return 0
	}
	nvt := r.Diode.nVt()
	// At open circuit I_out = 0 ⇒ vout = 2·nVt·ln(I0(va/nVt)); va and
	// vout are coupled, so iterate to a fixed point.
	vout := 0.0
	for i := 0; i < 60; i++ {
		va := r.SolveAmplitude(pacc, vout)
		next := 2 * nvt * logI0(va/nvt)
		if next > r.maxVout() {
			next = r.maxVout()
		}
		if math.Abs(next-vout) < 1e-9 {
			vout = next
			break
		}
		vout = next
	}
	return vout
}

// OperatingPoint solves the intersection of the rectifier's DC source
// characteristic with a load characteristic: load(vout) must return the DC
// current the load draws at output voltage vout and be non-decreasing in
// vout. It returns the steady-state output voltage and current for an
// accepted RF power pacc.
func (r Doubler) OperatingPoint(pacc float64, load func(vout float64) float64) (vout, iout float64) {
	if pacc <= 0 {
		return 0, 0
	}
	voc := r.OpenCircuitVoltage(pacc)
	lo, hi := 0.0, voc
	// Source current minus load current is decreasing in vout; find zero.
	f := func(v float64) float64 {
		va := r.SolveAmplitude(pacc, v)
		return r.OutputCurrent(va, v) - load(v)
	}
	if f(0) <= 0 {
		return 0, 0 // load demands more than short-circuit current
	}
	if f(voc) > 0 {
		// Even at the breakdown clamp the source out-supplies the load:
		// the output parks at the clamp and the excess dissipates in
		// reverse breakdown. Delivered current is the load's draw.
		return voc, load(voc)
	}
	for i := 0; i < 70; i++ {
		mid := (lo + hi) / 2
		if f(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	vout = (lo + hi) / 2
	va := r.SolveAmplitude(pacc, vout)
	return vout, r.OutputCurrent(va, vout)
}

// MaxPowerPoint returns the output voltage, current and power at the
// rectifier's maximum-power operating point for accepted power pacc,
// located by golden-section search over [0, Voc]. This is the "available
// power at the rectifier output" the paper measures in Fig. 10.
func (r Doubler) MaxPowerPoint(pacc float64) (vout, iout, pout float64) {
	if pacc <= 0 {
		return 0, 0, 0
	}
	voc := r.OpenCircuitVoltage(pacc)
	p := func(v float64) float64 {
		va := r.SolveAmplitude(pacc, v)
		i := r.OutputCurrent(va, v)
		if i < 0 {
			return 0
		}
		return v * i
	}
	const phi = 0.6180339887498949
	a, b := 0.0, voc
	c := b - phi*(b-a)
	d := a + phi*(b-a)
	for i := 0; i < 60; i++ {
		if p(c) > p(d) {
			b = d
		} else {
			a = c
		}
		c = b - phi*(b-a)
		d = a + phi*(b-a)
	}
	vout = (a + b) / 2
	va := r.SolveAmplitude(pacc, vout)
	iout = r.OutputCurrent(va, vout)
	return vout, iout, vout * iout
}

// InputResistance returns the equivalent series input resistance of the
// rectifier at the given accepted power and output voltage, defined by
// P = Va²/(2R). This feeds the matching-network model: the rectifier's
// impedance moves with drive level, which is why the paper co-designs the
// DC–DC converter (whose MPPT pins the operating point) with the matching
// network.
func (r Doubler) InputResistance(pacc, vout float64) float64 {
	if pacc <= 0 {
		return math.Inf(1)
	}
	va := r.SolveAmplitude(pacc, vout)
	if va <= 0 {
		return math.Inf(1)
	}
	return va * va / (2 * pacc)
}

// InputCapacitance returns the total effective shunt capacitance of the
// rectifier input: both junction capacitances appear in series-aiding
// through the doubler plus the pad parasitics.
func (r Doubler) InputCapacitance() float64 {
	return r.Diode.Cj + r.PadCj
}
