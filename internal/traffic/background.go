// Package traffic generates the workloads of the paper's evaluation:
// background office/home Wi-Fi load, iperf-style UDP and TCP downloads
// through the router (Fig. 6a/6b), and the PhantomJS-style page-load
// harness over the ten most popular U.S. websites (Fig. 6c).
package traffic

import (
	"time"

	"repro/internal/eventsim"
	"repro/internal/mac"
	"repro/internal/medium"
	"repro/internal/phy"
	"repro/internal/xrand"
)

// Background simulates a neighboring Wi-Fi network's offered load on a
// channel: a station emitting frames with Poisson arrivals, mixed sizes
// and rates, targeting a given fraction of channel airtime. The paper's
// benchmark environment is "a busy weekday in our organization, which has
// multiple other clients and routers operating on channels 1, 6, and 11"
// (§4.1).
type Background struct {
	Sched *eventsim.Scheduler
	// Station transmits the background frames.
	Station *mac.Station
	// Load is the offered airtime fraction (0.3 = 30% of the channel).
	Load float64

	rng    *xrand.Rand
	feed   eventsim.Handle
	mean   float64
	fireFn func(any) // long-lived arrival callback; no closure per packet
}

// frameProfile is one entry of the background traffic mix.
type frameProfile struct {
	bytes  int
	rate   phy.Rate
	weight float64
}

// officeMix approximates the frame mix of a production 2.4 GHz network:
// mostly full-size data at mid-to-high OFDM rates, plus small frames.
var officeMix = []frameProfile{
	{1500, phy.Rate54Mbps, 0.25},
	{1500, phy.Rate36Mbps, 0.20},
	{1500, phy.Rate24Mbps, 0.15},
	{1500, phy.Rate12Mbps, 0.10},
	{300, phy.Rate24Mbps, 0.15},
	{90, phy.Rate24Mbps, 0.15},
}

// NewBackground attaches a background load generator to a channel at the
// given location.
func NewBackground(sched *eventsim.Scheduler, ch *medium.Channel, id int, loc medium.Location, load float64, rng *xrand.Rand) *Background {
	st := mac.NewStation(id, "bg", loc, ch, rng)
	st.PowerDBm = 20
	st.GainDBi = 2
	return &Background{Sched: sched, Station: st, Load: load, rng: rng}
}

// draw picks a frame from the mix.
func (b *Background) draw() frameProfile {
	u := b.rng.Float64()
	acc := 0.0
	for _, p := range officeMix {
		acc += p.weight
		if u < acc {
			return p
		}
	}
	return officeMix[len(officeMix)-1]
}

// meanAirtime returns the expectation of the mix's frame airtime.
func meanAirtime() time.Duration {
	var sum float64
	for _, p := range officeMix {
		sum += p.weight * float64(phy.Airtime(p.bytes+phy.MACOverheadBytes, p.rate))
	}
	return time.Duration(sum)
}

// Start begins offering load. The generator clocks frame arrivals as a
// Poisson process whose mean inter-arrival yields the target airtime
// fraction. The arrival callback and the frames it enqueues are pooled,
// so a running generator allocates nothing per packet.
func (b *Background) Start() {
	if b.Load <= 0 {
		return
	}
	b.mean = float64(meanAirtime()) / b.Load
	if b.fireFn == nil {
		b.fireFn = func(any) {
			p := b.draw()
			// Broadcast keeps the generator self-contained (no ACK peer
			// needed); occupancy contribution is identical.
			f := b.Station.NewFrame()
			f.DstID = medium.Broadcast
			f.Bytes = p.bytes
			f.Kind = medium.KindData
			f.FixedRate = p.rate
			b.Station.Enqueue(f)
			b.arm()
		}
	}
	b.arm()
}

// arm schedules the next Poisson arrival.
func (b *Background) arm() {
	delay := time.Duration(b.rng.Exp(b.mean))
	b.feed = b.Sched.AfterCtx(delay, b.fireFn, nil)
}

// SetLoad adjusts the offered load for subsequent arrivals (used by the
// diurnal home model). Takes effect at the next scheduled arrival.
func (b *Background) SetLoad(load float64) {
	b.Stop()
	b.Load = load
	b.Start()
}

// Stop halts the generator.
func (b *Background) Stop() {
	b.feed.Cancel()
	b.feed = eventsim.Handle{}
}

// RNG returns the generator's random stream, so a pooling layer can
// reseed it in place between runs.
func (b *Background) RNG() *xrand.Rand { return b.rng }
