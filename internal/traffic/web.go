package traffic

import (
	"time"

	"repro/internal/eventsim"
	"repro/internal/netstack"
	"repro/internal/xrand"
)

// Site is a website front-page profile used by the page-load-time harness
// (Fig. 6c): the number and sizes of the objects the browser fetches.
type Site struct {
	Name string
	// Objects are the payload sizes in bytes, in discovery order (the
	// first is the HTML document; the rest unlock after it arrives).
	Objects []int
}

// TopSites returns profiles of the ten most popular U.S. websites the
// paper loads with PhantomJS [3], in the order of Fig. 6c's x-axis.
// Object counts and total page weights approximate the 2015-era front
// pages (HTTP Archive medians); absolute PLTs depend on these profiles,
// but the scheme ordering Fig. 6c demonstrates does not.
func TopSites() []Site {
	gen := func(name string, html int, objects, objSize int) Site {
		s := Site{Name: name, Objects: []int{html}}
		rng := xrand.NewFromLabel(2015, "site/"+name)
		for i := 0; i < objects; i++ {
			// Log-normal-ish spread around the mean object size.
			size := int(float64(objSize) * (0.3 + 1.4*rng.Float64()))
			s.Objects = append(s.Objects, size)
		}
		return s
	}
	return []Site{
		gen("reddit.com", 120_000, 50, 22_000),
		gen("twitter.com", 180_000, 40, 30_000),
		gen("yahoo.com", 300_000, 90, 24_000),
		gen("youtube.com", 250_000, 60, 28_000),
		gen("wikipedia.org", 70_000, 15, 12_000),
		gen("linkedin.com", 150_000, 45, 20_000),
		gen("google.com", 60_000, 12, 18_000),
		gen("facebook.com", 200_000, 55, 25_000),
		gen("amazon.com", 280_000, 80, 22_000),
		gen("ebay.com", 220_000, 65, 20_000),
	}
}

// PageLoader fetches one page the way a 2015 headless browser does: the
// HTML document first, then the remaining objects over up to MaxConns
// parallel persistent connections.
type PageLoader struct {
	Sched *eventsim.Scheduler
	// Down builds a fresh data path per connection (server → client).
	Down netstack.Path
	// Up carries requests and ACKs (client → server).
	Up netstack.Path
	// MaxConns is the browser's per-host connection limit (6).
	MaxConns int
	// ServerThink is the mean server response latency per object.
	ServerThink time.Duration
	// OnComplete receives the page-load time.
	OnComplete func(plt time.Duration)

	rng       *xrand.Rand
	site      Site
	started   time.Duration
	nextObj   int
	remaining int
}

// NewPageLoader prepares a loader for one page visit.
func NewPageLoader(sched *eventsim.Scheduler, site Site, down, up netstack.Path, rng *xrand.Rand) *PageLoader {
	return &PageLoader{
		Sched:       sched,
		Down:        down,
		Up:          up,
		MaxConns:    6,
		ServerThink: 30 * time.Millisecond,
		rng:         rng,
		site:        site,
	}
}

// Start begins the page load.
func (p *PageLoader) Start() {
	p.started = p.Sched.Now()
	p.remaining = len(p.site.Objects)
	p.nextObj = 1
	// The HTML document loads first, alone.
	p.fetch(p.site.Objects[0], func() {
		// Subresources are discovered; open the parallel connections.
		conns := p.MaxConns
		if conns > len(p.site.Objects)-1 {
			conns = len(p.site.Objects) - 1
		}
		for i := 0; i < conns; i++ {
			p.fetchNext()
		}
	})
}

// fetchNext pulls the next undelivered object, if any.
func (p *PageLoader) fetchNext() {
	if p.nextObj >= len(p.site.Objects) {
		return
	}
	size := p.site.Objects[p.nextObj]
	p.nextObj++
	p.fetch(size, p.fetchNext)
}

// fetch requests one object and streams it over a TCP transfer: a request
// packet rides the uplink; after the server think time the response body
// streams down; done fires when fully acknowledged.
func (p *PageLoader) fetch(size int, done func()) {
	snd := &netstack.TCPSender{Sched: p.Sched, TotalBytes: size}
	rcv := &netstack.TCPReceiver{Sched: p.Sched}
	netstack.Connect(snd, rcv, p.Down, p.Up)
	snd.OnComplete = func() {
		p.remaining--
		if p.remaining == 0 {
			if p.OnComplete != nil {
				p.OnComplete(p.Sched.Now() - p.started)
			}
			return
		}
		done()
	}
	// Request: one small uplink packet to a server-side endpoint that
	// starts the response after think time. Browsers retry silently if a
	// request is lost (here: uplink queue overflow), so the loader
	// re-sends until the response begins.
	started := false
	req := &netstack.Packet{
		Dst: requestEndpoint{start: func() {
			if started {
				return
			}
			started = true
			think := time.Duration(p.rng.Exp(float64(p.ServerThink)))
			p.Sched.After(think, snd.Start)
		}},
		Bytes: 300,
		Sent:  p.Sched.Now(),
	}
	var attempt func()
	attempt = func() {
		if started {
			return
		}
		p.Up.Send(req)
		p.Sched.After(2*time.Second, attempt)
	}
	attempt()
}

// requestEndpoint triggers the server response when the request arrives.
type requestEndpoint struct {
	start func()
}

// Deliver implements netstack.Endpoint.
func (r requestEndpoint) Deliver(pkt *netstack.Packet) { r.start() }
