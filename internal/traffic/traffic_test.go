package traffic

import (
	"testing"
	"time"

	"repro/internal/eventsim"
	"repro/internal/medium"
	"repro/internal/netstack"
	"repro/internal/phy"
	"repro/internal/xrand"
)

func TestBackgroundHitsTargetLoad(t *testing.T) {
	sched := eventsim.New()
	ch := medium.NewChannel(phy.Channel1, sched)
	for _, load := range []float64{0.1, 0.3, 0.5} {
		bg := NewBackground(sched, ch, 10, medium.Location{}, load, xrand.New(uint64(load*100)))
		start := sched.Now()
		startAir := ch.TxAirtime[medium.KindData]
		bg.Start()
		sched.RunUntil(start + 5*time.Second)
		bg.Stop()
		frac := float64(ch.TxAirtime[medium.KindData]-startAir) / float64(5*time.Second)
		if frac < load*0.75 || frac > load*1.25 {
			t.Errorf("offered %.2f, achieved airtime %.3f", load, frac)
		}
	}
}

func TestBackgroundZeroLoadIsSilent(t *testing.T) {
	sched := eventsim.New()
	ch := medium.NewChannel(phy.Channel1, sched)
	bg := NewBackground(sched, ch, 10, medium.Location{}, 0, xrand.New(1))
	bg.Start()
	sched.RunUntil(time.Second)
	if n := ch.TxCount[medium.KindData]; n != 0 {
		t.Errorf("zero-load background sent %d frames", n)
	}
}

func TestBackgroundStop(t *testing.T) {
	sched := eventsim.New()
	ch := medium.NewChannel(phy.Channel1, sched)
	bg := NewBackground(sched, ch, 10, medium.Location{}, 0.3, xrand.New(2))
	bg.Start()
	sched.RunUntil(time.Second)
	bg.Stop()
	count := ch.TxCount[medium.KindData]
	sched.RunUntil(2 * time.Second)
	after := ch.TxCount[medium.KindData]
	// At most one in-flight arrival may land after Stop.
	if after > count+1 {
		t.Errorf("background kept transmitting after Stop: %d -> %d", count, after)
	}
}

func TestBackgroundSetLoad(t *testing.T) {
	sched := eventsim.New()
	ch := medium.NewChannel(phy.Channel1, sched)
	bg := NewBackground(sched, ch, 10, medium.Location{}, 0.1, xrand.New(3))
	bg.Start()
	sched.RunUntil(2 * time.Second)
	low := ch.TxAirtime[medium.KindData]
	bg.SetLoad(0.5)
	sched.RunUntil(4 * time.Second)
	high := ch.TxAirtime[medium.KindData] - low
	if float64(high) < 2.5*float64(low) {
		t.Errorf("SetLoad(0.5) airtime %v not much larger than 0.1-load %v", high, low)
	}
}

func TestTopSitesProfile(t *testing.T) {
	sites := TopSites()
	if len(sites) != 10 {
		t.Fatalf("sites = %d, want 10", len(sites))
	}
	names := map[string]bool{}
	for _, s := range sites {
		names[s.Name] = true
		if len(s.Objects) < 5 {
			t.Errorf("%s has only %d objects", s.Name, len(s.Objects))
		}
		total := 0
		for _, o := range s.Objects {
			if o <= 0 {
				t.Errorf("%s has a non-positive object", s.Name)
			}
			total += o
		}
		// 2015 front pages weighed roughly 0.2-4 MB.
		if total < 150_000 || total > 4_000_000 {
			t.Errorf("%s total weight %d bytes implausible", s.Name, total)
		}
	}
	for _, want := range []string{"google.com", "yahoo.com", "reddit.com", "ebay.com"} {
		if !names[want] {
			t.Errorf("missing site %s", want)
		}
	}
}

func TestTopSitesDeterministic(t *testing.T) {
	a, b := TopSites(), TopSites()
	for i := range a {
		if len(a[i].Objects) != len(b[i].Objects) {
			t.Fatalf("site %s object count differs between calls", a[i].Name)
		}
		for j := range a[i].Objects {
			if a[i].Objects[j] != b[i].Objects[j] {
				t.Fatalf("site %s object %d differs", a[i].Name, j)
			}
		}
	}
}

// instantPath delivers immediately (for loader unit tests).
type instantPath struct{}

func (instantPath) Send(p *netstack.Packet) {
	if p.Dst != nil {
		p.Dst.Deliver(p)
	}
}

func TestPageLoaderCompletesOverIdealPath(t *testing.T) {
	sched := eventsim.New()
	site := Site{Name: "test", Objects: []int{50_000, 20_000, 20_000, 20_000}}
	loader := NewPageLoader(sched, site, instantPath{}, instantPath{}, xrand.New(4))
	var plt time.Duration
	done := false
	loader.OnComplete = func(d time.Duration) { plt = d; done = true }
	loader.Start()
	sched.RunUntil(30 * time.Second)
	if !done {
		t.Fatal("page load did not complete")
	}
	// Over an instant path the PLT is dominated by server think time.
	if plt <= 0 || plt > 5*time.Second {
		t.Errorf("PLT = %v, implausible for an ideal path", plt)
	}
}

func TestPageLoaderFetchesAllObjects(t *testing.T) {
	sched := eventsim.New()
	site := TopSites()[6] // google.com: smallest
	bytesMoved := 0
	down := netstack.FuncPath(func(p *netstack.Packet) {
		bytesMoved += p.Bytes
		if p.Dst != nil {
			p.Dst.Deliver(p)
		}
	})
	loader := NewPageLoader(sched, site, down, instantPath{}, xrand.New(5))
	done := false
	loader.OnComplete = func(time.Duration) { done = true }
	loader.Start()
	sched.RunUntil(60 * time.Second)
	if !done {
		t.Fatal("load did not complete")
	}
	want := 0
	for _, o := range site.Objects {
		want += o
	}
	if bytesMoved < want {
		t.Errorf("moved %d bytes, want at least the page weight %d", bytesMoved, want)
	}
}

func TestPageLoaderRetriesLostRequests(t *testing.T) {
	sched := eventsim.New()
	site := Site{Name: "flaky", Objects: []int{10_000}}
	drops := 0
	up := netstack.FuncPath(func(p *netstack.Packet) {
		// Drop the first two requests; deliver afterwards.
		if drops < 2 {
			drops++
			return
		}
		if p.Dst != nil {
			p.Dst.Deliver(p)
		}
	})
	loader := NewPageLoader(sched, site, instantPath{}, up, xrand.New(6))
	done := false
	loader.OnComplete = func(time.Duration) { done = true }
	loader.Start()
	sched.RunUntil(30 * time.Second)
	if !done {
		t.Fatal("loader did not recover from lost requests")
	}
	if drops != 2 {
		t.Errorf("drops = %d, want 2", drops)
	}
}
