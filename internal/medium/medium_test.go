package medium

import (
	"math"
	"testing"
	"time"

	"repro/internal/eventsim"
	"repro/internal/phy"
)

// fakeStation is a minimal Station for medium-level tests.
type fakeStation struct {
	id       int
	loc      Location
	powerDBm float64
	gain     float64

	busyEdges, idleEdges int
	received             []*Transmission
	receivedOK           []bool
	completed            int
}

func (f *fakeStation) StationID() int          { return f.id }
func (f *fakeStation) Location() Location      { return f.loc }
func (f *fakeStation) TxPowerDBm() float64     { return f.powerDBm }
func (f *fakeStation) AntennaGainDBi() float64 { return f.gain }
func (f *fakeStation) OnChannelBusy()          { f.busyEdges++ }
func (f *fakeStation) OnChannelIdle()          { f.idleEdges++ }
func (f *fakeStation) OnReceive(tx *Transmission, ok bool) {
	f.received = append(f.received, tx)
	f.receivedOK = append(f.receivedOK, ok)
}
func (f *fakeStation) OnTxComplete(tx *Transmission) { f.completed++ }

func rig(n int) (*eventsim.Scheduler, *Channel, []*fakeStation) {
	sched := eventsim.New()
	ch := NewChannel(phy.Channel6, sched)
	stations := make([]*fakeStation, n)
	for i := range stations {
		stations[i] = &fakeStation{
			id: i, loc: Location{X: float64(i)}, powerDBm: 20, gain: 2,
		}
		ch.AddStation(stations[i])
	}
	return sched, ch, stations
}

func TestLocationDistance(t *testing.T) {
	a := Location{X: 0, Y: 0}
	b := Location{X: 3, Y: 4}
	if d := a.DistanceTo(b); math.Abs(d-5) > 1e-12 {
		t.Errorf("distance = %v, want 5", d)
	}
	if d := a.DistanceTo(a); d != 0 {
		t.Errorf("self distance = %v", d)
	}
}

func TestBusyIdleEdges(t *testing.T) {
	sched, ch, st := rig(2)
	ch.StartTx(st[0], Broadcast, 1536, phy.Rate54Mbps, KindData, nil)
	if !ch.Senses(st[1]) {
		t.Error("station 1 should sense the transmission")
	}
	if ch.Senses(st[0]) {
		t.Error("a station never senses its own transmission")
	}
	sched.Run()
	if st[1].busyEdges != 1 || st[1].idleEdges != 1 {
		t.Errorf("edges = %d busy / %d idle, want 1/1", st[1].busyEdges, st[1].idleEdges)
	}
	if ch.Senses(st[1]) {
		t.Error("channel should be idle after completion")
	}
}

func TestBroadcastDeliveredToAll(t *testing.T) {
	sched, ch, st := rig(3)
	ch.StartTx(st[0], Broadcast, 1536, phy.Rate54Mbps, KindData, "payload")
	sched.Run()
	for _, s := range st[1:] {
		if len(s.received) != 1 || !s.receivedOK[0] {
			t.Errorf("station %d received %d/%v", s.id, len(s.received), s.receivedOK)
		}
		if s.received[0].Payload != "payload" {
			t.Error("payload lost in delivery")
		}
	}
	if len(st[0].received) != 0 {
		t.Error("transmitter must not receive its own frame")
	}
	if st[0].completed != 1 {
		t.Error("transmitter should see exactly one completion")
	}
}

func TestUnicastDeliveredOnlyToAddressee(t *testing.T) {
	sched, ch, st := rig(3)
	ch.StartTx(st[0], 2, 1536, phy.Rate54Mbps, KindData, nil)
	sched.Run()
	if len(st[2].received) != 1 {
		t.Error("addressee did not receive")
	}
	if len(st[1].received) != 0 {
		t.Error("bystander received a unicast frame")
	}
}

func TestOverlappingTransmissionsCollide(t *testing.T) {
	sched, ch, st := rig(3)
	// Two equal-power stations transmit simultaneously to station 2.
	ch.StartTx(st[0], 2, 1536, phy.Rate54Mbps, KindData, nil)
	ch.StartTx(st[1], 2, 1536, phy.Rate54Mbps, KindData, nil)
	sched.Run()
	if ch.Collisions == 0 {
		t.Error("no collision recorded")
	}
	for i, ok := range st[2].receivedOK {
		if ok {
			t.Errorf("reception %d decoded despite equal-power collision", i)
		}
	}
}

func TestCaptureStrongerFrameSurvives(t *testing.T) {
	sched := eventsim.New()
	ch := NewChannel(phy.Channel6, sched)
	strong := &fakeStation{id: 0, loc: Location{X: 0}, powerDBm: 30, gain: 6}
	weak := &fakeStation{id: 1, loc: Location{X: 30}, powerDBm: 0, gain: 0}
	rx := &fakeStation{id: 2, loc: Location{X: 1}, powerDBm: 20, gain: 2}
	for _, s := range []*fakeStation{strong, weak, rx} {
		ch.AddStation(s)
	}
	ch.StartTx(strong, 2, 1536, phy.Rate54Mbps, KindData, nil)
	ch.StartTx(weak, 2, 1536, phy.Rate54Mbps, KindData, nil)
	sched.Run()
	// The receiver sits a metre from the strong transmitter and 29 m from
	// the weak one: the strong frame captures.
	decodedStrong := false
	for i, tx := range rx.received {
		if tx.Src.StationID() == 0 && rx.receivedOK[i] {
			decodedStrong = true
		}
		if tx.Src.StationID() == 1 && rx.receivedOK[i] {
			t.Error("weak frame decoded through a 10+ dB stronger interferer")
		}
	}
	if !decodedStrong {
		t.Error("strong frame should capture over the weak interferer")
	}
}

func TestOutOfRangeStationDoesNotSense(t *testing.T) {
	sched := eventsim.New()
	ch := NewChannel(phy.Channel6, sched)
	near := &fakeStation{id: 0, loc: Location{}, powerDBm: 0, gain: 0}
	// ~-95 dBm at 1.5 km with 0 dBm transmit: below the -82 dBm CS
	// threshold.
	far := &fakeStation{id: 1, loc: Location{X: 1500}, powerDBm: 0, gain: 0}
	ch.AddStation(near)
	ch.AddStation(far)
	ch.StartTx(near, Broadcast, 1536, phy.Rate54Mbps, KindData, nil)
	if ch.Senses(far) {
		t.Error("station 1.5 km away should not carrier-sense a 0 dBm transmission")
	}
	sched.Run()
	if far.busyEdges != 0 {
		t.Error("out-of-range station got a busy edge")
	}
}

func TestBelowSensitivityNotDecoded(t *testing.T) {
	sched := eventsim.New()
	ch := NewChannel(phy.Channel6, sched)
	tx := &fakeStation{id: 0, loc: Location{}, powerDBm: 0, gain: 0}
	// 54 Mbps needs -72 dBm; at ~160 m with 0 dBm the signal is ~-84 dBm:
	// carrier-sensed but not decodable.
	rx := &fakeStation{id: 1, loc: Location{X: 160}, powerDBm: 0, gain: 0}
	ch.AddStation(tx)
	ch.AddStation(rx)
	ch.StartTx(tx, 1, 1536, phy.Rate54Mbps, KindData, nil)
	sched.Run()
	if len(rx.received) != 1 || rx.receivedOK[0] {
		t.Errorf("marginal frame should be delivered as failed: %v", rx.receivedOK)
	}
}

func TestProbeSeesIncidentPower(t *testing.T) {
	sched, ch, st := rig(2)
	probe := &fakeProbe{loc: Location{X: 3}, gain: 2}
	ch.AddProbe(probe)
	ch.StartTx(st[0], Broadcast, 1536, phy.Rate54Mbps, KindPower, nil)
	if probe.lastW <= 0 {
		t.Fatal("probe saw no power during transmission")
	}
	during := probe.lastW
	sched.Run()
	if probe.lastW != 0 {
		t.Errorf("probe power after completion = %v, want 0", probe.lastW)
	}
	if during < 1e-9 {
		t.Errorf("incident power %v implausibly small", during)
	}
}

func TestProbePowerSumsOverTransmitters(t *testing.T) {
	sched, ch, st := rig(2)
	probe := &fakeProbe{loc: Location{X: 0.5}, gain: 2}
	ch.AddProbe(probe)
	ch.StartTx(st[0], Broadcast, 1536, phy.Rate54Mbps, KindPower, nil)
	one := probe.lastW
	ch.StartTx(st[1], Broadcast, 1536, phy.Rate54Mbps, KindPower, nil)
	two := probe.lastW
	if two <= one {
		t.Errorf("two transmitters (%v W) should exceed one (%v W)", two, one)
	}
	sched.Run()
}

func TestWallAttenuatesProbe(t *testing.T) {
	sched, ch, st := rig(2)
	clear := &fakeProbe{loc: Location{X: 3}, gain: 2}
	walled := &fakeProbe{loc: Location{X: 3}, gain: 2, wallDB: 6.5}
	ch.AddProbe(clear)
	ch.AddProbe(walled)
	ch.StartTx(st[0], Broadcast, 1536, phy.Rate54Mbps, KindPower, nil)
	ratio := clear.lastW / walled.lastW
	want := math.Pow(10, 0.65)
	if math.Abs(ratio-want) > 0.01*want {
		t.Errorf("wall attenuation ratio = %v, want %v", ratio, want)
	}
	sched.Run()
}

func TestObserverSeesEveryFrame(t *testing.T) {
	sched, ch, st := rig(2)
	var seen []FrameKind
	ch.Observers = append(ch.Observers, func(tx *Transmission) {
		seen = append(seen, tx.Kind)
	})
	ch.StartTx(st[0], 1, 1536, phy.Rate54Mbps, KindData, nil)
	sched.Run()
	ch.StartTx(st[1], Broadcast, 1536, phy.Rate54Mbps, KindPower, nil)
	sched.Run()
	if len(seen) != 2 || seen[0] != KindData || seen[1] != KindPower {
		t.Errorf("observer saw %v", seen)
	}
}

func TestAirtimeAccounting(t *testing.T) {
	sched, ch, st := rig(2)
	ch.StartTx(st[0], Broadcast, 1536, phy.Rate54Mbps, KindPower, nil)
	sched.Run()
	want := phy.Airtime(1536, phy.Rate54Mbps)
	if got := ch.TxAirtime[KindPower]; got != want {
		t.Errorf("airtime = %v, want %v", got, want)
	}
	if ch.TxCount[KindPower] != 1 {
		t.Errorf("count = %d, want 1", ch.TxCount[KindPower])
	}
}

func TestFrameKindStrings(t *testing.T) {
	cases := map[FrameKind]string{
		KindData: "data", KindAck: "ack", KindBeacon: "beacon", KindPower: "power",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestTransmissionAirtimeField(t *testing.T) {
	sched, ch, st := rig(2)
	tx := ch.StartTx(st[0], Broadcast, 100, phy.Rate6Mbps, KindData, nil)
	if tx.Airtime() != phy.Airtime(100, phy.Rate6Mbps) {
		t.Errorf("Airtime = %v", tx.Airtime())
	}
	if tx.Start != 0 || tx.End != tx.Airtime() {
		t.Errorf("start/end = %v/%v", tx.Start, tx.End)
	}
	sched.Run()
	if ch.ActiveCount() != 0 {
		t.Error("transmission still active after Run")
	}
	_ = time.Now
}

// fakeProbe records incident power updates.
type fakeProbe struct {
	loc    Location
	gain   float64
	wallDB float64
	lastW  float64
}

func (p *fakeProbe) ProbeLocation() Location   { return p.loc }
func (p *fakeProbe) ProbeGainDBi() float64     { return p.gain }
func (p *fakeProbe) ExtraLossDB() float64      { return p.wallDB }
func (p *fakeProbe) OnIncidentPower(w float64) { p.lastW = w }
