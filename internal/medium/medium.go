// Package medium implements the shared wireless channel: who senses whom,
// which overlapping transmissions collide, and how much RF power arrives
// at any point in space.
//
// Each 2.4 GHz Wi-Fi channel is an independent Channel instance (channels
// 1, 6 and 11 do not overlap). Stations attach to a channel and interact
// through carrier sense and frame delivery; energy-harvester probes attach
// to a channel and simply integrate incident power over time — they do not
// decode anything, mirroring the real harvester's obliviousness to packet
// contents (§3).
package medium

import (
	"math"
	"time"

	"repro/internal/eventsim"
	"repro/internal/phy"
	"repro/internal/rf"
	"repro/internal/units"
)

// Location is a point in the simulated floor plan, in metres.
type Location struct {
	X, Y float64
}

// DistanceTo returns the Euclidean distance to other in metres.
func (l Location) DistanceTo(other Location) float64 {
	dx, dy := l.X-other.X, l.Y-other.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Station is the medium-facing interface a MAC entity implements.
type Station interface {
	// StationID returns a unique identifier on this channel.
	StationID() int
	// Location returns the station's position.
	Location() Location
	// TxPowerDBm returns the transmit power.
	TxPowerDBm() float64
	// AntennaGainDBi returns the antenna gain applied to both transmit
	// and receive.
	AntennaGainDBi() float64
	// OnChannelBusy notifies that the station now senses the channel busy.
	OnChannelBusy()
	// OnChannelIdle notifies that the station now senses the channel idle.
	OnChannelIdle()
	// OnReceive delivers a completed transmission. ok is false when the
	// frame collided or arrived below the rate's sensitivity.
	OnReceive(tx *Transmission, ok bool)
	// OnTxComplete notifies the transmitter that its own transmission
	// finished.
	OnTxComplete(tx *Transmission)
}

// FrameKind classifies transmissions for statistics and delivery logic.
type FrameKind int

// Frame kinds used across the stack.
const (
	KindData FrameKind = iota
	KindAck
	KindBeacon
	KindPower // PoWiFi power packet (UDP broadcast)
)

// String implements fmt.Stringer.
func (k FrameKind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindAck:
		return "ack"
	case KindBeacon:
		return "beacon"
	case KindPower:
		return "power"
	}
	return "unknown"
}

// Broadcast is the destination ID of broadcast transmissions.
const Broadcast = -1

// Transmission is one frame on the air.
type Transmission struct {
	Src     Station
	DstID   int // station ID or Broadcast
	Bytes   int // full MAC frame length
	Rate    phy.Rate
	Kind    FrameKind
	Payload any
	Start   time.Duration
	End     time.Duration

	overlapped []*Transmission // transmissions that overlapped this one
}

// Airtime returns the transmission's on-air duration.
func (t *Transmission) Airtime() time.Duration { return t.End - t.Start }

// PowerProbe receives incident-power updates from a channel. The harvester
// integration layer implements this to accumulate RF energy.
type PowerProbe interface {
	// ProbeLocation returns the probe's position.
	ProbeLocation() Location
	// ProbeGainDBi returns the probe antenna gain (2 dBi in the paper).
	ProbeGainDBi() float64
	// ExtraLossDB returns additional fixed path loss (e.g. a wall).
	ExtraLossDB() float64
	// OnIncidentPower reports that the total incident power at the probe
	// changed to w watts at the current simulation time.
	OnIncidentPower(w float64)
}

// Channel is one Wi-Fi channel's shared medium.
type Channel struct {
	Num      phy.Channel
	Sched    *eventsim.Scheduler
	PathLoss rf.PathLossModel

	stations []Station
	probes   []PowerProbe
	active   []*Transmission

	// senseCount tracks, per station ID, how many active transmissions
	// the station currently senses, to derive busy/idle edges.
	senseCount map[int]int

	// Observers receive every completed transmission regardless of
	// addressing, like a monitor-mode interface running tcpdump (§4's
	// occupancy methodology).
	Observers []func(tx *Transmission)

	// Stats.
	TxCount    map[FrameKind]int
	TxAirtime  map[FrameKind]time.Duration
	Collisions int
}

// NewChannel creates a channel medium on the scheduler with free-space
// propagation by default.
func NewChannel(num phy.Channel, sched *eventsim.Scheduler) *Channel {
	return &Channel{
		Num:        num,
		Sched:      sched,
		PathLoss:   rf.FreeSpace{},
		senseCount: make(map[int]int),
		TxCount:    make(map[FrameKind]int),
		TxAirtime:  make(map[FrameKind]time.Duration),
	}
}

// AddStation attaches a station to the channel.
func (c *Channel) AddStation(s Station) {
	c.stations = append(c.stations, s)
}

// AddProbe attaches an energy-harvesting probe.
func (c *Channel) AddProbe(p PowerProbe) {
	c.probes = append(c.probes, p)
}

// rxPowerDBm returns the received power at location/gain from a
// transmission's source.
func (c *Channel) rxPowerDBm(src Station, loc Location, gainDBi, extraLossDB float64) float64 {
	link := rf.Link{
		TxPowerDBm: src.TxPowerDBm(),
		TxAntenna:  rf.Antenna{GainDBi: src.AntennaGainDBi()},
		RxAntenna:  rf.Antenna{GainDBi: gainDBi},
		DistanceM:  src.Location().DistanceTo(loc),
		Model:      c.PathLoss,
	}
	return link.ReceivedPowerDBm(c.Num.FreqHz()) - extraLossDB
}

// Senses reports whether station s currently senses the channel busy.
func (c *Channel) Senses(s Station) bool {
	return c.senseCount[s.StationID()] > 0
}

// senses reports whether station s can sense transmission tx.
func (c *Channel) senses(s Station, tx *Transmission) bool {
	if s.StationID() == tx.Src.StationID() {
		return false
	}
	return c.rxPowerDBm(tx.Src, s.Location(), s.AntennaGainDBi(), 0) >= phy.CSThresholdDBm
}

// StartTx begins transmitting a frame. The transmission ends and resolves
// automatically after its airtime.
func (c *Channel) StartTx(src Station, dstID, bytes int, rate phy.Rate, kind FrameKind, payload any) *Transmission {
	now := c.Sched.Now()
	tx := &Transmission{
		Src:     src,
		DstID:   dstID,
		Bytes:   bytes,
		Rate:    rate,
		Kind:    kind,
		Payload: payload,
		Start:   now,
		End:     now + phy.Airtime(bytes, rate),
	}
	// Record pairwise overlaps with already-active transmissions.
	for _, other := range c.active {
		other.overlapped = append(other.overlapped, tx)
		tx.overlapped = append(tx.overlapped, other)
	}
	c.active = append(c.active, tx)
	c.TxCount[kind]++
	c.TxAirtime[kind] += tx.Airtime()

	// Busy edges for stations that sense this transmission.
	for _, s := range c.stations {
		if c.senses(s, tx) {
			c.senseCount[s.StationID()]++
			if c.senseCount[s.StationID()] == 1 {
				s.OnChannelBusy()
			}
		}
	}
	c.updateProbes()

	c.Sched.At(tx.End, func() { c.endTx(tx) })
	return tx
}

// endTx resolves a completed transmission: removes it from the air,
// releases carrier sense, and delivers it to receivers.
func (c *Channel) endTx(tx *Transmission) {
	for i, a := range c.active {
		if a == tx {
			c.active = append(c.active[:i], c.active[i+1:]...)
			break
		}
	}
	for _, s := range c.stations {
		if c.senses(s, tx) {
			c.senseCount[s.StationID()]--
			if c.senseCount[s.StationID()] == 0 {
				s.OnChannelIdle()
			}
		}
	}
	c.updateProbes()

	if len(tx.overlapped) > 0 {
		c.Collisions++
	}
	for _, obs := range c.Observers {
		obs(tx)
	}

	// Deliver to each station other than the source.
	for _, s := range c.stations {
		if s.StationID() == tx.Src.StationID() {
			continue
		}
		if tx.DstID != Broadcast && tx.DstID != s.StationID() {
			// Not addressed here; stations still get overheard frames
			// (needed by monitor interfaces), flagged by delivery result.
			continue
		}
		ok := c.decodes(s, tx)
		s.OnReceive(tx, ok)
	}
	tx.Src.OnTxComplete(tx)
}

// decodes reports whether station s successfully decodes tx: the frame
// must arrive above the rate's sensitivity, and any overlapping
// transmission must be CaptureMarginDB weaker.
func (c *Channel) decodes(s Station, tx *Transmission) bool {
	rx := c.rxPowerDBm(tx.Src, s.Location(), s.AntennaGainDBi(), 0)
	if rx < phy.MinSensitivityDBm(tx.Rate) {
		return false
	}
	for _, other := range tx.overlapped {
		if other.Src.StationID() == s.StationID() {
			// The station was itself transmitting: half-duplex, no decode.
			return false
		}
		interference := c.rxPowerDBm(other.Src, s.Location(), s.AntennaGainDBi(), 0)
		if rx-interference < phy.CaptureMarginDB {
			return false
		}
	}
	return true
}

// updateProbes pushes the current total incident power to every probe.
func (c *Channel) updateProbes() {
	for _, p := range c.probes {
		total := 0.0
		for _, tx := range c.active {
			dbm := c.rxPowerDBm(tx.Src, p.ProbeLocation(), p.ProbeGainDBi(), p.ExtraLossDB())
			total += units.DBmToWatts(dbm)
		}
		p.OnIncidentPower(total)
	}
}

// ActiveCount returns the number of in-flight transmissions (test hook).
func (c *Channel) ActiveCount() int { return len(c.active) }
