// Package medium implements the shared wireless channel: who senses whom,
// which overlapping transmissions collide, and how much RF power arrives
// at any point in space.
//
// Each 2.4 GHz Wi-Fi channel is an independent Channel instance (channels
// 1, 6 and 11 do not overlap). Stations attach to a channel and interact
// through carrier sense and frame delivery; energy-harvester probes attach
// to a channel and simply integrate incident power over time — they do not
// decode anything, mirroring the real harvester's obliviousness to packet
// contents (§3).
package medium

import (
	"math"
	"time"

	"repro/internal/eventsim"
	"repro/internal/phy"
	"repro/internal/rf"
	"repro/internal/units"
)

// Location is a point in the simulated floor plan, in metres.
type Location struct {
	X, Y float64
}

// DistanceTo returns the Euclidean distance to other in metres.
func (l Location) DistanceTo(other Location) float64 {
	dx, dy := l.X-other.X, l.Y-other.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Station is the medium-facing interface a MAC entity implements.
type Station interface {
	// StationID returns a unique identifier on this channel.
	StationID() int
	// Location returns the station's position.
	Location() Location
	// TxPowerDBm returns the transmit power.
	TxPowerDBm() float64
	// AntennaGainDBi returns the antenna gain applied to both transmit
	// and receive.
	AntennaGainDBi() float64
	// OnChannelBusy notifies that the station now senses the channel busy.
	OnChannelBusy()
	// OnChannelIdle notifies that the station now senses the channel idle.
	OnChannelIdle()
	// OnReceive delivers a completed transmission. ok is false when the
	// frame collided or arrived below the rate's sensitivity.
	OnReceive(tx *Transmission, ok bool)
	// OnTxComplete notifies the transmitter that its own transmission
	// finished.
	OnTxComplete(tx *Transmission)
}

// FrameKind classifies transmissions for statistics and delivery logic.
type FrameKind int

// Frame kinds used across the stack.
const (
	KindData FrameKind = iota
	KindAck
	KindBeacon
	KindPower // PoWiFi power packet (UDP broadcast)
)

// String implements fmt.Stringer.
func (k FrameKind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindAck:
		return "ack"
	case KindBeacon:
		return "beacon"
	case KindPower:
		return "power"
	}
	return "unknown"
}

// Broadcast is the destination ID of broadcast transmissions.
const Broadcast = -1

// NumFrameKinds sizes per-kind statistic arrays: one slot per FrameKind.
const NumFrameKinds = int(KindPower) + 1

// Transmission is one frame on the air.
type Transmission struct {
	Src     Station
	DstID   int // station ID or Broadcast
	Bytes   int // full MAC frame length
	Rate    phy.Rate
	Kind    FrameKind
	Payload any
	Start   time.Duration
	End     time.Duration

	overlapped []*Transmission // transmissions that overlapped this one

	// senseMask records which stations (by channel index, one bit each)
	// sense this transmission, computed once at StartTx and reused at
	// endTx — the set cannot change mid-flight because geometry is
	// fixed while a run is in progress.
	senseMask uint64
	// srcIdx is Src's index in the channel's station list, resolved once
	// at StartTx.
	srcIdx int
}

// Airtime returns the transmission's on-air duration.
func (t *Transmission) Airtime() time.Duration { return t.End - t.Start }

// PowerProbe receives incident-power updates from a channel. The harvester
// integration layer implements this to accumulate RF energy.
type PowerProbe interface {
	// ProbeLocation returns the probe's position.
	ProbeLocation() Location
	// ProbeGainDBi returns the probe antenna gain (2 dBi in the paper).
	ProbeGainDBi() float64
	// ExtraLossDB returns additional fixed path loss (e.g. a wall).
	ExtraLossDB() float64
	// OnIncidentPower reports that the total incident power at the probe
	// changed to w watts at the current simulation time.
	OnIncidentPower(w float64)
}

// Channel is one Wi-Fi channel's shared medium.
type Channel struct {
	Num      phy.Channel
	Sched    *eventsim.Scheduler
	PathLoss rf.PathLossModel

	stations []Station
	// activeN bounds the participating prefix of stations: carrier
	// sense, delivery and capture only see stations[:activeN]. A pooled
	// context attaches its maximum topology once and activates the
	// per-run prefix, which reproduces exactly the station set a fresh
	// build would have attached.
	activeN int
	probes  []PowerProbe
	active  []*Transmission

	// senseCounts tracks, per station (parallel to stations), how many
	// active transmissions the station currently senses, to derive
	// busy/idle edges.
	senseCounts []int

	// rxCache memoizes the pairwise station→station received power
	// (a flat len(stations)² matrix, NaN = not yet computed). Station
	// positions, powers and gains are fixed once a run starts, and the
	// carrier-sense/capture checks re-derive the same pure path-loss
	// math on every busy edge — the cache turns each repeat into a
	// load. Reset and AddStation invalidate it.
	rxCache []float64

	// Observers receive every completed transmission regardless of
	// addressing, like a monitor-mode interface running tcpdump (§4's
	// occupancy methodology).
	Observers []func(tx *Transmission)

	// Stats, indexed by FrameKind. Fixed arrays rather than maps: the
	// transmit path bumps them per frame, and map traffic was a
	// measurable slice of the sampler's steady-state cost.
	TxCount    [NumFrameKinds]int
	TxAirtime  [NumFrameKinds]time.Duration
	Collisions int

	// endTxFn is the long-lived end-of-transmission callback; scheduling
	// it with the transmission as the context word costs no per-event
	// closure.
	endTxFn func(ctx any)

	// txPool recycles Transmission structs across Resets: txNext indexes
	// the next reusable slot, and slots are only reused after a Reset,
	// when no live references remain.
	txPool []*Transmission
	txNext int

	// One-entry airtime memo for the per-frame phy.Airtime derivation
	// (pure in bytes and rate; traffic is dominated by one or two frame
	// shapes per run).
	lastAirBytes int
	lastAirRate  phy.Rate
	lastAirtime  time.Duration
}

// NewChannel creates a channel medium on the scheduler with free-space
// propagation by default.
func NewChannel(num phy.Channel, sched *eventsim.Scheduler) *Channel {
	c := &Channel{
		Num:      num,
		Sched:    sched,
		PathLoss: rf.FreeSpace{},
	}
	c.endTxFn = func(ctx any) { c.endTx(ctx.(*Transmission)) }
	return c
}

// newTransmission returns a zeroed transmission from the pool, keeping
// any overlap-slice capacity a recycled slot already grew.
func (c *Channel) newTransmission() *Transmission {
	if c.txNext < len(c.txPool) {
		tx := c.txPool[c.txNext]
		c.txNext++
		overlapped := tx.overlapped[:0]
		*tx = Transmission{overlapped: overlapped}
		return tx
	}
	tx := &Transmission{}
	c.txPool = append(c.txPool, tx)
	c.txNext++
	return tx
}

// Reset clears the channel's dynamic state — in-flight transmissions,
// carrier-sense counts, statistics and the transmission pool cursor —
// while keeping its topology (attached stations, probes and observers)
// and allocated memory. Callers must reset the scheduler alongside, so
// no recycled transmission is still referenced by a queued event.
//
// The pairwise received-power memo survives Reset: it depends only on
// station geometry, powers, gains and the path-loss model, all of which
// attachment fixes. A caller that mutates any of those between runs
// must call InvalidateRxCache.
func (c *Channel) Reset() {
	for i := range c.active {
		c.active[i] = nil
	}
	c.active = c.active[:0]
	for i := range c.senseCounts {
		c.senseCounts[i] = 0
	}
	c.TxCount = [NumFrameKinds]int{}
	c.TxAirtime = [NumFrameKinds]time.Duration{}
	c.Collisions = 0
	c.txNext = 0
}

// InvalidateRxCache marks every pairwise received-power entry stale.
// AddStation calls it automatically; callers that change a station's
// power, gain or position, or the channel's PathLoss, after attachment
// must call it themselves.
func (c *Channel) InvalidateRxCache() { c.invalidateRxCache() }

// invalidateRxCache marks every pairwise received-power entry stale.
func (c *Channel) invalidateRxCache() {
	n := len(c.stations) * len(c.stations)
	if cap(c.rxCache) < n {
		c.rxCache = make([]float64, n)
	}
	c.rxCache = c.rxCache[:n]
	for i := range c.rxCache {
		c.rxCache[i] = math.NaN()
	}
}

// stationIndex returns s's position in the attachment list (active or
// not), or -1 for a station that never attached. The list is small (a
// handful of stations per channel), so a linear scan beats any map.
func (c *Channel) stationIndex(s Station) int {
	for i, st := range c.stations {
		if st == s {
			return i
		}
	}
	return -1
}

// rxStationPower returns the memoized received power at station dst
// (index j) from station src (index i). A negative source index (an
// unattached transmitter) computes directly, uncached.
func (c *Channel) rxStationPower(i, j int, src, dst Station) float64 {
	if i < 0 {
		return c.rxPowerDBm(src, dst.Location(), dst.AntennaGainDBi(), 0)
	}
	k := i*len(c.stations) + j
	if v := c.rxCache[k]; !math.IsNaN(v) {
		return v
	}
	v := c.rxPowerDBm(src, dst.Location(), dst.AntennaGainDBi(), 0)
	c.rxCache[k] = v
	return v
}

// AddStation attaches a station to the channel and returns its
// attachment index. New stations are active by default. Stations that
// keep the index can use the index-direct fast paths (StartTxFrom,
// SensesIdx) and skip the attachment-list scan.
func (c *Channel) AddStation(s Station) int {
	c.stations = append(c.stations, s)
	c.senseCounts = append(c.senseCounts, 0)
	c.activeN = len(c.stations)
	c.invalidateRxCache()
	return len(c.stations) - 1
}

// SetActiveStations makes only the first n attached stations participate
// in the medium; later attachments lie dormant (a pooling layer's spare
// contenders). n is clamped to the attached count. The pairwise power
// memo is indexed by full attachment order, so activation changes do not
// invalidate it.
func (c *Channel) SetActiveStations(n int) {
	if n < 0 {
		n = 0
	}
	if n > len(c.stations) {
		n = len(c.stations)
	}
	c.activeN = n
}

// AddProbe attaches an energy-harvesting probe.
func (c *Channel) AddProbe(p PowerProbe) {
	c.probes = append(c.probes, p)
}

// rxPowerDBm returns the received power at location/gain from a
// transmission's source.
func (c *Channel) rxPowerDBm(src Station, loc Location, gainDBi, extraLossDB float64) float64 {
	link := rf.Link{
		TxPowerDBm: src.TxPowerDBm(),
		TxAntenna:  rf.Antenna{GainDBi: src.AntennaGainDBi()},
		RxAntenna:  rf.Antenna{GainDBi: gainDBi},
		DistanceM:  src.Location().DistanceTo(loc),
		Model:      c.PathLoss,
	}
	return link.ReceivedPowerDBm(c.Num.FreqHz()) - extraLossDB
}

// Senses reports whether station s currently senses the channel busy.
func (c *Channel) Senses(s Station) bool {
	if i := c.stationIndex(s); i >= 0 {
		return c.senseCounts[i] > 0
	}
	return false
}

// SensesIdx reports whether the station at attachment index idx
// currently senses the channel busy — the scan-free form of Senses.
func (c *Channel) SensesIdx(idx int) bool { return c.senseCounts[idx] > 0 }

// senses reports whether the station at index j can sense transmission
// tx, whose source sits at index srcIdx.
func (c *Channel) senses(j, srcIdx int, s Station, tx *Transmission) bool {
	if j == srcIdx {
		return false
	}
	return c.rxStationPower(srcIdx, j, tx.Src, s) >= phy.CSThresholdDBm
}

// StartTx begins transmitting a frame. The transmission ends and resolves
// automatically after its airtime.
func (c *Channel) StartTx(src Station, dstID, bytes int, rate phy.Rate, kind FrameKind, payload any) *Transmission {
	return c.StartTxFrom(c.stationIndex(src), src, dstID, bytes, rate, kind, payload)
}

// StartTxFrom is StartTx for callers that know their attachment index
// (as returned by AddStation), skipping the station-list scan on the
// per-frame hot path.
func (c *Channel) StartTxFrom(srcIdx int, src Station, dstID, bytes int, rate phy.Rate, kind FrameKind, payload any) *Transmission {
	now := c.Sched.Now()
	tx := c.newTransmission()
	tx.Src = src
	tx.DstID = dstID
	tx.Bytes = bytes
	tx.Rate = rate
	tx.Kind = kind
	tx.Payload = payload
	tx.Start = now
	if bytes != c.lastAirBytes || rate != c.lastAirRate {
		c.lastAirBytes, c.lastAirRate = bytes, rate
		c.lastAirtime = phy.Airtime(bytes, rate)
	}
	tx.End = now + c.lastAirtime
	// Record pairwise overlaps with already-active transmissions.
	for _, other := range c.active {
		other.overlapped = append(other.overlapped, tx)
		tx.overlapped = append(tx.overlapped, other)
	}
	c.active = append(c.active, tx)
	c.TxCount[kind]++
	c.TxAirtime[kind] += tx.Airtime()

	// Busy edges for stations that sense this transmission.
	tx.srcIdx = srcIdx
	for j, s := range c.stations[:c.activeN] {
		if c.senses(j, srcIdx, s, tx) {
			if j < 64 {
				tx.senseMask |= 1 << uint(j)
			}
			c.senseCounts[j]++
			if c.senseCounts[j] == 1 {
				s.OnChannelBusy()
			}
		}
	}
	c.updateProbes()

	c.Sched.AtCtx(tx.End, c.endTxFn, tx)
	return tx
}

// endTx resolves a completed transmission: removes it from the air,
// releases carrier sense, and delivers it to receivers.
func (c *Channel) endTx(tx *Transmission) {
	for i, a := range c.active {
		if a == tx {
			c.active = append(c.active[:i], c.active[i+1:]...)
			break
		}
	}
	srcIdx := tx.srcIdx
	for j, s := range c.stations[:c.activeN] {
		sensed := tx.senseMask&(1<<uint(j)) != 0
		if j >= 64 {
			sensed = c.senses(j, srcIdx, s, tx)
		}
		if sensed {
			c.senseCounts[j]--
			if c.senseCounts[j] == 0 {
				s.OnChannelIdle()
			}
		}
	}
	c.updateProbes()

	if len(tx.overlapped) > 0 {
		c.Collisions++
	}
	for _, obs := range c.Observers {
		obs(tx)
	}

	// Deliver to each station other than the source.
	for j, s := range c.stations[:c.activeN] {
		if j == srcIdx {
			continue
		}
		if tx.DstID != Broadcast && tx.DstID != s.StationID() {
			// Not addressed here; stations still get overheard frames
			// (needed by monitor interfaces), flagged by delivery result.
			continue
		}
		ok := c.decodes(j, srcIdx, s, tx)
		s.OnReceive(tx, ok)
	}
	tx.Src.OnTxComplete(tx)
}

// decodes reports whether the station at index j successfully decodes
// tx (source at index srcIdx): the frame must arrive above the rate's
// sensitivity, and any overlapping transmission must be CaptureMarginDB
// weaker.
func (c *Channel) decodes(j, srcIdx int, s Station, tx *Transmission) bool {
	rx := c.rxStationPower(srcIdx, j, tx.Src, s)
	if rx < phy.MinSensitivityDBm(tx.Rate) {
		return false
	}
	for _, other := range tx.overlapped {
		if other.srcIdx == j {
			// The station was itself transmitting: half-duplex, no decode.
			return false
		}
		interference := c.rxStationPower(other.srcIdx, j, other.Src, s)
		if rx-interference < phy.CaptureMarginDB {
			return false
		}
	}
	return true
}

// updateProbes pushes the current total incident power to every probe.
func (c *Channel) updateProbes() {
	for _, p := range c.probes {
		total := 0.0
		for _, tx := range c.active {
			dbm := c.rxPowerDBm(tx.Src, p.ProbeLocation(), p.ProbeGainDBi(), p.ExtraLossDB())
			total += units.DBmToWatts(dbm)
		}
		p.OnIncidentPower(total)
	}
}

// ActiveCount returns the number of in-flight transmissions (test hook).
func (c *Channel) ActiveCount() int { return len(c.active) }
