// Package profiling wires the conventional -cpuprofile/-memprofile
// behavior into the CLIs: it was used to find and validate the
// zero-allocation sampler work and stays available for the next hot-path
// investigation (go tool pprof <binary> <profile>).
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (if non-empty) and arranges for
// a heap profile at memPath (if non-empty). The returned stop function
// flushes both; callers must invoke it on every exit path that should
// produce profiles (a defer in run() is the usual shape).
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("create mem profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("write mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
