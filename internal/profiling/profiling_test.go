package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

// gzip magic: pprof profiles are gzip-compressed protobufs.
func isGzip(t *testing.T, path string) bool {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return len(data) > 2 && data[0] == 0x1f && data[1] == 0x8b
}

func TestNoProfilesIsANoOp(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal("second stop must stay a no-op:", err)
	}
}

func TestCPUProfileWritten(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cpu.prof")
	stop, err := Start(path, "")
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to say; the file
	// must be valid either way.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if !isGzip(t, path) {
		t.Error("cpu profile is not a gzip-compressed pprof file")
	}
}

func TestMemProfileWrittenOnStop(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mem.prof")
	stop, err := Start("", path)
	if err != nil {
		t.Fatal(err)
	}
	// The heap profile is written by stop, not Start.
	if _, err := os.Stat(path); err == nil {
		t.Error("mem profile exists before stop")
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if !isGzip(t, path) {
		t.Error("mem profile is not a gzip-compressed pprof file")
	}
}

func TestBothProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := filepath.Join(dir, "cpu.prof"), filepath.Join(dir, "mem.prof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if !isGzip(t, cpu) || !isGzip(t, mem) {
		t.Error("profiles missing or malformed")
	}
}

func TestUnwritableCPUPathFailsLoudly(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.prof"), ""); err == nil {
		t.Error("unwritable cpu path did not error")
	}
}

func TestUnwritableMemPathFailsOnStop(t *testing.T) {
	stop, err := Start("", filepath.Join(t.TempDir(), "no", "such", "dir", "mem.prof"))
	if err != nil {
		t.Fatal("mem path is only opened at stop; Start must succeed:", err)
	}
	if err := stop(); err == nil {
		t.Error("unwritable mem path did not error at stop")
	}
}
