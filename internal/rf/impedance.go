// Package rf provides the analog RF substrate of the PoWiFi simulator:
// complex impedance arithmetic, single-stage LC matching-network analysis
// (the paper's §3.1 matching network), S11/return-loss computation (Fig. 9),
// and indoor radio propagation with antenna gains and wall materials
// (Figs. 11–13).
package rf

import (
	"math"
	"math/cmplx"
)

// Z0 is the reference system impedance in ohms. Wi-Fi antennas, like the
// 2 dBi Pulse antenna used by the paper's prototypes, present 50 Ω.
const Z0 = 50.0

// Impedance is a complex impedance in ohms (resistance + j·reactance).
type Impedance = complex128

// InductorImpedance returns the impedance j·ω·L of an ideal inductor of
// L henries at freqHz, plus an optional series loss resistance derived
// from the quality factor q (q <= 0 means lossless). The paper's 0402HP
// inductors have Q ≈ 100 at 2.45 GHz.
func InductorImpedance(l, freqHz, q float64) Impedance {
	xl := 2 * math.Pi * freqHz * l
	r := 0.0
	if q > 0 {
		r = xl / q
	}
	return complex(r, xl)
}

// CapacitorImpedance returns the impedance 1/(j·ω·C) of an ideal capacitor
// of C farads at freqHz, plus an optional equivalent series resistance from
// the quality factor q (q <= 0 means lossless).
func CapacitorImpedance(c, freqHz, q float64) Impedance {
	xc := 1 / (2 * math.Pi * freqHz * c)
	r := 0.0
	if q > 0 {
		r = xc / q
	}
	return complex(r, -xc)
}

// Parallel combines two impedances in parallel.
func Parallel(a, b Impedance) Impedance {
	den := a + b
	if den == 0 {
		return complex(math.Inf(1), 0)
	}
	return a * b / den
}

// ReflectionCoefficient returns Γ = (Z − Z0)/(Z + Z0) of a load Z against
// the reference impedance z0.
func ReflectionCoefficient(z Impedance, z0 float64) complex128 {
	return (z - complex(z0, 0)) / (z + complex(z0, 0))
}

// ReturnLossDB returns the return loss in dB of a load Z against z0, using
// the paper's sign convention (Fig. 9): 20·log10|Γ|, a negative number for
// any passive load, with more negative meaning better matched.
func ReturnLossDB(z Impedance, z0 float64) float64 {
	g := cmplx.Abs(ReflectionCoefficient(z, z0))
	if g <= 0 {
		return math.Inf(-1)
	}
	return 20 * math.Log10(g)
}

// MismatchLossFraction returns the fraction of incident power delivered to
// the load (1 − |Γ|²). A −10 dB return loss delivers 90% of incident power,
// which the paper calls "less than 0.5 dB of lost power".
func MismatchLossFraction(z Impedance, z0 float64) float64 {
	g := cmplx.Abs(ReflectionCoefficient(z, z0))
	return 1 - g*g
}

// MatchingNetwork is a two-port impedance-matching network between a 50 Ω
// antenna and the rectifier load.
type MatchingNetwork interface {
	// InputImpedance returns the impedance seen from the antenna when the
	// rectifier presents zLoad at freqHz.
	InputImpedance(zLoad Impedance, freqHz float64) Impedance
	// ReturnLossDB returns the match quality against Z0 at freqHz.
	ReturnLossDB(zLoad Impedance, freqHz float64) float64
	// PowerTransferFraction returns the fraction of antenna-incident
	// power that reaches the rectifier load at freqHz.
	PowerTransferFraction(zLoad Impedance, freqHz float64) float64
}

// LSection is a low-pass single-stage LC matching network: a shunt
// capacitor across the antenna port followed by a series inductor into the
// rectifier. This orientation suits loads whose series-equivalent
// resistance sits below 50 Ω.
type LSection struct {
	SeriesL    float64 // henries, in series with the rectifier
	ShuntC     float64 // farads, across the antenna port
	InductorQ  float64 // quality factor of the inductor (≈100 at 2.45 GHz)
	CapacitorQ float64 // quality factor of the capacitor (0 = lossless)
}

// InputImpedance returns the impedance seen looking into the network from
// the antenna side when the rectifier presents load zLoad at freqHz:
// Zc ∥ (Zl + Zload).
func (n LSection) InputImpedance(zLoad Impedance, freqHz float64) Impedance {
	zc := CapacitorImpedance(n.ShuntC, freqHz, n.CapacitorQ)
	series := InductorImpedance(n.SeriesL, freqHz, n.InductorQ) + zLoad
	return Parallel(zc, series)
}

// ReturnLossDB returns the network's return loss against Z0 for the given
// rectifier load at freqHz.
func (n LSection) ReturnLossDB(zLoad Impedance, freqHz float64) float64 {
	return ReturnLossDB(n.InputImpedance(zLoad, freqHz), Z0)
}

// PowerTransferFraction returns the fraction of antenna-incident power that
// reaches the rectifier load: the mismatch-accepted fraction times the
// dissipative efficiency of the series branch (power divides between the
// inductor ESR and the load in proportion to their resistances; the shunt
// capacitor is nearly lossless).
func (n LSection) PowerTransferFraction(zLoad Impedance, freqHz float64) float64 {
	zin := n.InputImpedance(zLoad, freqHz)
	accepted := MismatchLossFraction(zin, Z0)
	zl := InductorImpedance(n.SeriesL, freqHz, n.InductorQ)
	rl := real(zl)
	rs := real(zLoad)
	if rl+rs <= 0 {
		return 0
	}
	eff := rs / (rl + rs)
	if accepted < 0 {
		accepted = 0
	}
	return accepted * eff
}

// HighPassLSection is the paper's single-stage LC matching network in its
// high-pass orientation (Fig. 4): a series capacitor CT from the antenna
// into the rectifier node, with a shunt inductor LT from that node to
// ground. The shunt inductor both resonates out the rectifier's junction
// and pad capacitance and provides the doubler's DC return path; the
// series capacitor completes the transformation of the rectifier's
// kilohm-level input resistance down to 50 Ω. The paper's prototypes use a
// 6.8 nH Coilcraft 0402HP inductor (Q ≈ 100 at 2.45 GHz).
type HighPassLSection struct {
	SeriesC    float64 // farads, antenna side
	ShuntL     float64 // henries, across the rectifier input
	InductorQ  float64 // inductor quality factor
	CapacitorQ float64 // capacitor quality factor (0 = lossless)
}

// InputImpedance implements MatchingNetwork: Zc + (Zl ∥ Zload).
func (n HighPassLSection) InputImpedance(zLoad Impedance, freqHz float64) Impedance {
	zl := InductorImpedance(n.ShuntL, freqHz, n.InductorQ)
	zc := CapacitorImpedance(n.SeriesC, freqHz, n.CapacitorQ)
	return zc + Parallel(zl, zLoad)
}

// ReturnLossDB implements MatchingNetwork.
func (n HighPassLSection) ReturnLossDB(zLoad Impedance, freqHz float64) float64 {
	return ReturnLossDB(n.InputImpedance(zLoad, freqHz), Z0)
}

// PowerTransferFraction implements MatchingNetwork. Power accepted past
// the mismatch divides between the shunt inductor's ESR and the rectifier
// in proportion to their conductances. The shunt-inductor impedance is
// computed once and shared with the input-impedance expression (it is
// the same value InputImpedance derives; this sits on the operating-
// point hot path).
func (n HighPassLSection) PowerTransferFraction(zLoad Impedance, freqHz float64) float64 {
	zl := InductorImpedance(n.ShuntL, freqHz, n.InductorQ)
	zc := CapacitorImpedance(n.SeriesC, freqHz, n.CapacitorQ)
	zin := zc + Parallel(zl, zLoad)
	accepted := MismatchLossFraction(zin, Z0)
	if accepted < 0 {
		accepted = 0
	}
	gl := real(1 / zl)
	gload := real(1 / zLoad)
	if gl+gload <= 0 {
		return 0
	}
	return accepted * gload / (gl + gload)
}
