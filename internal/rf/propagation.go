package rf

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// PathLossModel computes propagation loss in dB at a given distance and
// carrier frequency.
type PathLossModel interface {
	// LossDB returns the (positive) path loss in dB over distanceM metres
	// at freqHz.
	LossDB(distanceM, freqHz float64) float64
}

// FreeSpace is the Friis free-space path-loss model,
// PL = 20·log10(4πd/λ). The paper's measured operating ranges (20 ft at a
// −17.8 dBm sensitivity from a 30 dBm + 6 dBi router into a 2 dBi antenna)
// are consistent with free space, which is why it is the default model for
// the line-of-sight benchmark experiments.
type FreeSpace struct{}

// LossDB implements PathLossModel. Distances below 10 cm are clamped to
// avoid the near-field singularity; the paper's closest scenario (the USB
// charger at 5–7 cm) is handled by its experiment with this clamp noted.
func (FreeSpace) LossDB(distanceM, freqHz float64) float64 {
	const minD = 0.05
	if distanceM < minD {
		distanceM = minD
	}
	lambda := units.Wavelength(freqHz)
	return 20 * math.Log10(4*math.Pi*distanceM/lambda)
}

// LogDistance is the indoor log-distance model: free-space loss up to a
// breakpoint distance, then a steeper exponent. Home deployments (§6) use
// this to model cluttered apartments.
type LogDistance struct {
	BreakpointM float64 // metres of pure free-space propagation
	Exponent    float64 // path-loss exponent beyond the breakpoint (e.g. 3.0)
	ShadowDB    float64 // constant shadowing margin added beyond breakpoint
}

// LossDB implements PathLossModel.
func (m LogDistance) LossDB(distanceM, freqHz float64) float64 {
	fs := FreeSpace{}
	bp := m.BreakpointM
	if bp <= 0 {
		bp = 1
	}
	if distanceM <= bp {
		return fs.LossDB(distanceM, freqHz)
	}
	base := fs.LossDB(bp, freqHz)
	return base + 10*m.Exponent*math.Log10(distanceM/bp) + m.ShadowDB
}

// WallMaterial identifies the four through-the-wall scenarios of Fig. 13
// plus free space.
type WallMaterial int

// Wall materials evaluated in the paper's Fig. 13, ordered by increasing
// attenuation.
const (
	NoWall WallMaterial = iota
	GlassDoublePane
	WoodenDoor
	HollowWall
	DoubleSheetrock
)

// String returns the paper's label for the material.
func (w WallMaterial) String() string {
	switch w {
	case NoWall:
		return "Free Space"
	case GlassDoublePane:
		return `1" Glass`
	case WoodenDoor:
		return `1.8" Wood`
	case HollowWall:
		return `5.4" Wall`
	case DoubleSheetrock:
		return `7.9" Wall`
	default:
		return fmt.Sprintf("WallMaterial(%d)", int(w))
	}
}

// AttenuationDB returns the one-way 2.4 GHz penetration loss of the
// material. Values are calibrated so the battery-free camera's inter-frame
// times at 5 ft (Fig. 13) reproduce the paper's ordering: free space <
// glass < wood < hollow wall < double sheet-rock.
func (w WallMaterial) AttenuationDB() float64 {
	switch w {
	case GlassDoublePane:
		return 1.5
	case WoodenDoor:
		return 2.8
	case HollowWall:
		return 4.0
	case DoubleSheetrock:
		return 6.5
	default:
		return 0
	}
}

// Antenna models an antenna by its gain. The paper's router uses 6 dBi
// antennas; harvesting prototypes use a 2 dBi Pulse W1010; the
// organization's Asus router uses 4.04 dBi.
type Antenna struct {
	GainDBi float64
}

// Link describes a transmitter→receiver RF path.
type Link struct {
	TxPowerDBm float64
	TxAntenna  Antenna
	RxAntenna  Antenna
	DistanceM  float64
	Wall       WallMaterial
	Model      PathLossModel
}

// ReceivedPowerDBm returns the power at the receiver for a carrier at
// freqHz: Pt + Gt + Gr − PL(d) − wall attenuation.
func (l Link) ReceivedPowerDBm(freqHz float64) float64 {
	model := l.Model
	if model == nil {
		model = FreeSpace{}
	}
	return l.TxPowerDBm + l.TxAntenna.GainDBi + l.RxAntenna.GainDBi -
		model.LossDB(l.DistanceM, freqHz) - l.Wall.AttenuationDB()
}

// ReceivedPowerW returns the received power in watts.
func (l Link) ReceivedPowerW(freqHz float64) float64 {
	return units.DBmToWatts(l.ReceivedPowerDBm(freqHz))
}
