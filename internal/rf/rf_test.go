package rf

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"repro/internal/units"
	"repro/internal/xrand"
)

func TestInductorImpedanceLossless(t *testing.T) {
	// 6.8 nH at 2.45 GHz: X = 2π·f·L ≈ 104.7 Ω.
	z := InductorImpedance(6.8e-9, 2.45e9, 0)
	if real(z) != 0 {
		t.Errorf("lossless inductor has resistance %v", real(z))
	}
	if math.Abs(imag(z)-104.68) > 0.1 {
		t.Errorf("inductor reactance = %v, want about 104.7", imag(z))
	}
}

func TestInductorQAddsESR(t *testing.T) {
	z := InductorImpedance(6.8e-9, 2.45e9, 100)
	wantR := imag(z) / 100
	if math.Abs(real(z)-wantR) > 1e-9 {
		t.Errorf("ESR = %v, want X/Q = %v", real(z), wantR)
	}
}

func TestCapacitorImpedance(t *testing.T) {
	// 1.5 pF at 2.45 GHz: X = 1/(2π·f·C) ≈ 43.3 Ω (capacitive, negative).
	z := CapacitorImpedance(1.5e-12, 2.45e9, 0)
	if math.Abs(imag(z)+43.31) > 0.1 {
		t.Errorf("capacitor reactance = %v, want about -43.3", imag(z))
	}
}

func TestParallelEqualImpedances(t *testing.T) {
	z := Parallel(complex(100, 0), complex(100, 0))
	if cmplx.Abs(z-complex(50, 0)) > 1e-9 {
		t.Errorf("parallel of equal 100s = %v, want 50", z)
	}
}

func TestReflectionMatchedLoadIsZero(t *testing.T) {
	g := ReflectionCoefficient(complex(50, 0), 50)
	if cmplx.Abs(g) > 1e-12 {
		t.Errorf("matched load Γ = %v, want 0", g)
	}
}

func TestReflectionOpenAndShort(t *testing.T) {
	short := ReflectionCoefficient(complex(0, 0), 50)
	if cmplx.Abs(short+1) > 1e-12 {
		t.Errorf("short Γ = %v, want -1", short)
	}
	open := ReflectionCoefficient(complex(1e12, 0), 50)
	if cmplx.Abs(open-1) > 1e-6 {
		t.Errorf("open Γ = %v, want about +1", open)
	}
}

// Property: any passive load (non-negative resistance) has |Γ| <= 1, so
// return loss is <= 0 dB and the delivered-power fraction is in [0, 1].
func TestPassiveLoadGammaBounded(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		z := complex(r.Uniform(0, 5000), r.Uniform(-5000, 5000))
		g := cmplx.Abs(ReflectionCoefficient(z, 50))
		if g > 1+1e-9 {
			return false
		}
		frac := MismatchLossFraction(z, 50)
		return frac >= -1e-9 && frac <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestReturnLossMatchedIsVeryNegative(t *testing.T) {
	rl := ReturnLossDB(complex(50, 0), 50)
	if !math.IsInf(rl, -1) {
		t.Errorf("perfectly matched return loss = %v, want -Inf", rl)
	}
}

func TestLSectionMatchesCapacitiveRectifierLoad(t *testing.T) {
	// With the paper's battery-free values (6.8 nH series, 1.5 pF shunt)
	// the network transforms a capacitive doubler input near 21−j79 Ω to
	// 50 Ω at band centre. The match should be deep (< -15 dB) there and a
	// large improvement over connecting the rectifier directly.
	n := LSection{SeriesL: 6.8e-9, ShuntC: 1.5e-12, InductorQ: 100}
	load := complex(21.5, -79.4)
	rl := n.ReturnLossDB(load, 2.44e9)
	if rl > -15 {
		t.Errorf("return loss at band centre = %v dB, want < -15", rl)
	}
	rlRaw := ReturnLossDB(load, Z0)
	if rl >= rlRaw {
		t.Errorf("matching network did not improve return loss: %v vs raw %v", rl, rlRaw)
	}
}

func TestPowerTransferFractionBounds(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := LSection{
			SeriesL:   r.Uniform(1e-9, 20e-9),
			ShuntC:    r.Uniform(0.2e-12, 5e-12),
			InductorQ: 100,
		}
		load := complex(r.Uniform(1, 3000), r.Uniform(-2000, 2000))
		frac := n.PowerTransferFraction(load, r.Uniform(2.4e9, 2.5e9))
		return frac >= 0 && frac <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFreeSpaceKnownValue(t *testing.T) {
	// At 2.437 GHz and 3.048 m (10 feet): PL = 20log10(4πd/λ) ≈ 49.9 dB.
	pl := FreeSpace{}.LossDB(units.FeetToMeters(10), 2.437e9)
	if math.Abs(pl-49.87) > 0.1 {
		t.Errorf("free-space loss at 10 ft = %v, want about 49.9", pl)
	}
}

func TestFreeSpaceMonotoneInDistance(t *testing.T) {
	fs := FreeSpace{}
	prev := -math.MaxFloat64
	for d := 0.1; d < 100; d *= 1.3 {
		pl := fs.LossDB(d, 2.45e9)
		if pl < prev {
			t.Fatalf("path loss decreased with distance at %v m", d)
		}
		prev = pl
	}
}

func TestFreeSpaceNearFieldClamp(t *testing.T) {
	fs := FreeSpace{}
	if fs.LossDB(0.001, 2.45e9) != fs.LossDB(0.05, 2.45e9) {
		t.Error("near-field distances should clamp to 5 cm")
	}
}

func TestLogDistanceMatchesFreeSpaceInsideBreakpoint(t *testing.T) {
	ld := LogDistance{BreakpointM: 5, Exponent: 3}
	fs := FreeSpace{}
	if got, want := ld.LossDB(3, 2.45e9), fs.LossDB(3, 2.45e9); got != want {
		t.Errorf("inside breakpoint loss = %v, want free-space %v", got, want)
	}
}

func TestLogDistanceSteeperBeyondBreakpoint(t *testing.T) {
	ld := LogDistance{BreakpointM: 5, Exponent: 3}
	fs := FreeSpace{}
	if ld.LossDB(20, 2.45e9) <= fs.LossDB(20, 2.45e9) {
		t.Error("log-distance should exceed free space beyond breakpoint")
	}
	// Continuity at the breakpoint.
	eps := 1e-6
	below := ld.LossDB(5-eps, 2.45e9)
	above := ld.LossDB(5+eps, 2.45e9)
	if math.Abs(above-below) > 0.01 {
		t.Errorf("discontinuity at breakpoint: %v vs %v", below, above)
	}
}

func TestWallOrdering(t *testing.T) {
	walls := []WallMaterial{NoWall, GlassDoublePane, WoodenDoor, HollowWall, DoubleSheetrock}
	prev := -1.0
	for _, w := range walls {
		a := w.AttenuationDB()
		if a <= prev {
			t.Errorf("wall %v attenuation %v not greater than previous %v", w, a, prev)
		}
		prev = a
	}
}

func TestWallStrings(t *testing.T) {
	if NoWall.String() != "Free Space" {
		t.Errorf("NoWall label = %q", NoWall.String())
	}
	if DoubleSheetrock.String() != `7.9" Wall` {
		t.Errorf("sheetrock label = %q", DoubleSheetrock.String())
	}
}

func TestLinkBudgetMatchesPaperSensitivityRange(t *testing.T) {
	// The PoWiFi router (30 dBm, 6 dBi) into the 2 dBi harvester antenna at
	// 20 feet should deliver roughly the battery-free harvester
	// sensitivity of -17.8 dBm (§4.2, Fig. 11).
	link := Link{
		TxPowerDBm: 30,
		TxAntenna:  Antenna{GainDBi: 6},
		RxAntenna:  Antenna{GainDBi: 2},
		DistanceM:  units.FeetToMeters(20),
	}
	got := link.ReceivedPowerDBm(2.437e9)
	if math.Abs(got-(-17.9)) > 0.5 {
		t.Errorf("received power at 20 ft = %v dBm, want about -17.9", got)
	}
}

func TestLinkWallReducesPower(t *testing.T) {
	base := Link{TxPowerDBm: 30, TxAntenna: Antenna{6}, RxAntenna: Antenna{2}, DistanceM: 1.5}
	walled := base
	walled.Wall = DoubleSheetrock
	diff := base.ReceivedPowerDBm(2.437e9) - walled.ReceivedPowerDBm(2.437e9)
	if math.Abs(diff-DoubleSheetrock.AttenuationDB()) > 1e-9 {
		t.Errorf("wall reduced power by %v, want %v", diff, DoubleSheetrock.AttenuationDB())
	}
}

func TestLinkWattsConsistent(t *testing.T) {
	l := Link{TxPowerDBm: 0, DistanceM: 1}
	dbm := l.ReceivedPowerDBm(2.45e9)
	w := l.ReceivedPowerW(2.45e9)
	if math.Abs(units.WattsToDBm(w)-dbm) > 1e-9 {
		t.Errorf("dBm/W mismatch: %v vs %v", dbm, units.WattsToDBm(w))
	}
}

func TestHighPassLSectionMatchesKilohmLoad(t *testing.T) {
	// The paper-architecture network (series C + the 6.8 nH shunt
	// inductor) matches the rectifier's kilohm-level parallel input
	// resistance down to 50 Ω somewhere in the 2.4 GHz band.
	n := HighPassLSection{SeriesC: 0.29e-12, ShuntL: 6.8e-9, InductorQ: 100}
	// A 1.5 kΩ ∥ 0.34 pF rectifier input in series form at 2.44 GHz.
	load := seriesEquivalent(1500, 0.34e-12, 2.44e9)
	best := 0.0
	for f := 2.40e9; f <= 2.48e9; f += 2e6 {
		if rl := n.ReturnLossDB(load, f); rl < best {
			best = rl
		}
	}
	if best > -12 {
		t.Errorf("best return loss = %.2f dB, want a real match (< -12)", best)
	}
}

// seriesEquivalent converts a parallel RC to its series impedance at f.
func seriesEquivalent(rp, c, f float64) Impedance {
	xp := 1 / (2 * math.Pi * f * c)
	q := rp / xp
	return complex(rp/(1+q*q), -xp*q*q/(1+q*q))
}

func TestHighPassPowerTransferBounds(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := HighPassLSection{
			SeriesC:   r.Uniform(0.1e-12, 2e-12),
			ShuntL:    r.Uniform(1e-9, 20e-9),
			InductorQ: 100,
		}
		load := complex(r.Uniform(1, 5000), r.Uniform(-3000, 1000))
		frac := n.PowerTransferFraction(load, r.Uniform(2.4e9, 2.5e9))
		return frac >= 0 && frac <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHighPassInductorESRConsumesPower(t *testing.T) {
	// A lossy shunt inductor must deliver strictly less power to the load
	// than a lossless one.
	lossless := HighPassLSection{SeriesC: 0.29e-12, ShuntL: 6.8e-9}
	lossy := HighPassLSection{SeriesC: 0.29e-12, ShuntL: 6.8e-9, InductorQ: 20}
	load := seriesEquivalent(1500, 0.34e-12, 2.44e9)
	f := 2.44e9
	if lossy.PowerTransferFraction(load, f) >= lossless.PowerTransferFraction(load, f) {
		t.Error("inductor ESR should reduce delivered power")
	}
}

func TestParallelWithZeroSum(t *testing.T) {
	// Antiresonance: equal and opposite reactances in parallel.
	z := Parallel(complex(0, 100), complex(0, -100))
	if !math.IsInf(real(z), 1) {
		t.Errorf("parallel antiresonance = %v, want infinite", z)
	}
}

func TestMatchingNetworkInterfaces(t *testing.T) {
	// Both section types satisfy MatchingNetwork.
	var nets []MatchingNetwork = []MatchingNetwork{
		LSection{SeriesL: 6.8e-9, ShuntC: 1.5e-12, InductorQ: 100},
		HighPassLSection{SeriesC: 0.3e-12, ShuntL: 6.8e-9, InductorQ: 100},
	}
	load := complex(100, -80)
	for _, n := range nets {
		if z := n.InputImpedance(load, 2.44e9); z == 0 {
			t.Error("zero input impedance")
		}
		if rl := n.ReturnLossDB(load, 2.44e9); rl > 0 {
			t.Errorf("positive return loss %v for a passive network", rl)
		}
	}
}

func TestWallStringUnknown(t *testing.T) {
	if s := WallMaterial(99).String(); s != "WallMaterial(99)" {
		t.Errorf("unknown wall label = %q", s)
	}
	if GlassDoublePane.String() != `1" Glass` || WoodenDoor.String() != `1.8" Wood` || HollowWall.String() != `5.4" Wall` {
		t.Error("wall labels drifted from the paper's Fig. 13 axis")
	}
}
