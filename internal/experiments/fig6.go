package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/monitor"
	"repro/internal/netstack"
	"repro/internal/phy"
	"repro/internal/router"
	"repro/internal/stats"
	"repro/internal/testbed"
	"repro/internal/traffic"
	"repro/internal/xrand"
)

// benchSchemes is the comparison set of §4.1.
var benchSchemes = []router.Scheme{router.Baseline, router.PoWiFi, router.NoQueue, router.BlindUDP}

// officeLoad is the background airtime fraction per channel on "a busy
// weekday in our organization".
const officeLoad = 0.35

// monitoredBench couples a bench with per-channel router-occupancy
// monitors (the Fig. 7 measurement).
type monitoredBench struct {
	*testbed.Bench
	Mons map[phy.Channel]*monitor.Monitor
}

func newMonitoredBench(cfg testbed.BenchConfig) *monitoredBench {
	b := testbed.NewBench(cfg)
	mons := make(map[phy.Channel]*monitor.Monitor, 3)
	for _, chNum := range phy.PoWiFiChannels {
		radio := b.Router.Radio(chNum)
		mons[chNum] = monitor.New(b.Channels[chNum], 500*time.Millisecond, radio.MAC.StationID())
	}
	return &monitoredBench{Bench: b, Mons: mons}
}

// occupancySummary captures the Fig. 7 statistics of one run.
type occupancySummary struct {
	PerChannel map[phy.Channel]*stats.CDF
	Cumulative *stats.CDF
	MeanCumPct float64
}

func (m *monitoredBench) summarize() occupancySummary {
	s := occupancySummary{PerChannel: make(map[phy.Channel]*stats.CDF, 3)}
	for chNum, mon := range m.Mons {
		s.PerChannel[chNum] = mon.OccupancyCDF()
	}
	cum := monitor.CumulativeBins(m.Mons[phy.Channel1], m.Mons[phy.Channel6], m.Mons[phy.Channel11])
	s.Cumulative = stats.NewCDF(cum)
	s.MeanCumPct = stats.Mean(cum)
	return s
}

// Fig6aResult is the UDP throughput comparison (Fig. 6a) plus the
// occupancy CDFs recorded during the PoWiFi runs (Fig. 7a).
type Fig6aResult struct {
	RatesMbps []float64
	// AchievedMbps[scheme][rate index].
	AchievedMbps map[router.Scheme][]float64
	PoWiFiOcc    occupancySummary
}

// RunFig6a sweeps iperf UDP target rates for each scheme.
func RunFig6a(rates []float64, perRun time.Duration, seed uint64) *Fig6aResult {
	res := &Fig6aResult{RatesMbps: rates, AchievedMbps: make(map[router.Scheme][]float64)}
	for _, scheme := range benchSchemes {
		for ri, rate := range rates {
			mb := newMonitoredBench(testbed.BenchConfig{
				Scheme: scheme, BackgroundLoad: officeLoad, Seed: seed + uint64(ri),
			})
			sink := &netstack.UDPSink{Sched: mb.Sched}
			src := &netstack.UDPSource{
				Sched: mb.Sched, Path: mb.DownlinkPath(), Sink: sink,
				PayloadBytes: 1500, RateMbps: rate,
			}
			mb.Start()
			src.Start()
			mb.Sched.RunUntil(perRun)
			res.AchievedMbps[scheme] = append(res.AchievedMbps[scheme],
				sink.ThroughputMbps(0, perRun))
			if scheme == router.PoWiFi && ri == len(rates)-1 {
				res.PoWiFiOcc = mb.summarize()
			}
		}
	}
	return res
}

// WriteTo prints the Fig. 6a table.
func (r *Fig6aResult) WriteTable(w io.Writer) {
	fmt.Fprint(w, "udp_rate_mbps")
	for _, s := range benchSchemes {
		fmt.Fprintf(w, "  %9s", s)
	}
	fmt.Fprintln(w)
	for ri, rate := range r.RatesMbps {
		fmt.Fprintf(w, "%13.0f", rate)
		for _, s := range benchSchemes {
			fmt.Fprintf(w, "  %9.1f", r.AchievedMbps[s][ri])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "PoWiFi mean cumulative occupancy: %.1f%% (paper: 97.6%%)\n", r.PoWiFiOcc.MeanCumPct)
}

// Fig6bResult is the TCP throughput CDF comparison (Fig. 6b) plus the
// PoWiFi occupancy summary (Fig. 7b).
type Fig6bResult struct {
	// Samples holds 500 ms-interval throughput samples per scheme.
	Samples map[router.Scheme][]float64
	// CDFs are built over those samples.
	CDFs      map[router.Scheme]*stats.CDF
	PoWiFiOcc occupancySummary
}

// RunFig6b measures interval TCP throughput across runs for each scheme.
func RunFig6b(runs int, perRun time.Duration, seed uint64) *Fig6bResult {
	res := &Fig6bResult{
		Samples: make(map[router.Scheme][]float64),
		CDFs:    make(map[router.Scheme]*stats.CDF),
	}
	const interval = 500 * time.Millisecond
	for _, scheme := range benchSchemes {
		for run := 0; run < runs; run++ {
			mb := newMonitoredBench(testbed.BenchConfig{
				Scheme: scheme, BackgroundLoad: officeLoad, Seed: seed + uint64(run)*17,
			})
			snd := &netstack.TCPSender{Sched: mb.Sched}
			rcv := &netstack.TCPReceiver{Sched: mb.Sched}
			netstack.Connect(snd, rcv, mb.DownlinkPath(), mb.UplinkPath())
			// Sample acked bytes every 500 ms, like iperf's interval report.
			lastBytes := 0
			var cancel func()
			cancel = mb.Sched.Ticker(interval, func() {
				delta := snd.AckedBytes() - lastBytes
				lastBytes = snd.AckedBytes()
				res.Samples[scheme] = append(res.Samples[scheme],
					float64(delta)*8/interval.Seconds()/1e6)
			})
			mb.Start()
			snd.Start()
			mb.Sched.RunUntil(perRun)
			cancel()
			if scheme == router.PoWiFi && run == runs-1 {
				res.PoWiFiOcc = mb.summarize()
			}
		}
	}
	for _, scheme := range benchSchemes {
		res.CDFs[scheme] = stats.NewCDF(res.Samples[scheme])
	}
	return res
}

// WriteTo prints quantiles of each scheme's throughput CDF.
func (r *Fig6bResult) WriteTable(w io.Writer) {
	fmt.Fprintln(w, "scheme      p10    p50    p90  (Mbps, 500 ms intervals)")
	for _, s := range benchSchemes {
		c := r.CDFs[s]
		fmt.Fprintf(w, "%-9s %5.1f  %5.1f  %5.1f\n", s,
			c.Quantile(0.1), c.Quantile(0.5), c.Quantile(0.9))
	}
	fmt.Fprintf(w, "PoWiFi mean cumulative occupancy: %.1f%% (paper: 100.9%%)\n", r.PoWiFiOcc.MeanCumPct)
}

// Fig6cResult is the page-load-time comparison (Fig. 6c) plus the PoWiFi
// occupancy summary (Fig. 7c).
type Fig6cResult struct {
	Sites []string
	// MeanPLT[scheme][site index] in seconds.
	MeanPLT   map[router.Scheme][]float64
	PoWiFiOcc occupancySummary
}

// RunFig6c loads each site loadsPerSite times under each scheme.
func RunFig6c(loadsPerSite int, seed uint64) *Fig6cResult {
	sites := traffic.TopSites()
	res := &Fig6cResult{MeanPLT: make(map[router.Scheme][]float64)}
	for _, s := range sites {
		res.Sites = append(res.Sites, s.Name)
	}
	const timeout = 90 * time.Second
	for _, scheme := range benchSchemes {
		for si, site := range sites {
			total := 0.0
			for load := 0; load < loadsPerSite; load++ {
				mb := newMonitoredBench(testbed.BenchConfig{
					Scheme: scheme, BackgroundLoad: officeLoad,
					Seed: seed + uint64(si)*101 + uint64(load)*7,
				})
				var plt time.Duration
				loader := traffic.NewPageLoader(mb.Sched, site,
					mb.DownlinkPath(), mb.UplinkPath(),
					xrand.NewFromLabel(seed, site.Name))
				done := false
				loader.OnComplete = func(d time.Duration) {
					plt = d
					done = true
					mb.Sched.Stop()
				}
				mb.Start()
				loader.Start()
				mb.Sched.RunUntil(timeout)
				if !done {
					plt = timeout
				}
				total += plt.Seconds()
				if scheme == router.PoWiFi && si == 0 && load == 0 {
					res.PoWiFiOcc = mb.summarize()
				}
			}
			res.MeanPLT[scheme] = append(res.MeanPLT[scheme], total/float64(loadsPerSite))
		}
	}
	return res
}

// MeanDelayVsBaseline returns the scheme's PLT penalty over Baseline
// averaged across sites, in seconds (the paper reports 101 ms for PoWiFi
// and 294 ms for NoQueue).
func (r *Fig6cResult) MeanDelayVsBaseline(s router.Scheme) float64 {
	base := r.MeanPLT[router.Baseline]
	other := r.MeanPLT[s]
	if len(base) == 0 || len(base) != len(other) {
		return 0
	}
	sum := 0.0
	for i := range base {
		sum += other[i] - base[i]
	}
	return sum / float64(len(base))
}

// WriteTo prints the per-site PLT table.
func (r *Fig6cResult) WriteTable(w io.Writer) {
	fmt.Fprint(w, "site            ")
	for _, s := range benchSchemes {
		fmt.Fprintf(w, "  %9s", s)
	}
	fmt.Fprintln(w, "  (seconds)")
	for si, site := range r.Sites {
		fmt.Fprintf(w, "%-16s", site)
		for _, s := range benchSchemes {
			fmt.Fprintf(w, "  %9.2f", r.MeanPLT[s][si])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "mean delay vs baseline: PoWiFi %+.0f ms (paper +101), NoQueue %+.0f ms (paper +294)\n",
		r.MeanDelayVsBaseline(router.PoWiFi)*1000, r.MeanDelayVsBaseline(router.NoQueue)*1000)
}

// writeOccupancy prints a Fig. 7-style occupancy summary.
func writeOccupancy(w io.Writer, label string, s occupancySummary) {
	fmt.Fprintf(w, "%s:\n", label)
	for _, chNum := range phy.PoWiFiChannels {
		c := s.PerChannel[chNum]
		if c == nil || c.N() == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-5s p10=%5.1f%% p50=%5.1f%% p90=%5.1f%%\n",
			chNum, c.Quantile(0.1), c.Quantile(0.5), c.Quantile(0.9))
	}
	if s.Cumulative != nil && s.Cumulative.N() > 0 {
		fmt.Fprintf(w, "  cumulative mean=%.1f%% p50=%.1f%%\n",
			s.MeanCumPct, s.Cumulative.Quantile(0.5))
	}
}

func init() {
	register("fig6a", "effect on UDP throughput (4 schemes)",
		func(w io.Writer, quick bool) {
			header(w, "fig6a", "Effect on UDP traffic")
			rates := []float64{1, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50}
			per := 3 * time.Second
			if quick {
				rates = []float64{5, 15, 30, 50}
				per = 1500 * time.Millisecond
			}
			RunFig6a(rates, per, 11).WriteTable(w)
		})
	register("fig6b", "effect on TCP throughput (4 schemes)",
		func(w io.Writer, quick bool) {
			header(w, "fig6b", "Effect on TCP traffic")
			runs, per := 10, 4*time.Second
			if quick {
				runs, per = 3, 2*time.Second
			}
			RunFig6b(runs, per, 13).WriteTable(w)
		})
	register("fig6c", "effect on page load time of top-10 US sites",
		func(w io.Writer, quick bool) {
			header(w, "fig6c", "Effect on page load time")
			loads := 5
			if quick {
				loads = 1
			}
			RunFig6c(loads, 17).WriteTable(w)
		})
	register("fig7", "channel occupancy CDFs during the UDP/TCP/PLT runs",
		func(w io.Writer, quick bool) {
			header(w, "fig7", "PoWiFi channel occupancies")
			per := 4 * time.Second
			if quick {
				per = 2 * time.Second
			}
			res := RunFig7Occupancies(per, 11)
			writeOccupancy(w, "UDP experiments (paper cumulative mean 97.6%)", res.UDP)
			writeOccupancy(w, "TCP experiments (paper cumulative mean 100.9%)", res.TCP)
			writeOccupancy(w, "PLT experiments (paper cumulative mean 87.6%)", res.PLT)
		})
}

// workload kinds for the Fig. 7 occupancy measurement.
const (
	workloadUDP = iota
	workloadTCP
	workloadPLT
)

// Fig7Result groups the occupancy summaries of the three workload types.
type Fig7Result struct {
	UDP, TCP, PLT occupancySummary
}

// RunFig7Occupancies measures PoWiFi channel occupancy under the UDP, TCP
// and PLT workloads (Fig. 7a-c).
func RunFig7Occupancies(perRun time.Duration, seed uint64) *Fig7Result {
	return &Fig7Result{
		UDP: runPoWiFiOccupancy(perRun, seed, workloadUDP),
		TCP: runPoWiFiOccupancy(perRun, seed+2, workloadTCP),
		PLT: runPoWiFiOccupancy(perRun, seed+4, workloadPLT),
	}
}

// runPoWiFiOccupancy runs a PoWiFi bench under one client workload and
// returns the occupancy summary (the Fig. 7 measurement without the
// scheme-comparison overhead of the Fig. 6 runners).
func runPoWiFiOccupancy(perRun time.Duration, seed uint64, workload int) occupancySummary {
	mb := newMonitoredBench(testbed.BenchConfig{
		Scheme: router.PoWiFi, BackgroundLoad: officeLoad, Seed: seed,
	})
	switch workload {
	case workloadUDP:
		sink := &netstack.UDPSink{Sched: mb.Sched}
		src := &netstack.UDPSource{
			Sched: mb.Sched, Path: mb.DownlinkPath(), Sink: sink,
			PayloadBytes: 1500, RateMbps: 20,
		}
		src.Start()
	case workloadTCP:
		snd := &netstack.TCPSender{Sched: mb.Sched}
		rcv := &netstack.TCPReceiver{Sched: mb.Sched}
		netstack.Connect(snd, rcv, mb.DownlinkPath(), mb.UplinkPath())
		snd.Start()
	case workloadPLT:
		site := traffic.TopSites()[0]
		loader := traffic.NewPageLoader(mb.Sched, site,
			mb.DownlinkPath(), mb.UplinkPath(), xrand.NewFromLabel(seed, "plt"))
		loader.Start()
	}
	mb.Start()
	mb.Sched.RunUntil(perRun)
	return mb.summarize()
}
