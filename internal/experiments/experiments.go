// Package experiments contains one runner per table and figure of the
// paper's evaluation (§2, §4, §5, §6, §8). Each runner builds its workload
// from the simulator substrates, returns a structured result, and can
// print the same rows/series the paper reports. EXPERIMENTS.md records
// paper-versus-measured values for every entry.
package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Runner executes one experiment. quick selects a reduced configuration
// (fewer repetitions / shorter runs) suitable for tests and default
// benchmarks; the full configuration reproduces the paper's scale.
type Runner func(w io.Writer, quick bool)

// registry maps experiment ids (fig1, fig5, ..., table1) to runners.
var registry = map[string]Runner{}

// descriptions holds one-line summaries for the CLI.
var descriptions = map[string]string{}

// register adds an experiment to the registry (called from init funcs).
func register(id, desc string, r Runner) {
	registry[id] = r
	descriptions[id] = desc
}

// IDs returns the registered experiment ids in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Describe returns the one-line description of an experiment.
func Describe(id string) string { return descriptions[id] }

// Run executes the experiment with the given id, writing its table to w.
// It returns false for unknown ids.
func Run(id string, w io.Writer, quick bool) bool {
	r, exists := registry[id]
	if !exists {
		return false
	}
	r(w, quick)
	return true
}

// header prints a standard experiment banner.
func header(w io.Writer, id, title string) {
	fmt.Fprintf(w, "== %s: %s ==\n", id, title)
}
