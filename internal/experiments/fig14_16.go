package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/harvester"
	"repro/internal/stats"
	"repro/internal/units"
)

// Fig14Result is the six-home deployment occupancy study (Fig. 14 and the
// §6 narrative).
type Fig14Result struct {
	Results []*deploy.Result
}

// RunFig14 runs all six homes with the given logging options.
func RunFig14(opts deploy.Options) *Fig14Result {
	res := &Fig14Result{}
	for _, home := range deploy.PaperHomes() {
		res.Results = append(res.Results, deploy.Run(home, opts))
	}
	return res
}

// WriteTo prints per-home occupancy summaries.
func (r *Fig14Result) WriteTable(w io.Writer) {
	fmt.Fprintln(w, "home  mean_cumulative  min_bin  max_bin  (percent; paper range of means: 78-127%)")
	for _, res := range r.Results {
		fmt.Fprintf(w, "%4d  %14.1f%%  %6.1f%%  %6.1f%%\n",
			res.Home.ID, res.MeanCumulative(),
			stats.Min(res.Cumulative), stats.Max(res.Cumulative))
	}
}

// Fig15Result is the home-deployment sensor study (Fig. 15): update-rate
// CDFs of the battery-free temperature sensor ten feet from the router in
// each home.
type Fig15Result struct {
	Homes []int
	CDFs  []*stats.CDF
}

// RunFig15 derives sensor-rate CDFs from the deployment runs.
func RunFig15(f14 *Fig14Result) *Fig15Result {
	res := &Fig15Result{}
	for _, r := range f14.Results {
		res.Homes = append(res.Homes, r.Home.ID)
		res.CDFs = append(res.CDFs, stats.NewCDF(r.SensorRates))
	}
	return res
}

// WriteTo prints quantiles per home.
func (r *Fig15Result) WriteTable(w io.Writer) {
	fmt.Fprintln(w, "home  p10    p50    p90   (reads/s at 10 ft)")
	for i, home := range r.Homes {
		c := r.CDFs[i]
		fmt.Fprintf(w, "%4d  %5.2f  %5.2f  %5.2f\n", home,
			c.Quantile(0.1), c.Quantile(0.5), c.Quantile(0.9))
	}
}

// Table1Result is the deployment summary (Table 1).
type Table1Result struct {
	Homes []deploy.HomeConfig
}

// RunTable1 returns the deployment roster.
func RunTable1() *Table1Result {
	return &Table1Result{Homes: deploy.PaperHomes()}
}

// WriteTo prints Table 1.
func (r *Table1Result) WriteTable(w io.Writer) {
	fmt.Fprint(w, "Home #         ")
	for _, h := range r.Homes {
		fmt.Fprintf(w, "%4d", h.ID)
	}
	fmt.Fprint(w, "\nUsers          ")
	for _, h := range r.Homes {
		fmt.Fprintf(w, "%4d", h.Users)
	}
	fmt.Fprint(w, "\nDevices        ")
	for _, h := range r.Homes {
		fmt.Fprintf(w, "%4d", h.Devices)
	}
	fmt.Fprint(w, "\nNeighboring APs")
	for _, h := range r.Homes {
		fmt.Fprintf(w, "%4d", h.NeighborAPs)
	}
	fmt.Fprintln(w)
}

// Fig16Result is the Wi-Fi-power-via-USB demonstration (§8a, Fig. 16):
// recharging a Jawbone UP24 activity tracker 5-7 cm from the router.
type Fig16Result struct {
	ChargeCurrentMA float64
	StartSoC        float64
	EndSoC          float64
	Duration        time.Duration
}

// RunFig16 simulates the USB charger demonstration. The charger's
// harvester is "optimized for higher input power" (§8a): at centimetre
// range the rectifier runs far past the small-signal regime, so the
// charger is modelled with a fixed high-power conversion efficiency from
// incident RF to battery charge.
func RunFig16(distanceCM float64, duration time.Duration) *Fig16Result {
	// Incident power at the charger from one 30 dBm + 6 dBi chain through
	// the 2 dBi antenna (near-field clamped free space).
	link := core.PoWiFiLink(distanceCM/30.48, 0.95)
	incident := link.TotalIncidentW()
	// High-power rectifier + charger chain efficiency (calibrated to the
	// paper's observed 2.3 mA average charge current).
	const chargerEff = 0.055
	chargeW := incident * chargerEff

	battery := harvester.NewJawboneUP24Battery()
	battery.SetSoC(0)
	res := &Fig16Result{
		StartSoC: battery.SoC(),
		Duration: duration,
	}
	res.ChargeCurrentMA = chargeW / battery.NominalV * 1000
	// Integrate the charge over the duration in minute steps.
	const step = 60.0
	for t := 0.0; t < duration.Seconds(); t += step {
		battery.Charge(chargeW * step)
		battery.SelfDischarge(step)
	}
	res.EndSoC = battery.SoC()
	_ = units.Microwatts // keep units linked for documentation consistency
	return res
}

// WriteTo prints the charging summary.
func (r *Fig16Result) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "average charge current: %.2f mA (paper: 2.3 mA)\n", r.ChargeCurrentMA)
	fmt.Fprintf(w, "state of charge: %.0f%% -> %.0f%% in %v (paper: 0%% -> 41%% in 2.5 h)\n",
		r.StartSoC*100, r.EndSoC*100, r.Duration)
}

func init() {
	register("fig14", "six-home deployment occupancy logs",
		func(w io.Writer, quick bool) {
			header(w, "fig14", "PoWiFi channel occupancies in home deployments")
			opts := deploy.DefaultOptions()
			if quick {
				opts.BinWidth = 20 * time.Minute
				opts.Window = 400 * time.Millisecond
			} else {
				opts.BinWidth = 5 * time.Minute
				opts.Window = 500 * time.Millisecond
			}
			RunFig14(opts).WriteTable(w)
		})
	register("fig15", "battery-free temperature sensor across homes",
		func(w io.Writer, quick bool) {
			header(w, "fig15", "Battery-free temperature sensor across homes")
			opts := deploy.DefaultOptions()
			if quick {
				opts.BinWidth = 20 * time.Minute
				opts.Window = 400 * time.Millisecond
			} else {
				opts.BinWidth = 5 * time.Minute
				opts.Window = 500 * time.Millisecond
			}
			RunFig15(RunFig14(opts)).WriteTable(w)
		})
	register("table1", "deployment summary",
		func(w io.Writer, quick bool) {
			header(w, "table1", "Summary of our home deployment")
			RunTable1().WriteTable(w)
		})
	register("fig16", "Wi-Fi power via USB (Jawbone UP24 recharge)",
		func(w io.Writer, quick bool) {
			header(w, "fig16", "Wi-Fi power via USB")
			RunFig16(6, 150*time.Minute).WriteTable(w)
		})
}
