package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/eventsim"
	"repro/internal/medium"
	"repro/internal/monitor"
	"repro/internal/phy"
	"repro/internal/router"
	"repro/internal/traffic"
	"repro/internal/units"
	"repro/internal/xrand"
)

// energyProbe integrates incident RF power at a point, implementing
// medium.PowerProbe. It is the instrument for the §8 extension studies.
type energyProbe struct {
	sched   *eventsim.Scheduler
	loc     medium.Location
	gainDBi float64

	currentW float64
	lastAt   time.Duration
	energyJ  float64
}

func (p *energyProbe) ProbeLocation() medium.Location { return p.loc }
func (p *energyProbe) ProbeGainDBi() float64          { return p.gainDBi }
func (p *energyProbe) ExtraLossDB() float64           { return 0 }

func (p *energyProbe) OnIncidentPower(w float64) {
	now := p.sched.Now()
	p.energyJ += p.currentW * (now - p.lastAt).Seconds()
	p.currentW = w
	p.lastAt = now
}

// averageW returns the mean incident power over [0, now].
func (p *energyProbe) averageW() float64 {
	p.OnIncidentPower(p.currentW) // flush the open interval
	total := p.sched.Now().Seconds()
	if total <= 0 {
		return 0
	}
	return p.energyJ / total
}

// MultiRouterResult is the §8(c) extension: what happens when several
// PoWiFi routers serve the same space. Under plain CSMA they
// time-multiplex the channel, capping the cumulative power traffic; with
// carrier sense disabled for power packets they transmit concurrently —
// collisions are harmless because nothing decodes power packets — and the
// delivered power scales with the router count.
type MultiRouterResult struct {
	// AvgIncidentUW is the mean incident power (µW) at a device 10 ft
	// from the routers, per configuration.
	SingleUW, CSMAUW, ConcurrentUW float64
}

// RunExtMultiRouter measures incident power at 10 ft on channel 6 for one
// router, two CSMA routers, and two concurrent (CS-disabled) routers.
func RunExtMultiRouter(perRun time.Duration, seed uint64) *MultiRouterResult {
	run := func(routers int, ignoreCS bool) float64 {
		sched := eventsim.New()
		ch := medium.NewChannel(phy.Channel6, sched)
		channels := map[phy.Channel]*medium.Channel{phy.Channel6: ch}
		probe := &energyProbe{
			sched:   sched,
			loc:     medium.Location{X: units.FeetToMeters(10)},
			gainDBi: 2,
		}
		ch.AddProbe(probe)
		for i := 0; i < routers; i++ {
			cfg := router.DefaultConfig()
			cfg.Channels = []phy.Channel{phy.Channel6}
			// Both routers sit within a metre of each other.
			cfg.Location = medium.Location{Y: float64(i) * 0.5}
			rt := router.New(cfg, sched, channels, 100+10*i, seed+uint64(i))
			rt.Radio(phy.Channel6).MAC.IgnoreCS = ignoreCS
			rt.Start()
		}
		sched.RunUntil(perRun)
		return units.Microwatts(probe.averageW())
	}
	return &MultiRouterResult{
		SingleUW:     run(1, false),
		CSMAUW:       run(2, false),
		ConcurrentUW: run(2, true),
	}
}

// WriteTable prints the comparison.
func (r *MultiRouterResult) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "one router:              %6.1f µW at 10 ft\n", r.SingleUW)
	fmt.Fprintf(w, "two routers, CSMA:       %6.1f µW (time-multiplexed: %+.0f%%)\n",
		r.CSMAUW, (r.CSMAUW/r.SingleUW-1)*100)
	fmt.Fprintf(w, "two routers, concurrent: %6.1f µW (§8c proposal:     %+.0f%%)\n",
		r.ConcurrentUW, (r.ConcurrentUW/r.SingleUW-1)*100)
}

// PDoSResult is the §8(d) extension: a power denial-of-service attack.
// A rogue device generates traffic purely to trip the PoWiFi router's
// carrier sense; the router politely defers, its occupancy collapses, and
// harvesting devices starve — without the attacker ever touching them.
type PDoSResult struct {
	// Cumulative occupancy (percent) and the 10 ft battery-free sensor's
	// update rate, without and with the attacker.
	CleanOccPct, AttackOccPct float64
	CleanRate, AttackRate     float64
	AttackerLoad              float64
}

// RunExtPDoS measures the router under a rogue carrier-sense attacker
// offering the given airtime fraction on every channel.
func RunExtPDoS(attackerLoad float64, perRun time.Duration, seed uint64) *PDoSResult {
	run := func(attack bool) (occPct float64, rate float64) {
		sched := eventsim.New()
		channels := make(map[phy.Channel]*medium.Channel, 3)
		for _, chNum := range phy.PoWiFiChannels {
			channels[chNum] = medium.NewChannel(chNum, sched)
		}
		rt := router.New(router.DefaultConfig(), sched, channels, 100, seed)
		monitors := make(map[phy.Channel]*monitor.Monitor, 3)
		for i, chNum := range phy.PoWiFiChannels {
			monitors[chNum] = monitor.New(channels[chNum], 500*time.Millisecond, 100+i)
		}
		if attack {
			for i, chNum := range phy.PoWiFiChannels {
				rogue := traffic.NewBackground(sched, channels[chNum], 666+i,
					medium.Location{X: 2}, attackerLoad,
					xrand.NewFromLabel(seed, "rogue/"+chNum.String()))
				rogue.Start()
			}
		}
		rt.Start()
		sched.RunUntil(perRun)
		occ := make(map[phy.Channel]float64, 3)
		total := 0.0
		for chNum, mon := range monitors {
			occ[chNum] = mon.MeanOccupancy()
			total += occ[chNum]
		}
		sensor := core.NewBatteryFreeTempSensor()
		link := core.PowerLink{
			TxPowerDBm: 30, TxGainDBi: 6, RxGainDBi: 2,
			DistanceFt: 10, Occupancy: core.OccupancyFromMap(occ),
		}
		return total * 100, sensor.UpdateRate(link)
	}
	res := &PDoSResult{AttackerLoad: attackerLoad}
	res.CleanOccPct, res.CleanRate = run(false)
	res.AttackOccPct, res.AttackRate = run(true)
	return res
}

// WriteTable prints the attack summary.
func (r *PDoSResult) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "without attacker: cumulative occupancy %6.1f%%, sensor %5.2f reads/s\n",
		r.CleanOccPct, r.CleanRate)
	fmt.Fprintf(w, "with attacker (%.0f%% load/channel): occupancy %6.1f%%, sensor %5.2f reads/s\n",
		r.AttackerLoad*100, r.AttackOccPct, r.AttackRate)
	if r.CleanRate > 0 {
		fmt.Fprintf(w, "power starvation: sensor rate reduced %.0f%%\n",
			(1-r.AttackRate/r.CleanRate)*100)
	}
}

func init() {
	register("ext-multirouter", "§8c extension: multiple PoWiFi routers, CSMA vs concurrent",
		func(w io.Writer, quick bool) {
			header(w, "ext-multirouter", "Multiple PoWiFi routers")
			per := 3 * time.Second
			if quick {
				per = time.Second
			}
			RunExtMultiRouter(per, 31).WriteTable(w)
		})
	register("ext-multichannel", "§3.1 ablation: single-channel vs tri-channel power delivery",
		func(w io.Writer, quick bool) {
			header(w, "ext-multichannel", "Multi-channel harvesting ablation")
			RunExtMultiChannel(12, 41).WriteTable(w)
		})
	register("ext-pdos", "§8d extension: power denial-of-service attack",
		func(w io.Writer, quick bool) {
			header(w, "ext-pdos", "Power denial-of-service")
			per := 3 * time.Second
			if quick {
				per = time.Second
			}
			RunExtPDoS(0.85, per, 37).WriteTable(w)
		})
}

// MultiChannelAblation quantifies the §3.1 design claim that motivates the
// whole system: a single Wi-Fi channel cannot exceed the DCF occupancy
// ceiling (~66% with contention overheads), so cumulative occupancies near
// or above 100% — and the harvesting rates they enable — are only
// reachable by spreading power traffic across channels 1, 6 and 11 and
// summing it in a multi-channel harvester.
type MultiChannelAblation struct {
	DistanceFt float64
	// SingleChRate is the sensor's update rate with all power traffic on
	// channel 6 at the single-channel DCF ceiling.
	SingleChRate float64
	// TriChRate is the rate with the same ceiling occupancy on each of
	// the three channels (the PoWiFi design).
	TriChRate float64
}

// RunExtMultiChannel evaluates both designs at the given distance, using
// the measured single-channel occupancy ceiling.
func RunExtMultiChannel(distanceFt float64, seed uint64) *MultiChannelAblation {
	// Measure the actual single-radio occupancy ceiling on a free channel.
	sched := eventsim.New()
	ch := medium.NewChannel(phy.Channel6, sched)
	channels := map[phy.Channel]*medium.Channel{phy.Channel6: ch}
	cfg := router.DefaultConfig()
	cfg.Channels = []phy.Channel{phy.Channel6}
	rt := router.New(cfg, sched, channels, 100, seed)
	mon := monitor.New(ch, 500*time.Millisecond, rt.Radio(phy.Channel6).MAC.StationID())
	rt.Start()
	sched.RunUntil(2 * time.Second)
	ceiling := mon.MeanOccupancy()

	res := &MultiChannelAblation{DistanceFt: distanceFt}
	single := core.PowerLink{
		TxPowerDBm: 30, TxGainDBi: 6, RxGainDBi: 2, DistanceFt: distanceFt,
		Occupancy: core.OccupancyFromMap(map[phy.Channel]float64{phy.Channel6: ceiling}),
	}
	tri := core.PowerLink{
		TxPowerDBm: 30, TxGainDBi: 6, RxGainDBi: 2, DistanceFt: distanceFt,
		Occupancy: [3]float64{ceiling, ceiling, ceiling},
	}
	dev := core.NewBatteryFreeTempSensor()
	res.SingleChRate = dev.UpdateRate(single)
	res.TriChRate = dev.UpdateRate(tri)
	return res
}

// WriteTable prints the ablation.
func (r *MultiChannelAblation) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "battery-free sensor at %.0f ft:\n", r.DistanceFt)
	fmt.Fprintf(w, "  single channel at the DCF ceiling: %5.2f reads/s\n", r.SingleChRate)
	fmt.Fprintf(w, "  three channels (PoWiFi design):   %5.2f reads/s (%.1fx)\n",
		r.TriChRate, r.TriChRate/r.SingleChRate)
}
