package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/rf"
)

// Fig11Result is the temperature-sensor update-rate-versus-distance study
// (§5.1, Fig. 11), run at the paper's measured 91.3% cumulative occupancy.
type Fig11Result struct {
	DistancesFt []float64
	BatteryFree []float64 // reads/second
	Recharging  []float64
	// Ranges are the maximum operating distances.
	BatteryFreeRangeFt float64
	RechargingRangeFt  float64
}

// RunFig11 sweeps distance for both temperature-sensor versions.
func RunFig11(distances []float64) *Fig11Result {
	bf := core.NewBatteryFreeTempSensor()
	bc := core.NewRechargingTempSensor()
	const occupancy = 0.913
	res := &Fig11Result{DistancesFt: distances}
	for _, d := range distances {
		link := core.PoWiFiLink(d, occupancy)
		res.BatteryFree = append(res.BatteryFree, bf.UpdateRate(link))
		res.Recharging = append(res.Recharging, bc.UpdateRate(link))
	}
	res.BatteryFreeRangeFt = core.OperatingRangeFt(40, func(d float64) bool {
		return bf.UpdateRate(core.PoWiFiLink(d, occupancy)) > 0
	})
	res.RechargingRangeFt = core.OperatingRangeFt(40, func(d float64) bool {
		return bc.UpdateRate(core.PoWiFiLink(d, occupancy)) > 0
	})
	return res
}

// WriteTo prints the update-rate table.
func (r *Fig11Result) WriteTable(w io.Writer) {
	fmt.Fprintln(w, "distance_ft  battery_free  battery_recharging  (reads/s)")
	for i, d := range r.DistancesFt {
		fmt.Fprintf(w, "%11.0f  %12.2f  %18.2f\n", d, r.BatteryFree[i], r.Recharging[i])
	}
	fmt.Fprintf(w, "ranges: battery-free %.1f ft (paper 20), battery-recharging %.1f ft (paper 28)\n",
		r.BatteryFreeRangeFt, r.RechargingRangeFt)
}

// Fig12Result is the camera inter-frame-time-versus-distance study (§5.2,
// Fig. 12), at the paper's measured 90.9% cumulative occupancy.
type Fig12Result struct {
	DistancesFt []float64
	BatteryFree []time.Duration
	Recharging  []time.Duration
	// Ranges are the maximum operating distances.
	BatteryFreeRangeFt float64
	RechargingRangeFt  float64
}

// RunFig12 sweeps distance for both camera versions.
func RunFig12(distances []float64) *Fig12Result {
	bf := core.NewBatteryFreeCamera()
	bc := core.NewRechargingCamera()
	const occupancy = 0.909
	res := &Fig12Result{DistancesFt: distances}
	for _, d := range distances {
		link := core.PoWiFiLink(d, occupancy)
		res.BatteryFree = append(res.BatteryFree, bf.InterFrameTime(link))
		res.Recharging = append(res.Recharging, bc.InterFrameTime(link))
	}
	res.BatteryFreeRangeFt = core.OperatingRangeFt(40, func(d float64) bool {
		return bf.NetHarvestedW(core.PoWiFiLink(d, occupancy)) > 0
	})
	res.RechargingRangeFt = core.OperatingRangeFt(40, func(d float64) bool {
		return bc.NetHarvestedW(core.PoWiFiLink(d, occupancy)) > 0
	})
	return res
}

// fmtIFT renders an inter-frame time, or "-" when out of range.
func fmtIFT(d time.Duration) string {
	if d > 100*time.Hour {
		return "       -"
	}
	return fmt.Sprintf("%7.1fm", d.Minutes())
}

// WriteTo prints the inter-frame table.
func (r *Fig12Result) WriteTable(w io.Writer) {
	fmt.Fprintln(w, "distance_ft  battery_free  battery_recharging  (minutes between frames)")
	for i, d := range r.DistancesFt {
		fmt.Fprintf(w, "%11.0f  %12s  %18s\n", d, fmtIFT(r.BatteryFree[i]), fmtIFT(r.Recharging[i]))
	}
	fmt.Fprintf(w, "ranges: battery-free %.1f ft (paper 17), battery-recharging %.1f ft (paper 23)\n",
		r.BatteryFreeRangeFt, r.RechargingRangeFt)
}

// Fig13Result is the through-the-wall camera study (Fig. 13): the
// battery-free camera five feet from the router behind four wall
// materials.
type Fig13Result struct {
	Walls      []rf.WallMaterial
	InterFrame []time.Duration
}

// RunFig13 evaluates each wall material at five feet.
func RunFig13() *Fig13Result {
	cam := core.NewBatteryFreeCamera()
	const occupancy = 0.909
	walls := []rf.WallMaterial{rf.NoWall, rf.WoodenDoor, rf.GlassDoublePane, rf.HollowWall, rf.DoubleSheetrock}
	res := &Fig13Result{Walls: walls}
	for _, wall := range walls {
		link := core.PoWiFiLink(5, occupancy)
		link.Wall = wall
		res.InterFrame = append(res.InterFrame, cam.InterFrameTime(link))
	}
	return res
}

// WriteTo prints the per-material table in the paper's order.
func (r *Fig13Result) WriteTable(w io.Writer) {
	fmt.Fprintln(w, "material      inter_frame_min")
	for i, wall := range r.Walls {
		mins := r.InterFrame[i].Minutes()
		if math.IsInf(mins, 1) {
			fmt.Fprintf(w, "%-12s  out of range\n", wall)
			continue
		}
		fmt.Fprintf(w, "%-12s  %6.1f\n", wall, mins)
	}
}

func init() {
	register("fig11", "temperature sensor update rate vs distance",
		func(w io.Writer, quick bool) {
			header(w, "fig11", "Update rate of temperature sensors")
			distances := []float64{1, 2.5, 5, 7.5, 10, 12.5, 15, 17.5, 20, 22.5, 25, 27.5, 30}
			if quick {
				distances = []float64{2, 5, 10, 15, 20, 25, 30}
			}
			RunFig11(distances).WriteTable(w)
		})
	register("fig12", "camera inter-frame time vs distance",
		func(w io.Writer, quick bool) {
			header(w, "fig12", "Camera prototype results")
			distances := []float64{2, 4, 6, 8, 10, 12, 14, 16, 17, 18, 20, 22, 23}
			if quick {
				distances = []float64{5, 10, 15, 17, 20, 23}
			}
			RunFig12(distances).WriteTable(w)
		})
	register("fig13", "battery-free camera through walls",
		func(w io.Writer, quick bool) {
			header(w, "fig13", "Battery-free camera in through-the-wall scenarios")
			RunFig13().WriteTable(w)
		})
}
