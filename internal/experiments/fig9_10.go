package experiments

import (
	"fmt"
	"io"

	"repro/internal/harvester"
	"repro/internal/phy"
	"repro/internal/units"
)

// Fig9Result is the harvester return-loss sweep (Fig. 9): S11 in dB across
// the 2.4 GHz band for both harvester versions.
type Fig9Result struct {
	FreqHz      []float64
	BatteryFree []float64
	Charging    []float64
}

// RunFig9 sweeps 2.40-2.48 GHz at the given step.
func RunFig9(stepHz float64) *Fig9Result {
	bf := harvester.NewBatteryFree()
	bc := harvester.NewBatteryCharging()
	res := &Fig9Result{}
	for f := 2.400e9; f <= 2.480e9; f += stepHz {
		res.FreqHz = append(res.FreqHz, f)
		res.BatteryFree = append(res.BatteryFree, bf.ReturnLossDB(f))
		res.Charging = append(res.Charging, bc.ReturnLossDB(f))
	}
	return res
}

// WorstInBand returns the worst (largest) return loss within the
// 2.401-2.473 GHz band for the given series.
func (r *Fig9Result) WorstInBand(series []float64) float64 {
	worst := -1e9
	for i, f := range r.FreqHz {
		if f < 2.401e9 || f > 2.473e9 {
			continue
		}
		if series[i] > worst {
			worst = series[i]
		}
	}
	return worst
}

// WriteTo prints the sweep.
func (r *Fig9Result) WriteTable(w io.Writer) {
	fmt.Fprintln(w, "freq_GHz  battery_free_dB  battery_charging_dB")
	for i, f := range r.FreqHz {
		fmt.Fprintf(w, "%8.4f  %15.2f  %19.2f\n", f/1e9, r.BatteryFree[i], r.Charging[i])
	}
	fmt.Fprintf(w, "worst in-band: battery-free %.2f dB, battery-charging %.2f dB (paper: < -10 dB)\n",
		r.WorstInBand(r.BatteryFree), r.WorstInBand(r.Charging))
}

// Fig10Point is one row of the harvester output-power sweep.
type Fig10Point struct {
	InputDBm float64
	// OutputUW holds the rectifier DC output in µW per channel (1, 6, 11).
	OutputUW [3]float64
}

// Fig10Result is the available-power sweep (Fig. 10) for one harvester
// version, plus the measured sensitivity.
type Fig10Result struct {
	Version        harvester.Version
	Points         []Fig10Point
	SensitivityDBm float64
}

// RunFig10 sweeps input power from -20 to +4 dBm on all three channels.
func RunFig10(version harvester.Version, stepDB float64) *Fig10Result {
	var h *harvester.Harvester
	if version == harvester.BatteryFree {
		h = harvester.NewBatteryFree()
	} else {
		h = harvester.NewBatteryCharging()
	}
	res := &Fig10Result{Version: version}
	chans := []phy.Channel{phy.Channel1, phy.Channel6, phy.Channel11}
	for dbm := -20.0; dbm <= 4.0+1e-9; dbm += stepDB {
		pt := Fig10Point{InputDBm: dbm}
		for i, ch := range chans {
			op := h.OperatingPoint(units.DBmToWatts(dbm), ch.FreqHz())
			pt.OutputUW[i] = units.Microwatts(op.RectDCW)
		}
		res.Points = append(res.Points, pt)
	}
	res.SensitivityDBm = h.SensitivityDBm(phy.Channel6.FreqHz())
	return res
}

// WriteTo prints the sweep.
func (r *Fig10Result) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "%s harvester (sensitivity %.1f dBm)\n", r.Version, r.SensitivityDBm)
	fmt.Fprintln(w, "input_dBm  ch1_uW  ch6_uW  ch11_uW")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%9.0f  %6.1f  %6.1f  %7.1f\n", p.InputDBm, p.OutputUW[0], p.OutputUW[1], p.OutputUW[2])
	}
}

func init() {
	register("fig9", "harvester return loss across the Wi-Fi band",
		func(w io.Writer, quick bool) {
			header(w, "fig9", "Harvester return loss")
			step := 2e6
			if quick {
				step = 8e6
			}
			RunFig9(step).WriteTable(w)
		})
	register("fig10", "available output power at the harvester vs input power",
		func(w io.Writer, quick bool) {
			header(w, "fig10", "Available output power at the harvester")
			step := 2.0
			if quick {
				step = 4.0
			}
			RunFig10(harvester.BatteryFree, step).WriteTable(w)
			RunFig10(harvester.BatteryCharging, step).WriteTable(w)
		})
}
