package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/deploy"
	"repro/internal/harvester"
	"repro/internal/phy"
	"repro/internal/router"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig1", "fig5", "fig6a", "fig6b", "fig6c", "fig7", "fig8",
		"fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "table1",
		"ext-multirouter", "ext-pdos", "ext-multichannel"}
	ids := IDs()
	got := map[string]bool{}
	for _, id := range ids {
		got[id] = true
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("experiment %s not registered", id)
		}
		if Describe(id) == "" {
			t.Errorf("experiment %s has no description", id)
		}
	}
	if len(ids) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(ids), len(want))
	}
}

func TestRunUnknownID(t *testing.T) {
	var buf bytes.Buffer
	if Run("nonsense", &buf, true) {
		t.Error("unknown experiment id should return false")
	}
}

func TestFig1NeverReachesThreshold(t *testing.T) {
	res := RunFig1(0.40, 4*time.Millisecond)
	if res.BootsWithin24h {
		t.Errorf("Fig. 1 scenario booted (peak %v V); the paper observed it never does", res.PeakV)
	}
	// The trace must show real swings (the paper's plot oscillates
	// between roughly 0.1 and 0.28 V).
	if res.PeakV < 0.12 {
		t.Errorf("peak voltage %v V too small; trace should visibly charge", res.PeakV)
	}
	if len(res.Trace) == 0 {
		t.Fatal("empty trace")
	}
}

func TestFig5ShapeMatchesPaper(t *testing.T) {
	res := RunFig5([]int{100, 400}, []int{1, 5}, 800*time.Millisecond, 5)
	occQ1At100 := res.OccupancyPct[0][0]
	occQ5At100 := res.OccupancyPct[1][0]
	occQ5At400 := res.OccupancyPct[1][1]
	// Threshold 1 loses occupancy versus threshold 5 (§3.2 design note).
	if occQ1At100 >= occQ5At100 {
		t.Errorf("qdepth=1 (%.1f%%) should lose to qdepth=5 (%.1f%%) at 100 µs",
			occQ1At100, occQ5At100)
	}
	// Longer delays lose occupancy once the delay exceeds the airtime.
	if occQ5At400 >= occQ5At100 {
		t.Errorf("occupancy at 400 µs (%.1f%%) should fall below 100 µs (%.1f%%)",
			occQ5At400, occQ5At100)
	}
}

func TestFig6aSchemeOrdering(t *testing.T) {
	res := RunFig6a([]float64{30}, 1500*time.Millisecond, 11)
	base := res.AchievedMbps[router.Baseline][0]
	powifi := res.AchievedMbps[router.PoWiFi][0]
	noq := res.AchievedMbps[router.NoQueue][0]
	blind := res.AchievedMbps[router.BlindUDP][0]
	if powifi < base*0.85 {
		t.Errorf("PoWiFi %.1f below 85%% of baseline %.1f", powifi, base)
	}
	if noq < base*0.3 || noq > base*0.8 {
		t.Errorf("NoQueue %.1f not roughly half of baseline %.1f", noq, base)
	}
	if blind > base*0.25 {
		t.Errorf("BlindUDP %.1f did not collapse (baseline %.1f)", blind, base)
	}
}

func TestFig6bSchemeOrdering(t *testing.T) {
	res := RunFig6b(2, 2*time.Second, 13)
	base := res.CDFs[router.Baseline].Quantile(0.5)
	powifi := res.CDFs[router.PoWiFi].Quantile(0.5)
	noq := res.CDFs[router.NoQueue].Quantile(0.5)
	blind := res.CDFs[router.BlindUDP].Quantile(0.5)
	if powifi < base*0.75 {
		t.Errorf("PoWiFi median TCP %.1f too far below baseline %.1f", powifi, base)
	}
	if noq >= base*0.85 {
		t.Errorf("NoQueue median %.1f should sit clearly below baseline %.1f", noq, base)
	}
	if blind >= noq {
		t.Errorf("BlindUDP median %.1f should be the worst (NoQueue %.1f)", blind, noq)
	}
}

func TestFig8FairnessOrdering(t *testing.T) {
	res := RunFig8([]phy.Rate{phy.Rate12Mbps, phy.Rate54Mbps}, time.Second, 23)
	for ri := range res.BitRates {
		blind := res.AchievedMbps[router.BlindUDP][ri]
		equal := res.AchievedMbps[router.EqualShare][ri]
		powifi := res.AchievedMbps[router.PoWiFi][ri]
		// PoWiFi gives the neighbor at least an equal share; BlindUDP
		// destroys it (Fig. 8).
		if powifi < equal*0.95 {
			t.Errorf("rate %v: PoWiFi %.2f below EqualShare %.2f", res.BitRates[ri], powifi, equal)
		}
		if blind > equal {
			t.Errorf("rate %v: BlindUDP %.2f above EqualShare %.2f", res.BitRates[ri], blind, equal)
		}
	}
	// The PoWiFi advantage is larger at low neighbor bit rates, where the
	// neighbor's frames are long compared to 54 Mbps power packets.
	gainLow := res.AchievedMbps[router.PoWiFi][0] / math.Max(res.AchievedMbps[router.EqualShare][0], 1e-9)
	gainHigh := res.AchievedMbps[router.PoWiFi][1] / math.Max(res.AchievedMbps[router.EqualShare][1], 1e-9)
	if gainLow < gainHigh {
		t.Errorf("PoWiFi/EqualShare gain should shrink with bit rate: low %.2f, high %.2f", gainLow, gainHigh)
	}
}

func TestFig9InBand(t *testing.T) {
	res := RunFig9(8e6)
	if worst := res.WorstInBand(res.BatteryFree); worst > -10 {
		t.Errorf("battery-free worst in-band return loss = %.2f dB, want < -10", worst)
	}
	if worst := res.WorstInBand(res.Charging); worst > -10 {
		t.Errorf("battery-charging worst in-band return loss = %.2f dB, want < -10", worst)
	}
}

func TestFig10SensitivityOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: full harvester output sweeps")
	}
	bf := RunFig10(harvester.BatteryFree, 6)
	bc := RunFig10(harvester.BatteryCharging, 6)
	if bc.SensitivityDBm >= bf.SensitivityDBm {
		t.Errorf("battery-charging sensitivity (%.1f) must beat battery-free (%.1f)",
			bc.SensitivityDBm, bf.SensitivityDBm)
	}
	// Output power grows monotonically with input on every channel.
	for _, res := range []*Fig10Result{bf, bc} {
		for chIdx := 0; chIdx < 3; chIdx++ {
			prev := -1.0
			for _, p := range res.Points {
				if p.OutputUW[chIdx] < prev-1e-9 {
					t.Fatalf("%v channel %d output decreased", res.Version, chIdx)
				}
				prev = p.OutputUW[chIdx]
			}
		}
	}
}

func TestFig11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: range searches over the harvester model")
	}
	res := RunFig11([]float64{5, 10, 19, 25})
	if res.BatteryFree[0] <= res.BatteryFree[1] {
		t.Error("battery-free rate should fall with distance")
	}
	// At 19 ft the battery-free sensor is near/past its limit while the
	// recharging one still runs.
	if res.Recharging[2] <= 0 {
		t.Error("recharging sensor should still run at 19 ft")
	}
	if res.BatteryFree[3] != 0 {
		t.Error("battery-free sensor cannot run at 25 ft")
	}
	if res.RechargingRangeFt <= res.BatteryFreeRangeFt {
		t.Error("recharging range must exceed battery-free range")
	}
}

func TestFig12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: range searches over the harvester model")
	}
	res := RunFig12([]float64{5, 10, 15})
	for i := 1; i < len(res.DistancesFt); i++ {
		if res.BatteryFree[i] <= res.BatteryFree[i-1] {
			t.Error("battery-free inter-frame time should grow with distance")
		}
	}
	if res.BatteryFreeRangeFt < 14 || res.BatteryFreeRangeFt > 21 {
		t.Errorf("battery-free camera range = %.1f ft, want near 17", res.BatteryFreeRangeFt)
	}
}

func TestFig13Ordering(t *testing.T) {
	res := RunFig13()
	// Free space fastest; double sheet-rock slowest.
	free := res.InterFrame[0]
	sheetrock := res.InterFrame[len(res.InterFrame)-1]
	if sheetrock <= free {
		t.Error("sheet-rock must slow the camera versus free space")
	}
	// All five scenarios still capture at 5 ft (the paper's plot shows
	// bars, not failures).
	for i, ift := range res.InterFrame {
		if ift > 10*time.Hour {
			t.Errorf("wall %v out of range at 5 ft", res.Walls[i])
		}
	}
}

func TestFig14CumulativeInBand(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: six 24-hour home deployments")
	}
	opts := deploy.Options{BinWidth: 2 * time.Hour, Window: 250 * time.Millisecond, Hours: 24, SensorDistanceFt: 10}
	res := RunFig14(opts)
	if len(res.Results) != 6 {
		t.Fatalf("homes = %d, want 6", len(res.Results))
	}
	for _, r := range res.Results {
		m := r.MeanCumulative()
		if m < 60 || m > 170 {
			t.Errorf("home %d mean cumulative = %.1f%%, outside sanity band", r.Home.ID, m)
		}
	}
}

func TestFig15RatesInBand(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: six 24-hour home deployments")
	}
	opts := deploy.Options{BinWidth: 2 * time.Hour, Window: 250 * time.Millisecond, Hours: 24, SensorDistanceFt: 10}
	res := RunFig15(RunFig14(opts))
	for i, c := range res.CDFs {
		if c.Quantile(0.5) <= 0 || c.Quantile(0.5) > 12 {
			t.Errorf("home %d median rate = %.2f, outside Fig. 15's plausible band", res.Homes[i], c.Quantile(0.5))
		}
	}
}

func TestTable1RoundTrip(t *testing.T) {
	var buf bytes.Buffer
	RunTable1().WriteTable(&buf)
	out := buf.String()
	for _, token := range []string{"Home #", "Users", "Devices", "Neighboring APs", "17", "24"} {
		if !strings.Contains(out, token) {
			t.Errorf("table output missing %q", token)
		}
	}
}

func TestFig16MatchesPaper(t *testing.T) {
	res := RunFig16(6, 150*time.Minute)
	if res.ChargeCurrentMA < 1.8 || res.ChargeCurrentMA > 2.8 {
		t.Errorf("charge current = %.2f mA, want about 2.3", res.ChargeCurrentMA)
	}
	if res.EndSoC < 0.30 || res.EndSoC > 0.50 {
		t.Errorf("final SoC = %.0f%%, want about 41%%", res.EndSoC*100)
	}
}

func TestExtMultiRouterConcurrencyWins(t *testing.T) {
	res := RunExtMultiRouter(time.Second, 31)
	// CSMA routers time-multiplex: little gain over one router.
	if res.CSMAUW > res.SingleUW*1.4 {
		t.Errorf("CSMA two-router power %.1f µW should barely exceed single %.1f", res.CSMAUW, res.SingleUW)
	}
	// Concurrent transmission (§8c) nearly doubles delivered power.
	if res.ConcurrentUW < res.SingleUW*1.7 {
		t.Errorf("concurrent power %.1f µW should approach 2x single %.1f", res.ConcurrentUW, res.SingleUW)
	}
}

func TestExtMultiChannelAblation(t *testing.T) {
	res := RunExtMultiChannel(12, 41)
	if res.SingleChRate <= 0 {
		t.Fatal("single-channel sensor silent at 12 ft")
	}
	if res.TriChRate < 2.2*res.SingleChRate {
		t.Errorf("tri-channel rate %.2f should be about 3x single-channel %.2f",
			res.TriChRate, res.SingleChRate)
	}
}

func TestExtPDoSStarvesSensor(t *testing.T) {
	res := RunExtPDoS(0.85, time.Second, 37)
	if res.AttackOccPct >= res.CleanOccPct {
		t.Error("attacker failed to reduce router occupancy")
	}
	if res.AttackRate >= res.CleanRate*0.8 {
		t.Errorf("attack reduced sensor rate only %.2f -> %.2f", res.CleanRate, res.AttackRate)
	}
}

func TestAllQuickRunnersProduceOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: runs eight experiment pipelines end to end")
	}
	// Smoke-run the cheap experiments end to end through the registry.
	for _, id := range []string{"fig1", "fig9", "fig10", "fig11", "fig12", "fig13", "fig16", "table1"} {
		var buf bytes.Buffer
		if !Run(id, &buf, true) {
			t.Fatalf("runner %s missing", id)
		}
		if buf.Len() == 0 {
			t.Errorf("runner %s produced no output", id)
		}
	}
}
