package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/harvester"
	"repro/internal/phy"
	"repro/internal/rf"
	"repro/internal/units"
)

// Fig1Point is one sample of the rectifier-voltage trace.
type Fig1Point struct {
	TimeMs float64
	VoltV  float64
	TxOn   bool
}

// Fig1Result reproduces Fig. 1 and the §2 motivating experiment: the
// rectifier voltage of a battery-free sensor ten feet from a conventional
// router (Asus RT-AC68U: 23 dBm, 4.04 dBi antennas) whose occupancy sits
// in the 10-40% range. The voltage rides up during packet bursts and leaks
// back down in the silent periods, never crossing the 300 mV converter
// threshold.
type Fig1Result struct {
	Trace     []Fig1Point
	PeakV     float64
	Threshold float64
	// BootsWithin24h reports whether the harvester ever reaches the
	// threshold (the paper observed it never does).
	BootsWithin24h bool
}

// RunFig1 simulates the §2 scenario. Occupancy sets the router's duty
// cycle (the paper's router sat mostly at the low end of 10-40%).
func RunFig1(occupancy float64, duration time.Duration) *Fig1Result {
	h := harvester.NewBatteryFree()
	tr := harvester.NewTransient(h, &harvester.Capacitor{C: 10e-6})
	// Received power at 10 ft from the organization's router: 23 dBm on
	// each of three 4.04 dBi antennas (§2), i.e. +4.77 dB over a single
	// chain when all three transmit the same frame.
	link := rf.Link{
		TxPowerDBm: 23 + 4.77,
		TxAntenna:  rf.Antenna{GainDBi: 4.04},
		RxAntenna:  rf.Antenna{GainDBi: 2},
		DistanceM:  units.FeetToMeters(10),
	}
	inc := link.ReceivedPowerW(phy.Channel6.FreqHz())

	res := &Fig1Result{Threshold: h.Seiko.StartupV}
	const dt = 5e-6
	// Bursty on/off pattern: packet bursts of ~400 µs within 1 ms cycles
	// at the configured duty cycle.
	cycle := 1e-3
	on := occupancy * cycle
	sampleEvery := 25e-6
	nextSample := 0.0
	for t := 0.0; t < duration.Seconds(); t += dt {
		var p float64
		txOn := math.Mod(t, cycle) < on
		if txOn {
			p = inc
		}
		v := tr.Step(dt, []harvester.ChannelPower{{FreqHz: phy.Channel6.FreqHz(), PowerW: p}})
		if v > res.PeakV {
			res.PeakV = v
		}
		if t >= nextSample {
			res.Trace = append(res.Trace, Fig1Point{TimeMs: t * 1e3, VoltV: v, TxOn: txOn})
			nextSample += sampleEvery
		}
	}
	// The 24-hour claim follows from the steady state: if the periodic
	// trace's peak stabilizes below threshold, more time cannot help.
	res.BootsWithin24h = res.PeakV >= res.Threshold
	return res
}

// WriteTo prints the trace summary and a coarse series.
func (r *Fig1Result) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "rectifier threshold: %.2f V\n", r.Threshold)
	fmt.Fprintf(w, "peak voltage over trace: %.3f V\n", r.PeakV)
	fmt.Fprintf(w, "reaches threshold: %v (paper: never, over 24 h)\n", r.BootsWithin24h)
	fmt.Fprintln(w, "time_ms  volts  tx")
	step := len(r.Trace) / 25
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(r.Trace); i += step {
		p := r.Trace[i]
		tx := " "
		if p.TxOn {
			tx = "*"
		}
		fmt.Fprintf(w, "%7.3f  %.3f  %s\n", p.TimeMs, p.VoltV, tx)
	}
}

func init() {
	register("fig1", "rectifier voltage under a conventional router (never boots)",
		func(w io.Writer, quick bool) {
			header(w, "fig1", "Key challenge with Wi-Fi power delivery")
			dur := 10 * time.Millisecond
			if quick {
				dur = 4 * time.Millisecond
			}
			RunFig1(0.40, dur).WriteTable(w)
		})
}
