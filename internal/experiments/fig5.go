package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/monitor"
	"repro/internal/phy"
	"repro/internal/router"
	"repro/internal/testbed"
)

// Fig5Result is the injector parameter study (Fig. 5): single-channel
// occupancy versus the UDP broadcast inter-packet delay for several
// queue-depth thresholds, in the absence of client traffic.
type Fig5Result struct {
	DelaysUS   []int
	Thresholds []int
	// OccupancyPct[threshold index][delay index] in percent.
	OccupancyPct [][]float64
}

// RunFig5 sweeps the injector parameters over the given simulated duration
// per point.
func RunFig5(delaysUS, thresholds []int, perPoint time.Duration, seed uint64) *Fig5Result {
	res := &Fig5Result{DelaysUS: delaysUS, Thresholds: thresholds}
	for _, qd := range thresholds {
		row := make([]float64, 0, len(delaysUS))
		for _, d := range delaysUS {
			b := testbed.NewBench(testbed.BenchConfig{Scheme: router.PoWiFi, Seed: seed})
			for _, radio := range b.Router.Radios {
				radio.Injector.Cfg.QueueDepthThreshold = qd
				radio.Injector.Cfg.InterPacketDelay = time.Duration(d) * time.Microsecond
			}
			mon := monitor.New(b.Channels[phy.Channel1], 500*time.Millisecond,
				b.RouterRadio().StationID())
			b.Start()
			b.Sched.RunUntil(perPoint)
			row = append(row, mon.MeanOccupancy()*100)
		}
		res.OccupancyPct = append(res.OccupancyPct, row)
	}
	return res
}

// WriteTo prints the sweep in the paper's layout.
func (r *Fig5Result) WriteTable(w io.Writer) {
	fmt.Fprint(w, "delay_us")
	for _, qd := range r.Thresholds {
		fmt.Fprintf(w, "  qdepth=%d", qd)
	}
	fmt.Fprintln(w)
	for di, d := range r.DelaysUS {
		fmt.Fprintf(w, "%8d", d)
		for ti := range r.Thresholds {
			fmt.Fprintf(w, "  %7.1f%%", r.OccupancyPct[ti][di])
		}
		fmt.Fprintln(w)
	}
}

func init() {
	register("fig5", "occupancy vs inter-packet delay and queue threshold",
		func(w io.Writer, quick bool) {
			header(w, "fig5", "Effect of inter-packet delay on occupancy")
			delays := []int{20, 50, 100, 150, 200, 250, 300, 350, 400}
			thresholds := []int{1, 5, 50, 100}
			per := 4 * time.Second
			if quick {
				delays = []int{50, 100, 200, 400}
				thresholds = []int{1, 5, 50}
				per = 1 * time.Second
			}
			RunFig5(delays, thresholds, per, 5).WriteTable(w)
		})
}
