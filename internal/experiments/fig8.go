package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/eventsim"
	"repro/internal/mac"
	"repro/internal/medium"
	"repro/internal/netstack"
	"repro/internal/phy"
	"repro/internal/router"
	"repro/internal/xrand"
)

// Fig8Schemes is the comparison set of the neighbor-fairness experiment.
var Fig8Schemes = []router.Scheme{router.BlindUDP, router.EqualShare, router.PoWiFi}

// Fig8Result is the neighbor-network fairness study (Fig. 8): the UDP
// throughput a neighboring router–client pair achieves at various Wi-Fi
// bit rates while our router injects power traffic on the same channel.
type Fig8Result struct {
	BitRates []phy.Rate
	// AchievedMbps[scheme][rate index].
	AchievedMbps map[router.Scheme][]float64
}

// RunFig8 sweeps the neighbor pair's bit rate under each scheme.
func RunFig8(bitRates []phy.Rate, perRun time.Duration, seed uint64) *Fig8Result {
	res := &Fig8Result{BitRates: bitRates, AchievedMbps: make(map[router.Scheme][]float64)}
	for _, scheme := range Fig8Schemes {
		for ri, rate := range bitRates {
			res.AchievedMbps[scheme] = append(res.AchievedMbps[scheme],
				runNeighborPair(scheme, rate, perRun, seed+uint64(ri)))
		}
	}
	return res
}

// runNeighborPair measures the neighbor pair's UDP throughput on channel 1
// with our power-injecting router alongside.
func runNeighborPair(scheme router.Scheme, neighborRate phy.Rate, perRun time.Duration, seed uint64) float64 {
	sched := eventsim.New()
	ch1 := medium.NewChannel(phy.Channel1, sched)
	channels := map[phy.Channel]*medium.Channel{phy.Channel1: ch1}

	rcfg := router.DefaultConfig()
	rcfg.Scheme = scheme
	rcfg.Channels = []phy.Channel{phy.Channel1}
	rcfg.EqualShareRate = neighborRate
	rt := router.New(rcfg, sched, channels, 100, seed)

	// The neighboring router-client pair, a few metres away.
	nAP := mac.NewStation(400, "neighbor-ap", medium.Location{X: 4}, ch1,
		xrand.NewFromLabel(seed, "nap"))
	nAP.RateCtl = mac.FixedRate(neighborRate)
	nClient := mac.NewStation(401, "neighbor-client", medium.Location{X: 6}, ch1,
		xrand.NewFromLabel(seed, "nclient"))
	nClient.OnDeliver = func(f *mac.Frame, from int) {
		if p, isPacket := f.Payload.(*netstack.Packet); isPacket && p.Dst != nil {
			p.Dst.Deliver(p)
		}
	}

	sink := &netstack.UDPSink{Sched: sched}
	src := &netstack.UDPSource{
		Sched: sched,
		Path: netstack.FuncPath(func(p *netstack.Packet) {
			nAP.Enqueue(&mac.Frame{
				DstID:   nClient.StationID(),
				Bytes:   p.Bytes + netstack.IPOverheadBytes,
				Kind:    medium.KindData,
				Payload: p,
			})
		}),
		Sink:         sink,
		PayloadBytes: 1500,
		// iperf at the highest data rate: saturate the neighbor link.
		RateMbps: neighborRate.Mbps(),
	}

	rt.Start()
	src.Start()
	sched.RunUntil(perRun)
	return sink.ThroughputMbps(0, perRun)
}

// WriteTo prints the Fig. 8 table.
func (r *Fig8Result) WriteTable(w io.Writer) {
	fmt.Fprint(w, "neighbor_rate")
	for _, s := range Fig8Schemes {
		fmt.Fprintf(w, "  %10s", s)
	}
	fmt.Fprintln(w, "  (achieved Mbps)")
	for ri, rate := range r.BitRates {
		fmt.Fprintf(w, "%13v", rate)
		for _, s := range Fig8Schemes {
			fmt.Fprintf(w, "  %10.2f", r.AchievedMbps[s][ri])
		}
		fmt.Fprintln(w)
	}
}

func init() {
	register("fig8", "fairness to neighboring networks",
		func(w io.Writer, quick bool) {
			header(w, "fig8", "Effect on neighboring networks")
			rates := []phy.Rate{phy.Rate6Mbps, phy.Rate9Mbps, phy.Rate12Mbps, phy.Rate18Mbps,
				phy.Rate24Mbps, phy.Rate36Mbps, phy.Rate48Mbps, phy.Rate54Mbps}
			per := 3 * time.Second
			if quick {
				rates = []phy.Rate{phy.Rate6Mbps, phy.Rate18Mbps, phy.Rate54Mbps}
				per = 1 * time.Second
			}
			RunFig8(rates, per, 23).WriteTable(w)
		})
}
