// Command apidump regenerates or checks the committed public-API
// surface file (api/powifi.txt) for the repo's facade package.
//
//	go run ./internal/tools/apidump -write   # regenerate after an intentional API change
//	go run ./internal/tools/apidump -check   # CI: fail when the surface drifted
//
// Run from the repository root (the default -dir and -out are relative
// to it).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/apidump"
)

func main() {
	dir := flag.String("dir", ".", "package directory to dump")
	out := flag.String("out", "api/powifi.txt", "surface file to write or check against")
	write := flag.Bool("write", false, "rewrite the surface file")
	check := flag.Bool("check", false, "compare against the surface file; exit 1 on drift")
	flag.Parse()

	got, err := apidump.Dump(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	switch {
	case *write:
		if err := os.WriteFile(*out, []byte(got), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	case *check:
		want, err := os.ReadFile(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "missing %s (regenerate with -write): %v\n", *out, err)
			os.Exit(1)
		}
		if string(want) != got {
			fmt.Fprintf(os.Stderr, "exported API changed without regenerating %s\n"+
				"run: go run ./internal/tools/apidump -write\n", *out)
			os.Exit(1)
		}
		fmt.Printf("%s is up to date\n", *out)
	default:
		fmt.Print(got)
	}
}
