package netstack

import (
	"time"

	"repro/internal/eventsim"
)

// TCP constants.
const (
	// MSS is the maximum segment size (Ethernet MTU minus headers).
	MSS = 1460
	// MinRTO is the conventional minimum retransmission timeout.
	MinRTO = 200 * time.Millisecond
	// DefaultRcvWnd is the receiver window in segments.
	DefaultRcvWnd = 128
)

// TCPSender is a Reno congestion-controlled sender. It transmits a
// bounded transfer (TotalBytes > 0, e.g. one web object) or runs
// indefinitely (TotalBytes == 0, e.g. iperf) until Stop.
type TCPSender struct {
	Sched *eventsim.Scheduler
	// Path carries data segments toward the receiver.
	Path Path
	// TotalBytes bounds the transfer; 0 means unbounded.
	TotalBytes int
	// RcvWnd caps the congestion window (receiver window), in segments.
	RcvWnd int
	// OnComplete fires when a bounded transfer is fully acknowledged.
	OnComplete func()

	cwnd      float64
	ssthresh  float64
	nextSeq   int
	sndUna    int
	dupAcks   int
	recover   int
	inFastRec bool

	srtt, rttvar, rto time.Duration
	rtoBackoff        int
	timer             eventsim.Handle
	sendTimes         map[int]time.Duration

	rtoCount        int
	fastRetransmits int

	stopped    bool
	completed  bool
	totalSegs  int
	ackedBytes int
	startedAt  time.Duration

	receiverEndpoint Endpoint
}

// Start begins the transfer.
func (s *TCPSender) Start() {
	if s.RcvWnd == 0 {
		s.RcvWnd = DefaultRcvWnd
	}
	s.cwnd = 2
	s.ssthresh = float64(s.RcvWnd)
	s.rto = time.Second
	s.sendTimes = make(map[int]time.Duration)
	s.totalSegs = 0
	if s.TotalBytes > 0 {
		s.totalSegs = (s.TotalBytes + MSS - 1) / MSS
	}
	s.startedAt = s.Sched.Now()
	s.trySend()
}

// Stop halts an unbounded transfer.
func (s *TCPSender) Stop() {
	s.stopped = true
	s.cancelTimer()
}

// AckedBytes returns the cumulatively acknowledged byte count.
func (s *TCPSender) AckedBytes() int { return s.ackedBytes }

// ThroughputMbps returns goodput since Start.
func (s *TCPSender) ThroughputMbps() float64 {
	dur := (s.Sched.Now() - s.startedAt).Seconds()
	if dur <= 0 {
		return 0
	}
	return float64(s.ackedBytes) * 8 / dur / 1e6
}

// window returns the current send window in segments.
func (s *TCPSender) window() int {
	w := int(s.cwnd)
	if w > s.RcvWnd {
		w = s.RcvWnd
	}
	if w < 1 {
		w = 1
	}
	return w
}

// segBytes returns the payload size of segment seq.
func (s *TCPSender) segBytes(seq int) int {
	if s.totalSegs == 0 || seq < s.totalSegs-1 {
		return MSS
	}
	last := s.TotalBytes - (s.totalSegs-1)*MSS
	if last <= 0 {
		return MSS
	}
	return last
}

// trySend transmits as many new segments as the window allows.
func (s *TCPSender) trySend() {
	if s.stopped || s.completed {
		return
	}
	for s.nextSeq < s.sndUna+s.window() {
		if s.totalSegs > 0 && s.nextSeq >= s.totalSegs {
			break
		}
		s.sendSegment(s.nextSeq, false)
		s.nextSeq++
	}
	s.armTimer()
}

// sendSegment puts one segment on the path.
func (s *TCPSender) sendSegment(seq int, retransmit bool) {
	if !retransmit {
		s.sendTimes[seq] = s.Sched.Now()
	} else {
		delete(s.sendTimes, seq) // Karn: no RTT sample from retransmits
	}
	s.Path.Send(&Packet{
		Dst:        s.receiverEndpoint,
		Bytes:      s.segBytes(seq),
		Seq:        seq,
		Sent:       s.Sched.Now(),
		Retransmit: retransmit,
	})
}

// Connect wires a sender and receiver pair: data flows over dataPath to
// the receiver, acknowledgments flow over ackPath back to the sender.
func Connect(s *TCPSender, r *TCPReceiver, dataPath, ackPath Path) {
	s.Path = dataPath
	s.receiverEndpoint = r
	r.AckPath = ackPath
	r.sender = s
}

// Deliver implements Endpoint: the sender consumes acknowledgments.
func (s *TCPSender) Deliver(p *Packet) {
	if !p.Ack || s.stopped || s.completed {
		return
	}
	ack := p.AckSeq
	switch {
	case ack > s.sndUna:
		newly := ack - s.sndUna
		if t, exists := s.sendTimes[ack-1]; exists {
			s.sampleRTT(s.Sched.Now() - t)
		}
		for seq := s.sndUna; seq < ack; seq++ {
			s.ackedBytes += s.segBytes(seq)
			delete(s.sendTimes, seq)
		}
		s.sndUna = ack
		s.dupAcks = 0
		s.rtoBackoff = 0
		if s.inFastRec {
			if ack >= s.recover {
				s.inFastRec = false
				s.cwnd = s.ssthresh
			} else {
				// NewReno partial ACK: the window had multiple losses;
				// retransmit the next hole immediately and stay in fast
				// recovery rather than stalling until an RTO.
				s.sendSegment(s.sndUna, true)
				s.armTimer()
				return
			}
		} else if s.cwnd < s.ssthresh {
			s.cwnd += float64(newly) // slow start
		} else {
			s.cwnd += float64(newly) / s.cwnd // congestion avoidance
		}
		if s.totalSegs > 0 && s.sndUna >= s.totalSegs {
			s.complete()
			return
		}
		s.trySend()
	case ack == s.sndUna:
		s.dupAcks++
		if s.dupAcks == 3 && !s.inFastRec {
			// Fast retransmit + fast recovery.
			s.ssthresh = s.cwnd / 2
			if s.ssthresh < 2 {
				s.ssthresh = 2
			}
			s.cwnd = s.ssthresh
			s.inFastRec = true
			s.fastRetransmits++
			s.recover = s.nextSeq
			s.sendSegment(s.sndUna, true)
			s.armTimer()
		}
	}
}

// complete finishes a bounded transfer.
func (s *TCPSender) complete() {
	s.completed = true
	s.cancelTimer()
	if s.OnComplete != nil {
		s.OnComplete()
	}
}

// sampleRTT folds one RTT measurement into SRTT/RTTVAR (RFC 6298).
func (s *TCPSender) sampleRTT(rtt time.Duration) {
	if s.srtt == 0 {
		s.srtt = rtt
		s.rttvar = rtt / 2
	} else {
		diff := s.srtt - rtt
		if diff < 0 {
			diff = -diff
		}
		s.rttvar = (3*s.rttvar + diff) / 4
		s.srtt = (7*s.srtt + rtt) / 8
	}
	s.rto = s.srtt + 4*s.rttvar
	if s.rto < MinRTO {
		s.rto = MinRTO
	}
}

// armTimer (re)starts the retransmission timer.
func (s *TCPSender) armTimer() {
	s.cancelTimer()
	if s.sndUna == s.nextSeq {
		return // nothing outstanding
	}
	backoff := s.rto << s.rtoBackoff
	s.timer = s.Sched.After(backoff, s.onRTO)
}

func (s *TCPSender) cancelTimer() {
	s.timer.Cancel()
	s.timer = eventsim.Handle{}
}

// onRTO handles a retransmission timeout: multiplicative decrease to a
// window of one and go-back-N from the lowest unacknowledged segment.
func (s *TCPSender) onRTO() {
	if s.stopped || s.completed {
		return
	}
	s.ssthresh = s.cwnd / 2
	if s.ssthresh < 2 {
		s.ssthresh = 2
	}
	s.cwnd = 1
	s.dupAcks = 0
	s.inFastRec = false
	s.rtoCount++
	if s.rtoBackoff < 6 {
		s.rtoBackoff++
	}
	s.sendSegment(s.sndUna, true)
	s.armTimer()
}

// TCPReceiver acknowledges received segments cumulatively.
type TCPReceiver struct {
	Sched *eventsim.Scheduler
	// AckPath carries acknowledgments back to the sender.
	AckPath Path

	sender   *TCPSender
	expected int
	ooo      map[int]int // seq -> payload bytes, buffered out of order
	bytes    int
}

// Deliver implements Endpoint.
func (r *TCPReceiver) Deliver(p *Packet) {
	if r.ooo == nil {
		r.ooo = make(map[int]int)
	}
	if p.Seq == r.expected {
		r.expected++
		r.bytes += p.Bytes
		for {
			b, buffered := r.ooo[r.expected]
			if !buffered {
				break
			}
			delete(r.ooo, r.expected)
			r.bytes += b
			r.expected++
		}
	} else if p.Seq > r.expected {
		r.ooo[p.Seq] = p.Bytes
	}
	// Cumulative ACK on every received segment.
	r.AckPath.Send(&Packet{
		Dst:    r.sender,
		Ack:    true,
		AckSeq: r.expected,
		Sent:   r.Sched.Now(),
	})
}

// BytesReceived returns the in-order payload byte count.
func (r *TCPReceiver) BytesReceived() int { return r.bytes }

// DebugState exposes internal congestion state for tests and debugging.
func (s *TCPSender) DebugState() (cwnd, ssthresh float64, rtoCount, fastRetransmits, sndUna, nextSeq int) {
	return s.cwnd, s.ssthresh, s.rtoCount, s.fastRetransmits, s.sndUna, s.nextSeq
}
