// Package netstack provides the transport layer of the simulator: packets,
// delivery paths (wired and wireless hops), UDP flows and a Reno-style TCP
// with slow start, congestion avoidance, fast retransmit and RTO recovery.
//
// The paper's experiments exercise exactly these moving parts: iperf UDP
// and TCP downloads through the PoWiFi router (Fig. 6a/6b) and web page
// loads over parallel TCP connections (Fig. 6c). The PoWiFi-specific IP
// machinery (Power_Socket, Power_MACshim, IP_Power) lives in the router
// package and plugs into the same interfaces.
package netstack

import (
	"time"

	"repro/internal/eventsim"
)

// IPOverheadBytes is the IP + transport header overhead added to
// application payload on the wire.
const IPOverheadBytes = 40

// Endpoint consumes delivered packets.
type Endpoint interface {
	Deliver(p *Packet)
}

// Packet is a network-layer datagram.
type Packet struct {
	// Dst is the endpoint that Deliver is invoked on at the end of the
	// path.
	Dst Endpoint
	// Bytes is the application payload length.
	Bytes int
	// Seq is the transport sequence number (segment index for TCP).
	Seq int
	// Ack marks acknowledgment packets and AckSeq carries the cumulative
	// acknowledgment.
	Ack    bool
	AckSeq int
	// Sent is the timestamp the packet entered the path (for RTT
	// estimation).
	Sent time.Duration
	// Retransmit marks retransmitted TCP segments (excluded from RTT
	// sampling per Karn's algorithm).
	Retransmit bool
}

// Path moves packets toward their destination endpoint.
type Path interface {
	// Send forwards the packet. Send never blocks; packets may be
	// dropped along the way.
	Send(p *Packet)
}

// WiredPath models the Internet-side hop between a server and the router:
// a fixed one-way latency with no loss (the wired side is never the
// bottleneck in the paper's experiments).
type WiredPath struct {
	Sched   *eventsim.Scheduler
	Latency time.Duration
	Next    Path
}

// Send implements Path.
func (w *WiredPath) Send(p *Packet) {
	w.Sched.After(w.Latency, func() { w.Next.Send(p) })
}

// FuncPath adapts a function to the Path interface.
type FuncPath func(p *Packet)

// Send implements Path.
func (f FuncPath) Send(p *Packet) { f(p) }

// DeliverPath terminates a path by invoking the packet's endpoint.
type DeliverPath struct{}

// Send implements Path.
func (DeliverPath) Send(p *Packet) {
	if p.Dst != nil {
		p.Dst.Deliver(p)
	}
}
