package netstack

import (
	"testing"
	"time"

	"repro/internal/eventsim"
	"repro/internal/xrand"
)

// bottleneckPath models a store-and-forward link with a fixed service rate
// and a drop-tail queue, the canonical TCP test fixture.
type bottleneckPath struct {
	sch      *eventsim.Scheduler
	rateMbps float64
	queueCap int
	lossProb float64
	rng      *xrand.Rand

	queue   []*Packet
	serving bool
	drops   int
}

func (b *bottleneckPath) Send(p *Packet) {
	if b.lossProb > 0 && b.rng.Bool(b.lossProb) {
		b.drops++
		return
	}
	if len(b.queue) >= b.queueCap {
		b.drops++
		return
	}
	b.queue = append(b.queue, p)
	if !b.serving {
		b.serve()
	}
}

func (b *bottleneckPath) serve() {
	if len(b.queue) == 0 {
		b.serving = false
		return
	}
	b.serving = true
	p := b.queue[0]
	b.queue = b.queue[1:]
	txTime := time.Duration(float64((p.Bytes+IPOverheadBytes)*8) / (b.rateMbps * 1e6) * 1e9)
	b.sch.After(txTime, func() {
		p.Dst.Deliver(p)
		b.serve()
	})
}

func newRig() (*eventsim.Scheduler, *xrand.Rand) {
	return eventsim.New(), xrand.New(7)
}

func TestUDPSourceRate(t *testing.T) {
	sch, _ := newRig()
	sink := &UDPSink{Sched: sch}
	src := &UDPSource{
		Sched: sch, Path: DeliverPath{}, Sink: sink,
		PayloadBytes: 1500, RateMbps: 12,
	}
	src.Start()
	sch.At(time.Second, func() { src.Stop(); sch.Stop() })
	sch.Run()
	got := sink.ThroughputMbps(0, time.Second)
	if got < 11.5 || got > 12.5 {
		t.Errorf("UDP throughput = %.2f Mbps, want about 12", got)
	}
	if sink.Received() != src.Sent() {
		t.Errorf("received %d of %d", sink.Received(), src.Sent())
	}
}

func TestUDPThroughputLimitedByBottleneck(t *testing.T) {
	sch, rng := newRig()
	sink := &UDPSink{Sched: sch}
	link := &bottleneckPath{sch: sch, rateMbps: 5, queueCap: 20, rng: rng}
	src := &UDPSource{Sched: sch, Path: link, Sink: sink, PayloadBytes: 1500, RateMbps: 20}
	src.Start()
	sch.At(2*time.Second, func() { src.Stop(); sch.Stop() })
	sch.Run()
	got := sink.ThroughputMbps(0, 2*time.Second)
	if got < 4 || got > 5.3 {
		t.Errorf("bottlenecked UDP throughput = %.2f Mbps, want about 5", got)
	}
	if link.drops == 0 {
		t.Error("oversubscribed bottleneck should drop datagrams")
	}
}

func TestUDPMeanDelayPositive(t *testing.T) {
	sch, rng := newRig()
	sink := &UDPSink{Sched: sch}
	link := &bottleneckPath{sch: sch, rateMbps: 10, queueCap: 50, rng: rng}
	src := &UDPSource{Sched: sch, Path: link, Sink: sink, PayloadBytes: 1500, RateMbps: 8}
	src.Start()
	sch.At(500*time.Millisecond, func() { src.Stop(); sch.Stop() })
	sch.Run()
	if sink.MeanDelay() <= 0 {
		t.Error("mean delay should be positive through a bottleneck")
	}
}

func TestTCPBoundedTransferCompletes(t *testing.T) {
	sch, rng := newRig()
	snd := &TCPSender{Sched: sch, TotalBytes: 500_000}
	rcv := &TCPReceiver{Sched: sch}
	data := &bottleneckPath{sch: sch, rateMbps: 20, queueCap: 60, rng: rng}
	ack := &bottleneckPath{sch: sch, rateMbps: 20, queueCap: 200, rng: rng}
	Connect(snd, rcv, data, ack)
	done := false
	var doneAt time.Duration
	snd.OnComplete = func() { done = true; doneAt = sch.Now() }
	snd.Start()
	sch.RunUntil(30 * time.Second)
	if !done {
		t.Fatal("transfer did not complete")
	}
	if rcv.BytesReceived() < 500_000 {
		t.Errorf("receiver got %d bytes, want >= 500000", rcv.BytesReceived())
	}
	// 500 KB over 20 Mbps is 200 ms minimum; slow start adds some.
	if doneAt > 2*time.Second {
		t.Errorf("transfer took %v, far too slow", doneAt)
	}
}

func TestTCPSurvivesRandomLoss(t *testing.T) {
	sch, rng := newRig()
	snd := &TCPSender{Sched: sch, TotalBytes: 300_000}
	rcv := &TCPReceiver{Sched: sch}
	data := &bottleneckPath{sch: sch, rateMbps: 20, queueCap: 100, lossProb: 0.02, rng: rng}
	ack := &bottleneckPath{sch: sch, rateMbps: 20, queueCap: 300, rng: rng}
	Connect(snd, rcv, data, ack)
	done := false
	snd.OnComplete = func() { done = true }
	snd.Start()
	sch.RunUntil(60 * time.Second)
	if !done {
		t.Fatal("transfer did not complete under 2% loss")
	}
}

func TestTCPThroughputTracksBottleneck(t *testing.T) {
	sch, rng := newRig()
	snd := &TCPSender{Sched: sch}
	rcv := &TCPReceiver{Sched: sch}
	data := &bottleneckPath{sch: sch, rateMbps: 10, queueCap: 40, rng: rng}
	ackWire := &WiredPath{Sched: sch, Latency: 5 * time.Millisecond, Next: DeliverPath{}}
	Connect(snd, rcv, data, ackWire)
	snd.Start()
	sch.At(5*time.Second, func() { snd.Stop(); sch.Stop() })
	sch.Run()
	got := snd.ThroughputMbps()
	if got < 6 || got > 10.5 {
		t.Errorf("TCP throughput = %.2f Mbps over a 10 Mbps bottleneck, want 6-10.5", got)
	}
}

func TestTCPHalvesOnCongestion(t *testing.T) {
	// With a tiny queue, Reno must back off: throughput stays below the
	// raw link rate but the transfer still completes.
	sch, rng := newRig()
	snd := &TCPSender{Sched: sch, TotalBytes: 200_000}
	rcv := &TCPReceiver{Sched: sch}
	data := &bottleneckPath{sch: sch, rateMbps: 8, queueCap: 5, rng: rng}
	Connect(snd, rcv, data, DeliverPath{})
	done := false
	snd.OnComplete = func() { done = true }
	snd.Start()
	sch.RunUntil(60 * time.Second)
	if !done {
		t.Fatal("transfer did not complete through a 5-packet queue")
	}
	if data.drops == 0 {
		t.Error("expected queue-overflow drops to trigger congestion control")
	}
}

func TestTCPRTOOnAckPathBlackhole(t *testing.T) {
	// Drop every ACK: the sender must keep retransmitting via
	// exponentially backed-off RTOs, never complete, and never crash.
	sch, _ := newRig()
	snd := &TCPSender{Sched: sch, TotalBytes: 10_000}
	rcv := &TCPReceiver{Sched: sch}
	blackhole := FuncPath(func(p *Packet) {})
	Connect(snd, rcv, DeliverPath{}, blackhole)
	completed := false
	snd.OnComplete = func() { completed = true }
	snd.Start()
	sch.RunUntil(10 * time.Second)
	if snd.AckedBytes() != 0 {
		t.Error("sender acked bytes with a blackholed ACK path")
	}
	if completed {
		t.Error("transfer completed without any acknowledgments")
	}
	// The initial window arrived; go-back-N keeps re-sending its head.
	if rcv.BytesReceived() < MSS {
		t.Errorf("receiver got %d bytes, want at least one segment", rcv.BytesReceived())
	}
}

func TestTCPReceiverReordersOutOfOrder(t *testing.T) {
	sch, _ := newRig()
	rcv := &TCPReceiver{Sched: sch}
	var acks []int
	rcv.AckPath = FuncPath(func(p *Packet) { acks = append(acks, p.AckSeq) })
	// Deliver segments 1, 2, 0: cumulative ACK must jump to 3 at the end.
	rcv.Deliver(&Packet{Seq: 1, Bytes: MSS})
	rcv.Deliver(&Packet{Seq: 2, Bytes: MSS})
	rcv.Deliver(&Packet{Seq: 0, Bytes: MSS})
	want := []int{0, 0, 3}
	if len(acks) != 3 {
		t.Fatalf("got %d acks", len(acks))
	}
	for i := range want {
		if acks[i] != want[i] {
			t.Errorf("ack %d = %d, want %d", i, acks[i], want[i])
		}
	}
}

func TestSegBytesLastSegment(t *testing.T) {
	s := &TCPSender{TotalBytes: MSS + 100}
	s.totalSegs = 2
	if got := s.segBytes(0); got != MSS {
		t.Errorf("first segment = %d, want %d", got, MSS)
	}
	if got := s.segBytes(1); got != 100 {
		t.Errorf("last segment = %d, want 100", got)
	}
}

func TestWiredPathLatency(t *testing.T) {
	sch, _ := newRig()
	sink := &UDPSink{Sched: sch}
	wire := &WiredPath{Sched: sch, Latency: 10 * time.Millisecond, Next: DeliverPath{}}
	wire.Send(&Packet{Dst: sink, Bytes: 100, Sent: 0})
	sch.Run()
	if sink.MeanDelay() != 10*time.Millisecond {
		t.Errorf("wired delay = %v, want 10 ms", sink.MeanDelay())
	}
}
