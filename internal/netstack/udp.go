package netstack

import (
	"time"

	"repro/internal/eventsim"
)

// UDPSource generates constant-bit-rate UDP traffic, mirroring
// "iperf -u -b <rate>" as used in §4.1(a): 1500-byte datagrams at a target
// data rate.
type UDPSource struct {
	Sched *eventsim.Scheduler
	// Path carries packets toward the sink.
	Path Path
	// Sink is the receiving endpoint.
	Sink *UDPSink
	// PayloadBytes per datagram (1500 in the paper, the Ethernet MTU).
	PayloadBytes int
	// RateMbps is the target application data rate.
	RateMbps float64

	cancel func()
	sent   int
}

// Start begins generation until Stop is called.
func (u *UDPSource) Start() {
	if u.PayloadBytes <= 0 {
		u.PayloadBytes = 1500
	}
	interval := time.Duration(float64(u.PayloadBytes*8) / (u.RateMbps * 1e6) * 1e9)
	if interval <= 0 {
		interval = time.Microsecond
	}
	u.cancel = u.Sched.Ticker(interval, func() {
		u.sent++
		u.Path.Send(&Packet{
			Dst:   u.Sink,
			Bytes: u.PayloadBytes,
			Seq:   u.sent,
			Sent:  u.Sched.Now(),
		})
	})
}

// Stop halts generation.
func (u *UDPSource) Stop() {
	if u.cancel != nil {
		u.cancel()
		u.cancel = nil
	}
}

// Sent returns the number of datagrams generated.
func (u *UDPSource) Sent() int { return u.sent }

// UDPSink counts received UDP traffic and computes achieved throughput,
// like the iperf server side.
type UDPSink struct {
	Sched *eventsim.Scheduler

	received   int
	bytes      int
	firstAt    time.Duration
	lastAt     time.Duration
	totalDelay time.Duration
}

// Deliver implements Endpoint.
func (u *UDPSink) Deliver(p *Packet) {
	if u.received == 0 {
		u.firstAt = u.Sched.Now()
	}
	u.received++
	u.bytes += p.Bytes
	u.lastAt = u.Sched.Now()
	u.totalDelay += u.Sched.Now() - p.Sent
}

// Received returns the number of datagrams delivered.
func (u *UDPSink) Received() int { return u.received }

// Bytes returns the payload bytes delivered.
func (u *UDPSink) Bytes() int { return u.bytes }

// ThroughputMbps returns the achieved rate over the interval [start, end],
// the quantity Fig. 6a plots.
func (u *UDPSink) ThroughputMbps(start, end time.Duration) float64 {
	dur := (end - start).Seconds()
	if dur <= 0 {
		return 0
	}
	return float64(u.bytes) * 8 / dur / 1e6
}

// MeanDelay returns the mean one-way delay of delivered datagrams.
func (u *UDPSink) MeanDelay() time.Duration {
	if u.received == 0 {
		return 0
	}
	return u.totalDelay / time.Duration(u.received)
}
