package phy

import (
	"testing"
	"time"
)

func TestAirtime54Mbps1500B(t *testing.T) {
	// A 1500-byte payload frame (1536 bytes with MAC overhead) at 54 Mbps:
	// bits = 16 + 1536*8 + 6 = 12310; 57 symbols of 216 bits = ceil ->
	// 12310/216 = 56.99 -> 57 symbols * 4 µs = 228 µs + 20 µs preamble.
	got := Airtime(1500+MACOverheadBytes, Rate54Mbps)
	want := 248 * time.Microsecond
	if got != want {
		t.Errorf("airtime = %v, want %v", got, want)
	}
	// This is the paper's "around 160 us" power packet (they quote the
	// payload-only serialization); the inter-packet delay of 100 µs is
	// below it either way, which is what saturates occupancy in Fig. 5.
	if got < 100*time.Microsecond {
		t.Error("airtime should exceed the 100 µs injection interval")
	}
}

func TestAirtime1MbpsDominatesChannel(t *testing.T) {
	// BlindUDP's 1500-byte frames at 1 Mbps occupy ~12.5 ms: the reason
	// Fig. 6 shows BlindUDP destroying Wi-Fi performance.
	got := Airtime(1500+MACOverheadBytes, Rate1Mbps)
	if got < 12*time.Millisecond || got > 13*time.Millisecond {
		t.Errorf("1 Mbps airtime = %v, want about 12.5 ms", got)
	}
	ratio := float64(got) / float64(Airtime(1500+MACOverheadBytes, Rate54Mbps))
	if ratio < 40 {
		t.Errorf("1 Mbps should occupy the channel about 50x longer, ratio = %v", ratio)
	}
}

func TestAirtimeMonotoneInBytes(t *testing.T) {
	for _, r := range OFDMRates {
		prev := time.Duration(0)
		for bytes := 0; bytes <= 2000; bytes += 100 {
			at := Airtime(bytes, r)
			if at < prev {
				t.Fatalf("airtime decreased at %d bytes rate %v", bytes, r)
			}
			prev = at
		}
	}
}

func TestAirtimeDecreasesWithRate(t *testing.T) {
	prev := time.Duration(1 << 62)
	for _, r := range OFDMRates {
		at := Airtime(1536, r)
		if at >= prev {
			t.Fatalf("airtime did not decrease at rate %v", r)
		}
		prev = at
	}
}

func TestAirtimeNegativeBytesClamped(t *testing.T) {
	if got := Airtime(-5, Rate54Mbps); got != Airtime(0, Rate54Mbps) {
		t.Errorf("negative bytes airtime = %v", got)
	}
}

func TestDSSSRates(t *testing.T) {
	for _, r := range []Rate{Rate1Mbps, Rate2Mbps, Rate5Mbps, Rate11Mbps} {
		if !r.IsDSSS() {
			t.Errorf("%v should be DSSS", r)
		}
	}
	for _, r := range OFDMRates {
		if r.IsDSSS() {
			t.Errorf("%v should not be DSSS", r)
		}
	}
}

func TestRate5MbpsLabel(t *testing.T) {
	if Rate5Mbps.Mbps() != 5.5 {
		t.Errorf("Rate5Mbps.Mbps() = %v, want 5.5", Rate5Mbps.Mbps())
	}
	if Rate5Mbps.String() != "5.5Mbps" {
		t.Errorf("String = %q", Rate5Mbps.String())
	}
}

func TestDIFSValue(t *testing.T) {
	if DIFS != 28*time.Microsecond {
		t.Errorf("DIFS = %v, want 28 µs", DIFS)
	}
}

func TestAckRateSelection(t *testing.T) {
	cases := []struct{ data, ack Rate }{
		{Rate54Mbps, Rate24Mbps},
		{Rate24Mbps, Rate24Mbps},
		{Rate18Mbps, Rate12Mbps},
		{Rate12Mbps, Rate12Mbps},
		{Rate9Mbps, Rate6Mbps},
		{Rate6Mbps, Rate6Mbps},
		{Rate1Mbps, Rate1Mbps},
	}
	for _, c := range cases {
		if got := AckRate(c.data); got != c.ack {
			t.Errorf("AckRate(%v) = %v, want %v", c.data, got, c.ack)
		}
	}
}

func TestAckAirtimeShort(t *testing.T) {
	// ACK of a 54 Mbps frame rides at 24 Mbps and lasts well under 50 µs.
	if got := AckAirtime(Rate54Mbps); got > 50*time.Microsecond {
		t.Errorf("ACK airtime = %v, want < 50 µs", got)
	}
}

func TestChannelFrequencies(t *testing.T) {
	cases := []struct {
		ch   Channel
		freq float64
	}{
		{Channel1, 2.412e9},
		{Channel6, 2.437e9},
		{Channel11, 2.462e9},
	}
	for _, c := range cases {
		if got := c.ch.FreqHz(); got != c.freq {
			t.Errorf("%v frequency = %v, want %v", c.ch, got, c.freq)
		}
	}
}

func TestPoWiFiChannelSet(t *testing.T) {
	if len(PoWiFiChannels) != 3 {
		t.Fatalf("PoWiFi uses 3 channels, got %d", len(PoWiFiChannels))
	}
	// The channel span 2.401-2.473 GHz is the 72 MHz band the harvester
	// must cover (§3.1).
	span := PoWiFiChannels[2].FreqHz() + 11e6 - (PoWiFiChannels[0].FreqHz() - 11e6)
	if span != 72e6 {
		t.Errorf("band span = %v Hz, want 72 MHz", span)
	}
}

func TestSensitivityMonotone(t *testing.T) {
	prev := -200.0
	for _, r := range OFDMRates {
		s := MinSensitivityDBm(r)
		if s < prev {
			t.Fatalf("sensitivity improved at higher rate %v", r)
		}
		prev = s
	}
}

func TestBitsPerSymbolTable(t *testing.T) {
	// N_DBPS must equal rate * 4 µs symbol duration.
	for _, r := range OFDMRates {
		want := int(r.Mbps() * 4)
		if got := r.bitsPerOFDMSymbol(); got != want {
			t.Errorf("%v bits/symbol = %d, want %d", r, got, want)
		}
	}
}
