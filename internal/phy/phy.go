// Package phy models the 802.11b/g physical layer used by the PoWiFi
// router and its clients: bit rates, frame airtimes, channel frequencies
// and receiver thresholds.
//
// Airtime is the quantity everything else hinges on. The paper's router
// design works because a 1500-byte frame at 54 Mbps occupies the channel
// for only a couple of hundred microseconds, so power packets at the
// highest rate can fill the channel while yielding quickly to anyone else
// (§3.2's fairness argument, validated in Fig. 8).
package phy

import (
	"fmt"
	"time"
)

// Rate is an 802.11b/g bit rate.
type Rate int

// The 802.11b (DSSS) and 802.11g (OFDM) rate sets.
const (
	Rate1Mbps  Rate = 1
	Rate2Mbps  Rate = 2
	Rate5Mbps  Rate = 5 // 5.5 Mbps DSSS, rounded label
	Rate11Mbps Rate = 11
	Rate6Mbps  Rate = 6
	Rate9Mbps  Rate = 9
	Rate12Mbps Rate = 12
	Rate18Mbps Rate = 18
	Rate24Mbps Rate = 24
	Rate36Mbps Rate = 36
	Rate48Mbps Rate = 48
	Rate54Mbps Rate = 54
)

// OFDMRates lists the 802.11g rates in ascending order, as used by rate
// adaptation.
var OFDMRates = []Rate{Rate6Mbps, Rate9Mbps, Rate12Mbps, Rate18Mbps, Rate24Mbps, Rate36Mbps, Rate48Mbps, Rate54Mbps}

// IsDSSS reports whether the rate uses the 802.11b DSSS PHY (long
// preamble), as BlindUDP's 1 Mbps power packets do.
func (r Rate) IsDSSS() bool {
	switch r {
	case Rate1Mbps, Rate2Mbps, Rate5Mbps, Rate11Mbps:
		return true
	}
	return false
}

// Mbps returns the rate in megabits per second.
func (r Rate) Mbps() float64 {
	if r == Rate5Mbps {
		return 5.5
	}
	return float64(r)
}

// String implements fmt.Stringer.
func (r Rate) String() string { return fmt.Sprintf("%gMbps", r.Mbps()) }

// bitsPerOFDMSymbol returns N_DBPS for an OFDM rate.
func (r Rate) bitsPerOFDMSymbol() int {
	switch r {
	case Rate6Mbps:
		return 24
	case Rate9Mbps:
		return 36
	case Rate12Mbps:
		return 48
	case Rate18Mbps:
		return 72
	case Rate24Mbps:
		return 96
	case Rate36Mbps:
		return 144
	case Rate48Mbps:
		return 192
	case Rate54Mbps:
		return 216
	}
	return 0
}

// 802.11g MAC/PHY timing constants (ERP, 9 µs slots).
const (
	// SlotTime is one contention slot.
	SlotTime = 9 * time.Microsecond
	// SIFS separates a data frame from its ACK.
	SIFS = 10 * time.Microsecond
	// DIFS = SIFS + 2 slots is the idle period sensed before access.
	DIFS = SIFS + 2*SlotTime
	// CWMin and CWMax bound the binary-exponential contention window.
	CWMin = 15
	CWMax = 1023
	// MaxRetries is the retry limit before a unicast frame is dropped.
	MaxRetries = 7
	// OFDMPreamble covers the 802.11g preamble + SIGNAL field.
	OFDMPreamble = 20 * time.Microsecond
	// DSSSPreamble is the 802.11b long preamble + PLCP header.
	DSSSPreamble = 192 * time.Microsecond
	// MACOverheadBytes covers the MAC header, LLC/SNAP and FCS carried by
	// every data frame in addition to its network-layer payload.
	MACOverheadBytes = 36
	// ACKBytes is the length of an ACK control frame.
	ACKBytes = 14
)

// Airtime returns the on-air duration of a frame of the given total MAC
// length (including MACOverheadBytes) at the given rate.
func Airtime(bytes int, r Rate) time.Duration {
	if bytes < 0 {
		bytes = 0
	}
	if r.IsDSSS() {
		us := float64(bytes) * 8 / r.Mbps()
		return DSSSPreamble + time.Duration(us*1000)*time.Nanosecond
	}
	ndbps := r.bitsPerOFDMSymbol()
	if ndbps == 0 {
		return 0
	}
	// 16 service bits + payload + 6 tail bits, ceil to OFDM symbols of 4 µs.
	bits := 16 + 8*bytes + 6
	symbols := (bits + ndbps - 1) / ndbps
	return OFDMPreamble + time.Duration(symbols)*4*time.Microsecond
}

// AckRate returns the control-response rate used to acknowledge a data
// frame sent at r: the highest mandatory rate not exceeding r.
func AckRate(r Rate) Rate {
	if r.IsDSSS() {
		return Rate1Mbps
	}
	switch {
	case r >= Rate24Mbps:
		return Rate24Mbps
	case r >= Rate12Mbps:
		return Rate12Mbps
	default:
		return Rate6Mbps
	}
}

// AckAirtime returns the on-air duration of the ACK for a frame sent at r.
func AckAirtime(r Rate) time.Duration {
	return Airtime(ACKBytes, AckRate(r))
}

// Channel is a 2.4 GHz Wi-Fi channel number.
type Channel int

// The three non-overlapping 2.4 GHz channels PoWiFi uses.
const (
	Channel1  Channel = 1
	Channel6  Channel = 6
	Channel11 Channel = 11
)

// PoWiFiChannels is the channel set the PoWiFi router injects power
// traffic on.
var PoWiFiChannels = []Channel{Channel1, Channel6, Channel11}

// PoWiFiChannelIndex returns ch's index within PoWiFiChannels (0 for
// channel 1, 1 for channel 6, 2 for channel 11), or -1 for any other
// channel. Hot paths use it to replace map[Channel] lookups with fixed
// [3]-array indexing.
func PoWiFiChannelIndex(c Channel) int {
	switch c {
	case Channel1:
		return 0
	case Channel6:
		return 1
	case Channel11:
		return 2
	}
	return -1
}

// FreqHz returns the channel's centre frequency.
func (c Channel) FreqHz() float64 {
	return 2.407e9 + float64(c)*5e6
}

// String implements fmt.Stringer.
func (c Channel) String() string { return fmt.Sprintf("ch%d", int(c)) }

// Receiver thresholds.
const (
	// CSThresholdDBm is the carrier-sense (preamble-detect) threshold: a
	// station defers to any Wi-Fi signal above this power.
	CSThresholdDBm = -82.0
	// CaptureMarginDB is the SIR above which the stronger of two
	// overlapping frames still decodes (physical-layer capture).
	CaptureMarginDB = 10.0
)

// MinSensitivityDBm returns the receiver sensitivity required to decode a
// frame at the given rate (per typical 802.11g chipset specifications).
func MinSensitivityDBm(r Rate) float64 {
	switch r {
	case Rate1Mbps, Rate2Mbps:
		return -94
	case Rate5Mbps, Rate11Mbps:
		return -88
	case Rate6Mbps:
		return -90
	case Rate9Mbps:
		return -89
	case Rate12Mbps:
		return -87
	case Rate18Mbps:
		return -85
	case Rate24Mbps:
		return -82
	case Rate36Mbps:
		return -78
	case Rate48Mbps:
		return -74
	case Rate54Mbps:
		return -72
	}
	return -72
}
