// Package monitor reproduces the paper's measurement methodology (§4):
// a monitor-mode interface capturing every frame on a channel (airmon-ng +
// tcpdump), post-processed into channel occupancy
//
//	occupancy = Σ_i size_i/rate_i / total_duration
//
// over the frames sent by the router (tshark filtering by transmitter),
// exactly the formula the paper states. Records accumulate into fixed
// bins so day-long home deployments (60 s resolution, Fig. 14) and
// 500 ms-interval benchmark runs (Fig. 7) use the same machinery.
package monitor

import (
	"time"

	"repro/internal/medium"
	"repro/internal/stats"
)

// Monitor computes channel occupancy from captured frames.
type Monitor struct {
	// BinWidth is the occupancy sampling resolution.
	BinWidth time.Duration

	ch       *medium.Channel
	filter   map[int]bool // transmitter station IDs to count; nil = all
	bins     []time.Duration
	total    time.Duration
	started  time.Duration
	captured int
}

// New attaches a monitor to a channel. srcIDs restricts the capture to
// specific transmitter station IDs (the router's radios); pass none to
// capture everything on the channel.
func New(ch *medium.Channel, binWidth time.Duration, srcIDs ...int) *Monitor {
	m := &Monitor{
		BinWidth: binWidth,
		ch:       ch,
		started:  ch.Sched.Now(),
	}
	if len(srcIDs) > 0 {
		m.filter = make(map[int]bool, len(srcIDs))
		for _, id := range srcIDs {
			m.filter[id] = true
		}
	}
	ch.Observers = append(ch.Observers, m.capture)
	return m
}

// capture records one completed transmission.
func (m *Monitor) capture(tx *medium.Transmission) {
	if m.filter != nil && !m.filter[tx.Src.StationID()] {
		return
	}
	m.captured++
	// The paper computes size/rate from the radiotap headers, which
	// excludes the PLCP preamble; do the same. bytes·8/Mbps gives
	// microseconds on the air.
	onAir := time.Duration(float64(tx.Bytes*8)/tx.Rate.Mbps()*1000) * time.Nanosecond
	m.total += onAir
	bin := int((tx.End - m.started) / m.BinWidth)
	for bin >= len(m.bins) {
		m.bins = append(m.bins, 0)
	}
	m.bins[bin] += onAir
}

// Captured returns the number of frames recorded.
func (m *Monitor) Captured() int { return m.captured }

// MeanOccupancy returns total captured airtime divided by the elapsed
// capture duration, as a fraction (0.55 = 55%).
func (m *Monitor) MeanOccupancy() float64 {
	elapsed := m.ch.Sched.Now() - m.started
	if elapsed <= 0 {
		return 0
	}
	return float64(m.total) / float64(elapsed)
}

// BinOccupancies returns the per-bin occupancy fractions for all complete
// bins.
func (m *Monitor) BinOccupancies() []float64 {
	elapsed := m.ch.Sched.Now() - m.started
	complete := int(elapsed / m.BinWidth)
	out := make([]float64, complete)
	for i := 0; i < complete; i++ {
		if i < len(m.bins) {
			out[i] = float64(m.bins[i]) / float64(m.BinWidth)
		}
		// Bins with no captured frames stay at zero occupancy.
	}
	return out
}

// OccupancyCDF returns the empirical CDF of per-bin occupancy percentages
// (0–100+), the form Figs. 7 and 15 plot.
func (m *Monitor) OccupancyCDF() *stats.CDF {
	bins := m.BinOccupancies()
	pct := make([]float64, len(bins))
	for i, b := range bins {
		pct[i] = b * 100
	}
	return stats.NewCDF(pct)
}

// CumulativeBins sums per-bin occupancy percentages across several
// monitors (the paper's "cumulative occupancy" across channels 1/6/11,
// which can exceed 100%).
func CumulativeBins(monitors ...*Monitor) []float64 {
	n := 0
	for _, m := range monitors {
		if b := len(m.BinOccupancies()); b > n {
			n = b
		}
	}
	out := make([]float64, n)
	for _, m := range monitors {
		for i, v := range m.BinOccupancies() {
			out[i] += v * 100
		}
	}
	return out
}
