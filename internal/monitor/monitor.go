// Package monitor reproduces the paper's measurement methodology (§4):
// a monitor-mode interface capturing every frame on a channel (airmon-ng +
// tcpdump), post-processed into channel occupancy
//
//	occupancy = Σ_i size_i/rate_i / total_duration
//
// over the frames sent by the router (tshark filtering by transmitter),
// exactly the formula the paper states. Records accumulate into fixed
// bins so day-long home deployments (60 s resolution, Fig. 14) and
// 500 ms-interval benchmark runs (Fig. 7) use the same machinery.
package monitor

import (
	"time"

	"repro/internal/medium"
	"repro/internal/phy"
	"repro/internal/stats"
)

// Monitor computes channel occupancy from captured frames.
type Monitor struct {
	// BinWidth is the occupancy sampling resolution.
	BinWidth time.Duration

	ch     *medium.Channel
	filter []int // transmitter station IDs to count; empty = all. A
	// monitor filters on one or two radios, so a linear scan beats a map
	// on the per-frame capture path.
	bins     []time.Duration
	total    time.Duration
	started  time.Duration
	captured int

	// One-entry airtime memo: captures are dominated by a run's one or
	// two (size, rate) combinations, and the duration division is pure.
	lastBytes int
	lastRate  phy.Rate
	lastOnAir time.Duration
}

// New attaches a monitor to a channel. srcIDs restricts the capture to
// specific transmitter station IDs (the router's radios); pass none to
// capture everything on the channel.
func New(ch *medium.Channel, binWidth time.Duration, srcIDs ...int) *Monitor {
	m := &Monitor{
		BinWidth: binWidth,
		ch:       ch,
		started:  ch.Sched.Now(),
	}
	m.filter = append(m.filter, srcIDs...)
	ch.Observers = append(ch.Observers, m.capture)
	return m
}

// passes reports whether the transmitter is in the capture filter.
func (m *Monitor) passes(id int) bool {
	for _, want := range m.filter {
		if want == id {
			return true
		}
	}
	return false
}

// capture records one completed transmission.
func (m *Monitor) capture(tx *medium.Transmission) {
	if len(m.filter) > 0 && !m.passes(tx.Src.StationID()) {
		return
	}
	m.captured++
	// The paper computes size/rate from the radiotap headers, which
	// excludes the PLCP preamble; do the same. bytes·8/Mbps gives
	// microseconds on the air.
	if tx.Bytes != m.lastBytes || tx.Rate != m.lastRate {
		m.lastBytes, m.lastRate = tx.Bytes, tx.Rate
		m.lastOnAir = time.Duration(float64(tx.Bytes*8)/tx.Rate.Mbps()*1000) * time.Nanosecond
	}
	onAir := m.lastOnAir
	m.total += onAir
	bin := int((tx.End - m.started) / m.BinWidth)
	for bin >= len(m.bins) {
		m.bins = append(m.bins, 0)
	}
	m.bins[bin] += onAir
}

// Captured returns the number of frames recorded.
func (m *Monitor) Captured() int { return m.captured }

// Reset discards all captured state and restarts the capture at the
// channel's current (typically just-reset) virtual time, keeping the
// observer attachment, source filter and bin storage. A reset monitor
// reports identically to one freshly attached at the same instant.
func (m *Monitor) Reset() {
	m.started = m.ch.Sched.Now()
	m.bins = m.bins[:0]
	m.total = 0
	m.captured = 0
}

// MeanOccupancy returns total captured airtime divided by the elapsed
// capture duration, as a fraction (0.55 = 55%).
func (m *Monitor) MeanOccupancy() float64 {
	elapsed := m.ch.Sched.Now() - m.started
	if elapsed <= 0 {
		return 0
	}
	return float64(m.total) / float64(elapsed)
}

// BinOccupancies returns the per-bin occupancy fractions for all complete
// bins.
func (m *Monitor) BinOccupancies() []float64 {
	elapsed := m.ch.Sched.Now() - m.started
	complete := int(elapsed / m.BinWidth)
	out := make([]float64, complete)
	for i := 0; i < complete; i++ {
		if i < len(m.bins) {
			out[i] = float64(m.bins[i]) / float64(m.BinWidth)
		}
		// Bins with no captured frames stay at zero occupancy.
	}
	return out
}

// OccupancyCDF returns the empirical CDF of per-bin occupancy percentages
// (0–100+), the form Figs. 7 and 15 plot.
func (m *Monitor) OccupancyCDF() *stats.CDF {
	bins := m.BinOccupancies()
	pct := make([]float64, len(bins))
	for i, b := range bins {
		pct[i] = b * 100
	}
	return stats.NewCDF(pct)
}

// CumulativeBins sums per-bin occupancy percentages across several
// monitors (the paper's "cumulative occupancy" across channels 1/6/11,
// which can exceed 100%).
func CumulativeBins(monitors ...*Monitor) []float64 {
	n := 0
	for _, m := range monitors {
		if b := len(m.BinOccupancies()); b > n {
			n = b
		}
	}
	out := make([]float64, n)
	for _, m := range monitors {
		for i, v := range m.BinOccupancies() {
			out[i] += v * 100
		}
	}
	return out
}
