package monitor

import (
	"math"
	"testing"
	"time"

	"repro/internal/eventsim"
	"repro/internal/mac"
	"repro/internal/medium"
	"repro/internal/phy"
	"repro/internal/xrand"
)

func rig() (*eventsim.Scheduler, *medium.Channel, *mac.Station, *mac.Station) {
	sched := eventsim.New()
	ch := medium.NewChannel(phy.Channel1, sched)
	a := mac.NewStation(1, "a", medium.Location{}, ch, xrand.New(1))
	b := mac.NewStation(2, "b", medium.Location{X: 1}, ch, xrand.New(2))
	return sched, ch, a, b
}

func TestCapturesAllFramesWithoutFilter(t *testing.T) {
	sched, ch, a, _ := rig()
	mon := New(ch, 100*time.Millisecond)
	for i := 0; i < 5; i++ {
		a.Enqueue(&mac.Frame{DstID: medium.Broadcast, Bytes: 1500, Kind: medium.KindData})
	}
	sched.Run()
	if mon.Captured() != 5 {
		t.Errorf("captured %d frames, want 5", mon.Captured())
	}
}

func TestFilterBySource(t *testing.T) {
	sched, ch, a, b := rig()
	monA := New(ch, 100*time.Millisecond, a.StationID())
	for i := 0; i < 3; i++ {
		a.Enqueue(&mac.Frame{DstID: medium.Broadcast, Bytes: 1500, Kind: medium.KindData})
		b.Enqueue(&mac.Frame{DstID: medium.Broadcast, Bytes: 1500, Kind: medium.KindData})
	}
	sched.Run()
	if monA.Captured() != 3 {
		t.Errorf("filtered monitor captured %d, want 3", monA.Captured())
	}
}

func TestMeanOccupancyFormula(t *testing.T) {
	// One 1536-byte frame at 54 Mbps in a 10 ms window:
	// size/rate = 1536*8/54e6 = 227.6 µs -> occupancy ≈ 2.28%.
	sched, ch, a, _ := rig()
	mon := New(ch, 10*time.Millisecond)
	a.Enqueue(&mac.Frame{DstID: medium.Broadcast, Bytes: 1500, Kind: medium.KindData, FixedRate: phy.Rate54Mbps})
	sched.RunUntil(10 * time.Millisecond)
	want := (1536.0 * 8 / 54e6) / 0.010
	if got := mon.MeanOccupancy(); math.Abs(got-want) > 0.001 {
		t.Errorf("occupancy = %v, want %v", got, want)
	}
}

func TestBinOccupanciesCompleteBinsOnly(t *testing.T) {
	sched, ch, a, _ := rig()
	mon := New(ch, 10*time.Millisecond)
	a.Enqueue(&mac.Frame{DstID: medium.Broadcast, Bytes: 1500, Kind: medium.KindData})
	sched.RunUntil(25 * time.Millisecond)
	bins := mon.BinOccupancies()
	if len(bins) != 2 {
		t.Fatalf("complete bins = %d, want 2", len(bins))
	}
	if bins[0] <= 0 {
		t.Error("first bin should contain the frame's airtime")
	}
	if bins[1] != 0 {
		t.Error("second bin should be empty")
	}
}

func TestOccupancyCDFInPercent(t *testing.T) {
	sched, ch, a, _ := rig()
	mon := New(ch, 5*time.Millisecond)
	var feed func()
	feed = func() { a.Enqueue(&mac.Frame{DstID: medium.Broadcast, Bytes: 1500, Kind: medium.KindData}) }
	a.OnSent = func(f *mac.Frame, ok bool) { feed() }
	feed()
	sched.RunUntil(100 * time.Millisecond)
	cdf := mon.OccupancyCDF()
	if cdf.N() == 0 {
		t.Fatal("empty occupancy CDF")
	}
	// A saturated single station occupies ~55-75% of the channel.
	med := cdf.Quantile(0.5)
	if med < 40 || med > 85 {
		t.Errorf("median occupancy = %v%%, want 40-85%%", med)
	}
}

func TestCumulativeBinsSum(t *testing.T) {
	schedA := eventsim.New()
	chA := medium.NewChannel(phy.Channel1, schedA)
	a := mac.NewStation(1, "a", medium.Location{}, chA, xrand.New(1))
	monA := New(chA, 10*time.Millisecond)
	chB := medium.NewChannel(phy.Channel6, schedA)
	b := mac.NewStation(1, "b", medium.Location{}, chB, xrand.New(2))
	monB := New(chB, 10*time.Millisecond)
	a.Enqueue(&mac.Frame{DstID: medium.Broadcast, Bytes: 1500, Kind: medium.KindData})
	b.Enqueue(&mac.Frame{DstID: medium.Broadcast, Bytes: 1500, Kind: medium.KindData})
	schedA.RunUntil(10 * time.Millisecond)
	cum := CumulativeBins(monA, monB)
	if len(cum) != 1 {
		t.Fatalf("cumulative bins = %d, want 1", len(cum))
	}
	wantSingle := monA.BinOccupancies()[0] * 100
	if math.Abs(cum[0]-2*wantSingle) > 1e-9 {
		t.Errorf("cumulative = %v, want %v", cum[0], 2*wantSingle)
	}
}

func TestCaptureIncludesCollidedFrames(t *testing.T) {
	// tcpdump on a monitor interface records transmissions regardless of
	// whether receivers decoded them; the occupancy metric counts them
	// too. Force a synchronized collision and verify both frames count.
	sched, ch, a, b := rig()
	mon := New(ch, 100*time.Millisecond)
	a.Enqueue(&mac.Frame{DstID: medium.Broadcast, Bytes: 1500, Kind: medium.KindData})
	b.Enqueue(&mac.Frame{DstID: medium.Broadcast, Bytes: 1500, Kind: medium.KindData})
	sched.Run()
	if mon.Captured() != 2 {
		t.Errorf("captured %d frames, want 2 (collisions still burn airtime)", mon.Captured())
	}
	_ = ch
}
