package lifecycle

import (
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/harvester"
	"repro/internal/sensors"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Engine constants. The storage-capacitor sizing matches the §5.1
// transient simulation (one 2.4 V → 1.9 V discharge window holds
// exactly one 2.77 µJ read); the dark-decay time constant models the
// small storage node bleeding out through leakage within a fraction of
// a logging bin once the chain goes dark, which is what forces a full
// cold start after every RF outage (the Fig. 1 story at bin
// resolution). The Jawbone constants are the §8(a) calibration from
// the Fig. 16 runner: the USB charger sits 6 cm from the router and
// converts incident RF to battery charge at a fixed high-power chain
// efficiency.
const (
	tempStoreC    = 2.6e-6
	darkDecayTauS = 30.0
	jawboneEff    = 0.055
	jawboneDistFt = 6.0 / 30.48
)

// State is the device's position in the boot/brownout/operate machine.
type State int

const (
	// StateBoot: cold start — the device has made no progress since
	// Begin (or since recovering storage was drained) and is working
	// toward its boot threshold.
	StateBoot State = iota
	// StateOperate: the device made progress last bin (updates, frames,
	// or net charge).
	StateOperate
	// StateBrownout: the device operated and then lost the energy to
	// continue; it must clear its boot threshold again.
	StateBrownout
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateBoot:
		return "boot"
	case StateOperate:
		return "operate"
	case StateBrownout:
		return "brownout"
	}
	return "invalid"
}

// Policy is the configurable duty-cycle policy a device runs.
type Policy struct {
	// UpdateEvery is the target interval between updates for the
	// duty-cycled archetypes: the recharging temperature sensor spends
	// one read energy per interval, and a positive value caps the
	// camera's frame rate. Zero selects the archetype default
	// (60 s reads for the recharging sensor; uncapped, energy-limited
	// frames for the camera). The battery-free sensor is always
	// energy-neutral — harvest sets its rate — and ignores this field.
	UpdateEvery time.Duration
	// InitialSoC is the battery's state of charge at Begin, in (0, 1].
	// Non-positive selects the archetype default (5% for the recharging
	// sensor's mostly drained pack; empty for the camera cell and the
	// chargers — for which the default already is empty). Ignored by
	// the battery-free sensor.
	InitialSoC float64
	// FullSoC is the state of charge at which a charger counts as fully
	// charged (time-to-full metric). Zero selects the default 0.99.
	FullSoC float64
}

// withDefaults resolves the archetype's default policy.
func (p Policy) withDefaults(k Kind) Policy {
	if p.UpdateEvery == 0 && k == RechargingTemp {
		p.UpdateEvery = time.Minute
	}
	if p.InitialSoC <= 0 {
		if k == RechargingTemp {
			p.InitialSoC = 0.05
		} else {
			p.InitialSoC = 0
		}
	}
	if p.FullSoC == 0 {
		p.FullSoC = 0.99
	}
	return p
}

// DefaultPolicy returns the archetype's default duty-cycle policy.
func DefaultPolicy(k Kind) Policy {
	return Policy{}.withDefaults(k)
}

// Metrics is one home run's time-domain summary.
type Metrics struct {
	Kind Kind
	// Bins and TotalS count the logging bins visited and the simulated
	// seconds they span.
	Bins   int
	TotalS float64
	// OperatingS is the time the device spent operating (time-weighted;
	// a bin that boots midway contributes its post-boot remainder).
	OperatingS float64
	// OutageBins counts bins with no progress — the integer form the
	// fleet pools exactly across workers.
	OutageBins int
	// Updates counts sensor reads (fractional: rates integrate over
	// partial bins); Frames counts whole camera captures.
	Updates float64
	Frames  int
	// FirstUpdateS is the time of the first update/frame since Begin
	// (+Inf if none) — the paper's time-to-first-update.
	FirstUpdateS float64
	// TimeToFullS is when a charger first reached the policy's FullSoC
	// (+Inf if never, and for non-chargers that never fill).
	TimeToFullS float64
	// FinalSoC and MinSoC track the battery's state-of-charge
	// trajectory endpoints (NaN for the battery-free sensor).
	FinalSoC, MinSoC float64
}

// OutageFraction returns the time-weighted fraction of the run the
// device was not operating.
func (m Metrics) OutageFraction() float64 {
	if m.TotalS <= 0 {
		return 0
	}
	return 1 - m.OperatingS/m.TotalS
}

// BinStats is the per-bin lifecycle observation streamed to OnBin:
// what the fleet layer folds into its pooled (exactly mergeable)
// aggregates while discarding the trace.
type BinStats struct {
	Bin int
	// Updates made this bin (reads or frames); IntervalS is their mean
	// spacing (0 when none).
	Updates   float64
	IntervalS float64
	// SoCPct is the battery state of charge at bin end in percent (NaN
	// for the battery-free sensor).
	SoCPct float64
	// HarvestW is the archetype chain's net power this bin (negative
	// when quiescent drain exceeds harvest).
	HarvestW float64
	// Outage marks a bin with no progress.
	Outage bool
}

// Device is one stateful Wi-Fi-powered device: an archetype's RF chain
// plus storage, stepped across the logging bins of a home deployment.
// It implements deploy.BinVisitor; drive it with deploy.RunVisitor (or
// a pooled Sampler's RunVisitor) between Begin and Metrics. A Device
// is not safe for concurrent use, and like the deploy sampler it is
// pooled: Begin re-derives all run state, so reuse across homes is
// bit-for-bit invisible.
type Device struct {
	Kind   Kind
	Policy Policy
	// Exact forces the chain evaluations onto the direct operating-point
	// solver (see core.TempSensorDevice.Exact). Set before Begin.
	Exact bool
	// OnBin, if non-nil, receives one BinStats per bin.
	OnBin func(BinStats)
	// Tele, when set, counts lifecycle activity (boot/brownout
	// transitions, ledger events); SurfTele counts the archetype chains'
	// surface-query outcomes. Both are strictly out of band and must be
	// set before Begin (Begin propagates SurfTele onto the chains).
	Tele     *telemetry.LifecycleCounters
	SurfTele *telemetry.SurfaceCounters
	// Trace, when set, records boot/brownout transitions (and, through
	// the chains, surface anomalies) into the current home's flight
	// recorder. Out of band like Tele; set before Begin.
	Trace *trace.HomeTrace

	// Archetype chains. temp is the §5.1 battery-free chain used only
	// to size the storage windows; chain is the bq25570 front end the
	// battery-backed archetypes evaluate per bin; cam adds the camera's
	// standby drain.
	chain   *core.TempSensorDevice
	cam     *core.CameraDevice
	battery *harvester.Battery

	readE    float64 // one sensor read (2.77 µJ)
	frameE   float64 // one camera frame (10.4 mJ)
	releaseE float64 // storage-cap energy at the Seiko 2.4 V release
	// rebootE is the restart hysteresis threshold: a browned-out MCU
	// stays down until the battery banks ~100 reads' worth, so a home
	// hovering at the brownout edge doesn't flap every bin (the
	// battery-backed analogue of the Seiko's 300 mV-arm / 2.4 V-release
	// window; a gate, not an energy deduction).
	rebootE float64

	jawboneFullW [3]float64 // full per-channel received power at 6 cm

	// Run state, re-derived by Begin.
	distFt      float64
	dtS         float64
	state       State
	capE        float64 // battery-free storage-cap energy
	frameCredit float64 // duty-cycle frame budget carried across bins
	m           Metrics
}

// NewDevice builds a pooled device of the given archetype. The zero
// Policy selects the archetype defaults (see DefaultPolicy).
func NewDevice(k Kind, pol Policy) *Device {
	d := &Device{Kind: k, Policy: pol.withDefaults(k)}
	sensor := sensors.NewTemperatureSensor()
	d.readE = sensor.ReadEnergyJ
	seiko := harvester.NewSeikoS882Z()
	d.releaseE = 0.5 * tempStoreC * seiko.ReleaseV * seiko.ReleaseV
	d.rebootE = 100 * d.readE // restart hysteresis: ~100 reads banked before leaving brownout

	switch k {
	case TempSensor:
		// The deployment runner already evaluates the battery-free
		// chain per bin (BinSample.SensorRate/NetHarvestedW); the
		// device only threads the storage capacitor across bins.
	case RechargingTemp:
		d.chain = core.NewRechargingTempSensor()
		d.battery = d.chain.Battery
	case Camera:
		cam := core.NewRechargingCamera()
		d.cam = cam
		d.battery = cam.Battery
		d.frameE = cam.Camera.FrameEnergyJ
	case Jawbone:
		d.battery = harvester.NewJawboneUP24Battery()
		link := core.PoWiFiLink(jawboneDistFt, 3) // occupancy 1 per channel
		chans, _ := link.FullChannelPowers()
		for i := range chans {
			d.jawboneFullW[i] = chans[i].PowerW
		}
	case LiIon:
		d.chain = core.NewRechargingTempSensor()
		d.chain.Battery = harvester.NewLiIonCoinCell()
		d.battery = d.chain.Battery
	case NiMH:
		d.chain = core.NewRechargingTempSensor()
		d.battery = d.chain.Battery
	default:
		panic("lifecycle: unknown archetype")
	}
	return d
}

// Battery exposes the device's storage element (nil for the
// battery-free sensor) — the examples read trajectories off it.
func (d *Device) Battery() *harvester.Battery { return d.battery }

// State returns the device's current lifecycle state.
func (d *Device) State() State { return d.state }

// Begin arms the device for one home run: the RF geometry is pinned to
// the home's sensor placement (the Jawbone charger keeps its fixed
// 6 cm USB perch), storage is reset to the policy's initial state, and
// metrics are cleared. binWidth must match the run's logging bin
// width; a non-positive value resolves to the deploy default, matching
// what RunVisitor runs with when the caller leaves Options.BinWidth
// zero. A pooled Device after Begin is indistinguishable from a fresh
// one.
func (d *Device) Begin(sensorFt float64, binWidth time.Duration) {
	if binWidth <= 0 {
		binWidth = deploy.DefaultOptions().BinWidth
	}
	d.distFt = sensorFt
	d.dtS = binWidth.Seconds()
	d.state = StateBoot
	d.capE = 0
	d.frameCredit = 0
	d.m = Metrics{
		Kind:         d.Kind,
		FirstUpdateS: math.Inf(1),
		TimeToFullS:  math.Inf(1),
		FinalSoC:     math.NaN(),
		MinSoC:       math.NaN(),
	}
	if d.chain != nil {
		d.chain.Exact = d.Exact
		d.chain.Tele = d.SurfTele
		d.chain.Trace = d.Trace
	}
	if d.cam != nil {
		d.cam.Exact = d.Exact
		d.cam.Tele = d.SurfTele
	}
	if d.battery != nil {
		d.battery.SetSoC(d.Policy.InitialSoC)
		d.m.FinalSoC = d.battery.SoC()
		d.m.MinSoC = d.m.FinalSoC
		if d.Kind == RechargingTemp && d.battery.StoredEnergy() >= d.rebootE {
			// The battery-assisted sensor needs no cold start (§3.1:
			// the bq25570 boots from the battery).
			d.state = StateOperate
		}
	}
}

// Metrics returns the run summary accumulated since Begin.
func (d *Device) Metrics() Metrics { return d.m }

// VisitBin advances the ledger by one logging bin. It implements
// deploy.BinVisitor, so a Device can be handed directly to
// deploy.RunVisitor.
func (d *Device) VisitBin(s deploy.BinSample) {
	dt := d.dtS
	binStart := float64(s.Bin) * dt
	var b BinStats
	b.Bin = s.Bin
	b.SoCPct = math.NaN()

	switch d.Kind {
	case TempSensor:
		d.stepTempSensor(s, binStart, dt, &b)
	case RechargingTemp:
		d.stepRechargingTemp(s, binStart, dt, &b)
	case Camera:
		d.stepCamera(s, binStart, dt, &b)
	default:
		d.stepCharger(s, binStart, dt, &b)
	}

	d.m.Bins++
	d.m.TotalS += dt
	if b.Outage {
		d.m.OutageBins++
		if d.state == StateOperate {
			d.state = StateBrownout
			d.Tele.Brownout()
			d.Trace.Brownout(s.Bin)
		}
	} else {
		if d.state != StateOperate {
			d.Tele.Boot()
			d.Trace.Boot(s.Bin)
		}
		d.state = StateOperate
	}
	if d.battery != nil {
		soc := d.battery.SoC()
		b.SoCPct = soc * 100
		d.m.FinalSoC = soc
		if soc < d.m.MinSoC {
			d.m.MinSoC = soc
		}
	}
	if d.OnBin != nil {
		d.Tele.LedgerEvent()
		d.OnBin(b)
	}
}

// VisitBatch advances the ledger over a finished batch of bins — the
// batched fleet kernel's ledger stage. The per-bin state threading is
// inherently sequential (each bin's storage state feeds the next), so
// the batch form walks the struct-of-arrays columns in order; it visits
// exactly the bins VisitBin would and leaves identical state, metrics
// and OnBin observations.
func (d *Device) VisitBatch(b *deploy.BinBatch) {
	for i, n := 0, b.Len(); i < n; i++ {
		d.VisitBin(b.Sample(i))
	}
}

// chainLink assembles the bin's power link for the bq25570-backed
// archetypes: the standard PoWiFi router at the home's sensor
// placement under this bin's measured occupancy.
func (d *Device) chainLink(s deploy.BinSample) core.PowerLink {
	return core.PoWiFiLinkOccupancy(d.distFt, s.Occupancy)
}

// stepTempSensor threads the battery-free sensor's storage capacitor
// across bins: dark bins bleed the node out (forcing a cold start),
// powered bins first charge it to the Seiko's 2.4 V release and then
// read energy-neutrally for the remainder. The runner has already
// evaluated the battery-free chain for this bin, so the step costs no
// extra solve.
func (d *Device) stepTempSensor(s deploy.BinSample, binStart, dt float64, b *BinStats) {
	p := s.NetHarvestedW
	b.HarvestW = p
	if p <= 0 || s.SensorRate <= 0 {
		// Chain dark: the storage node decays toward zero, so the next
		// powered bin pays the cold-start charge again.
		d.capE *= math.Exp(-dt / darkDecayTauS)
		b.Outage = true
		return
	}
	tOp := dt
	if d.capE < d.releaseE {
		tCharge := (d.releaseE - d.capE) / p
		if tCharge >= dt {
			// Still cold-starting at bin end.
			d.capE += p * dt
			b.Outage = true
			return
		}
		d.capE = d.releaseE
		tOp = dt - tCharge
	}
	// Operating: reads are energy-neutral at the bin's measured rate
	// (the release→brownout window holds exactly one read, so the
	// capacitor rides the 1.9-2.4 V band and carries releaseE forward).
	updates := s.SensorRate * tOp
	if updates > 0 && math.IsInf(d.m.FirstUpdateS, 1) {
		d.m.FirstUpdateS = binStart + (dt - tOp) + 1/s.SensorRate
	}
	d.m.OperatingS += tOp
	d.m.Updates += updates
	b.Updates = updates
	b.IntervalS = 1 / s.SensorRate
}

// stepRechargingTemp runs the battery-backed sensor's duty cycle: the
// bq25570 chain charges (or quiescently drains) the NiMH pack, and the
// policy spends one read energy per UpdateEvery while the pack lasts.
func (d *Device) stepRechargingTemp(s deploy.BinSample, binStart, dt float64, b *BinStats) {
	d.battery.SelfDischarge(dt)
	_, p := d.chain.Evaluate(d.chainLink(s))
	b.HarvestW = p
	if p > 0 {
		d.battery.Charge(p * dt)
	} else if p < 0 {
		d.battery.Discharge(-p * dt)
	}
	if d.state != StateOperate && d.battery.StoredEnergy() < d.rebootE {
		b.Outage = true // browned out and still below the restart threshold
		return
	}
	every := d.Policy.UpdateEvery.Seconds()
	need := dt / every * d.readE
	got := d.battery.Discharge(need)
	updates := got / d.readE
	if updates <= 0 {
		b.Outage = true
		return
	}
	if math.IsInf(d.m.FirstUpdateS, 1) {
		d.m.FirstUpdateS = binStart + math.Min(every, dt)
	}
	// A bin that runs dry midway still counts its operating prefix; the
	// next bin's empty battery then fails the reboot gate and drives
	// the Operate → Brownout transition.
	d.m.OperatingS += dt * (got / need)
	d.m.Updates += updates
	b.Updates = updates
	b.IntervalS = every
}

// stepCamera banks the bq25570 chain's net output (after standby) into
// the coin cell and captures 10.4 mJ frames as energy and the policy's
// frame-rate cap allow.
func (d *Device) stepCamera(s deploy.BinSample, binStart, dt float64, b *BinStats) {
	d.battery.SelfDischarge(dt)
	p := d.cam.Evaluate(d.chainLink(s))
	b.HarvestW = p
	s0 := d.battery.StoredEnergy()
	if p > 0 {
		d.battery.Charge(p * dt)
	} else if p < 0 {
		d.battery.Discharge(-p * dt)
	}
	s1 := d.battery.StoredEnergy()

	// The duty-cycle policy caps frames per bin; credit carries across
	// bins so UpdateEvery > BinWidth still frames eventually.
	frames := 0
	if every := d.Policy.UpdateEvery.Seconds(); every > 0 {
		d.frameCredit += dt / every
		for d.frameCredit >= 1 && d.battery.StoredEnergy() >= d.frameE {
			d.battery.Discharge(d.frameE)
			d.frameCredit--
			frames++
		}
	} else {
		for d.battery.StoredEnergy() >= d.frameE {
			d.battery.Discharge(d.frameE)
			frames++
		}
	}
	if frames == 0 {
		// No capture: progress only if the cell is actually filling.
		b.Outage = s1 <= s0
		if !b.Outage {
			d.m.OperatingS += dt
		}
		return
	}
	if math.IsInf(d.m.FirstUpdateS, 1) {
		// First frame: interpolate the stored-energy crossing of one
		// frame's worth within this bin.
		t := 0.0
		if s1 > s0 && s0 < d.frameE {
			t = dt * (d.frameE - s0) / (s1 - s0)
		}
		d.m.FirstUpdateS = binStart + t
	}
	d.m.OperatingS += dt
	d.m.Updates += float64(frames)
	d.m.Frames += frames
	b.Updates = float64(frames)
	b.IntervalS = dt / float64(frames)
}

// stepCharger integrates pure battery charging: the Jawbone's fixed
// high-power USB chain, or the bq25570 chain at the home's sensor
// placement for the Li-Ion/NiMH cells. Progress means positive net
// charge; the headline metric is the interpolated time at which the
// battery first reaches the policy's FullSoC.
func (d *Device) stepCharger(s deploy.BinSample, binStart, dt float64, b *BinStats) {
	d.battery.SelfDischarge(dt)
	var p float64
	if d.Kind == Jawbone {
		for i, w := range d.jawboneFullW {
			occ := s.Occupancy[i]
			if occ < 0 {
				occ = 0
			}
			if occ > 1 {
				occ = 1
			}
			p += w * occ
		}
		p *= jawboneEff
	} else {
		_, p = d.chain.Evaluate(d.chainLink(s))
	}
	b.HarvestW = p
	s0 := d.battery.StoredEnergy()
	if p > 0 {
		d.battery.Charge(p * dt)
	} else if p < 0 {
		d.battery.Discharge(-p * dt)
	}
	s1 := d.battery.StoredEnergy()
	if s1 <= s0 {
		b.Outage = true
		return
	}
	d.m.OperatingS += dt
	fullE := d.Policy.FullSoC * d.battery.CapacityJ
	if math.IsInf(d.m.TimeToFullS, 1) && s1 >= fullE {
		d.m.TimeToFullS = binStart + dt*(fullE-s0)/(s1-s0)
	}
}

// Group runs several devices over one home in a single deployment
// pass — a household with a sensor on the shelf, a camera by the door
// and a tracker on the charger. It implements deploy.BinVisitor by
// fanning each bin out to every device in order.
type Group []*Device

// Begin arms every device in the group.
func (g Group) Begin(sensorFt float64, binWidth time.Duration) {
	for _, d := range g {
		d.Begin(sensorFt, binWidth)
	}
}

// VisitBin implements deploy.BinVisitor.
func (g Group) VisitBin(s deploy.BinSample) {
	for _, d := range g {
		d.VisitBin(s)
	}
}
