// Package lifecycle is the stateful device-lifecycle engine: it
// threads storage state of charge across the logging bins the
// deployment runner (internal/deploy) produces, turning the repo's
// stateless per-bin metrics into the paper's time-domain results —
// battery recharge curves (§5.2, §8a), camera frames accumulating
// across charge/discharge cycles (§6.2), and sensor update intervals
// over 24-hour home traces (§7).
//
// A Device wraps one device archetype (battery-free temperature
// sensor, NiMH-recharging temperature sensor, duty-cycled camera, or a
// pure battery charger on the Jawbone/Li-Ion/NiMH models in
// internal/harvester) with a boot/brownout/operate state machine and a
// per-bin harvest-versus-consume energy ledger: harvested energy is
// banked through the archetype's RF chain (served from the shared
// operating-point surface), self-discharge and cold-boot thresholds
// are applied, and the configured duty-cycle policy spends the banked
// energy on sensor reads or camera frames. The engine emits
// time-domain metrics — time to first update, update-interval
// distribution, outage fraction, frames captured, state-of-charge
// trajectory, time to full charge — per home and, through
// internal/fleet's mixed device populations, at fleet scale.
//
// Everything is deterministic in the home's (config, options) alone:
// a Device is a deploy.BinVisitor whose state is fully re-derived by
// Begin, so a pooled Device reused across homes reproduces a fresh one
// bit for bit (pinned by the parity suite).
package lifecycle

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind selects a device archetype.
type Kind int

// The six archetypes the engine models. The first three are the
// paper's sensing prototypes; the last three are pure battery chargers
// on the storage models of internal/harvester.
const (
	// TempSensor is the §5.1 battery-free temperature sensor: Seiko
	// charge-pump chain, a 2.6 µF storage capacitor, cold start from
	// the 300 mV threshold, energy-neutral reads.
	TempSensor Kind = iota
	// RechargingTemp is the §5.1 battery-recharging temperature sensor:
	// bq25570 chain over a 2xAAA NiMH pack, duty-cycled reads.
	RechargingTemp
	// Camera is the §5.2 battery-recharging camera: bq25570 chain over
	// the Li-Ion coin cell, 10.4 mJ frames captured as banked energy
	// allows.
	Camera
	// Jawbone is the §8(a) USB-charger demonstration: a Jawbone UP24
	// battery recharged by the high-power charger chain 6 cm from the
	// router.
	Jawbone
	// LiIon recharges the MS412FE coin cell through the bq25570 chain
	// at the home's sensor placement.
	LiIon
	// NiMH recharges the 2xAAA pack through the bq25570 chain at the
	// home's sensor placement.
	NiMH

	// NumKinds counts the archetypes; Mix is indexed by Kind.
	NumKinds int = iota
)

var kindNames = [NumKinds]string{"temp", "rtemp", "camera", "jawbone", "liion", "nimh"}

// String returns the archetype's CLI name.
func (k Kind) String() string {
	if k < 0 || int(k) >= NumKinds {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// ParseKind resolves a CLI name to its archetype.
func ParseKind(s string) (Kind, error) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("lifecycle: unknown device archetype %q (want one of %s)",
		s, strings.Join(kindNames[:], ", "))
}

// Kinds returns the archetypes in canonical order.
func Kinds() []Kind {
	ks := make([]Kind, NumKinds)
	for i := range ks {
		ks[i] = Kind(i)
	}
	return ks
}

// Charger reports whether the archetype is a pure battery charger (no
// sensing duty cycle; its headline metric is time to full charge).
func (k Kind) Charger() bool { return k == Jawbone || k == LiIon || k == NiMH }

// BatteryBacked reports whether the archetype carries a battery whose
// state of charge the ledger threads across bins.
func (k Kind) BatteryBacked() bool { return k != TempSensor }

// Mix holds per-archetype population shares, indexed by Kind. Shares
// are relative weights (Pick normalizes by the total), so
// "temp=1,camera=1" and "temp=0.5,camera=0.5" describe the same
// population. The zero Mix disables the lifecycle engine. A fixed
// array keeps the type comparable, which the fleet configuration's
// zero-value detection relies on.
type Mix [NumKinds]float64

// ParseMix parses the CLI form "temp=0.5,camera=0.3,jawbone=0.2".
func ParseMix(s string) (Mix, error) {
	var m Mix
	if strings.TrimSpace(s) == "" {
		return m, fmt.Errorf("lifecycle: empty device mix")
	}
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return Mix{}, fmt.Errorf("lifecycle: device share %q is not name=weight", part)
		}
		k, err := ParseKind(strings.TrimSpace(name))
		if err != nil {
			return Mix{}, err
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return Mix{}, fmt.Errorf("lifecycle: device share %q: %v", part, err)
		}
		if w < 0 || w > 1e12 || w != w {
			return Mix{}, fmt.Errorf("lifecycle: device share %q outside [0, 1e12]", part)
		}
		m[k] += w
	}
	if !m.Enabled() {
		return Mix{}, fmt.Errorf("lifecycle: device mix %q has no positive share", s)
	}
	// Duplicate names sum, so the combined weights need re-validating
	// against the same bound each part was checked against.
	if err := m.Validate(); err != nil {
		return Mix{}, err
	}
	return m, nil
}

// Enabled reports whether any archetype carries a positive share — the
// switch between the classic fleet aggregates and the lifecycle engine.
func (m Mix) Enabled() bool { return m.Total() > 0 }

// Total returns the sum of shares.
func (m Mix) Total() float64 {
	t := 0.0
	for _, w := range m {
		t += w
	}
	return t
}

// Validate rejects mixes no draw can use.
func (m Mix) Validate() error {
	for k, w := range m {
		if w < 0 || w != w || w > 1e12 {
			return fmt.Errorf("lifecycle: share %s=%v outside [0, 1e12]", Kind(k), w)
		}
	}
	return nil
}

// Pick maps a uniform u in [0, 1) to an archetype by cumulative share
// in canonical Kind order. It panics on a disabled mix.
func (m Mix) Pick(u float64) Kind {
	total := m.Total()
	if total <= 0 {
		panic("lifecycle: Pick on a disabled device mix")
	}
	acc := 0.0
	last := TempSensor
	for k, w := range m {
		if w <= 0 {
			continue
		}
		acc += w
		last = Kind(k)
		if u*total < acc {
			return last
		}
	}
	return last // u at the top edge lands on the final positive share
}

// String renders the mix in the CLI form, canonical order, positive
// shares only.
func (m Mix) String() string {
	var b strings.Builder
	for k, w := range m {
		if w <= 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%s", Kind(k), strconv.FormatFloat(w, 'g', -1, 64))
	}
	if b.Len() == 0 {
		return "none"
	}
	return b.String()
}

// MarshalJSON renders the mix as a {"name": weight} object with
// positive shares only, so the zero mix serializes as {}.
func (m Mix) MarshalJSON() ([]byte, error) {
	obj := make(map[string]float64)
	for k, w := range m {
		if w > 0 {
			obj[Kind(k).String()] = w
		}
	}
	// Sorted keys for byte-stable output (encoding/json sorts map keys
	// itself, but being explicit keeps the contract visible).
	keys := make([]string, 0, len(obj))
	for k := range obj {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%q:%s", k, strconv.FormatFloat(obj[k], 'g', -1, 64))
	}
	b.WriteByte('}')
	return []byte(b.String()), nil
}

// UnmarshalJSON parses the {"name": weight} object form.
func (m *Mix) UnmarshalJSON(data []byte) error {
	var obj map[string]float64
	if err := json.Unmarshal(data, &obj); err != nil {
		return err
	}
	var out Mix
	//powifi:mapiter-ok each kind name writes its own Mix slot; iteration order cannot matter
	for name, w := range obj {
		k, err := ParseKind(name)
		if err != nil {
			return err
		}
		out[k] = w
	}
	if err := out.Validate(); err != nil {
		return err
	}
	*m = out
	return nil
}
