package lifecycle

import "math"

// Section is the serializable per-device lifecycle report: the JSON
// form of one device's Metrics, used by the facade's single-home
// report (powifi.HomeReport.Devices) and stable under the public
// report schema. Quantities that can be absent — a first update that
// never happened, a battery-free sensor's state of charge — are nil
// pointers rather than the engine's ±Inf/NaN sentinels, so a Section
// always marshals.
type Section struct {
	Kind  string `json:"kind"`
	State string `json:"state"`
	// Bins and TotalS count the logging bins visited and the simulated
	// seconds they span.
	Bins   int     `json:"bins"`
	TotalS float64 `json:"total_s"`
	// OutagePct is the time-weighted percentage of the run the device
	// was not operating.
	OutagePct float64 `json:"outage_pct"`
	// Updates counts sensor reads (fractional); Frames whole captures.
	Updates float64 `json:"updates"`
	Frames  int     `json:"frames"`
	// FirstUpdateS is the time of the first update or frame; nil when
	// the device never produced one within the horizon.
	FirstUpdateS *float64 `json:"first_update_s,omitempty"`
	// TimeToFullS is when a charger first reached the policy's FullSoC;
	// nil when it never filled (and for non-chargers).
	TimeToFullS *float64 `json:"time_to_full_s,omitempty"`
	// FinalSoCPct and MinSoCPct track the battery's state-of-charge
	// trajectory endpoints in percent; nil for the battery-free sensor.
	FinalSoCPct *float64 `json:"final_soc_pct,omitempty"`
	MinSoCPct   *float64 `json:"min_soc_pct,omitempty"`
}

// FinitePtr returns &v when v is finite, nil otherwise — the JSON-safe
// encoding of the engine's ±Inf/NaN "never happened" sentinels, shared
// with the fleet layer's streamed DeviceRecord so the two serialized
// forms cannot diverge on the convention.
func FinitePtr(v float64) *float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return nil
	}
	return &v
}

// Section derives the device's serializable report section from the
// metrics accumulated since Begin.
func (d *Device) Section() Section {
	m := d.Metrics()
	return Section{
		Kind:         m.Kind.String(),
		State:        d.State().String(),
		Bins:         m.Bins,
		TotalS:       m.TotalS,
		OutagePct:    m.OutageFraction() * 100,
		Updates:      m.Updates,
		Frames:       m.Frames,
		FirstUpdateS: FinitePtr(m.FirstUpdateS),
		TimeToFullS:  FinitePtr(m.TimeToFullS),
		FinalSoCPct:  FinitePtr(m.FinalSoC * 100),
		MinSoCPct:    FinitePtr(m.MinSoC * 100),
	}
}
