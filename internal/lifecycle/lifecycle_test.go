package lifecycle

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/deploy"
	"repro/internal/xrand"
)

func TestKindNamesRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", k.String(), got, err, k)
		}
	}
	if _, err := ParseKind("toaster"); err == nil {
		t.Error("ParseKind accepted an unknown archetype")
	}
	if TempSensor.Charger() || !Jawbone.Charger() || !LiIon.Charger() || !NiMH.Charger() {
		t.Error("Charger classification wrong")
	}
	if TempSensor.BatteryBacked() || !Camera.BatteryBacked() {
		t.Error("BatteryBacked classification wrong")
	}
}

func TestMixParsePickAndJSON(t *testing.T) {
	m, err := ParseMix("temp=0.5,camera=0.3,jawbone=0.2")
	if err != nil {
		t.Fatal(err)
	}
	if m[TempSensor] != 0.5 || m[Camera] != 0.3 || m[Jawbone] != 0.2 {
		t.Fatalf("parsed mix wrong: %v", m)
	}
	if !m.Enabled() || m.Total() != 1.0 {
		t.Errorf("Enabled/Total wrong: %v / %v", m.Enabled(), m.Total())
	}

	// Pick maps cumulative shares in canonical order; weights need not
	// be normalized.
	cases := []struct {
		u    float64
		want Kind
	}{
		{0, TempSensor}, {0.49, TempSensor}, {0.5, Camera}, {0.79, Camera},
		{0.8, Jawbone}, {0.999999, Jawbone},
	}
	for _, tc := range cases {
		if got := m.Pick(tc.u); got != tc.want {
			t.Errorf("Pick(%v) = %v, want %v", tc.u, got, tc.want)
		}
	}
	double, err := ParseMix("temp=1,camera=0.6,jawbone=0.4")
	if err != nil {
		t.Fatal(err)
	}
	if got := double.Pick(0.49); got != TempSensor {
		t.Errorf("unnormalized Pick(0.49) = %v, want temp", got)
	}

	// Rejections.
	for _, bad := range []string{"", "temp", "temp=-1", "temp=NaN", "bogus=1", "temp=0,camera=0"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}

	// JSON round trip (the fleet Summary schema relies on it).
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"camera":0.3,"jawbone":0.2,"temp":0.5}` {
		t.Errorf("Mix JSON = %s", data)
	}
	var back Mix
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != m {
		t.Errorf("JSON round trip changed mix: %v -> %v", m, back)
	}
	var zero Mix
	if data, _ := json.Marshal(zero); string(data) != "{}" {
		t.Errorf("zero mix JSON = %s", data)
	}
	if zero.String() != "none" {
		t.Errorf("zero mix String = %q", zero.String())
	}
}

// bin fabricates a synthetic BinSample for direct state-machine tests.
func bin(i int, occ, rate, netW float64) deploy.BinSample {
	per := occ / 3
	return deploy.BinSample{
		Bin:           i,
		Occupancy:     [3]float64{per, per, per},
		CumulativePct: occ * 100,
		SensorRate:    rate,
		NetHarvestedW: netW,
	}
}

// TestTempSensorStateMachine scripts the battery-free sensor through
// cold start, operation, an RF outage (brownout) and recovery,
// checking the boot/brownout/operate transitions and the metrics they
// produce.
func TestTempSensorStateMachine(t *testing.T) {
	d := NewDevice(TempSensor, Policy{})
	d.Begin(10, time.Minute)
	if d.State() != StateBoot {
		t.Fatalf("initial state %v, want boot", d.State())
	}

	// Powered bin: 30 µW charges the 7.5 µJ release window in ~0.25 s,
	// then reads at 10 Hz for the rest of the minute.
	d.VisitBin(bin(0, 0.9, 10, 30e-6))
	if d.State() != StateOperate {
		t.Fatalf("after powered bin: state %v, want operate", d.State())
	}
	m := d.Metrics()
	if math.IsInf(m.FirstUpdateS, 1) || m.FirstUpdateS > 1 {
		t.Errorf("first update at %v s, want sub-second cold start", m.FirstUpdateS)
	}
	if m.Updates < 500 || m.Updates > 600 {
		t.Errorf("updates after one 10 Hz minute = %v", m.Updates)
	}

	// Dark bin: no RF, the storage node bleeds out, the device browns out.
	d.VisitBin(bin(1, 0, 0, 0))
	if d.State() != StateBrownout {
		t.Fatalf("after dark bin: state %v, want brownout", d.State())
	}
	m = d.Metrics()
	if m.OutageBins != 1 {
		t.Errorf("outage bins = %d, want 1", m.OutageBins)
	}
	if f := m.OutageFraction(); f < 0.45 || f > 0.55 {
		t.Errorf("outage fraction after 1/2 dark bins = %v", f)
	}

	// Recovery: the cold start repeats (the cap decayed), then operates.
	d.VisitBin(bin(2, 0.9, 10, 30e-6))
	if d.State() != StateOperate {
		t.Fatalf("after recovery bin: state %v, want operate", d.State())
	}
	if got := d.Metrics().FirstUpdateS; got != m.FirstUpdateS {
		t.Errorf("recovery rewrote FirstUpdateS: %v -> %v", m.FirstUpdateS, got)
	}
	if math.IsNaN(d.Metrics().FinalSoC) != true {
		t.Error("battery-free sensor should report NaN SoC")
	}
}

// TestRechargingTempBrownoutAndReboot scripts the battery-backed sensor
// through battery exhaustion and the cold-boot hysteresis: a drained
// pack must bank the reboot threshold before reads resume.
func TestRechargingTempBrownoutAndReboot(t *testing.T) {
	d := NewDevice(RechargingTemp, Policy{})
	// Shrink the pack so the duty cycle and quiescent draw can actually
	// exhaust it: 400 reads of capacity, starting at 5% (20 reads) —
	// below the 100-read reboot gate.
	b := d.Battery()
	b.CapacityJ = 400 * d.readE
	b.SelfDischargePerDay = 0
	d.Begin(10, time.Minute)
	if d.State() != StateBoot {
		t.Fatalf("initial state %v, want boot (stored %v J < reboot %v J)",
			d.State(), b.StoredEnergy(), d.rebootE)
	}

	// Dark bins: below the reboot threshold, no reads.
	d.VisitBin(bin(0, 0, 0, 0))
	if got := d.Metrics().Updates; got != 0 {
		t.Fatalf("read %v updates while below the reboot gate", got)
	}
	if d.State() != StateBoot {
		t.Fatalf("state %v, want boot", d.State())
	}

	// Strong RF charges the pack past the reboot gate; reads resume on
	// the 60 s duty cycle.
	i := 1
	for ; i < 200 && d.State() != StateOperate; i++ {
		d.VisitBin(bin(i, 1.2, 0, 0))
	}
	if d.State() != StateOperate {
		t.Fatal("never rebooted under strong RF")
	}
	m := d.Metrics()
	if m.Updates <= 0 || math.IsInf(m.FirstUpdateS, 1) {
		t.Fatalf("no reads after reboot: %+v", m)
	}

	// RF gone: the pack drains through reads and quiescent draw until
	// the device browns out again.
	for j := 0; j < 400 && d.State() != StateBrownout; j++ {
		d.VisitBin(bin(i+j, 0, 0, 0))
	}
	if d.State() != StateBrownout {
		t.Fatalf("never browned out on a dark duty cycle (soc %v)", d.Battery().SoC())
	}
}

// TestChargerLedgerMatchesClosedForm is the cannot-diverge contract of
// the BatteryChargeTime satellite: stepping the stateful ledger at
// constant power reproduces harvester.Battery.ConstantPowerChargeTime
// (which core.BatteryChargeTime wraps) through the in-bin crossing
// interpolation.
func TestChargerLedgerMatchesClosedForm(t *testing.T) {
	d := NewDevice(LiIon, Policy{})
	d.Battery().SelfDischargePerDay = 0 // isolate the constant-power ledger
	bw := 30 * time.Minute
	d.Begin(6, bw) // close placement: strong, constant net power

	s := bin(0, 0.9, 0, 0)
	var p float64
	d.OnBin = func(b BinStats) { p = b.HarvestW }
	for i := 0; i < 2000 && math.IsInf(d.Metrics().TimeToFullS, 1); i++ {
		s.Bin = i
		d.VisitBin(s)
	}
	m := d.Metrics()
	if math.IsInf(m.TimeToFullS, 1) {
		t.Fatalf("cell never filled at %v W", p)
	}
	want := d.Battery().ConstantPowerChargeTime(0, d.Policy.FullSoC, p).Seconds()
	if math.Abs(m.TimeToFullS-want) > 1e-6*want {
		t.Errorf("ledger time-to-full %v s, closed form %v s", m.TimeToFullS, want)
	}
	if m.FinalSoC < d.Policy.FullSoC {
		t.Errorf("final SoC %v below FullSoC %v", m.FinalSoC, d.Policy.FullSoC)
	}
}

// TestJawboneIgnoresSensorPlacement pins the §8(a) geometry: the USB
// charger sits on the router regardless of where the home's sensor
// went, so two placements charge identically.
func TestJawboneIgnoresSensorPlacement(t *testing.T) {
	run := func(ft float64) float64 {
		d := NewDevice(Jawbone, Policy{})
		d.Begin(ft, time.Minute)
		for i := 0; i < 150; i++ {
			d.VisitBin(bin(i, 0.95, 0, 0))
		}
		return d.Metrics().FinalSoC
	}
	if a, b := run(5), run(25); a != b {
		t.Errorf("jawbone charge depends on sensor placement: %v at 5 ft vs %v at 25 ft", a, b)
	}
	if soc := run(10); soc < 0.25 || soc > 0.55 {
		t.Errorf("2.5 h on the charger reached %.0f%%, paper reports 41%%", soc*100)
	}
}

// TestPooledDeviceParity is the pooling contract: one Device reused
// across many randomized homes produces exactly the metrics and bin
// streams fresh devices produce.
func TestPooledDeviceParity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several packet-level deployments")
	}
	rng := xrand.NewFromLabel(11, "lifecycle/parity")
	opts := deploy.Options{
		BinWidth:         30 * time.Minute,
		Window:           2 * time.Millisecond,
		Hours:            2,
		SensorDistanceFt: 9,
	}
	smp := deploy.NewSampler()
	pooled := map[Kind]*Device{}
	for trial := 0; trial < 6; trial++ {
		cfg := deploy.HomeConfig{
			ID: trial + 1, Users: 1 + rng.Intn(3), Devices: rng.Intn(8),
			NeighborAPs: rng.Intn(20), Weekend: rng.Bool(0.3),
			StartHour: rng.Intn(24), Seed: rng.Uint64(),
		}
		opts.SensorDistanceFt = rng.Uniform(4, 14)
		kind := Kind(trial % NumKinds)

		var freshBins, pooledBins []BinStats
		fresh := NewDevice(kind, Policy{})
		fresh.OnBin = func(b BinStats) { freshBins = append(freshBins, b) }
		fresh.Begin(opts.SensorDistanceFt, opts.BinWidth)
		smp.RunVisitor(cfg, opts, fresh)

		p, ok := pooled[kind]
		if !ok {
			p = NewDevice(kind, Policy{})
			pooled[kind] = p
			// Dirty the pooled device with an unrelated home first.
			p.Begin(7, opts.BinWidth)
			smp.RunVisitor(deploy.PaperHomes()[0], opts, p)
		}
		p.OnBin = func(b BinStats) { pooledBins = append(pooledBins, b) }
		p.Begin(opts.SensorDistanceFt, opts.BinWidth)
		smp.RunVisitor(cfg, opts, p)

		fm, pm := fresh.Metrics(), p.Metrics()
		if !metricsEqual(fm, pm) {
			t.Fatalf("trial %d (%v): pooled metrics diverged\nfresh:  %+v\npooled: %+v",
				trial, kind, fm, pm)
		}
		normBins := func(bs []BinStats) []BinStats {
			out := make([]BinStats, len(bs))
			for i, b := range bs {
				if math.IsNaN(b.SoCPct) {
					b.SoCPct = -1 // NaN != NaN under DeepEqual
				}
				out[i] = b
			}
			return out
		}
		if !reflect.DeepEqual(normBins(freshBins), normBins(pooledBins)) {
			t.Fatalf("trial %d (%v): pooled bin stream diverged", trial, kind)
		}
	}
}

// metricsEqual compares Metrics bit for bit, treating NaN (the
// battery-free sensor's SoC fields) and +Inf as equal to themselves —
// plain struct equality would report NaN != NaN.
func metricsEqual(a, b Metrics) bool {
	norm := func(m Metrics) Metrics {
		if math.IsNaN(m.FinalSoC) {
			m.FinalSoC = -1
		}
		if math.IsNaN(m.MinSoC) {
			m.MinSoC = -1
		}
		return m
	}
	return norm(a) == norm(b)
}

// TestGroupFansOut pins Group's visitor fan-out.
func TestGroupFansOut(t *testing.T) {
	g := Group{NewDevice(TempSensor, Policy{}), NewDevice(Jawbone, Policy{})}
	g.Begin(10, time.Minute)
	g.VisitBin(bin(0, 0.9, 5, 20e-6))
	for _, d := range g {
		if d.Metrics().Bins != 1 {
			t.Errorf("%v device saw %d bins, want 1", d.Kind, d.Metrics().Bins)
		}
	}
}

// TestDefaultPolicies pins the archetype defaults the fleet relies on.
func TestDefaultPolicies(t *testing.T) {
	if p := DefaultPolicy(RechargingTemp); p.UpdateEvery != time.Minute || p.InitialSoC != 0.05 {
		t.Errorf("rtemp defaults wrong: %+v", p)
	}
	if p := DefaultPolicy(Camera); p.UpdateEvery != 0 || p.InitialSoC != 0 || p.FullSoC != 0.99 {
		t.Errorf("camera defaults wrong: %+v", p)
	}
	if p := DefaultPolicy(Jawbone); p.InitialSoC != 0 {
		t.Errorf("jawbone defaults wrong: %+v", p)
	}
}
