package testbed

import (
	"testing"
	"time"

	"repro/internal/netstack"
	"repro/internal/phy"
	"repro/internal/router"
)

func TestBenchTopology(t *testing.T) {
	b := NewBench(BenchConfig{Scheme: router.PoWiFi, BackgroundLoad: 0.2, Seed: 1})
	if len(b.Channels) != 3 {
		t.Fatalf("channels = %d, want 3", len(b.Channels))
	}
	if b.Router.Radio(phy.Channel1) == nil {
		t.Fatal("no channel-1 radio")
	}
	if len(b.Backgrounds) != 3 {
		t.Errorf("backgrounds = %d, want 3 (one per channel)", len(b.Backgrounds))
	}
	// Client sits 7 feet (2.13 m) from the router by default.
	d := b.Client.MAC.Location().DistanceTo(b.RouterRadio().Location())
	if d < 2.1 || d > 2.2 {
		t.Errorf("client distance = %v m, want about 2.13", d)
	}
}

func TestUDPDownlinkDelivers(t *testing.T) {
	b := NewBench(BenchConfig{Scheme: router.Baseline, Seed: 2})
	sink := &netstack.UDPSink{Sched: b.Sched}
	src := &netstack.UDPSource{
		Sched: b.Sched, Path: b.DownlinkPath(), Sink: sink,
		PayloadBytes: 1500, RateMbps: 10,
	}
	b.Start()
	src.Start()
	b.Sched.RunUntil(2 * time.Second)
	got := sink.ThroughputMbps(0, 2*time.Second)
	if got < 9.0 || got > 10.5 {
		t.Errorf("UDP downlink throughput = %.2f Mbps, want about 10", got)
	}
	// One-way delay includes the 10 ms wired hop.
	if sink.MeanDelay() < 10*time.Millisecond {
		t.Errorf("mean delay = %v, must include the wired hop", sink.MeanDelay())
	}
}

func TestTCPOverWirelessReachesRealisticRate(t *testing.T) {
	b := NewBench(BenchConfig{Scheme: router.Baseline, Seed: 3})
	snd := &netstack.TCPSender{Sched: b.Sched}
	rcv := &netstack.TCPReceiver{Sched: b.Sched}
	netstack.Connect(snd, rcv, b.DownlinkPath(), b.UplinkPath())
	b.Start()
	snd.Start()
	b.Sched.RunUntil(4 * time.Second)
	got := snd.ThroughputMbps()
	// 802.11g TCP on a clean channel reaches ~15-25 Mbps.
	if got < 12 || got > 30 {
		t.Errorf("TCP throughput = %.2f Mbps, want 12-30", got)
	}
}

func TestPoWiFiDoesNotHurtClientUDP(t *testing.T) {
	// The headline Fig. 6a property as an integration test.
	measure := func(scheme router.Scheme) float64 {
		b := NewBench(BenchConfig{Scheme: scheme, BackgroundLoad: 0.2, Seed: 4})
		sink := &netstack.UDPSink{Sched: b.Sched}
		src := &netstack.UDPSource{
			Sched: b.Sched, Path: b.DownlinkPath(), Sink: sink,
			PayloadBytes: 1500, RateMbps: 15,
		}
		b.Start()
		src.Start()
		b.Sched.RunUntil(2 * time.Second)
		return sink.ThroughputMbps(0, 2*time.Second)
	}
	baseline := measure(router.Baseline)
	powifi := measure(router.PoWiFi)
	blind := measure(router.BlindUDP)
	if powifi < baseline*0.9 {
		t.Errorf("PoWiFi throughput %.2f fell below 90%% of baseline %.2f", powifi, baseline)
	}
	if blind > baseline*0.25 {
		t.Errorf("BlindUDP throughput %.2f did not collapse (baseline %.2f)", blind, baseline)
	}
}

func TestNoQueueRoughlyHalvesSaturatedUDP(t *testing.T) {
	measure := func(scheme router.Scheme) float64 {
		b := NewBench(BenchConfig{Scheme: scheme, BackgroundLoad: 0.2, Seed: 5})
		sink := &netstack.UDPSink{Sched: b.Sched}
		src := &netstack.UDPSource{
			Sched: b.Sched, Path: b.DownlinkPath(), Sink: sink,
			PayloadBytes: 1500, RateMbps: 40, // beyond capacity
		}
		b.Start()
		src.Start()
		b.Sched.RunUntil(2 * time.Second)
		return sink.ThroughputMbps(0, 2*time.Second)
	}
	baseline := measure(router.Baseline)
	noqueue := measure(router.NoQueue)
	ratio := noqueue / baseline
	if ratio < 0.35 || ratio > 0.75 {
		t.Errorf("NoQueue/baseline = %.2f, want roughly one half", ratio)
	}
}

func TestUplinkForwardsToWired(t *testing.T) {
	b := NewBench(BenchConfig{Scheme: router.Baseline, Seed: 6})
	sink := &netstack.UDPSink{Sched: b.Sched}
	up := b.UplinkPath()
	b.Start()
	for i := 0; i < 10; i++ {
		p := &netstack.Packet{Dst: sink, Bytes: 100, Seq: i, Sent: b.Sched.Now()}
		up.Send(p)
	}
	b.Sched.RunUntil(time.Second)
	if sink.Received() != 10 {
		t.Errorf("uplink delivered %d of 10", sink.Received())
	}
	if sink.MeanDelay() < b.WiredLatency {
		t.Errorf("uplink delay %v below wired latency", sink.MeanDelay())
	}
}
