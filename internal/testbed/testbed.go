// Package testbed assembles the paper's benchmark topologies: a PoWiFi
// router with its associated client in a busy office (§4.1), neighbor
// router–client pairs (Fig. 8), and the supporting wiring between the
// simulated 802.11 MAC and the transport layer.
//
// Layout used throughout §4.1: the router provides Internet access on
// channel 1 via NAT; a Dell laptop client sits seven feet away; other
// networks operate on channels 1, 6 and 11.
package testbed

import (
	"time"

	"repro/internal/eventsim"
	"repro/internal/mac"
	"repro/internal/medium"
	"repro/internal/netstack"
	"repro/internal/phy"
	"repro/internal/router"
	"repro/internal/traffic"
	"repro/internal/units"
	"repro/internal/xrand"
)

// Station IDs are allocated in blocks per role to keep them unique within
// a channel.
const (
	routerBaseID = 100
	clientBaseID = 200
	bgBaseID     = 300
	neighborBase = 400
)

// Client is an associated Wi-Fi client (the Dell Inspiron laptop of
// §4.1): a MAC station that dispatches received network packets to their
// endpoints and offers an uplink path back through the router.
type Client struct {
	MAC *mac.Station
}

// NewClient attaches a client station to a channel.
func NewClient(id int, loc medium.Location, ch *medium.Channel, rng *xrand.Rand) *Client {
	c := &Client{MAC: mac.NewStation(id, "client", loc, ch, rng)}
	c.MAC.PowerDBm = 15
	c.MAC.GainDBi = 2
	c.MAC.OnDeliver = func(f *mac.Frame, from int) {
		if p, isPacket := f.Payload.(*netstack.Packet); isPacket && p.Dst != nil {
			p.Dst.Deliver(p)
		}
	}
	return c
}

// Downlink adapts a router radio into a netstack.Path that transmits
// unicast data frames to a client station. Drops happen at the transmit
// queue (drop-tail per flow) and after MAC retry exhaustion.
type Downlink struct {
	Radio    *mac.Station
	ClientID int
}

// Send implements netstack.Path.
func (d *Downlink) Send(p *netstack.Packet) {
	d.Radio.Enqueue(&mac.Frame{
		DstID:   d.ClientID,
		Bytes:   p.Bytes + netstack.IPOverheadBytes,
		Kind:    medium.KindData,
		Payload: p,
	})
}

// Uplink adapts a client station into a netstack.Path that transmits
// unicast frames to the router radio, which forwards them over the wired
// side after the NAT hop.
type Uplink struct {
	Client   *mac.Station
	RouterID int
}

// Send implements netstack.Path.
func (u *Uplink) Send(p *netstack.Packet) {
	u.Client.Enqueue(&mac.Frame{
		DstID:   u.RouterID,
		Bytes:   p.Bytes + netstack.IPOverheadBytes,
		Kind:    medium.KindData,
		Payload: p,
	})
}

// Bench is the §4.1 benchmark environment.
type Bench struct {
	Sched    *eventsim.Scheduler
	Channels map[phy.Channel]*medium.Channel
	Router   *router.Router
	Client   *Client
	// WiredLatency is the one-way Internet latency between the test
	// server and the router.
	WiredLatency time.Duration
	// Backgrounds are the other networks in the busy office.
	Backgrounds []*traffic.Background
}

// BenchConfig parameterizes the standard environment.
type BenchConfig struct {
	Scheme router.Scheme
	// BackgroundLoad is the offered airtime fraction per channel from
	// other office networks (≈0.25 on a busy weekday).
	BackgroundLoad float64
	// ClientDistanceFt is the router–client distance (7 ft in §4.1).
	ClientDistanceFt float64
	// WiredLatency one-way (defaults to 10 ms).
	WiredLatency time.Duration
	// Seed drives all randomness.
	Seed uint64
	// EqualShareRate configures the EqualShare scheme.
	EqualShareRate phy.Rate
}

// NewBench builds the standard environment: three channel media, a router
// with the given scheme, one client on channel 1, and background load on
// every channel.
func NewBench(cfg BenchConfig) *Bench {
	if cfg.ClientDistanceFt == 0 {
		cfg.ClientDistanceFt = 7
	}
	if cfg.WiredLatency == 0 {
		cfg.WiredLatency = 10 * time.Millisecond
	}
	sched := eventsim.New()
	channels := make(map[phy.Channel]*medium.Channel, 3)
	for _, chNum := range phy.PoWiFiChannels {
		channels[chNum] = medium.NewChannel(chNum, sched)
	}

	rcfg := router.DefaultConfig()
	rcfg.Scheme = cfg.Scheme
	if cfg.EqualShareRate != 0 {
		rcfg.EqualShareRate = cfg.EqualShareRate
	}
	rt := router.New(rcfg, sched, channels, routerBaseID, cfg.Seed)

	b := &Bench{
		Sched:        sched,
		Channels:     channels,
		Router:       rt,
		WiredLatency: cfg.WiredLatency,
	}

	clientLoc := medium.Location{X: units.FeetToMeters(cfg.ClientDistanceFt)}
	b.Client = NewClient(clientBaseID, clientLoc, channels[phy.Channel1],
		xrand.NewFromLabel(cfg.Seed, "client"))
	// The client uses the default rate adaptation, like the paper's
	// laptop.
	b.Client.MAC.RateCtl = mac.NewARF()

	if cfg.BackgroundLoad > 0 {
		i := 0
		for _, chNum := range phy.PoWiFiChannels {
			bg := traffic.NewBackground(sched, channels[chNum], bgBaseID+i,
				medium.Location{X: 5, Y: 4},
				cfg.BackgroundLoad,
				xrand.NewFromLabel(cfg.Seed, "bg/"+chNum.String()))
			b.Backgrounds = append(b.Backgrounds, bg)
			i++
		}
	}
	return b
}

// Start launches the router's injectors and the background load.
func (b *Bench) Start() {
	b.Router.Start()
	for _, bg := range b.Backgrounds {
		bg.Start()
	}
}

// RouterRadio returns the channel-1 radio MAC (the client-serving
// interface).
func (b *Bench) RouterRadio() *mac.Station {
	return b.Router.Radio(phy.Channel1).MAC
}

// DownlinkPath returns the full server→client path: wired hop into the
// router, then the channel-1 wireless hop.
func (b *Bench) DownlinkPath() netstack.Path {
	wireless := &Downlink{Radio: b.RouterRadio(), ClientID: b.Client.MAC.StationID()}
	return &netstack.WiredPath{Sched: b.Sched, Latency: b.WiredLatency, Next: wireless}
}

// UplinkPath returns the client→server path: the wireless hop to the
// router, then the wired hop. The router radio forwards delivered frames
// onto the wired side.
func (b *Bench) UplinkPath() netstack.Path {
	radio := b.RouterRadio()
	radio.OnDeliver = func(f *mac.Frame, from int) {
		if p, isPacket := f.Payload.(*netstack.Packet); isPacket && p.Dst != nil {
			b.Sched.After(b.WiredLatency, func() { p.Dst.Deliver(p) })
		}
	}
	return &Uplink{Client: b.Client.MAC, RouterID: radio.StationID()}
}
