package router

import (
	"testing"
	"time"

	"repro/internal/eventsim"
	"repro/internal/mac"
	"repro/internal/medium"
	"repro/internal/phy"
)

// newRig builds three channel media and a router with the given scheme.
func newRig(scheme Scheme) (*eventsim.Scheduler, map[phy.Channel]*medium.Channel, *Router) {
	sched := eventsim.New()
	channels := make(map[phy.Channel]*medium.Channel, 3)
	for _, chNum := range phy.PoWiFiChannels {
		channels[chNum] = medium.NewChannel(chNum, sched)
	}
	cfg := DefaultConfig()
	cfg.Scheme = scheme
	return sched, channels, New(cfg, sched, channels, 100, 1)
}

func TestRouterCreatesRadioPerChannel(t *testing.T) {
	_, _, rt := newRig(PoWiFi)
	if len(rt.Radios) != 3 {
		t.Fatalf("radios = %d, want 3", len(rt.Radios))
	}
	for _, chNum := range phy.PoWiFiChannels {
		if rt.Radio(chNum) == nil {
			t.Errorf("missing radio on %v", chNum)
		}
	}
}

func TestBaselineInjectsNothing(t *testing.T) {
	sched, channels, rt := newRig(Baseline)
	rt.Start()
	sched.RunUntil(time.Second)
	for chNum, ch := range channels {
		if n := ch.TxCount[medium.KindPower]; n != 0 {
			t.Errorf("%v: baseline transmitted %d power packets", chNum, n)
		}
	}
}

func TestPoWiFiInjectsOnAllChannels(t *testing.T) {
	sched, channels, rt := newRig(PoWiFi)
	rt.Start()
	sched.RunUntil(time.Second)
	for chNum, ch := range channels {
		n := ch.TxCount[medium.KindPower]
		// A free channel should carry thousands of 54 Mbps power packets
		// per second.
		if n < 1500 {
			t.Errorf("%v: only %d power packets in 1 s", chNum, n)
		}
	}
}

func TestPoWiFiPowerPacketsAreBroadcast54Mbps(t *testing.T) {
	sched, channels, rt := newRig(PoWiFi)
	seen := 0
	channels[phy.Channel6].Observers = append(channels[phy.Channel6].Observers,
		func(tx *medium.Transmission) {
			if tx.Kind != medium.KindPower {
				return
			}
			seen++
			if tx.DstID != medium.Broadcast {
				t.Fatal("power packet was not broadcast")
			}
			if tx.Rate != phy.Rate54Mbps {
				t.Fatalf("power packet rate = %v, want 54 Mbps", tx.Rate)
			}
		})
	rt.Start()
	sched.RunUntil(100 * time.Millisecond)
	if seen == 0 {
		t.Fatal("no power packets observed")
	}
}

func TestBlindUDPUses1Mbps(t *testing.T) {
	sched, channels, rt := newRig(BlindUDP)
	var rates []phy.Rate
	channels[phy.Channel1].Observers = append(channels[phy.Channel1].Observers,
		func(tx *medium.Transmission) {
			if tx.Kind == medium.KindPower {
				rates = append(rates, tx.Rate)
			}
		})
	rt.Start()
	sched.RunUntil(200 * time.Millisecond)
	if len(rates) == 0 {
		t.Fatal("no BlindUDP packets observed")
	}
	for _, r := range rates {
		if r != phy.Rate1Mbps {
			t.Fatalf("BlindUDP rate = %v, want 1 Mbps", r)
		}
	}
}

func TestEqualShareUsesConfiguredRate(t *testing.T) {
	sched := eventsim.New()
	channels := map[phy.Channel]*medium.Channel{
		phy.Channel1: medium.NewChannel(phy.Channel1, sched),
	}
	cfg := DefaultConfig()
	cfg.Scheme = EqualShare
	cfg.Channels = []phy.Channel{phy.Channel1}
	cfg.EqualShareRate = phy.Rate18Mbps
	rt := New(cfg, sched, channels, 100, 1)
	if got := rt.Radio(phy.Channel1).Injector.Rate; got != phy.Rate18Mbps {
		t.Errorf("EqualShare injector rate = %v, want 18 Mbps", got)
	}
	// And the packets on the air carry that rate.
	var rates []phy.Rate
	channels[phy.Channel1].Observers = append(channels[phy.Channel1].Observers,
		func(tx *medium.Transmission) {
			if tx.Kind == medium.KindPower {
				rates = append(rates, tx.Rate)
			}
		})
	rt.Start()
	sched.RunUntil(50 * time.Millisecond)
	if len(rates) == 0 {
		t.Fatal("no EqualShare power packets observed")
	}
	for _, r := range rates {
		if r != phy.Rate18Mbps {
			t.Fatalf("on-air rate = %v, want 18 Mbps", r)
		}
	}
}

func TestIPPowerDropsWhenQueueFull(t *testing.T) {
	// Pre-fill the radio's queue with client traffic beyond the threshold:
	// the injector must drop at the IP layer, not enqueue.
	sched, _, rt := newRig(PoWiFi)
	radio := rt.Radio(phy.Channel1)
	for i := 0; i < 10; i++ {
		radio.MAC.Enqueue(&mac.Frame{DstID: medium.Broadcast, Bytes: 1500, Kind: medium.KindData})
	}
	radio.Injector.Start()
	// One immediate injection happens inside Start.
	if radio.Injector.DroppedByIPPower == 0 {
		t.Error("IP_Power did not drop with a deep queue")
	}
	if radio.Injector.Injected != 0 {
		t.Error("power packet entered a queue above the threshold")
	}
	_ = sched
}

func TestNoQueueSkipsTheCheck(t *testing.T) {
	sched, _, rt := newRig(NoQueue)
	radio := rt.Radio(phy.Channel1)
	for i := 0; i < 10; i++ {
		radio.MAC.Enqueue(&mac.Frame{DstID: medium.Broadcast, Bytes: 1500, Kind: medium.KindData})
	}
	radio.Injector.Start()
	sched.RunUntil(10 * time.Millisecond)
	if radio.Injector.DroppedByIPPower != 0 {
		t.Error("NoQueue must not drop at the IP layer")
	}
	if radio.Injector.Injected == 0 {
		t.Error("NoQueue injected nothing")
	}
}

func TestInjectorStopHalts(t *testing.T) {
	sched, _, rt := newRig(PoWiFi)
	rt.Start()
	sched.RunUntil(50 * time.Millisecond)
	rt.Stop()
	before := rt.Radio(phy.Channel1).Injector.Attempted
	sched.RunUntil(150 * time.Millisecond)
	after := rt.Radio(phy.Channel1).Injector.Attempted
	if after != before {
		t.Errorf("injector kept attempting after Stop: %d -> %d", before, after)
	}
}

func TestInjectorAccountingConsistent(t *testing.T) {
	sched, _, rt := newRig(PoWiFi)
	rt.Start()
	sched.RunUntil(500 * time.Millisecond)
	in := rt.Radio(phy.Channel6).Injector
	if in.Attempted != in.Injected+in.DroppedByIPPower {
		t.Errorf("accounting broken: attempted %d != injected %d + dropped %d",
			in.Attempted, in.Injected, in.DroppedByIPPower)
	}
}

func TestQueueThresholdBoundsQueueDepth(t *testing.T) {
	// With only power traffic, the radio's queue must never exceed the
	// threshold (5) by more than the in-service frame.
	sched, _, rt := newRig(PoWiFi)
	rt.Start()
	maxSeen := 0
	cancel := sched.Ticker(500*time.Microsecond, func() {
		if q := rt.Radio(phy.Channel1).MAC.QueueLen(); q > maxSeen {
			maxSeen = q
		}
	})
	sched.RunUntil(300 * time.Millisecond)
	cancel()
	if maxSeen > rt.Cfg.QueueDepthThreshold+1 {
		t.Errorf("queue reached %d, threshold is %d", maxSeen, rt.Cfg.QueueDepthThreshold)
	}
}

func TestSchemeStrings(t *testing.T) {
	cases := map[Scheme]string{
		Baseline: "Baseline", PoWiFi: "PoWiFi", NoQueue: "NoQueue",
		BlindUDP: "BlindUDP", EqualShare: "EqualShare",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

func TestOccupancySaturatesNearAirtimeRatio(t *testing.T) {
	// At 100 µs inter-packet delay on a free channel, a single radio's
	// occupancy (airtime fraction) should sit near the DCF limit for
	// back-to-back 54 Mbps frames, roughly 60-75%.
	sched, channels, rt := newRig(PoWiFi)
	rt.Start()
	sched.RunUntil(2 * time.Second)
	air := channels[phy.Channel6].TxAirtime[medium.KindPower]
	frac := float64(air) / float64(2*time.Second)
	if frac < 0.5 || frac > 0.8 {
		t.Errorf("power airtime fraction = %.2f, want 0.5-0.8", frac)
	}
}

func TestBeaconsTransmittedUnderEveryScheme(t *testing.T) {
	for _, scheme := range []Scheme{Baseline, PoWiFi} {
		sched, channels, rt := newRig(scheme)
		rt.Start()
		sched.RunUntil(time.Second)
		// 102.4 ms beacon interval: expect about 9-10 beacons per second
		// per radio.
		n := channels[phy.Channel1].TxCount[medium.KindBeacon]
		if n < 8 || n > 11 {
			t.Errorf("%v: %d beacons in 1 s, want about 9", scheme, n)
		}
	}
}

func TestStopHaltsBeacons(t *testing.T) {
	sched, channels, rt := newRig(Baseline)
	rt.Start()
	sched.RunUntil(500 * time.Millisecond)
	rt.Stop()
	before := channels[phy.Channel1].TxCount[medium.KindBeacon]
	sched.RunUntil(1500 * time.Millisecond)
	after := channels[phy.Channel1].TxCount[medium.KindBeacon]
	if after > before {
		t.Errorf("beacons continued after Stop: %d -> %d", before, after)
	}
}
