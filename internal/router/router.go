// Package router implements the PoWiFi router of §3.2 — the paper's core
// networking contribution.
//
// A Router drives one 802.11 radio per 2.4 GHz channel (the prototype used
// three Atheros AR9580 chipsets on channels 1, 6 and 11). Each radio runs
// a power-packet injector, a user-space loop that sends 1500-byte UDP
// broadcast datagrams with a fixed inter-packet delay. The three kernel
// components of the paper's selective transmission mechanism map onto this
// package as follows:
//
//   - Power_Socket: Injector marks its datagrams as power traffic
//     (medium.KindPower — the analogue of the IP_Power IP option).
//   - Power_MACshim: Injector reads the radio's transmit-queue depth
//     through mac.Station.QueueLen.
//   - IP_Power: the per-packet decision in inject() drops the datagram
//     before it reaches the MAC when the queue depth is at or above the
//     threshold.
//
// The package also implements the paper's comparison schemes: Baseline
// (no injection), BlindUDP (1 Mbps saturation), NoQueue (54 Mbps without
// the queue check) and EqualShare (power packets at the neighbor's rate,
// Fig. 8's fairness baseline).
package router

import (
	"fmt"
	"time"

	"repro/internal/eventsim"
	"repro/internal/mac"
	"repro/internal/medium"
	"repro/internal/phy"
	"repro/internal/xrand"
)

// Scheme is a router transmission policy from §4.1.
type Scheme int

// The schemes compared throughout the paper's evaluation.
const (
	// Baseline disables power traffic entirely.
	Baseline Scheme = iota
	// PoWiFi injects 54 Mbps broadcast power packets gated by the
	// transmit-queue depth threshold.
	PoWiFi
	// NoQueue injects 54 Mbps power packets without the queue check.
	NoQueue
	// BlindUDP saturates the channel with 1 Mbps broadcast traffic.
	BlindUDP
	// EqualShare transmits power packets at the same bit rate as the
	// neighboring network under test (Fig. 8).
	EqualShare
)

// String returns the paper's name for the scheme.
func (s Scheme) String() string {
	switch s {
	case Baseline:
		return "Baseline"
	case PoWiFi:
		return "PoWiFi"
	case NoQueue:
		return "NoQueue"
	case BlindUDP:
		return "BlindUDP"
	case EqualShare:
		return "EqualShare"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// Config parameterizes a Router.
type Config struct {
	// Scheme selects the transmission policy.
	Scheme Scheme
	// Channels lists the channels to inject power traffic on.
	Channels []phy.Channel
	// TxPowerDBm is the per-radio transmit power (30 dBm prototype).
	TxPowerDBm float64
	// AntennaGainDBi is the per-radio antenna gain (6 dBi prototype).
	AntennaGainDBi float64
	// InterPacketDelay is the injector's user-space pacing (100 µs).
	InterPacketDelay time.Duration
	// QueueDepthThreshold is the IP_Power drop threshold (5 frames).
	QueueDepthThreshold int
	// PowerPacketBytes is the broadcast datagram size (1500 bytes).
	PowerPacketBytes int
	// EqualShareRate is the power-packet rate under EqualShare.
	EqualShareRate phy.Rate
	// Location places the router.
	Location medium.Location
	// BeaconInterval spaces the AP beacons every radio transmits
	// regardless of scheme (102.4 ms per the 802.11 default; 0 disables).
	// Beacons matter to harvesting: §3.2 notes the harvester draws power
	// from "beacon transmissions" just like any other frame.
	BeaconInterval time.Duration
	// SleepJitter is the standard deviation of user-space timer jitter as
	// a fraction of the inter-packet delay (OS scheduling noise).
	SleepJitter float64
	// UserWakeCost is the mean extra latency (exponentially distributed)
	// between the injector's timer firing and its packet reaching the
	// transmit queue: scheduler wakeup plus the Power_MACshim queue-depth
	// query round trip. This is why queue-depth thresholds below five
	// lose occupancy in Fig. 5 — the user-space program cannot refill a
	// nearly-empty queue fast enough.
	UserWakeCost time.Duration
}

// DefaultConfig returns the paper's operating point: PoWiFi on channels
// 1/6/11, 30 dBm, 6 dBi, 100 µs inter-packet delay, queue threshold 5,
// 1500-byte packets.
func DefaultConfig() Config {
	return Config{
		Scheme:              PoWiFi,
		Channels:            phy.PoWiFiChannels,
		TxPowerDBm:          30,
		AntennaGainDBi:      6,
		InterPacketDelay:    100 * time.Microsecond,
		QueueDepthThreshold: 5,
		PowerPacketBytes:    1500,
		BeaconInterval:      102400 * time.Microsecond,
		EqualShareRate:      phy.Rate54Mbps,
		SleepJitter:         0.1,
		UserWakeCost:        60 * time.Microsecond,
	}
}

// Radio is one channel's chipset: a MAC station plus its injector.
type Radio struct {
	Channel  phy.Channel
	MAC      *mac.Station
	Injector *Injector

	sched          *eventsim.Scheduler
	beaconOn       bool
	beaconEv       eventsim.Handle
	beaconInterval time.Duration
	beaconFn       func(any) // long-lived tick; no closure per arming

	// Cached label strings so a pooled router reseeds its per-channel
	// streams without re-concatenating (or re-formatting) labels.
	rngLabel, injLabel string
}

// Router is a PoWiFi router instance.
type Router struct {
	Cfg    Config
	Sched  *eventsim.Scheduler
	Radios map[phy.Channel]*Radio

	// radios lists the radios in cfg.Channels order; Start, Stop and
	// Reset iterate it so pooled and fresh routers schedule their
	// per-channel kick-off events in the same deterministic order.
	radios []*Radio
}

// New builds a router attached to the given channel media. ids assigns a
// distinct station ID per channel (channels have independent ID spaces, so
// the same ID may be reused; the helper keeps them unique anyway).
func New(cfg Config, sched *eventsim.Scheduler, channels map[phy.Channel]*medium.Channel, baseID int, seed uint64) *Router {
	r := &Router{Cfg: cfg, Sched: sched, Radios: make(map[phy.Channel]*Radio)}
	for i, chNum := range cfg.Channels {
		chMedium, exists := channels[chNum]
		if !exists {
			continue
		}
		rngLabel := "router/" + chNum.String()
		injLabel := "injector/" + chNum.String()
		rng := xrand.NewFromLabel(seed, rngLabel)
		station := mac.NewStation(baseID+i, "router-"+chNum.String(), cfg.Location, chMedium, rng)
		station.PowerDBm = cfg.TxPowerDBm
		station.GainDBi = cfg.AntennaGainDBi
		// The client-facing interface runs fair queueing between client
		// and power flows, as mac80211's fq_codel does on real routers.
		station.Qdisc = mac.NewFairQueue(100)
		radio := &Radio{Channel: chNum, MAC: station, sched: sched, rngLabel: rngLabel, injLabel: injLabel}
		radio.Injector = &Injector{
			Sched:     sched,
			MAC:       station,
			Cfg:       cfg,
			Rate:      r.powerRate(),
			rng:       xrand.NewFromLabel(seed, injLabel),
			CheckQLen: cfg.Scheme == PoWiFi,
		}
		r.Radios[chNum] = radio
		r.radios = append(r.radios, radio)
	}
	return r
}

// Reset returns the router to its just-built state under a new seed:
// every radio's MAC and injector rewind to idle with zeroed counters and
// their RNG streams reseed in place, exactly as New(cfg, ..., seed)
// would produce. The scheduler and channels must be reset alongside by
// the pooling layer.
func (r *Router) Reset(seed uint64) {
	for _, radio := range r.radios {
		radio.MAC.Reset()
		radio.MAC.RNG().ReseedFromLabel(seed, radio.rngLabel)
		radio.beaconOn = false
		radio.beaconEv = eventsim.Handle{}
		in := radio.Injector
		in.rng.ReseedFromLabel(seed, radio.injLabel)
		in.running = false
		in.stopEv = eventsim.Handle{}
		in.Attempted = 0
		in.DroppedByIPPower = 0
		in.Injected = 0
	}
}

// powerRate returns the bit rate for power packets under the configured
// scheme.
func (r *Router) powerRate() phy.Rate {
	switch r.Cfg.Scheme {
	case BlindUDP:
		return phy.Rate1Mbps
	case EqualShare:
		return r.Cfg.EqualShareRate
	default:
		return phy.Rate54Mbps
	}
}

// Start launches the beacons on every radio and, except under Baseline,
// the power injectors.
func (r *Router) Start() {
	for _, radio := range r.radios {
		radio.startBeacons(r.Cfg.BeaconInterval)
		if r.Cfg.Scheme != Baseline {
			radio.Injector.Start()
		}
	}
}

// startBeacons arms the radio's periodic beacon transmission: a 100-byte
// management frame at the 6 Mbps basic rate. The tick callback is bound
// once and re-arms itself, so steady-state beaconing allocates nothing.
func (radio *Radio) startBeacons(interval time.Duration) {
	if interval <= 0 || radio.beaconOn {
		return
	}
	radio.beaconOn = true
	radio.beaconInterval = interval
	if radio.beaconFn == nil {
		radio.beaconFn = func(any) {
			if !radio.beaconOn {
				return
			}
			f := radio.MAC.NewFrame()
			f.DstID = medium.Broadcast
			f.Bytes = 100
			f.Kind = medium.KindBeacon
			f.FixedRate = phy.Rate6Mbps
			radio.MAC.Enqueue(f)
			if radio.beaconOn {
				radio.beaconEv = radio.sched.AfterCtx(radio.beaconInterval, radio.beaconFn, nil)
			}
		}
	}
	radio.beaconEv = radio.sched.AfterCtx(interval, radio.beaconFn, nil)
}

// Stop halts the injectors and beacons.
func (r *Router) Stop() {
	for _, radio := range r.radios {
		radio.Injector.Stop()
		radio.beaconOn = false
		radio.beaconEv.Cancel()
		radio.beaconEv = eventsim.Handle{}
	}
}

// Radio returns the radio on the given channel, or nil.
func (r *Router) Radio(ch phy.Channel) *Radio {
	return r.Radios[ch]
}

// Injector is the user-space power-packet program plus the IP-layer
// IP_Power decision of §3.2.
type Injector struct {
	Sched *eventsim.Scheduler
	MAC   *mac.Station
	Cfg   Config
	// Rate is the bit rate power packets are transmitted at.
	Rate phy.Rate
	// CheckQLen enables the IP_Power queue-depth check.
	CheckQLen bool

	rng     *xrand.Rand
	running bool
	stopEv  eventsim.Handle
	loopFn  func(any) // long-lived injection loop; no closure per bin

	// Attempted counts user-space send calls; DroppedByIPPower counts
	// packets dropped by the queue-threshold check (the error code
	// returned to user space); Injected counts packets that reached the
	// transmit queue.
	Attempted        int
	DroppedByIPPower int
	Injected         int
}

// Start begins the injection loop.
func (in *Injector) Start() {
	if in.running {
		return
	}
	in.running = true
	if in.loopFn == nil {
		in.loopFn = func(any) {
			if !in.running {
				return
			}
			in.inject()
			delay := in.Cfg.InterPacketDelay
			if in.Cfg.SleepJitter > 0 {
				j := in.rng.Normal(0, in.Cfg.SleepJitter*float64(delay))
				delay += time.Duration(j)
			}
			if in.Cfg.UserWakeCost > 0 {
				delay += time.Duration(in.rng.Exp(float64(in.Cfg.UserWakeCost)))
			}
			if delay < 10*time.Microsecond {
				delay = 10 * time.Microsecond
			}
			in.stopEv = in.Sched.AfterCtx(delay, in.loopFn, nil)
		}
	}
	in.loopFn(nil)
}

// Stop halts the injection loop.
func (in *Injector) Stop() {
	in.running = false
	in.stopEv.Cancel()
	in.stopEv = eventsim.Handle{}
}

// inject performs one user-space send: the IP_Power check followed by the
// MAC enqueue.
func (in *Injector) inject() {
	in.Attempted++
	if in.CheckQLen && in.MAC.QueueLen() >= in.Cfg.QueueDepthThreshold {
		// ip_local_out_sk: enough packets queued already; drop the power
		// packet and return the error to user space.
		in.DroppedByIPPower++
		return
	}
	f := in.MAC.NewFrame()
	f.DstID = medium.Broadcast
	f.Bytes = in.Cfg.PowerPacketBytes
	f.Kind = medium.KindPower
	f.FixedRate = in.Rate
	if in.MAC.Enqueue(f) {
		in.Injected++
	}
}
