// Package core is the PoWiFi system facade: it couples the router's
// multi-channel power transmissions (internal/router) to the harvesting
// hardware (internal/harvester) and the sensing applications
// (internal/sensors) — the co-design that is the paper's central
// contribution.
//
// The key abstraction is the PowerLink: the time-averaged RF power a
// device receives on each Wi-Fi channel, determined by the router's
// transmit power, the per-channel occupancy its injectors achieve, the
// distance, and any wall in between. Because the harvester cannot tell
// power packets from client traffic or beacons (§3), occupancy fractions
// are all it takes to turn a protocol-level simulation into incident
// power.
package core

import (
	"reflect"
	"time"

	"repro/internal/harvester"
	"repro/internal/phy"
	"repro/internal/rf"
	"repro/internal/sensors"
	"repro/internal/surface"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/units"
)

// PowerLink describes the RF power delivery path from a PoWiFi router to
// one harvesting device.
type PowerLink struct {
	// TxPowerDBm is the router's per-chain transmit power (30 dBm).
	TxPowerDBm float64
	// TxGainDBi is the router's antenna gain (6 dBi).
	TxGainDBi float64
	// RxGainDBi is the harvester's antenna gain (2 dBi, §2).
	RxGainDBi float64
	// DistanceFt separates router and device, in feet.
	DistanceFt float64
	// Wall, if any, sits between them (Fig. 13).
	Wall rf.WallMaterial
	// Occupancy holds the fraction of airtime the router's transmissions
	// occupy on each PoWiFi channel, indexed in phy.PoWiFiChannels order
	// (1, 6, 11). The fixed array keeps the per-bin hot path free of map
	// traffic; OccupancyFromMap adapts map-shaped callers.
	Occupancy [3]float64
	// PathLoss selects the propagation model (free space by default).
	PathLoss rf.PathLossModel
}

// OccupancyFromMap converts a per-channel occupancy map to the fixed
// array PowerLink carries, ignoring channels outside the PoWiFi set.
func OccupancyFromMap(m map[phy.Channel]float64) [3]float64 {
	var occ [3]float64
	//powifi:mapiter-ok each channel key writes its own fixed slot; iteration order cannot matter
	for chNum, v := range m {
		if i := phy.PoWiFiChannelIndex(chNum); i >= 0 {
			occ[i] = v
		}
	}
	return occ
}

// OccupancyMap returns the link's per-channel occupancy as a map, the
// inverse adapter of OccupancyFromMap for map-shaped consumers.
func (l PowerLink) OccupancyMap() map[phy.Channel]float64 {
	m := make(map[phy.Channel]float64, len(l.Occupancy))
	for i, v := range l.Occupancy {
		m[phy.PoWiFiChannels[i]] = v
	}
	return m
}

// PoWiFiLink returns the standard benchmark link: the prototype router
// (30 dBm, 6 dBi) at the given distance with the given cumulative
// occupancy spread evenly over channels 1, 6 and 11.
func PoWiFiLink(distanceFt, cumulativeOccupancy float64) PowerLink {
	per := cumulativeOccupancy / 3
	return PoWiFiLinkOccupancy(distanceFt, [3]float64{per, per, per})
}

// PoWiFiLinkOccupancy is PoWiFiLink with explicit per-channel
// occupancies (phy.PoWiFiChannels order) — the single source of the
// prototype link budget (30 dBm router, 6 dBi transmit, 2 dBi harvest
// antenna) for callers that carry measured occupancy vectors, like the
// deployment sampler and the lifecycle engine.
func PoWiFiLinkOccupancy(distanceFt float64, occupancy [3]float64) PowerLink {
	return PowerLink{
		TxPowerDBm: 30,
		TxGainDBi:  6,
		RxGainDBi:  2,
		DistanceFt: distanceFt,
		Occupancy:  occupancy,
	}
}

// FullChannelPowers returns the full (packet-burst) incident power per
// channel at the device, paired with the per-channel occupancy fractions.
func (l PowerLink) FullChannelPowers() (chans []harvester.ChannelPower, occ []float64) {
	return l.appendChannelPowers(nil, nil)
}

// appendChannelPowers appends the occupied channels' burst powers and
// occupancy fractions to the given buffers. Hot paths pass per-device
// scratch slices so the per-bin evaluation allocates nothing.
func (l PowerLink) appendChannelPowers(chans []harvester.ChannelPower, occ []float64) ([]harvester.ChannelPower, []float64) {
	for i, o := range l.Occupancy {
		if o <= 0 {
			continue
		}
		if o > 1 {
			o = 1 // a single channel cannot be more than fully occupied
		}
		chNum := phy.PoWiFiChannels[i]
		link := rf.Link{
			TxPowerDBm: l.TxPowerDBm,
			TxAntenna:  rf.Antenna{GainDBi: l.TxGainDBi},
			RxAntenna:  rf.Antenna{GainDBi: l.RxGainDBi},
			DistanceM:  units.FeetToMeters(l.DistanceFt),
			Wall:       l.Wall,
			Model:      l.PathLoss,
		}
		chans = append(chans, harvester.ChannelPower{
			FreqHz: chNum.FreqHz(),
			PowerW: link.ReceivedPowerW(chNum.FreqHz()),
		})
		occ = append(occ, o)
	}
	return chans, occ
}

// ChannelPowers returns the time-averaged incident power per channel at
// the device.
func (l PowerLink) ChannelPowers() []harvester.ChannelPower {
	chans, occ := l.FullChannelPowers()
	for i := range chans {
		chans[i].PowerW *= occ[i]
	}
	return chans
}

// TotalIncidentW returns the summed time-averaged incident power.
func (l PowerLink) TotalIncidentW() float64 {
	total := 0.0
	for _, cp := range l.ChannelPowers() {
		total += cp.PowerW
	}
	return total
}

// operatingSolver is the bursty operating-point solve shared by the
// exact path (*harvester.Harvester) and the interpolated path
// (*surface.Surface); both satisfy it by construction.
type operatingSolver interface {
	CanBootBursty(chans []harvester.ChannelPower, occupancy []float64) bool
	BurstyOperating(chans []harvester.ChannelPower, occupancy []float64) harvester.Operating
}

// solverFor returns the operating-point solver for h: the shared
// error-bounded surface unless exact (or the global escape hatch)
// forces the direct path. The surface pointer is memoized through cache
// so the per-bin hot path never re-derives the registry key.
func solverFor(h *harvester.Harvester, exact bool, cache **surface.Surface) operatingSolver {
	if exact || !surface.Enabled() {
		return h
	}
	if *cache == nil {
		*cache = surface.For(h)
	}
	return *cache
}

// countOutcome maps a surface query outcome onto the telemetry counter
// group. Nil-safe; the query's answer is unaffected either way.
func countOutcome(t *telemetry.SurfaceCounters, out surface.Outcome) {
	switch out {
	case surface.OutcomeGuardBand:
		t.GuardBand()
	case surface.OutcomeExact:
		t.ExactFallback()
	default:
		t.Hit()
	}
}

// noteOutcome feeds one surface query outcome to whichever observers
// the device carries: the telemetry counters and the flight recorder
// (which keeps only the anomalous outcomes). Nil observers no-op.
func (d *TempSensorDevice) noteOutcome(out surface.Outcome) {
	countOutcome(d.Tele, out)
	switch out {
	case surface.OutcomeGuardBand:
		d.Trace.SurfaceGuard()
	case surface.OutcomeExact:
		d.Trace.SurfaceExact()
	}
}

// linkExpander is the per-device scratch + memo for materializing a
// PowerLink's occupied channels without allocating: reusable channel/
// occupancy buffers, and a link-budget memo keyed on the link geometry.
// The deployment hot path evaluates the same geometry (power, gains,
// distance, wall, model) bin after bin with only the occupancy
// changing, and the RF budget is independent of occupancy — linkKey is
// the last geometry (occupancy zeroed); chPowerW the full per-channel
// received power it produces. Path loss models must be comparable
// values for the key to work — both in-tree models are. Shared by the
// temperature-sensor and camera devices (and through them by the
// lifecycle engine's per-bin chain evaluations).
type linkExpander struct {
	chansBuf []harvester.ChannelPower
	occBuf   []float64

	linkKey   PowerLink
	linkValid bool
	chPowerW  [3]float64
}

// expand materializes the link's occupied channels into the expander's
// scratch buffers, so per-bin evaluation neither allocates nor re-solves
// the occupancy-independent RF budget when the geometry is unchanged.
// Links whose path-loss model is a non-comparable type skip the memo (a
// cache miss, never a panic).
func (e *linkExpander) expand(link PowerLink) ([]harvester.ChannelPower, []float64) {
	if link.PathLoss != nil && !reflect.TypeOf(link.PathLoss).Comparable() {
		e.chansBuf, e.occBuf = link.appendChannelPowers(e.chansBuf[:0], e.occBuf[:0])
		return e.chansBuf, e.occBuf
	}
	key := link
	key.Occupancy = [3]float64{}
	if !e.linkValid || key != e.linkKey {
		for i, chNum := range phy.PoWiFiChannels {
			rfl := rf.Link{
				TxPowerDBm: link.TxPowerDBm,
				TxAntenna:  rf.Antenna{GainDBi: link.TxGainDBi},
				RxAntenna:  rf.Antenna{GainDBi: link.RxGainDBi},
				DistanceM:  units.FeetToMeters(link.DistanceFt),
				Wall:       link.Wall,
				Model:      link.PathLoss,
			}
			e.chPowerW[i] = rfl.ReceivedPowerW(chNum.FreqHz())
		}
		e.linkKey = key
		e.linkValid = true
	}
	chans, occ := e.chansBuf[:0], e.occBuf[:0]
	for i, o := range link.Occupancy {
		if o <= 0 {
			continue
		}
		if o > 1 {
			o = 1 // a single channel cannot be more than fully occupied
		}
		chans = append(chans, harvester.ChannelPower{
			FreqHz: phy.PoWiFiChannels[i].FreqHz(),
			PowerW: e.chPowerW[i],
		})
		occ = append(occ, o)
	}
	e.chansBuf, e.occBuf = chans, occ
	return chans, occ
}

// TempSensorDevice is a complete Wi-Fi-powered temperature sensor (§5.1).
// Devices are cheap to construct and not safe for concurrent use; give
// each goroutine its own (the expensive state — the operating-point
// surface — is shared process-wide behind them).
type TempSensorDevice struct {
	Harvester *harvester.Harvester
	Sensor    *sensors.TemperatureSensor
	// Battery is the storage for the recharging version (nil for
	// battery-free).
	Battery *harvester.Battery
	// Exact forces the energy methods onto the direct operating-point
	// solver, bypassing the shared interpolation surface
	// (internal/surface). The surface certifies a relative error ≤ 1e-6
	// against the exact solver and makes identical boot decisions, so
	// Exact matters only when validating the surface itself (the CLIs
	// expose it as -exact).
	Exact bool
	// Tele, when set, counts each surface query's outcome (grid hit,
	// exact fallback, guard-band trigger). Strictly out of band: it
	// never changes which solver runs or what it returns. Queries made
	// on the direct solver (Exact, or the surface globally disabled)
	// are not surface queries and are not counted.
	Tele *telemetry.SurfaceCounters
	// Trace, when set, records exact-fallback and guard-band surface
	// outcomes into the current home's flight recorder under the same
	// out-of-band contract as Tele (grid hits are the steady state and
	// are not recorded — the ring keeps anomalies).
	Trace *trace.HomeTrace

	surf *surface.Surface // memoized by solverFor
	exp  linkExpander
}

// NewBatteryFreeTempSensor returns the §5.1 battery-free prototype.
func NewBatteryFreeTempSensor() *TempSensorDevice {
	return &TempSensorDevice{
		Harvester: harvester.NewBatteryFree(),
		Sensor:    sensors.NewTemperatureSensor(),
	}
}

// NewRechargingTempSensor returns the §5.1 battery-recharging prototype
// with its 2×AAA NiMH pack.
func NewRechargingTempSensor() *TempSensorDevice {
	return &TempSensorDevice{
		Harvester: harvester.NewBatteryCharging(),
		Sensor:    sensors.NewTemperatureSensor(),
		Battery:   harvester.NewNiMHPack(),
	}
}

// NetHarvestedW returns the device's net harvested power over the link,
// evaluated under bursty packet drive. It uses the same solver selection
// as Evaluate, so the two methods agree on any device.
func (d *TempSensorDevice) NetHarvestedW(link PowerLink) float64 {
	chans, occ := d.exp.expand(link)
	s := solverFor(d.Harvester, d.Exact, &d.surf)
	if surf, ok := s.(*surface.Surface); ok && (d.Tele != nil || d.Trace != nil) {
		op, out := surf.BurstyOperatingOutcome(chans, occ)
		d.noteOutcome(out)
		return op.HarvestedW
	}
	return s.BurstyOperating(chans, occ).HarvestedW
}

// UpdateRate returns the sensor's energy-neutral update rate over the
// link (Fig. 11's y-axis). Battery-free devices additionally require the
// harvester to clear its cold-start threshold.
func (d *TempSensorDevice) UpdateRate(link PowerLink) float64 {
	rate, _ := d.Evaluate(link)
	return rate
}

// Evaluate returns the sensor's update rate and net harvested power
// over the link from a single operating-point solve. The rectifier
// solve dominates per-bin cost in deployment and fleet runs, so the
// hot path must not pay for it twice — and a device that cannot clear
// cold-start banks nothing, so the cheap boot check short-circuits the
// solve entirely with (0, 0).
//
// By default the solve is served from the shared error-bounded
// interpolation surface (internal/surface): identical boot decisions,
// harvested power within the surface's certified ε of the exact solver,
// and a per-bin cost of a table lookup instead of a Bessel/Newton solve.
// Set Exact (or disable the surface globally) to force the direct path.
func (d *TempSensorDevice) Evaluate(link PowerLink) (rateHz, netW float64) {
	chans, occ := d.exp.expand(link)
	s := solverFor(d.Harvester, d.Exact, &d.surf)
	if surf, ok := s.(*surface.Surface); ok && (d.Tele != nil || d.Trace != nil) {
		boots, out := surf.CanBootBurstyOutcome(chans, occ)
		d.noteOutcome(out)
		if !boots {
			return 0, 0
		}
		op, out := surf.BurstyOperatingOutcome(chans, occ)
		d.noteOutcome(out)
		netW = op.HarvestedW
		return d.Sensor.UpdateRate(netW), netW
	}
	if !s.CanBootBursty(chans, occ) {
		return 0, 0
	}
	netW = s.BurstyOperating(chans, occ).HarvestedW
	return d.Sensor.UpdateRate(netW), netW
}

// EvaluateBatch evaluates the sensor over a contiguous batch of
// occupancy vectors sharing one link geometry — the struct-of-arrays
// form of the fleet hot path. Solver selection, the surface handle and
// the occupancy-independent RF budget (linkExpander's memo) are resolved
// once per batch instead of once per bin, and the surface is driven
// through a single lookup loop (EvaluateOutcome). Element i is
// bit-identical to Evaluate(PoWiFiLinkOccupancy(distanceFt, occupancy[i]))
// — the batched-vs-streamed parity suite pins this — and telemetry
// counting follows Evaluate's contract exactly. rateHz and netW must be
// at least len(occupancy) long.
func (d *TempSensorDevice) EvaluateBatch(distanceFt float64, occupancy [][3]float64, rateHz, netW []float64) {
	s := solverFor(d.Harvester, d.Exact, &d.surf)
	surf, isSurf := s.(*surface.Surface)
	for i := range occupancy {
		chans, occ := d.exp.expand(PoWiFiLinkOccupancy(distanceFt, occupancy[i]))
		if isSurf && (d.Tele != nil || d.Trace != nil) {
			if d.Trace != nil {
				d.Trace.SetBin(i)
			}
			w, boots, bootOut, opOut, opQueried := surf.EvaluateOutcome(chans, occ)
			d.noteOutcome(bootOut)
			if opQueried {
				d.noteOutcome(opOut)
			}
			if !boots {
				rateHz[i], netW[i] = 0, 0
				continue
			}
			netW[i] = w
			rateHz[i] = d.Sensor.UpdateRate(w)
			continue
		}
		if !s.CanBootBursty(chans, occ) {
			rateHz[i], netW[i] = 0, 0
			continue
		}
		w := s.BurstyOperating(chans, occ).HarvestedW
		netW[i] = w
		rateHz[i] = d.Sensor.UpdateRate(w)
	}
}

// CameraDevice is a complete Wi-Fi-powered camera (§5.2). Both camera
// versions use the TI bq25570 chain; the battery-free version stores into
// the AVX supercapacitor, the recharging version into a Li-Ion coin cell.
type CameraDevice struct {
	Harvester *harvester.Harvester
	Camera    *sensors.Camera
	// StandbyW is the device's standing drain while banking energy:
	// converter quiescent plus storage leakage. Calibrated so the
	// battery-free camera reaches 17 ft and the recharging camera 23 ft
	// (Fig. 12).
	StandbyW float64
	// Battery is set for the recharging version.
	Battery *harvester.Battery
	// Exact forces the direct operating-point solver, as on
	// TempSensorDevice.
	Exact bool
	// Tele counts surface query outcomes, as on TempSensorDevice.
	Tele *telemetry.SurfaceCounters

	surf *surface.Surface // memoized by solverFor
	exp  linkExpander
}

// NewBatteryFreeCamera returns the §5.2 battery-free prototype
// (supercapacitor storage).
func NewBatteryFreeCamera() *CameraDevice {
	return &CameraDevice{
		Harvester: harvester.NewBatteryCharging(), // bq25570 chain
		Camera:    sensors.NewCamera(),
		StandbyW:  2.2e-6, // buck standby + supercap leakage
	}
}

// NewRechargingCamera returns the §5.2 battery-recharging prototype with
// its 1 mAh Li-Ion coin cell.
func NewRechargingCamera() *CameraDevice {
	return &CameraDevice{
		Harvester: harvester.NewBatteryCharging(),
		Camera:    sensors.NewCamera(),
		StandbyW:  0.4e-6, // the battery absorbs charge with less overhead
		Battery:   harvester.NewLiIonCoinCell(),
	}
}

// NetHarvestedW returns net banked power over the link, after standby
// drain, evaluated under bursty packet drive. It shares the pooled link
// expander with Evaluate, so sweeping occupancy over a fixed geometry
// (the lifecycle engine's per-bin pattern) allocates nothing.
func (d *CameraDevice) NetHarvestedW(link PowerLink) float64 {
	return d.Evaluate(link)
}

// Evaluate returns the camera's net banked power over the link from a
// single operating-point solve: the bursty harvest of the bq25570
// chain minus the standby drain. Like TempSensorDevice.Evaluate it is
// served from the shared error-bounded surface unless Exact is set,
// and the link expansion reuses per-device scratch so the per-bin hot
// path is allocation-free in steady state.
func (d *CameraDevice) Evaluate(link PowerLink) (netW float64) {
	chans, occ := d.exp.expand(link)
	s := solverFor(d.Harvester, d.Exact, &d.surf)
	if surf, ok := s.(*surface.Surface); ok && d.Tele != nil {
		op, out := surf.BurstyOperatingOutcome(chans, occ)
		countOutcome(d.Tele, out)
		return op.HarvestedW - d.StandbyW
	}
	return s.BurstyOperating(chans, occ).HarvestedW - d.StandbyW
}

// InterFrameTime returns the time between captures over the link, or +Inf
// out of range (Fig. 12/13's y-axis).
func (d *CameraDevice) InterFrameTime(link PowerLink) time.Duration {
	return d.Camera.InterFrameTime(d.NetHarvestedW(link))
}

// OperatingRangeFt returns the maximum distance (feet) at which the given
// predicate holds, searching outward in 0.25 ft steps — how the paper
// reports sensor ranges.
func OperatingRangeFt(maxFt float64, operates func(distanceFt float64) bool) float64 {
	lastGood := 0.0
	for d := 0.5; d <= maxFt; d += 0.25 {
		if operates(d) {
			lastGood = d
		}
	}
	return lastGood
}

// BatteryChargeTime returns the time to bring a battery from fromSoC to
// toSoC at the given net charging power, or +Inf if netW <= 0. It is a
// thin wrapper over harvester.Battery.ConstantPowerChargeTime — the
// same ledger primitive the stateful lifecycle engine
// (internal/lifecycle) integrates per bin — so the constant-power
// shortcut and the engine cannot diverge.
func BatteryChargeTime(b *harvester.Battery, fromSoC, toSoC, netW float64) time.Duration {
	return b.ConstantPowerChargeTime(fromSoC, toSoC, netW)
}
