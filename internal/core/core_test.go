package core

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/phy"
	"repro/internal/rf"
	"repro/internal/units"
	"repro/internal/xrand"
)

func TestPoWiFiLinkSplitsOccupancyEvenly(t *testing.T) {
	link := PoWiFiLink(10, 0.9)
	for _, chNum := range phy.PoWiFiChannels {
		occ := link.Occupancy[phy.PoWiFiChannelIndex(chNum)]
		if math.Abs(occ-0.3) > 1e-12 {
			t.Errorf("%v occupancy = %v, want 0.3", chNum, occ)
		}
	}
	// The map adapters round-trip the fixed array.
	if got := OccupancyFromMap(link.OccupancyMap()); got != link.Occupancy {
		t.Errorf("OccupancyFromMap(OccupancyMap()) = %v, want %v", got, link.Occupancy)
	}
}

func TestChannelPowersScaleWithOccupancy(t *testing.T) {
	full := PoWiFiLink(10, 0.9)
	half := PoWiFiLink(10, 0.45)
	pf := full.TotalIncidentW()
	ph := half.TotalIncidentW()
	if math.Abs(pf/ph-2) > 1e-9 {
		t.Errorf("incident power ratio = %v, want 2", pf/ph)
	}
}

func TestIncidentPowerMatchesLinkBudget(t *testing.T) {
	// At 20 ft with full occupancy: -17.9 dBm per channel, three channels.
	link := PoWiFiLink(20, 3.0) // occupancy 1.0 on each channel
	perChannel := units.DBmToWatts(-17.9)
	total := link.TotalIncidentW()
	if math.Abs(total-3*perChannel)/total > 0.05 {
		t.Errorf("total incident = %v, want about %v", total, 3*perChannel)
	}
}

func TestTotalIncidentDecreasesWithDistance(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		d := r.Uniform(2, 25)
		near := PoWiFiLink(d, 0.9).TotalIncidentW()
		far := PoWiFiLink(d+5, 0.9).TotalIncidentW()
		return far < near
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWallReducesIncidentPower(t *testing.T) {
	plain := PoWiFiLink(5, 0.9)
	walled := PoWiFiLink(5, 0.9)
	walled.Wall = rf.DoubleSheetrock
	if walled.TotalIncidentW() >= plain.TotalIncidentW() {
		t.Error("wall did not attenuate")
	}
}

func TestTempSensorRangesMatchPaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: range search sweeps hundreds of rectifier solves")
	}
	// Fig. 11: battery-free operates to about 20 ft, battery-recharging
	// to about 28 ft at 91.3% cumulative occupancy. Allow the simulator
	// a ±25% band while requiring the ordering.
	bf := NewBatteryFreeTempSensor()
	bc := NewRechargingTempSensor()
	const occ = 0.913
	rbf := OperatingRangeFt(40, func(d float64) bool { return bf.UpdateRate(PoWiFiLink(d, occ)) > 0 })
	rbc := OperatingRangeFt(40, func(d float64) bool { return bc.UpdateRate(PoWiFiLink(d, occ)) > 0 })
	if rbf < 15 || rbf > 25 {
		t.Errorf("battery-free range = %.1f ft, want near 20", rbf)
	}
	if rbc < 21 || rbc > 33 {
		t.Errorf("battery-recharging range = %.1f ft, want near 28", rbc)
	}
	if rbc <= rbf {
		t.Errorf("recharging range (%.1f) must exceed battery-free (%.1f)", rbc, rbf)
	}
}

func TestTempSensorRatesDecreaseWithDistance(t *testing.T) {
	bf := NewBatteryFreeTempSensor()
	prev := math.Inf(1)
	for d := 2.0; d <= 16; d += 2 {
		rate := bf.UpdateRate(PoWiFiLink(d, 0.913))
		if rate > prev+1e-9 {
			t.Fatalf("update rate increased at %v ft", d)
		}
		prev = rate
	}
}

// TestEvaluateSurfaceMatchesExactSolver pins the device-level wiring of
// the operating-point surface: Evaluate with Exact set must agree with
// the default (surface-served) path within the surface's certified ε,
// and make identical boot decisions, across both device versions and a
// sweep of distances and occupancies.
func TestEvaluateSurfaceMatchesExactSolver(t *testing.T) {
	const eps = 1e-6
	for _, mk := range []func() *TempSensorDevice{NewBatteryFreeTempSensor, NewRechargingTempSensor} {
		for _, d := range []float64{4, 8, 12, 17, 21, 24} {
			for _, occ := range []float64{0.2, 0.6, 1.1} {
				dev := mk()
				link := PoWiFiLink(d, occ)
				rate, net := dev.Evaluate(link)
				dev.Exact = true
				rateE, netE := dev.Evaluate(link)
				if (rate > 0) != (rateE > 0) {
					t.Fatalf("%v at %v ft occ %v: boot decisions diverged (surface %v, exact %v)",
						dev.Harvester.Version, d, occ, rate, rateE)
				}
				if math.Abs(net-netE) > math.Max(eps*math.Abs(netE), 2e-12) {
					t.Errorf("%v at %v ft occ %v: netW surface %g, exact %g",
						dev.Harvester.Version, d, occ, net, netE)
				}
				if math.Abs(rate-rateE) > math.Max(eps*rateE, 1e-6) {
					t.Errorf("%v at %v ft occ %v: rate surface %g, exact %g",
						dev.Harvester.Version, d, occ, rate, rateE)
				}
			}
		}
	}
}

func TestRechargingBeatsBatteryFreeBeyond15ft(t *testing.T) {
	// The Fig. 11 crossover: past 15 ft the battery-assisted harvester
	// (no cold-start, better sensitivity) wins.
	bf := NewBatteryFreeTempSensor()
	bc := NewRechargingTempSensor()
	link := PoWiFiLink(19, 0.913)
	if bc.UpdateRate(link) <= bf.UpdateRate(link) {
		t.Errorf("at 19 ft: recharging %.2f <= battery-free %.2f",
			bc.UpdateRate(link), bf.UpdateRate(link))
	}
}

func TestCameraRangesMatchPaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: range search sweeps hundreds of rectifier solves")
	}
	// Fig. 12: battery-free to about 17 ft, recharging to about 23 ft.
	cbf := NewBatteryFreeCamera()
	cbc := NewRechargingCamera()
	const occ = 0.909
	rbf := OperatingRangeFt(40, func(d float64) bool { return cbf.NetHarvestedW(PoWiFiLink(d, occ)) > 0 })
	rbc := OperatingRangeFt(40, func(d float64) bool { return cbc.NetHarvestedW(PoWiFiLink(d, occ)) > 0 })
	if rbf < 14 || rbf > 21 {
		t.Errorf("battery-free camera range = %.1f ft, want near 17", rbf)
	}
	if rbc < 19 || rbc > 27 {
		t.Errorf("recharging camera range = %.1f ft, want near 23", rbc)
	}
	if rbc <= rbf {
		t.Error("recharging camera must out-range battery-free")
	}
}

func TestCameraInterFrameOrderOfMinutes(t *testing.T) {
	cam := NewBatteryFreeCamera()
	ift := cam.InterFrameTime(PoWiFiLink(10, 0.909))
	if ift < 2*time.Minute || ift > 90*time.Minute {
		t.Errorf("inter-frame at 10 ft = %v, want minutes-scale", ift)
	}
}

func TestThroughWallOrdering(t *testing.T) {
	// Fig. 13: more absorbing walls stretch the inter-frame time.
	cam := NewBatteryFreeCamera()
	walls := []rf.WallMaterial{rf.NoWall, rf.GlassDoublePane, rf.WoodenDoor, rf.HollowWall, rf.DoubleSheetrock}
	prev := time.Duration(0)
	for _, wall := range walls {
		link := PoWiFiLink(5, 0.909)
		link.Wall = wall
		ift := cam.InterFrameTime(link)
		if ift <= prev {
			t.Fatalf("inter-frame did not grow at %v", wall)
		}
		prev = ift
	}
}

func TestOperatingRangeFtEdges(t *testing.T) {
	if got := OperatingRangeFt(30, func(d float64) bool { return false }); got != 0 {
		t.Errorf("never-operating range = %v, want 0", got)
	}
	if got := OperatingRangeFt(30, func(d float64) bool { return true }); got < 29.5 {
		t.Errorf("always-operating range = %v, want max", got)
	}
	if got := OperatingRangeFt(30, func(d float64) bool { return d <= 12 }); math.Abs(got-12) > 0.3 {
		t.Errorf("threshold range = %v, want about 12", got)
	}
}

func TestBatteryChargeTime(t *testing.T) {
	b := NewRechargingTempSensor().Battery
	// Charging 10% of a 6480 J pack at 10 mW with 0.7 acceptance:
	// 648/0.7/0.010 = 92571 s.
	got := BatteryChargeTime(b, 0, 0.1, 10e-3)
	want := 648.0 / b.ChargeEff / 0.010
	if math.Abs(got.Seconds()-want) > 1 {
		t.Errorf("charge time = %v s, want %v", got.Seconds(), want)
	}
	if BatteryChargeTime(b, 0, 0.5, 0) < time.Duration(math.MaxInt64) {
		t.Error("zero net power must never charge")
	}
	if BatteryChargeTime(b, 0.5, 0.5, 1) < time.Duration(math.MaxInt64) {
		t.Error("equal SoCs should return infinity")
	}
}

func TestOutOfRangeLinkYieldsZero(t *testing.T) {
	bf := NewBatteryFreeTempSensor()
	if rate := bf.UpdateRate(PoWiFiLink(35, 0.913)); rate != 0 {
		t.Errorf("rate at 35 ft = %v, want 0", rate)
	}
	cam := NewBatteryFreeCamera()
	if net := cam.NetHarvestedW(PoWiFiLink(35, 0.909)); net > 0 {
		t.Errorf("camera net power at 35 ft = %v, want <= 0", net)
	}
}

func TestTransientSensorAgreesWithAnalyticRate(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: multi-second transient simulation")
	}
	// The stepped charge/release simulation and the analytic power-balance
	// model must agree on the update rate at steady state (within 2x: the
	// transient pays real boot and release overheads).
	link := PoWiFiLink(8, 0.913)
	res := SimulateBatteryFreeSensor(link, 3*time.Second, 7)
	analytic := NewBatteryFreeTempSensor().UpdateRate(link)
	if res.Reads == 0 {
		t.Fatal("transient sensor never fired at 8 ft")
	}
	ratio := res.Rate() / analytic
	if ratio < 0.4 || ratio > 2.5 {
		t.Errorf("transient rate %.2f/s vs analytic %.2f/s (ratio %.2f)", res.Rate(), analytic, ratio)
	}
	if res.PumpFraction <= 0 {
		t.Error("pump never ran")
	}
	if res.PeakNodeV < 0.3 {
		t.Errorf("rectifier node peaked at %v V, below the pump threshold", res.PeakNodeV)
	}
}

func TestTransientSensorSilentOutOfRange(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: transient simulation")
	}
	link := PoWiFiLink(30, 0.913)
	res := SimulateBatteryFreeSensor(link, time.Second, 7)
	if res.Reads != 0 {
		t.Errorf("sensor fired %d times at 30 ft; it must be out of range", res.Reads)
	}
}

func TestTransientSensorDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: two transient simulations")
	}
	link := PoWiFiLink(8, 0.913)
	a := SimulateBatteryFreeSensor(link, time.Second, 9)
	b := SimulateBatteryFreeSensor(link, time.Second, 9)
	if a.Reads != b.Reads || a.PeakNodeV != b.PeakNodeV {
		t.Errorf("identical seeds diverged: %d/%v vs %d/%v", a.Reads, a.PeakNodeV, b.Reads, b.PeakNodeV)
	}
}
