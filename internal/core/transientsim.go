package core

import (
	"math"
	"time"

	"repro/internal/harvester"
	"repro/internal/xrand"
)

// TransientSensorResult summarizes a stepped simulation of the complete
// battery-free temperature sensor: rectifier node dynamics, Seiko charge
// pump, storage capacitor, and the MCU firing a 2.77 µJ measurement every
// time the 2.4 V release threshold is reached.
type TransientSensorResult struct {
	// Reads is the number of completed sensor readings.
	Reads int
	// Duration is the simulated time.
	Duration time.Duration
	// PumpFraction is the fraction of time the charge pump ran (the
	// rectifier node sat above 300 mV).
	PumpFraction float64
	// PeakNodeV is the highest rectifier-node voltage observed.
	PeakNodeV float64
}

// Rate returns the measured update rate in reads/second.
func (r *TransientSensorResult) Rate() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Reads) / r.Duration.Seconds()
}

// SimulateBatteryFreeSensor steps the full battery-free chain under a
// packet-burst schedule derived from the link's per-channel occupancies:
// each channel alternates between ~250 µs bursts at full received power
// and exponentially distributed silences that realize its occupancy
// fraction. This is the microscopic counterpart of the analytic
// TempSensorDevice.UpdateRate — the two agree at steady state, and the
// transient exposes the boot/charge/release cycle the analytic model
// abstracts away.
func SimulateBatteryFreeSensor(link PowerLink, duration time.Duration, seed uint64) *TransientSensorResult {
	h := harvester.NewBatteryFree()
	// The storage capacitor is sized so one 2.4 V -> 1.9 V discharge
	// window yields the 2.77 µJ a measurement costs:
	// C = 2·E/(V1²−V2²) ≈ 2.6 µF.
	store := &harvester.Capacitor{C: 2.6e-6}
	tr := harvester.NewTransient(h, store)
	sensor := NewBatteryFreeTempSensor().Sensor

	chans, occ := link.FullChannelPowers()
	rng := xrand.NewFromLabel(seed, "transient-sensor")

	// Per-channel on/off burst state.
	const burst = 250e-6
	type chState struct {
		on        bool
		remaining float64
	}
	states := make([]chState, len(chans))
	silence := func(i int) float64 {
		o := occ[i]
		if o <= 0 {
			return math.Inf(1)
		}
		if o >= 1 {
			return 0
		}
		return rng.Exp(burst * (1 - o) / o)
	}
	for i := range states {
		states[i] = chState{on: rng.Bool(occ[i]), remaining: rng.Exp(burst)}
	}

	res := &TransientSensorResult{Duration: duration}
	const dt = 10e-6
	active := make([]harvester.ChannelPower, len(chans))
	pumpTime := 0.0
	mcuOnV := h.Seiko.ReleaseV
	mcuOffV := sensor.MCU.MinVoltage

	for t := 0.0; t < duration.Seconds(); t += dt {
		for i := range states {
			states[i].remaining -= dt
			if states[i].remaining <= 0 {
				states[i].on = !states[i].on
				if states[i].on {
					states[i].remaining = burst
				} else {
					states[i].remaining = silence(i)
				}
			}
			active[i] = chans[i]
			if !states[i].on {
				active[i].PowerW = 0
			}
		}
		v := tr.Step(dt, active)
		if v > res.PeakNodeV {
			res.PeakNodeV = v
		}
		if tr.PumpRunning {
			pumpTime += dt
		}
		// MCU duty cycle: when the storage capacitor reaches the release
		// voltage, the Seiko connects the output and the firmware spends
		// one measurement's worth of energy, draining the capacitor back
		// toward the MCU's brown-out voltage.
		if store.Voltage() >= mcuOnV {
			need := 0.5 * store.C * (mcuOnV*mcuOnV - mcuOffV*mcuOffV)
			if need > sensor.ReadEnergyJ {
				need = sensor.ReadEnergyJ
			}
			store.Discharge(need)
			res.Reads++
		}
	}
	res.PumpFraction = pumpTime / duration.Seconds()
	return res
}
