package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestWalltime(t *testing.T) {
	linttest.Run(t, "testdata", lint.WalltimeAnalyzer,
		"wt/internal/eventsim",  // failing + escape-hatch cases
		"wt/internal/telemetry", // non-deterministic package: silent
	)
}

func TestRngsource(t *testing.T) {
	linttest.Run(t, "testdata", lint.RngsourceAnalyzer,
		"rng/internal/deploy", // banned imports + import-line hatch
		"rng/internal/xrand",  // the exempted wrapper package: silent
	)
}

func TestMapiter(t *testing.T) {
	linttest.Run(t, "testdata", lint.MapiterAnalyzer,
		"mi/internal/stats", // unsafe folds vs key-collect/drain/hatch
	)
}

func TestNoalloc(t *testing.T) {
	linttest.Run(t, "testdata", lint.NoallocAnalyzer,
		"na/hot", // annotated bad/ok functions + unannotated control
	)
}

func TestSDKBoundary(t *testing.T) {
	linttest.Run(t, "testdata", lint.SDKBoundaryAnalyzer,
		"sb/cmd/app",       // flagged import + import-line and whole-file hatches
		"sb/examples/demo", // examples/ trees are consumers too
		"sb/pkglib",        // non-consumer package: silent
	)
}

func TestMergecheck(t *testing.T) {
	linttest.Run(t, "testdata", lint.MergecheckAnalyzer,
		"mc/agg",
	)
}

func TestDirective(t *testing.T) {
	linttest.Run(t, "testdata", lint.DirectiveAnalyzer,
		"dir/d", // includes a _test.go fixture: directives are checked there too
	)
}
