package lint

import (
	"strconv"
	"strings"

	"repro/internal/lint/analysis"
)

// RngsourceAnalyzer enforces the RNG discipline: every random draw in
// the repo flows through internal/xrand's labeled splitmix64 streams,
// which is what makes per-home randomness a pure function of
// (seed, label) — the foundation of both worker invariance and the
// deterministic fault-injection registry. math/rand's global state,
// math/rand/v2's per-call sources and crypto/rand's kernel entropy all
// break that: the same scenario would stop producing the same bits.
var RngsourceAnalyzer = &analysis.Analyzer{
	Name: "rngsource",
	Doc: "forbid math/rand, math/rand/v2 and crypto/rand outside internal/xrand\n\n" +
		"All randomness must flow through internal/xrand labeled streams so\n" +
		"every draw is a pure function of (seed, label). Escape hatch:\n" +
		"//powifi:rngsource-ok <reason> on the import line.",
	Run: runRngsource,
}

var rngBannedImports = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

// isXrandPackage reports whether the path is internal/xrand itself (the
// one package allowed to reference the banned sources, e.g. to cite or
// wrap them).
func isXrandPackage(path string) bool {
	return path == "xrand" || strings.HasSuffix(path, "/xrand") ||
		strings.Contains(path, "/xrand/")
}

func runRngsource(pass *analysis.Pass) (any, error) {
	if isXrandPackage(pkgPath(pass)) {
		return nil, nil
	}
	dirs := parseDirectives(pass)
	for _, f := range pass.Files {
		if isTestFile(pass, f.Pos()) {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || !rngBannedImports[path] {
				continue
			}
			if dirs.okAt(pass, f, imp.Pos(), "rngsource-ok") {
				continue
			}
			pass.Reportf(imp.Pos(),
				"import of %s outside internal/xrand: randomness must flow through xrand's "+
					"labeled streams so every draw is a pure function of (seed, label)", path)
		}
	}
	return nil, nil
}
