// Package lint is the powifi static-enforcement suite: go/analysis-style
// analyzers that turn the repo's determinism, RNG-discipline,
// hot-path-allocation and SDK-boundary contracts from tribal knowledge
// (runtime tests, a grep in CI) into compile-time checks.
//
// The analyzers (run them all via cmd/powifi-lint, standalone or as
// `go vet -vettool=`):
//
//   - walltime: no wall-clock reads (time.Now/Since/Sleep/timers) in
//     deterministic packages; escape hatch //powifi:walltime-ok <reason>.
//   - rngsource: all randomness flows through internal/xrand labeled
//     streams — no math/rand, math/rand/v2 or crypto/rand elsewhere;
//     escape hatch //powifi:rngsource-ok <reason>.
//   - mapiter: no ordering-sensitive `range` over a map in deterministic
//     packages (map iteration order is the classic worker-invariance
//     killer); key-collection and delete-only loops are recognized as
//     safe, everything else needs //powifi:mapiter-ok <reason>.
//   - noalloc: functions annotated //powifi:noalloc reject
//     allocation-prone constructs (escaping composite literals,
//     capturing closures, fmt calls, string concatenation, interface
//     boxing of non-pointer-shaped values, make/new, go statements).
//   - sdkboundary: production code under cmd/ and examples/ must not
//     import the module's internal packages; escape hatch
//     //powifi:sdkboundary-ok <reason> (package clause = whole file,
//     import line = that import).
//   - mergecheck: error results of stats.Sketch/Welford TryMerge and of
//     the checkpoint encode/decode path must not be discarded; escape
//     hatch //powifi:mergecheck-ok <reason>.
//   - directive: hygiene for the //powifi: comments themselves — known
//     names only, and every *-ok escape hatch carries a human-readable
//     reason.
//
// All analyzers skip _test.go files: the contracts bind production
// code, while the runtime suites (goldens, worker-invariance,
// AllocsPerRun pins) exercise the tests themselves.
package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzers is the full powifi-lint suite in reporting order.
var Analyzers = []*analysis.Analyzer{
	WalltimeAnalyzer,
	RngsourceAnalyzer,
	MapiterAnalyzer,
	NoallocAnalyzer,
	SDKBoundaryAnalyzer,
	MergecheckAnalyzer,
	DirectiveAnalyzer,
}

// detPackages names the deterministic packages: every package whose
// event order, RNG draws or float folds feed the bit-identical fleet
// output. internal/fleet is included — its telemetry/trace/progress
// call sites are the documented walltime escape hatches.
var detPackages = map[string]bool{
	"eventsim":  true,
	"deploy":    true,
	"core":      true,
	"lifecycle": true,
	"medium":    true,
	"mac":       true,
	"router":    true,
	"monitor":   true,
	"rf":        true,
	"phy":       true,
	"stats":     true,
	"surface":   true,
	"xrand":     true,
	"fleet":     true,
}

// pkgPath returns the package path with any vet compilation-unit suffix
// (e.g. "repro/internal/fleet [repro/internal/fleet.test]") stripped.
func pkgPath(pass *analysis.Pass) string {
	p := pass.Pkg.Path()
	if i := strings.IndexByte(p, ' '); i >= 0 {
		p = p[:i]
	}
	return p
}

// isDetPackage reports whether the package path denotes a deterministic
// package: the segment after the last "internal" segment is in
// detPackages (so internal/fleet and any future internal/fleet/sub
// count, but internal/telemetry — wall-clock by design — does not).
func isDetPackage(path string) bool {
	seg := strings.Split(path, "/")
	for i := len(seg) - 2; i >= 0; i-- {
		if seg[i] == "internal" {
			return detPackages[seg[i+1]]
		}
	}
	return false
}

// isTestFile reports whether the file containing pos is a _test.go
// file. The analyzers skip those by contract.
func isTestFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}

// directivePrefix introduces every powifi lint directive.
const directivePrefix = "//powifi:"

// directive is one parsed //powifi: comment.
type directive struct {
	name   string // e.g. "walltime-ok", "noalloc"
	reason string // text after the name; the *-ok hatches require it
	pos    token.Pos
	line   int
}

// fileDirectives maps each file to its directives keyed by source line.
type fileDirectives map[*ast.File]map[int][]directive

// parseDirectives collects every //powifi: comment in the pass's files.
// It must not skip test files: the directive analyzer validates
// directives wherever they appear.
func parseDirectives(pass *analysis.Pass) fileDirectives {
	out := make(fileDirectives, len(pass.Files))
	for _, f := range pass.Files {
		m := make(map[int][]directive)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				name, reason := rest, ""
				if i := strings.IndexAny(rest, " \t"); i >= 0 {
					name, reason = rest[:i], strings.TrimSpace(rest[i+1:])
				}
				d := directive{
					name:   name,
					reason: reason,
					pos:    c.Pos(),
					line:   pass.Fset.Position(c.Pos()).Line,
				}
				m[d.line] = append(m[d.line], d)
			}
		}
		if len(m) > 0 {
			out[f] = m
		}
	}
	return out
}

// okAt reports whether a directive of the given name covers the source
// line of pos: the directive sits on the same line (trailing comment)
// or on the line immediately above (its own comment line).
func (fd fileDirectives) okAt(pass *analysis.Pass, file *ast.File, pos token.Pos, name string) bool {
	m := fd[file]
	if m == nil {
		return false
	}
	line := pass.Fset.Position(pos).Line
	for _, ds := range [][]directive{m[line], m[line-1]} {
		for _, d := range ds {
			if d.name == name {
				return true
			}
		}
	}
	return false
}

// fileFor returns the *ast.File containing pos.
func fileFor(pass *analysis.Pass, pos token.Pos) *ast.File {
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}
