package lint_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// TestRepoIsClean runs the full analyzer suite over the repository
// itself and fails on any diagnostic: the lint contracts are part of
// tier-1, not just a CI side job. Skipped under -short — type-checking
// the whole module plus its stdlib closure from source takes a while.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("self-lint type-checks the whole module from source; skipped under -short")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	paths, err := load.Walk(root, "repro")
	if err != nil {
		t.Fatalf("enumerating packages: %v", err)
	}
	if len(paths) < 10 {
		t.Fatalf("suspiciously few packages under %s: %v", root, paths)
	}
	l := &load.Loader{Root: root, Module: "repro"}
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			t.Errorf("loading %s: %v", path, err)
			continue
		}
		for _, terr := range pkg.TypeErrors {
			t.Errorf("type error in %s: %v", path, terr)
		}
		for _, a := range lint.Analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				t.Errorf("%s: %s:%d: %s", a.Name, pos.Filename, pos.Line, d.Message)
			}
			if _, err := a.Run(pass); err != nil {
				t.Errorf("%s on %s: %v", a.Name, path, err)
			}
		}
	}
}
