// Package xrand is the rngsource exemption fixture: the one package
// allowed to reference the banned sources.
package xrand

import "math/rand"

func Wrap(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
