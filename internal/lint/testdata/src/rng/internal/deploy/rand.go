// Package deploy is an rngsource fixture: a non-xrand package reaching
// for the banned randomness sources.
package deploy

import (
	crand "crypto/rand"   // want "import of crypto/rand outside internal/xrand"
	"math/rand"           // want "import of math/rand outside internal/xrand"
	randv2 "math/rand/v2" // want "import of math/rand/v2 outside internal/xrand"
)

func use() {
	_ = rand.Int()
	_, _ = crand.Read(nil)
	_ = randv2.Int()
}
