package deploy

import (
	//powifi:rngsource-ok baseline comparison against stdlib PRNG, documented in DESIGN.md
	_ "math/rand"
)
