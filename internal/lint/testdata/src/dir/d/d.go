// Package d is a directive-hygiene fixture.
package d

//powifi:walltime-okay misspelled name // want "unknown powifi directive"
func a() {}

/* want "requires a human-readable reason" */ //powifi:mapiter-ok
func b()                                      {}

//powifi:walltime-ok progress ticker is out of band
func c() {}

//powifi:noalloc
func d() {}
