package d

//powifi:bogus directives are validated in test files too // want "unknown powifi directive"
func helper() {}
