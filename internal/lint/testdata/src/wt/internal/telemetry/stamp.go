// Package telemetry is a walltime negative fixture: not a deterministic
// package, so wall-clock reads are fine here.
package telemetry

import "time"

func Stamp() int64 { return time.Now().UnixNano() }

func Wait() { time.Sleep(time.Millisecond) }
