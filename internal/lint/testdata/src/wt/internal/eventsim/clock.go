// Package eventsim is a walltime fixture: a deterministic package that
// must not observe the wall clock.
package eventsim

import "time"

func bad() {
	_ = time.Now()                  // want "time.Now in deterministic package"
	time.Sleep(time.Millisecond)    // want "time.Sleep in deterministic package"
	_ = time.Since(time.Time{})     // want "time.Since in deterministic package"
	t := time.NewTimer(time.Second) // want "time.NewTimer in deterministic package"
	_ = t
	select {
	case <-time.After(time.Second): // want "time.After in deterministic package"
	default:
	}
}

func okDeterministicTime() {
	d := 3 * time.Second // Duration arithmetic is pure
	_ = d
	_ = time.Unix(0, 0) // explicit instants are deterministic
	_ = time.Date(2015, time.December, 1, 0, 0, 0, 0, time.UTC)
	var zero time.Time
	_ = zero.Add(d)
}

func hatch() {
	//powifi:walltime-ok progress heartbeat is strictly out of band
	_ = time.Now()
	_ = time.Now() //powifi:walltime-ok trailing form: out-of-band heartbeat
}
