package eventsim

import . "time" // a dot import must not hide the banned functions

func dotted() {
	_ = Now() // want "time.Now in deterministic package"
	_ = Unix(0, 0)
}
