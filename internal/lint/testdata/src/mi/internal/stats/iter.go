// Package stats is a mapiter fixture: ordering-sensitive map ranges in
// a deterministic package versus the recognized safe shapes.
package stats

import "sort"

func Sum(m map[string]float64) float64 {
	var s float64
	for _, v := range m { // want "range over map in deterministic package"
		s += v
	}
	return s
}

func SortedSum(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m { // safe: canonical key collection
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var s float64
	for _, k := range keys {
		s += m[k]
	}
	return s
}

func Drain(m map[int]int) {
	for k := range m { // safe: delete-only drain
		delete(m, k)
	}
}

func Commutative(m map[int]uint64) uint64 {
	var x uint64
	//powifi:mapiter-ok xor fold is commutative, order cannot matter
	for _, v := range m {
		x ^= v
	}
	return x
}

type bag map[string]int

func Named(b bag) int {
	n := 0
	for range b { // want "range over map in deterministic package"
		n++
	}
	return n
}

func Slice(xs []int) int {
	t := 0
	for _, x := range xs { // slices range in index order: fine
		t += x
	}
	return t
}
