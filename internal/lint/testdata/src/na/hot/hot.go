// Package hot is a noalloc fixture: annotated functions reject
// allocation-prone constructs, unannotated ones are left alone, and the
// pooled idioms (append, defer, value composites) stay legal.
package hot

import "fmt"

type rec struct{ a, b int }

func sinkAny(v any)      { _ = v }
func variadic(vs ...any) { _ = vs }
func release()           {}
func plain(x int) int    { return x + 1 }

//powifi:noalloc
func bad(s []int, r *rec) {
	p := &rec{a: 1} // want "escaping composite literal"
	_ = p
	q := new(rec) // want `new\(T\)`
	_ = q
	buf := make([]byte, 8) // want `make\(\.\.\.\)`
	_ = buf
	fmt.Println(r) // want "fmt.Println call"
	name := "a"
	name += "b"        // want "string concatenation"
	both := name + "c" // want "string concatenation"
	_ = both
	n := 0
	inc := func() { n++ } // want "closure capturing variables"
	inc()
	go release() // want "go statement"
	var iface any
	iface = r  // pointers fit the interface word: fine
	iface = *r // want "interface boxing of non-pointer value .assignment."
	_ = iface
	var boxed any = len(s) // want "interface boxing of non-pointer value .var declaration."
	_ = boxed
	sinkAny(42)        // want "interface boxing of non-pointer value .call argument."
	variadic(s[0], r)  // want "interface boxing of non-pointer value .call argument."
	bs := []byte(name) // want `string<->\[\]byte/\[\]rune conversion`
	_ = bs
}

//powifi:noalloc
func box(v int) any {
	return v // want "interface boxing of non-pointer value .return."
}

//powifi:noalloc pooled sampler-style kernel: pinned by AllocsPerRun
func okHot(dst []rec, spill []any) []rec {
	r := rec{a: 1, b: 2}                     // value composite: stack-allocated
	dst = append(dst, r)                     // append into pooled backing is the idiom
	defer release()                          // open-coded defer does not allocate
	flat := func(x int) int { return x * 2 } // captures nothing
	_ = flat(r.a)
	variadic(spill...) // slice passthrough: no per-arg boxing
	sinkAny(&dst[0])   // pointer-shaped: no boxing
	return dst
}

func unannotated() *rec {
	s := fmt.Sprintf("%d", 1)
	_ = s + s
	return &rec{}
}
