// Package secret is the sdkboundary fixture's internal package.
package secret

const Token = "sealed"

func Open() string { return Token }
