package main

import (
	"testing"

	"sb/internal/secret"
)

// Test files may reach into internal for fixtures: no diagnostics here.
func TestOpen(t *testing.T) {
	if secret.Open() == "" {
		t.Fatal("empty")
	}
}
