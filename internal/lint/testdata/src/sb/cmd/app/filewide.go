//powifi:sdkboundary-ok whole-file exemption: internal wiring demo
package main

import isec "sb/internal/secret"

var sealed = isec.Token
