package main

import (
	//powifi:sdkboundary-ok paper-era demo predates the SDK surface
	sec "sb/internal/secret"
)

func exempt() string { return sec.Open() }
