package main

import (
	"sb/internal/secret" // want "internal import"
	"sb/pkglib"
)

func main() {
	_ = secret.Open()
	_ = pkglib.Public()
}
