// Package pkglib is a non-consumer package: outside cmd/ and examples/
// it may import the module's internal packages freely.
package pkglib

import "sb/internal/secret"

func Public() string { return secret.Open() }
