// Package demo is an examples/ tree consumer: same boundary as cmd/.
package demo

import "sb/internal/secret" // want "internal import"

func Demo() string { return secret.Open() }
