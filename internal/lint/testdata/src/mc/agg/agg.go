// Package agg is a mergecheck fixture: TryMerge, checkpoint codec and
// ckWriter calls whose error results must be handled.
package agg

type Sketch struct{ n int }

func (s *Sketch) TryMerge(o *Sketch) error { s.n += o.n; return nil }

func (s *Sketch) Close() error { return nil }

type ckWriter struct{}

func (w *ckWriter) write(b []byte) error { _ = b; return nil }

func decodeCheckpoint(b []byte) (int, error) { return len(b), nil }

func bad(a, b *Sketch, w *ckWriter, buf []byte) {
	a.TryMerge(b)                // want "result ignored"
	_ = a.TryMerge(b)            // want "error assigned to _"
	go a.TryMerge(b)             // want "go statement"
	defer a.TryMerge(b)          // want "defer statement"
	w.write(buf)                 // want "ckWriter.write error discarded"
	decodeCheckpoint(buf)        // want "decodeCheckpoint error discarded"
	_, _ = decodeCheckpoint(buf) // want "error assigned to _"
}

func good(a, b *Sketch, w *ckWriter, buf []byte) error {
	if err := a.TryMerge(b); err != nil {
		return err
	}
	if err := w.write(buf); err != nil {
		return err
	}
	n, err := decodeCheckpoint(buf)
	if err != nil {
		return err
	}
	_ = n
	_ = a.Close() // Close is not a guarded callee
	//powifi:mergecheck-ok merging into a scratch sketch that is immediately discarded
	a.TryMerge(b)
	return nil
}
