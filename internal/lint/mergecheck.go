package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// MergecheckAnalyzer forbids discarding the error results of the
// repo's validated-merge and checkpoint codec calls. Sketch.TryMerge
// and Welford.TryMerge exist precisely because a silent mismatched
// merge corrupts a fleet aggregate without failing; discarding their
// error turns them back into the footgun they replaced. The checkpoint
// encode/decode path has the same property: an ignored error there is
// a resumed run folding garbage.
//
// Flagged callees:
//   - any method named TryMerge;
//   - any function or method whose name contains "Checkpoint"
//     (loadCheckpoint, tryLoadCheckpoint, decodeCheckpoint, ...);
//   - methods of the checkpoint writer type (ckWriter).
//
// Discarding means: calling as a bare statement, assigning the error
// to the blank identifier, or launching via go/defer. Escape hatch:
// //powifi:mergecheck-ok <reason>.
var MergecheckAnalyzer = &analysis.Analyzer{
	Name: "mergecheck",
	Doc: "forbid discarding TryMerge and checkpoint encode/decode errors\n\n" +
		"A silently failed merge or checkpoint round-trip corrupts fleet\n" +
		"aggregates; the error results exist to be handled. Escape hatch:\n" +
		"//powifi:mergecheck-ok <reason>.",
	Run: runMergecheck,
}

// mergecheckCallee reports whether the called function is one whose
// error result must be used, returning its display name.
func mergecheckCallee(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !lastResultIsError(sig) {
		return "", false
	}
	name := fn.Name()
	if name == "TryMerge" && sig.Recv() != nil {
		return recvTypeName(sig) + ".TryMerge", true
	}
	if strings.Contains(name, "Checkpoint") {
		return name, true
	}
	if sig.Recv() != nil && recvTypeName(sig) == "ckWriter" {
		return "ckWriter." + name, true
	}
	return "", false
}

func lastResultIsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	t := res.At(res.Len() - 1).Type()
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

func recvTypeName(sig *types.Signature) string {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

func runMergecheck(pass *analysis.Pass) (any, error) {
	dirs := parseDirectives(pass)
	info := pass.TypesInfo

	flag := func(f *ast.File, call *ast.CallExpr, how string) {
		name, ok := mergecheckCallee(info, call)
		if !ok {
			return
		}
		if dirs.okAt(pass, f, call.Pos(), "mergecheck-ok") {
			return
		}
		pass.Reportf(call.Pos(),
			"%s error discarded (%s): a silently failed merge or checkpoint round-trip "+
				"corrupts fleet aggregates — handle the error or annotate "+
				"//powifi:mergecheck-ok <reason>", name, how)
	}

	for _, f := range pass.Files {
		if isTestFile(pass, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					flag(f, call, "result ignored")
				}
			case *ast.GoStmt:
				flag(f, n.Call, "go statement")
			case *ast.DeferStmt:
				flag(f, n.Call, "defer statement")
			case *ast.AssignStmt:
				// Error assigned to blank: the error is the last result.
				if len(n.Rhs) != 1 {
					return true
				}
				call, ok := n.Rhs[0].(*ast.CallExpr)
				if !ok || len(n.Lhs) == 0 {
					return true
				}
				last, ok := n.Lhs[len(n.Lhs)-1].(*ast.Ident)
				if ok && last.Name == "_" {
					flag(f, call, "error assigned to _")
				}
			}
			return true
		})
	}
	return nil, nil
}
