package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/lint/analysis"
)

// SDKBoundaryAnalyzer enforces the SDK boundary: production code under
// cmd/ and examples/ consumes the public powifi SDK, never the module's
// internal packages. The pinned api/powifi.txt surface is the contract
// the CLIs and examples demonstrate; an internal import there is
// exactly the kind of leak that lets the SDK rot. This replaces the
// grep-based CI step — unlike the grep it resolves real imports (so a
// renamed or dot import cannot hide) and it covers every cmd/ and
// examples/ package, with an explicit, reasoned escape hatch for the
// paper-era demo CLIs that predate the SDK:
// //powifi:sdkboundary-ok <reason> on the package clause exempts the
// file; on an import line, that import.
var SDKBoundaryAnalyzer = &analysis.Analyzer{
	Name: "sdkboundary",
	Doc: "forbid module-internal imports in cmd/ and examples/ production code\n\n" +
		"SDK consumers must stay on the public surface (api/powifi.txt).\n" +
		"Escape hatch: //powifi:sdkboundary-ok <reason> on the package clause\n" +
		"(whole file) or on the import line (that import).",
	Run: runSDKBoundary,
}

// sdkConsumerModule returns the module prefix when path denotes an SDK
// consumer package — "cmd" or "examples" as the first or second
// segment — and ok=false otherwise.
func sdkConsumerModule(path string) (module string, ok bool) {
	seg := strings.Split(path, "/")
	for i := 0; i < len(seg) && i < 2; i++ {
		if seg[i] == "cmd" || seg[i] == "examples" {
			return strings.Join(seg[:i], "/"), true
		}
	}
	return "", false
}

// internalTo reports whether imp is an internal package of the module
// rooted at prefix ("" means the tree root).
func internalTo(module, imp string) bool {
	rel := imp
	if module != "" {
		if !strings.HasPrefix(imp, module+"/") {
			return false
		}
		rel = imp[len(module)+1:]
	}
	return rel == "internal" || strings.HasPrefix(rel, "internal/") ||
		strings.Contains(rel, "/internal/") || strings.HasSuffix(rel, "/internal")
}

func runSDKBoundary(pass *analysis.Pass) (any, error) {
	module, ok := sdkConsumerModule(pkgPath(pass))
	if !ok {
		return nil, nil
	}
	dirs := parseDirectives(pass)
	for _, f := range pass.Files {
		if isTestFile(pass, f.Pos()) {
			continue // test files may reach into internal for fixtures
		}
		if dirs.okAt(pass, f, f.Package, "sdkboundary-ok") {
			continue // whole-file exemption on the package clause
		}
		hasInternalImport := false
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || !internalTo(module, path) {
				continue
			}
			hasInternalImport = true
			if dirs.okAt(pass, f, imp.Pos(), "sdkboundary-ok") {
				continue
			}
			pass.Reportf(imp.Pos(),
				"internal import %q in SDK consumer %s: cmd/ and examples/ must stay on the "+
					"public powifi surface (api/powifi.txt)", path, pkgPath(pass))
		}
		if hasInternalImport {
			// Uses are implied by the import specs (flagged or
			// deliberately exempted); re-flagging each use would bury
			// the signal.
			continue
		}
		// Belt and braces: catch mentions of internal package-level
		// identifiers that arrive without any internal import spec in
		// this file (nothing syntactic should manage that today, but a
		// future aliasing mechanism could).
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || obj.Pkg() == nil || obj.Pkg() == pass.Pkg {
				return true
			}
			if _, isPkg := obj.(*types.PkgName); isPkg {
				return true // the qualifier itself; the import spec owns it
			}
			// Package-level declarations only: fields/methods reached by
			// promotion through SDK types are legitimate SDK usage.
			if obj.Parent() == nil || obj.Parent() != obj.Pkg().Scope() {
				return true
			}
			if !internalTo(module, obj.Pkg().Path()) {
				return true
			}
			if dirs.okAt(pass, f, id.Pos(), "sdkboundary-ok") {
				return true
			}
			pass.Reportf(id.Pos(),
				"use of internal identifier %s.%s in SDK consumer %s",
				obj.Pkg().Path(), obj.Name(), pkgPath(pass))
			return true
		})
	}
	return nil, nil
}
