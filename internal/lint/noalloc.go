package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// NoallocAnalyzer checks functions annotated //powifi:noalloc (in their
// doc comment) for allocation-prone constructs. The repo's hot paths —
// the pooled sampler kernel, the batched fleet loop, the nil-recorder/
// nil-counter instrumentation shims — are pinned to 0–5 allocs/bin by
// AllocsPerRun tests; this analyzer catches the classic regressions at
// compile time instead of at the next benchmark run:
//
//   - &T{...} composite literals (escape to the heap on any interesting
//     use) and new(T)/make(...);
//   - closures that capture variables (the closure header allocates);
//   - fmt.* calls (interface boxing plus scan state);
//   - non-constant string concatenation;
//   - interface boxing of non-pointer-shaped values (call arguments,
//     assignments, returns, conversions);
//   - string<->[]byte/[]rune conversions;
//   - go statements.
//
// Deliberately NOT flagged: append (growing into pre-sized backing
// arrays is the pooled idiom — the AllocsPerRun pins own the
// steady-state budget), defer (open-coded since Go 1.13), and plain
// value composite literals (stack-allocated).
var NoallocAnalyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc: "reject allocation-prone constructs in //powifi:noalloc functions\n\n" +
		"Annotate a hot function's doc comment with //powifi:noalloc to have\n" +
		"escaping composite literals, capturing closures, fmt calls, string\n" +
		"concatenation, interface boxing, make/new and go statements rejected\n" +
		"at vet time. The runtime AllocsPerRun pins remain the ground truth.",
	Run: runNoalloc,
}

const noallocDirective = "//powifi:noalloc"

// isNoallocFunc reports whether the function declaration carries the
// //powifi:noalloc annotation in its doc comment.
func isNoallocFunc(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == noallocDirective || strings.HasPrefix(c.Text, noallocDirective+" ") {
			return true
		}
	}
	return false
}

func runNoalloc(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if isTestFile(pass, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isNoallocFunc(fd) {
				continue
			}
			checkNoalloc(pass, fd)
		}
	}
	return nil, nil
}

func checkNoalloc(pass *analysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	report := func(pos token.Pos, what string) {
		pass.Reportf(pos, "%s in //powifi:noalloc function %s", what, name)
	}
	info := pass.TypesInfo

	// fnSig is the annotated function's own signature (for return-value
	// boxing checks). Nested func lits are flagged wholesale when they
	// capture, so their returns are not separately tracked.
	var fnSig *types.Signature
	if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
		fnSig = obj.Type().(*types.Signature)
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					report(n.Pos(), "escaping composite literal (&T{...})")
				}
			}
		case *ast.FuncLit:
			if capturesVariables(pass, fd, n) {
				report(n.Pos(), "closure capturing variables")
			}
		case *ast.GoStmt:
			report(n.Pos(), "go statement")
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isNonConstString(info, n) {
				report(n.Pos(), "string concatenation")
			}
		case *ast.AssignStmt:
			checkNoallocAssign(pass, n, report)
		case *ast.ValueSpec:
			checkNoallocValueSpec(pass, n, report)
		case *ast.ReturnStmt:
			if fnSig != nil {
				checkNoallocReturn(pass, n, fnSig, report)
			}
		case *ast.CallExpr:
			checkNoallocCall(pass, n, report)
		}
		return true
	})
}

// capturesVariables reports whether the func literal references a
// variable declared in the enclosing function but outside the literal.
func capturesVariables(pass *analysis.Pass, fd *ast.FuncDecl, fl *ast.FuncLit) bool {
	captured := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured {
			return !captured
		}
		obj := pass.TypesInfo.Uses[id]
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Declared inside the enclosing function but before/outside the
		// literal => captured. Package-level vars don't count (static).
		if v.Pos() >= fd.Pos() && v.Pos() < fd.End() &&
			!(v.Pos() >= fl.Pos() && v.Pos() < fl.End()) {
			captured = true
		}
		return true
	})
	return captured
}

func isNonConstString(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value != nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// pointerShaped reports whether values of t fit in an interface word
// without allocating: pointers, channels, maps, funcs, unsafe.Pointer.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer || u.Kind() == types.UntypedNil
	}
	return false
}

// boxes reports whether assigning a value of type src to a location of
// type dst boxes a non-pointer-shaped value into an interface.
func boxes(src, dst types.Type) bool {
	if src == nil || dst == nil {
		return false
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return false
	}
	if _, ok := src.Underlying().(*types.Interface); ok {
		return false // interface-to-interface copies the word pair
	}
	return !pointerShaped(src)
}

func exprBoxes(info *types.Info, e ast.Expr, dst types.Type) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	if tv.IsNil() {
		return false
	}
	return boxes(tv.Type, dst)
}

func checkNoallocAssign(pass *analysis.Pass, n *ast.AssignStmt, report func(token.Pos, string)) {
	info := pass.TypesInfo
	if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 {
		if tv, ok := info.Types[n.Lhs[0]]; ok {
			if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				report(n.Pos(), "string concatenation")
			}
		}
	}
	if n.Tok != token.ASSIGN || len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, lhs := range n.Lhs {
		ltv, ok := info.Types[lhs]
		if !ok {
			continue
		}
		if exprBoxes(info, n.Rhs[i], ltv.Type) {
			report(n.Rhs[i].Pos(), "interface boxing of non-pointer value (assignment)")
		}
	}
}

func checkNoallocValueSpec(pass *analysis.Pass, n *ast.ValueSpec, report func(token.Pos, string)) {
	if n.Type == nil || len(n.Values) == 0 {
		return
	}
	info := pass.TypesInfo
	dtv, ok := info.Types[n.Type]
	if !ok {
		return
	}
	for _, v := range n.Values {
		if exprBoxes(info, v, dtv.Type) {
			report(v.Pos(), "interface boxing of non-pointer value (var declaration)")
		}
	}
}

func checkNoallocReturn(pass *analysis.Pass, n *ast.ReturnStmt, sig *types.Signature, report func(token.Pos, string)) {
	res := sig.Results()
	if res.Len() != len(n.Results) {
		return // naked return or single multi-value call
	}
	for i, e := range n.Results {
		if exprBoxes(pass.TypesInfo, e, res.At(i).Type()) {
			report(e.Pos(), "interface boxing of non-pointer value (return)")
		}
	}
}

func checkNoallocCall(pass *analysis.Pass, call *ast.CallExpr, report func(token.Pos, string)) {
	info := pass.TypesInfo

	// Conversions: T(x) where T is a type.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		dst := tv.Type
		if len(call.Args) == 1 {
			src := info.Types[call.Args[0]]
			if exprBoxes(info, call.Args[0], dst) {
				report(call.Pos(), "interface boxing of non-pointer value (conversion)")
			}
			if isStringBytesConv(src.Type, dst) {
				report(call.Pos(), "string<->[]byte/[]rune conversion")
			}
		}
		return
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isB := info.Uses[id].(*types.Builtin); isB {
			switch id.Name {
			case "new":
				report(call.Pos(), "new(T)")
			case "make":
				report(call.Pos(), "make(...)")
			}
			return
		}
	}

	// fmt.* calls.
	if callee := calleeFunc(info, call); callee != nil &&
		callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
		report(call.Pos(), "fmt."+callee.Name()+" call")
		return
	}

	// Interface-typed parameters boxing concrete arguments.
	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if exprBoxes(info, arg, pt) {
			report(arg.Pos(), "interface boxing of non-pointer value (call argument)")
		}
	}
}

// isStringBytesConv reports string <-> []byte/[]rune conversions (both
// directions copy).
func isStringBytesConv(src, dst types.Type) bool {
	if src == nil || dst == nil {
		return false
	}
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteOrRuneSlice := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 ||
			b.Kind() == types.Rune || b.Kind() == types.Int32)
	}
	return (isStr(src) && isByteOrRuneSlice(dst)) || (isByteOrRuneSlice(src) && isStr(dst))
}

// calleeFunc resolves the called function object, through selectors and
// parens; nil for builtins, conversions and indirect calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}
