// Package load parses and type-checks Go packages for the powifi-lint
// analyzers using nothing but the standard library. It exists because
// the module's dependency set is pinned to the standard library, so
// golang.org/x/tools/go/packages is unavailable; this loader covers the
// two shapes the lint suite needs:
//
//   - the repo itself (the standalone `powifi-lint ./...` driver): the
//     module's packages resolve to directories under the module root,
//     and standard-library imports type-check from $GOROOT/src via the
//     stdlib "source" importer;
//   - linttest fixtures (internal/lint/testdata/src): a GOPATH-style
//     tree where every non-stdlib import path maps to a directory under
//     the tree root.
//
// The loader is deliberately simple: no vendoring, no cgo (the build
// context is forced to CgoEnabled=false, which the repo satisfies —
// the deterministic kernels are pure Go by contract), no build-tag
// matrix beyond what go/build's default context selects.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the package's import path (for the module's own packages,
	// the module-qualified path, e.g. "repro/internal/fleet").
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects soft type-checking errors. The analyzers run
	// anyway when the AST is intact; the driver decides whether to
	// surface them.
	TypeErrors []error
}

// Loader resolves import paths to directories under Root and
// type-checks them, falling back to the standard library's source
// importer for everything it cannot find there.
type Loader struct {
	// Root is the directory the loader resolves non-stdlib import paths
	// under.
	Root string
	// Module, when non-empty, is the import-path prefix that maps onto
	// Root: "repro" means "repro/internal/fleet" loads from
	// Root/internal/fleet. When empty, every import path is tried
	// verbatim under Root (the fixture-tree shape).
	Module string
	// IncludeTests parses the package's in-package _test.go files too.
	// External test packages (package foo_test) are out of scope: the
	// analyzers skip test files by contract, so loading them would be
	// dead weight.
	IncludeTests bool

	Fset *token.FileSet

	once   sync.Once
	stdlib types.Importer
	pkgs   map[string]*Package
	state  map[string]int // 0 unvisited, 1 in progress, 2 done
}

const (
	stLoading = 1
	stDone    = 2
)

func (l *Loader) init() {
	l.once.Do(func() {
		if l.Fset == nil {
			l.Fset = token.NewFileSet()
		}
		// The repo is pure Go; disabling cgo keeps the source importer
		// off the cgo preprocessing path for stdlib packages like net.
		build.Default.CgoEnabled = false
		l.stdlib = importer.ForCompiler(l.Fset, "source", nil)
		l.pkgs = make(map[string]*Package)
		l.state = make(map[string]int)
	})
}

// dirFor maps an import path to its candidate directory under Root, or
// "" when the path is outside the loader's tree.
func (l *Loader) dirFor(path string) string {
	rel := path
	if l.Module != "" {
		if path == l.Module {
			rel = "."
		} else if strings.HasPrefix(path, l.Module+"/") {
			rel = path[len(l.Module)+1:]
		} else {
			return ""
		}
	}
	dir := filepath.Join(l.Root, filepath.FromSlash(rel))
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		return ""
	}
	return dir
}

// Import implements types.Importer: local tree first, stdlib second.
func (l *Loader) Import(path string) (*types.Package, error) {
	l.init()
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir := l.dirFor(path); dir != "" {
		p, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.stdlib.Import(path)
}

// Load loads (or returns the cached) package at the given import path.
func (l *Loader) Load(path string) (*Package, error) {
	l.init()
	dir := l.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("lint/load: package %q not found under %s", path, l.Root)
	}
	return l.load(path, dir)
}

// LoadDir loads the package in dir, deriving its import path from the
// position of dir under Root.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	l.init()
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, err := filepath.Abs(l.Root)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint/load: %s is outside the load root %s", dir, l.Root)
	}
	path := filepath.ToSlash(rel)
	if path == "." {
		path = ""
	}
	if l.Module != "" {
		if path == "" {
			path = l.Module
		} else {
			path = l.Module + "/" + path
		}
	}
	return l.load(path, abs)
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if l.state[path] == stDone {
		return l.pkgs[path], nil
	}
	if l.state[path] == stLoading {
		return nil, fmt.Errorf("lint/load: import cycle through %q", path)
	}
	l.state[path] = stLoading
	defer func() {
		if l.state[path] != stDone {
			l.state[path] = 0 // allow a retry to produce the same error
		}
	}()

	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint/load: %s: %w", dir, err)
	}
	names := append([]string(nil), bp.GoFiles...)
	if l.IncludeTests {
		names = append(names, bp.TestGoFiles...)
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint/load: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint/load: no Go files in %s", dir)
	}

	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if tpkg == nil {
		return nil, fmt.Errorf("lint/load: type-checking %q: %w", path, err)
	}
	pkg.Files = files
	pkg.Types = tpkg
	pkg.Info = info
	l.pkgs[path] = pkg
	l.state[path] = stDone
	return pkg, nil
}

// Walk enumerates the import paths of every package under root that
// contains at least one non-test Go file, skipping testdata, vendored
// trees, hidden directories and git metadata. Paths are returned in
// lexical order, module-qualified when module is non-empty.
func Walk(root, module string) ([]string, error) {
	var paths []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		bp, err := build.ImportDir(p, 0)
		if err != nil || len(bp.GoFiles) == 0 {
			return nil // not a buildable package dir; keep walking
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			return err
		}
		ip := filepath.ToSlash(rel)
		switch {
		case ip == ".":
			ip = module
		case module != "":
			ip = module + "/" + ip
		}
		if ip != "" {
			paths = append(paths, ip)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}
