// Package analysis is a minimal, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis vocabulary — just enough surface
// for the powifi-lint analyzers to be written in the standard shape
// (an Analyzer with a Run func over a typed Pass) without pulling
// x/tools into the module. The build environment pins the module's
// dependency set to the standard library, so the real framework is not
// available; the analyzers here are source-compatible with it in
// spirit and could be ported by swapping this import.
//
// Only the pieces the suite actually uses exist: no Facts (none of the
// powifi analyzers are modular in that sense — every contract is
// package-local), no ResultOf/Requires plumbing, no SuggestedFixes.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check: a name (the go vet flag and the
// diagnostic tag), one-paragraph documentation, and the Run function.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and enables it as the
	// vettool flag -Name. It must be a valid flag name.
	Name string
	// Doc is the analyzer's documentation: first line is the summary
	// shown in flag usage.
	Doc string
	// Run applies the analyzer to one package and reports findings via
	// pass.Report. The returned value is unused by this driver (kept
	// for shape-compatibility with go/analysis).
	Run func(pass *Pass) (any, error)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf is the printf convenience over Report.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
