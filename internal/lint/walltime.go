package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// WalltimeAnalyzer forbids wall-clock reads in deterministic packages.
//
// The fleet's headline guarantee — bit-identical output at any -workers
// count — holds only because nothing on the simulation path observes
// real time: the event kernels run on eventsim's virtual clock, and
// every float that reaches an aggregate derives from (seed, labels).
// One stray time.Now() in a reduce or kernel path silently breaks the
// contract until a golden flakes. The telemetry/trace/progress call
// sites in internal/fleet are wall-clock by design (strictly out of
// band); each carries //powifi:walltime-ok <reason>.
var WalltimeAnalyzer = &analysis.Analyzer{
	Name: "walltime",
	Doc: "forbid time.Now/Since/Sleep and timer construction in deterministic packages\n\n" +
		"Deterministic packages (the event kernels and everything feeding the\n" +
		"bit-identical fleet aggregates) must not observe the wall clock.\n" +
		"Escape hatch: //powifi:walltime-ok <reason> on the offending line or\n" +
		"the line above.",
	Run: runWalltime,
}

// walltimeBanned are the package-time functions that observe or depend
// on the wall clock. Pure constructors/arithmetic (time.Duration math,
// time.Date, time.Unix) stay legal — they are deterministic.
var walltimeBanned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

func runWalltime(pass *analysis.Pass) (any, error) {
	if !isDetPackage(pkgPath(pass)) {
		return nil, nil
	}
	dirs := parseDirectives(pass)
	for _, f := range pass.Files {
		if isTestFile(pass, f.Pos()) {
			continue
		}
		// Walking idents (not just selectors) catches dot-imported uses
		// of the banned functions too.
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			// Package-level functions only: methods like Timer.Reset are
			// reachable only through an already-flagged constructor.
			if _, isFunc := obj.(*types.Func); !isFunc || obj.Parent() != obj.Pkg().Scope() {
				return true
			}
			if !walltimeBanned[id.Name] {
				return true
			}
			if dirs.okAt(pass, f, id.Pos(), "walltime-ok") {
				return true
			}
			pass.Reportf(id.Pos(),
				"time.%s in deterministic package %s: wall-clock reads break the bit-identical "+
					"worker-invariance contract (annotate //powifi:walltime-ok <reason> if this is "+
					"genuinely out of band)", id.Name, pkgPath(pass))
			return true
		})
	}
	return nil, nil
}
