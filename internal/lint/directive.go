package lint

import (
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// DirectiveAnalyzer is the hygiene check for the //powifi: comments the
// other analyzers honor. A typo'd directive (//powifi:walltime-okay) or
// an escape hatch without a justification silently weakens the suite,
// so both are vet errors:
//
//   - the directive name must be one the suite knows;
//   - every *-ok escape hatch must carry a human-readable reason.
//
// Unlike the contract analyzers, this one looks at test files too:
// directives are meaningful wherever they appear.
var DirectiveAnalyzer = &analysis.Analyzer{
	Name: "directive",
	Doc: "validate //powifi: directives: known names, reasoned escape hatches\n\n" +
		"Escape-hatch directives (*-ok) must carry a human-readable reason;\n" +
		"unknown directive names are rejected as typos.",
	Run: runDirective,
}

// knownDirectives are the names the suite honors. noalloc is an
// annotation (it enables checking); the *-ok names are escape hatches
// (they suppress it) and therefore require a reason.
var knownDirectives = map[string]bool{
	"noalloc":        true,
	"walltime-ok":    true,
	"rngsource-ok":   true,
	"mapiter-ok":     true,
	"sdkboundary-ok": true,
	"mergecheck-ok":  true,
}

func runDirective(pass *analysis.Pass) (any, error) {
	dirs := parseDirectives(pass)
	for _, m := range dirs {
		// Deterministic reporting order within a file.
		lines := make([]int, 0, len(m))
		for line := range m { //powifi:mapiter-ok keys are sorted before use
			lines = append(lines, line)
		}
		sort.Ints(lines)
		for _, line := range lines {
			for _, d := range m[line] {
				if !knownDirectives[d.name] {
					pass.Reportf(d.pos,
						"unknown powifi directive %q (known: mapiter-ok, mergecheck-ok, noalloc, "+
							"rngsource-ok, sdkboundary-ok, walltime-ok)", d.name)
					continue
				}
				if strings.HasSuffix(d.name, "-ok") && d.reason == "" {
					pass.Reportf(d.pos,
						"//powifi:%s requires a human-readable reason after the directive name", d.name)
				}
			}
		}
	}
	return nil, nil
}
