package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// MapiterAnalyzer forbids ordering-sensitive map iteration in
// deterministic packages. Go randomizes map iteration order per run,
// so a `range` over a map anywhere on the path to a fleet aggregate is
// the classic worker-invariance killer: the same scenario folds floats
// in a different order and the goldens drift by an ULP.
//
// Two loop shapes are provably order-insensitive and stay legal:
//
//   - key collection: the body is exactly `s = append(s, k)` — the
//     canonical sort-the-keys-first idiom's first half;
//   - map draining: the body is exactly `delete(m, k)`.
//
// Everything else needs either a sorted-key/array-backed restructure or
// //powifi:mapiter-ok <reason> on the range line (or the line above)
// justifying why the fold is commutative.
var MapiterAnalyzer = &analysis.Analyzer{
	Name: "mapiter",
	Doc: "forbid ordering-sensitive `range` over maps in deterministic packages\n\n" +
		"Map iteration order is randomized; any output-affecting fold over it\n" +
		"breaks bit-identical worker invariance. Key-collection\n" +
		"(s = append(s, k)) and drain (delete(m, k)) bodies are recognized as\n" +
		"safe. Escape hatch: //powifi:mapiter-ok <reason>.",
	Run: runMapiter,
}

func runMapiter(pass *analysis.Pass) (any, error) {
	if !isDetPackage(pkgPath(pass)) {
		return nil, nil
	}
	dirs := parseDirectives(pass)
	for _, f := range pass.Files {
		if isTestFile(pass, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if safeMapRange(pass, rs) {
				return true
			}
			if dirs.okAt(pass, f, rs.Pos(), "mapiter-ok") {
				return true
			}
			pass.Reportf(rs.Pos(),
				"range over map in deterministic package %s: iteration order is randomized and "+
					"breaks bit-identical worker invariance — sort the keys first, use a fixed "+
					"array, or annotate //powifi:mapiter-ok <reason> for a commutative fold",
				pkgPath(pass))
			return true
		})
	}
	return nil, nil
}

// safeMapRange recognizes the two provably order-insensitive bodies:
// single-statement key collection (s = append(s, k)) and map draining
// (delete(m, k)), with k the loop's key variable and no value variable
// in use.
func safeMapRange(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	if rs.Body == nil || len(rs.Body.List) != 1 {
		return false
	}
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	if rs.Value != nil {
		if v, ok := rs.Value.(*ast.Ident); !ok || v.Name != "_" {
			return false
		}
	}
	keyObj := pass.TypesInfo.Defs[key]
	if keyObj == nil {
		// `for k = range m` with an outer k: resolve through Uses.
		keyObj = pass.TypesInfo.Uses[key]
	}
	isKey := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		if !ok || keyObj == nil {
			return false
		}
		return pass.TypesInfo.Uses[id] == keyObj
	}
	switch st := rs.Body.List[0].(type) {
	case *ast.AssignStmt:
		// s = append(s, k)
		if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
			return false
		}
		call, ok := st.Rhs[0].(*ast.CallExpr)
		if !ok || len(call.Args) != 2 || call.Ellipsis.IsValid() {
			return false
		}
		if !isBuiltin(pass, call.Fun, "append") {
			return false
		}
		lhs, ok := st.Lhs[0].(*ast.Ident)
		if !ok {
			return false
		}
		dst, ok := call.Args[0].(*ast.Ident)
		if !ok || dst.Name != lhs.Name {
			return false
		}
		return isKey(call.Args[1])
	case *ast.ExprStmt:
		// delete(m, k)
		call, ok := st.X.(*ast.CallExpr)
		if !ok || len(call.Args) != 2 {
			return false
		}
		if !isBuiltin(pass, call.Fun, "delete") {
			return false
		}
		return sameExprText(call.Args[0], rs.X) && isKey(call.Args[1])
	}
	return false
}

// isBuiltin reports whether fun denotes the named predeclared builtin.
func isBuiltin(pass *analysis.Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

// sameExprText conservatively compares two expressions structurally:
// identical identifiers or identical selector chains.
func sameExprText(a, b ast.Expr) bool {
	switch ae := a.(type) {
	case *ast.Ident:
		be, ok := b.(*ast.Ident)
		return ok && ae.Name == be.Name
	case *ast.SelectorExpr:
		be, ok := b.(*ast.SelectorExpr)
		return ok && ae.Sel.Name == be.Sel.Name && sameExprText(ae.X, be.X)
	}
	return false
}
