// Package linttest is a miniature analysistest: it loads fixture
// packages from a GOPATH-style tree (testdata/src/<importpath>), runs
// analyzers over them, and matches reported diagnostics against
// expectations written in the fixture source as trailing comments:
//
//	time.Now() // want "wall-clock reads"
//
// The quoted string is a regular expression matched against the
// diagnostic message; every diagnostic must be matched by a want on its
// line, and every want must be matched by a diagnostic. Multiple wants
// on one line each need a matching diagnostic.
package linttest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// sharedLoader caches type-checked fixture packages (and, more
// importantly, the source-imported standard library) across every test
// in the binary.
var (
	loaderMu sync.Mutex
	loaders  = map[string]*load.Loader{}
)

func loaderFor(root string) *load.Loader {
	loaderMu.Lock()
	defer loaderMu.Unlock()
	l := loaders[root]
	if l == nil {
		l = &load.Loader{Root: root, IncludeTests: true}
		loaders[root] = l
	}
	return l
}

// wantRe matches one expectation: want "regexp" (analysistest's
// backquoted form is also accepted).
var wantRe = regexp.MustCompile("want\\s+(?:\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`)")

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads each fixture package under dir (a testdata directory
// containing src/) and checks the analyzer's diagnostics against the
// // want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	root := filepath.Join(testdata, "src")
	l := loaderFor(root)
	for _, path := range pkgPaths {
		runOne(t, l, a, path)
	}
}

func runOne(t *testing.T, l *load.Loader, a *analysis.Analyzer, path string) {
	t.Helper()
	pkg, err := l.Load(path)
	if err != nil {
		t.Fatalf("%s: loading fixture %q: %v", a.Name, path, err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("%s: fixture %q has type errors: %v", a.Name, path, terr)
	}

	// Collect expectations from every fixture file's comments.
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.Contains(c.Text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					} else {
						pat = strings.ReplaceAll(pat, `\"`, `"`)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: running on %q: %v", a.Name, path, err)
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if !matchWant(wants, pos, d.Message) {
			t.Errorf("%s: unexpected diagnostic at %s:%d: %s", a.Name, pos.Filename, pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: no diagnostic at %s:%d matching %q", a.Name, w.file, w.line, w.re)
		}
	}
}

func matchWant(wants []*expectation, pos token.Position, msg string) bool {
	for _, w := range wants {
		if w.matched || w.file != pos.Filename || w.line != pos.Line {
			continue
		}
		if w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// MustClean runs the analyzer over the package and fails on any
// diagnostic — for false-positive fixtures that must stay silent, and
// for self-linting real packages in tests.
func MustClean(t *testing.T, l *load.Loader, a *analysis.Analyzer, path string) {
	t.Helper()
	pkg, err := l.Load(path)
	if err != nil {
		t.Fatalf("%s: loading %q: %v", a.Name, path, err)
	}
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report: func(d analysis.Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			t.Errorf("%s: unexpected diagnostic at %s: %s", a.Name, fmt.Sprintf("%s:%d", pos.Filename, pos.Line), d.Message)
		},
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: running on %q: %v", a.Name, path, err)
	}
}
