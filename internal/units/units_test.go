package units

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestDBmToMilliwattsKnownPoints(t *testing.T) {
	cases := []struct {
		dbm, mw float64
	}{
		{0, 1},
		{10, 10},
		{20, 100},
		{30, 1000},
		{-10, 0.1},
		{-30, 0.001},
		{3, 1.9952623},
	}
	for _, c := range cases {
		got := DBmToMilliwatts(c.dbm)
		if !almostEqual(got, c.mw, 1e-6*c.mw+1e-12) {
			t.Errorf("DBmToMilliwatts(%v) = %v, want %v", c.dbm, got, c.mw)
		}
	}
}

func TestMilliwattsToDBmKnownPoints(t *testing.T) {
	if got := MilliwattsToDBm(1); !almostEqual(got, 0, 1e-9) {
		t.Errorf("MilliwattsToDBm(1) = %v, want 0", got)
	}
	if got := MilliwattsToDBm(1000); !almostEqual(got, 30, 1e-9) {
		t.Errorf("MilliwattsToDBm(1000) = %v, want 30", got)
	}
}

func TestMilliwattsToDBmZeroIsNegInf(t *testing.T) {
	if got := MilliwattsToDBm(0); !math.IsInf(got, -1) {
		t.Errorf("MilliwattsToDBm(0) = %v, want -Inf", got)
	}
	if got := MilliwattsToDBm(-5); !math.IsInf(got, -1) {
		t.Errorf("MilliwattsToDBm(-5) = %v, want -Inf", got)
	}
}

func TestDBmMilliwattsRoundTrip(t *testing.T) {
	f := func(dbm float64) bool {
		// Constrain to a physically sensible range to avoid overflow.
		dbm = math.Mod(dbm, 120)
		back := MilliwattsToDBm(DBmToMilliwatts(dbm))
		return almostEqual(back, dbm, 1e-9*math.Abs(dbm)+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDBLinearRoundTrip(t *testing.T) {
	f := func(db float64) bool {
		db = math.Mod(db, 200)
		back := LinearToDB(DBToLinear(db))
		return almostEqual(back, db, 1e-9*math.Abs(db)+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWattsDBmConsistency(t *testing.T) {
	// 1 W == 30 dBm.
	if got := WattsToDBm(1); !almostEqual(got, 30, 1e-9) {
		t.Errorf("WattsToDBm(1) = %v, want 30", got)
	}
	if got := DBmToWatts(30); !almostEqual(got, 1, 1e-9) {
		t.Errorf("DBmToWatts(30) = %v, want 1", got)
	}
}

func TestFeetMeters(t *testing.T) {
	if got := FeetToMeters(10); !almostEqual(got, 3.048, 1e-9) {
		t.Errorf("FeetToMeters(10) = %v, want 3.048", got)
	}
	f := func(ft float64) bool {
		ft = math.Mod(ft, 1e6)
		return almostEqual(MetersToFeet(FeetToMeters(ft)), ft, 1e-9*math.Abs(ft)+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWavelength24GHz(t *testing.T) {
	// 2.437 GHz (channel 6) has a wavelength of about 12.3 cm.
	got := Wavelength(2.437e9)
	if !almostEqual(got, 0.12302, 1e-4) {
		t.Errorf("Wavelength(2.437 GHz) = %v, want about 0.123", got)
	}
}

func TestMonotonicity(t *testing.T) {
	// More dBm means strictly more milliwatts.
	f := func(a, b float64) bool {
		a = math.Mod(a, 100)
		b = math.Mod(b, 100)
		if a == b {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		return DBmToMilliwatts(lo) < DBmToMilliwatts(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMicroHelpers(t *testing.T) {
	if got := MicroJoules(2.77e-6); !almostEqual(got, 2.77, 1e-9) {
		t.Errorf("MicroJoules(2.77e-6) = %v, want 2.77", got)
	}
	if got := Microwatts(1e-6); !almostEqual(got, 1, 1e-9) {
		t.Errorf("Microwatts(1e-6) = %v, want 1", got)
	}
}
