// Package units provides the physical-unit conversions used throughout the
// PoWiFi simulator: logarithmic power (dBm/dB) versus linear power (mW/W),
// distances (feet/metres), and 2.4 GHz ISM-band frequency helpers.
//
// All power arithmetic in the RF, propagation and harvesting code flows
// through this package so that dB-domain and linear-domain quantities are
// never mixed by accident.
package units

import "math"

// SpeedOfLight is the propagation speed of radio waves in m/s.
const SpeedOfLight = 299792458.0

// MetersPerFoot converts feet to metres.
const MetersPerFoot = 0.3048

// DBmToMilliwatts converts a power level in dBm to milliwatts.
func DBmToMilliwatts(dbm float64) float64 {
	return math.Pow(10, dbm/10)
}

// MilliwattsToDBm converts a power level in milliwatts to dBm.
// A non-positive input returns -Inf, the dB-domain representation of
// zero power.
func MilliwattsToDBm(mw float64) float64 {
	if mw <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(mw)
}

// DBmToWatts converts a power level in dBm to watts.
func DBmToWatts(dbm float64) float64 {
	return DBmToMilliwatts(dbm) / 1000
}

// WattsToDBm converts a power level in watts to dBm.
func WattsToDBm(w float64) float64 {
	return MilliwattsToDBm(w * 1000)
}

// DBToLinear converts a gain/loss ratio in dB to a linear ratio.
func DBToLinear(db float64) float64 {
	return math.Pow(10, db/10)
}

// LinearToDB converts a linear power ratio to dB. A non-positive ratio
// returns -Inf.
func LinearToDB(ratio float64) float64 {
	if ratio <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(ratio)
}

// FeetToMeters converts a distance in feet to metres.
func FeetToMeters(ft float64) float64 { return ft * MetersPerFoot }

// MetersToFeet converts a distance in metres to feet.
func MetersToFeet(m float64) float64 { return m / MetersPerFoot }

// Wavelength returns the free-space wavelength in metres of a carrier at
// freqHz.
func Wavelength(freqHz float64) float64 { return SpeedOfLight / freqHz }

// MicroJoules converts joules to microjoules.
func MicroJoules(j float64) float64 { return j * 1e6 }

// Microwatts converts watts to microwatts.
func Microwatts(w float64) float64 { return w * 1e6 }
