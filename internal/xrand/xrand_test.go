package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("seeds 1 and 2 produced %d identical draws out of 100", same)
	}
}

func TestLabelStreamsIndependent(t *testing.T) {
	a := NewFromLabel(7, "mac/client0")
	b := NewFromLabel(7, "mac/client1")
	if a.Uint64() == b.Uint64() {
		t.Error("distinct labels produced identical first draws")
	}
	// Same label must reproduce the same stream.
	c := NewFromLabel(7, "mac/client0")
	d := NewFromLabel(7, "mac/client0")
	for i := 0; i < 100; i++ {
		if c.Uint64() != d.Uint64() {
			t.Fatalf("same-label streams diverged at draw %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %v, want about 0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(5)
	counts := make([]int, 16)
	for i := 0; i < 160000; i++ {
		v := r.Intn(16)
		if v < 0 || v >= 16 {
			t.Fatalf("Intn(16) out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Errorf("bucket %d count %d far from uniform expectation 10000", i, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpMean(t *testing.T) {
	r := New(6)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(3.5)
	}
	mean := sum / n
	if math.Abs(mean-3.5) > 0.05 {
		t.Errorf("exponential mean = %v, want about 3.5", mean)
	}
}

func TestExpNonNegative(t *testing.T) {
	r := New(60)
	for i := 0; i < 10000; i++ {
		if v := r.Exp(1); v < 0 {
			t.Fatalf("Exp produced negative value %v", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(7)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(10, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("normal mean = %v, want about 10", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Errorf("normal stddev = %v, want about 2", math.Sqrt(variance))
	}
}

func TestParetoMinimum(t *testing.T) {
	r := New(8)
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(2, 1.5); v < 2 {
			t.Fatalf("Pareto below minimum: %v", v)
		}
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		if v := r.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal non-positive: %v", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(10)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bool(0.3) hit fraction = %v", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		n := 1 + int(seed%50)
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUniformWithinBounds(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		v := r.Uniform(-3, 9)
		return v >= -3 && v < 9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPoissonMoments(t *testing.T) {
	// Poisson mean and variance both equal lambda; check both regimes
	// (Knuth at small lambda, rounded normal above 30).
	for _, mean := range []float64{0.5, 4, 12, 80} {
		r := New(99)
		const n = 20000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			k := float64(r.Poisson(mean))
			sum += k
			sumSq += k * k
		}
		m := sum / n
		v := sumSq/n - m*m
		if math.Abs(m-mean) > 0.05*mean+0.05 {
			t.Errorf("Poisson(%v) mean = %v", mean, m)
		}
		if math.Abs(v-mean) > 0.10*mean+0.1 {
			t.Errorf("Poisson(%v) variance = %v, want about %v", mean, v, mean)
		}
	}
}

func TestPoissonEdgeCases(t *testing.T) {
	r := New(1)
	if r.Poisson(0) != 0 || r.Poisson(-3) != 0 {
		t.Error("non-positive mean should yield 0")
	}
	for i := 0; i < 1000; i++ {
		if r.Poisson(50) < 0 {
			t.Fatal("negative Poisson draw")
		}
	}
	a, b := New(7), New(7)
	for i := 0; i < 100; i++ {
		if a.Poisson(12) != b.Poisson(12) {
			t.Fatal("identical seeds diverged")
		}
	}
}
