// Package xrand provides a small, deterministic pseudo-random number
// generator for the simulator.
//
// The simulator must be reproducible bit-for-bit across runs and across
// machines so that tests can assert tight numeric bands on experiment
// outputs. We therefore avoid math/rand's global state and implement
// xoshiro256**, seeded through splitmix64, with explicit per-component
// streams: every simulated entity (a MAC, a traffic source, a home
// scenario) derives its own independent stream from a scenario seed and a
// stream label.
package xrand

import "math"

// Rand is a deterministic xoshiro256** pseudo-random number generator.
// The zero value is not valid; construct one with New or NewFromLabel.
type Rand struct {
	s [4]uint64
}

// splitmix64 advances the seed-expansion state and returns the next value.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given 64-bit seed.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Reseed(seed)
	return r
}

// Reseed re-initializes the generator in place, exactly as New would.
// Pooled simulation components reseed their long-lived streams between
// runs instead of allocating fresh generators.
func (r *Rand) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro256** must not be seeded with the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
}

// LabelSeed hashes a (seed, label) pair to the stream seed NewFromLabel
// uses — exposed so callers that re-derive the same labelled stream many
// times (the deploy sampler's per-bin streams) can cache label strings
// and reseed in place.
func LabelSeed(seed uint64, label string) uint64 {
	return labelHash(seed, label)
}

// labelHash is the FNV-1a fold shared by every label derivation.
func labelHash(seed uint64, label string) uint64 {
	h := seed ^ 0xcbf29ce484222325
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 0x100000001b3
	}
	return h
}

// LabelSeedInt returns LabelSeed(seed, label + decimal(n)) without
// materializing the concatenated string — the fast path for indexed
// stream families like "fleet/home/42".
func LabelSeedInt(seed uint64, label string, n int) uint64 {
	// Fold the prefix with the shared hash, then continue the same FNV
	// fold over the decimal digits of n.
	h := labelHash(seed, label)
	var buf [20]byte
	i := len(buf)
	if n < 0 {
		// Matches the fmt/strconv rendering of negative indices.
		for v := uint64(-int64(n)); ; {
			i--
			buf[i] = byte('0' + v%10)
			v /= 10
			if v == 0 {
				break
			}
		}
		i--
		buf[i] = '-'
	} else {
		for v := uint64(n); ; {
			i--
			buf[i] = byte('0' + v%10)
			v /= 10
			if v == 0 {
				break
			}
		}
	}
	for ; i < len(buf); i++ {
		h ^= uint64(buf[i])
		h *= 0x100000001b3
	}
	return h
}

// NewFromLabel derives an independent stream from a base seed and a string
// label. Two distinct labels yield (with overwhelming probability)
// uncorrelated streams, letting simulation components draw randomness
// without perturbing each other's sequences.
func NewFromLabel(seed uint64, label string) *Rand {
	return New(LabelSeed(seed, label))
}

// ReseedFromLabel re-initializes the generator in place on the labelled
// stream NewFromLabel(seed, label) would produce.
func (r *Rand) ReseedFromLabel(seed uint64, label string) {
	r.Reseed(LabelSeed(seed, label))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uniform returns a uniformly distributed value in [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Exp returns an exponentially distributed value with the given mean.
// Exponential inter-arrival times model Poisson packet arrivals.
func (r *Rand) Exp(mean float64) float64 {
	u := r.Float64()
	// Guard against log(0).
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -mean * math.Log(1-u)
}

// Normal returns a normally distributed value with the given mean and
// standard deviation, using the Box–Muller transform.
func (r *Rand) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	if u1 <= 0 {
		u1 = math.SmallestNonzeroFloat64
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns a log-normally distributed value whose underlying
// normal has parameters mu and sigma. Web object sizes and human dwell
// times are well modelled as log-normal.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Pareto returns a Pareto-distributed value with minimum xm and shape
// alpha. Heavy-tailed flow sizes in traffic generation use this.
func (r *Rand) Pareto(xm, alpha float64) float64 {
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return xm / math.Pow(1-u, 1/alpha)
}

// Poisson returns a Poisson-distributed count with the given mean.
// Small means use Knuth's product-of-uniforms method; large means
// (where that method needs ~mean draws and float underflow looms) use
// the rounded-normal approximation, which is accurate to well under a
// count at mean > 30. Fleet population synthesis draws device and
// neighbor counts from this.
func (r *Rand) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		n := int(r.Normal(mean, math.Sqrt(mean)) + 0.5)
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n) using Fisher–Yates.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
