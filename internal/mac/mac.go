// Package mac implements the 802.11 Distributed Coordination Function:
// CSMA/CA with DIFS sensing, binary-exponential backoff, unicast
// ACK/retransmission, broadcast transmission (no ACKs — the property
// PoWiFi's power packets rely on), and rate control.
//
// The DCF is the mechanism behind every networking result in the paper:
// queue-threshold prioritization (Fig. 6), per-channel occupancy (Figs. 5
// and 7), fairness to neighboring networks (Fig. 8) and the home
// deployment dynamics (Fig. 14) all emerge from stations contending under
// these rules.
package mac

import (
	"time"

	"repro/internal/eventsim"
	"repro/internal/medium"
	"repro/internal/phy"
	"repro/internal/xrand"
)

// Frame is a MAC-layer frame queued for transmission.
type Frame struct {
	// DstID is the destination station ID, or medium.Broadcast.
	DstID int
	// Bytes is the network-layer payload length; the MAC overhead is
	// added on the air.
	Bytes int
	// Kind classifies the frame (data, power, beacon).
	Kind medium.FrameKind
	// Payload is an opaque network-layer packet.
	Payload any
	// FixedRate forces a bit rate; zero uses the station's rate control.
	FixedRate phy.Rate

	retries int
}

type state int

const (
	stIdle state = iota
	stWaitDIFS
	stBackoff
	stTx
	stWaitAck
)

// Station is an 802.11 DCF station bound to one channel.
type Station struct {
	id    int
	name  string
	loc   medium.Location
	ch    *medium.Channel
	chIdx int // attachment index on ch (medium fast paths)
	sch   *eventsim.Scheduler
	rng   *xrand.Rand

	// TxPower and antenna configuration.
	PowerDBm float64
	GainDBi  float64

	// RateCtl chooses data rates; FixedRate on a frame overrides it.
	RateCtl RateController

	// Qdisc orders the transmit queue (the paper's qdepth threshold reads
	// this queue's length through the Power_MACshim). Defaults to a
	// 50-frame FIFO.
	Qdisc QueueDiscipline

	// IgnoreCS disables carrier sense and deferral, the §8(c) proposal
	// for concurrent power transmission by multiple PoWiFi routers:
	// collisions between power packets are acceptable because no client
	// needs to decode them.
	IgnoreCS bool

	// OnDeliver is called with every successfully received data frame
	// addressed to this station (or broadcast).
	OnDeliver func(f *Frame, from int)
	// OnSent is called when a queued frame leaves the MAC: ok=true after
	// a successful transmission (always true for broadcast), ok=false
	// after the retry limit.
	OnSent func(f *Frame, ok bool)

	st state

	cw            int
	slotsLeft     int
	ackBusyUntil  time.Duration
	backoffStart  time.Duration
	pendingAccess eventsim.Handle
	ackTimeout    eventsim.Handle
	current       *Frame
	currentTx     *medium.Transmission

	// Long-lived access-timer callbacks, bound once at construction so
	// the per-access scheduling in waitDIFS/resumeBackoff/transmit
	// allocates no closures and dispatches without the nullary-closure
	// trampoline (the DCF hot path fires these thousands of times per
	// sampled bin).
	difsFireFn    func(any)
	backoffFireFn func(any)
	ackBusyFn     func(any)
	ackTimeoutFn  func()

	// Frame pool: frames handed out by NewFrame are reused after Reset,
	// so steady-state traffic generation allocates nothing.
	framePool []*Frame
	frameNext int

	// Stats.
	TxFrames      int
	TxFailed      int
	RxFrames      int
	QueueDrops    int
	TxAirtimeData time.Duration
}

// NewStation creates a station and attaches it to the channel.
func NewStation(id int, name string, loc medium.Location, ch *medium.Channel, rng *xrand.Rand) *Station {
	s := &Station{
		id:       id,
		name:     name,
		loc:      loc,
		ch:       ch,
		sch:      ch.Sched,
		rng:      rng,
		PowerDBm: 20,
		GainDBi:  2,
		RateCtl:  FixedRate(phy.Rate54Mbps),
		Qdisc:    NewFIFO(50),
		cw:       phy.CWMin,
	}
	s.difsFireFn = func(any) {
		if s.slotsLeft > 0 {
			s.resumeBackoff()
		} else {
			s.transmit()
		}
	}
	s.backoffFireFn = func(any) {
		s.slotsLeft = 0
		s.transmit()
	}
	s.ackBusyFn = func(any) { s.waitDIFS() }
	s.ackTimeoutFn = s.onAckTimeout
	s.chIdx = ch.AddStation(s)
	return s
}

// NewFrame returns a zeroed frame from the station's pool. Pooled frames
// are owned by the MAC until the next Reset, which makes them safe for
// any traffic source whose frames die within one sampled window (the
// deploy sampler's power packets, beacons, client and background load).
func (s *Station) NewFrame() *Frame {
	if s.frameNext < len(s.framePool) {
		f := s.framePool[s.frameNext]
		s.frameNext++
		*f = Frame{}
		return f
	}
	f := &Frame{}
	s.framePool = append(s.framePool, f)
	s.frameNext++
	return f
}

// Reset returns the station to its just-constructed state — idle, empty
// queue, minimum contention window, zeroed stats — while keeping its
// channel attachment, pools and callback bindings. The caller is
// responsible for reseeding the station's RNG stream; together the two
// steps make a pooled station bit-for-bit equivalent to a fresh one.
func (s *Station) Reset() {
	s.st = stIdle
	s.cw = phy.CWMin
	s.slotsLeft = 0
	s.ackBusyUntil = 0
	s.backoffStart = 0
	s.pendingAccess = eventsim.Handle{}
	s.ackTimeout = eventsim.Handle{}
	s.current = nil
	s.currentTx = nil
	s.frameNext = 0
	if r, ok := s.RateCtl.(interface{ Reset() }); ok {
		r.Reset()
	}
	s.TxFrames = 0
	s.TxFailed = 0
	s.RxFrames = 0
	s.QueueDrops = 0
	s.TxAirtimeData = 0
	if r, ok := s.Qdisc.(interface{ Reset() }); ok {
		r.Reset()
	}
}

// RNG returns the station's random stream, so a pooling layer can
// reseed it in place between runs.
func (s *Station) RNG() *xrand.Rand { return s.rng }

// StationID implements medium.Station.
func (s *Station) StationID() int { return s.id }

// Name returns the human-readable station name.
func (s *Station) Name() string { return s.name }

// Location implements medium.Station.
func (s *Station) Location() medium.Location { return s.loc }

// TxPowerDBm implements medium.Station.
func (s *Station) TxPowerDBm() float64 { return s.PowerDBm }

// AntennaGainDBi implements medium.Station.
func (s *Station) AntennaGainDBi() float64 { return s.GainDBi }

// QueueLen returns the number of frames waiting in the transmit queue
// (including the frame currently in service). This is what the paper's
// Power_MACshim exposes to the IP layer.
func (s *Station) QueueLen() int {
	n := s.Qdisc.Len()
	if s.current != nil {
		n++
	}
	return n
}

// Enqueue adds a frame to the transmit queue. It returns false (and drops
// the frame) when the queue discipline rejects it.
func (s *Station) Enqueue(f *Frame) bool {
	if !s.Qdisc.Enqueue(f) {
		s.QueueDrops++
		return false
	}
	if s.st == stIdle {
		s.startAccess()
	}
	return true
}

// startAccess begins channel access for the head-of-queue frame: wait for
// the channel to be idle for DIFS, then transmit (or finish a pending
// backoff first).
func (s *Station) startAccess() {
	if s.current == nil {
		s.current = s.Qdisc.Dequeue()
	}
	if s.current == nil {
		s.st = stIdle
		return
	}
	s.waitDIFS()
}

// waitDIFS arms the DIFS timer if the channel is idle; otherwise the
// station stays deferring until OnChannelIdle re-arms it.
func (s *Station) waitDIFS() {
	s.st = stWaitDIFS
	if !s.IgnoreCS && s.ch.SensesIdx(s.chIdx) {
		return // OnChannelIdle will call waitDIFS again
	}
	s.pendingAccess = s.sch.AfterCtx(phy.DIFS, s.difsFireFn, nil)
}

// beginBackoff draws a fresh backoff and starts counting it down.
func (s *Station) beginBackoff() {
	s.slotsLeft = s.rng.Intn(s.cw + 1)
	s.waitDIFS()
}

// resumeBackoff counts down the remaining backoff slots while the channel
// stays idle.
func (s *Station) resumeBackoff() {
	s.st = stBackoff
	s.backoffStart = s.sch.Now()
	d := time.Duration(s.slotsLeft) * phy.SlotTime
	s.pendingAccess = s.sch.AfterCtx(d, s.backoffFireFn, nil)
}

// pauseBackoff freezes the countdown when the channel goes busy.
func (s *Station) pauseBackoff() {
	s.pendingAccess.Cancel()
	s.pendingAccess = eventsim.Handle{}
	if s.st == stBackoff {
		elapsed := int((s.sch.Now() - s.backoffStart) / phy.SlotTime)
		if elapsed > s.slotsLeft {
			elapsed = s.slotsLeft
		}
		s.slotsLeft -= elapsed
	}
	s.st = stWaitDIFS
}

// OnChannelBusy implements medium.Station.
func (s *Station) OnChannelBusy() {
	if s.IgnoreCS {
		return
	}
	if s.st == stWaitDIFS || s.st == stBackoff {
		s.pauseBackoff()
	}
}

// OnChannelIdle implements medium.Station.
func (s *Station) OnChannelIdle() {
	if s.st == stWaitDIFS {
		s.waitDIFS()
	}
}

// rate returns the transmission rate for a frame.
func (s *Station) rate(f *Frame) phy.Rate {
	if f.FixedRate != 0 {
		return f.FixedRate
	}
	return s.RateCtl.DataRate()
}

// transmit puts the current frame on the air. During a post-transmission
// backoff the station may reach this point with no frame in hand; it picks
// up anything that arrived during the countdown or goes idle.
func (s *Station) transmit() {
	if s.current == nil {
		s.current = s.Qdisc.Dequeue()
	}
	f := s.current
	if f == nil {
		s.st = stIdle
		return
	}
	if now := s.sch.Now(); now < s.ackBusyUntil {
		// Our own control-ACK response is still on the air; a station
		// cannot transmit two frames at once.
		s.st = stWaitDIFS
		s.pendingAccess = s.sch.AtCtx(s.ackBusyUntil, s.ackBusyFn, nil)
		return
	}
	s.st = stTx
	rate := s.rate(f)
	s.currentTx = s.ch.StartTxFrom(s.chIdx, s, f.DstID, f.Bytes+phy.MACOverheadBytes, rate, f.Kind, f)
	s.TxFrames++
	s.TxAirtimeData += s.currentTx.Airtime()
}

// OnTxComplete implements medium.Station.
func (s *Station) OnTxComplete(tx *medium.Transmission) {
	if tx != s.currentTx {
		return // an ACK we sent on behalf of a reception
	}
	f := s.current
	if f.DstID == medium.Broadcast {
		// Broadcast frames are never acknowledged (footnote 1 in §3.2):
		// transmission is complete as soon as it is on the air.
		s.finishFrame(true)
		return
	}
	// Unicast: wait for the ACK.
	s.st = stWaitAck
	timeout := phy.SIFS + phy.AckAirtime(tx.Rate) + 2*phy.SlotTime
	s.ackTimeout = s.sch.After(timeout, s.ackTimeoutFn)
}

// onAckTimeout handles a missing ACK: exponential backoff and retry.
func (s *Station) onAckTimeout() {
	s.RateCtl.OnFailure()
	f := s.current
	f.retries++
	if f.retries > phy.MaxRetries {
		s.TxFailed++
		s.finishFrame(false)
		return
	}
	if s.cw < phy.CWMax {
		s.cw = s.cw*2 + 1
	}
	s.beginBackoff()
}

// finishFrame completes the life of the current frame and moves on.
func (s *Station) finishFrame(ok bool) {
	f := s.current
	s.current = nil
	s.currentTx = nil
	s.cw = phy.CWMin
	if s.OnSent != nil {
		s.OnSent(f, ok)
	}
	// Mandatory post-transmission backoff (802.11 §10.3.4.3): the station
	// counts down a fresh contention window even when its queue is empty,
	// so a freshly arriving frame cannot seize the channel immediately
	// after the station's own transmission. This is what makes a
	// queue-depth threshold of 1 lose occupancy in Fig. 5: the injector
	// refills only after the in-service frame finishes, and the frame then
	// still has to win a full contention cycle.
	s.current = s.Qdisc.Dequeue()
	s.beginBackoff()
}

// OnReceive implements medium.Station.
func (s *Station) OnReceive(tx *medium.Transmission, ok bool) {
	if !ok {
		return
	}
	switch tx.Kind {
	case medium.KindAck:
		if s.st == stWaitAck && s.current != nil {
			s.ackTimeout.Cancel()
			s.ackTimeout = eventsim.Handle{}
			s.RateCtl.OnSuccess()
			s.finishFrame(true)
		}
	default:
		s.RxFrames++
		if tx.DstID == s.id {
			// Acknowledge after SIFS, without carrier sense (per the
			// standard, control responses pre-empt contention).
			src := tx.Src.(*Station)
			ackDur := phy.AckAirtime(tx.Rate)
			s.ackBusyUntil = s.sch.Now() + phy.SIFS + ackDur + time.Microsecond
			s.sch.After(phy.SIFS, func() {
				s.ch.StartTxFrom(s.chIdx, s, src.StationID(), phy.ACKBytes, phy.AckRate(tx.Rate), medium.KindAck, nil)
			})
			// A station cannot hear (or carrier-sense) its own control
			// response, so explicitly hold our DCF contention until the
			// ACK leaves the air; otherwise a zero-slot backoff would
			// transmit on top of our own in-flight ACK.
			if s.st == stWaitDIFS || s.st == stBackoff {
				s.pauseBackoff()
				s.sch.After(phy.SIFS+ackDur+time.Microsecond, func() {
					if s.st == stWaitDIFS && !s.ch.SensesIdx(s.chIdx) {
						s.waitDIFS()
					}
				})
			}
		}
		if f, isFrame := tx.Payload.(*Frame); isFrame && s.OnDeliver != nil {
			s.OnDeliver(f, tx.Src.StationID())
		}
	}
}
