package mac

import "repro/internal/phy"

// RateController selects data rates and learns from transmission results.
// The paper's router uses "the default Wi-Fi rate adaptation algorithm"
// for client traffic (§4.1b) while power packets ride at a fixed 54 Mbps.
type RateController interface {
	// DataRate returns the rate for the next data transmission.
	DataRate() phy.Rate
	// OnSuccess records an acknowledged transmission.
	OnSuccess()
	// OnFailure records a missing ACK.
	OnFailure()
}

// FixedRate is a RateController pinned at one rate.
type FixedRate phy.Rate

// DataRate implements RateController.
func (r FixedRate) DataRate() phy.Rate { return phy.Rate(r) }

// OnSuccess implements RateController.
func (FixedRate) OnSuccess() {}

// OnFailure implements RateController.
func (FixedRate) OnFailure() {}

// ARF implements Auto Rate Fallback: step one rate up after a run of
// consecutive successes, step down after consecutive failures. This is the
// classic adaptation scheme shipped in commodity Atheros drivers.
type ARF struct {
	// UpAfter is the success streak required to try the next higher rate.
	UpAfter int
	// DownAfter is the failure streak that triggers a rate decrease.
	DownAfter int

	idx       int
	successes int
	failures  int
}

// NewARF returns an ARF controller starting at the highest rate with the
// conventional 10-up/2-down thresholds.
func NewARF() *ARF {
	return &ARF{UpAfter: 10, DownAfter: 2, idx: len(phy.OFDMRates) - 1}
}

// DataRate implements RateController.
func (a *ARF) DataRate() phy.Rate { return phy.OFDMRates[a.idx] }

// OnSuccess implements RateController.
func (a *ARF) OnSuccess() {
	a.failures = 0
	a.successes++
	if a.successes >= a.UpAfter && a.idx < len(phy.OFDMRates)-1 {
		a.idx++
		a.successes = 0
	}
}

// Reset returns the controller to its freshly constructed state (top
// rate, cleared streaks), so pooled stations adapt identically to fresh
// ones.
func (a *ARF) Reset() {
	a.idx = len(phy.OFDMRates) - 1
	a.successes = 0
	a.failures = 0
}

// OnFailure implements RateController.
func (a *ARF) OnFailure() {
	a.successes = 0
	a.failures++
	if a.failures >= a.DownAfter && a.idx > 0 {
		a.idx--
		a.failures = 0
	}
}
