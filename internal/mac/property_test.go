package mac

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/eventsim"
	"repro/internal/medium"
	"repro/internal/phy"
	"repro/internal/xrand"
)

// TestAirtimeConservationProperty: a station never overlaps its own
// transmissions, so the sum of its frames' airtimes can never exceed the
// elapsed simulation time.
func TestAirtimeConservationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		sched := eventsim.New()
		ch := medium.NewChannel(phy.Channel1, sched)
		rng := xrand.New(seed)
		n := 2 + rng.Intn(3)
		stations := make([]*Station, n)
		for i := range stations {
			stations[i] = NewStation(i, "sta", medium.Location{X: float64(i)}, ch,
				xrand.NewFromLabel(seed, string(rune('a'+i))))
		}
		// Saturate every station with random-size broadcasts.
		for i, s := range stations {
			s := s
			i := i
			var feed func()
			feed = func() {
				s.Enqueue(&Frame{
					DstID:     medium.Broadcast,
					Bytes:     100 + rng.Intn(1400),
					Kind:      medium.KindData,
					FixedRate: phy.OFDMRates[(i+rng.Intn(3))%len(phy.OFDMRates)],
				})
			}
			s.OnSent = func(*Frame, bool) { feed() }
			feed()
		}
		horizon := 300 * time.Millisecond
		sched.RunUntil(horizon)
		perStation := make(map[int]time.Duration, n)
		for _, s := range stations {
			perStation[s.StationID()] = s.TxAirtimeData
		}
		total := time.Duration(0)
		for _, air := range perStation {
			if air > horizon {
				return false // a single station overlapped itself
			}
			total += air
		}
		// The union of all transmissions (collisions overlap) cannot
		// exceed ~2x the horizon even in pathological schedules; with
		// carrier sense it should stay near 1x. Use the loose bound as
		// the invariant.
		return total <= 2*horizon
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestNWayFairnessProperty: N identical saturated stations split the
// channel within a reasonable band of 1/N each (DCF long-term fairness).
func TestNWayFairnessProperty(t *testing.T) {
	for _, n := range []int{2, 3, 5} {
		sched := eventsim.New()
		ch := medium.NewChannel(phy.Channel1, sched)
		sent := make([]int, n)
		for i := 0; i < n; i++ {
			s := NewStation(i, "sta", medium.Location{X: float64(i)}, ch,
				xrand.NewFromLabel(uint64(n), string(rune('a'+i))))
			i := i
			var feed func()
			feed = func() {
				s.Enqueue(&Frame{DstID: medium.Broadcast, Bytes: 1500, Kind: medium.KindData})
			}
			s.OnSent = func(*Frame, bool) { sent[i]++; feed() }
			feed()
		}
		sched.RunUntil(2 * time.Second)
		total := 0
		for _, c := range sent {
			total += c
		}
		if total == 0 {
			t.Fatalf("n=%d: nothing transmitted", n)
		}
		for i, c := range sent {
			share := float64(c) / float64(total)
			want := 1.0 / float64(n)
			if share < want*0.7 || share > want*1.3 {
				t.Errorf("n=%d station %d share = %.3f, want about %.3f", n, i, share, want)
			}
		}
	}
}

// TestNoDuplicateDeliveryUnderCleanChannel: on a collision-free channel
// every unicast data frame is delivered exactly once, in order.
func TestNoDuplicateDeliveryUnderCleanChannel(t *testing.T) {
	sched := eventsim.New()
	ch := medium.NewChannel(phy.Channel1, sched)
	tx := NewStation(0, "tx", medium.Location{}, ch, xrand.New(1))
	rx := NewStation(1, "rx", medium.Location{X: 1}, ch, xrand.New(2))
	var got []int
	rx.OnDeliver = func(f *Frame, from int) { got = append(got, f.Bytes) }
	const n = 200
	// Feed within the queue capacity: one new frame per completion.
	next := 0
	var feed func()
	feed = func() {
		if next < n {
			tx.Enqueue(&Frame{DstID: 1, Bytes: 100 + next, Kind: medium.KindData})
			next++
		}
	}
	tx.OnSent = func(*Frame, bool) { feed() }
	feed()
	sched.Run()
	if len(got) != n {
		t.Fatalf("delivered %d frames, want %d", len(got), n)
	}
	for i, b := range got {
		if b != 100+i {
			t.Fatalf("delivery %d out of order: got %d", i, b)
		}
	}
}

// TestDeterministicMACReplay: the full DCF machinery replays identically
// under the same seeds.
func TestDeterministicMACReplay(t *testing.T) {
	run := func() (int, int) {
		sched := eventsim.New()
		ch := medium.NewChannel(phy.Channel1, sched)
		a := NewStation(0, "a", medium.Location{}, ch, xrand.NewFromLabel(5, "a"))
		b := NewStation(1, "b", medium.Location{X: 1}, ch, xrand.NewFromLabel(5, "b"))
		for _, s := range []*Station{a, b} {
			s := s
			var feed func()
			feed = func() {
				s.Enqueue(&Frame{DstID: medium.Broadcast, Bytes: 1500, Kind: medium.KindData})
			}
			s.OnSent = func(*Frame, bool) { feed() }
			feed()
		}
		sched.RunUntil(500 * time.Millisecond)
		return a.TxFrames, ch.Collisions
	}
	a1, c1 := run()
	a2, c2 := run()
	if a1 != a2 || c1 != c2 {
		t.Errorf("replay diverged: %d/%d vs %d/%d", a1, c1, a2, c2)
	}
}
