package mac

import (
	"testing"

	"repro/internal/medium"
)

func TestFIFOOrdering(t *testing.T) {
	q := NewFIFO(10)
	for i := 0; i < 5; i++ {
		if !q.Enqueue(&Frame{Bytes: i}) {
			t.Fatalf("enqueue %d rejected", i)
		}
	}
	for i := 0; i < 5; i++ {
		f := q.Dequeue()
		if f == nil || f.Bytes != i {
			t.Fatalf("dequeue %d returned %+v", i, f)
		}
	}
	if q.Dequeue() != nil {
		t.Error("empty dequeue should return nil")
	}
}

func TestFIFODropsAtCap(t *testing.T) {
	q := NewFIFO(2)
	q.Enqueue(&Frame{})
	q.Enqueue(&Frame{})
	if q.Enqueue(&Frame{}) {
		t.Error("enqueue beyond capacity should fail")
	}
	if q.Drops() != 1 {
		t.Errorf("drops = %d, want 1", q.Drops())
	}
	if q.Len() != 2 {
		t.Errorf("len = %d, want 2", q.Len())
	}
}

func TestFairQueueAlternatesFlows(t *testing.T) {
	q := NewFairQueue(100)
	// Backlog: 6 power frames, 3 data frames.
	for i := 0; i < 6; i++ {
		q.Enqueue(&Frame{Kind: medium.KindPower, Bytes: i})
	}
	for i := 0; i < 3; i++ {
		q.Enqueue(&Frame{Kind: medium.KindData, Bytes: 100 + i})
	}
	var kinds []medium.FrameKind
	for f := q.Dequeue(); f != nil; f = q.Dequeue() {
		kinds = append(kinds, f.Kind)
	}
	if len(kinds) != 9 {
		t.Fatalf("dequeued %d frames, want 9", len(kinds))
	}
	// While both flows are backlogged, service must alternate: among the
	// first 6 dequeues, exactly 3 must be data.
	data := 0
	for _, k := range kinds[:6] {
		if k == medium.KindData {
			data++
		}
	}
	if data != 3 {
		t.Errorf("data frames in first 6 dequeues = %d, want 3 (fair alternation)", data)
	}
	// Remaining dequeues drain the power backlog.
	for _, k := range kinds[6:] {
		if k != medium.KindPower {
			t.Error("tail of drain should be power frames only")
		}
	}
}

func TestFairQueuePreservesPerFlowOrder(t *testing.T) {
	q := NewFairQueue(100)
	for i := 0; i < 4; i++ {
		q.Enqueue(&Frame{Kind: medium.KindData, Bytes: i})
	}
	prev := -1
	for f := q.Dequeue(); f != nil; f = q.Dequeue() {
		if f.Bytes <= prev {
			t.Fatal("per-flow FIFO order violated")
		}
		prev = f.Bytes
	}
}

func TestFairQueuePerFlowCap(t *testing.T) {
	q := NewFairQueue(2)
	q.Enqueue(&Frame{Kind: medium.KindPower})
	q.Enqueue(&Frame{Kind: medium.KindPower})
	if q.Enqueue(&Frame{Kind: medium.KindPower}) {
		t.Error("power flow should be at capacity")
	}
	// The data flow has its own capacity.
	if !q.Enqueue(&Frame{Kind: medium.KindData}) {
		t.Error("data flow should still accept")
	}
	if q.Drops() != 1 {
		t.Errorf("drops = %d, want 1", q.Drops())
	}
	if q.FlowLen(medium.KindPower) != 2 || q.FlowLen(medium.KindData) != 1 {
		t.Errorf("flow lengths = %d/%d", q.FlowLen(medium.KindPower), q.FlowLen(medium.KindData))
	}
}

func TestFairQueueLenAcrossFlows(t *testing.T) {
	q := NewFairQueue(10)
	q.Enqueue(&Frame{Kind: medium.KindPower})
	q.Enqueue(&Frame{Kind: medium.KindData})
	q.Enqueue(&Frame{Kind: medium.KindData})
	if q.Len() != 3 {
		t.Errorf("Len = %d, want 3", q.Len())
	}
}

func TestFairQueueEmptyDequeue(t *testing.T) {
	q := NewFairQueue(10)
	if q.Dequeue() != nil {
		t.Error("empty fair queue should dequeue nil")
	}
	q.Enqueue(&Frame{Kind: medium.KindData})
	q.Dequeue()
	if q.Dequeue() != nil {
		t.Error("drained fair queue should dequeue nil")
	}
}
