package mac

import (
	"testing"
	"time"

	"repro/internal/eventsim"
	"repro/internal/medium"
	"repro/internal/phy"
	"repro/internal/xrand"
)

// rig builds a channel with n stations placed a metre apart so that every
// station senses every other.
func rig(n int) (*eventsim.Scheduler, *medium.Channel, []*Station) {
	sch := eventsim.New()
	ch := medium.NewChannel(phy.Channel1, sch)
	stations := make([]*Station, n)
	for i := range stations {
		stations[i] = NewStation(i, "sta", medium.Location{X: float64(i)}, ch, xrand.NewFromLabel(42, string(rune('a'+i))))
	}
	return sch, ch, stations
}

func TestUnicastDeliveryWithAck(t *testing.T) {
	sch, ch, st := rig(2)
	delivered := 0
	st[1].OnDeliver = func(f *Frame, from int) {
		delivered++
		if from != 0 {
			t.Errorf("delivered from %d, want 0", from)
		}
	}
	sentOK := false
	st[0].OnSent = func(f *Frame, ok bool) { sentOK = ok }
	st[0].Enqueue(&Frame{DstID: 1, Bytes: 1500, Kind: medium.KindData})
	sch.Run()
	if delivered != 1 {
		t.Fatalf("delivered %d frames, want 1", delivered)
	}
	if !sentOK {
		t.Error("sender did not observe success")
	}
	// Exactly one data frame and one ACK on the air.
	if ch.TxCount[medium.KindData] != 1 || ch.TxCount[medium.KindAck] != 1 {
		t.Errorf("tx counts = %v", ch.TxCount)
	}
}

func TestBroadcastNoAck(t *testing.T) {
	sch, ch, st := rig(3)
	got := 0
	for _, s := range st[1:] {
		s := s
		s.OnDeliver = func(f *Frame, from int) { got++ }
	}
	st[0].Enqueue(&Frame{DstID: medium.Broadcast, Bytes: 1500, Kind: medium.KindPower})
	sch.Run()
	if got != 2 {
		t.Errorf("broadcast delivered to %d stations, want 2", got)
	}
	if ch.TxCount[medium.KindAck] != 0 {
		t.Error("broadcast must not be acknowledged (§3.2 footnote)")
	}
}

func TestQueueCapDropsExcess(t *testing.T) {
	_, _, st := rig(2)
	st[0].Qdisc = NewFIFO(5)
	accepted := 0
	for i := 0; i < 10; i++ {
		if st[0].Enqueue(&Frame{DstID: 1, Bytes: 100, Kind: medium.KindData}) {
			accepted++
		}
	}
	// One frame moves immediately into service, so 1 + 5 are accepted.
	if accepted != 6 {
		t.Errorf("accepted %d frames with cap 5, want 6", accepted)
	}
	if st[0].QueueDrops != 4 {
		t.Errorf("drops = %d, want 4", st[0].QueueDrops)
	}
}

func TestQueueLenCountsInService(t *testing.T) {
	_, _, st := rig(2)
	st[0].Enqueue(&Frame{DstID: 1, Bytes: 100, Kind: medium.KindData})
	st[0].Enqueue(&Frame{DstID: 1, Bytes: 100, Kind: medium.KindData})
	if got := st[0].QueueLen(); got != 2 {
		t.Errorf("QueueLen = %d, want 2 (1 in service + 1 queued)", got)
	}
}

func TestAllQueuedFramesEventuallySent(t *testing.T) {
	sch, _, st := rig(2)
	const n = 50
	done := 0
	st[0].OnSent = func(f *Frame, ok bool) {
		if ok {
			done++
		}
	}
	for i := 0; i < n; i++ {
		st[0].Enqueue(&Frame{DstID: 1, Bytes: 1500, Kind: medium.KindData})
	}
	sch.Run()
	if done != n {
		t.Errorf("sent %d/%d frames", done, n)
	}
}

func TestTwoContendersShareChannelFairly(t *testing.T) {
	sch, _, st := rig(2)
	sent := [2]int{}
	for i := 0; i < 2; i++ {
		i := i
		st[i].OnSent = func(f *Frame, ok bool) { sent[i]++ }
	}
	// Saturate both stations with broadcast traffic for one simulated
	// second (broadcast avoids ACK asymmetries in this fairness check).
	stop := false
	var feed func(i int)
	feed = func(i int) {
		if stop {
			return
		}
		st[i].Enqueue(&Frame{DstID: medium.Broadcast, Bytes: 1500, Kind: medium.KindData})
	}
	for i := 0; i < 2; i++ {
		i := i
		st[i].OnSent = func(f *Frame, ok bool) {
			sent[i]++
			feed(i)
		}
		for k := 0; k < 5; k++ {
			feed(i)
		}
	}
	sch.At(1*time.Second, func() { stop = true; sch.Stop() })
	sch.Run()
	total := sent[0] + sent[1]
	if total < 2000 {
		t.Fatalf("only %d frames in 1s of saturation; DCF stalled", total)
	}
	share := float64(sent[0]) / float64(total)
	if share < 0.40 || share > 0.60 {
		t.Errorf("station 0 share = %.2f, want about 0.5 (DCF fairness)", share)
	}
}

func TestSaturationThroughputPlausible(t *testing.T) {
	// A single saturated 54 Mbps broadcast sender should push roughly
	// 1500B / (DIFS + avg backoff + airtime) ≈ 3.4k frames/s, i.e. about
	// 40 Mbps of goodput — the right DCF efficiency ballpark for 802.11g.
	sch, _, st := rig(2)
	count := 0
	var feed func()
	feed = func() { st[0].Enqueue(&Frame{DstID: medium.Broadcast, Bytes: 1500, Kind: medium.KindData}) }
	st[0].OnSent = func(f *Frame, ok bool) {
		count++
		feed()
	}
	for i := 0; i < 3; i++ {
		feed()
	}
	sch.At(1*time.Second, func() { sch.Stop() })
	sch.Run()
	mbps := float64(count) * 1500 * 8 / 1e6
	if mbps < 30 || mbps > 45 {
		t.Errorf("saturation goodput = %.1f Mbps, want 30-45", mbps)
	}
}

func TestCollisionRetryEventuallyDelivers(t *testing.T) {
	// Force a synchronized collision: two senders queue at the same
	// instant; DCF backoff must eventually separate them and both
	// unicasts must deliver.
	sch, ch, st := rig(3)
	delivered := 0
	st[2].OnDeliver = func(f *Frame, from int) { delivered++ }
	st[0].Enqueue(&Frame{DstID: 2, Bytes: 1500, Kind: medium.KindData})
	st[1].Enqueue(&Frame{DstID: 2, Bytes: 1500, Kind: medium.KindData})
	sch.Run()
	if delivered != 2 {
		t.Errorf("delivered %d, want 2 (collision recovery)", delivered)
	}
	_ = ch
}

func TestDeferToOngoingTransmission(t *testing.T) {
	// A station that queues a frame mid-transmission must not start until
	// the channel clears: no collision should occur.
	sch, ch, st := rig(3)
	st[0].Enqueue(&Frame{DstID: medium.Broadcast, Bytes: 1500, Kind: medium.KindData})
	// Station 1 queues 50 µs into station 0's transmission.
	sch.At(50*time.Microsecond, func() {
		st[1].Enqueue(&Frame{DstID: medium.Broadcast, Bytes: 1500, Kind: medium.KindData})
	})
	sch.Run()
	if ch.Collisions != 0 {
		t.Errorf("collisions = %d, want 0 (carrier sense must defer)", ch.Collisions)
	}
}

func TestFixedRateController(t *testing.T) {
	r := FixedRate(phy.Rate54Mbps)
	if r.DataRate() != phy.Rate54Mbps {
		t.Error("FixedRate changed rate")
	}
	r.OnFailure()
	r.OnSuccess()
	if r.DataRate() != phy.Rate54Mbps {
		t.Error("FixedRate must ignore feedback")
	}
}

func TestARFStepsDownOnFailures(t *testing.T) {
	a := NewARF()
	if a.DataRate() != phy.Rate54Mbps {
		t.Fatalf("ARF should start at 54 Mbps, got %v", a.DataRate())
	}
	a.OnFailure()
	a.OnFailure()
	if a.DataRate() != phy.Rate48Mbps {
		t.Errorf("after 2 failures rate = %v, want 48 Mbps", a.DataRate())
	}
}

func TestARFStepsUpAfterSuccessStreak(t *testing.T) {
	a := NewARF()
	a.OnFailure()
	a.OnFailure() // down to 48
	for i := 0; i < 10; i++ {
		a.OnSuccess()
	}
	if a.DataRate() != phy.Rate54Mbps {
		t.Errorf("after 10 successes rate = %v, want back at 54", a.DataRate())
	}
}

func TestARFBoundedAtExtremes(t *testing.T) {
	a := NewARF()
	for i := 0; i < 100; i++ {
		a.OnFailure()
	}
	if a.DataRate() != phy.Rate6Mbps {
		t.Errorf("rate floor = %v, want 6 Mbps", a.DataRate())
	}
	for i := 0; i < 1000; i++ {
		a.OnSuccess()
	}
	if a.DataRate() != phy.Rate54Mbps {
		t.Errorf("rate ceiling = %v, want 54 Mbps", a.DataRate())
	}
}

func TestARFFailureResetsSuccessStreak(t *testing.T) {
	a := NewARF()
	a.OnFailure()
	a.OnFailure() // 48
	for i := 0; i < 9; i++ {
		a.OnSuccess()
	}
	a.OnFailure() // streak broken
	for i := 0; i < 9; i++ {
		a.OnSuccess()
	}
	if a.DataRate() != phy.Rate48Mbps {
		t.Errorf("rate = %v, want still 48 (streak was reset)", a.DataRate())
	}
}
