package mac

import "repro/internal/medium"

// QueueDiscipline orders frames awaiting transmission. The default is a
// plain FIFO; the PoWiFi router's client-facing interface uses fair
// queueing between the client flow and the power-packet flow, mirroring
// the fq_codel discipline mac80211 applies on real Linux routers — which
// is what makes the paper's NoQueue scheme "roughly halve" client
// throughput (§4.1a) instead of starving it.
type QueueDiscipline interface {
	// Enqueue accepts a frame or returns false to drop it.
	Enqueue(f *Frame) bool
	// Dequeue removes and returns the next frame, or nil when empty.
	Dequeue() *Frame
	// Len returns the number of queued frames (what the paper's
	// Power_MACshim exposes to the IP layer).
	Len() int
}

// FIFO is a drop-tail first-in-first-out queue, backed by a ring buffer
// so sustained enqueue/dequeue cycles allocate nothing after the buffer
// reaches the configured capacity.
type FIFO struct {
	Cap   int
	buf   []*Frame
	head  int
	count int
	drops int
}

// NewFIFO returns a FIFO with the given capacity.
func NewFIFO(capacity int) *FIFO { return &FIFO{Cap: capacity} }

// Enqueue implements QueueDiscipline.
func (q *FIFO) Enqueue(f *Frame) bool {
	if q.count >= q.Cap {
		q.drops++
		return false
	}
	if len(q.buf) != q.Cap {
		q.grow()
	}
	i := q.head + q.count
	if i >= len(q.buf) {
		i -= len(q.buf)
	}
	q.buf[i] = f
	q.count++
	return true
}

// grow (re)sizes the ring to the configured capacity, preserving order.
func (q *FIFO) grow() {
	buf := make([]*Frame, q.Cap)
	for i := 0; i < q.count; i++ {
		buf[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = buf
	q.head = 0
}

// Dequeue implements QueueDiscipline.
func (q *FIFO) Dequeue() *Frame {
	if q.count == 0 {
		return nil
	}
	f := q.buf[q.head]
	q.buf[q.head] = nil
	q.head++
	if q.head == len(q.buf) {
		q.head = 0
	}
	q.count--
	return f
}

// Len implements QueueDiscipline.
func (q *FIFO) Len() int { return q.count }

// Drops returns the number of frames rejected at capacity.
func (q *FIFO) Drops() int { return q.drops }

// Reset empties the queue and clears the drop counter, keeping the ring
// buffer for reuse.
func (q *FIFO) Reset() {
	for i := 0; i < q.count; i++ {
		j := q.head + i
		if j >= len(q.buf) {
			j -= len(q.buf)
		}
		q.buf[j] = nil
	}
	q.head = 0
	q.count = 0
	q.drops = 0
}

// numFrameKinds sizes the FairQueue flow tables: one slot per
// medium.FrameKind value (data, ack, beacon, power).
const numFrameKinds = medium.NumFrameKinds

// FairQueue is a deficit-round-robin discipline with one subqueue per
// frame kind (client data vs power packets), one frame per turn. It
// models the flow isolation of fq_codel between the iperf flow and the
// injector's broadcast flow. Flow state lives in fixed per-kind arrays
// — the transmit path and the Power_MACshim's queue-depth query are
// map-free and allocation-free in steady state.
type FairQueue struct {
	// PerFlowCap bounds each subqueue.
	PerFlowCap int

	flows [numFrameKinds]*FIFO // nil until the kind joins the round-robin
	order []medium.FrameKind
	next  int
	count int // running total across flows; Len is the Power_MACshim hot query
	drops int

	// retired parks reset subqueues between runs so a pooled queue can
	// rebuild its flow table without allocating.
	retired [numFrameKinds]*FIFO
}

// NewFairQueue returns a fair queue with the given per-flow capacity.
func NewFairQueue(perFlowCap int) *FairQueue {
	return &FairQueue{PerFlowCap: perFlowCap}
}

// Enqueue implements QueueDiscipline.
func (q *FairQueue) Enqueue(f *Frame) bool {
	fl := q.flows[f.Kind]
	if fl == nil {
		if fl = q.retired[f.Kind]; fl != nil {
			q.retired[f.Kind] = nil
		} else {
			fl = NewFIFO(q.PerFlowCap)
		}
		q.flows[f.Kind] = fl
		q.order = append(q.order, f.Kind)
	}
	if !fl.Enqueue(f) {
		q.drops++
		return false
	}
	q.count++
	return true
}

// Dequeue implements QueueDiscipline: round-robin across non-empty flows.
func (q *FairQueue) Dequeue() *Frame {
	if len(q.order) == 0 {
		return nil
	}
	n := len(q.order)
	for i, idx := 0, q.next; i < n; i++ {
		if idx >= n {
			idx -= n
		}
		if f := q.flows[q.order[idx]].Dequeue(); f != nil {
			q.next = idx + 1
			if q.next >= n {
				q.next -= n
			}
			q.count--
			return f
		}
		idx++
	}
	return nil
}

// Len implements QueueDiscipline.
func (q *FairQueue) Len() int { return q.count }

// FlowLen returns the backlog of one flow.
func (q *FairQueue) FlowLen(kind medium.FrameKind) int {
	if fl := q.flows[kind]; fl != nil {
		return fl.Len()
	}
	return 0
}

// Drops returns the total frames rejected at per-flow capacity.
func (q *FairQueue) Drops() int { return q.drops }

// Reset returns the queue to its just-constructed state: the flow table
// and round-robin order empty out (they are rebuilt by arrival order, so
// a reset queue schedules identically to a fresh one), while the
// emptied subqueues park in the retired pool for allocation-free reuse.
func (q *FairQueue) Reset() {
	for kind, fl := range q.flows {
		if fl == nil {
			continue
		}
		fl.Reset()
		q.retired[kind] = fl
		q.flows[kind] = nil
	}
	q.order = q.order[:0]
	q.next = 0
	q.count = 0
	q.drops = 0
}
