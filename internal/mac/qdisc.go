package mac

import "repro/internal/medium"

// QueueDiscipline orders frames awaiting transmission. The default is a
// plain FIFO; the PoWiFi router's client-facing interface uses fair
// queueing between the client flow and the power-packet flow, mirroring
// the fq_codel discipline mac80211 applies on real Linux routers — which
// is what makes the paper's NoQueue scheme "roughly halve" client
// throughput (§4.1a) instead of starving it.
type QueueDiscipline interface {
	// Enqueue accepts a frame or returns false to drop it.
	Enqueue(f *Frame) bool
	// Dequeue removes and returns the next frame, or nil when empty.
	Dequeue() *Frame
	// Len returns the number of queued frames (what the paper's
	// Power_MACshim exposes to the IP layer).
	Len() int
}

// FIFO is a drop-tail first-in-first-out queue.
type FIFO struct {
	Cap    int
	frames []*Frame
	drops  int
}

// NewFIFO returns a FIFO with the given capacity.
func NewFIFO(capacity int) *FIFO { return &FIFO{Cap: capacity} }

// Enqueue implements QueueDiscipline.
func (q *FIFO) Enqueue(f *Frame) bool {
	if len(q.frames) >= q.Cap {
		q.drops++
		return false
	}
	q.frames = append(q.frames, f)
	return true
}

// Dequeue implements QueueDiscipline.
func (q *FIFO) Dequeue() *Frame {
	if len(q.frames) == 0 {
		return nil
	}
	f := q.frames[0]
	q.frames = q.frames[1:]
	return f
}

// Len implements QueueDiscipline.
func (q *FIFO) Len() int { return len(q.frames) }

// Drops returns the number of frames rejected at capacity.
func (q *FIFO) Drops() int { return q.drops }

// FairQueue is a deficit-round-robin discipline with one subqueue per
// frame kind (client data vs power packets), one frame per turn. It
// models the flow isolation of fq_codel between the iperf flow and the
// injector's broadcast flow.
type FairQueue struct {
	// PerFlowCap bounds each subqueue.
	PerFlowCap int

	flows map[medium.FrameKind]*FIFO
	order []medium.FrameKind
	next  int
	drops int
}

// NewFairQueue returns a fair queue with the given per-flow capacity.
func NewFairQueue(perFlowCap int) *FairQueue {
	return &FairQueue{
		PerFlowCap: perFlowCap,
		flows:      make(map[medium.FrameKind]*FIFO),
	}
}

// Enqueue implements QueueDiscipline.
func (q *FairQueue) Enqueue(f *Frame) bool {
	fl, exists := q.flows[f.Kind]
	if !exists {
		fl = NewFIFO(q.PerFlowCap)
		q.flows[f.Kind] = fl
		q.order = append(q.order, f.Kind)
	}
	if !fl.Enqueue(f) {
		q.drops++
		return false
	}
	return true
}

// Dequeue implements QueueDiscipline: round-robin across non-empty flows.
func (q *FairQueue) Dequeue() *Frame {
	if len(q.order) == 0 {
		return nil
	}
	for i := 0; i < len(q.order); i++ {
		kind := q.order[(q.next+i)%len(q.order)]
		if f := q.flows[kind].Dequeue(); f != nil {
			q.next = (q.next + i + 1) % len(q.order)
			return f
		}
	}
	return nil
}

// Len implements QueueDiscipline.
func (q *FairQueue) Len() int {
	n := 0
	for _, fl := range q.flows {
		n += fl.Len()
	}
	return n
}

// FlowLen returns the backlog of one flow.
func (q *FairQueue) FlowLen(kind medium.FrameKind) int {
	if fl, exists := q.flows[kind]; exists {
		return fl.Len()
	}
	return 0
}

// Drops returns the total frames rejected at per-flow capacity.
func (q *FairQueue) Drops() int { return q.drops }
