package deploy

// BinBatch is the struct-of-arrays form of one home's logging bins —
// the batched fleet kernel's unit of work. Where the streaming runner
// hands each bin to a callback as it is simulated, the batch runner
// fills contiguous per-column arrays: the packet-level samples land in
// Occupancy first, then one link-budget-plus-surface loop fills
// SensorRate and NetHarvestedW for the whole batch
// (core.TempSensorDevice.EvaluateBatch), and the aggregate folds run
// over plain float64 columns. A BinBatch is reused across homes by the
// fleet workers; Reset re-dimensions it without reallocating in steady
// state.
type BinBatch struct {
	// Hour is each bin's local time of day.
	Hour []float64
	// Occupancy holds per-channel airtime fractions in [0, 1], indexed
	// in phy.PoWiFiChannels order.
	Occupancy [][3]float64
	// CumulativePct is the percentage sum across channels per bin.
	CumulativePct []float64
	// SensorRate is the sensor's update rate per bin (0 when it cannot
	// boot), filled by the batched evaluate stage.
	SensorRate []float64
	// NetHarvestedW is the sensor's net harvested power per bin.
	NetHarvestedW []float64
	// Simulated marks bins whose occupancy came from the packet-level
	// event simulation. The exact tier simulates every bin; the coarse
	// tier leaves proxied bins false.
	Simulated []bool
}

// Len returns the number of bins in the batch.
func (b *BinBatch) Len() int { return len(b.Hour) }

// Reset re-dimensions the batch to n bins, reusing backing arrays when
// they are large enough, and clears the Simulated marks.
func (b *BinBatch) Reset(n int) {
	b.Hour = resize(b.Hour, n)
	b.CumulativePct = resize(b.CumulativePct, n)
	b.SensorRate = resize(b.SensorRate, n)
	b.NetHarvestedW = resize(b.NetHarvestedW, n)
	if cap(b.Occupancy) < n {
		b.Occupancy = make([][3]float64, n)
	}
	b.Occupancy = b.Occupancy[:n]
	if cap(b.Simulated) < n {
		b.Simulated = make([]bool, n)
	}
	b.Simulated = b.Simulated[:n]
	for i := range b.Simulated {
		b.Simulated[i] = false
	}
}

// Sample returns bin i as the streaming runner's AoS record, for
// per-bin consumers (the lifecycle ledger, aggregate folds) that walk a
// finished batch.
func (b *BinBatch) Sample(i int) BinSample {
	return BinSample{
		Bin:           i,
		HourOfDay:     b.Hour[i],
		Occupancy:     b.Occupancy[i],
		CumulativePct: b.CumulativePct[i],
		SensorRate:    b.SensorRate[i],
		NetHarvestedW: b.NetHarvestedW[i],
	}
}

// RunBatch simulates one home deployment into b, the batched
// counterpart of RunStream: plan every bin's drive up front, run the
// packet-level sample per bin into the occupancy column, then evaluate
// the sensor chain over the whole batch in one link-budget-plus-surface
// loop. Bin i of the result is bit-identical to the i-th BinSample
// RunStream delivers (the parity suite pins this); only the control
// structure differs.
//
// each, if non-nil, is called before each bin's packet-level sample
// with the bin index; returning false abandons the home mid-batch (the
// fleet workers' per-bin cancellation check) and RunBatch reports
// false with b in an unspecified state. The Sampler remains reusable.
func (smp *Sampler) RunBatch(cfg HomeConfig, opts Options, b *BinBatch, each func(bin int) bool) bool {
	opts = opts.withDefaults()
	nBins := opts.NumBins()
	smp.planBins(cfg, opts, nBins)

	smp.sensor.Exact = opts.Exact
	for i := range smp.monitors {
		smp.monitors[i].BinWidth = opts.Window
	}

	b.Reset(nBins)
	copy(b.Hour, smp.plan.hour)
	for bin := 0; bin < nBins; bin++ {
		if each != nil && !each(bin) {
			return false
		}
		b.Occupancy[bin] = smp.sampleBin(cfg.Seed*1_000_003+uint64(bin),
			smp.plan.clientLoad[bin], smp.plan.neighborLoad[bin], opts.Window)
		b.Simulated[bin] = true
		smp.tele.Bin()
		if smp.tr != nil {
			smp.tr.BinSimulated(bin, smp.sched.Scheduled())
		}
	}
	smp.evaluateBatch(opts, b)
	return true
}

// evaluateBatch runs the batched evaluate stage over every bin of b:
// the cumulative-occupancy fold and the sensor chain's link-budget +
// operating-point solve, one loop per column. The per-channel RF budget
// is memoized across the batch (it depends only on the geometry), so
// the per-bin work is the surface lookup alone.
func (smp *Sampler) evaluateBatch(opts Options, b *BinBatch) {
	for i, occ := range b.Occupancy {
		cum := 0.0
		for _, v := range occ {
			cum += v * 100
		}
		b.CumulativePct[i] = cum
	}
	smp.sensor.EvaluateBatch(opts.SensorDistanceFt, b.Occupancy, b.SensorRate, b.NetHarvestedW)
}
