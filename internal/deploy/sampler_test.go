package deploy

import (
	"testing"
	"time"

	"repro/internal/xrand"
)

// randomHome draws an arbitrary home configuration spanning the ranges
// the fleet synthesizer produces (including zero-device and zero-
// neighbor corners).
func randomHome(rng *xrand.Rand) HomeConfig {
	return HomeConfig{
		ID:          1 + rng.Intn(1000),
		Users:       1 + rng.Intn(4),
		Devices:     rng.Intn(13), // 0 devices = no client feed
		NeighborAPs: rng.Intn(41), // 0 APs = no contenders anywhere
		Weekend:     rng.Bool(0.3),
		StartHour:   rng.Intn(24),
		Seed:        rng.Uint64(),
	}
}

// TestPooledSamplerParity is the bit-for-bit contract of the pooled
// context: one Sampler reused across many randomized homes produces
// exactly the streams that fresh per-home contexts produce — same RNG
// draw order, same event order, hence identical floats in every field.
func TestPooledSamplerParity(t *testing.T) {
	rng := xrand.NewFromLabel(7, "sampler/parity")
	pooled := NewSampler()
	opts := Options{
		BinWidth:         45 * time.Minute,
		Window:           3 * time.Millisecond,
		Hours:            3,
		SensorDistanceFt: 9,
	}
	for trial := 0; trial < 12; trial++ {
		cfg := randomHome(rng)
		// Vary the sensor placement too: it exercises the per-device
		// link-budget memo across geometry changes.
		opts.SensorDistanceFt = rng.Uniform(4, 16)

		var fresh, reused []BinSample
		NewSampler().RunStream(cfg, opts, func(s BinSample) { fresh = append(fresh, s) })
		pooled.RunStream(cfg, opts, func(s BinSample) { reused = append(reused, s) })

		if len(fresh) != len(reused) {
			t.Fatalf("trial %d: %d bins fresh vs %d pooled", trial, len(fresh), len(reused))
		}
		for i := range fresh {
			if fresh[i] != reused[i] {
				t.Fatalf("trial %d bin %d: pooled sample diverged\nfresh:  %+v\npooled: %+v",
					trial, i, fresh[i], reused[i])
			}
		}
	}
}

// TestPooledSamplerMatchesPackageRunStream pins the package-level entry
// point to the pooled path on a paper home (the golden suite pins the
// same property at full scale).
func TestPooledSamplerMatchesPackageRunStream(t *testing.T) {
	cfg := PaperHomes()[3]
	opts := Options{BinWidth: time.Hour, Window: 2 * time.Millisecond, Hours: 5, SensorDistanceFt: 10}
	var a, b []BinSample
	RunStream(cfg, opts, func(s BinSample) { a = append(a, s) })
	smp := NewSampler()
	// Run something else first so the pooled context is dirty.
	smp.RunStream(PaperHomes()[0], opts, func(BinSample) {})
	smp.RunStream(cfg, opts, func(s BinSample) { b = append(b, s) })
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("bin %d: dirty pooled context diverged from RunStream", i)
		}
	}
}

// TestSampleBinAllocBudget pins the tentpole's steady-state allocation
// contract: once pools are warm, one packet-level bin costs at most 10
// heap allocations (in practice zero — the budget leaves headroom for
// the conditional-drive slices the solver layer allocates on booting
// links).
func TestSampleBinAllocBudget(t *testing.T) {
	smp := NewSampler()
	seed, clientLoad, neighborLoad, window := benchBinInputs()
	smp.sampleBin(seed, clientLoad, neighborLoad, window) // warm pools
	bin := 0
	allocs := testing.AllocsPerRun(50, func() {
		bin++
		smp.sampleBin(seed+uint64(bin), clientLoad, neighborLoad, window)
	})
	if allocs > 10 {
		t.Errorf("steady-state sampleBin allocs/bin = %v, budget is 10", allocs)
	}
	t.Logf("steady-state allocs/bin = %v", allocs)
}

// TestRunStreamAllocBudget extends the allocation budget to the whole
// streaming path: packet sample plus sensor evaluation per bin.
func TestRunStreamAllocBudget(t *testing.T) {
	smp := NewSampler()
	opts := Options{BinWidth: time.Hour, Window: 2 * time.Millisecond, Hours: 2, SensorDistanceFt: 10}
	home := PaperHomes()[2]
	visit := func(BinSample) {}
	smp.RunStream(home, opts, visit) // warm pools and the shared surface
	allocs := testing.AllocsPerRun(20, func() {
		smp.RunStream(home, opts, visit)
	})
	perBin := allocs / float64(opts.NumBins())
	if perBin > 10 {
		t.Errorf("steady-state RunStream allocs/bin = %v, budget is 10", perBin)
	}
	t.Logf("steady-state RunStream allocs/bin = %v", perBin)
}
