package deploy

import (
	"fmt"
	"testing"
	"time"
)

// benchBinInputs returns a representative mid-evening bin of a Table 1
// home: moderate client load, neighbors on all three channels.
func benchBinInputs() (seed uint64, clientLoad float64, neighborLoad [3]float64, window time.Duration) {
	return 103*1_000_003 + 7, 0.35, [3]float64{0.25, 0.08, 0.4}, 10 * time.Millisecond
}

// BenchmarkSampleBin measures the pooled per-bin packet-level sample —
// the fleet hot path — reporting ns/bin and allocs/bin directly. The
// window sub-benchmarks bracket the fleet default (2 ms in the fleet
// benchmark config, 10 ms in the fleet CLI default).
func BenchmarkSampleBin(b *testing.B) {
	for _, window := range []time.Duration{2 * time.Millisecond, 10 * time.Millisecond} {
		b.Run(fmt.Sprintf("window=%v", window), func(b *testing.B) {
			smp := NewSampler()
			seed, clientLoad, neighborLoad, _ := benchBinInputs()
			smp.sampleBin(seed, clientLoad, neighborLoad, window) // warm pools
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				occ := smp.sampleBin(seed+uint64(i%1440), clientLoad, neighborLoad, window)
				if occ[0] <= 0 {
					b.Fatal("no occupancy sampled")
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/bin")
		})
	}
}

// BenchmarkRunStreamPooled measures a full pooled single-home run at the
// fleet's default per-bin window, including the per-bin sensor solve.
func BenchmarkRunStreamPooled(b *testing.B) {
	smp := NewSampler()
	opts := Options{BinWidth: time.Hour, Window: 10 * time.Millisecond, Hours: 24, SensorDistanceFt: 10}
	home := PaperHomes()[2]
	smp.RunStream(home, opts, func(BinSample) {}) // warm pools and the surface
	b.ReportAllocs()
	b.ResetTimer()
	bins := 0
	for i := 0; i < b.N; i++ {
		smp.RunStream(home, opts, func(BinSample) { bins++ })
	}
	b.StopTimer()
	if bins != b.N*24 {
		b.Fatalf("streamed %d bins, want %d", bins, b.N*24)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(bins), "ns/bin")
}
