package deploy

import (
	"math"
	"testing"
	"time"

	"repro/internal/xrand"
)

// TestRunBatchParity is the bit-for-bit contract of the batched kernel:
// RunBatch's struct-of-arrays columns hold exactly the BinSamples the
// streaming runner delivers — same packet-level samples, same surface
// answers, identical floats in every field — across randomized homes,
// placements and both solver tiers, on one pooled context interleaved
// with streaming runs.
func TestRunBatchParity(t *testing.T) {
	rng := xrand.NewFromLabel(11, "batch/parity")
	smp := NewSampler()
	var b BinBatch
	opts := Options{
		BinWidth: 45 * time.Minute,
		Window:   3 * time.Millisecond,
		Hours:    3,
	}
	for trial := 0; trial < 12; trial++ {
		cfg := randomHome(rng)
		opts.SensorDistanceFt = rng.Uniform(4, 16)
		opts.Exact = trial%3 == 0 // exercise the direct-solver tier too

		var streamed []BinSample
		smp.RunStream(cfg, opts, func(s BinSample) { streamed = append(streamed, s) })
		if !smp.RunBatch(cfg, opts, &b, nil) {
			t.Fatalf("trial %d: RunBatch reported early stop with nil gate", trial)
		}

		if b.Len() != len(streamed) {
			t.Fatalf("trial %d: %d bins batched vs %d streamed", trial, b.Len(), len(streamed))
		}
		for i := range streamed {
			if !b.Simulated[i] {
				t.Fatalf("trial %d bin %d: exact-tier batch left bin unsimulated", trial, i)
			}
			if got := b.Sample(i); got != streamed[i] {
				t.Fatalf("trial %d bin %d: batched sample diverged\nstreamed: %+v\nbatched:  %+v",
					trial, i, streamed[i], got)
			}
		}
	}
}

// TestRunBatchEarlyStop pins the cancellation contract: the gate is
// consulted before every packet-level sample, and a false return
// abandons the home without corrupting the pooled context.
func TestRunBatchEarlyStop(t *testing.T) {
	smp := NewSampler()
	cfg := randomHome(xrand.NewFromLabel(3, "batch/stop"))
	opts := Options{BinWidth: 30 * time.Minute, Window: 2 * time.Millisecond, Hours: 2, SensorDistanceFt: 9}

	var b BinBatch
	calls := 0
	if smp.RunBatch(cfg, opts, &b, func(bin int) bool { calls++; return bin < 2 }) {
		t.Fatal("RunBatch completed despite gate stop")
	}
	if calls != 3 {
		t.Fatalf("gate consulted %d times, want 3 (bins 0, 1, then the refused 2)", calls)
	}

	// The pooled context must be fully reusable after an abandoned home.
	var ref []BinSample
	NewSampler().RunStream(cfg, opts, func(s BinSample) { ref = append(ref, s) })
	if !smp.RunBatch(cfg, opts, &b, nil) {
		t.Fatal("RunBatch failed after early stop")
	}
	for i := range ref {
		if got := b.Sample(i); got != ref[i] {
			t.Fatalf("bin %d after early stop: %+v want %+v", i, got, ref[i])
		}
	}
}

// TestRunBatchCoarseCertification is the coarse tier's contract, the
// same empirical discipline the operating-point surface certifies with:
// across randomized homes and placements, (1) the boot/silence decision
// of every bin — the one discontinuous output — is bit-identical to
// the exact tier, (2) per-bin magnitudes on anchor and escalated bins
// are exact, (3) per-home aggregates (mean occupancy, mean banked
// harvest) stay within the documented relative bound, (4) the pooled
// population aggregate — what a fleet sweep actually consumes — is
// unbiased to well under the per-home bound, and (5) the tier actually
// skips event work on a meaningful share of bins.
//
// The certification runs at the fleet's default 10ms measurement
// window. The proxy is a regression over measured anchors, so its ε
// scales with the anchors' own measurement noise; shorter windows
// quantize occupancy coarsely enough (a 2ms window fits only a handful
// of frames) that no per-home bound this tight can hold. CoarseOptions
// documents the window dependence.
func TestRunBatchCoarseCertification(t *testing.T) {
	rng := xrand.NewFromLabel(23, "coarse/cert")
	smp := NewSampler()
	var exact, coarse BinBatch
	opts := Options{
		BinWidth: 20 * time.Minute,
		Window:   10 * time.Millisecond,
		Hours:    8,
	}
	simulated, total := 0, 0
	var poolOccE, poolOccC, poolUWE, poolUWC float64
	for trial := 0; trial < 16; trial++ {
		cfg := randomHome(rng)
		// Span the full placement range: near homes never threaten the
		// boot threshold, far homes sit under it, mid-range homes are
		// the escalation stress case.
		opts.SensorDistanceFt = rng.Uniform(4, 16)

		if !smp.RunBatch(cfg, opts, &exact, nil) || !smp.RunBatchCoarse(cfg, opts, CoarseOptions{}, &coarse, nil) {
			t.Fatalf("trial %d: runner stopped unexpectedly", trial)
		}
		if exact.Len() != coarse.Len() {
			t.Fatalf("trial %d: bin counts differ: %d vs %d", trial, exact.Len(), coarse.Len())
		}

		var sumOccE, sumOccC, sumUWE, sumUWC float64
		for i := 0; i < exact.Len(); i++ {
			e, c := exact.Sample(i), coarse.Sample(i)
			if (e.SensorRate > 0) != (c.SensorRate > 0) {
				t.Fatalf("trial %d bin %d: boot decision flipped (exact rate %v, coarse rate %v, simulated %v)",
					trial, i, e.SensorRate, c.SensorRate, coarse.Simulated[i])
			}
			if coarse.Simulated[i] {
				if e != c {
					t.Fatalf("trial %d bin %d: simulated coarse bin diverged from exact\nexact:  %+v\ncoarse: %+v",
						trial, i, e, c)
				}
				simulated++
			}
			total++
			sumOccE += e.CumulativePct
			sumOccC += c.CumulativePct
			sumUWE += e.BankedHarvestUW()
			sumUWC += c.BankedHarvestUW()
		}
		n := float64(exact.Len())
		if relErr(sumOccC/n, sumOccE/n) > 0.10 {
			t.Fatalf("trial %d: mean occupancy off by >10%%: coarse %.3f vs exact %.3f",
				trial, sumOccC/n, sumOccE/n)
		}
		if relErr(sumUWC/n, sumUWE/n) > 0.15 {
			t.Fatalf("trial %d: mean banked harvest off by >15%%: coarse %.3f vs exact %.3f µW",
				trial, sumUWC/n, sumUWE/n)
		}
		poolOccE += sumOccE
		poolOccC += sumOccC
		poolUWE += sumUWE
		poolUWC += sumUWC
	}
	// The per-home errors must pool down, not compound: fleet summaries
	// average over the population, so the tier's bias is the bound that
	// matters at scale.
	if relErr(poolOccC, poolOccE) > 0.03 {
		t.Fatalf("pooled mean occupancy biased by >3%%: coarse %.3f vs exact %.3f", poolOccC, poolOccE)
	}
	if relErr(poolUWC, poolUWE) > 0.03 {
		t.Fatalf("pooled mean banked harvest biased by >3%%: coarse %.3f vs exact %.3f µW", poolUWC, poolUWE)
	}
	if frac := float64(simulated) / float64(total); frac > 0.55 {
		t.Fatalf("coarse tier simulated %.0f%% of bins; escalation has eaten the tier", 100*frac)
	}
}

// relErr returns |got-want| relative to want, with an absolute floor so
// near-zero means (far placements harvest nothing) compare sanely.
func relErr(got, want float64) float64 {
	denom := math.Abs(want)
	if denom < 1e-9 {
		denom = 1e-9
	}
	return math.Abs(got-want) / denom
}
