package deploy

import (
	"testing"
	"time"

	"repro/internal/trace"
)

// TestTraceDisabledAddsNoAllocs pins the disabled-tracing cost in the
// sampler hot loop at exactly zero: with a nil HomeTrace attached, the
// batched kernel's steady-state allocation count is identical to the
// untraced baseline — the instrumentation is one nil check per bin.
func TestTraceDisabledAddsNoAllocs(t *testing.T) {
	cfg := PaperHomes()[2]
	opts := Options{BinWidth: time.Hour, Window: 2 * time.Millisecond, Hours: 2, SensorDistanceFt: 10}
	var b BinBatch

	smp := NewSampler()
	smp.RunBatch(cfg, opts, &b, nil) // warm pools
	base := testing.AllocsPerRun(20, func() { smp.RunBatch(cfg, opts, &b, nil) })

	smp.TraceHome(nil)
	traced := testing.AllocsPerRun(20, func() { smp.RunBatch(cfg, opts, &b, nil) })
	if traced != base {
		t.Errorf("RunBatch allocs with nil trace = %v, untraced baseline = %v; want identical", traced, base)
	}
}

// TestTraceOutOfBandAndEvents checks the sampler-level determinism
// contract — a live flight recorder changes no output bit — and that
// the recorder sees the expected event stream: one bin-sim event per
// simulated bin on the exact tier; fits, guard queries and escalation
// accounting on the coarse tier.
func TestTraceOutOfBandAndEvents(t *testing.T) {
	cfg := PaperHomes()[1]
	opts := Options{BinWidth: 30 * time.Minute, Window: 3 * time.Millisecond, Hours: 6, SensorDistanceFt: 10}
	nBins := opts.NumBins()

	var ref, got BinBatch
	NewSampler().RunBatch(cfg, opts, &ref, nil)

	rec := trace.NewRecorder()
	ht := rec.NewWorker().StartHome(0, "fleet/home/0", 1)
	smp := NewSampler()
	smp.TraceHome(ht)
	smp.RunBatch(cfg, opts, &got, nil)
	for i := 0; i < nBins; i++ {
		if got.Sample(i) != ref.Sample(i) {
			t.Fatalf("bin %d: traced RunBatch diverged from untraced", i)
		}
	}
	if ht.Events() != uint64(nBins) {
		t.Fatalf("exact tier recorded %d events, want %d bin-sim events", ht.Events(), nBins)
	}
	for i, e := range ht.Dump().Events {
		if e.Kind != "bin-sim" || e.Bin != i || e.Arg <= 0 {
			t.Fatalf("event %d = %+v, want bin-sim for bin %d with positive kernel-event count", i, e, i)
		}
	}

	// Coarse tier: same out-of-band contract, richer event stream.
	var cref, cgot BinBatch
	NewSampler().RunBatchCoarse(cfg, opts, CoarseOptions{}, &cref, nil)
	ht2 := rec.NewWorker().StartHome(1, "fleet/home/1", 1)
	smp2 := NewSampler()
	smp2.TraceHome(ht2)
	smp2.RunBatchCoarse(cfg, opts, CoarseOptions{}, &cgot, nil)
	for i := 0; i < nBins; i++ {
		if cgot.Sample(i) != cref.Sample(i) {
			t.Fatalf("bin %d: traced RunBatchCoarse diverged from untraced", i)
		}
	}
	kinds := map[string]int{}
	for _, e := range ht2.Dump().Events {
		kinds[e.Kind]++
	}
	if kinds["occ-fit"] != 3 {
		t.Errorf("coarse tier recorded %d occ-fit events, want 3 (one per channel)", kinds["occ-fit"])
	}
	if kinds["harvest-fit"] != 1 {
		t.Errorf("coarse tier recorded %d harvest-fit events, want 1", kinds["harvest-fit"])
	}
	if kinds["bin-sim"] == 0 {
		t.Error("coarse tier recorded no bin-sim events; anchors should simulate")
	}
	if uint64(kinds["escalate"]) != uint64(ht2.Escalations()) {
		t.Errorf("escalate events = %d, Escalations() = %d", kinds["escalate"], ht2.Escalations())
	}
}
