package deploy

import (
	"testing"
	"time"

	"repro/internal/phy"
	"repro/internal/stats"
)

// fastOpts keeps the packet-level sampling cheap for unit tests.
func fastOpts() Options {
	return Options{
		BinWidth:         time.Hour,
		Window:           250 * time.Millisecond,
		Hours:            6,
		SensorDistanceFt: 10,
	}
}

func TestPaperHomesMatchTable1(t *testing.T) {
	homes := PaperHomes()
	if len(homes) != 6 {
		t.Fatalf("homes = %d, want 6", len(homes))
	}
	wantUsers := []int{2, 1, 3, 2, 1, 3}
	wantDevices := []int{6, 1, 6, 4, 2, 6}
	wantAPs := []int{17, 4, 10, 15, 24, 16}
	for i, h := range homes {
		if h.ID != i+1 {
			t.Errorf("home %d id = %d", i, h.ID)
		}
		if h.Users != wantUsers[i] || h.Devices != wantDevices[i] || h.NeighborAPs != wantAPs[i] {
			t.Errorf("home %d = %+v, want users=%d devices=%d aps=%d",
				h.ID, h, wantUsers[i], wantDevices[i], wantAPs[i])
		}
	}
	if !homes[0].Weekend || !homes[1].Weekend {
		t.Error("homes 1 and 2 were staged over a weekend")
	}
	if homes[2].Weekend {
		t.Error("home 3 was a weekday deployment")
	}
}

func TestRunProducesAllBins(t *testing.T) {
	res := Run(PaperHomes()[1], fastOpts())
	if len(res.Cumulative) != 6 {
		t.Fatalf("bins = %d, want 6", len(res.Cumulative))
	}
	for _, chNum := range phy.PoWiFiChannels {
		if len(res.Occupancy[chNum]) != 6 {
			t.Errorf("%v occupancy bins = %d, want 6", chNum, len(res.Occupancy[chNum]))
		}
	}
	if len(res.SensorRates) != 6 || len(res.HourOfDay) != 6 {
		t.Error("sensor rates / hours not aligned with bins")
	}
}

func TestCumulativeIsChannelSum(t *testing.T) {
	res := Run(PaperHomes()[1], fastOpts())
	for i := range res.Cumulative {
		sum := 0.0
		for _, chNum := range phy.PoWiFiChannels {
			sum += res.Occupancy[chNum][i]
		}
		if diff := res.Cumulative[i] - sum; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("bin %d cumulative %v != channel sum %v", i, res.Cumulative[i], sum)
		}
	}
}

func TestOccupancyWithinPhysicalBounds(t *testing.T) {
	res := Run(PaperHomes()[0], fastOpts())
	for _, chNum := range phy.PoWiFiChannels {
		for i, v := range res.Occupancy[chNum] {
			if v < 0 || v > 100 {
				t.Fatalf("%v bin %d occupancy %v%% out of [0,100]", chNum, i, v)
			}
		}
	}
	for i, v := range res.Cumulative {
		if v < 0 || v > 300 {
			t.Fatalf("cumulative bin %d = %v%% out of [0,300]", i, v)
		}
	}
}

func TestMeanCumulativeInPaperBallpark(t *testing.T) {
	// §6: mean cumulative occupancies across homes fall in 78-127%.
	// Run two contrasting homes with moderate resolution.
	opts := Options{BinWidth: 90 * time.Minute, Window: 300 * time.Millisecond, Hours: 24, SensorDistanceFt: 10}
	for _, idx := range []int{1, 4} { // home 2 (quiet) and home 5 (busy)
		res := Run(PaperHomes()[idx], opts)
		m := res.MeanCumulative()
		if m < 60 || m > 160 {
			t.Errorf("home %d mean cumulative = %.1f%%, want within 60-160", res.Home.ID, m)
		}
	}
}

func TestSensorRatesPlausible(t *testing.T) {
	// Fig. 15: at 10 ft the battery-free sensor reads at 0-10/s.
	res := Run(PaperHomes()[2], fastOpts())
	cdf := stats.NewCDF(res.SensorRates)
	if cdf.Quantile(1) > 12 {
		t.Errorf("max sensor rate = %v, implausibly high", cdf.Quantile(1))
	}
	if cdf.Quantile(0.5) <= 0 {
		t.Errorf("median sensor rate = %v, sensor should run at 10 ft", cdf.Quantile(0.5))
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a := Run(PaperHomes()[1], fastOpts())
	b := Run(PaperHomes()[1], fastOpts())
	for i := range a.Cumulative {
		if a.Cumulative[i] != b.Cumulative[i] {
			t.Fatalf("bin %d differs between identical runs: %v vs %v",
				i, a.Cumulative[i], b.Cumulative[i])
		}
	}
}

func TestHomesDiffer(t *testing.T) {
	a := Run(PaperHomes()[1], fastOpts()) // 4 neighbor APs
	b := Run(PaperHomes()[4], fastOpts()) // 24 neighbor APs
	same := 0
	for i := range a.Cumulative {
		if a.Cumulative[i] == b.Cumulative[i] {
			same++
		}
	}
	if same == len(a.Cumulative) {
		t.Error("two very different homes produced identical logs")
	}
}

func TestRunStreamAgreesWithRun(t *testing.T) {
	// Run is an accumulator over RunStream; the streamed samples must
	// reproduce the materialized log exactly, and carry the sensor-side
	// fields the fleet runner depends on.
	cfg := PaperHomes()[1]
	opts := fastOpts()
	res := Run(cfg, opts)
	var streamed []BinSample
	RunStream(cfg, opts, func(s BinSample) { streamed = append(streamed, s) })
	if len(streamed) != len(res.Cumulative) {
		t.Fatalf("streamed %d bins, materialized %d", len(streamed), len(res.Cumulative))
	}
	for i, s := range streamed {
		if s.Bin != i {
			t.Fatalf("bin %d reported index %d", i, s.Bin)
		}
		if s.CumulativePct != res.Cumulative[i] {
			t.Fatalf("bin %d cumulative %v != %v", i, s.CumulativePct, res.Cumulative[i])
		}
		if s.SensorRate != res.SensorRates[i] {
			t.Fatalf("bin %d sensor rate %v != %v", i, s.SensorRate, res.SensorRates[i])
		}
		if s.HourOfDay != res.HourOfDay[i] {
			t.Fatalf("bin %d hour %v != %v", i, s.HourOfDay, res.HourOfDay[i])
		}
		for ci, chNum := range phy.PoWiFiChannels {
			if s.Occupancy[ci]*100 != res.Occupancy[chNum][i] {
				t.Fatalf("bin %d %v occupancy mismatch", i, chNum)
			}
		}
		if s.SensorRate > 0 && s.NetHarvestedW <= 0 {
			t.Fatalf("bin %d: sensor runs at %v reads/s but harvested %v W", i, s.SensorRate, s.NetHarvestedW)
		}
	}
}

func TestActivityDiurnalShape(t *testing.T) {
	if activity(3, false) >= activity(20, false) {
		t.Error("3 AM should be quieter than 8 PM")
	}
	if activity(12, true) <= activity(12, false) {
		t.Error("weekend midday should be busier than weekday midday")
	}
	for h := 0.0; h < 24; h += 0.5 {
		a := activity(h, false)
		if a < 0 || a > 1 {
			t.Fatalf("activity(%v) = %v out of [0,1]", h, a)
		}
	}
}

func TestResultString(t *testing.T) {
	res := Run(PaperHomes()[1], fastOpts())
	s := res.String()
	if s == "" {
		t.Error("empty result summary")
	}
}
