package deploy

import (
	"fmt"
	"iter"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/eventsim"
	"repro/internal/medium"
	"repro/internal/monitor"
	"repro/internal/phy"
	"repro/internal/router"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/traffic"
	"repro/internal/xrand"
)

// maxBgStations caps the DCF contenders modelling one channel's neighbor
// load, mirroring the paper-calibrated ceiling in neighbor station
// provisioning (a crowded neighborhood fields at most four contenders
// per channel in the sampler).
const maxBgStations = 4

// Sampler is a pooled single-home simulation context: the scheduler,
// channel media, PoWiFi router, monitors, neighbor-load generators and
// sensor device are built once and Reset between logging bins, so the
// per-bin packet-level sample pays no allocator or GC tax in steady
// state.
//
// Pooling is bit-for-bit invisible: every component Reset restores its
// just-constructed state and every RNG stream is reseeded in place on
// the same (seed, label) derivation a fresh construction would use, so
// a pooled Sampler reproduces the exact event order and RNG draw order
// of a fresh one (the parity suite in sampler_test.go pins this, and
// the golden suite pins it transitively for the paper runs).
//
// A Sampler is not safe for concurrent use; the fleet runner gives each
// worker its own.
type Sampler struct {
	sched    *eventsim.Scheduler
	channels [3]*medium.Channel
	rt       *router.Router
	monitors [3]*monitor.Monitor

	// bg[i][k] is contender k on PoWiFi channel i; bgLabels caches the
	// per-station RNG stream labels so per-bin reseeding needs no
	// fmt.Sprintf.
	bg       [3][maxBgStations]*traffic.Background
	bgLabels [3][maxBgStations]string

	// Client downlink feed on channel 1 (persistent callbacks; armed
	// only for bins with client load).
	clientRng  *xrand.Rand
	clientMean float64
	clientFire func(any)

	homeRng  *xrand.Rand
	sensor   *core.TempSensorDevice
	frameAir float64 // airtime of a 1500-byte client frame at 54 Mbps

	// tele counts simulated bins when the owning run collects telemetry
	// (nil otherwise — a nil-receiver no-op, so the hot path keeps its
	// allocation budget). Set via Instrument; the fleet pool re-attaches
	// (or detaches) it on every acquisition, so a pooled sampler can
	// never count into a previous run's metrics.
	tele *telemetry.SamplerCounters

	// lastActiveBg[i] counts the contenders on channel i that ran last
	// bin, so the per-bin reset touches only stations with state.
	lastActiveBg [3]int

	// tr is the current home's flight recorder when the owning run
	// traces (nil otherwise — a nil-receiver no-op like tele). Set via
	// TraceHome per home attempt; detached on pool release.
	tr *trace.HomeTrace

	// plan holds the pooled struct-of-arrays bin plan (hours and offered
	// loads) the current home's bins are driven from; see planBins.
	plan binPlan

	// escBuf is the pooled escalation work list of the coarse tier.
	escBuf []escalation
}

// escalation is one coarse-tier bin pushed back to the exact path,
// tagged with the machine-readable reason the guard demoted it.
type escalation struct {
	bin    int32
	reason trace.EscReason
}

// binPlan is the struct-of-arrays form of one home's per-bin drive: the
// local hour and the offered client/neighbor loads for every logging
// bin, drawn up front in one pass. Planning is pure home-stream
// randomness — the packet-level sampler never touches the home RNG — so
// hoisting the draws out of the bin loop preserves the exact draw order
// of the historical interleaved form.
type binPlan struct {
	hour         []float64
	clientLoad   []float64
	neighborLoad [][3]float64
}

func (p *binPlan) reset(n int) {
	p.hour = resize(p.hour, n)
	p.clientLoad = resize(p.clientLoad, n)
	if cap(p.neighborLoad) < n {
		p.neighborLoad = make([][3]float64, n)
	}
	p.neighborLoad = p.neighborLoad[:n]
}

// resize returns a length-n float slice, reusing s's backing array when
// it is large enough.
func resize(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// NewSampler builds a pooled sampling context. Construction mirrors the
// per-bin topology the original sampler built from scratch: consumer
// router on channels 1/6/11 (450 µs user wake cost), per-channel
// monitors filtered to the router's radios, and the maximum complement
// of neighbor contenders per channel. Contenders beyond a bin's active
// count simply stay idle — an attached station that never transmits
// draws no randomness and schedules no events, so the surplus is
// invisible to the simulation.
func NewSampler() *Sampler {
	smp := &Sampler{sched: eventsim.New()}
	channels := make(map[phy.Channel]*medium.Channel, 3)
	for i, chNum := range phy.PoWiFiChannels {
		smp.channels[i] = medium.NewChannel(chNum, smp.sched)
		channels[chNum] = smp.channels[i]
	}
	rcfg := router.DefaultConfig()
	// Consumer home routers run the injectors on a slow MIPS/ARM SoC that
	// also handles NAT; the user-space refill latency is several times the
	// benchmark router's, which caps per-channel occupancy near the
	// 30-45% the paper's Fig. 14 shows.
	rcfg.UserWakeCost = 450 * time.Microsecond
	smp.rt = router.New(rcfg, smp.sched, channels, 100, 0)

	for i, chNum := range phy.PoWiFiChannels {
		smp.monitors[i] = monitor.New(smp.channels[i], time.Second, 100+i)
		for k := 0; k < maxBgStations; k++ {
			smp.bg[i][k] = traffic.NewBackground(smp.sched, smp.channels[i], 300+10*i+k,
				medium.Location{X: 8, Y: 6 + float64(k)}, 0, xrand.New(0))
			smp.bgLabels[i][k] = fmt.Sprintf("bg/%v/%d", chNum, k)
		}
	}

	smp.clientRng = xrand.New(0)
	radio := smp.rt.Radio(phy.Channel1).MAC
	smp.frameAir = float64(phy.Airtime(1500+phy.MACOverheadBytes, phy.Rate54Mbps))
	smp.clientFire = func(any) {
		f := radio.NewFrame()
		f.DstID = medium.Broadcast // home devices in aggregate
		f.Bytes = 1500
		f.Kind = medium.KindData
		f.FixedRate = phy.Rate54Mbps
		radio.Enqueue(f)
		smp.armClient()
	}

	smp.homeRng = xrand.New(0)
	smp.sensor = core.NewBatteryFreeTempSensor()
	return smp
}

// Instrument attaches run telemetry to the pooled context: bins counts
// simulated logging bins; surf counts the sensor chain's surface-query
// outcomes. Pass nils to detach. Counting is strictly out of band — it
// draws no randomness and changes no event order — so instrumented and
// bare runs are bit-for-bit identical.
func (smp *Sampler) Instrument(bins *telemetry.SamplerCounters, surf *telemetry.SurfaceCounters) {
	smp.tele = bins
	smp.sensor.Tele = surf
}

// TraceHome attaches (or, with nil, detaches) one home attempt's flight
// recorder to the pooled context and its sensor chain. Like Instrument,
// tracing is strictly out of band: no randomness, no event-order
// changes, and a nil recorder costs one predictable branch per site.
func (smp *Sampler) TraceHome(ht *trace.HomeTrace) {
	smp.tr = ht
	smp.sensor.Trace = ht
}

// armClient schedules the next Poisson client-frame arrival, exactly as
// the original closure chain did: draw the gap, then fire-and-rearm.
func (smp *Sampler) armClient() {
	smp.sched.AfterCtx(time.Duration(smp.clientRng.Exp(smp.clientMean)), smp.clientFire, nil)
}

// RunStream simulates one home deployment on the pooled context,
// invoking visit once per logging bin in order. See the package-level
// RunStream for the contract; this form reuses the Sampler's pooled
// state and is what the fleet runner calls once per worker.
func (smp *Sampler) RunStream(cfg HomeConfig, opts Options, visit func(BinSample)) {
	smp.runStream(cfg, opts.withDefaults(), func(s BinSample) bool { visit(s); return true })
}

// RunVisitor is RunStream delivering bins through a BinVisitor instead
// of a callback — the run mode the device-lifecycle engine drives. The
// streams are identical: both paths fold through the same runStream.
func (smp *Sampler) RunVisitor(cfg HomeConfig, opts Options, v BinVisitor) {
	smp.runStream(cfg, opts.withDefaults(), func(s BinSample) bool { v.VisitBin(s); return true })
}

// StreamBins is RunStream with an early-stop contract: visit returns
// false to abandon the run mid-home, and no further bins are simulated
// or delivered. It exists for cancellation (the fleet workers check
// their context once per bin) and for the facade's iterators, where
// the consumer may break out of the loop. Stopping never corrupts the
// pooled context — the next run Resets everything as usual.
func (smp *Sampler) StreamBins(cfg HomeConfig, opts Options, visit func(BinSample) bool) {
	smp.runStream(cfg, opts.withDefaults(), visit)
}

// Bins returns a single-use iterator over the home's logging bins on
// the pooled context. Breaking out of the loop stops the simulation
// mid-home; the Sampler remains reusable.
func (smp *Sampler) Bins(cfg HomeConfig, opts Options) iter.Seq[BinSample] {
	return func(yield func(BinSample) bool) {
		smp.StreamBins(cfg, opts, yield)
	}
}

// runStream is RunStream after option normalization (callers must pass
// a withDefaults-normalized opts, so Run and RunStream normalize
// exactly once). visit returning false stops the run before the next
// bin is simulated.
func (smp *Sampler) runStream(cfg HomeConfig, opts Options, visit func(BinSample) bool) {
	nBins := opts.NumBins()
	smp.planBins(cfg, opts, nBins)

	smp.sensor.Exact = opts.Exact
	for i := range smp.monitors {
		smp.monitors[i].BinWidth = opts.Window
	}

	for bin := 0; bin < nBins; bin++ {
		occ := smp.sampleBin(cfg.Seed*1_000_003+uint64(bin),
			smp.plan.clientLoad[bin], smp.plan.neighborLoad[bin], opts.Window)
		cum := 0.0
		for _, v := range occ {
			cum += v * 100
		}

		link := core.PoWiFiLinkOccupancy(opts.SensorDistanceFt, occ)
		rate, netW := smp.sensor.Evaluate(link)
		smp.tele.Bin()
		if !visit(BinSample{
			Bin:           bin,
			HourOfDay:     smp.plan.hour[bin],
			Occupancy:     occ,
			CumulativePct: cum,
			SensorRate:    rate,
			NetHarvestedW: netW,
		}) {
			return
		}
	}
}

// planBins draws the home's full bin plan into smp.plan: the per-home
// channel weights and AP assignment, then every bin's offered loads, in
// exactly the order the historical per-bin interleaved loop drew them.
// sampleBin never touches the home RNG (it reseeds the packet-level
// streams from the bin seed), so planning up front consumes the home
// stream identically and the simulated bins are bit-for-bit unchanged.
func (smp *Sampler) planBins(cfg HomeConfig, opts Options, nBins int) {
	rng := smp.homeRng
	rng.ReseedFromLabel(cfg.Seed, "home")

	// Distribute neighbor APs across the three channels. Real 2.4 GHz
	// neighborhoods cluster unevenly on 1/6/11 (auto channel selection
	// herds APs), which is what makes Fig. 14's per-channel curves differ
	// so strongly between homes: draw per-home channel weights with a
	// cubic skew, then assign APs by weight.
	weights := [3]float64{}
	wsum := 0.0
	for i := range weights {
		u := rng.Float64()
		weights[i] = u * u * u
		wsum += weights[i]
	}
	var apChannels [3]int
	for i := 0; i < cfg.NeighborAPs; i++ {
		u := rng.Float64() * wsum
		acc := 0.0
		for j, w := range weights {
			acc += w
			if u < acc {
				apChannels[j]++
				break
			}
		}
	}

	smp.plan.reset(nBins)
	for bin := 0; bin < nBins; bin++ {
		hour := math.Mod(float64(cfg.StartHour)+float64(bin)*opts.BinWidth.Hours(), 24)
		act := activity(hour, cfg.Weekend)
		smp.plan.hour[bin] = hour

		// Per-bin offered loads.
		clientLoad := (0.02 + 0.45*act) * float64(cfg.Devices) / 6.0
		if clientLoad > 0.6 {
			clientLoad = 0.6
		}
		smp.plan.clientLoad[bin] = clientLoad
		var neighborLoad [3]float64
		// Iterate channels in fixed order so the RNG draws stay
		// deterministic.
		for j := range neighborLoad {
			n := apChannels[j]
			if n == 0 {
				continue
			}
			// Each neighbor AP idles at ~1% airtime (beacons, chatter) and
			// climbs toward ~13% when its household is active (streaming
			// video dominates evening loads).
			l := float64(n) * (0.012 + 0.120*act) * rng.Uniform(0.4, 1.6)
			if l > 0.85 {
				l = 0.85
			}
			neighborLoad[j] = l
		}
		smp.plan.neighborLoad[bin] = neighborLoad
	}
}

// sampleBin resets the pooled context and runs one packet-level window,
// returning the router's per-channel occupancy fractions. The start-up
// sequence (neighbor generators in channel/contender order, then the
// client feed, then the router) reproduces the original fresh-build
// scheduling order event for event.
//
//powifi:noalloc
func (smp *Sampler) sampleBin(seed uint64, clientLoad float64, neighborLoad [3]float64, window time.Duration) [3]float64 {
	smp.sched.Reset()
	for i := range smp.channels {
		smp.channels[i].Reset()
		smp.monitors[i].Reset()
		// Only contenders that ran last bin carry state worth clearing;
		// the dormant spares are still in their just-reset state.
		for k := 0; k < smp.lastActiveBg[i]; k++ {
			smp.bg[i][k].Station.Reset()
		}
		smp.lastActiveBg[i] = 0
	}
	smp.rt.Reset(seed)

	// Neighbor load on each channel, spread over several contending
	// stations: a crowded neighborhood does not just offer more airtime,
	// it also fields more DCF contenders, each of which wins transmit
	// opportunities against our router. Only the contenders a fresh
	// build would have constructed participate this bin; the pooled
	// spares beyond them are deactivated so the medium's per-frame loops
	// see exactly the fresh-build station set.
	for i := range smp.channels {
		load := neighborLoad[i]
		if load <= 0 {
			smp.channels[i].SetActiveStations(1) // router radio only
			continue
		}
		stations := 1 + int(load/0.2)
		if stations > maxBgStations {
			stations = maxBgStations
		}
		smp.channels[i].SetActiveStations(1 + stations)
		smp.lastActiveBg[i] = stations
		for k := 0; k < stations; k++ {
			bg := smp.bg[i][k]
			bg.RNG().ReseedFromLabel(seed, smp.bgLabels[i][k])
			bg.Load = load / float64(stations)
			bg.Start()
		}
	}

	// The home's own client traffic rides channel 1 through the router's
	// fair queue, competing with the injector exactly as §3.2 describes.
	if clientLoad > 0 {
		smp.clientRng.ReseedFromLabel(seed, "clients")
		smp.clientMean = smp.frameAir / clientLoad
		smp.armClient()
	}

	smp.rt.Start()
	smp.sched.RunUntil(window)

	var occ [3]float64
	for i, mon := range smp.monitors {
		occ[i] = mon.MeanOccupancy()
	}
	return occ
}
